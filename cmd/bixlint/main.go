// Command bixlint runs this repository's static-analysis suite: custom
// analyzers for the bitvec tail-mask invariant (now alias-aware),
// interprocedural allocation-free hot paths (//bix:hotpath propagates
// through the module call graph; //bix:allocok bounds the audit), dropped
// I/O errors, telemetry naming and label cardinality, concurrency
// integrity (lockheld, lockorder, unlockpath, gocapture, atomicfield,
// poolhygiene) and lifecycle discipline (goroutinelife, chanprotocol,
// ctxflow, closeown), all built on a CFG/dataflow engine and per-function
// summaries. Packages are analyzed on a bounded worker pool in dependency
// order; output is byte-identical at any worker count. It is built
// entirely on the standard library and needs no tools outside the Go
// distribution.
//
// Usage:
//
//	bixlint [flags] [packages]
//
//	bixlint ./...                     check every package in the module
//	bixlint -only tailmask,hotalloc ./...
//	bixlint -skip poolhygiene ./...
//	bixlint -format sarif ./...       emit SARIF 2.1.0 on stdout
//	bixlint -baseline lint.baseline ./...
//	bixlint -write-baseline lint.baseline ./...
//	bixlint -factcache off ./...      disable the call-graph fact cache
//	bixlint -workers 1 ./...          force the serial analysis path
//	bixlint -timings ./...            report per-analyzer wall time on stderr
//	bixlint -vet ./...                also run `go vet`
//	bixlint -ci                       build + vet + lint + race-enabled tests
//	bixlint -list                     print the analyzer suite and exit
//
// Exit status: 0 when clean, 1 when any analyzer (or, with -vet/-ci, any
// delegated tool) reports a finding, 2 when the module fails to load or
// type-check, or on a usage error (unknown format or analyzer name).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"bitmapindex/internal/analysis"
)

func main() {
	var opts options
	flag.BoolVar(&opts.list, "list", false, "list the analyzers and exit")
	flag.StringVar(&opts.format, "format", "text", "output format: text or sarif")
	flag.StringVar(&opts.baseline, "baseline", "", "suppress findings listed in this baseline file")
	flag.StringVar(&opts.writeBaseline, "write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.StringVar(&opts.only, "only", "", "comma-separated analyzer names to run exclusively")
	flag.StringVar(&opts.skip, "skip", "", "comma-separated analyzer names to leave out")
	flag.StringVar(&opts.factCache, "factcache", "auto",
		"call-graph fact cache: auto (user cache dir), off, or an explicit file path")
	flag.IntVar(&opts.workers, "workers", 0, "analysis worker pool size (0 = GOMAXPROCS, 1 = serial)")
	flag.BoolVar(&opts.timings, "timings", false, "report per-analyzer wall time on stderr")
	flag.BoolVar(&opts.vet, "vet", false, "also run `go vet` on the same patterns")
	flag.BoolVar(&opts.ci, "ci", false, "run the full local gate: go build, go vet, bixlint, go test -race")
	flag.Parse()
	os.Exit(run(opts, flag.Args(), os.Stdout, os.Stderr))
}

type options struct {
	list          bool
	format        string
	baseline      string
	writeBaseline string
	only          string
	skip          string
	factCache     string
	workers       int
	timings       bool
	vet           bool
	ci            bool
}

// cachePath resolves the -factcache flag to a file path, or "" when the
// cache is disabled. "auto" places it under the user cache dir; when that
// is unavailable the cache is silently skipped — it is an accelerator,
// never required.
func cachePath(flagVal string) string {
	switch flagVal {
	case "off", "":
		return ""
	case "auto":
		dir, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(dir, "bixlint", "facts.json")
	default:
		return flagVal
	}
}

func run(opts options, patterns []string, stdout, stderr io.Writer) int {
	if opts.list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if opts.format != "text" && opts.format != "sarif" {
		fmt.Fprintf(stderr, "bixlint: unknown -format %q (want text or sarif)\n", opts.format)
		return 2
	}
	// Validate analyzer selection before the (expensive) module load so a
	// typo in -only/-skip fails in milliseconds.
	selected, err := analysis.Select(opts.only, opts.skip)
	if err != nil {
		fmt.Fprintln(stderr, "bixlint:", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if opts.ci {
		// Build and vet gate the lint: there is no point type-checking a
		// module that does not compile.
		if code := runTool(stderr, "go", "build", "./..."); code != 0 {
			return code
		}
		if code := runTool(stderr, "go", "vet", "./..."); code != 0 {
			return code
		}
	} else if opts.vet {
		if code := runTool(stderr, append([]string{"go", "vet"}, patterns...)...); code != 0 {
			return code
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "bixlint:", err)
		return 2
	}
	pkgs, err := load(loader, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "bixlint:", err)
		return 2
	}
	if len(loader.TypeErrors) > 0 {
		for _, e := range loader.TypeErrors {
			fmt.Fprintln(stderr, "bixlint:", e)
		}
		return 2
	}
	batch := analysis.NewBatch(pkgs)
	batch.CachePath = cachePath(opts.factCache)
	batch.Workers = opts.workers
	findings := analysis.RunBatch(batch, selected)
	root, _ := os.Getwd()
	if opts.timings {
		for _, t := range batch.Timings() {
			fmt.Fprintf(stderr, "bixlint: %12s  %s\n", t.Total.Round(10*time.Microsecond), t.Name)
		}
	}

	if opts.writeBaseline != "" {
		f, err := os.Create(opts.writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "bixlint:", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, findings, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "bixlint:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "bixlint: wrote %d baseline entr(ies) to %s\n", len(findings), opts.writeBaseline)
		return 0
	}

	if opts.baseline != "" {
		f, err := os.Open(opts.baseline)
		if err != nil {
			fmt.Fprintln(stderr, "bixlint:", err)
			return 2
		}
		suppressed, berr := analysis.ReadBaseline(f)
		_ = f.Close()
		if berr != nil {
			fmt.Fprintln(stderr, "bixlint:", berr)
			return 2
		}
		var stale []string
		findings, stale = analysis.FilterBaseline(findings, suppressed, root)
		for _, s := range stale {
			fmt.Fprintf(stderr, "bixlint: stale baseline entry: %s\n", s)
		}
	}

	if opts.format == "sarif" {
		if err := analysis.WriteSARIF(stdout, findings, selected, root); err != nil {
			fmt.Fprintln(stderr, "bixlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if root != "" {
				if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					f.Pos.Filename = rel
				}
			}
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bixlint: %d finding(s)\n", len(findings))
		return 1
	}

	if opts.ci {
		// The race detector is the dynamic backstop for everything the
		// concurrency analyzers approximate statically.
		if code := runTool(stderr, "go", "test", "-race", "./..."); code != 0 {
			return code
		}
		fmt.Fprintln(stderr, "bixlint: ci gate clean (build, vet, lint, race)")
	}
	return 0
}

// runTool shells out to a delegated tool (go build/vet/test), mapping
// any failure onto the findings exit code.
func runTool(stderr io.Writer, args ...string) int {
	fmt.Fprintln(stderr, "bixlint: running", strings.Join(args, " "))
	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stdout = stderr
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 1
		}
		fmt.Fprintln(stderr, "bixlint:", err)
		return 2
	}
	return 0
}

// load resolves package patterns: "./..." loads the whole module, anything
// else is a directory relative to the current working directory.
func load(loader *analysis.Loader, patterns []string) ([]*analysis.Package, error) {
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return loader.LoadAll()
		}
	}
	var pkgs []*analysis.Package
	for _, p := range patterns {
		dir, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", p, loader.ModPath)
		}
		path := loader.ModPath
		if rel != "." {
			path = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
