// Command bixlint runs this repository's static-analysis suite: custom
// analyzers for the bitvec tail-mask invariant, allocation-free hot paths,
// dropped I/O errors, telemetry naming and label cardinality, and lock
// annotations. It is built entirely on the standard library and needs no
// tools outside the Go distribution.
//
// Usage:
//
//	bixlint [-list] [packages]
//
//	bixlint ./...          check every package in the module
//	bixlint ./internal/core ./cmd/bixstore
//	bixlint -list          print the analyzer suite and exit
//
// Exit status: 0 when clean, 1 when any analyzer reports a finding, 2 when
// the module fails to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bitmapindex/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bixlint:", err)
		return 2
	}
	pkgs, err := load(loader, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bixlint:", err)
		return 2
	}
	if len(loader.TypeErrors) > 0 {
		for _, e := range loader.TypeErrors {
			fmt.Fprintln(os.Stderr, "bixlint:", e)
		}
		return 2
	}
	findings := analysis.Run(pkgs, analysis.All)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bixlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// load resolves package patterns: "./..." loads the whole module, anything
// else is a directory relative to the current working directory.
func load(loader *analysis.Loader, patterns []string) ([]*analysis.Package, error) {
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			return loader.LoadAll()
		}
	}
	var pkgs []*analysis.Package
	for _, p := range patterns {
		dir, err := filepath.Abs(p)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", p, loader.ModPath)
		}
		path := loader.ModPath
		if rel != "." {
			path = loader.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(dir, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
