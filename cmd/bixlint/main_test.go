package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bitmapindex/internal/analysis"
)

func TestListPrintsEverySuiteAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(options{list: true}, nil, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, a := range analysis.All {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
	if got := strings.Count(out.String(), "\n"); got != len(analysis.All) {
		t.Errorf("-list printed %d lines, want %d", got, len(analysis.All))
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(options{format: "yaml"}, nil, &out, &errw); code != 2 {
		t.Fatalf("unknown format exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown -format") {
		t.Errorf("stderr %q should mention the unknown format", errw.String())
	}
}

func TestSARIFOnCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a real package; skipped in -short")
	}
	var out, errw bytes.Buffer
	code := run(options{format: "sarif"}, []string{"../../internal/bitvec"}, &out, &errw)
	if code != 0 {
		t.Fatalf("sarif run exited %d, want 0 (stderr: %s)", code, errw.String())
	}
	var log map[string]any
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
}
