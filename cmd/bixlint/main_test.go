package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bitmapindex/internal/analysis"
)

func TestListPrintsEverySuiteAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(options{list: true}, nil, &out, &errw); code != 0 {
		t.Fatalf("-list exited %d, want 0 (stderr: %s)", code, errw.String())
	}
	for _, a := range analysis.All {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
	if got := strings.Count(out.String(), "\n"); got != len(analysis.All) {
		t.Errorf("-list printed %d lines, want %d", got, len(analysis.All))
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(options{format: "yaml"}, nil, &out, &errw); code != 2 {
		t.Fatalf("unknown format exited %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "unknown -format") {
		t.Errorf("stderr %q should mention the unknown format", errw.String())
	}
}

func TestUnknownAnalyzerNameIsUsageError(t *testing.T) {
	for _, opts := range []options{
		{format: "text", only: "hotalloc,nosuchanalyzer"},
		{format: "text", skip: "nosuchanalyzer"},
	} {
		var out, errw bytes.Buffer
		if code := run(opts, nil, &out, &errw); code != 2 {
			t.Fatalf("options %+v exited %d, want 2", opts, code)
		}
		if !strings.Contains(errw.String(), "unknown analyzer") {
			t.Errorf("stderr %q should name the unknown analyzer", errw.String())
		}
	}
}

func TestOnlyRestrictsSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a real package; skipped in -short")
	}
	// SARIF declares one rule per selected analyzer, so the rule list is a
	// direct observation of what -only selected.
	var out, errw bytes.Buffer
	code := run(options{format: "sarif", only: "tailmask,errcheck-io", factCache: "off"},
		[]string{"../../internal/bitvec"}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exited %d, want 0 (stderr: %s)", code, errw.String())
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	var ids []string
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids = append(ids, r.ID)
	}
	if len(ids) != 2 || ids[0] != "tailmask" || ids[1] != "errcheck-io" {
		t.Errorf("SARIF rules = %v, want [tailmask errcheck-io]", ids)
	}
}

func TestCachePathResolution(t *testing.T) {
	if got := cachePath("off"); got != "" {
		t.Errorf("cachePath(off) = %q, want empty", got)
	}
	if got := cachePath("/tmp/explicit.json"); got != "/tmp/explicit.json" {
		t.Errorf("cachePath(explicit) = %q", got)
	}
	if got := cachePath("auto"); got != "" && !strings.HasSuffix(got, "facts.json") {
		t.Errorf("cachePath(auto) = %q, want .../bixlint/facts.json or empty", got)
	}
}

func TestSARIFOnCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a real package; skipped in -short")
	}
	var out, errw bytes.Buffer
	code := run(options{format: "sarif"}, []string{"../../internal/bitvec"}, &out, &errw)
	if code != 0 {
		t.Fatalf("sarif run exited %d, want 0 (stderr: %s)", code, errw.String())
	}
	var log map[string]any
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
}
