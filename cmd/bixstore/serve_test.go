package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"bitmapindex"
)

// buildTestIndex generates values and builds an on-disk index, returning
// its directory.
func buildTestIndex(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	values := filepath.Join(dir, "v.txt")
	if err := cmdGen([]string{"-values", values, "-rows", "3000", "-C", "50"}); err != nil {
		t.Fatal(err)
	}
	ixDir := filepath.Join(dir, "ix")
	if err := cmdBuild([]string{"-dir", ixDir, "-values", values, "-C", "50", "-scheme", "BS", "-z"}); err != nil {
		t.Fatal(err)
	}
	return ixDir
}

// TestQueryMetricsDump is the ISSUE acceptance check: a single query with
// -metrics prints a Prometheus dump whose bix_scans_total growth equals
// the query's own core.Stats.Scans, and a trace with at least three phases
// of non-zero duration.
func TestQueryMetricsDump(t *testing.T) {
	ixDir := buildTestIndex(t)
	before := bitmapindex.Telemetry().Snapshot().Counters["bix_scans_total"]

	var out bytes.Buffer
	if err := runQuery(&out, []string{"-dir", ixDir, "-q", "<= 17", "-metrics"}); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	var scans int
	if _, err := fmt.Sscanf(text[strings.Index(text, "scans:"):], "scans: %d bitmaps", &scans); err != nil {
		t.Fatalf("cannot parse scan count from output:\n%s", text)
	}
	if scans <= 0 {
		t.Fatalf("expected positive scan count, got %d:\n%s", scans, text)
	}

	// The Prometheus dump reports the process-wide counter; its growth
	// over this one query must equal the query's Stats.Scans.
	re := regexp.MustCompile(`(?m)^bix_scans_total (\d+)$`)
	match := re.FindStringSubmatch(text)
	if match == nil {
		t.Fatalf("no bix_scans_total line in dump:\n%s", text)
	}
	var after int64
	fmt.Sscanf(match[1], "%d", &after)
	if got := after - before; got != int64(scans) {
		t.Errorf("bix_scans_total grew by %d, query reported %d scans", got, scans)
	}

	// Trace: at least 3 phases with non-zero durations.
	phaseRe := regexp.MustCompile(`(?m)^  (\S+)\s+\d+ calls  (\S+)$`)
	nonzero := 0
	for _, m := range phaseRe.FindAllStringSubmatch(text, -1) {
		d, err := time.ParseDuration(m[2])
		if err != nil {
			t.Fatalf("bad duration %q in trace line", m[2])
		}
		if d > 0 {
			nonzero++
		}
	}
	if nonzero < 3 {
		t.Errorf("want >= 3 trace phases with non-zero duration, got %d:\n%s", nonzero, text)
	}
}

// TestServeHandlers drives the serve mux over httptest: /query returns
// JSON with scans, ops and trace phases; /metrics serves Prometheus text
// and a JSON snapshot.
func TestServeHandlers(t *testing.T) {
	ixDir := buildTestIndex(t)
	st, err := bitmapindex.OpenIndex(ixDir)
	if err != nil {
		t.Fatal(err)
	}
	var slowBuf bytes.Buffer
	srv, err := newQueryServer(st, 4, time.Nanosecond, &slowBuf)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	get := func(path string) (*httptest.ResponseRecorder, string) {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		srv.mux().ServeHTTP(rec, req)
		return rec, rec.Body.String()
	}

	rec, body := get("/query?q=" + strings.ReplaceAll("<= 17", " ", "+") + "&rids=1&limit=3")
	if rec.Code != 200 {
		t.Fatalf("/query = %d: %s", rec.Code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /query JSON: %v\n%s", err, body)
	}
	if resp.Scans <= 0 || resp.Matches <= 0 || resp.Rows != 3000 {
		t.Errorf("scans=%d matches=%d rows=%d, want all positive and rows=3000", resp.Scans, resp.Matches, resp.Rows)
	}
	if len(resp.Phases) < 2 {
		t.Errorf("want >= 2 trace phases in /query response, got %v", resp.Phases)
	}
	if len(resp.RIDs) == 0 || len(resp.RIDs) > 3 {
		t.Errorf("rids=1&limit=3 returned %d ids", len(resp.RIDs))
	}
	// Threshold of 1ns means every query is slow-logged.
	if !strings.Contains(slowBuf.String(), "slow query") {
		t.Errorf("slow log empty, want an entry: %q", slowBuf.String())
	}

	// Cached evaluation path: the same query again must still answer.
	if rec, body = get("/query?q=%3C%3D+17"); rec.Code != 200 {
		t.Fatalf("cached /query = %d: %s", rec.Code, body)
	}

	if rec, body = get("/metrics"); rec.Code != 200 || !strings.Contains(body, "bix_scans_total") {
		t.Errorf("/metrics = %d, body missing bix_scans_total:\n%.300s", rec.Code, body)
	}
	rec, body = get("/metrics?format=json")
	var snap bitmapindex.TelemetrySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("/metrics?format=json invalid: %v", err)
	}
	if snap.Counters["bix_scans_total"] <= 0 {
		t.Errorf("JSON snapshot bix_scans_total = %d, want > 0", snap.Counters["bix_scans_total"])
	}

	if rec, _ = get("/query"); rec.Code != 400 {
		t.Errorf("missing q: got %d, want 400", rec.Code)
	}
	if rec, _ = get("/query?q=bogus"); rec.Code != 400 {
		t.Errorf("bad predicate: got %d, want 400", rec.Code)
	}
}
