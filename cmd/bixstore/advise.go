package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bitmapindex/internal/catalog"
	"bitmapindex/internal/workload"
)

// cmdAdvise runs the design advisor over a catalog table: it prices the
// stored per-attribute designs against the weighted space-budget optimum
// under an observed workload profile (a JSON file saved by `serve
// -workload` or fetched from /debug/workload). Without -profile the
// profile is empty, so the advice reduces to the uniform-workload
// allocation the table was built with.
func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "table directory (required)")
		profPath = fs.String("profile", "", "workload profile JSON (default: empty profile = uniform workload)")
		asJSON   = fs.Bool("json", false, "print the report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("advise needs -dir")
	}
	tbl, err := catalog.Open(*dir)
	if err != nil {
		return err
	}
	var p workload.Profile
	if *profPath != "" {
		if p, err = workload.LoadProfile(*profPath); err != nil {
			return err
		}
	} else {
		p = tbl.Workload().Snapshot()
	}
	rep, err := workload.Advise(tbl.Name(), tbl.Designs(), p)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printAdvice(rep)
	return nil
}

// printAdvice renders a report as a human-readable table plus a summary.
func printAdvice(rep *workload.Report) {
	fmt.Printf("table %s: %d observed queries, budget %d bitmaps\n",
		rep.Table, rep.TotalQueries, rep.Budget)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "attribute\tC\tfreq\trange%\tcurrent design\tscans\trecommended\tscans")
	for _, a := range rep.Attrs {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f%%\t%s %s/%s (%d)\t%.2f\t%s (%d)\t%.2f\n",
			a.Name, a.Card, a.Frequency, 100*a.RangeFrac,
			a.CurrentBase, a.CurrentEncoding, a.CurrentCodec, a.CurrentSpace, a.CurrentTime,
			a.RecommendedBase, a.RecommendedSpace, a.RecommendedTime)
	}
	w.Flush()
	fmt.Printf("drift from uniform: %.4f", rep.Drift)
	if rep.Drifted {
		fmt.Printf(" (over the %.2f threshold — uniform allocation misprices this workload)", workload.DriftThreshold)
	}
	fmt.Println()
	fmt.Printf("expected scans/query: current %.3f, recommended %.3f, gain %.3f\n",
		rep.CurrentTime, rep.RecommendedTime, rep.Gain)
}
