package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildInfoQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	values := filepath.Join(dir, "v.txt")
	if err := cmdGen([]string{"-values", values, "-rows", "2000", "-C", "50", "-dist", "zipf"}); err != nil {
		t.Fatal(err)
	}
	ixDir := filepath.Join(dir, "ix")
	if err := cmdBuild([]string{"-dir", ixDir, "-values", values, "-C", "50", "-scheme", "CS", "-z", "-base", "<5,10>"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-dir", ixDir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-dir", ixDir, "-q", "<= 17", "-rids", "-limit", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWithNulls(t *testing.T) {
	dir := t.TempDir()
	values := filepath.Join(dir, "v.txt")
	if err := os.WriteFile(values, []byte("1\nnull\n3\n\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ixDir := filepath.Join(dir, "ix")
	if err := cmdBuild([]string{"-dir", ixDir, "-values", values, "-C", "4", "-enc", "interval"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-dir", ixDir, "-q", ">= 0"}); err != nil {
		t.Fatal(err)
	}
}

func TestArgumentErrors(t *testing.T) {
	if err := cmdBuild([]string{}); err == nil {
		t.Error("build without flags must fail")
	}
	if err := cmdInfo([]string{}); err == nil {
		t.Error("info without dir must fail")
	}
	if err := cmdQuery([]string{"-dir", t.TempDir(), "-q", "bogus"}); err == nil {
		t.Error("bad predicate must fail")
	}
	if err := cmdQuery([]string{"-dir", t.TempDir(), "-q", "<= x"}); err == nil {
		t.Error("bad constant must fail")
	}
	if err := cmdGen([]string{}); err == nil {
		t.Error("gen without output must fail")
	}
	if err := cmdGen([]string{"-values", filepath.Join(t.TempDir(), "v"), "-dist", "bogus"}); err == nil {
		t.Error("bad distribution must fail")
	}
	values := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(values, []byte("notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-dir", t.TempDir(), "-values", values, "-C", "4"}); err == nil {
		t.Error("bad values file must fail")
	}
}

func TestCSVAndWhere(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	var rows []string
	rows = append(rows, "quantity,price,region")
	for i := 0; i < 500; i++ {
		rows = append(rows, fmt.Sprintf("%d,%d,%d", i%50+1, (i%300)*5, i%8))
	}
	if err := os.WriteFile(csvPath, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tblDir := filepath.Join(dir, "tbl")
	if err := cmdCSV([]string{"-in", csvPath, "-dir", tblDir, "-scheme", "CS", "-z"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhere([]string{"-dir", tblDir, "-q", "quantity <= 10 AND price > 500", "-rids", "-limit", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdWhere([]string{"-dir", tblDir, "-q", "region != 0"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVErrors(t *testing.T) {
	if err := cmdCSV([]string{}); err == nil {
		t.Error("csv without flags must fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\n1,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCSV([]string{"-in", bad, "-dir", filepath.Join(dir, "t")}); err == nil {
		t.Error("non-integer cell must fail")
	}
	short := filepath.Join(dir, "short.csv")
	if err := os.WriteFile(short, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCSV([]string{"-in", short, "-dir", filepath.Join(dir, "t2")}); err == nil {
		t.Error("header-only file must fail")
	}
}

func TestParseConjunction(t *testing.T) {
	preds, err := parseConjunction("a <= 5 AND b != -3 AND c=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 || preds[0].Col != "a" || preds[1].Val != -3 || preds[2].Col != "c" {
		t.Fatalf("parsed %v", preds)
	}
	if _, err := parseConjunction("a ~ 5"); err == nil {
		t.Error("bad operator must fail")
	}
	if _, err := parseConjunction("a <= x"); err == nil {
		t.Error("bad constant must fail")
	}
	if _, err := parseConjunction("<= 5"); err == nil {
		t.Error("missing column must fail")
	}
}
