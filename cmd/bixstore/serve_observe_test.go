package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"bitmapindex"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/profile"
)

// newTestServer opens the index at ixDir behind a queryServer with no cache
// and no slow log.
func newTestServer(t *testing.T, ixDir string) *queryServer {
	t.Helper()
	st, err := bitmapindex.OpenIndex(ixDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newQueryServer(st, 0, 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func muxGet(t *testing.T, mux *http.ServeMux, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec, rec.Body.String()
}

// TestServeDebugRuntime covers the /debug/runtime handler: a fresh runtime
// snapshot as JSON, readable without a running sampler.
func TestServeDebugRuntime(t *testing.T) {
	srv := newTestServer(t, buildTestIndex(t))
	mux := srv.mux()

	rec, body := muxGet(t, mux, "/debug/runtime")
	if rec.Code != 200 {
		t.Fatalf("/debug/runtime = %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var st profile.RuntimeStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /debug/runtime JSON: %v\n%s", err, body)
	}
	if st.GoVersion == "" || st.Goroutines <= 0 || st.HeapBytes == 0 || st.NumCPU <= 0 {
		t.Errorf("implausible runtime status: %+v", st)
	}
	if st.ActiveQueries == nil {
		t.Error("active_queries must be present (empty list, not null)")
	}
}

// TestServeGracefulDrain sends SIGTERM while a query is held in flight and
// checks the drain: the in-flight request still completes with 200, the
// serve loop returns nil, and the shutdown profile hook runs exactly once.
func TestServeGracefulDrain(t *testing.T) {
	srv := newTestServer(t, buildTestIndex(t))
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testDelay = func() {
		once.Do(func() {
			close(inFlight)
			<-release
		})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	profileWrites := 0
	done := make(chan error, 1)
	go func() {
		done <- serveLoop(&http.Server{Handler: srv.mux()}, ln,
			func() error { profileWrites++; return nil })
	}()

	type result struct {
		code int
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/query?q=" + url.QueryEscape("<= 17"))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resCh <- result{resp.StatusCode, nil}
	}()

	<-inFlight
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Give Shutdown a moment to close the listener so the held request is
	// genuinely drained, not answered before shutdown begins.
	time.Sleep(50 * time.Millisecond)
	close(release)

	res := <-resCh
	if res.err != nil || res.code != 200 {
		t.Errorf("in-flight query during drain: code=%d err=%v", res.code, res.err)
	}
	if err := <-done; err != nil {
		t.Errorf("serveLoop returned %v, want nil after graceful drain", err)
	}
	if profileWrites != 1 {
		t.Errorf("shutdown profile hook ran %d times, want 1", profileWrites)
	}
}

// TestServeDebugQueries drives the flight-recorder endpoint: every /query
// leaves a record retrievable from /debug/queries, and the plan filter,
// min_ns filter, ns sort, limit and outliers views all work.
func TestServeDebugQueries(t *testing.T) {
	srv := newTestServer(t, buildTestIndex(t))
	mux := srv.mux()

	queries := []string{"<= 17", "> 40", "== 3"}
	for _, q := range queries {
		if rec, body := muxGet(t, mux, "/query?q="+url.QueryEscape(q)); rec.Code != 200 {
			t.Fatalf("/query %q = %d: %s", q, rec.Code, body)
		}
	}

	decode := func(body string) debugQueriesResponse {
		t.Helper()
		var resp debugQueriesResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("bad /debug/queries JSON: %v\n%s", err, body)
		}
		return resp
	}

	// The recorder is process-global, so filter down to this server's plan
	// tag; at least our three queries must be retained.
	rec, body := muxGet(t, mux, "/debug/queries?plan=http-query")
	if rec.Code != 200 {
		t.Fatalf("/debug/queries = %d: %s", rec.Code, body)
	}
	resp := decode(body)
	if resp.Count < len(queries) || resp.TotalCaptured == 0 {
		t.Fatalf("count=%d total=%d, want >= %d captured", resp.Count, resp.TotalCaptured, len(queries))
	}
	for _, rc := range resp.Records {
		if rc.Plan != "http-query" || rc.TraceID == "" || rc.Scans <= 0 || rc.Total <= 0 {
			t.Errorf("implausible flight record: %+v", rc)
		}
	}

	_, body = muxGet(t, mux, "/debug/queries?plan=http-query&limit=2")
	if got := decode(body); got.Count != 2 || len(got.Records) != 2 {
		t.Errorf("limit=2 returned %d records", got.Count)
	}

	_, body = muxGet(t, mux, "/debug/queries?sort=ns&limit=5")
	sorted := decode(body)
	for i := 1; i < len(sorted.Records); i++ {
		if sorted.Records[i].Total > sorted.Records[i-1].Total {
			t.Errorf("sort=ns not descending at %d: %v > %v", i,
				sorted.Records[i].Total, sorted.Records[i-1].Total)
		}
	}

	_, body = muxGet(t, mux, "/debug/queries?min_ns=9223372036854775806")
	if got := decode(body); got.Count != 0 {
		t.Errorf("min_ns=max returned %d records", got.Count)
	}

	rec, body = muxGet(t, mux, "/debug/queries?outliers=1")
	if rec.Code != 200 {
		t.Fatalf("outliers=1 = %d: %s", rec.Code, body)
	}
	if got := decode(body); got.Count == 0 {
		t.Error("outlier annex empty after queries ran")
	}

	if rec, _ = muxGet(t, mux, "/debug/queries?limit=x"); rec.Code != 400 {
		t.Errorf("bad limit: got %d, want 400", rec.Code)
	}
	if rec, _ = muxGet(t, mux, "/debug/queries?min_ns=x"); rec.Code != 400 {
		t.Errorf("bad min_ns: got %d, want 400", rec.Code)
	}
}

// TestServeQueryAnalyze checks /query?analyze=1 returns the PlanReport and
// that the scan model is exact on the served (on-disk, range-encoded)
// index: predicted scans equal the measured scans of this very execution.
func TestServeQueryAnalyze(t *testing.T) {
	srv := newTestServer(t, buildTestIndex(t))
	mux := srv.mux()

	rec, body := muxGet(t, mux, "/query?q="+url.QueryEscape("<= 17")+"&analyze=1")
	if rec.Code != 200 {
		t.Fatalf("analyze=1 = %d: %s", rec.Code, body)
	}
	var rep engine.PlanReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad PlanReport JSON: %v\n%s", err, body)
	}
	if !rep.ModelApplies || rep.TraceID == "" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MeasuredScans <= 0 || rep.ScansError != 0 {
		t.Errorf("scan model not exact: predicted=%d measured=%d err=%v",
			rep.PredictedScans, rep.MeasuredScans, rep.ScansError)
	}
	if rep.Rows <= 0 || rep.BytesRead <= 0 {
		t.Errorf("rows=%d bytes_read=%d, want both positive", rep.Rows, rep.BytesRead)
	}
	if rep.Method != srv.desc {
		t.Errorf("method %q, want the index design %q", rep.Method, srv.desc)
	}
	if len(rep.Phases) == 0 {
		t.Error("analyzed report missing trace phases")
	}
}

// TestServeQueryAnalyzeBypassesCache pins the cached-server behavior:
// analyzed queries evaluate uncached, so a pool hit can never be
// misreported as cost-model error (predicted scans stay exact even when
// the same query was just served from the cache).
func TestServeQueryAnalyzeBypassesCache(t *testing.T) {
	st, err := bitmapindex.OpenIndex(buildTestIndex(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newQueryServer(st, 8, 0, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	mux := srv.mux()

	// Warm the cache with the plain query, then analyze the same one.
	path := "/query?q=" + url.QueryEscape("<= 17")
	if rec, body := muxGet(t, mux, path); rec.Code != 200 {
		t.Fatalf("warmup = %d: %s", rec.Code, body)
	}
	_, body := muxGet(t, mux, path+"&analyze=1")
	var rep engine.PlanReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad PlanReport JSON: %v\n%s", err, body)
	}
	if rep.ScansError != 0 || rep.MeasuredScans != rep.PredictedScans || rep.MeasuredScans <= 0 {
		t.Fatalf("cached server analyze: predicted=%d measured=%d err=%v",
			rep.PredictedScans, rep.MeasuredScans, rep.ScansError)
	}
}

// TestQueryAnalyzeCLI checks `bixstore query -analyze` prints the same
// PlanReport as JSON on stdout.
func TestQueryAnalyzeCLI(t *testing.T) {
	ixDir := buildTestIndex(t)
	var out bytes.Buffer
	if err := runQuery(&out, []string{"-dir", ixDir, "-q", "<= 17", "-analyze"}); err != nil {
		t.Fatal(err)
	}
	var rep engine.PlanReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad -analyze JSON: %v\n%s", err, out.String())
	}
	if !rep.ModelApplies || rep.ScansError != 0 || rep.MeasuredScans <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Rows <= 0 {
		t.Errorf("rows = %d, want > 0", rep.Rows)
	}
}
