package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitmapindex"
	"bitmapindex/internal/workload"
)

// buildTestTable writes a small CSV and indexes it into a catalog table,
// returning the table directory.
func buildTestTable(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	var rows []string
	rows = append(rows, "quantity,price")
	for i := 0; i < 400; i++ {
		rows = append(rows, fmt.Sprintf("%d,%d", i%40+1, (i%200)*5))
	}
	if err := os.WriteFile(csvPath, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tblDir := filepath.Join(dir, "tbl")
	if err := cmdCSV([]string{"-in", csvPath, "-dir", tblDir}); err != nil {
		t.Fatal(err)
	}
	return tblDir
}

func serveGet(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestServeHealthAndBuildInfo: both probes answer ok, and /metrics carries
// the build-info and uptime gauges.
func TestServeHealthAndBuildInfo(t *testing.T) {
	st, err := bitmapindex.OpenIndex(buildTestIndex(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newQueryServer(st, 0, 0, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	mux := srv.mux()
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, body := serveGet(t, mux, path); code != 200 || !strings.Contains(body, "ok") {
			t.Errorf("%s = %d %q, want 200 ok", path, code, body)
		}
	}
	code, body := serveGet(t, mux, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, `bix_build_info{`) || !strings.Contains(body, "goversion=") {
		t.Errorf("/metrics missing labeled bix_build_info:\n%.400s", body)
	}
	if !strings.Contains(body, "bix_uptime_seconds") {
		t.Errorf("/metrics missing bix_uptime_seconds:\n%.400s", body)
	}
}

// TestServeWorkloadEndpoints (index mode): /query feeds the single-attribute
// accumulator, /debug/workload serves a valid profile, and /debug/advisor
// prices the design within its own budget.
func TestServeWorkloadEndpoints(t *testing.T) {
	st, err := bitmapindex.OpenIndex(buildTestIndex(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newQueryServer(st, 0, 0, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	mux := srv.mux()
	for i := 0; i < 3; i++ {
		if code, body := serveGet(t, mux, "/query?q=%3C%3D+17"); code != 200 {
			t.Fatalf("/query = %d: %s", code, body)
		}
	}
	if code, body := serveGet(t, mux, "/query?q=%3D+5"); code != 200 {
		t.Fatalf("/query = %d: %s", code, body)
	}

	code, body := serveGet(t, mux, "/debug/workload")
	if code != 200 {
		t.Fatalf("/debug/workload = %d", code)
	}
	var p workload.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad /debug/workload JSON: %v\n%s", err, body)
	}
	if len(p.Attrs) != 1 || p.Attrs[0].Name != "value" {
		t.Fatalf("profile attrs = %+v, want single attr \"value\"", p.Attrs)
	}
	if p.Attrs[0].Range != 3 || p.Attrs[0].Eq != 1 {
		t.Errorf("value profile range=%d eq=%d, want 3/1", p.Attrs[0].Range, p.Attrs[0].Eq)
	}
	if p.Attrs[0].Scans == 0 || p.Attrs[0].LatencyNS == 0 {
		t.Errorf("scans=%d latency=%d, want both attributed", p.Attrs[0].Scans, p.Attrs[0].LatencyNS)
	}

	code, body = serveGet(t, mux, "/debug/advisor")
	if code != 200 {
		t.Fatalf("/debug/advisor = %d: %s", code, body)
	}
	var rep workload.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad /debug/advisor JSON: %v\n%s", err, body)
	}
	if rep.Budget <= 0 || rep.TotalQueries != 4 {
		t.Errorf("advisor budget=%d total=%d, want budget>0 total=4", rep.Budget, rep.TotalQueries)
	}
	recSpace := 0
	for _, a := range rep.Attrs {
		recSpace += a.RecommendedSpace
	}
	if recSpace > rep.Budget {
		t.Errorf("recommendation overruns budget: %d > %d", recSpace, rep.Budget)
	}
}

// TestServeTableMode: the catalog mode answers conjunctions, attributes
// predicates per column in /debug/workload, and serves the advisor report.
func TestServeTableMode(t *testing.T) {
	ts, err := newTableServer(buildTestTable(t), "")
	if err != nil {
		t.Fatal(err)
	}
	mux := ts.mux()
	q := strings.ReplaceAll("quantity <= 10 AND price > 500", " ", "+")
	code, body := serveGet(t, mux, "/query?q="+q+"&rids=1&limit=2")
	if code != 200 {
		t.Fatalf("/query = %d: %s", code, body)
	}
	var resp tableQueryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /query JSON: %v\n%s", err, body)
	}
	if resp.Rows != 400 || resp.Matches <= 0 || resp.Scans <= 0 {
		t.Errorf("rows=%d matches=%d scans=%d, want 400/positive/positive", resp.Rows, resp.Matches, resp.Scans)
	}
	if len(resp.RIDs) == 0 || len(resp.RIDs) > 2 {
		t.Errorf("rids=1&limit=2 returned %d ids", len(resp.RIDs))
	}
	if code, _ := serveGet(t, mux, "/query?q=bogus"); code != 400 {
		t.Errorf("bad conjunction: got %d, want 400", code)
	}
	if code, _ := serveGet(t, mux, "/healthz"); code != 200 {
		t.Errorf("/healthz = %d", code)
	}

	code, body = serveGet(t, mux, "/debug/workload")
	if code != 200 {
		t.Fatalf("/debug/workload = %d", code)
	}
	var p workload.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	byName := map[string]workload.AttrProfile{}
	for _, a := range p.Attrs {
		byName[a.Name] = a
	}
	if byName["quantity"].Range != 1 || byName["price"].Range != 1 {
		t.Errorf("per-attr range counts = %+v, want 1 each for quantity and price", byName)
	}

	code, body = serveGet(t, mux, "/debug/advisor")
	if code != 200 {
		t.Fatalf("/debug/advisor = %d: %s", code, body)
	}
	var rep workload.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Attrs) != 2 || rep.Budget <= 0 {
		t.Errorf("advisor report attrs=%d budget=%d", len(rep.Attrs), rep.Budget)
	}
}

// TestServeWorkloadPersistence: a profile saved on shutdown is replayed
// into the accumulator on the next boot, so counts survive restarts.
func TestServeWorkloadPersistence(t *testing.T) {
	tblDir := buildTestTable(t)
	wlPath := filepath.Join(t.TempDir(), "wl.json")

	ts1, err := newTableServer(tblDir, wlPath) // file absent: first boot
	if err != nil {
		t.Fatal(err)
	}
	mux := ts1.mux()
	for i := 0; i < 5; i++ {
		if code, body := serveGet(t, mux, "/query?q=quantity+%3C%3D+7"); code != 200 {
			t.Fatalf("/query = %d: %s", code, body)
		}
	}
	// What cmdServe's shutdown hook does with -workload set.
	if err := ts1.tbl.Workload().Snapshot().Save(wlPath); err != nil {
		t.Fatal(err)
	}

	ts2, err := newTableServer(tblDir, wlPath)
	if err != nil {
		t.Fatal(err)
	}
	p := ts2.tbl.Workload().Snapshot()
	var quantity workload.AttrProfile
	for _, a := range p.Attrs {
		if a.Name == "quantity" {
			quantity = a
		}
	}
	if quantity.Range != 5 {
		t.Errorf("replayed quantity range count = %d, want 5", quantity.Range)
	}

	// A corrupt profile must fail the boot loudly, not silently reset.
	if err := os.WriteFile(wlPath, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newTableServer(tblDir, wlPath); err == nil {
		t.Error("corrupt workload profile must fail newTableServer")
	}
}

// TestCmdAdvise: the subcommand prints a report for a saved skewed profile
// and as JSON.
func TestCmdAdvise(t *testing.T) {
	tblDir := buildTestTable(t)
	if err := cmdAdvise([]string{"-dir", tblDir}); err != nil {
		t.Fatal(err)
	}

	// Build a hot-attribute profile through the real accumulator.
	ts, err := newTableServer(tblDir, "")
	if err != nil {
		t.Fatal(err)
	}
	mux := ts.mux()
	for i := 0; i < 20; i++ {
		if code, _ := serveGet(t, mux, "/query?q=quantity+%3C%3D+9"); code != 200 {
			t.Fatal("query failed")
		}
	}
	if code, _ := serveGet(t, mux, "/query?q=price+%3D+25"); code != 200 {
		t.Fatal("query failed")
	}
	profPath := filepath.Join(t.TempDir(), "wl.json")
	if err := ts.tbl.Workload().Snapshot().Save(profPath); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdvise([]string{"-dir", tblDir, "-profile", profPath, "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdvise([]string{"-dir", tblDir, "-profile", filepath.Join(t.TempDir(), "nope.json")}); err == nil {
		t.Error("missing -profile file must fail")
	}
	if err := cmdAdvise([]string{}); err == nil {
		t.Error("advise without -dir must fail")
	}
}
