package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bitmapindex"
	"bitmapindex/internal/profile"
)

// cmdServe exposes one on-disk index over HTTP: GET /query evaluates a
// predicate and returns JSON including the per-phase trace (with
// allocation attribution), GET /metrics serves the telemetry registry
// (Prometheus text, ?format=json for JSON), GET /debug/runtime a live
// runtime snapshot including the queries currently executing, and
// /debug/pprof/* the standard Go profiling endpoints — CPU samples carry
// bix_query_id/bix_phase labels tying them to individual queries.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "index directory (required)")
		addr    = fs.String("addr", ":8317", "listen address")
		cache   = fs.Int("cache", 0, "bitmap cache capacity (0 = no cache)")
		slow    = fs.Duration("slow", 0, "log queries at or over this duration to stderr (0 = off)")
		profOut = fs.String("profile", "", "write a whole-run profile on shutdown (cpu.out = CPU, heap.out/mem* = heap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve needs -dir")
	}
	st, err := bitmapindex.OpenIndex(*dir)
	if err != nil {
		return err
	}
	srv, err := newQueryServer(st, *cache, *slow, os.Stderr)
	if err != nil {
		return err
	}

	// Feed runtime health (heap, GC pauses, goroutines, scheduler latency)
	// into the registry for the whole lifetime of the server.
	sampler := profile.NewSampler(nil, time.Second)
	sampler.Start()
	defer sampler.Stop()

	// Whole-run profile: CPU runs boot-to-shutdown, heap snapshots at
	// shutdown. Either way the file is complete only on graceful exit.
	writeProfile := func() error { return nil }
	if *profOut != "" {
		switch profile.KindForPath(*profOut) {
		case profile.CPUProfile:
			stop, err := profile.StartCPUProfile(*profOut)
			if err != nil {
				return err
			}
			writeProfile = stop
		case profile.HeapProfile:
			path := *profOut
			writeProfile = func() error { return profile.WriteHeapProfile(path) }
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	server := &http.Server{Addr: *addr, Handler: srv.mux()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("serving %s on %s (cache=%d, slow>=%v)\n", *dir, *addr, *cache, *slow)

	select {
	case err := <-errCh:
		_ = writeProfile()
		return err
	case <-ctx.Done():
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := server.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = writeProfile()
		return err
	}
	return writeProfile()
}

// queryServer evaluates predicates against one opened index, optionally
// through a bitmap cache, and records slow queries.
type queryServer struct {
	eval func(op bitmapindex.Op, v uint64, m *bitmapindex.StoreMetrics) (*bitmapindex.Bitmap, error)
	rows int
	slow *bitmapindex.SlowQueryLog // nil when disabled
}

func newQueryServer(st *bitmapindex.Store, cache int, slow time.Duration, slowW io.Writer) (*queryServer, error) {
	s := &queryServer{eval: st.Eval, rows: st.Index().Rows()}
	if cache > 0 {
		cs, err := bitmapindex.NewCachedStore(st, cache)
		if err != nil {
			return nil, err
		}
		s.eval = cs.Eval
	}
	if slow > 0 {
		s.slow = bitmapindex.NewSlowQueryLog(slow, slowW, 0)
	}
	return s, nil
}

// mux routes /query, /metrics, /debug/runtime and the pprof endpoints.
func (s *queryServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.Handle("/metrics", bitmapindex.MetricsHandler())
	mux.Handle("/debug/runtime", profile.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// queryResponse is the JSON body of a /query evaluation.
type queryResponse struct {
	Query     string      `json:"query"`
	TraceID   string      `json:"trace_id"`
	Matches   int         `json:"matches"`
	Rows      int         `json:"rows"`
	Scans     int         `json:"scans"`
	Ops       opCounts    `json:"ops"`
	FilesRead int         `json:"files_read"`
	BytesRead int64       `json:"bytes_read"`
	ElapsedNS int64       `json:"elapsed_ns"`
	Phases    []phaseJSON `json:"phases"`
	RIDs      []int       `json:"rids,omitempty"`
}

type opCounts struct {
	And int `json:"and"`
	Or  int `json:"or"`
	Xor int `json:"xor"`
	Not int `json:"not"`
}

// phaseJSON is one trace phase: call count, summed duration with per-call
// extremes, and the heap allocation attributed to the phase (profiled
// traces; process-global counters, see telemetry.PhaseRecord).
type phaseJSON struct {
	Phase        string `json:"phase"`
	Calls        int    `json:"calls"`
	NS           int64  `json:"ns"`
	MinNS        int64  `json:"min_ns"`
	MaxNS        int64  `json:"max_ns"`
	AllocBytes   int64  `json:"alloc_bytes,omitempty"`
	AllocObjects int64  `json:"alloc_objects,omitempty"`
}

// handleQuery evaluates q=<op> <value>; rids=1 includes matching record
// ids (capped by limit, default 20).
func (s *queryServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	op, v, err := parsePredicate(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := bitmapindex.StoreMetrics{Trace: bitmapindex.NewQueryTrace(q).Profile()}
	res, err := s.eval(op, v, &m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	matches := popcount(res, m.Trace)
	elapsed := m.Trace.Finish()
	if s.slow != nil {
		s.slow.Observe(q, m.Trace)
	}
	resp := queryResponse{
		Query:     q,
		TraceID:   m.Trace.ID(),
		Matches:   matches,
		Rows:      s.rows,
		Scans:     m.Stats.Scans,
		Ops:       opCounts{And: m.Stats.Ands, Or: m.Stats.Ors, Xor: m.Stats.Xors, Not: m.Stats.Nots},
		FilesRead: m.FilesRead,
		BytesRead: m.BytesRead,
		ElapsedNS: int64(elapsed),
	}
	for _, p := range m.Trace.Phases() {
		resp.Phases = append(resp.Phases, phaseJSON{
			Phase: string(p.Phase), Calls: p.Calls, NS: int64(p.Duration),
			MinNS: int64(p.Min), MaxNS: int64(p.Max),
			AllocBytes: p.AllocBytes, AllocObjects: p.AllocObjects,
		})
	}
	if r.URL.Query().Get("rids") == "1" {
		limit := 20
		if ls := r.URL.Query().Get("limit"); ls != "" {
			fmt.Sscanf(ls, "%d", &limit)
		}
		res.Ones(func(rid int) bool {
			resp.RIDs = append(resp.RIDs, rid)
			return len(resp.RIDs) < limit
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
