package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bitmapindex"
	"bitmapindex/internal/catalog"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/flight"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
	"bitmapindex/internal/workload"
)

// cmdServe exposes one on-disk index — or a whole catalog table, when
// -dir holds a table descriptor — over HTTP: GET /query evaluates a
// predicate (a conjunction in table mode) and returns JSON including the
// per-phase trace (with allocation attribution), GET /metrics serves the
// telemetry registry (Prometheus text, ?format=json for JSON), GET
// /debug/runtime a live runtime snapshot including the queries currently
// executing, GET /debug/workload the accumulated per-attribute workload
// profile, GET /debug/advisor the design advisor's report under that
// profile, GET /healthz and /readyz liveness/readiness probes, and
// /debug/pprof/* the standard Go profiling endpoints — CPU samples carry
// bix_query_id/bix_phase labels tying them to individual queries.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "index or table directory (required)")
		addr    = fs.String("addr", ":8317", "listen address")
		cache   = fs.Int("cache", 0, "bitmap cache capacity (0 = no cache; index mode only)")
		slow    = fs.Duration("slow", 0, "log queries at or over this duration to stderr (0 = off)")
		profOut = fs.String("profile", "", "write a whole-run profile on shutdown (cpu.out = CPU, heap.out/mem* = heap)")
		wlPath  = fs.String("workload", "", "workload profile JSON: loaded at boot when present, saved on graceful shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve needs -dir")
	}
	var (
		handler      http.Handler
		saveWorkload = func() error { return nil }
	)
	if catalog.Exists(*dir) {
		ts, err := newTableServer(*dir, *wlPath)
		if err != nil {
			return err
		}
		handler = ts.mux()
		if *wlPath != "" {
			path := *wlPath
			saveWorkload = func() error { return ts.tbl.Workload().Snapshot().Save(path) }
		}
	} else {
		st, err := bitmapindex.OpenIndex(*dir)
		if err != nil {
			return err
		}
		srv, err := newQueryServer(st, *cache, *slow, os.Stderr)
		if err != nil {
			return err
		}
		if *wlPath != "" {
			if err := loadWorkload(srv.wl, *wlPath); err != nil {
				return err
			}
			path := *wlPath
			saveWorkload = func() error { return srv.wl.Snapshot().Save(path) }
		}
		handler = srv.mux()
	}

	// Feed runtime health (heap, GC pauses, goroutines, scheduler latency)
	// into the registry for the whole lifetime of the server.
	sampler := profile.NewSampler(nil, time.Second)
	sampler.Start()
	defer sampler.Stop()

	// Whole-run profile: CPU runs boot-to-shutdown, heap snapshots at
	// shutdown. Either way the file is complete only on graceful exit.
	writeProfile := func() error { return nil }
	if *profOut != "" {
		switch profile.KindForPath(*profOut) {
		case profile.CPUProfile:
			stop, err := profile.StartCPUProfile(*profOut)
			if err != nil {
				return err
			}
			writeProfile = stop
		case profile.HeapProfile:
			path := *profOut
			writeProfile = func() error { return profile.WriteHeapProfile(path) }
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s on %s (cache=%d, slow>=%v)\n", *dir, ln.Addr(), *cache, *slow)
	onShutdown := func() error {
		werr := saveWorkload()
		if perr := writeProfile(); perr != nil {
			return perr
		}
		return werr
	}
	return serveLoop(&http.Server{Handler: handler}, ln, onShutdown)
}

// loadWorkload replays a previously saved profile into the accumulator so
// a restarted server does not advise from a cold uniform assumption. A
// missing file is not an error (first boot).
func loadWorkload(wl *workload.Accumulator, path string) error {
	p, err := workload.LoadProfile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	return wl.AddProfile(p)
}

// serveLoop runs the server on ln until it fails or the process receives
// SIGINT/SIGTERM, then drains gracefully: in-flight queries get up to five
// seconds to complete before the listener's goroutines are abandoned.
// Split from cmdServe so the signal-drain path is testable against a real
// listener.
func serveLoop(server *http.Server, ln net.Listener, writeProfile func() error) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(ln) }()

	select {
	case err := <-errCh:
		_ = writeProfile()
		return err
	case <-ctx.Done():
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := server.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = writeProfile()
		return err
	}
	return writeProfile()
}

// queryServer evaluates predicates against one opened index, optionally
// through a bitmap cache, and records slow queries.
type queryServer struct {
	eval func(op bitmapindex.Op, v uint64, m *bitmapindex.StoreMetrics) (*bitmapindex.Bitmap, error)
	st   *bitmapindex.Store
	desc string // one-line index-design summary (Store.Describe)
	rows int
	slow *bitmapindex.SlowQueryLog // nil when disabled
	// wl accounts every /query against the index's single attribute
	// ("value"); /debug/workload and /debug/advisor read it.
	wl      *workload.Accumulator
	designs []workload.AttrDesign

	// testDelay, when set, runs at the start of every /query — test hook
	// that holds a request in flight while a shutdown signal arrives.
	testDelay func()
}

func newQueryServer(st *bitmapindex.Store, cache int, slow time.Duration, slowW io.Writer) (*queryServer, error) {
	ix := st.Index()
	s := &queryServer{
		eval: st.Eval, st: st, desc: st.Describe(), rows: ix.Rows(),
		wl: workload.New([]workload.AttrInfo{{Name: "value", Card: ix.Cardinality()}}),
		designs: []workload.AttrDesign{workload.NewAttrDesign("value", ix.Cardinality(),
			ix.Base(), ix.Encoding(), st.Options().Codec.String(), "")},
	}
	if cache > 0 {
		cs, err := bitmapindex.NewCachedStore(st, cache)
		if err != nil {
			return nil, err
		}
		s.eval = cs.Eval
	}
	if slow > 0 {
		s.slow = bitmapindex.NewSlowQueryLog(slow, slowW, 0)
	}
	return s, nil
}

// mux routes /query, /metrics, the health probes, /debug/runtime,
// /debug/queries, /debug/workload, /debug/advisor and the pprof
// endpoints.
func (s *queryServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/debug/workload", serveWorkload(s.wl))
	mux.HandleFunc("/debug/advisor", serveAdvisor("", s.designs, s.wl))
	mux.HandleFunc("/debug/queries", handleDebugQueries)
	addCommonRoutes(mux)
	return mux
}

// addCommonRoutes mounts the endpoints both serve modes share: metrics
// (with the uptime gauge refreshed per scrape), health probes, the
// runtime snapshot and the pprof family.
func addCommonRoutes(mux *http.ServeMux) {
	registerBuildInfo()
	start := time.Now()
	uptime := telemetry.Default().Gauge("bix_uptime_seconds",
		"Seconds since the server started.")
	metrics := bitmapindex.MetricsHandler()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		uptime.Set(int64(time.Since(start).Seconds()))
		metrics.ServeHTTP(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// The store (or table) is fully opened before the listener exists, so
	// readiness coincides with liveness; the probe still gets its own
	// path so orchestration configs don't couple to that coincidence.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/runtime", profile.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// registerBuildInfo publishes the constant-valued bix_build_info gauge:
// value 1, labels carrying the Go version the binary was built with and
// the compiled-in codec set. Grafana-style dashboards join it against the
// other series to show what build is running.
//
//bix:attrlabel (one series per process; the label value is the build's Go version)
func registerBuildInfo() {
	telemetry.Default().Gauge("bix_build_info",
		"Build information; constant 1, details in the labels.",
		telemetry.Label{Name: "goversion", Value: runtime.Version()},
		telemetry.Label{Name: "codecs", Value: "raw,zlib,wah,roaring"},
	).Set(1)
}

// serveWorkload returns a handler for GET /debug/workload: the
// accumulated per-attribute profile as JSON.
func serveWorkload(wl *workload.Accumulator) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(wl.Snapshot())
	}
}

// serveAdvisor returns a handler for GET /debug/advisor: the design
// advisor's report comparing the served design against the weighted
// recommendation under the live profile.
func serveAdvisor(table string, designs []workload.AttrDesign, wl *workload.Accumulator) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rep, err := workload.Advise(table, designs, wl.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	}
}

// queryResponse is the JSON body of a /query evaluation.
type queryResponse struct {
	Query     string      `json:"query"`
	TraceID   string      `json:"trace_id"`
	Matches   int         `json:"matches"`
	Rows      int         `json:"rows"`
	Scans     int         `json:"scans"`
	Ops       opCounts    `json:"ops"`
	FilesRead int         `json:"files_read"`
	BytesRead int64       `json:"bytes_read"`
	ElapsedNS int64       `json:"elapsed_ns"`
	Phases    []phaseJSON `json:"phases"`
	RIDs      []int       `json:"rids,omitempty"`
}

type opCounts struct {
	And int `json:"and"`
	Or  int `json:"or"`
	Xor int `json:"xor"`
	Not int `json:"not"`
}

// phaseJSON is one trace phase: call count, summed duration with per-call
// extremes, and the heap allocation attributed to the phase (profiled
// traces; process-global counters, see telemetry.PhaseRecord).
type phaseJSON struct {
	Phase        string `json:"phase"`
	Calls        int    `json:"calls"`
	NS           int64  `json:"ns"`
	MinNS        int64  `json:"min_ns"`
	MaxNS        int64  `json:"max_ns"`
	AllocBytes   int64  `json:"alloc_bytes,omitempty"`
	AllocObjects int64  `json:"alloc_objects,omitempty"`
}

// handleQuery evaluates q=<op> <value>; rids=1 includes matching record
// ids (capped by limit, default 20); analyze=1 returns the structured
// EXPLAIN ANALYZE PlanReport (cost-model predictions vs this execution's
// actuals) instead of the plain query response. Analyzed queries bypass
// the bitmap cache: the cost model predicts the stored-bitmap scans of
// the uncached serial evaluator, and a pool hit would otherwise be
// misreported as model error.
func (s *queryServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.testDelay != nil {
		s.testDelay()
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	op, v, err := parsePredicate(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	analyze := r.URL.Query().Get("analyze") == "1"
	eval := s.eval
	if analyze {
		eval = s.st.Eval
	}
	m := bitmapindex.StoreMetrics{Trace: bitmapindex.NewQueryTrace(q).Profile()}
	res, err := eval(op, v, &m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	matches := popcount(res, m.Trace)
	elapsed := m.Trace.Finish()
	s.wl.Observe(workload.Event{
		Attr: "value", Class: workload.ClassOf(op), Value: v,
		Matches: matches, Rows: s.rows,
		Scans: m.Stats.Scans, Bytes: m.BytesRead, NS: int64(elapsed),
	})
	if s.slow != nil {
		s.slow.ObserveWithPlan(q, s.desc, m.Trace)
	}
	frec := flight.Record{
		TraceID: m.Trace.ID(), Query: q, Plan: "http-query",
		Op: op.String(), Value: v,
		Total: elapsed, Rows: int64(matches), BytesRead: m.BytesRead,
		Scans: m.Stats.Scans, Ands: m.Stats.Ands, Ors: m.Stats.Ors,
		Xors: m.Stats.Xors, Nots: m.Stats.Nots,
	}
	flight.Default().Add(&frec, m.Trace)

	if analyze {
		ix := s.st.Index()
		rep := engine.AnalyzeIndexQuery(q, s.desc, ix.Base(), ix.Encoding(),
			ix.Cardinality(), op, v, m.Stats, elapsed, m.Trace)
		rep.Rows = matches
		rep.BytesRead = m.BytesRead
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
		return
	}
	resp := queryResponse{
		Query:     q,
		TraceID:   m.Trace.ID(),
		Matches:   matches,
		Rows:      s.rows,
		Scans:     m.Stats.Scans,
		Ops:       opCounts{And: m.Stats.Ands, Or: m.Stats.Ors, Xor: m.Stats.Xors, Not: m.Stats.Nots},
		FilesRead: m.FilesRead,
		BytesRead: m.BytesRead,
		ElapsedNS: int64(elapsed),
	}
	for _, p := range m.Trace.Phases() {
		resp.Phases = append(resp.Phases, phaseJSON{
			Phase: string(p.Phase), Calls: p.Calls, NS: int64(p.Duration),
			MinNS: int64(p.Min), MaxNS: int64(p.Max),
			AllocBytes: p.AllocBytes, AllocObjects: p.AllocObjects,
		})
	}
	if r.URL.Query().Get("rids") == "1" {
		limit := 20
		if ls := r.URL.Query().Get("limit"); ls != "" {
			fmt.Sscanf(ls, "%d", &limit)
		}
		res.Ones(func(rid int) bool {
			resp.RIDs = append(resp.RIDs, rid)
			return len(resp.RIDs) < limit
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// debugQueriesResponse is the JSON body of /debug/queries.
type debugQueriesResponse struct {
	// TotalCaptured counts every record accepted since process start,
	// including ones the ring has since overwritten.
	TotalCaptured uint64          `json:"total_captured"`
	Count         int             `json:"count"`
	Records       []flight.Record `json:"records"`
}

// handleDebugQueries serves the flight recorder: the last-N retained
// query records (oldest first), or the retained latency outliers with
// outliers=1. Filters: plan=<substring> and min_ns=<ns> narrow the set;
// sort=ns orders slowest-first (default is arrival order); limit=<n>
// keeps the most recent n (or the top n under sort=ns).
func handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	rec := flight.Default()
	q := r.URL.Query()
	var records []flight.Record
	if q.Get("outliers") == "1" {
		records = rec.Outliers()
	} else {
		records = rec.Snapshot()
	}

	if plan := q.Get("plan"); plan != "" {
		kept := records[:0]
		for _, rc := range records {
			if strings.Contains(rc.Plan, plan) {
				kept = append(kept, rc)
			}
		}
		records = kept
	}
	if ms := q.Get("min_ns"); ms != "" {
		minNS, err := strconv.ParseInt(ms, 10, 64)
		if err != nil {
			http.Error(w, "bad min_ns: "+err.Error(), http.StatusBadRequest)
			return
		}
		kept := records[:0]
		for _, rc := range records {
			if rc.Total.Nanoseconds() >= minNS {
				kept = append(kept, rc)
			}
		}
		records = kept
	}
	byNS := q.Get("sort") == "ns"
	if byNS {
		sort.Slice(records, func(i, j int) bool { return records[i].Total > records[j].Total })
	}
	if ls := q.Get("limit"); ls != "" {
		limit, err := strconv.Atoi(ls)
		if err != nil || limit < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if limit < len(records) {
			if byNS {
				records = records[:limit] // top-N slowest
			} else {
				records = records[len(records)-limit:] // most recent N
			}
		}
	}

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(debugQueriesResponse{
		TotalCaptured: rec.Seq(), Count: len(records), Records: records,
	})
}
