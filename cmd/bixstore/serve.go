package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"bitmapindex"
)

// cmdServe exposes one on-disk index over HTTP: GET /query evaluates a
// predicate and returns JSON including the per-phase trace, GET /metrics
// serves the telemetry registry (Prometheus text, ?format=json for JSON).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		dir   = fs.String("dir", "", "index directory (required)")
		addr  = fs.String("addr", ":8317", "listen address")
		cache = fs.Int("cache", 0, "bitmap cache capacity (0 = no cache)")
		slow  = fs.Duration("slow", 0, "log queries at or over this duration to stderr (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve needs -dir")
	}
	st, err := bitmapindex.OpenIndex(*dir)
	if err != nil {
		return err
	}
	srv, err := newQueryServer(st, *cache, *slow, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s on %s (cache=%d, slow>=%v)\n", *dir, *addr, *cache, *slow)
	return http.ListenAndServe(*addr, srv.mux())
}

// queryServer evaluates predicates against one opened index, optionally
// through a bitmap cache, and records slow queries.
type queryServer struct {
	eval func(op bitmapindex.Op, v uint64, m *bitmapindex.StoreMetrics) (*bitmapindex.Bitmap, error)
	rows int
	slow *bitmapindex.SlowQueryLog // nil when disabled
}

func newQueryServer(st *bitmapindex.Store, cache int, slow time.Duration, slowW io.Writer) (*queryServer, error) {
	s := &queryServer{eval: st.Eval, rows: st.Index().Rows()}
	if cache > 0 {
		cs, err := bitmapindex.NewCachedStore(st, cache)
		if err != nil {
			return nil, err
		}
		s.eval = cs.Eval
	}
	if slow > 0 {
		s.slow = bitmapindex.NewSlowQueryLog(slow, slowW, 0)
	}
	return s, nil
}

// mux routes /query and /metrics.
func (s *queryServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.Handle("/metrics", bitmapindex.MetricsHandler())
	return mux
}

// queryResponse is the JSON body of a /query evaluation.
type queryResponse struct {
	Query     string      `json:"query"`
	Matches   int         `json:"matches"`
	Rows      int         `json:"rows"`
	Scans     int         `json:"scans"`
	Ops       opCounts    `json:"ops"`
	FilesRead int         `json:"files_read"`
	BytesRead int64       `json:"bytes_read"`
	ElapsedNS int64       `json:"elapsed_ns"`
	Phases    []phaseJSON `json:"phases"`
	RIDs      []int       `json:"rids,omitempty"`
}

type opCounts struct {
	And int `json:"and"`
	Or  int `json:"or"`
	Xor int `json:"xor"`
	Not int `json:"not"`
}

type phaseJSON struct {
	Phase string `json:"phase"`
	Calls int    `json:"calls"`
	NS    int64  `json:"ns"`
}

// handleQuery evaluates q=<op> <value>; rids=1 includes matching record
// ids (capped by limit, default 20).
func (s *queryServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	op, v, err := parsePredicate(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := bitmapindex.StoreMetrics{Trace: bitmapindex.NewQueryTrace(q)}
	res, err := s.eval(op, v, &m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	matches := popcount(res, m.Trace)
	elapsed := m.Trace.Finish()
	if s.slow != nil {
		s.slow.Observe(q, m.Trace)
	}
	resp := queryResponse{
		Query:     q,
		Matches:   matches,
		Rows:      s.rows,
		Scans:     m.Stats.Scans,
		Ops:       opCounts{And: m.Stats.Ands, Or: m.Stats.Ors, Xor: m.Stats.Xors, Not: m.Stats.Nots},
		FilesRead: m.FilesRead,
		BytesRead: m.BytesRead,
		ElapsedNS: int64(elapsed),
	}
	for _, p := range m.Trace.Phases() {
		resp.Phases = append(resp.Phases, phaseJSON{Phase: string(p.Phase), Calls: p.Calls, NS: int64(p.Duration)})
	}
	if r.URL.Query().Get("rids") == "1" {
		limit := 20
		if ls := r.URL.Query().Get("limit"); ls != "" {
			fmt.Sscanf(ls, "%d", &limit)
		}
		res.Ones(func(rid int) bool {
			resp.RIDs = append(resp.RIDs, rid)
			return len(resp.RIDs) < limit
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
