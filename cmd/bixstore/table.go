package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bitmapindex"
	"bitmapindex/internal/catalog"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/reorder"
	"bitmapindex/internal/storage"
)

// cmdCSV loads a CSV file (header row + integer cells) into a catalog of
// per-column bitmap indexes.
func cmdCSV(args []string) error {
	fs := flag.NewFlagSet("csv", flag.ExitOnError)
	var (
		in     = fs.String("in", "", "CSV file with a header row and integer cells (required)")
		dir    = fs.String("dir", "", "output table directory (required)")
		scheme = fs.String("scheme", "BS", "storage scheme: BS, CS or IS")
		z      = fs.Bool("z", false, "zlib-compress the stored files")
		codec  = fs.String("codec", "", "compression codec: raw, zlib, wah or roaring (overrides -z)")
		encStr = fs.String("enc", "range", "encoding: range, equality or interval")
		sortBy = fs.String("reorder", "none", "row sort before indexing: none, lex or gray")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("csv needs -in and -dir")
	}
	rel, err := loadCSV(*in)
	if err != nil {
		return err
	}
	sc, err := bitmapindex.ParseStoreScheme(*scheme)
	if err != nil {
		return err
	}
	enc, err := bitmapindex.ParseEncoding(*encStr)
	if err != nil {
		return err
	}
	cd, err := bitmapindex.ParseStoreCodec(*codec)
	if err != nil {
		return err
	}
	ord, err := reorder.ParseOrder(*sortBy)
	if err != nil {
		return err
	}
	tbl, err := catalog.Create(*dir, rel, catalog.Options{
		Store:    storage.Options{Scheme: sc, Compress: *z, Codec: cd},
		Encoding: enc,
		Reorder:  ord,
	})
	if err != nil {
		return err
	}
	fmt.Printf("indexed table %s: %d rows, %d attributes\n", tbl.Name(), tbl.Rows(), len(tbl.Attributes()))
	for _, name := range tbl.Attributes() {
		a, err := tbl.Attr(name)
		if err != nil {
			return err
		}
		ix := a.Store().Index()
		fmt.Printf("  %-16s C=%-6d %s (%d bytes on disk)\n", name, a.Dict().Card(),
			bitmapindex.Describe(ix.Base(), ix.Encoding(), ix.Cardinality()), a.Store().ValueBytes())
	}
	return nil
}

// loadCSV reads the file into a relation, dictionary-encoding each column.
func loadCSV(path string) (*engine.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rows, err := rd.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s: need a header row and at least one data row", path)
	}
	header := rows[0]
	cols := make([][]int64, len(header))
	for ri, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("%s: row %d has %d cells, header has %d", path, ri+2, len(row), len(header))
		}
		for ci, cell := range row {
			v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: row %d column %q: %v", path, ri+2, header[ci], err)
			}
			cols[ci] = append(cols[ci], v)
		}
	}
	rel := engine.NewRelation(strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".csv"))
	for ci, name := range header {
		if _, err := rel.AddInt64(strings.TrimSpace(name), cols[ci]); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// cmdWhere runs a conjunctive query against a catalog built by cmdCSV.
func cmdWhere(args []string) error {
	fs := flag.NewFlagSet("where", flag.ExitOnError)
	var (
		dir   = fs.String("dir", "", "table directory (required)")
		q     = fs.String("q", "", "conjunction, e.g. \"quantity <= 10 AND price > 500\" (required)")
		rids  = fs.Bool("rids", false, "print matching record ids")
		limit = fs.Int("limit", 20, "max record ids to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *q == "" {
		return fmt.Errorf("where needs -dir and -q")
	}
	preds, err := parseConjunction(*q)
	if err != nil {
		return err
	}
	tbl, err := catalog.Open(*dir)
	if err != nil {
		return err
	}
	var m storage.Metrics
	res, err := tbl.Query(preds, &m)
	if err != nil {
		return err
	}
	fmt.Printf("%d of %d rows match\n", res.Count(), tbl.Rows())
	fmt.Printf("scans: %d bitmaps, %d files, %d bytes read\n", m.Stats.Scans, m.FilesRead, m.BytesRead)
	if *rids {
		n := 0
		res.Ones(func(r int) bool {
			fmt.Println(r)
			n++
			return n < *limit
		})
	}
	return nil
}

// parseConjunction parses "col op val AND col op val ...".
func parseConjunction(s string) ([]engine.Pred, error) {
	var preds []engine.Pred
	for _, clause := range strings.Split(s, " AND ") {
		p, err := parseClause(strings.TrimSpace(clause))
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	return preds, nil
}

func parseClause(s string) (engine.Pred, error) {
	// Longest operators first so "<=" wins over "<".
	for _, opStr := range []string{"<=", ">=", "!=", "<>", "==", "=", "<", ">"} {
		i := strings.Index(s, opStr)
		if i < 0 {
			continue
		}
		col := strings.TrimSpace(s[:i])
		valStr := strings.TrimSpace(s[i+len(opStr):])
		if col == "" || valStr == "" {
			return engine.Pred{}, fmt.Errorf("bad clause %q", s)
		}
		op, err := bitmapindex.ParseOp(opStr)
		if err != nil {
			return engine.Pred{}, err
		}
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return engine.Pred{}, fmt.Errorf("bad constant in %q: %v", s, err)
		}
		return engine.Pred{Col: col, Op: op, Val: v}, nil
	}
	return engine.Pred{}, fmt.Errorf("no operator in clause %q", s)
}
