package main

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"bitmapindex"
)

// buildLargeTestIndex builds an index big enough that each fetched bitmap
// is a large (>32KB) heap object, which the runtime's allocation counters
// credit immediately — so the per-phase alloc deltas in the /query JSON
// are deterministic rather than span-refill dependent.
func buildLargeTestIndex(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	values := filepath.Join(dir, "v.txt")
	if err := cmdGen([]string{"-values", values, "-rows", "300000", "-C", "50"}); err != nil {
		t.Fatal(err)
	}
	ixDir := filepath.Join(dir, "ix")
	if err := cmdBuild([]string{"-dir", ixDir, "-values", values, "-C", "50", "-scheme", "BS", "-z"}); err != nil {
		t.Fatal(err)
	}
	return ixDir
}

// TestServeProfilingEndpoints covers the serve-side observability surface:
// pprof endpoints respond, /debug/runtime returns a plausible snapshot,
// and a traced /query reports its trace ID plus per-phase allocation
// deltas.
func TestServeProfilingEndpoints(t *testing.T) {
	ixDir := buildLargeTestIndex(t)
	st, err := bitmapindex.OpenIndex(ixDir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newQueryServer(st, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mux := srv.mux()
	get := func(path string) (*httptest.ResponseRecorder, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Body.String()
	}

	// pprof index and a cheap concrete profile endpoint.
	if rec, body := get("/debug/pprof/"); rec.Code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, body %.120q", rec.Code, body)
	}
	if rec, _ := get("/debug/pprof/heap?debug=1"); rec.Code != 200 {
		t.Errorf("/debug/pprof/heap = %d", rec.Code)
	}
	if rec, _ := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", rec.Code)
	}

	// Runtime snapshot.
	rec, body := get("/debug/runtime")
	if rec.Code != 200 {
		t.Fatalf("/debug/runtime = %d", rec.Code)
	}
	var rt struct {
		GoVersion  string `json:"go_version"`
		Goroutines int    `json:"goroutines"`
		HeapBytes  uint64 `json:"heap_bytes"`
	}
	if err := json.Unmarshal([]byte(body), &rt); err != nil {
		t.Fatalf("bad /debug/runtime JSON: %v\n%s", err, body)
	}
	if rt.GoVersion == "" || rt.Goroutines < 1 || rt.HeapBytes == 0 {
		t.Errorf("implausible runtime snapshot: %+v", rt)
	}

	// Traced query: trace ID present, and the fetch phase carries the
	// allocation of the decompressed bitmaps it materialized.
	rec, body = get("/query?q=%3C%3D+17")
	if rec.Code != 200 {
		t.Fatalf("/query = %d: %s", rec.Code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad /query JSON: %v\n%s", err, body)
	}
	if resp.TraceID == "" || !strings.Contains(resp.TraceID, "#") {
		t.Errorf("trace_id = %q, want name#seq", resp.TraceID)
	}
	var fetchAlloc int64
	for _, p := range resp.Phases {
		if p.MinNS > p.MaxNS || p.NS < p.MaxNS {
			t.Errorf("phase %s: incoherent ns aggregates %+v", p.Phase, p)
		}
		if p.Phase == "fetch" {
			fetchAlloc = p.AllocBytes
		}
	}
	// Each fetched bitmap is 300000/8 = 37500 bytes; a one-sided range
	// predicate fetches at least one.
	if fetchAlloc < 300000/8 {
		t.Errorf("fetch phase alloc_bytes = %d, want >= %d (one decompressed bitmap)", fetchAlloc, 300000/8)
	}
}
