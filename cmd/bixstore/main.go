// Command bixstore builds, saves, inspects and queries on-disk bitmap
// indexes in any of the paper's three physical layouts.
//
// Usage:
//
//	bixstore build -dir ./ix -values data.txt -C 50 [-base "<5,10>"] [-enc range] [-scheme BS] [-z]
//	bixstore info  -dir ./ix
//	bixstore query -dir ./ix -q "<= 17" [-metrics] [-analyze]
//	bixstore serve -dir ./ix -addr :8317 [-cache 16] [-slow 100ms]
//	bixstore gen   -values data.txt -rows 100000 -C 50 [-dist uniform|zipf|clustered]
//	bixstore csv   -in table.csv -dir ./tbl [-scheme CS] [-z] [-enc range]
//	bixstore where -dir ./tbl -q "quantity <= 10 AND price > 500"
//
// The values file holds one integer per line; "null" marks a null row.
// CSV files need a header row and integer cells; csv builds one bitmap
// index per column (knee design) plus the value dictionaries, and where
// runs conjunctive queries against them.
//
// query -metrics appends the per-phase query trace and a Prometheus-format
// dump of the telemetry registry to the output; query -analyze prints the
// structured EXPLAIN ANALYZE plan report instead (cost-model predictions
// beside the measured actuals, as JSON). serve exposes the index
// over HTTP: GET /query?q=<pred> evaluates a predicate and returns JSON
// (including the trace), GET /metrics serves the registry in Prometheus
// text format (?format=json for the JSON snapshot), and queries at or over
// the -slow threshold are logged to stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bitmapindex"
	"bitmapindex/internal/data"
	"bitmapindex/internal/engine"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "csv":
		err = cmdCSV(os.Args[2:])
	case "where":
		err = cmdWhere(os.Args[2:])
	case "advise":
		err = cmdAdvise(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bixstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bixstore {build|info|query|serve|gen|csv|where|advise} [flags]; run a subcommand with -h for its flags")
}

func readValues(path string) (vals []uint64, nulls []bool, hasNulls bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "null" {
			vals = append(vals, 0)
			nulls = append(nulls, true)
			hasNulls = true
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, nil, false, fmt.Errorf("%s: %v", path, err)
		}
		vals = append(vals, v)
		nulls = append(nulls, false)
	}
	return vals, nulls, hasNulls, sc.Err()
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "output directory (required)")
		values  = fs.String("values", "", "values file, one integer (or 'null') per line (required)")
		card    = fs.Uint64("C", 0, "attribute cardinality (required)")
		baseStr = fs.String("base", "", "base sequence, e.g. \"<5,10>\" (default: knee design)")
		encStr  = fs.String("enc", "range", "encoding: range or equality")
		scheme  = fs.String("scheme", "BS", "storage scheme: BS, CS or IS")
		z       = fs.Bool("z", false, "zlib-compress the stored files")
		codec   = fs.String("codec", "", "compression codec: raw, zlib, wah or roaring (overrides -z)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *values == "" || *card == 0 {
		return fmt.Errorf("build needs -dir, -values and -C")
	}
	vals, nulls, hasNulls, err := readValues(*values)
	if err != nil {
		return err
	}
	enc, err := bitmapindex.ParseEncoding(*encStr)
	if err != nil {
		return err
	}
	opts := []bitmapindex.Option{bitmapindex.WithEncoding(enc)}
	if *baseStr != "" {
		b, err := bitmapindex.ParseBase(*baseStr)
		if err != nil {
			return err
		}
		opts = append(opts, bitmapindex.WithBase(b))
	}
	if hasNulls {
		opts = append(opts, bitmapindex.WithNulls(nulls))
	}
	ix, err := bitmapindex.New(vals, *card, opts...)
	if err != nil {
		return err
	}
	sc, err := bitmapindex.ParseStoreScheme(*scheme)
	if err != nil {
		return err
	}
	cd, err := bitmapindex.ParseStoreCodec(*codec)
	if err != nil {
		return err
	}
	st, err := bitmapindex.SaveIndex(ix, *dir, bitmapindex.StoreOptions{Scheme: sc, Compress: *z, Codec: cd})
	if err != nil {
		return err
	}
	fmt.Printf("built %s over %d rows: %s\n", st.Options(), ix.Rows(),
		bitmapindex.Describe(ix.Base(), ix.Encoding(), ix.Cardinality()))
	fmt.Printf("on-disk value bitmaps: %d bytes\n", st.ValueBytes())
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("info needs -dir")
	}
	st, err := bitmapindex.OpenIndex(*dir)
	if err != nil {
		return err
	}
	ix := st.Index()
	fmt.Printf("layout:      %s\n", st.Options())
	fmt.Printf("rows:        %d (%d null)\n", ix.Rows(), ix.Rows()-ix.NonNull().Count())
	fmt.Printf("cardinality: %d\n", ix.Cardinality())
	fmt.Printf("design:      %s\n", bitmapindex.Describe(ix.Base(), ix.Encoding(), ix.Cardinality()))
	fmt.Printf("disk bytes:  %d\n", st.ValueBytes())
	return nil
}

func cmdQuery(args []string) error { return runQuery(os.Stdout, args) }

// runQuery is cmdQuery writing to w, so tests can inspect the output.
func runQuery(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "index directory (required)")
		q       = fs.String("q", "", "predicate, e.g. \"<= 17\" (required)")
		list    = fs.Bool("rids", false, "print matching record ids")
		limit   = fs.Int("limit", 20, "max record ids to print")
		metrics = fs.Bool("metrics", false, "print the query trace and a Prometheus metrics dump")
		analyze = fs.Bool("analyze", false, "print the EXPLAIN ANALYZE plan report as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *q == "" {
		return fmt.Errorf("query needs -dir and -q")
	}
	op, v, err := parsePredicate(*q)
	if err != nil {
		return err
	}
	st, err := bitmapindex.OpenIndex(*dir)
	if err != nil {
		return err
	}
	var m bitmapindex.StoreMetrics
	switch {
	case *analyze:
		m.Trace = bitmapindex.NewQueryTrace(*q).Profile()
	case *metrics:
		m.Trace = bitmapindex.NewQueryTrace(*q)
	}
	res, err := st.Eval(op, v, &m)
	if err != nil {
		return err
	}
	count := popcount(res, m.Trace)
	if *analyze {
		elapsed := m.Trace.Finish()
		ix := st.Index()
		rep := engine.AnalyzeIndexQuery(*q, st.Describe(), ix.Base(), ix.Encoding(),
			ix.Cardinality(), op, v, m.Stats, elapsed, m.Trace)
		rep.Rows = count
		rep.BytesRead = m.BytesRead
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(w, "A %s %d: %d of %d rows match\n", op, v, count, st.Index().Rows())
	fmt.Fprintf(w, "scans: %d bitmaps, %d files, %d bytes read\n", m.Stats.Scans, m.FilesRead, m.BytesRead)
	if *list {
		n := 0
		res.Ones(func(r int) bool {
			fmt.Fprintln(w, r)
			n++
			return n < *limit
		})
	}
	if *metrics {
		m.Trace.Finish()
		fmt.Fprintln(w)
		fmt.Fprint(w, m.Trace.String())
		fmt.Fprintln(w)
		if err := bitmapindex.WriteMetrics(w); err != nil {
			return err
		}
	}
	return nil
}

// popcount counts result bits under the popcount trace phase.
func popcount(res *bitmapindex.Bitmap, tr *bitmapindex.QueryTrace) int {
	sp := tr.Start("popcount")
	defer sp.End()
	return res.Count()
}

func parsePredicate(q string) (bitmapindex.Op, uint64, error) {
	parts := strings.Fields(q)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("predicate must be \"<op> <value>\", got %q", q)
	}
	op, err := bitmapindex.ParseOp(parts[0])
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return op, v, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out  = fs.String("values", "", "output file (required)")
		rows = fs.Int("rows", 100000, "number of rows")
		card = fs.Uint64("C", 50, "attribute cardinality")
		dist = fs.String("dist", "uniform", "distribution: uniform, zipf or clustered")
		seed = fs.Int64("seed", 1998, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen needs -values")
	}
	var col data.Column
	switch *dist {
	case "uniform":
		col = data.Uniform(*rows, *card, *seed)
	case "zipf":
		col = data.Zipf(*rows, *card, 1.5, *seed)
	case "clustered":
		col = data.Clustered(*rows, *card, 64, *seed)
	default:
		return fmt.Errorf("unknown distribution %q", *dist)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, v := range col.Values {
		fmt.Fprintln(w, v)
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // the flush error takes precedence
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, col)
	return nil
}
