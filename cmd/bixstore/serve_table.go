package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"bitmapindex/internal/catalog"
	"bitmapindex/internal/flight"
	"bitmapindex/internal/storage"
	"bitmapindex/internal/telemetry"
)

// tableServer is serve's catalog mode: conjunctive queries against a
// table built by `bixstore csv`, with the always-on workload accumulator
// and the design advisor exposed under /debug.
type tableServer struct {
	tbl *catalog.Table
}

// newTableServer opens the table and, when wlPath names a saved profile,
// replays it into the table's workload accumulator.
func newTableServer(dir, wlPath string) (*tableServer, error) {
	tbl, err := catalog.Open(dir)
	if err != nil {
		return nil, err
	}
	if wlPath != "" {
		if err := loadWorkload(tbl.Workload(), wlPath); err != nil {
			return nil, err
		}
	}
	return &tableServer{tbl: tbl}, nil
}

// mux routes /query (a conjunction), /debug/workload, /debug/advisor,
// /debug/queries and the shared metrics/health/pprof endpoints.
func (s *tableServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/debug/workload", serveWorkload(s.tbl.Workload()))
	mux.HandleFunc("/debug/advisor", s.handleAdvisor)
	mux.HandleFunc("/debug/queries", handleDebugQueries)
	addCommonRoutes(mux)
	return mux
}

// tableQueryResponse is the JSON body of a table-mode /query evaluation.
type tableQueryResponse struct {
	Query     string `json:"query"`
	TraceID   string `json:"trace_id"`
	Matches   int    `json:"matches"`
	Rows      int    `json:"rows"`
	Scans     int    `json:"scans"`
	FilesRead int    `json:"files_read"`
	BytesRead int64  `json:"bytes_read"`
	ElapsedNS int64  `json:"elapsed_ns"`
	RIDs      []int  `json:"rids,omitempty"`
}

// handleQuery evaluates q=<col> <op> <val> [AND ...]; rids=1 includes
// matching record ids (capped by limit, default 20). Each predicate is
// accounted against its attribute in the workload profile by
// catalog.Table.Query itself.
func (s *tableServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	preds, err := parseConjunction(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := storage.Metrics{Trace: telemetry.NewTrace(q)}
	start := time.Now()
	res, err := s.tbl.Query(preds, &m)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	matches := res.Count()
	elapsed := time.Since(start)
	frec := flight.Record{
		TraceID: m.Trace.ID(), Query: q, Plan: "table-query",
		Total: elapsed, Rows: int64(matches), BytesRead: m.BytesRead,
		Scans: m.Stats.Scans, Ands: m.Stats.Ands, Ors: m.Stats.Ors,
		Xors: m.Stats.Xors, Nots: m.Stats.Nots,
	}
	flight.Default().Add(&frec, m.Trace)

	resp := tableQueryResponse{
		Query:     q,
		TraceID:   m.Trace.ID(),
		Matches:   matches,
		Rows:      s.tbl.Rows(),
		Scans:     m.Stats.Scans,
		FilesRead: m.FilesRead,
		BytesRead: m.BytesRead,
		ElapsedNS: int64(elapsed),
	}
	if r.URL.Query().Get("rids") == "1" {
		limit := 20
		if ls := r.URL.Query().Get("limit"); ls != "" {
			fmt.Sscanf(ls, "%d", &limit)
		}
		res.Ones(func(rid int) bool {
			resp.RIDs = append(resp.RIDs, rid)
			return len(resp.RIDs) < limit
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleAdvisor serves GET /debug/advisor for table mode: the advisor
// report comparing the stored per-attribute designs against the weighted
// recommendation under the live profile.
func (s *tableServer) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	rep, err := s.tbl.Advise()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}
