package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Noise thresholds for the regression check, by metric kind. "count"
// metrics are deterministic for a fixed (rows, seed) — any drift is a real
// behavior change. "rate" metrics (hit rates) tolerate small wobble, and
// "time" metrics must absorb scheduler and machine noise, so only large
// wall-clock slowdowns fail.
var compareThresholds = map[string]float64{
	"count": 1e-9,
	"rate":  0.05,
	"time":  0.35,
}

// compareRow is the verdict on one metric present in either report.
type compareRow struct {
	Suite  string
	Metric string
	Kind   string
	Old    float64
	New    float64
	Change float64 // relative change in the "worse" direction; NaN when old == 0
	Status string  // "ok" | "improved" | "REGRESSED" | "missing" | "new" | "not run"
}

// runCompare loads two -json reports and fails (non-nil error) when any
// suite metric regressed past its kind's noise threshold, or when a
// baseline metric disappeared from a suite the new report ran. New
// metrics absent from the baseline, and whole suites the new report did
// not run (a baseline carrying core+compression compared against a
// core-only run, or vice versa), are informational.
func runCompare(oldPath, newPath string, w io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	rows := compareReports(oldRep, newRep)
	fmt.Fprintf(w, "%-14s %-24s %-6s %14s %14s %9s  %s\n",
		"suite", "metric", "kind", "old", "new", "change", "status")
	regressions := 0
	for _, r := range rows {
		change := "-"
		if !math.IsNaN(r.Change) {
			change = fmt.Sprintf("%+.1f%%", r.Change*100)
		}
		fmt.Fprintf(w, "%-14s %-24s %-6s %14.6g %14.6g %9s  %s\n",
			r.Suite, r.Metric, r.Kind, r.Old, r.New, change, r.Status)
		if r.Status == "REGRESSED" || r.Status == "missing" {
			regressions++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d metric(s) regressed vs %s", regressions, oldPath)
	}
	fmt.Fprintf(w, "no regressions vs %s\n", oldPath)
	return nil
}

func loadReport(path string) (benchReport, error) {
	var r benchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Suites) == 0 {
		return r, fmt.Errorf("%s: no suites (run bixbench -suite core -json %s)", path, path)
	}
	return r, nil
}

// compareReports pairs up suite metrics by (suite, metric) name and
// classifies each. Rows come out in baseline order, then any new metrics.
func compareReports(oldRep, newRep benchReport) []compareRow {
	type key struct{ suite, metric string }
	newVals := make(map[key]suiteMetric)
	newSeen := make(map[key]bool)
	newSuites := make(map[string]bool)
	for _, s := range newRep.Suites {
		newSuites[s.Name] = true
		for _, m := range s.Metrics {
			newVals[key{s.Name, m.Name}] = m
		}
	}
	var rows []compareRow
	for _, s := range oldRep.Suites {
		for _, m := range s.Metrics {
			k := key{s.Name, m.Name}
			nm, ok := newVals[k]
			if !ok {
				// A metric gone from a suite the new report ran is a real
				// removal and fails; a whole suite the new report did not
				// run (a broader baseline compared against a narrower run)
				// is informational.
				status := "missing"
				if !newSuites[s.Name] {
					status = "not run"
				}
				rows = append(rows, compareRow{Suite: s.Name, Metric: m.Name, Kind: m.Kind,
					Old: m.Value, New: math.NaN(), Change: math.NaN(), Status: status})
				continue
			}
			newSeen[k] = true
			rows = append(rows, classify(s.Name, m, nm))
		}
	}
	for _, s := range newRep.Suites {
		for _, m := range s.Metrics {
			if !newSeen[key{s.Name, m.Name}] {
				rows = append(rows, compareRow{Suite: s.Name, Metric: m.Name, Kind: m.Kind,
					Old: math.NaN(), New: m.Value, Change: math.NaN(), Status: "new"})
			}
		}
	}
	return rows
}

// classify computes the relative change of one paired metric in the
// "worse" direction (positive = worse) and applies the kind threshold.
// The baseline's kind and direction win when the two reports disagree.
func classify(suite string, old, new_ suiteMetric) compareRow {
	r := compareRow{Suite: suite, Metric: old.Name, Kind: old.Kind, Old: old.Value, New: new_.Value}
	var worse float64 // relative move in the losing direction
	switch {
	case old.Value == 0 && new_.Value == 0:
		worse = 0
	case old.Value == 0:
		// From exactly zero any nonzero value is a full-scale move; sign
		// follows the direction of improvement.
		worse = math.Inf(1)
		if old.Better == "higher" {
			worse = math.Inf(-1)
		}
	default:
		worse = (new_.Value - old.Value) / math.Abs(old.Value)
		if old.Better == "higher" {
			worse = -worse
		}
	}
	r.Change = worse
	threshold, ok := compareThresholds[old.Kind]
	if !ok {
		threshold = compareThresholds["time"] // unknown kinds get the loosest bar
	}
	switch {
	case worse > threshold:
		r.Status = "REGRESSED"
	case worse < -threshold:
		r.Status = "improved"
	default:
		r.Status = "ok"
	}
	return r
}
