package main

import (
	"fmt"
	"io"
	"math"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
	"bitmapindex/internal/workload"
)

// The advisor suite's planted workload: three attributes, one of which
// receives advisorHotShare of the queries. The uniform space allocation
// the table would be built with misprices this skew; the suite replays
// the stream, asks the advisor, rebuilds under its recommendation and
// verifies the recommendation beats uniform on the measured scan count.
var advisorAttrs = []struct {
	name string
	card uint64
}{
	{"hot", 90},
	{"warm", 25},
	{"cold", 12},
}

const (
	advisorQueries  = 1000
	advisorHotShare = 8 // of every 10 queries: 8 hot, 1 warm, 1 cold
)

// runAdvisorSuites executes the deterministic advisor benchmark: a skewed
// query stream feeds the workload accumulator against indexes built under
// the uniform budget allocation, the advisor prices the gap, and the same
// stream replayed under the recommended allocation must cost strictly
// fewer scans. Every check is a hard error so the bench job gates on it.
func runAdvisorSuites(o options, w io.Writer) ([]suiteResult, error) {
	// The budget is what a knee design per attribute would occupy — the
	// space the catalog's default build spends.
	cards := make([]uint64, len(advisorAttrs))
	budget := 0
	for i, a := range advisorAttrs {
		cards[i] = a.card
		knee, err := design.Knee(a.card)
		if err != nil {
			return nil, err
		}
		budget += cost.Space(knee, core.RangeEncoded)
	}
	uniform, err := design.AllocateBudget(cards, budget)
	if err != nil {
		return nil, err
	}

	cols := make([]data.Column, len(advisorAttrs))
	infos := make([]workload.AttrInfo, len(advisorAttrs))
	designs := make([]workload.AttrDesign, len(advisorAttrs))
	for i, a := range advisorAttrs {
		cols[i] = data.Uniform(o.Rows, a.card, o.Seed+int64(i))
		infos[i] = workload.AttrInfo{Name: a.name, Card: a.card}
		designs[i] = workload.NewAttrDesign(a.name, a.card, uniform.Bases[i],
			core.RangeEncoded, "raw", "")
	}

	acc := workload.New(infos)
	uniformScans, uniformNS, err := replayAdvisorStream(cols, uniform.Bases, acc)
	if err != nil {
		return nil, err
	}

	rep, err := workload.Advise("bixbench-advisor", designs, acc.Snapshot())
	if err != nil {
		return nil, err
	}
	if !rep.Drifted || rep.Drift <= 0 {
		return nil, fmt.Errorf("advisor: planted %d/10 skew not flagged as drift (drift=%v)",
			advisorHotShare, rep.Drift)
	}
	if rep.Gain <= 0 {
		return nil, fmt.Errorf("advisor: no predicted gain over uniform allocation (gain=%v)", rep.Gain)
	}

	recBases := make([]core.Base, len(rep.Attrs))
	for i, a := range rep.Attrs {
		recBases[i] = a.RecommendedBase
	}
	weightedScans, weightedNS, err := replayAdvisorStream(cols, recBases, nil)
	if err != nil {
		return nil, err
	}
	if weightedScans >= uniformScans {
		return nil, fmt.Errorf("advisor: recommended design does not beat uniform: %d >= %d scans",
			weightedScans, uniformScans)
	}

	q := float64(advisorQueries)
	s := suiteResult{Name: "advisor", Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: q},
		{Name: "drift_ppm", Kind: "count", Better: "higher", Value: math.Round(rep.Drift * 1e6)},
		{Name: "gain_milliscans", Kind: "count", Better: "higher", Value: math.Round(rep.Gain * 1e3)},
		{Name: "uniform_scans_per_query", Kind: "count", Better: "lower", Value: float64(uniformScans) / q},
		{Name: "weighted_scans_per_query", Kind: "count", Better: "lower", Value: float64(weightedScans) / q},
		{Name: "uniform_ns_per_query", Kind: "time", Better: "lower", Value: float64(uniformNS) / q},
		{Name: "weighted_ns_per_query", Kind: "time", Better: "lower", Value: float64(weightedNS) / q},
	}}
	sortSuiteMetrics(&s)
	suites := []suiteResult{s}
	printSuites(w, suites)
	fmt.Fprintf(w, "advisor: drift %.4f, predicted gain %.3f scans/query, measured %.3f -> %.3f scans/query\n",
		rep.Drift, rep.Gain, float64(uniformScans)/q, float64(weightedScans)/q)
	return suites, nil
}

// replayAdvisorStream runs the deterministic skewed stream against one
// range-encoded index per attribute built from bases, returning total
// scans and wall time. When acc is non-nil every query is observed, so
// the stream that measures the uniform design also trains the advisor.
func replayAdvisorStream(cols []data.Column, bases []core.Base, acc *workload.Accumulator) (int, int64, error) {
	ixs := make([]*core.Index, len(cols))
	for i, col := range cols {
		ix, err := core.Build(col.Values, advisorAttrs[i].card, bases[i], core.RangeEncoded, nil)
		if err != nil {
			return 0, 0, err
		}
		ixs[i] = ix
	}
	var st core.Stats
	opt := &core.EvalOptions{Stats: &st}
	t0 := time.Now()
	for i := 0; i < advisorQueries; i++ {
		attr := 0 // hot
		switch i % 10 {
		case advisorHotShare:
			attr = 1 // warm
		case advisorHotShare + 1:
			attr = 2 // cold
		}
		a := advisorAttrs[attr]
		v := uint64(i*7) % a.card
		scans0 := st.Scans
		q0 := time.Now()
		res := ixs[attr].Eval(core.Le, v, opt)
		if acc != nil {
			acc.Observe(workload.Event{
				Attr: a.name, Class: workload.RangeClass, Value: v,
				Matches: res.Count(), Rows: ixs[attr].Rows(),
				Scans: st.Scans - scans0, NS: time.Since(q0).Nanoseconds(),
			})
		}
	}
	return st.Scans, time.Since(t0).Nanoseconds(), nil
}
