package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
	"bitmapindex/internal/reorder"
	"bitmapindex/internal/storage"
)

// runCompressionSuites is the three-way §9 space-time study behind
// `-suite compression`: for a uniform and a clustered workload it saves
// the same knee-design range-encoded index under the dense (raw), WAH
// and roaring codecs, with rows in original order and lexicographically
// sorted (arXiv:0901.3751), and reports on-disk value bytes, evaluation
// wall time and scans for each combination. Space metrics are
// deterministic for fixed (rows, seed); times carry the usual noise
// allowance of the "time" kind.
func runCompressionSuites(o options, w io.Writer) ([]suiteResult, error) {
	base, err := design.Knee(suiteCard)
	if err != nil {
		return nil, err
	}
	var suites []suiteResult
	for _, wl := range []struct {
		name string
		col  data.Column
	}{
		// Clustered data emits runs of identical values (runLen ~512), the
		// regime where run-length codecs shine even unsorted.
		{"compression_uniform", data.Uniform(o.Rows, suiteCard, o.Seed)},
		{"compression_clustered", data.Clustered(o.Rows, suiteCard, 512, o.Seed)},
	} {
		s, err := compressionSuite(wl.name, wl.col, base)
		if err != nil {
			return nil, err
		}
		suites = append(suites, *s)
	}
	printSuites(w, suites)
	return suites, nil
}

// codecLabel names a codec in metric names: the raw codec stores the
// dense bit payload, so it is the study's "dense" arm.
func codecLabel(c storage.Codec) string {
	if c == storage.CodecRaw {
		return "dense"
	}
	return c.String()
}

func compressionSuite(name string, col data.Column, base core.Base) (*suiteResult, error) {
	res := &suiteResult{Name: name}
	for _, sorted := range []bool{false, true} {
		vals := col.Values
		suffix := ""
		if sorted {
			perm := reorder.Permutation(reorder.Lex, [][]uint64{col.Values})
			vals = reorder.Apply(perm, col.Values)
			suffix = "_sorted"
		}
		ix, err := core.Build(vals, suiteCard, base, core.RangeEncoded, nil)
		if err != nil {
			return nil, err
		}
		for _, codec := range []storage.Codec{storage.CodecRaw, storage.CodecWAH, storage.CodecRoaring} {
			dir, err := os.MkdirTemp("", "bixbench-compression-*")
			if err != nil {
				return nil, err
			}
			st, err := storage.Save(ix, dir, storage.Options{Scheme: storage.BitmapLevel, Codec: codec})
			if err != nil {
				_ = os.RemoveAll(dir)
				return nil, err
			}
			var m storage.Metrics
			n := 0
			t0 := time.Now()
			for _, op := range []core.Op{core.Le, core.Eq, core.Gt} {
				for v := uint64(0); v < suiteCard; v += 7 {
					if _, err := st.Eval(op, v, &m); err != nil {
						_ = os.RemoveAll(dir)
						return nil, err
					}
					n++
				}
			}
			elapsed := time.Since(t0)
			prefix := codecLabel(codec) + suffix
			res.Metrics = append(res.Metrics,
				suiteMetric{Name: prefix + "_value_bytes", Kind: "count", Better: "lower", Value: float64(st.ValueBytes())},
				suiteMetric{Name: prefix + "_scans_per_query", Kind: "count", Better: "lower", Value: float64(m.Stats.Scans) / float64(n)},
				suiteMetric{Name: prefix + "_ns_per_query", Kind: "time", Better: "lower", Value: float64(elapsed.Nanoseconds()) / float64(n)},
			)
			_ = os.RemoveAll(dir)
		}
	}
	return res, nil
}

// printSuites renders suites in the same text form as runSuites, sorting
// metrics by name first (the compare mode and checked-in baselines rely
// on sorted order).
func printSuites(w io.Writer, suites []suiteResult) {
	for i := range suites {
		sortSuiteMetrics(&suites[i])
	}
	for _, s := range suites {
		fmt.Fprintf(w, "suite %s:\n", s.Name)
		for _, m := range s.Metrics {
			fmt.Fprintf(w, "  %-24s %14.6g  (%s, better=%s)\n", m.Name, m.Value, m.Kind, m.Better)
		}
	}
}
