package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
	"bitmapindex/internal/storage"
)

// suiteResult is one named benchmark suite in the -json report. Metrics
// are sorted by name so reports diff cleanly and the compare mode never
// depends on emission order.
type suiteResult struct {
	Name    string        `json:"name"`
	Metrics []suiteMetric `json:"metrics"`
}

// suiteMetric is one measured quantity with the metadata the regression
// checker needs: Kind selects the noise threshold ("count" metrics are
// deterministic for a fixed seed, "rate" mildly noisy, "time" wall-clock
// noisy) and Better the direction of improvement.
type suiteMetric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`   // "count" | "rate" | "time"
	Better string  `json:"better"` // "lower" | "higher"
	Value  float64 `json:"value"`
}

const suiteCard = 100

// runSuites executes the canonical benchmark suite set: one query sweep
// per bitmap encoding over a knee-design index on uniform data, plus a
// cached-store suite exercising the buffer pool. All "count" metrics are
// deterministic functions of (rows, seed).
func runSuites(o options, w io.Writer) ([]suiteResult, error) {
	col := data.Uniform(o.Rows, suiteCard, o.Seed)
	base, err := design.Knee(suiteCard)
	if err != nil {
		return nil, err
	}
	var suites []suiteResult
	for _, enc := range []struct {
		name string
		enc  core.Encoding
	}{
		{"eval_range", core.RangeEncoded},
		{"eval_equality", core.EqualityEncoded},
		{"eval_interval", core.IntervalEncoded},
	} {
		ix, err := core.Build(col.Values, suiteCard, base, enc.enc, nil)
		if err != nil {
			return nil, err
		}
		suites = append(suites, evalSuite(enc.name, ix))
	}
	cs, err := cacheSuite(col, base)
	if err != nil {
		return nil, err
	}
	suites = append(suites, *cs)
	for i := range suites {
		sort.Slice(suites[i].Metrics, func(a, b int) bool {
			return suites[i].Metrics[a].Name < suites[i].Metrics[b].Name
		})
	}
	for _, s := range suites {
		fmt.Fprintf(w, "suite %s:\n", s.Name)
		for _, m := range s.Metrics {
			fmt.Fprintf(w, "  %-24s %14.6g  (%s, better=%s)\n", m.Name, m.Value, m.Kind, m.Better)
		}
	}
	return suites, nil
}

// evalSuite sweeps every operator over every predicate constant and
// reports the paper's two cost measures (scans, boolean operations) per
// query plus the measured wall time per query.
func evalSuite(name string, ix *core.Index) suiteResult {
	var st core.Stats
	opt := &core.EvalOptions{Stats: &st}
	n := 0
	t0 := time.Now()
	for _, op := range core.AllOps {
		for v := uint64(0); v < suiteCard; v++ {
			ix.Eval(op, v, opt)
			n++
		}
	}
	elapsed := time.Since(t0)
	return suiteResult{Name: name, Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: float64(n)},
		{Name: "scans_per_query", Kind: "count", Better: "lower", Value: float64(st.Scans) / float64(n)},
		{Name: "ops_per_query", Kind: "count", Better: "lower", Value: float64(st.Ops()) / float64(n)},
		{Name: "ns_per_query", Kind: "time", Better: "lower", Value: float64(elapsed.Nanoseconds()) / float64(n)},
	}}
}

// cacheSuite saves a range-encoded index to disk and replays a query sweep
// through a buffer pool sized at half the stored bitmaps: the steady-state
// hit rate and per-query read volume are deterministic for a fixed seed.
func cacheSuite(col data.Column, base core.Base) (*suiteResult, error) {
	ix, err := core.Build(col.Values, suiteCard, base, core.RangeEncoded, nil)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bixbench-suite-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := storage.Save(ix, dir, storage.Options{Scheme: storage.BitmapLevel, Compress: true})
	if err != nil {
		return nil, err
	}
	cs, err := storage.NewCached(st, ix.NumBitmaps()/2)
	if err != nil {
		return nil, err
	}
	var m storage.Metrics
	n := 0
	t0 := time.Now()
	for pass := 0; pass < 2; pass++ {
		for v := uint64(0); v < suiteCard; v += 7 {
			if _, err := cs.Eval(core.Le, v, &m); err != nil {
				return nil, err
			}
			n++
		}
	}
	elapsed := time.Since(t0)
	return &suiteResult{Name: "cache", Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: float64(n)},
		{Name: "hit_rate", Kind: "rate", Better: "higher", Value: cs.HitRate()},
		{Name: "bytes_read_per_query", Kind: "count", Better: "lower", Value: float64(m.BytesRead) / float64(n)},
		{Name: "scans_per_query", Kind: "count", Better: "lower", Value: float64(m.Stats.Scans) / float64(n)},
		{Name: "ns_per_query", Kind: "time", Better: "lower", Value: float64(elapsed.Nanoseconds()) / float64(n)},
	}}, nil
}
