package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/design"
	"bitmapindex/internal/engine"
	"bitmapindex/internal/storage"
	"bitmapindex/internal/telemetry"
)

// suiteResult is one named benchmark suite in the -json report. Metrics
// are sorted by name so reports diff cleanly and the compare mode never
// depends on emission order.
type suiteResult struct {
	Name    string        `json:"name"`
	Metrics []suiteMetric `json:"metrics"`
}

// suiteMetric is one measured quantity with the metadata the regression
// checker needs: Kind selects the noise threshold ("count" metrics are
// deterministic for a fixed seed, "rate" mildly noisy, "time" wall-clock
// noisy) and Better the direction of improvement.
type suiteMetric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`   // "count" | "rate" | "time"
	Better string  `json:"better"` // "lower" | "higher"
	Value  float64 `json:"value"`
}

const suiteCard = 100

// runSuites executes the canonical benchmark suite set: one query sweep
// per bitmap encoding over a knee-design index on uniform data, plus a
// cached-store suite exercising the buffer pool. All "count" metrics are
// deterministic functions of (rows, seed).
func runSuites(o options, w io.Writer) ([]suiteResult, error) {
	col := data.Uniform(o.Rows, suiteCard, o.Seed)
	base, err := design.Knee(suiteCard)
	if err != nil {
		return nil, err
	}
	var suites []suiteResult
	var agg costModelAgg
	for _, enc := range []struct {
		name string
		enc  core.Encoding
	}{
		{"eval_range", core.RangeEncoded},
		{"eval_equality", core.EqualityEncoded},
		{"eval_interval", core.IntervalEncoded},
	} {
		ix, err := core.Build(col.Values, suiteCard, base, enc.enc, nil)
		if err != nil {
			return nil, err
		}
		suites = append(suites, evalSuite(enc.name, ix))
		agg.sweep(ix)
	}
	cm, err := agg.suite()
	if err != nil {
		return nil, err
	}
	suites = append(suites, *cm)
	cs, err := cacheSuite(col, base)
	if err != nil {
		return nil, err
	}
	suites = append(suites, *cs)
	printSuites(w, suites)
	return suites, nil
}

// sortSuiteMetrics orders a suite's metrics by name so reports diff
// cleanly and comparisons never depend on emission order.
func sortSuiteMetrics(s *suiteResult) {
	sort.Slice(s.Metrics, func(a, b int) bool {
		return s.Metrics[a].Name < s.Metrics[b].Name
	})
}

// evalSuite sweeps every operator over every predicate constant and
// reports the paper's two cost measures (scans, boolean operations) per
// query plus the measured wall time per query.
func evalSuite(name string, ix *core.Index) suiteResult {
	var st core.Stats
	opt := &core.EvalOptions{Stats: &st}
	n := 0
	t0 := time.Now()
	for _, op := range core.AllOps {
		for v := uint64(0); v < suiteCard; v++ {
			ix.Eval(op, v, opt)
			n++
		}
	}
	elapsed := time.Since(t0)
	return suiteResult{Name: name, Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: float64(n)},
		{Name: "scans_per_query", Kind: "count", Better: "lower", Value: float64(st.Scans) / float64(n)},
		{Name: "ops_per_query", Kind: "count", Better: "lower", Value: float64(st.Ops()) / float64(n)},
		{Name: "ns_per_query", Kind: "time", Better: "lower", Value: float64(elapsed.Nanoseconds()) / float64(n)},
	}}
}

// costModelMeanTimeError is the documented acceptance bound for the live
// time model: the mean relative error of predicted vs measured evaluation
// time across the suite sweep must stay below it. The bound is generous —
// per-query times at this scale are tens of microseconds and the EWMA
// ns-per-scan calibration tracks averages, not per-query scheduler noise —
// but it catches the model losing the plot (being off by multiples).
const costModelMeanTimeError = 1.5

// costModelAgg accumulates the cost-model accuracy check that runs
// alongside the eval suites: every query of the sweep is replayed through
// engine.AnalyzeIndexQuery, so predicted scans are compared to measured
// scans per query (they must match exactly for the serial evaluators — the
// paper's digit-level model counts the very fetches the evaluator
// performs) and the time model's EWMA calibration is exercised. The
// analyzed queries also feed the bix_cost_model_error_* histograms, which
// a -metrics scrape exposes live.
type costModelAgg struct {
	queries    int
	mismatches int
	timeErrSum float64
	timeErrN   int
}

// sweep replays every operator/constant query against ix through the
// analyzer.
func (a *costModelAgg) sweep(ix *core.Index) {
	for _, op := range core.AllOps {
		for v := uint64(0); v < suiteCard; v++ {
			q := fmt.Sprintf("A %s %d", op, v)
			tr := telemetry.NewTrace(q)
			var st core.Stats
			t0 := time.Now()
			ix.Eval(op, v, &core.EvalOptions{Stats: &st, Trace: tr})
			rep := engine.AnalyzeIndexQuery(q, "bench-cost-model", ix.Base(), ix.Encoding(),
				ix.Cardinality(), op, v, st, time.Since(t0), tr)
			a.queries++
			if rep.ScansError != 0 {
				a.mismatches++
			}
			if rep.TimeError >= 0 {
				a.timeErrSum += rep.TimeError
				a.timeErrN++
			}
		}
	}
}

// suite renders the aggregate as the cost_model suite and enforces the
// acceptance bounds: zero scan mismatches, mean time error under
// costModelMeanTimeError.
func (a *costModelAgg) suite() (*suiteResult, error) {
	if a.mismatches > 0 {
		return nil, fmt.Errorf("cost model: predicted scans != measured scans on %d of %d queries",
			a.mismatches, a.queries)
	}
	var mean float64
	if a.timeErrN > 0 {
		mean = a.timeErrSum / float64(a.timeErrN)
	}
	if mean > costModelMeanTimeError {
		return nil, fmt.Errorf("cost model: mean time error %.3f exceeds bound %v",
			mean, costModelMeanTimeError)
	}
	return &suiteResult{Name: "cost_model", Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: float64(a.queries)},
		{Name: "scan_mismatches", Kind: "count", Better: "lower", Value: float64(a.mismatches)},
		{Name: "time_error_mean", Kind: "time", Better: "lower", Value: mean},
	}}, nil
}

// cacheSuite saves a range-encoded index to disk and replays a query sweep
// through a buffer pool sized at half the stored bitmaps: the steady-state
// hit rate and per-query read volume are deterministic for a fixed seed.
func cacheSuite(col data.Column, base core.Base) (*suiteResult, error) {
	ix, err := core.Build(col.Values, suiteCard, base, core.RangeEncoded, nil)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bixbench-suite-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := storage.Save(ix, dir, storage.Options{Scheme: storage.BitmapLevel, Compress: true})
	if err != nil {
		return nil, err
	}
	cs, err := storage.NewCached(st, ix.NumBitmaps()/2)
	if err != nil {
		return nil, err
	}
	var m storage.Metrics
	n := 0
	t0 := time.Now()
	for pass := 0; pass < 2; pass++ {
		for v := uint64(0); v < suiteCard; v += 7 {
			if _, err := cs.Eval(core.Le, v, &m); err != nil {
				return nil, err
			}
			n++
		}
	}
	elapsed := time.Since(t0)
	return &suiteResult{Name: "cache", Metrics: []suiteMetric{
		{Name: "queries", Kind: "count", Better: "higher", Value: float64(n)},
		{Name: "hit_rate", Kind: "rate", Better: "higher", Value: cs.HitRate()},
		{Name: "bytes_read_per_query", Kind: "count", Better: "lower", Value: float64(m.BytesRead) / float64(n)},
		{Name: "scans_per_query", Kind: "count", Better: "lower", Value: float64(m.Stats.Scans) / float64(n)},
		{Name: "ns_per_query", Kind: "time", Better: "lower", Value: float64(elapsed.Nanoseconds()) / float64(n)},
	}}, nil
}
