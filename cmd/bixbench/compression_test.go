package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeCompressionReport runs the compression suite at smoke size.
func writeCompressionReport(t *testing.T, dir string) benchReport {
	t.Helper()
	path := filepath.Join(dir, "compression.json")
	o := options{Suite: "compression", Rows: 1 << 16, Seed: 1, JSON: path, Out: filepath.Join(dir, "compression.txt")}
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("compression report is not valid JSON: %v\n%s", err, raw)
	}
	return rep
}

// TestCompressionSuiteShape checks both workloads are present with the
// full codec x sorting metric grid, kind-tagged for the compare pipeline.
func TestCompressionSuiteShape(t *testing.T) {
	rep := writeCompressionReport(t, t.TempDir())
	vals := suiteValues(rep)
	for _, suite := range []string{"compression_uniform", "compression_clustered"} {
		for _, prefix := range []string{"dense", "wah", "roaring", "dense_sorted", "wah_sorted", "roaring_sorted"} {
			if _, ok := vals[svKey{suite, prefix + "_value_bytes", "count"}]; !ok {
				t.Errorf("%s: missing %s_value_bytes count metric", suite, prefix)
			}
			if _, ok := vals[svKey{suite, prefix + "_scans_per_query", "count"}]; !ok {
				t.Errorf("%s: missing %s_scans_per_query count metric", suite, prefix)
			}
			if _, ok := vals[svKey{suite, prefix + "_ns_per_query", "time"}]; !ok {
				t.Errorf("%s: missing %s_ns_per_query time metric", suite, prefix)
			}
		}
	}
}

// TestCompressionSpaceDominance pins the deterministic half of the §9
// acceptance claim: on the clustered workload roaring is strictly
// smaller than WAH both unsorted and sorted, sorting never hurts either
// run-length codec, and scan counts are invariant across codecs.
func TestCompressionSpaceDominance(t *testing.T) {
	rep := writeCompressionReport(t, t.TempDir())
	vals := suiteValues(rep)
	get := func(suite, metric string) float64 {
		v, ok := vals[svKey{suite, metric, "count"}]
		if !ok {
			t.Fatalf("%s/%s missing", suite, metric)
		}
		return v
	}
	const cl = "compression_clustered"
	if r, w := get(cl, "roaring_value_bytes"), get(cl, "wah_value_bytes"); r >= w {
		t.Errorf("clustered: roaring %v bytes >= wah %v", r, w)
	}
	if r, w := get(cl, "roaring_sorted_value_bytes"), get(cl, "wah_sorted_value_bytes"); r >= w {
		t.Errorf("clustered sorted: roaring %v bytes >= wah %v", r, w)
	}
	for _, suite := range []string{"compression_uniform", cl} {
		for _, codec := range []string{"wah", "roaring"} {
			if s, u := get(suite, codec+"_sorted_value_bytes"), get(suite, codec+"_value_bytes"); s > u {
				t.Errorf("%s: sorted %s %v bytes > unsorted %v", suite, codec, s, u)
			}
		}
		base := get(suite, "dense_scans_per_query")
		for _, prefix := range []string{"wah", "roaring", "dense_sorted", "wah_sorted", "roaring_sorted"} {
			if got := get(suite, prefix+"_scans_per_query"); got != base {
				t.Errorf("%s: %s scans/query %v != dense %v", suite, prefix, got, base)
			}
		}
	}
}
