package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// reportWith builds a minimal v2 report from (suite, metric, value)
// triples, preserving insertion order.
func reportWith(rows ...[3]string) benchReport {
	rep := benchReport{Schema: "bixbench/v2", SchemaVersion: benchSchemaVersion}
	idx := map[string]int{}
	for _, r := range rows {
		suite, metric := r[0], r[1]
		i, ok := idx[suite]
		if !ok {
			i = len(rep.Suites)
			idx[suite] = i
			rep.Suites = append(rep.Suites, suiteResult{Name: suite})
		}
		rep.Suites[i].Metrics = append(rep.Suites[i].Metrics, suiteMetric{
			Name: metric, Kind: "count", Better: "lower", Value: 1,
		})
	}
	return rep
}

func writeReport(t *testing.T, dir, name string, rep benchReport) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := writeJSONReport(p, rep); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompareAddedSuiteIsInformational covers the new-suite direction: a
// report that additionally ran the compression suite compares clean
// against a core-only baseline, with the extra metrics flagged "new".
func TestCompareAddedSuiteIsInformational(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", reportWith(
		[3]string{"core", "scans", ""},
	))
	newP := writeReport(t, dir, "new.json", reportWith(
		[3]string{"core", "scans", ""},
		[3]string{"compression", "wah_value_bytes", ""},
	))
	var out bytes.Buffer
	if err := runCompare(oldP, newP, &out); err != nil {
		t.Fatalf("added suite failed the comparison: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "new") {
		t.Errorf("added metric not reported as new:\n%s", out.String())
	}
}

// TestCompareNotRunSuiteIsInformational covers the old-baseline
// direction the satellite names: a baseline carrying core+compression
// compared against a run of only one suite must not fail on the suite
// that was not run.
func TestCompareNotRunSuiteIsInformational(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", reportWith(
		[3]string{"core", "scans", ""},
		[3]string{"compression", "wah_value_bytes", ""},
		[3]string{"compression", "roaring_value_bytes", ""},
	))
	newP := writeReport(t, dir, "new.json", reportWith(
		[3]string{"core", "scans", ""},
	))
	var out bytes.Buffer
	if err := runCompare(oldP, newP, &out); err != nil {
		t.Fatalf("not-run suite failed the comparison: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "not run") {
		t.Errorf("skipped suite not reported as not run:\n%s", out.String())
	}
}

// TestCompareRemovedMetricStillFails pins that within a suite both
// reports ran, a removed metric (coverage loss) remains a hard failure.
func TestCompareRemovedMetricStillFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", reportWith(
		[3]string{"compression", "wah_value_bytes", ""},
		[3]string{"compression", "roaring_value_bytes", ""},
	))
	newP := writeReport(t, dir, "new.json", reportWith(
		[3]string{"compression", "wah_value_bytes", ""},
	))
	var out bytes.Buffer
	if err := runCompare(oldP, newP, &out); err == nil {
		t.Fatalf("removed metric not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing") {
		t.Errorf("removed metric not reported as missing:\n%s", out.String())
	}
}

// TestCompareRenamedMetricFails: a rename is a removal plus an addition
// within a suite both reports ran — the removal half must fail.
func TestCompareRenamedMetricFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", reportWith(
		[3]string{"compression", "value_bytes", ""},
	))
	newP := writeReport(t, dir, "new.json", reportWith(
		[3]string{"compression", "value_bytes_total", ""},
	))
	var out bytes.Buffer
	err := runCompare(oldP, newP, &out)
	if err == nil {
		t.Fatalf("renamed metric not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing") || !strings.Contains(out.String(), "new") {
		t.Errorf("rename should surface as one missing + one new row:\n%s", out.String())
	}
}
