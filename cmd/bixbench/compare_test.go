package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSuiteReport runs the core suite at smoke size and writes its -json
// report, returning the decoded report and the file path.
func writeSuiteReport(t *testing.T, dir, name string) (benchReport, string) {
	t.Helper()
	path := filepath.Join(dir, name)
	o := options{Suite: "core", Rows: 8192, Seed: 1, JSON: path, Out: filepath.Join(dir, name+".txt")}
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("suite report is not valid JSON: %v\n%s", err, raw)
	}
	return rep, path
}

// TestSuiteReportShape checks the core suite produces every expected
// suite with sorted, kind-annotated metrics and the v2 schema markers.
func TestSuiteReportShape(t *testing.T) {
	rep, _ := writeSuiteReport(t, t.TempDir(), "bench.json")
	if rep.Schema != "bixbench/v2" || rep.SchemaVersion != benchSchemaVersion {
		t.Errorf("schema = %q/%d, want bixbench/v2/%d", rep.Schema, rep.SchemaVersion, benchSchemaVersion)
	}
	want := map[string]bool{"eval_range": true, "eval_equality": true, "eval_interval": true, "cache": true}
	for _, s := range rep.Suites {
		delete(want, s.Name)
		if len(s.Metrics) == 0 {
			t.Errorf("suite %s has no metrics", s.Name)
		}
		for i, m := range s.Metrics {
			if i > 0 && s.Metrics[i-1].Name >= m.Name {
				t.Errorf("suite %s metrics not sorted: %q before %q", s.Name, s.Metrics[i-1].Name, m.Name)
			}
			if m.Kind != "count" && m.Kind != "rate" && m.Kind != "time" {
				t.Errorf("suite %s metric %s: unknown kind %q", s.Name, m.Name, m.Kind)
			}
			if m.Better != "lower" && m.Better != "higher" {
				t.Errorf("suite %s metric %s: unknown direction %q", s.Name, m.Name, m.Better)
			}
		}
	}
	for name := range want {
		t.Errorf("suite %s missing from report", name)
	}
}

// TestSuiteDeterministicCounts pins the regression pipeline's core
// assumption: two runs at the same (rows, seed) agree exactly on every
// count and rate metric.
func TestSuiteDeterministicCounts(t *testing.T) {
	dir := t.TempDir()
	a, _ := writeSuiteReport(t, dir, "a.json")
	b, _ := writeSuiteReport(t, dir, "b.json")
	av := suiteValues(a)
	for k, vb := range suiteValues(b) {
		if k.kind == "time" {
			continue
		}
		if va, ok := av[k]; !ok || va != vb {
			t.Errorf("%s/%s: run A %v, run B %v", k.suite, k.metric, av[k], vb)
		}
	}
}

type svKey struct{ suite, metric, kind string }

func suiteValues(r benchReport) map[svKey]float64 {
	out := make(map[svKey]float64)
	for _, s := range r.Suites {
		for _, m := range s.Metrics {
			out[svKey{s.Name, m.Name, m.Kind}] = m.Value
		}
	}
	return out
}

// TestCompareSelfIsClean is the acceptance check's zero-exit half: a
// report compared against itself reports no regressions.
func TestCompareSelfIsClean(t *testing.T) {
	_, path := writeSuiteReport(t, t.TempDir(), "self.json")
	var out bytes.Buffer
	if err := runCompare(path, path, &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// TestCompareDetectsInjectedRegressions is the non-zero-exit half: worsen
// one metric of each kind past its threshold and require failure, then
// worsen each within threshold and require success.
func TestCompareDetectsInjectedRegressions(t *testing.T) {
	dir := t.TempDir()
	rep, path := writeSuiteReport(t, dir, "base.json")

	inject := func(t *testing.T, name string, mutate func(*suiteMetric)) string {
		t.Helper()
		cp := rep
		cp.Suites = make([]suiteResult, len(rep.Suites))
		for i, s := range rep.Suites {
			cp.Suites[i] = s
			cp.Suites[i].Metrics = append([]suiteMetric(nil), s.Metrics...)
			for j := range cp.Suites[i].Metrics {
				mutate(&cp.Suites[i].Metrics[j])
			}
		}
		p := filepath.Join(dir, name)
		if err := writeJSONReport(p, cp); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := []struct {
		name   string
		mutate func(*suiteMetric)
		fail   bool
	}{
		{"count_drift.json", func(m *suiteMetric) {
			if m.Kind == "count" && m.Better == "lower" {
				m.Value *= 1.01 // any count drift is a regression
			}
		}, true},
		{"rate_drop.json", func(m *suiteMetric) {
			if m.Name == "hit_rate" {
				m.Value *= 0.80 // 20% drop > 5% threshold
			}
		}, true},
		{"time_blowup.json", func(m *suiteMetric) {
			if m.Kind == "time" {
				m.Value *= 2 // 100% slowdown > 35% threshold
			}
		}, true},
		{"time_noise.json", func(m *suiteMetric) {
			if m.Kind == "time" {
				m.Value *= 1.2 // within the 35% noise allowance
			}
		}, false},
		{"rate_noise.json", func(m *suiteMetric) {
			if m.Name == "hit_rate" {
				m.Value *= 0.97 // 3% wobble < 5% threshold
			}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := inject(t, tc.name, tc.mutate)
			var out bytes.Buffer
			err := runCompare(path, p, &out)
			if tc.fail && err == nil {
				t.Fatalf("regression not detected:\n%s", out.String())
			}
			if !tc.fail && err != nil {
				t.Fatalf("noise flagged as regression: %v\n%s", err, out.String())
			}
			if tc.fail && !strings.Contains(out.String(), "REGRESSED") {
				t.Errorf("table missing REGRESSED row:\n%s", out.String())
			}
		})
	}
}

// TestCompareMissingMetricFails pins that a metric disappearing from the
// new report (coverage loss) fails the comparison.
func TestCompareMissingMetricFails(t *testing.T) {
	dir := t.TempDir()
	rep, path := writeSuiteReport(t, dir, "base.json")
	cp := rep
	cp.Suites = append([]suiteResult(nil), rep.Suites...)
	cp.Suites[0].Metrics = cp.Suites[0].Metrics[1:] // drop one metric
	p := filepath.Join(dir, "short.json")
	if err := writeJSONReport(p, cp); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runCompare(path, p, &out); err == nil {
		t.Fatalf("dropped metric not flagged:\n%s", out.String())
	}
}

// TestCompareRejectsNonSuiteReports checks old-style reports without
// suites are refused with a helpful error rather than comparing nothing.
func TestCompareRejectsNonSuiteReports(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "v1.json")
	if err := writeJSONReport(p, benchReport{Schema: "bixbench/v1"}); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(p, p, io.Discard); err == nil {
		t.Fatal("report without suites must be rejected")
	}
}

// TestCompareCLIArity checks -compare validates its positional arguments.
func TestCompareCLIArity(t *testing.T) {
	if err := realMain(options{Compare: true, Args: []string{"only-one.json"}}); err == nil {
		t.Fatal("-compare with one argument must fail")
	}
}
