package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRealMainList(t *testing.T) {
	if err := realMain(true, "", false, 1000, 1, true, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainRunOne(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := realMain(false, "table1", false, 1000, 1, true, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "RangeEval-Opt") {
		t.Fatalf("report missing content:\n%s", data)
	}
}

func TestRealMainErrors(t *testing.T) {
	if err := realMain(false, "nope", false, 1000, 1, true, false, ""); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := realMain(false, "", false, 1000, 1, true, false, ""); err == nil {
		t.Error("no action must fail")
	}
}
