package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRealMainList(t *testing.T) {
	if err := realMain(options{List: true, Rows: 1000, Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainRunOne(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := realMain(options{Run: "table1", Rows: 1000, Seed: 1, Quick: true, Out: out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "RangeEval-Opt") {
		t.Fatalf("report missing content:\n%s", data)
	}
}

func TestRealMainErrors(t *testing.T) {
	if err := realMain(options{Run: "nope", Rows: 1000, Seed: 1, Quick: true}); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := realMain(options{Rows: 1000, Seed: 1, Quick: true}); err == nil {
		t.Error("no action must fail")
	}
}

// TestRealMainJSON runs one experiment with -json and checks the
// machine-readable summary: schema marker, the experiment entry, and a
// query microbenchmark whose scans/query matches eq. (4) for the knee
// design (the measured average must be positive and below the number of
// components, i.e. well under the cardinality).
func TestRealMainJSON(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "r.txt")
	jsonOut := filepath.Join(dir, "bench.json")
	if err := realMain(options{Run: "table1", Rows: 1000, Seed: 1, Quick: true, Out: out, JSON: jsonOut}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bench.json is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Schema != "bixbench/v2" {
		t.Errorf("schema = %q, want bixbench/v2", rep.Schema)
	}
	if rep.SchemaVersion != benchSchemaVersion {
		t.Errorf("schema_version = %d, want %d", rep.SchemaVersion, benchSchemaVersion)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "table1" {
		t.Errorf("experiments = %+v, want one entry for table1", rep.Experiments)
	}
	qb := rep.QueryBench
	if qb == nil {
		t.Fatal("query_bench missing")
	}
	if qb.Queries <= 0 || qb.OpsPerSec <= 0 {
		t.Errorf("queries=%d ops/sec=%v, want positive", qb.Queries, qb.OpsPerSec)
	}
	if qb.ScansPerQuery <= 0 || qb.ScansPerQuery > 100 {
		t.Errorf("scans/query = %v, want in (0, 100]", qb.ScansPerQuery)
	}
	if qb.Latency.Count != int64(qb.Queries) {
		t.Errorf("latency count = %d, want %d", qb.Latency.Count, qb.Queries)
	}
	if len(qb.Latency.Buckets) == 0 {
		t.Error("latency buckets missing")
	}
}

// TestRealMainScaling runs the segmented-evaluation scaling benchmark at a
// small size and checks both the text output and the JSON section.
func TestRealMainScaling(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "s.txt")
	jsonOut := filepath.Join(dir, "scaling.json")
	o := options{Scaling: true, Rows: 1 << 15, Seed: 1, SegBits: 12, Workers: "1,2", Out: out, JSON: jsonOut}
	if err := realMain(o); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "segmented scaling") {
		t.Fatalf("scaling report missing header:\n%s", text)
	}
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("scaling.json is not valid JSON: %v\n%s", err, raw)
	}
	if rep.Scaling == nil {
		t.Fatal("JSON report has no scaling section")
	}
	s := rep.Scaling
	if s.Rows != 1<<15 || s.SegBits != 12 || s.Cores < 1 || s.SerialSec <= 0 {
		t.Fatalf("bad scaling header: %+v", s)
	}
	if len(s.Points) != 2 || s.Points[0].Workers != 1 || s.Points[1].Workers != 2 {
		t.Fatalf("bad scaling points: %+v", s.Points)
	}
	for _, p := range s.Points {
		if p.Sec <= 0 || p.Speedup <= 0 {
			t.Fatalf("non-positive measurement: %+v", p)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	got, err := parseWorkers(" 1, 2,8 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseWorkers = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "1,-2"} {
		if _, err := parseWorkers(bad); err == nil {
			t.Errorf("parseWorkers(%q): want error", bad)
		}
	}
}
