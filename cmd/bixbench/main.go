// Command bixbench regenerates the tables and figures of the paper's
// evaluation section as plain-text tables.
//
// Usage:
//
//	bixbench -list
//	bixbench -run fig8
//	bixbench -all [-rows 200000] [-quick] [-o report.txt]
//	bixbench -all -json bench.json [-metrics :8318]
//	bixbench -scaling [-rows 16777216] [-segbits 18] [-workers 1,2,4] [-json scaling.json]
//
// -scaling benchmarks the segmented (intra-query parallel) evaluator
// against the serial one over a knee-design range-encoded index,
// cross-checking every parallel result bitmap against the serial bitmap.
//
// -json writes a machine-readable BENCH_*.json style summary next to the
// text report: per-experiment wall times plus a query microbenchmark
// (ops/sec, scans/query and a latency histogram with p50/p90/p99).
// -metrics serves the telemetry registry at <addr>/metrics for the
// duration of the run so long sweeps can be scraped live.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bitmapindex"
	"bitmapindex/internal/data"
	"bitmapindex/internal/experiments"
	"bitmapindex/internal/telemetry"
)

// options collects the command-line configuration of one bixbench run.
type options struct {
	List    bool
	Run     string
	All     bool
	Rows    int
	Seed    int64
	Quick   bool
	CSV     bool
	Out     string
	JSON    string   // write a machine-readable summary here
	Metrics string   // serve /metrics on this address while running
	Scaling bool     // run the segmented-evaluation scaling benchmark
	SegBits int      // segment width for -scaling (0 = library default)
	Workers string   // comma-separated worker counts for -scaling
	Suite   string   // comma-separated suite sets to run ("core", "compression")
	Compare bool     // compare two -json reports for regressions
	Args    []string // positional arguments (the two reports for -compare)
}

func main() {
	var o options
	flag.BoolVar(&o.List, "list", false, "list available experiments")
	flag.StringVar(&o.Run, "run", "", "run one experiment by id")
	flag.BoolVar(&o.All, "all", false, "run every experiment")
	flag.IntVar(&o.Rows, "rows", experiments.Default().Rows, "relation cardinality for data-driven experiments")
	flag.Int64Var(&o.Seed, "seed", experiments.Default().Seed, "random seed for synthetic data")
	flag.BoolVar(&o.Quick, "quick", false, "reduced parameter sweeps")
	flag.StringVar(&o.Out, "o", "", "write the report to a file instead of stdout")
	flag.BoolVar(&o.CSV, "csv", false, "emit comma-separated rows (with #-comment headers) for plotting")
	flag.StringVar(&o.JSON, "json", "", "write a machine-readable benchmark summary to this file")
	flag.StringVar(&o.Metrics, "metrics", "", "serve the telemetry registry at this address (e.g. :8318) during the run")
	flag.BoolVar(&o.Scaling, "scaling", false, "benchmark segmented (intra-query parallel) evaluation vs serial")
	flag.IntVar(&o.SegBits, "segbits", 0, "segment width (log2 bits) for -scaling; 0 selects the library default")
	flag.StringVar(&o.Workers, "workers", "1,2,4", "comma-separated worker counts for -scaling")
	flag.StringVar(&o.Suite, "suite", "", "run named benchmark suite sets (\"core\", \"compression\", \"advisor\", comma-separated) instead of experiments")
	flag.BoolVar(&o.Compare, "compare", false, "compare two -json reports (old.json new.json); non-zero exit on regression")
	flag.Parse()
	o.Args = flag.Args()
	if err := realMain(o); err != nil {
		fmt.Fprintln(os.Stderr, "bixbench:", err)
		os.Exit(1)
	}
}

// benchSchemaVersion is bumped whenever the -json layout changes shape.
// v2 added schema_version itself and the suites section; v1 reports have
// schema_version 0 when decoded.
const benchSchemaVersion = 2

// benchReport is the -json output schema. Struct fields (not maps) keep
// the key order stable across runs, so reports diff cleanly and baselines
// stay reviewable.
type benchReport struct {
	Schema        string           `json:"schema"` // "bixbench/v2"
	SchemaVersion int              `json:"schema_version"`
	GoVersion     string           `json:"go_version"`
	Rows          int              `json:"rows"`
	Seed          int64            `json:"seed"`
	Quick         bool             `json:"quick"`
	Experiments   []benchExpResult `json:"experiments,omitempty"`
	QueryBench    *queryBench      `json:"query_bench,omitempty"`
	Scaling       *scalingReport   `json:"scaling,omitempty"`
	Suites        []suiteResult    `json:"suites,omitempty"`
}

// newReport seeds a report with the run configuration.
func newReport(o options) benchReport {
	return benchReport{
		Schema:        "bixbench/v2",
		SchemaVersion: benchSchemaVersion,
		GoVersion:     runtime.Version(),
		Rows:          o.Rows,
		Seed:          o.Seed,
		Quick:         o.Quick,
	}
}

// scalingReport summarizes the -scaling benchmark: one heavy range query
// evaluated serially and then segment-parallel at each worker count.
// Speedups are relative to the serial evaluator on this machine; check
// Cores before reading anything into them — on a single-core runner the
// parallel path can only measure its own overhead.
type scalingReport struct {
	Rows      int            `json:"rows"`
	Card      int            `json:"card"`
	SegBits   int            `json:"segbits"`
	Cores     int            `json:"cores"`
	Op        string         `json:"op"`
	SerialSec float64        `json:"serial_seconds_per_query"`
	Points    []scalingPoint `json:"points"`
}

type scalingPoint struct {
	Workers int     `json:"workers"`
	Sec     float64 `json:"seconds_per_query"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type benchExpResult struct {
	ID      string  `json:"id"`
	Paper   string  `json:"paper"`
	Seconds float64 `json:"seconds"`
}

// queryBench summarizes the range-query microbenchmark: a knee-design
// range-encoded index over uniform data, one <= query per distinct value.
type queryBench struct {
	Queries       int            `json:"queries"`
	OpsPerSec     float64        `json:"ops_per_sec"`
	ScansPerQuery float64        `json:"scans_per_query"`
	Latency       latencySummary `json:"latency"`
}

type latencySummary struct {
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	P50        float64       `json:"p50_seconds"`
	P90        float64       `json:"p90_seconds"`
	P99        float64       `json:"p99_seconds"`
	Buckets    []bucketCount `json:"buckets"`
}

type bucketCount struct {
	LE         float64 `json:"le"`
	Cumulative int64   `json:"cumulative"`
}

func realMain(o options) (err error) {
	if o.List {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if o.Metrics != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", telemetry.Handler(telemetry.Default()))
			if err := http.ListenAndServe(o.Metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bixbench: metrics server:", err)
			}
		}()
	}
	var w io.Writer = os.Stdout
	if o.Out != "" {
		f, cerr := os.Create(o.Out)
		if cerr != nil {
			return cerr
		}
		// A dropped close error could silently truncate the report, so
		// promote it to the command's error when nothing else failed.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if o.Compare {
		if len(o.Args) != 2 {
			return fmt.Errorf("-compare needs two positional arguments: old.json new.json")
		}
		return runCompare(o.Args[0], o.Args[1], w)
	}
	if o.Suite != "" {
		var suites []suiteResult
		for _, name := range strings.Split(o.Suite, ",") {
			var run func(options, io.Writer) ([]suiteResult, error)
			switch strings.TrimSpace(name) {
			case "core":
				run = runSuites
			case "compression":
				run = runCompressionSuites
			case "advisor":
				run = runAdvisorSuites
			default:
				return fmt.Errorf("unknown suite %q (available: core, compression, advisor)", name)
			}
			s, serr := run(o, w)
			if serr != nil {
				return serr
			}
			suites = append(suites, s...)
		}
		if o.JSON != "" {
			report := newReport(o)
			report.Suites = suites
			return writeJSONReport(o.JSON, report)
		}
		return nil
	}
	if o.Scaling {
		sr, serr := runScaling(o, w)
		if serr != nil {
			return serr
		}
		if o.JSON != "" {
			report := newReport(o)
			report.Scaling = sr
			return writeJSONReport(o.JSON, report)
		}
		return nil
	}
	cfg := experiments.Config{Rows: o.Rows, Seed: o.Seed, Quick: o.Quick, CSV: o.CSV}
	var todo []experiments.Experiment
	switch {
	case o.Run != "":
		e, ok := experiments.Find(o.Run)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", o.Run)
		}
		todo = []experiments.Experiment{e}
	case o.All:
		todo = experiments.All()
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run <id> or -all")
	}
	report := newReport(o)
	ww := cfg.Writer(w)
	for _, e := range todo {
		t0 := time.Now()
		if err := e.Run(cfg, ww); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(t0)
		marker := "[%s: %s, %v]\n"
		if o.CSV {
			marker = "# done %s: %s, %v\n"
		}
		fmt.Fprintf(w, marker, e.ID, e.Paper, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments,
			benchExpResult{ID: e.ID, Paper: e.Paper, Seconds: elapsed.Seconds()})
	}
	if o.JSON != "" {
		qb, err := runQueryBench(o.Rows, o.Seed)
		if err != nil {
			return err
		}
		report.QueryBench = qb
		return writeJSONReport(o.JSON, report)
	}
	return nil
}

func writeJSONReport(path string, report benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		_ = f.Close() // the encode error takes precedence
		return err
	}
	return f.Close()
}

// parseWorkers parses the -workers list, e.g. "1,2,4".
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q (want positive integers, e.g. \"1,2,4\")", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers list is empty")
	}
	return out, nil
}

// runScaling builds a knee-design range-encoded index over uniform data
// and times one heavy range query (A <= card/2, the worst case for scans)
// serially and segment-parallel at each requested worker count, verifying
// every parallel result against the serial bitmap.
func runScaling(o options, w io.Writer) (*scalingReport, error) {
	workerCounts, err := parseWorkers(o.Workers)
	if err != nil {
		return nil, err
	}
	const card = 100
	col := data.Uniform(o.Rows, card, o.Seed)
	ix, err := bitmapindex.New(col.Values, card)
	if err != nil {
		return nil, err
	}
	op, v := bitmapindex.Le, uint64(card/2)
	serialSec, want := timePerQuery(func() *bitmapindex.Bitmap {
		return ix.Eval(op, v, nil)
	})
	sr := &scalingReport{
		Rows:      o.Rows,
		Card:      card,
		SegBits:   o.SegBits,
		Cores:     runtime.GOMAXPROCS(0),
		Op:        fmt.Sprintf("A <= %d", v),
		SerialSec: serialSec,
	}
	fmt.Fprintf(w, "segmented scaling: rows=%d card=%d segbits=%d cores=%d op=%q\n",
		sr.Rows, card, o.SegBits, sr.Cores, sr.Op)
	fmt.Fprintf(w, "  serial      %12.6fs/query\n", serialSec)
	for _, nw := range workerCounts {
		cfg := bitmapindex.SegConfig{SegBits: o.SegBits, Workers: nw}
		sec, got := timePerQuery(func() *bitmapindex.Bitmap {
			return ix.SegmentedEval(op, v, nil, cfg)
		})
		if !got.Equal(want) {
			return nil, fmt.Errorf("segmented result at %d workers differs from serial", nw)
		}
		p := scalingPoint{Workers: nw, Sec: sec, Speedup: serialSec / sec}
		sr.Points = append(sr.Points, p)
		fmt.Fprintf(w, "  workers=%-3d %12.6fs/query  speedup %.2fx\n", p.Workers, p.Sec, p.Speedup)
	}
	return sr, nil
}

// timePerQuery runs f for at least 3 repetitions and ~150ms and returns
// the mean seconds per call plus the last result.
func timePerQuery(f func() *bitmapindex.Bitmap) (float64, *bitmapindex.Bitmap) {
	var res *bitmapindex.Bitmap
	reps := 0
	t0 := time.Now()
	for reps < 3 || time.Since(t0) < 150*time.Millisecond {
		res = f()
		reps++
	}
	return time.Since(t0).Seconds() / float64(reps), res
}

// runQueryBench evaluates one range query per distinct value against a
// knee-design range-encoded index and summarizes latency in a private
// registry histogram (so the microbenchmark numbers are isolated from the
// process-wide metrics the run itself produced).
func runQueryBench(rows int, seed int64) (*queryBench, error) {
	const card = 100
	col := data.Uniform(rows, card, seed)
	ix, err := bitmapindex.New(col.Values, card)
	if err != nil {
		return nil, err
	}
	lat := telemetry.New().Histogram("bix_bench_query_latency_seconds",
		"Latency of the bixbench query microbenchmark.", telemetry.LatencyBuckets)
	var st bitmapindex.Stats
	opt := &bitmapindex.EvalOptions{Stats: &st}
	t0 := time.Now()
	n := 0
	for v := uint64(0); v < card; v++ {
		q0 := time.Now()
		ix.Eval(bitmapindex.Le, v, opt)
		lat.Observe(time.Since(q0).Seconds())
		n++
	}
	total := time.Since(t0)
	qb := &queryBench{
		Queries:       n,
		OpsPerSec:     float64(n) / total.Seconds(),
		ScansPerQuery: float64(st.Scans) / float64(n),
		Latency: latencySummary{
			Count:      lat.Count(),
			SumSeconds: lat.Sum(),
			P50:        lat.Quantile(0.50),
			P90:        lat.Quantile(0.90),
			P99:        lat.Quantile(0.99),
		},
	}
	bounds, cum := lat.Bounds(), lat.Cumulative()
	for i, le := range bounds {
		qb.Latency.Buckets = append(qb.Latency.Buckets, bucketCount{LE: le, Cumulative: cum[i]})
	}
	return qb, nil
}
