// Command bixbench regenerates the tables and figures of the paper's
// evaluation section as plain-text tables.
//
// Usage:
//
//	bixbench -list
//	bixbench -run fig8
//	bixbench -all [-rows 200000] [-quick] [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bitmapindex/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "run one experiment by id")
		all   = flag.Bool("all", false, "run every experiment")
		rows  = flag.Int("rows", experiments.Default().Rows, "relation cardinality for data-driven experiments")
		seed  = flag.Int64("seed", experiments.Default().Seed, "random seed for synthetic data")
		quick = flag.Bool("quick", false, "reduced parameter sweeps")
		out   = flag.String("o", "", "write the report to a file instead of stdout")
		csv   = flag.Bool("csv", false, "emit comma-separated rows (with #-comment headers) for plotting")
	)
	flag.Parse()
	if err := realMain(*list, *run, *all, *rows, *seed, *quick, *csv, *out); err != nil {
		fmt.Fprintln(os.Stderr, "bixbench:", err)
		os.Exit(1)
	}
}

func realMain(list bool, run string, all bool, rows int, seed int64, quick, csv bool, out string) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cfg := experiments.Config{Rows: rows, Seed: seed, Quick: quick, CSV: csv}
	var todo []experiments.Experiment
	switch {
	case run != "":
		e, ok := experiments.Find(run)
		if !ok {
			return fmt.Errorf("unknown experiment %q; try -list", run)
		}
		todo = []experiments.Experiment{e}
	case all:
		todo = experiments.All()
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run <id> or -all")
	}
	ww := cfg.Writer(w)
	for _, e := range todo {
		t0 := time.Now()
		if err := e.Run(cfg, ww); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		marker := "[%s: %s, %v]\n"
		if csv {
			marker = "# done %s: %s, %v\n"
		}
		fmt.Fprintf(w, marker, e.ID, e.Paper, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}
