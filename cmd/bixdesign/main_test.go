package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRealMainFullOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(1000, 50, 4, false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"(A) space-optimal", "(B) best within M=50", "(C) knee", "(D) time-optimal",
		"<- knee", "Theorem 10.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRealMainExact(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(100, 20, 0, true, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best within M=20") {
		t.Error("missing constrained design")
	}
}

func TestRealMainErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := realMain(0, 0, 0, false, &buf); err == nil {
		t.Error("C=0 must fail")
	}
	if err := realMain(1000, 3, 0, false, &buf); err == nil {
		t.Error("infeasible M must fail")
	}
}

func TestWorkloadMain(t *testing.T) {
	var buf bytes.Buffer
	if err := workloadMain("50,2406,100", 120, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "total:") || !strings.Contains(out, "C=2406") {
		t.Fatalf("workload output incomplete:\n%s", out)
	}
}

func TestWorkloadMainErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := workloadMain("50,x", 100, &buf); err == nil {
		t.Error("bad spec must fail")
	}
	if err := workloadMain("50", 0, &buf); err == nil {
		t.Error("missing budget must fail")
	}
	if err := workloadMain("1000,1000", 5, &buf); err == nil {
		t.Error("infeasible budget must fail")
	}
}
