// Command bixdesign is a physical-design advisor for bitmap indexes: given
// an attribute cardinality (and optionally a disk-space budget and a
// bitmap buffer size), it prints the paper's four interesting designs —
// space-optimal (A), time-optimal under the space constraint (B), the knee
// (C), and time-optimal (D) — plus the full space-optimal ladder.
//
// Usage:
//
//	bixdesign -C 1000
//	bixdesign -C 1000 -M 50          # at most 50 stored bitmaps
//	bixdesign -C 1000 -M 50 -exact   # exhaustive instead of heuristic
//	bixdesign -C 1000 -m 4           # 4 bitmaps of buffer memory
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"bitmapindex"
)

func main() {
	var (
		card     = flag.Uint64("C", 0, "attribute cardinality (required)")
		m        = flag.Int("M", 0, "disk-space budget in stored bitmaps (0 = unconstrained)")
		buf      = flag.Int("m", 0, "bitmap buffer size in bitmaps")
		exact    = flag.Bool("exact", false, "use the exhaustive TimeOptAlg for the constrained design")
		workload = flag.String("workload", "", "comma-separated attribute cardinalities; with -M, divide the budget across them")
	)
	flag.Parse()
	if *workload != "" {
		if err := workloadMain(*workload, *m, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bixdesign:", err)
			os.Exit(1)
		}
		return
	}
	if err := realMain(*card, *m, *buf, *exact, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bixdesign:", err)
		os.Exit(1)
	}
}

func realMain(card uint64, m, buf int, exact bool, out io.Writer) error {
	if card < 2 {
		return fmt.Errorf("pass -C with the attribute cardinality (>= 2)")
	}
	fmt.Fprintf(out, "Bitmap index designs for attribute cardinality C = %d (range-encoded)\n\n", card)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	defer w.Flush()

	spaceOpt, err := bitmapindex.SpaceOptimalBase(card, bitmapindex.MaxComponents(card))
	if err != nil {
		return err
	}
	knee, err := bitmapindex.KneeBase(card)
	if err != nil {
		return err
	}
	timeOpt, err := bitmapindex.TimeOptimalBase(card, 1)
	if err != nil {
		return err
	}
	row := func(tag string, b bitmapindex.Base) {
		fmt.Fprintf(w, "%s\t%v\t%d bitmaps\t%.3f scans/query\n",
			tag, b, bitmapindex.NumBitmaps(b, bitmapindex.RangeEncoded),
			bitmapindex.ExpectedScans(b, card))
	}
	row("(A) space-optimal", spaceOpt)
	row("(C) knee", knee)
	row("(D) time-optimal", timeOpt)
	w.Flush()

	fmt.Fprintf(out, "\nEncoding comparison at the knee design:\n")
	for _, enc := range []bitmapindex.Encoding{
		bitmapindex.RangeEncoded, bitmapindex.EqualityEncoded, bitmapindex.IntervalEncoded,
	} {
		fmt.Fprintf(w, "%s\t%s\n", enc, bitmapindex.Describe(knee, enc, card))
	}
	if m > 0 {
		var constrained bitmapindex.Base
		if exact {
			constrained, err = bitmapindex.BestBaseUnderSpaceExact(card, m)
		} else {
			constrained, err = bitmapindex.BestBaseUnderSpace(card, m)
		}
		if err != nil {
			return err
		}
		row(fmt.Sprintf("(B) best within M=%d", m), constrained)
		if b, enc, err := bitmapindex.BestDesignUnderSpace(card, m); err == nil {
			fmt.Fprintf(w, "(B') any encoding within M=%d\t%s\n", m,
				bitmapindex.Describe(b, enc, card))
		}
	}
	w.Flush()

	fmt.Fprintf(out, "\nSpace-optimal ladder (one design per component count):\n")
	for n := 1; n <= bitmapindex.MaxComponents(card); n++ {
		b, err := bitmapindex.SpaceOptimalBase(card, n)
		if err != nil {
			return err
		}
		mark := ""
		if b.Equal(knee) {
			mark = "   <- knee"
		}
		fmt.Fprintf(w, "n=%d\t%v\t%d bitmaps\t%.3f scans/query%s\n",
			n, b, bitmapindex.NumBitmaps(b, bitmapindex.RangeEncoded),
			bitmapindex.ExpectedScans(b, card), mark)
	}
	w.Flush()

	if buf > 0 {
		base, a, err := bitmapindex.BufferedTimeOptimalBase(card, buf)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nWith %d buffered bitmaps (Theorem 10.2): base %v, assignment %v, %.3f scans/query\n",
			buf, base, a, bitmapindex.ExpectedScansBuffered(base, card, a))
		ak := bitmapindex.OptimalBuffer(knee, card, buf)
		fmt.Fprintf(out, "Buffering the knee index instead: assignment %v, %.3f scans/query\n",
			ak, bitmapindex.ExpectedScansBuffered(knee, card, ak))
	}
	return nil
}

// workloadMain divides the budget M across several attributes.
func workloadMain(spec string, m int, out io.Writer) error {
	if m <= 0 {
		return fmt.Errorf("pass -M with the total bitmap budget")
	}
	var cards []uint64
	for _, part := range strings.Split(spec, ",") {
		c, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("bad cardinality %q: %v", part, err)
		}
		cards = append(cards, c)
	}
	alloc, err := bitmapindex.AllocateBudget(cards, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Budget M = %d bitmaps across %d attributes (range-encoded):\n\n", m, len(cards))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, c := range cards {
		fmt.Fprintf(w, "C=%d\t%v\t%d bitmaps\t%.3f scans/query\n", c, alloc.Bases[i], alloc.Spaces[i], alloc.Times[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntotal: %d bitmaps, %.3f summed scans/query\n", alloc.TotalSpace(), alloc.TotalTime())
	return nil
}
