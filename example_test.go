package bitmapindex_test

import (
	"fmt"

	"bitmapindex"
)

// The paper's running example: a 10-record column over C = 9 (Figure 1).
func ExampleNew() {
	column := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	ix, err := bitmapindex.New(column, 9)
	if err != nil {
		panic(err)
	}
	rows := ix.Eval(bitmapindex.Le, 4, nil)
	fmt.Println(rows.OnesSlice())
	// Output: [0 1 2 3 5 6 7]
}

func ExampleNew_withBase() {
	base, _ := bitmapindex.ParseBase("<3,3>") // the paper's Figure 3 design
	column := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	ix, err := bitmapindex.New(column, 9,
		bitmapindex.WithBase(base),
		bitmapindex.WithEncoding(bitmapindex.EqualityEncoded))
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.NumBitmaps(), "bitmaps")
	fmt.Println(ix.Eval(bitmapindex.Eq, 2, nil).OnesSlice())
	// Output:
	// 6 bitmaps
	// [1 3 5 6]
}

func ExampleBestBaseUnderSpace() {
	base, err := bitmapindex.BestBaseUnderSpace(1000, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println(bitmapindex.Describe(base, bitmapindex.RangeEncoded, 1000))
	// Output: base <2,14,36>, range-encoded: 49 bitmaps, 4.153 expected scans/query
}

func ExampleKneeBase() {
	base, err := bitmapindex.KneeBase(1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v: %d bitmaps, %.3f scans/query\n", base,
		bitmapindex.NumBitmaps(base, bitmapindex.RangeEncoded),
		bitmapindex.ExpectedScans(base, 1000))
	// Output: <28,36>: 62 bitmaps, 3.225 scans/query
}

func ExampleOptimalBuffer() {
	base, _ := bitmapindex.ParseBase("<28,36>")
	a := bitmapindex.OptimalBuffer(base, 1000, 5)
	fmt.Printf("assignment %v, %.3f scans/query\n", a,
		bitmapindex.ExpectedScansBuffered(base, 1000, a))
	// Output: assignment [0 5], 2.867 scans/query
}
