package bitmapindex

import (
	"path/filepath"
	"testing"
)

var paperColumn = []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}

func TestNewDefaultIsKnee(t *testing.T) {
	ix, err := New(paperColumn, 9)
	if err != nil {
		t.Fatal(err)
	}
	knee, err := KneeBase(9)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Base().Equal(knee) {
		t.Fatalf("default base %v, want knee %v", ix.Base(), knee)
	}
	if ix.Encoding() != RangeEncoded {
		t.Fatal("default encoding must be range")
	}
	got := ix.Eval(Le, 4, nil)
	want := []int{0, 1, 2, 3, 5, 6, 7}
	if got.Count() != len(want) {
		t.Fatalf("A <= 4 matched %d rows, want %d", got.Count(), len(want))
	}
	for _, r := range want {
		if !got.Get(r) {
			t.Fatalf("row %d should match", r)
		}
	}
}

func TestNewOptions(t *testing.T) {
	base, err := ParseBase("<3,3>")
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(paperColumn, 9, WithBase(base), WithEncoding(EqualityEncoded))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Base().Equal(base) || ix.Encoding() != EqualityEncoded {
		t.Fatalf("options not applied: %v %v", ix.Base(), ix.Encoding())
	}
	if ix.NumBitmaps() != 6 {
		t.Fatalf("NumBitmaps = %d, want 6", ix.NumBitmaps())
	}

	ix, err = New(paperColumn, 9, WithComponents(3))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Components() != 3 {
		t.Fatalf("WithComponents(3) built %d components", ix.Components())
	}

	ix, err = New(paperColumn, 9, WithTimeOptimalBase())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Components() != 1 {
		t.Fatal("time-optimal must be single component")
	}

	ix, err = New(paperColumn, 9, WithSpaceOptimalBase())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != MaxComponents(9) {
		t.Fatalf("space-optimal stores %d bitmaps, want %d", ix.NumBitmaps(), MaxComponents(9))
	}

	ix, err = New(paperColumn, 9, WithSpaceBudget(5))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() > 5 {
		t.Fatalf("space budget exceeded: %d bitmaps", ix.NumBitmaps())
	}
}

func TestNewWithNulls(t *testing.T) {
	nulls := make([]bool, len(paperColumn))
	nulls[4] = true
	ix, err := New(paperColumn, 9, WithNulls(nulls))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Eval(Ge, 0, nil); got.Get(4) {
		t.Fatal("null row matched A >= 0")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]uint64{9}, 9); err == nil {
		t.Fatal("out-of-range value must fail")
	}
	if _, err := New(paperColumn, 9, WithBase(Base{2})); err == nil {
		t.Fatal("non-covering base must fail")
	}
	if _, err := New(paperColumn, 9, WithSpaceBudget(1)); err == nil {
		t.Fatal("infeasible budget must fail")
	}
}

func TestDesignHelpers(t *testing.T) {
	b, err := SpaceOptimalBase(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if NumBitmaps(b, RangeEncoded) != 62 {
		t.Fatalf("space-optimal 2-comp for C=1000 has %d bitmaps, want 62", NumBitmaps(b, RangeEncoded))
	}
	tb, err := TimeOptimalBase(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ExpectedScans(tb, 1000) >= ExpectedScans(b, 1000) {
		t.Fatal("time-optimal must have fewer expected scans than space-optimal")
	}
	if ExpectedScansExact(tb, RangeEncoded, 1000) <= 0 {
		t.Fatal("exact scans must be positive")
	}
	heur, err := BestBaseUnderSpace(1000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if NumBitmaps(heur, RangeEncoded) > 50 {
		t.Fatal("heuristic exceeded budget")
	}
	exact, err := BestBaseUnderSpaceExact(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if NumBitmaps(exact, RangeEncoded) > 20 {
		t.Fatal("exact search exceeded budget")
	}
	if Describe(exact, RangeEncoded, 100) == "" || Describe(exact, EqualityEncoded, 100) == "" {
		t.Fatal("Describe empty")
	}
}

func TestBufferingHelpers(t *testing.T) {
	base := Base{10, 10}
	a := OptimalBuffer(base, 100, 3)
	if a.Total() != 3 {
		t.Fatalf("assignment %v", a)
	}
	if ExpectedScansBuffered(base, 100, a) >= ExpectedScans(base, 100) {
		t.Fatal("buffering must reduce expected scans")
	}
	bb, ba, err := BufferedTimeOptimalBase(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bb.N() != 4 || ba.Total() != 4 {
		t.Fatalf("theorem 10.2 index %v / %v", bb, ba)
	}
}

func TestStorageRoundTripPublic(t *testing.T) {
	ix, err := New(paperColumn, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ix")
	st, err := SaveIndex(ix, dir, StoreOptions{Scheme: ComponentLevel, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	var m StoreMetrics
	got, err := st.Eval(Gt, 4, &m)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ix.Eval(Gt, 4, nil)) {
		t.Fatal("on-disk result differs")
	}
	st2, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := st2.Eval(Gt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(got) {
		t.Fatal("reopened store differs")
	}
}

func TestParseHelpers(t *testing.T) {
	if op, err := ParseOp("<="); err != nil || op != Le {
		t.Fatal("ParseOp")
	}
	if e, err := ParseEncoding("range"); err != nil || e != RangeEncoded {
		t.Fatal("ParseEncoding")
	}
	if s, err := ParseStoreScheme("CS"); err != nil || s != ComponentLevel {
		t.Fatal("ParseStoreScheme")
	}
}

func TestStreamingBuilder(t *testing.T) {
	base, err := KneeBase(9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStreamingBuilder(9, base, RangeEncoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range paperColumn {
		if err := b.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddNull(); err != nil {
		t.Fatal(err)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ix.Rows() != len(paperColumn)+1 || !ix.HasNulls() {
		t.Fatalf("rows %d nulls %v", ix.Rows(), ix.HasNulls())
	}
	direct, err := New(paperColumn, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Eval(Le, 4, nil)
	want := direct.Eval(Le, 4, nil)
	for r := 0; r < len(paperColumn); r++ {
		if got.Get(r) != want.Get(r) {
			t.Fatalf("row %d differs", r)
		}
	}
	if got.Get(len(paperColumn)) {
		t.Fatal("null row matched")
	}
}

func TestIntervalEncodedPublic(t *testing.T) {
	ix, err := New(paperColumn, 9, WithEncoding(IntervalEncoded))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Encoding() != IntervalEncoded {
		t.Fatal("encoding not applied")
	}
	got := ix.Eval(Ge, 5, nil)
	if got.Count() != 3 { // values 8, 7, 5
		t.Fatalf("A >= 5 matched %d rows, want 3", got.Count())
	}
	if ExpectedScansExact(ix.Base(), IntervalEncoded, 9) <= 0 {
		t.Fatal("exact time must be positive")
	}
}

func TestMutablePublic(t *testing.T) {
	m, err := NewMutable(9, RangeEncoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range paperColumn {
		if _, err := m.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(4); err != nil { // value 8
		t.Fatal(err)
	}
	if got := m.Eval(Ge, 7); got.Count() != 1 { // only the 7 remains
		t.Fatalf("A >= 7 matched %d rows, want 1", got.Count())
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != len(paperColumn)-1 {
		t.Fatalf("rows after compact = %d", m.Rows())
	}
	m2 := NewMutableFrom(m.Base())
	if m2.Live() != m.Live() {
		t.Fatal("FromIndex live mismatch")
	}
}

func TestBestDesignUnderSpacePublic(t *testing.T) {
	base, enc, err := BestDesignUnderSpace(100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if NumBitmaps(base, enc) > 12 {
		t.Fatalf("budget violated: %v/%v", base, enc)
	}
	// The chosen cross-encoding design is at least as fast as the best
	// range-only design within the same budget.
	rb, err := BestBaseUnderSpaceExact(100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ExpectedScansExact(base, enc, 100) > ExpectedScansExact(rb, RangeEncoded, 100)+1e-9 {
		t.Fatal("combined search worse than range-only search")
	}
}
