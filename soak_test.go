package bitmapindex

// Large-scale soak test: builds million-row indexes in every encoding at
// several designs and validates sampled queries, aggregates, and order
// statistics against a scalar reference. Skipped under -short.

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSoakMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		rows = 1 << 20
		card = 2406 // the paper's OrderDate cardinality
	)
	r := rand.New(rand.NewSource(2024))
	vals := make([]uint64, rows)
	for i := range vals {
		vals[i] = uint64(r.Intn(card))
	}
	// Scalar references.
	var sum uint64
	sorted := append([]uint64(nil), vals...)
	for _, v := range vals {
		sum += v
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	designs := []struct {
		name string
		opt  Option
	}{
		{"knee", WithKneeBase()},
		{"3-comp", WithComponents(3)},
		{"budget60", WithSpaceBudget(60)},
	}
	for _, enc := range []Encoding{RangeEncoded, EqualityEncoded, IntervalEncoded} {
		for _, d := range designs {
			ix, err := New(vals, card, d.opt, WithEncoding(enc))
			if err != nil {
				t.Fatalf("%v/%s: %v", enc, d.name, err)
			}
			// Sampled predicate checks against direct counting.
			for k := 0; k < 12; k++ {
				op := []Op{Lt, Le, Gt, Ge, Eq, Ne}[k%6]
				v := uint64(r.Intn(card))
				want := 0
				for _, x := range vals {
					if op.Matches(x, v) {
						want++
					}
				}
				if got := ix.Eval(op, v, nil).Count(); got != want {
					t.Fatalf("%v/%s: A %s %d: %d rows, want %d", enc, d.name, op, v, got, want)
				}
			}
			// Aggregates over everything.
			gotSum, n, err := ix.SumSelected(nil)
			if err != nil || n != rows || gotSum != sum {
				t.Fatalf("%v/%s: sum %d over %d (err %v), want %d over %d", enc, d.name, gotSum, n, err, sum, rows)
			}
			med, ok, err := ix.MedianSelected(nil)
			if err != nil || !ok {
				t.Fatal(err)
			}
			if want := sorted[(rows+1)/2-1]; med != want {
				t.Fatalf("%v/%s: median %d, want %d", enc, d.name, med, want)
			}
		}
	}
}
