# Local mirror of .github/workflows/ci.yml. `make ci` is the one-shot
# pre-push gate; the individual targets exist for tighter loops.

GO ?= go

.PHONY: all build vet test lint lint-timings sarif race bixdebug scaling \
	fuzz ci cover bench-baseline bench-compare

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite (all fourteen analyzers, including the interprocedural
# hotalloc walk, the atomicfield/poolhygiene concurrency checks and the
# goroutinelife/chanprotocol/ctxflow/closeown lifecycle checks), asserted
# against an empty baseline exactly as CI does.
lint:
	@: > /tmp/bixlint-empty.baseline
	$(GO) run ./cmd/bixlint -baseline /tmp/bixlint-empty.baseline ./...

# The same run with per-analyzer wall time on stderr: where a slow lint
# pass is spending its budget.
lint-timings:
	$(GO) run ./cmd/bixlint -timings ./...

sarif:
	$(GO) run ./cmd/bixlint -format sarif ./... > bixlint.sarif
	@echo wrote bixlint.sarif

race:
	$(GO) test -race ./...

bixdebug:
	$(GO) test -tags bixdebug ./internal/invariant ./internal/bitvec ./internal/wah ./internal/roaring ./internal/core
	$(GO) test -race -tags bixdebug ./internal/invariant ./internal/bitvec ./internal/wah ./internal/roaring ./internal/reorder ./internal/core ./internal/engine ./internal/buffer ./internal/telemetry ./internal/mutable ./internal/storage ./internal/catalog ./internal/flight ./internal/workload

# Whole-tree statement coverage; open with `go tool cover -html=coverage.out`.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

scaling:
	$(GO) run ./cmd/bixbench -scaling -rows 262144 -segbits 14 -workers 1,2 -json /tmp/bixbench-scaling.json

# Regenerate the checked-in benchmark baseline. Run after an intentional
# behavior change (count metrics moved) and commit the result; count and
# rate metrics are exact functions of (rows, seed), so the file is
# reproducible anywhere, while its time metrics are machine-specific and
# only compared within the loose 35% noise allowance.
bench-baseline:
	$(GO) run ./cmd/bixbench -suite core -rows 65536 -seed 1 -json BENCH_core.json
	$(GO) run ./cmd/bixbench -suite compression -rows 65536 -seed 1 -json BENCH_compression.json
	$(GO) run ./cmd/bixbench -suite advisor -rows 65536 -seed 1 -json BENCH_advisor.json

# Run the suite fresh and diff it against the checked-in baseline. Exits
# non-zero on any regression past the per-kind noise thresholds.
bench-compare:
	$(GO) run ./cmd/bixbench -suite core -rows 65536 -seed 1 -json /tmp/bixbench-new.json
	$(GO) run ./cmd/bixbench -compare BENCH_core.json /tmp/bixbench-new.json
	$(GO) run ./cmd/bixbench -suite compression -rows 65536 -seed 1 -json /tmp/bixbench-compression-new.json
	$(GO) run ./cmd/bixbench -compare BENCH_compression.json /tmp/bixbench-compression-new.json
	$(GO) run ./cmd/bixbench -suite advisor -rows 65536 -seed 1 -json /tmp/bixbench-advisor-new.json
	$(GO) run ./cmd/bixbench -compare BENCH_advisor.json /tmp/bixbench-advisor-new.json

# The full gate: build + vet + lint + race-enabled tests, same order as CI.
# Equivalent to `go run ./cmd/bixlint -ci`.
ci:
	$(GO) run ./cmd/bixlint -ci
	$(MAKE) bixdebug
