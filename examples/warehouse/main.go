// Warehouse: the DSS scenario from the paper's introduction. A TPC-D-style
// lineitem relation answers a high-selectivity multi-predicate ad-hoc
// query; we compare the three query plans an optimizer would consider —
// P1 full scan, P2 index-filter, P3 index merge with RID lists and with
// bitmap indexes — and let the byte-cost-based picker choose.
//
// The engine package is the reproduction's internal column-store
// substrate; this example shows how the public bitmap index slots into a
// query processor.
package main

import (
	"fmt"
	"log"

	"bitmapindex"
	"bitmapindex/internal/data"
	"bitmapindex/internal/engine"
)

func main() {
	const rows = 200000
	// lineitem(quantity, discount, shipmode): quantity uniform 1..50,
	// discount 0..10 percent, shipmode one of 7.
	quantity := make([]int64, rows)
	for i, v := range data.LineitemQuantity(rows, 1).Values {
		quantity[i] = int64(v) + 1
	}
	discount := make([]int64, rows)
	for i, v := range data.Uniform(rows, 11, 2).Values {
		discount[i] = int64(v)
	}
	shipmode := make([]int64, rows)
	for i, v := range data.Zipf(rows, 7, 1.2, 3).Values {
		shipmode[i] = int64(v)
	}

	rel := engine.NewRelation("lineitem")
	for _, col := range []struct {
		name string
		vals []int64
	}{{"quantity", quantity}, {"discount", discount}, {"shipmode", shipmode}} {
		c, err := rel.AddInt64(col.name, col.vals)
		if err != nil {
			log.Fatal(err)
		}
		c.BuildRIDIndex()
		// Index each attribute at its knee design.
		knee, err := bitmapindex.KneeBase(c.Card())
		if err != nil {
			log.Fatal(err)
		}
		if err := c.BuildBitmapIndex(knee, bitmapindex.RangeEncoded); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed %-9s %s\n", col.name,
			bitmapindex.Describe(knee, bitmapindex.RangeEncoded, c.Card()))
	}

	// "Find large discounted shipments": a conjunctive ad-hoc query with
	// high selectivity factor, the paper's DSS motivating case.
	query := []engine.Pred{
		{Col: "quantity", Op: bitmapindex.Ge, Val: 20},
		{Col: "discount", Op: bitmapindex.Ge, Val: 3},
		{Col: "shipmode", Op: bitmapindex.Ne, Val: 0},
	}
	fmt.Printf("\nquery: %v AND %v AND %v\n\n", query[0], query[1], query[2])

	var reference int
	for _, m := range []engine.Method{
		engine.FullScan, engine.IndexFilter, engine.RIDMerge, engine.BitmapMerge,
	} {
		res, cost, err := rel.Select(query, m)
		if err != nil {
			log.Fatal(err)
		}
		if reference == 0 {
			reference = res.Count()
		} else if res.Count() != reference {
			log.Fatalf("plan %v disagrees: %d vs %d rows", m, res.Count(), reference)
		}
		fmt.Printf("%-16s %9d bytes read   %d rows\n", m, cost.BytesRead, cost.Rows)
	}

	_, cost, err := rel.Select(query, engine.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer picked %v (%d bytes); result selectivity %.1f%% — well past the 1/32 crossover where bitmaps beat RID lists\n",
		cost.Method, cost.BytesRead, 100*float64(cost.Rows)/float64(rows))

	// Arbitrary boolean expressions compose predicate bitmaps with the
	// AND/OR/NOT operations that motivate bitmap indexes in the first
	// place.
	expr := engine.All(
		engine.Any(
			engine.Leaf(engine.Pred{Col: "quantity", Op: bitmapindex.Le, Val: 5}),
			engine.Leaf(engine.Pred{Col: "quantity", Op: bitmapindex.Ge, Val: 45}),
		),
		engine.Not(engine.Leaf(engine.Pred{Col: "shipmode", Op: bitmapindex.Eq, Val: 6})),
	)
	res, exprCost, err := rel.SelectExpr(expr, engine.BitmapMerge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpression %s\n  -> %d rows via bitmap algebra, %d bytes\n", expr, res.Count(), exprCost.BytesRead)

	// Aggregation without touching a single record: SUM over the result
	// bitmap, computed from bitmap population counts alone (the
	// Bit-Sliced / Sybase IQ technique the paper cites).
	qcol, err := rel.Column("discount")
	if err != nil {
		log.Fatal(err)
	}
	sum, n, err := qcol.BitmapIndex().SumSelected(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SUM(discount) over those rows: %d across %d rows (avg %.2f%%), via bitmap counts only\n",
		sum, n, float64(sum)/float64(n))
}
