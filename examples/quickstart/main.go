// Quickstart: build a bitmap index over the paper's 10-record example
// column (Figure 1) and evaluate selection predicates with it.
package main

import (
	"fmt"
	"log"

	"bitmapindex"
)

func main() {
	// The projection of the indexed attribute, duplicates preserved
	// (paper Figure 1(a)); values are consecutive integers in [0, 9).
	column := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}

	// Default design: range-encoded knee index (best space-time tradeoff).
	ix, err := bitmapindex.New(column, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("index:", bitmapindex.Describe(ix.Base(), ix.Encoding(), ix.Cardinality()))

	// Evaluate a few predicates; results are bitmaps over the rows.
	for _, q := range []struct {
		op bitmapindex.Op
		v  uint64
	}{
		{bitmapindex.Le, 4},
		{bitmapindex.Eq, 2},
		{bitmapindex.Gt, 6},
	} {
		var st bitmapindex.Stats
		res := ix.Eval(q.op, q.v, &bitmapindex.EvalOptions{Stats: &st})
		fmt.Printf("A %s %d -> rows %v  (%d bitmap scans, %d bitmap ops)\n",
			q.op, q.v, res.OnesSlice(), st.Scans, st.Ops())
	}

	// Conjunctions combine result bitmaps with AND.
	a := ix.Eval(bitmapindex.Ge, 2, nil)
	b := ix.Eval(bitmapindex.Le, 5, nil)
	a.And(b)
	fmt.Printf("2 <= A <= 5 -> rows %v\n", a.OnesSlice())

	// Compare alternative designs for the same attribute without
	// building them.
	for n := 1; n <= bitmapindex.MaxComponents(9); n++ {
		base, err := bitmapindex.SpaceOptimalBase(9, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d: %s\n", n, bitmapindex.Describe(base, bitmapindex.RangeEncoded, 9))
	}
}
