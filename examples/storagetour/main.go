// Storagetour: save one bitmap index in every physical layout the paper
// studies (BS, CS, IS, each optionally zlib-compressed), then query each
// store and compare disk footprint against per-query bytes read — the
// space-time tradeoff of Section 9 in miniature.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bitmapindex"
	"bitmapindex/internal/data"
)

func main() {
	const rows = 100000
	col := data.LineitemQuantity(rows, 42)

	ix, err := bitmapindex.New(col.Values, col.Card)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index over %s: %s\n\n", col, bitmapindex.Describe(ix.Base(), ix.Encoding(), ix.Cardinality()))

	root, err := os.MkdirTemp("", "storagetour-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	layouts := []bitmapindex.StoreOptions{
		{Scheme: bitmapindex.BitmapLevel},
		{Scheme: bitmapindex.BitmapLevel, Compress: true},
		{Scheme: bitmapindex.ComponentLevel},
		{Scheme: bitmapindex.ComponentLevel, Compress: true},
		{Scheme: bitmapindex.IndexLevel},
		{Scheme: bitmapindex.IndexLevel, Compress: true},
	}
	fmt.Printf("%-6s %12s %14s %14s %10s\n", "layout", "disk_bytes", "bytes/query", "scans/query", "time/query")
	for _, opts := range layouts {
		dir := filepath.Join(root, opts.String())
		st, err := bitmapindex.SaveIndex(ix, dir, opts)
		if err != nil {
			log.Fatal(err)
		}
		// The paper's restricted query set: A <= v and A = v for all v.
		var m bitmapindex.StoreMetrics
		t0 := time.Now()
		for _, op := range []bitmapindex.Op{bitmapindex.Le, bitmapindex.Eq} {
			for v := uint64(0); v < col.Card; v++ {
				res, err := st.Eval(op, v, &m)
				if err != nil {
					log.Fatal(err)
				}
				// Sanity: compare one result against the in-memory index.
				if v == 17 && op == bitmapindex.Le && !res.Equal(ix.Eval(op, v, nil)) {
					log.Fatal("on-disk result differs from in-memory result")
				}
			}
		}
		elapsed := time.Since(t0)
		q := int64(2 * col.Card)
		fmt.Printf("%-6s %12d %14d %14.2f %10s\n",
			opts, st.ValueBytes(), m.BytesRead/q, float64(m.Stats.Scans)/float64(q),
			(elapsed / time.Duration(q)).Round(time.Microsecond))
	}

	fmt.Println("\ncBS keeps BS's read-only-what-you-scan behaviour with a smaller footprint;")
	fmt.Println("cCS is the most compact but reads and inflates whole components per query (Table 4 / Figure 16).")
}
