// Advisor: physical database design for a bitmap index under a disk-space
// budget, walking the paper's Figure 2 — space-optimal (A), constrained
// time-optimal (B), knee (C), time-optimal (D) — and then improving point
// (B) further with bitmap buffering (Section 10). Every analytic claim is
// verified against a real index built over synthetic data.
package main

import (
	"fmt"
	"log"

	"bitmapindex"
	"bitmapindex/internal/data"
)

func main() {
	const (
		card   = 1000 // e.g. a "days since epoch" order-date attribute
		rows   = 100000
		budget = 40 // at most 40 stored bitmaps on disk
		bufMem = 6  // and 6 bitmaps worth of buffer memory
	)
	col := data.Uniform(rows, card, 7)

	fmt.Printf("attribute cardinality C = %d, space budget M = %d bitmaps\n\n", card, budget)

	show := func(tag string, base bitmapindex.Base) {
		fmt.Printf("%-24s %s\n", tag, bitmapindex.Describe(base, bitmapindex.RangeEncoded, card))
	}
	spaceOpt, err := bitmapindex.SpaceOptimalBase(card, bitmapindex.MaxComponents(card))
	if err != nil {
		log.Fatal(err)
	}
	knee, err := bitmapindex.KneeBase(card)
	if err != nil {
		log.Fatal(err)
	}
	timeOpt, err := bitmapindex.TimeOptimalBase(card, 1)
	if err != nil {
		log.Fatal(err)
	}
	heur, err := bitmapindex.BestBaseUnderSpace(card, budget)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := bitmapindex.BestBaseUnderSpaceExact(card, budget)
	if err != nil {
		log.Fatal(err)
	}
	show("(A) space-optimal", spaceOpt)
	show("(C) knee", knee)
	show("(D) time-optimal", timeOpt)
	show("(B) heuristic within M", heur)
	show("(B) exhaustive within M", exact)

	// Build the constrained design and verify the analytic scan count
	// against an instrumented sweep of real queries.
	ix, err := bitmapindex.New(col.Values, card, bitmapindex.WithSpaceBudget(budget))
	if err != nil {
		log.Fatal(err)
	}
	var st bitmapindex.Stats
	queries := 0
	for _, op := range []bitmapindex.Op{bitmapindex.Lt, bitmapindex.Le, bitmapindex.Gt, bitmapindex.Ge, bitmapindex.Eq, bitmapindex.Ne} {
		for v := uint64(0); v < card; v += 1 {
			ix.Eval(op, v, &bitmapindex.EvalOptions{Stats: &st})
			queries++
		}
	}
	fmt.Printf("\nbuilt %v over %d rows (%d bitmaps, %.1f KiB)\n",
		ix.Base(), ix.Rows(), ix.NumBitmaps(), float64(ix.SizeBytes())/1024)
	fmt.Printf("measured %.3f scans/query over all %d queries; model predicted %.3f\n",
		float64(st.Scans)/float64(queries), queries, bitmapindex.ExpectedScans(ix.Base(), card))

	// Now add buffer memory: which bitmaps should stay resident?
	a := bitmapindex.OptimalBuffer(ix.Base(), card, bufMem)
	fmt.Printf("\nwith %d buffered bitmaps, optimal assignment %v: %.3f scans/query (model)\n",
		bufMem, a, bitmapindex.ExpectedScansBuffered(ix.Base(), card, a))
	var bst bitmapindex.Stats
	var hits bitmapindex.BufferHitStats
	buffered := a.CountingFor(&hits)
	for _, op := range []bitmapindex.Op{bitmapindex.Lt, bitmapindex.Le, bitmapindex.Gt, bitmapindex.Ge, bitmapindex.Eq, bitmapindex.Ne} {
		for v := uint64(0); v < card; v++ {
			ix.Eval(op, v, &bitmapindex.EvalOptions{Stats: &bst, Buffered: buffered})
		}
	}
	fmt.Printf("measured %.3f scans/query with that buffer (%d of %d bitmap references served from memory, %.1f%% hit rate)\n",
		float64(bst.Scans)/float64(queries), hits.Hits(), hits.Hits()+hits.Misses(), 100*hits.HitRate())

	// If the design itself may follow the buffer size (Theorem 10.2):
	bb, ba, err := bitmapindex.BufferedTimeOptimalBase(card, bufMem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designing for the buffer instead (Theorem 10.2): base %v, assignment %v, %.3f scans/query\n",
		bb, ba, bitmapindex.ExpectedScansBuffered(bb, card, ba))

	// A real schema has many indexed attributes sharing one disk budget;
	// the allocator divides it optimally across their tradeoff frontiers.
	workload := []uint64{50, 2406, card}
	alloc, err := bitmapindex.AllocateBudget(workload, 3*budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsharing M = %d bitmaps across attributes with C = %v:\n", 3*budget, workload)
	for i, c := range workload {
		fmt.Printf("  C=%-5d -> %v (%d bitmaps, %.3f scans/query)\n", c, alloc.Bases[i], alloc.Spaces[i], alloc.Times[i])
	}
	fmt.Printf("  total %d bitmaps, %.3f summed scans/query\n", alloc.TotalSpace(), alloc.TotalTime())

	// The uniform split above assumes every attribute is queried equally
	// often. Live systems rarely are: observe a skewed workload through
	// the accumulator and let the weighted allocator re-divide the same
	// budget by what the queries actually touch.
	acc := bitmapindex.NewWorkloadAccumulator([]bitmapindex.WorkloadAttrInfo{
		{Name: "status", Card: workload[0]},
		{Name: "customer", Card: workload[1]},
		{Name: "orderdate", Card: workload[2]},
	})
	for i := 0; i < 1000; i++ {
		ev := bitmapindex.WorkloadEvent{Attr: "orderdate", Class: bitmapindex.WorkloadRange, Matches: -1}
		if i%10 == 8 {
			ev = bitmapindex.WorkloadEvent{Attr: "status", Class: bitmapindex.WorkloadEq, Matches: -1}
		} else if i%10 == 9 {
			ev = bitmapindex.WorkloadEvent{Attr: "customer", Class: bitmapindex.WorkloadEq, Matches: -1}
		}
		acc.Observe(ev)
	}
	profile := acc.Snapshot()
	weighted, err := bitmapindex.AllocateBudgetWeighted(profile.Demands(), 3*budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved workload: 80%% range queries on C=%d, 10%% point lookups on each other attribute\n", card)
	for i, c := range workload {
		fmt.Printf("  C=%-5d -> %v (%d bitmaps, %.3f scans/query at its observed frequency)\n",
			c, weighted.Bases[i], weighted.Spaces[i], weighted.Times[i])
	}

	// The advisor packages that comparison: current design vs weighted
	// recommendation, drift from uniform, and the expected-scan gain.
	designs := make([]bitmapindex.AttrDesign, len(workload))
	names := []string{"status", "customer", "orderdate"}
	for i, c := range workload {
		designs[i] = bitmapindex.NewAttrDesign(names[i], c, alloc.Bases[i], bitmapindex.RangeEncoded, "raw", "")
	}
	rep, err := bitmapindex.Advise("orders", designs, profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: drift %.3f from uniform (drifted=%v), expected scans/query %.3f -> %.3f (gain %.3f)\n",
		rep.Drift, rep.Drifted, rep.CurrentTime, rep.RecommendedTime, rep.Gain)
}
