// Maintenance: the read-mostly warehouse lifecycle around a bitmap index.
// A nightly-loaded fact table takes a trickle of late-arriving rows and
// corrections during the day (append segment + tombstones, queries stay
// consistent throughout), then compacts back into a fresh immutable index
// and persists it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bitmapindex"
	"bitmapindex/internal/data"
)

func main() {
	const card = 50 // lineitem.quantity

	// Nightly load: 100k rows arrive in one batch.
	batch := data.LineitemQuantity(100000, 9)
	base, err := bitmapindex.New(batch.Values, card)
	if err != nil {
		log.Fatal(err)
	}
	m := bitmapindex.NewMutableFrom(base)
	fmt.Printf("loaded %d rows into %v\n", m.Rows(), base.Base())

	count := func(tag string) {
		res := m.Eval(bitmapindex.Le, 10)
		fmt.Printf("%-28s rows=%-7d live=%-7d delta=%-5d |A<=10|=%d\n",
			tag, m.Rows(), m.Live(), m.DeltaRows(), res.Count())
	}
	count("after nightly load:")

	// During the day: late rows trickle in...
	late := data.LineitemQuantity(500, 10)
	for _, v := range late.Values {
		if _, err := m.Append(v); err != nil {
			log.Fatal(err)
		}
	}
	// ...and a correction voids a block of rows.
	for r := 1000; r < 1250; r++ {
		if err := m.Delete(r); err != nil {
			log.Fatal(err)
		}
	}
	count("after day's changes:")

	// Queries during the day remain exact: cross-check one against a
	// scalar recount.
	want := 0
	for i, v := range batch.Values {
		if (i < 1000 || i >= 1250) && v <= 10 {
			want++
		}
	}
	for _, v := range late.Values {
		if v <= 10 {
			want++
		}
	}
	if got := m.Eval(bitmapindex.Le, 10).Count(); got != want {
		log.Fatalf("consistency check failed: %d vs %d", got, want)
	}
	fmt.Println("mid-day query cross-check passed")

	// Nightly compaction folds everything into a fresh base index...
	if err := m.Compact(); err != nil {
		log.Fatal(err)
	}
	count("after compaction:")

	// ...which persists like any other index.
	dir, err := os.MkdirTemp("", "maintenance-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := bitmapindex.SaveIndex(m.Base(), filepath.Join(dir, "ix"),
		bitmapindex.StoreOptions{Scheme: bitmapindex.BitmapLevel, Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted compacted index: %d bytes on disk (cBS)\n", st.ValueBytes())
}
