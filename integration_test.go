package bitmapindex

// End-to-end integration across every subsystem: workload generation ->
// design advisor -> build -> persistence (all layouts) -> cached
// evaluation -> aggregation and order statistics -> maintenance ->
// re-persistence. Each stage cross-checks against scalar references.

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func TestEndToEnd(t *testing.T) {
	const (
		rows = 30000
		card = 2406
	)
	r := rand.New(rand.NewSource(77))
	vals := make([]uint64, rows)
	for i := range vals {
		vals[i] = uint64(r.Intn(card))
	}

	// 1. Design under a space budget, then build.
	base, err := BestBaseUnderSpace(card, 80)
	if err != nil {
		t.Fatal(err)
	}
	if NumBitmaps(base, RangeEncoded) > 80 {
		t.Fatal("budget violated")
	}
	ix, err := New(vals, card, WithBase(base))
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist in a compressed layout, reopen, wrap in an LRU pool.
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := SaveIndex(ix, dir, StoreOptions{Scheme: BitmapLevel, Compress: true}); err != nil {
		t.Fatal(err)
	}
	st, err := OpenIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCachedStore(st, 12)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Queries through the pool match the in-memory index and a scalar
	// recount.
	var m StoreMetrics
	for _, q := range []struct {
		op Op
		v  uint64
	}{{Le, 400}, {Gt, 2000}, {Eq, 1234}, {Ne, 0}} {
		got, err := cs.Eval(q.op, q.v, &m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ix.Eval(q.op, q.v, nil)) {
			t.Fatalf("pooled A %s %d differs from in-memory", q.op, q.v)
		}
		want := 0
		for _, x := range vals {
			if q.op.Matches(x, q.v) {
				want++
			}
		}
		if got.Count() != want {
			t.Fatalf("A %s %d: %d rows, scalar says %d", q.op, q.v, got.Count(), want)
		}
	}
	if cs.HitRate() == 0 {
		t.Fatal("pool never hit")
	}

	// 4. Aggregates and order statistics over a selection.
	sel := ix.EvalBetween(500, 1500, nil)
	var wantSum uint64
	var inRange []uint64
	for _, x := range vals {
		if x >= 500 && x <= 1500 {
			wantSum += x
			inRange = append(inRange, x)
		}
	}
	sum, n, err := ix.SumSelected(sel)
	if err != nil || n != len(inRange) || sum != wantSum {
		t.Fatalf("sum %d over %d (err %v), scalar %d over %d", sum, n, err, wantSum, len(inRange))
	}
	sort.Slice(inRange, func(i, j int) bool { return inRange[i] < inRange[j] })
	med, ok, err := ix.MedianSelected(sel)
	if err != nil || !ok {
		t.Fatal(err)
	}
	k := (len(inRange) + 1) / 2
	if med != inRange[k-1] {
		t.Fatalf("median %d, scalar %d", med, inRange[k-1])
	}

	// 5. Maintenance: delete the selection, append replacements, compact,
	// and persist the result.
	mu := NewMutableFrom(ix)
	sel.Ones(func(row int) bool {
		if err := mu.Delete(row); err != nil {
			t.Fatal(err)
		}
		return true
	})
	for i := 0; i < 100; i++ {
		if _, err := mu.Append(1000); err != nil {
			t.Fatal(err)
		}
	}
	got := mu.Eval(Eq, 1000)
	if got.Count() != 100 { // all originals in [500,1500] are tombstoned
		t.Fatalf("A = 1000 after maintenance: %d rows, want 100", got.Count())
	}
	if err := mu.Compact(); err != nil {
		t.Fatal(err)
	}
	if mu.Rows() != rows-len(inRange)+100 {
		t.Fatalf("rows after compact = %d", mu.Rows())
	}
	dir2 := filepath.Join(t.TempDir(), "ix2")
	st2, err := SaveIndex(mu.Base(), dir2, StoreOptions{Scheme: ComponentLevel, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st2.Eval(Eq, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 100 {
		t.Fatalf("persisted compacted index: A = 1000 matched %d", res.Count())
	}
}
