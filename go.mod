module bitmapindex

go 1.23
