//go:build !bixdebug

package invariant

const enabled = false

// The production variants are empty and inlinable: the compiler removes
// both the calls and their argument evaluation where it can prove them
// side-effect free. Hot paths guard composite checks with
// `if invariant.Enabled { ... }` to make the elimination unconditional.

// Assert is a no-op unless built with -tags bixdebug.
func Assert(bool, string) {}

// TailZero is a no-op unless built with -tags bixdebug.
func TailZero([]uint64, int) {}

// DigitsInBase is a no-op unless built with -tags bixdebug.
func DigitsInBase([]uint64, []uint64) {}

// OptNoWorse is a no-op unless built with -tags bixdebug.
func OptNoWorse(int, int, string) {}
