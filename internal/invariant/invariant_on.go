//go:build bixdebug

package invariant

import "fmt"

const enabled = true

// Assert panics with msg when cond is false.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant: " + msg)
	}
}

// TailZero panics unless the unused high bits of the last word are zero for
// an n-bit vector packed into 64-bit words. It is the dynamic half of the
// bitvec tail-mask invariant.
func TailZero(words []uint64, n int) {
	if r := n % 64; r != 0 && len(words) > 0 {
		if hi := words[len(words)-1] &^ ((uint64(1) << uint(r)) - 1); hi != 0 {
			panic(fmt.Sprintf("invariant: tail bits set beyond length %d: last word %#x", n, words[len(words)-1]))
		}
	}
}

// DigitsInBase panics unless every digit is strictly below its component
// base, the precondition for indexing a component's bitmap slots.
func DigitsInBase(digits, base []uint64) {
	if len(digits) != len(base) {
		panic(fmt.Sprintf("invariant: %d digits for %d components", len(digits), len(base)))
	}
	for i, d := range digits {
		if d >= base[i] {
			panic(fmt.Sprintf("invariant: digit %d of component %d out of base %d", d, i+1, base[i]))
		}
	}
}

// OptNoWorse panics when the optimized evaluator used more bitmap
// operations than the baseline it claims to improve on.
func OptNoWorse(optOps, naiveOps int, what string) {
	if optOps > naiveOps {
		panic(fmt.Sprintf("invariant: %s: optimized evaluator used %d ops, baseline %d", what, optOps, naiveOps))
	}
}
