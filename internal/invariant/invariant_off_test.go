//go:build !bixdebug

package invariant

import "testing"

// Without the bixdebug tag every assertion must be an inert no-op, even on
// inputs that would violate the invariant.
func TestDisabledNoOps(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true without the bixdebug tag")
	}
	Assert(false, "ignored")
	TailZero([]uint64{^uint64(0)}, 1)
	DigitsInBase([]uint64{99}, []uint64{2})
	OptNoWorse(100, 1, "ignored")
}
