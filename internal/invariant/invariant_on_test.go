//go:build bixdebug

package invariant

import "testing"

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestEnabledOn(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled = false under the bixdebug tag")
	}
}

func TestTailZero(t *testing.T) {
	TailZero(nil, 0)
	TailZero([]uint64{^uint64(0)}, 64)            // full word: no tail
	TailZero([]uint64{0x7FFF_FFFF_FFFF_FFFF}, 63) // 63 valid bits, bit 63 clear
	mustPanic(t, "bit beyond 63-bit tail", func() { TailZero([]uint64{1 << 63}, 63) })
	mustPanic(t, "bit beyond 65-bit tail", func() { TailZero([]uint64{0, 2}, 65) })
}

func TestDigitsInBase(t *testing.T) {
	DigitsInBase([]uint64{4, 0}, []uint64{5, 10})
	mustPanic(t, "digit at base", func() { DigitsInBase([]uint64{5, 0}, []uint64{5, 10}) })
	mustPanic(t, "length mismatch", func() { DigitsInBase([]uint64{1}, []uint64{5, 10}) })
}

func TestOptNoWorse(t *testing.T) {
	OptNoWorse(3, 3, "equal is fine")
	OptNoWorse(2, 9, "better is fine")
	mustPanic(t, "opt worse", func() { OptNoWorse(4, 3, "test") })
}

func TestAssert(t *testing.T) {
	Assert(true, "fine")
	mustPanic(t, "false assert", func() { Assert(false, "boom") })
}
