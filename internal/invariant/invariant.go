// Package invariant provides cheap runtime assertions for the silent
// invariants the correctness of every reported number rests on: the bitvec
// tail-mask invariant (unused high bits of the last word are zero), digit
// decomposition bounds, and the paper's claim that RangeEval-Opt never does
// more bitmap work than RangeEval (Chan & Ioannidis, Section 3).
//
// The assertions compile to empty, inlinable no-ops unless the build tag
// `bixdebug` is set:
//
//	go test -tags bixdebug ./...
//
// so production binaries pay nothing while CI exercises every assertion
// through the ordinary test suite. A violated assertion panics — these are
// programming errors, never runtime conditions.
//
// The static side of the same contract is enforced by cmd/bixlint (see
// internal/analysis): the tailmask analyzer proves every words mutation is
// normalized or annotated, and these checks verify the dynamic half.
package invariant

// Enabled reports whether assertions are compiled in (the bixdebug build
// tag). It is a constant, so `if invariant.Enabled { ... }` blocks are
// eliminated entirely in production builds.
const Enabled = enabled
