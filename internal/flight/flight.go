// Package flight is the query flight recorder: a bounded in-memory ring of
// recent query executions, the retrospective-debugging black box behind
// /debug/queries. Every completed query — core evaluator calls, segmented
// evaluations, engine plans, HTTP requests — lands one Record carrying its
// trace ID, plan kind, cost counters, per-phase timing/allocation
// aggregates, segment skew and cache deltas. Capacity is fixed at
// construction; the record path performs no allocation in steady state
// (one atomic cursor bump plus a per-slot mutex), so recording 100% of
// queries costs well under the evaluator's own bookkeeping.
//
// The ring alone would forget exactly the queries worth remembering: a
// latency spike that happened more than Cap queries ago is overwritten.
// A small top-K outlier annex therefore retains the slowest queries seen
// so far regardless of ring wrap, reservoir-style: the hot path compares
// the new total against an atomically cached admission threshold and only
// takes the annex lock when the record actually qualifies.
package flight

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bitmapindex/internal/telemetry"
)

// DefaultCapacity is the ring size of the package-default recorder: large
// enough to cover a burst of debugging context, small enough that the
// resident footprint (about 1KB per slot) stays negligible.
const DefaultCapacity = 512

// maxPhases bounds the per-slot phase snapshot; a trace can never carry
// more distinct phases than its own fixed table holds.
const maxPhases = telemetry.MaxPhases

// outlierK is the annex size: the K slowest queries retained past wrap.
const outlierK = 8

// Record is one completed query execution. Numeric cost fields mirror
// core.Stats deltas (scans and boolean-operation counts, the paper's I/O
// and CPU cost measures); CacheHits/CacheMisses are deltas of the LRU-pool
// counters across the evaluation. Rows is -1 when the recording site does
// not count results. Phases is filled in snapshots only — the ring stores
// phase aggregates in fixed per-slot arrays so the record path allocates
// nothing.
type Record struct {
	Seq     uint64    `json:"seq"`
	TraceID string    `json:"trace_id,omitempty"`
	Query   string    `json:"query,omitempty"`
	Plan    string    `json:"plan"`
	Op      string    `json:"op,omitempty"`
	Value   uint64    `json:"value,omitempty"`
	Start   time.Time `json:"start"`

	Total time.Duration `json:"ns"`
	Rows  int64         `json:"rows"`
	// BytesRead is the plan-level physical read volume (engine.Cost);
	// zero for core-evaluator records, which count scans instead.
	BytesRead int64 `json:"bytes_read,omitempty"`

	Scans int `json:"scans"`
	Ands  int `json:"ands"`
	Ors   int `json:"ors"`
	Xors  int `json:"xors"`
	Nots  int `json:"nots"`

	AllocBytes   int64 `json:"alloc_bytes,omitempty"`
	AllocObjects int64 `json:"alloc_objects,omitempty"`

	// SegMin/SegMax are the fastest and slowest per-segment durations of a
	// segmented evaluation (the `segments` phase extremes), exposing
	// straggler skew; zero for serial evaluations.
	SegMin time.Duration `json:"seg_min_ns,omitempty"`
	SegMax time.Duration `json:"seg_max_ns,omitempty"`

	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`

	Phases []telemetry.PhaseRecord `json:"phases,omitempty"`
}

// slot is one pre-allocated ring (or annex) entry. The mutex orders one
// writer claiming the slot against concurrent Snapshot readers; writers
// never contend with each other on a slot until the ring wraps a full
// lap within one write's critical section, which the atomic cursor makes
// impossible for rings larger than the writer count.
type slot struct {
	mu      sync.Mutex
	rec     Record
	phases  [maxPhases]telemetry.PhaseRecord
	nphases int
}

// Recorder is a fixed-capacity query flight recorder. The zero value is
// not usable; create with New. All methods are safe for concurrent use
// and safe on a nil receiver (no-ops), so call sites can record
// unconditionally.
type Recorder struct {
	next  atomic.Uint64 // next sequence number; slot = seq % len(slots)
	slots []slot

	// Outlier annex: admission threshold is cached in outMin so the hot
	// path can reject non-outliers with one atomic load. outMin holds
	// MinInt64 until the annex fills, then the smallest retained total.
	outMin   atomic.Int64
	outMu    sync.Mutex
	outliers []slot // len outlierK, guarded by outMu (slot mutexes unused)
	outLen   int    // guarded by outMu
}

// New creates a recorder retaining the last capacity queries (plus the
// outlier annex). capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{
		slots:    make([]slot, capacity),
		outliers: make([]slot, outlierK),
	}
	r.outMin.Store(math.MinInt64)
	return r
}

var defaultRecorder = New(DefaultCapacity)

// Default returns the process-wide recorder that the core and engine
// evaluators record into.
func Default() *Recorder { return defaultRecorder }

// recordsTotal counts records accepted by any recorder, the liveness
// signal that the flight recorder really sees 100% of queries.
var recordsTotal = telemetry.Default().Counter("bix_flight_records_total",
	"Query executions captured by the flight recorder.")

// Add records one completed query. rec's Seq and Phases fields are
// ignored (Seq is assigned from the cursor; phases are snapshotted from
// tr into the slot's fixed buffer). tr may be nil — phase and skew fields
// then stay empty. The caller keeps ownership of rec; Add copies it.
//
//bix:hotpath
func (r *Recorder) Add(rec *Record, tr *telemetry.Trace) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	s := &r.slots[seq%uint64(len(r.slots))]
	s.mu.Lock()
	s.rec = *rec
	s.rec.Seq = seq
	s.rec.Phases = nil
	if s.rec.Start.IsZero() {
		s.rec.Start = time.Now()
	}
	s.nphases = tr.CopyPhases(s.phases[:])
	for i := 0; i < s.nphases; i++ {
		p := &s.phases[i]
		if p.Phase == telemetry.PhaseSegments {
			s.rec.SegMin = p.Min
			s.rec.SegMax = p.Max
		}
		if s.rec.AllocBytes == 0 {
			s.rec.AllocBytes += p.AllocBytes
		}
		if s.rec.AllocObjects == 0 {
			s.rec.AllocObjects += p.AllocObjects
		}
	}
	total := int64(s.rec.Total)
	s.mu.Unlock()
	recordsTotal.Inc()
	if total > r.outMin.Load() {
		r.addOutlier(s, seq)
	}
}

// addOutlier copies the just-written ring slot into the annex, evicting
// the smallest retained total. Rare path: it runs only when the admission
// threshold says the record ranks among the K slowest seen.
func (r *Recorder) addOutlier(s *slot, seq uint64) {
	r.outMu.Lock()
	defer r.outMu.Unlock()

	// Re-read the record under its slot lock: by the time we got here the
	// ring may have lapped and overwritten it with a different query.
	s.mu.Lock()
	if s.rec.Seq != seq {
		s.mu.Unlock()
		return
	}
	rec := s.rec
	var phases [maxPhases]telemetry.PhaseRecord
	nphases := s.nphases
	copy(phases[:], s.phases[:nphases])
	s.mu.Unlock()

	// Find the eviction victim (or the next free annex slot).
	victim := -1
	min := int64(math.MaxInt64)
	if r.outLen < len(r.outliers) {
		victim = r.outLen
		r.outLen++
	} else {
		for i := range r.outliers {
			if t := int64(r.outliers[i].rec.Total); t < min {
				min, victim = t, i
			}
		}
		if int64(rec.Total) <= min {
			return // raced with a concurrent insert that raised the bar
		}
	}
	o := &r.outliers[victim]
	o.rec = rec
	o.phases = phases
	o.nphases = nphases

	// Recompute the cached admission threshold.
	if r.outLen < len(r.outliers) {
		return // annex not full: admit everything
	}
	min = int64(math.MaxInt64)
	for i := range r.outliers {
		if t := int64(r.outliers[i].rec.Total); t < min {
			min = t
		}
	}
	r.outMin.Store(min)
}

// Len returns the number of records currently retained in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Seq returns the total number of records accepted since creation,
// including ones the ring has since overwritten.
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the retained ring records oldest-first, with Phases
// expanded. Records being written concurrently are either included
// complete or not yet visible — never torn.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	out := make([]Record, 0, r.Len())
	for i := range r.slots {
		if rec, ok := r.slots[i].snapshot(); ok {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Outliers returns the retained latency outliers, slowest first. Outliers
// survive ring wrap: a spike from thousands of queries ago is still here.
func (r *Recorder) Outliers() []Record {
	if r == nil {
		return nil
	}
	r.outMu.Lock()
	out := make([]Record, 0, r.outLen)
	for i := 0; i < r.outLen; i++ {
		o := &r.outliers[i]
		rec := o.rec
		rec.Phases = append([]telemetry.PhaseRecord(nil), o.phases[:o.nphases]...)
		out = append(out, rec)
	}
	r.outMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// snapshot copies the slot's record with phases expanded; ok is false for
// slots never written (Add stamps Start on every record, so a zero Start
// marks a virgin slot).
func (s *slot) snapshot() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec.Start.IsZero() {
		return Record{}, false
	}
	rec := s.rec
	rec.Phases = append([]telemetry.PhaseRecord(nil), s.phases[:s.nphases]...)
	return rec, true
}
