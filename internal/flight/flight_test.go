package flight

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"bitmapindex/internal/telemetry"
)

func rec(plan string, total time.Duration) *Record {
	return &Record{Plan: plan, Total: total, Rows: -1}
}

func TestRecorderRingWrap(t *testing.T) {
	r := New(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Add(rec(fmt.Sprintf("p%d", i), time.Duration(i)*time.Millisecond), nil)
	}
	if r.Len() != 4 || r.Seq() != 10 {
		t.Fatalf("len = %d seq = %d, want 4, 10", r.Len(), r.Seq())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d records, want 4", len(snap))
	}
	for i, got := range snap {
		wantSeq := uint64(6 + i)
		if got.Seq != wantSeq || got.Plan != fmt.Sprintf("p%d", wantSeq) {
			t.Errorf("snapshot[%d] = seq %d plan %q, want seq %d", i, got.Seq, got.Plan, wantSeq)
		}
		if got.Start.IsZero() {
			t.Errorf("snapshot[%d] missing start stamp", i)
		}
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := New(8)
	r.Add(rec("only", time.Millisecond), nil)
	if got := r.Snapshot(); len(got) != 1 || got[0].Plan != "only" {
		t.Fatalf("partial snapshot = %+v", got)
	}
}

// TestRecorderOutlierRetention is the reservoir guarantee: a latency spike
// stays visible in Outliers long after the ring has wrapped past it.
func TestRecorderOutlierRetention(t *testing.T) {
	r := New(4)
	spike := rec("spike", time.Second)
	spike.TraceID = "spike#1"
	r.Add(spike, nil)
	for i := 0; i < 100; i++ {
		r.Add(rec("fast", time.Microsecond), nil)
	}
	for _, s := range r.Snapshot() {
		if s.Plan == "spike" {
			t.Fatal("spike still in the ring after 100 records through capacity 4")
		}
	}
	outs := r.Outliers()
	if len(outs) == 0 || outs[0].Plan != "spike" || outs[0].TraceID != "spike#1" {
		t.Fatalf("outliers lost the spike: %+v", outs)
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].Total > outs[i-1].Total {
			t.Fatalf("outliers not sorted slowest-first: %+v", outs)
		}
	}
}

// TestRecorderOutlierEviction fills the annex with ascending totals and
// checks only the top K survive.
func TestRecorderOutlierEviction(t *testing.T) {
	r := New(4)
	for i := 1; i <= 3*outlierK; i++ {
		r.Add(rec("q", time.Duration(i)*time.Millisecond), nil)
	}
	outs := r.Outliers()
	if len(outs) != outlierK {
		t.Fatalf("annex holds %d, want %d", len(outs), outlierK)
	}
	for i, o := range outs {
		if want := time.Duration(3*outlierK-i) * time.Millisecond; o.Total != want {
			t.Errorf("outlier[%d] total = %v, want %v", i, o.Total, want)
		}
	}
}

// TestRecorderTraceSnapshot checks phase aggregates, segment skew and
// alloc sums are captured from the trace.
func TestRecorderTraceSnapshot(t *testing.T) {
	tr := telemetry.NewTrace("q")
	tr.Add(telemetry.PhaseFetch, 3*time.Millisecond)
	tr.Add(telemetry.PhaseSegments, 1*time.Millisecond)
	tr.Add(telemetry.PhaseSegments, 5*time.Millisecond)

	r := New(4)
	r.Add(rec("seg", 10*time.Millisecond), tr)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	got := snap[0]
	if got.SegMin != 1*time.Millisecond || got.SegMax != 5*time.Millisecond {
		t.Errorf("segment skew = [%v, %v], want [1ms, 5ms]", got.SegMin, got.SegMax)
	}
	if len(got.Phases) != 2 || got.Phases[0].Phase != telemetry.PhaseFetch ||
		got.Phases[1].Calls != 2 {
		t.Errorf("phases = %+v", got.Phases)
	}
	if _, err := json.Marshal(got); err != nil {
		t.Errorf("record not JSON-marshalable: %v", err)
	}
}

// TestRecorderZeroAlloc pins the tentpole's zero-steady-state-allocation
// claim: once the outlier annex threshold is warm, Add allocates nothing.
func TestRecorderZeroAlloc(t *testing.T) {
	tr := telemetry.NewTrace("q")
	tr.Add(telemetry.PhaseFetch, time.Millisecond)
	tr.Add(telemetry.PhaseBoolOps, time.Millisecond)

	r := New(16)
	base := Record{Plan: "eval-range", Op: "<=", Value: 7, Rows: -1,
		Total: time.Millisecond, Start: time.Now(), Scans: 3}
	if avg := testing.AllocsPerRun(200, func() { r.Add(&base, tr) }); avg != 0 {
		t.Fatalf("Add allocates %.1f objects per record, want 0", avg)
	}
}

// TestRecorderConcurrent hammers one recorder from concurrent writers and
// readers; under -race this is the required regression test that Add and
// Snapshot/Outliers do not race.
func TestRecorderConcurrent(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := telemetry.NewTrace("hammer")
			tr.Add(telemetry.PhaseFetch, time.Millisecond)
			for i := 0; i < 500; i++ {
				r.Add(rec("hammer", time.Duration(g*500+i)), tr)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				for _, s := range r.Snapshot() {
					if s.Plan != "hammer" {
						t.Errorf("torn record: %+v", s)
						return
					}
				}
				r.Outliers()
			}
		}()
	}
	wg.Wait()
	if r.Seq() != 2000 || r.Len() != 8 {
		t.Fatalf("seq = %d len = %d, want 2000, 8", r.Seq(), r.Len())
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.Add(rec("x", time.Second), nil) // must not panic
	if r.Snapshot() != nil || r.Outliers() != nil || r.Len() != 0 || r.Cap() != 0 || r.Seq() != 0 {
		t.Fatal("nil recorder leaked state")
	}
}

func TestDefaultRecorder(t *testing.T) {
	if Default() == nil || Default().Cap() != DefaultCapacity {
		t.Fatalf("default recorder cap = %d", Default().Cap())
	}
}
