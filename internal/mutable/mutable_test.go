package mutable

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/design"
)

func newTest(t *testing.T, card uint64) *Index {
	t.Helper()
	m, err := New(card, design.Knee, core.RangeEncoded)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// model mirrors the mutable index with plain slices.
type model struct {
	vals []uint64
	null []bool
	dead []bool
}

func (md *model) eval(op core.Op, v uint64) []bool {
	out := make([]bool, len(md.vals))
	for i := range md.vals {
		out[i] = !md.dead[i] && !md.null[i] && op.Matches(md.vals[i], v)
	}
	return out
}

func (md *model) live() int {
	n := 0
	for i := range md.vals {
		if !md.dead[i] {
			n++
		}
	}
	return n
}

// TestRandomizedLifecycle drives appends, deletes, compactions, and
// queries against the reference model.
func TestRandomizedLifecycle(t *testing.T) {
	const card = 60
	r := rand.New(rand.NewSource(51))
	m := newTest(t, card)
	md := &model{}
	check := func(stage string) {
		t.Helper()
		if m.Rows() != len(md.vals) {
			t.Fatalf("%s: Rows = %d, model %d", stage, m.Rows(), len(md.vals))
		}
		if m.Live() != md.live() {
			t.Fatalf("%s: Live = %d, model %d", stage, m.Live(), md.live())
		}
		for _, op := range core.AllOps {
			v := uint64(r.Intn(card + 2))
			got := m.Eval(op, v)
			want := md.eval(op, v)
			for i := range want {
				if got.Get(i) != want[i] {
					t.Fatalf("%s: A %s %d row %d: got %v want %v", stage, op, v, i, got.Get(i), want[i])
				}
			}
		}
	}
	for step := 0; step < 1200; step++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4: // append
			v := uint64(r.Intn(card))
			row, err := m.Append(v)
			if err != nil {
				t.Fatal(err)
			}
			if row != len(md.vals) {
				t.Fatalf("append row id %d, want %d", row, len(md.vals))
			}
			md.vals = append(md.vals, v)
			md.null = append(md.null, false)
			md.dead = append(md.dead, false)
		case 5: // append null
			row := m.AppendNull()
			if row != len(md.vals) {
				t.Fatalf("append-null row id %d, want %d", row, len(md.vals))
			}
			md.vals = append(md.vals, 0)
			md.null = append(md.null, true)
			md.dead = append(md.dead, false)
		case 6, 7: // delete a random row
			if len(md.vals) == 0 {
				continue
			}
			row := r.Intn(len(md.vals))
			if err := m.Delete(row); err != nil {
				t.Fatal(err)
			}
			md.dead[row] = true
		case 8: // point check
			if len(md.vals) == 0 {
				continue
			}
			row := r.Intn(len(md.vals))
			v, ok := m.Value(row)
			wantOK := !md.dead[row] && !md.null[row]
			if ok != wantOK || (ok && v != md.vals[row]) {
				t.Fatalf("Value(%d) = %d,%v; model %d dead=%v null=%v",
					row, v, ok, md.vals[row], md.dead[row], md.null[row])
			}
		case 9: // compact: renumber the model densely
			if err := m.Compact(); err != nil {
				t.Fatal(err)
			}
			var nv []uint64
			var nn, nd []bool
			for i := range md.vals {
				if md.dead[i] {
					continue
				}
				nv = append(nv, md.vals[i])
				nn = append(nn, md.null[i])
				nd = append(nd, false)
			}
			md.vals, md.null, md.dead = nv, nn, nd
			if m.DeltaRows() != 0 {
				t.Fatal("delta not emptied by Compact")
			}
		}
		if step%100 == 0 {
			check("step")
		}
	}
	check("final")
}

func TestFromIndex(t *testing.T) {
	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	ix, err := core.Build(vals, 9, core.Base{3, 3}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := FromIndex(ix)
	if m.Rows() != 10 || m.Live() != 10 {
		t.Fatalf("rows %d live %d", m.Rows(), m.Live())
	}
	if err := m.Delete(4); err != nil { // value 8
		t.Fatal(err)
	}
	if _, err := m.Append(8); err != nil {
		t.Fatal(err)
	}
	got := m.Eval(core.Eq, 8)
	if got.Get(4) || !got.Get(10) || got.Count() != 1 {
		t.Fatalf("Eq 8 after delete+append: %s", got)
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 10 || m.Base().Rows() != 10 {
		t.Fatalf("after compact: rows %d", m.Rows())
	}
	// Compaction keeps the original base design.
	if !m.Base().Base().Equal(core.Base{3, 3}) {
		t.Fatalf("design changed: %v", m.Base().Base())
	}
}

func TestMutableErrors(t *testing.T) {
	if _, err := New(9, nil, core.RangeEncoded); err == nil {
		t.Fatal("nil design must fail")
	}
	m := newTest(t, 9)
	if _, err := m.Append(9); !errors.Is(err, core.ErrValueOutOfRange) {
		t.Fatalf("Append out of range: %v", err)
	}
	if err := m.Delete(0); err == nil {
		t.Fatal("delete on empty index must fail")
	}
	if err := m.Delete(-1); err == nil {
		t.Fatal("negative row must fail")
	}
	if _, ok := m.Value(3); ok {
		t.Fatal("Value on missing row must be !ok")
	}
	// Double delete is a no-op.
	if _, err := m.Append(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(0); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 0 {
		t.Fatalf("Live = %d after double delete", m.Live())
	}
}

func TestMutableConcurrent(t *testing.T) {
	m := newTest(t, 100)
	for i := 0; i < 500; i++ {
		if _, err := m.Append(uint64(i % 100)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 200; k++ {
				switch r.Intn(4) {
				case 0:
					if _, err := m.Append(uint64(r.Intn(100))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					_ = m.Delete(r.Intn(m.Rows()))
				default:
					m.Eval(core.Le, uint64(r.Intn(100)))
				}
			}
		}(g)
	}
	wg.Wait()
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	if m.DeltaRows() != 0 {
		t.Fatal("delta not empty after compact")
	}
}
