// Package mutable layers batch maintenance on top of the immutable bitmap
// index: a tombstone bitmap for deletions and an in-memory append segment,
// folded into a fresh base index by Compact. This is the maintenance
// lifecycle the paper's read-mostly DSS environment implies — queries at
// bitmap speed at all times, cheap row-level changes between batch loads,
// and index rebuilds only at compaction points.
//
// Queries see one contiguous row space: base rows first (minus
// tombstones), then appended rows. An Index is safe for concurrent use; a
// read-write mutex serializes mutations against queries.
package mutable

import (
	"fmt"
	"sync"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
)

// Index is a mutable view over an immutable core.Index.
type Index struct {
	mu sync.RWMutex

	card uint64
	base *core.Index // guarded by mu
	enc  core.Encoding
	// design picks the base sequence at (re)build time, from the current
	// cardinality; fixed at New.
	design func(card uint64) (core.Base, error)

	dead *bitvec.Vector // guarded by mu; tombstones over base rows

	deltaVals  []uint64 // guarded by mu
	deltaNulls []bool   // guarded by mu
	deltaDead  []bool   // guarded by mu
	deltaLive  int      // guarded by mu
}

// New creates an empty mutable index with the given attribute cardinality
// and encoding; design picks the base sequence whenever the base index is
// (re)built (nil means the knee would be a design-package concern, so the
// caller must supply one — core has no dependency on design).
func New(card uint64, design func(card uint64) (core.Base, error), enc core.Encoding) (*Index, error) {
	if design == nil {
		return nil, fmt.Errorf("mutable: nil design function")
	}
	m := &Index{card: card, enc: enc, design: design}
	if err := m.rebuild(nil, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// FromIndex wraps an existing immutable index; later compactions reuse its
// base sequence.
func FromIndex(ix *core.Index) *Index {
	base := ix.Base()
	return &Index{
		card:   ix.Cardinality(),
		base:   ix,
		enc:    ix.Encoding(),
		design: func(uint64) (core.Base, error) { return base, nil },
		dead:   bitvec.New(ix.Rows()),
	}
}

// rebuild replaces the base index and resets tombstones and the append
// segment. Callers hold mu (or, in New, the index is not yet shared).
//
//bix:lockheld
func (m *Index) rebuild(vals []uint64, nulls []bool) error {
	base, err := m.design(m.card)
	if err != nil {
		return err
	}
	var opts *core.BuildOptions
	if nulls != nil {
		opts = &core.BuildOptions{Nulls: nulls}
	}
	ix, err := core.Build(vals, m.card, base, m.enc, opts)
	if err != nil {
		return err
	}
	m.base = ix
	m.dead = bitvec.New(ix.Rows())
	m.deltaVals = nil
	m.deltaNulls = nil
	m.deltaDead = nil
	m.deltaLive = 0
	return nil
}

// Rows returns the total row count including tombstoned rows (row ids are
// stable until Compact).
func (m *Index) Rows() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.base.Rows() + len(m.deltaVals)
}

// Live returns the number of non-deleted rows.
func (m *Index) Live() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.base.Rows() - m.dead.Count() + m.deltaLive
}

// DeltaRows returns the size of the unindexed append segment, the signal
// for scheduling a Compact.
func (m *Index) DeltaRows() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.deltaVals)
}

// Append adds a row and returns its id.
func (m *Index) Append(v uint64) (int, error) {
	if v >= m.card {
		return 0, fmt.Errorf("%w: value %d, cardinality %d", core.ErrValueOutOfRange, v, m.card)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	row := m.base.Rows() + len(m.deltaVals)
	m.deltaVals = append(m.deltaVals, v)
	m.deltaNulls = append(m.deltaNulls, false)
	m.deltaDead = append(m.deltaDead, false)
	m.deltaLive++
	return row, nil
}

// AppendNull adds a null row and returns its id.
func (m *Index) AppendNull() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	row := m.base.Rows() + len(m.deltaVals)
	m.deltaVals = append(m.deltaVals, 0)
	m.deltaNulls = append(m.deltaNulls, true)
	m.deltaDead = append(m.deltaDead, false)
	m.deltaLive++
	return row
}

// Delete tombstones a row. Deleting a row twice is a no-op.
func (m *Index) Delete(row int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case row < 0 || row >= m.base.Rows()+len(m.deltaVals):
		return fmt.Errorf("mutable: row %d out of range [0,%d)", row, m.base.Rows()+len(m.deltaVals))
	case row < m.base.Rows():
		m.dead.Set(row)
	default:
		d := row - m.base.Rows()
		if !m.deltaDead[d] {
			m.deltaDead[d] = true
			m.deltaLive--
		}
	}
	return nil
}

// Eval evaluates (A op v) over the combined row space: the base index
// answers its rows through the bitmap evaluator (minus tombstones) and the
// append segment is scanned (it is small by construction — that is what
// Compact is for).
func (m *Index) Eval(op core.Op, v uint64) *bitvec.Vector {
	m.mu.RLock()
	defer m.mu.RUnlock()
	baseRows := m.base.Rows()
	out := bitvec.New(baseRows + len(m.deltaVals))
	b := m.base.Eval(op, v, nil)
	b.AndNot(m.dead)
	b.Ones(func(r int) bool {
		out.Set(r)
		return true
	})
	for d, dv := range m.deltaVals {
		if m.deltaDead[d] || m.deltaNulls[d] {
			continue
		}
		if op.Matches(dv, v) {
			out.Set(baseRows + d)
		}
	}
	return out
}

// Value returns the value at a row and whether the row is live and
// non-null.
func (m *Index) Value(row int) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	baseRows := m.base.Rows()
	switch {
	case row < 0 || row >= baseRows+len(m.deltaVals):
		return 0, false
	case row < baseRows:
		if m.dead.Get(row) {
			return 0, false
		}
		return m.base.Value(row)
	default:
		d := row - baseRows
		if m.deltaDead[d] || m.deltaNulls[d] {
			return 0, false
		}
		return m.deltaVals[d], true
	}
}

// Compact folds tombstones and the append segment into a freshly built
// base index. Row ids are renumbered densely (tombstoned rows vanish).
func (m *Index) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var vals []uint64
	var nulls []bool
	anyNull := false
	for r := 0; r < m.base.Rows(); r++ {
		if m.dead.Get(r) {
			continue
		}
		v, ok := m.base.Value(r)
		vals = append(vals, v)
		nulls = append(nulls, !ok)
		anyNull = anyNull || !ok
	}
	for d, dv := range m.deltaVals {
		if m.deltaDead[d] {
			continue
		}
		vals = append(vals, dv)
		nulls = append(nulls, m.deltaNulls[d])
		anyNull = anyNull || m.deltaNulls[d]
	}
	if !anyNull {
		nulls = nil
	}
	return m.rebuild(vals, nulls)
}

// Base returns the current immutable base index (for storage, statistics,
// aggregation over base rows). It does not include the append segment.
func (m *Index) Base() *core.Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.base
}
