package buffer

import (
	"math"
	"math/rand"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/design"
)

func TestAssignmentBasics(t *testing.T) {
	a := Assignment{1, 2, 0}
	if a.Total() != 3 {
		t.Fatalf("Total = %d", a.Total())
	}
	base := core.Base{4, 4, 4}
	if err := a.Validate(base); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Assignment{4, 0, 0}).Validate(base); err == nil {
		t.Fatal("f_1 = b_1 - 0 must be invalid")
	}
	if err := (Assignment{-1, 0, 0}).Validate(base); err == nil {
		t.Fatal("negative f must be invalid")
	}
	if err := (Assignment{1, 2}).Validate(base); err == nil {
		t.Fatal("length mismatch must be invalid")
	}
}

// bruteOptimal searches every valid assignment of m bitmaps.
func bruteOptimal(base core.Base, card uint64, m int) float64 {
	best := math.Inf(1)
	n := len(base)
	a := make(Assignment, n)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == n {
			if tm := Time(base, card, a); tm < best {
				best = tm
			}
			return
		}
		maxF := int(base[i]) - 1
		if maxF > left {
			maxF = left
		}
		for f := 0; f <= maxF; f++ {
			a[i] = f
			rec(i+1, left-f)
		}
		a[i] = 0
	}
	rec(0, m)
	return best
}

// TestOptimalMatchesBruteForce: the greedy policy of Theorem 10.1 achieves
// the exact optimum for every buffer size.
func TestOptimalMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(3) + 1
		base := make(core.Base, n)
		for i := range base {
			base[i] = uint64(r.Intn(8) + 2)
		}
		card, _ := base.Product()
		total := cost.SpaceRange(base)
		for m := 0; m <= total+2; m++ {
			a := Optimal(base, card, m)
			if err := a.Validate(base); err != nil {
				t.Fatalf("base %v m=%d: invalid assignment %v: %v", base, m, a, err)
			}
			want := m
			if want > total {
				want = total
			}
			if a.Total() != want {
				t.Fatalf("base %v m=%d: assignment uses %d slots, want %d", base, m, a.Total(), want)
			}
			got := Time(base, card, a)
			best := bruteOptimal(base, card, m)
			if math.Abs(got-best) > 1e-9 {
				t.Fatalf("base %v m=%d: greedy time %.6f, brute force %.6f (assignment %v)",
					base, m, got, best, a)
			}
		}
	}
}

// TestTheorem101Priority: buffering prefers components with small bases,
// and prefers component i >= 2 over component 1 iff b_i < (3/2) b_1.
func TestTheorem101Priority(t *testing.T) {
	// base <10, 2>: b_2 = 2 < 15 -> component 2's bitmap is taken first.
	a := Optimal(core.Base{10, 2}, 20, 1)
	if a[1] != 1 || a[0] != 0 {
		t.Fatalf("base <2,10> (big-endian) m=1: assignment %v, want component 2 first", a)
	}
	// base <4, 30>: b_2 = 30 > (3/2)*4 -> component 1's bitmaps are taken
	// first even though it is position 1.
	a = Optimal(core.Base{4, 30}, 120, 3)
	if a[0] != 3 || a[1] != 0 {
		t.Fatalf("base <30,4> (big-endian) m=3: assignment %v, want component 1 first", a)
	}
}

// TestBufferingImprovesMeasuredScans: the simulated buffered evaluation
// over all queries matches the exact digit-level model for the concrete
// slot choice, and stays within the boundary-correction gap (n-1)/(3C) of
// the eq. (5) formula (which averages over a random slot choice).
func TestBufferingImprovesMeasuredScans(t *testing.T) {
	for _, base := range []core.Base{{5, 4}, {9}, {3, 3, 3}} {
		card, _ := base.Product()
		ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := cost.SpaceRange(base)
		prev := math.Inf(1)
		for m := 0; m <= total; m++ {
			a := Optimal(base, card, m)
			scans := 0
			for _, op := range core.AllOps {
				for v := uint64(0); v < card; v++ {
					var st core.Stats
					ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &st, Buffered: a.For()})
					scans += st.Scans
				}
			}
			measured := float64(scans) / float64(6*card)
			model := cost.ExactTimeRangeBuffered(base, card, a.For())
			if math.Abs(measured-model) > 1e-9 {
				t.Fatalf("base %v m=%d: measured %.6f, digit model %.6f", base, m, measured, model)
			}
			gap := float64(base.N()-1) / (3 * float64(card))
			if formula := Time(base, card, a); math.Abs(measured-formula) > gap+1e-9 {
				t.Fatalf("base %v m=%d: measured %.6f vs formula %.6f exceeds gap %.6f",
					base, m, measured, formula, gap)
			}
			if measured > prev+1e-9 {
				t.Fatalf("base %v m=%d: more buffering increased measured scans", base, m)
			}
			prev = measured
		}
	}
}

// TestTheorem102 verifies that the closed-form buffered time-optimal index
// matches a brute-force search over all minimal bases with optimal
// assignments.
func TestTheorem102(t *testing.T) {
	for _, card := range []uint64{30, 100, 250} {
		for m := 1; m <= 6; m++ {
			base, a, err := TimeOptimalIndex(card, m)
			if err != nil {
				t.Fatal(err)
			}
			if !base.Covers(card) {
				t.Fatalf("C=%d m=%d: base %v does not cover", card, m, base)
			}
			got := Time(base, card, a)
			best := math.Inf(1)
			var bestBase core.Base
			design.EnumerateMinimal(card, design.MaxComponents(card), func(b core.Base) {
				if tm := Time(b, card, Optimal(b, card, m)); tm < best {
					best = tm
					bestBase = b.Clone()
				}
			})
			if got-best > 1e-9 {
				t.Errorf("C=%d m=%d: theorem index %v (%.4f) beaten by %v (%.4f)",
					card, m, base, got, bestBase, best)
			}
		}
	}
}

func TestTimeOptimalIndexLargeBuffer(t *testing.T) {
	// With m >= ceil(log2 C) the whole base-2 index fits in memory.
	base, a, err := TimeOptimalIndex(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if base.N() != core.Log2Ceil(100) {
		t.Fatalf("base %v, want %d components", base, core.Log2Ceil(100))
	}
	if tm := Time(base, 100, a); math.Abs(tm) > 1e-9 {
		t.Fatalf("fully buffered time = %f, want 0", tm)
	}
}

func TestTimeOptimalIndexErrors(t *testing.T) {
	if _, _, err := TimeOptimalIndex(1, 2); err == nil {
		t.Error("C=1 must fail")
	}
	if _, _, err := TimeOptimalIndex(100, -1); err == nil {
		t.Error("negative m must fail")
	}
	// m = 0 degenerates to the unbuffered single-component optimum.
	base, a, err := TimeOptimalIndex(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.N() != 1 || a.Total() != 0 {
		t.Errorf("m=0: got %v / %v", base, a)
	}
}

func TestForPredicate(t *testing.T) {
	a := Assignment{2, 0, 1}
	p := a.For()
	cases := []struct {
		comp, slot int
		want       bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, false},
		{1, 0, false},
		{2, 0, true}, {2, 1, false},
		{5, 0, false},
	}
	for _, c := range cases {
		if got := p(c.comp, c.slot); got != c.want {
			t.Errorf("For()(%d,%d) = %v, want %v", c.comp, c.slot, got, c.want)
		}
	}
}

// TestCountingForHitAccounting: the counting predicate agrees with For on
// every consultation, misses equal the measured scan count (the evaluator
// consults the buffer exactly once per distinct bitmap referenced), and
// the measured hit rate matches f_i/(b_i-1) aggregated over the reference
// mix.
func TestCountingForHitAccounting(t *testing.T) {
	base := core.Base{5, 4}
	card, _ := base.Product()
	ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Optimal(base, card, 3)
	var h HitStats
	pred := a.CountingFor(&h)
	plain := a.For()
	totalScans := 0
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			var st core.Stats
			ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &st, Buffered: pred})
			totalScans += st.Scans
		}
	}
	if h.Misses() != int64(totalScans) {
		t.Errorf("misses = %d, measured scans = %d (must be equal)", h.Misses(), totalScans)
	}
	if h.Hits() == 0 {
		t.Error("no hits recorded for a non-empty assignment")
	}
	if rate := h.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %v outside (0,1)", rate)
	}
	// The counting wrapper must not change residency decisions.
	for comp := range base {
		for slot := 0; slot < int(base[comp])-1; slot++ {
			if pred(comp, slot) != plain(comp, slot) {
				t.Fatalf("CountingFor disagrees with For at (%d,%d)", comp, slot)
			}
		}
	}
	// Zero-value stats report a zero rate rather than NaN.
	var empty HitStats
	if empty.HitRate() != 0 {
		t.Errorf("empty HitRate = %v, want 0", empty.HitRate())
	}
}
