// Package buffer implements the paper's Section 10: the effect of keeping
// m bitmaps resident in main memory on the space-time tradeoff of
// range-encoded bitmap indexes.
//
// A buffer assignment <f_n, ..., f_1> keeps f_i of component i's b_i - 1
// stored bitmaps in memory. Under the uniform query distribution every
// stored bitmap of a component is referenced equally often, so buffering
// any f_i of them yields hit rate f_i/(b_i - 1) per reference and the
// expected scan count of eq. (5) (cost.TimeRangeBuffered). Because the
// expected cost is linear in each f_i, the greedy policy that repeatedly
// buffers a bitmap from the component with the highest marginal benefit is
// exactly optimal; the resulting priority order is the paper's Theorem
// 10.1: a bitmap of component i >= 2 beats one of component 1 iff
// 2/b_i > (4/3)/b_1, i.e. iff b_i < (3/2) b_1, and within a set smaller
// bases win.
package buffer

import (
	"fmt"
	"sync/atomic"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/telemetry"
)

// Assignment holds the number of buffered bitmaps per component,
// little-endian like core.Base: Assignment[0] is f_1.
type Assignment []int

// Total returns the total number of buffered bitmaps.
func (a Assignment) Total() int {
	t := 0
	for _, f := range a {
		t += f
	}
	return t
}

// Validate reports whether the assignment is well-defined for the base:
// 0 <= f_i <= b_i - 1 for every component.
func (a Assignment) Validate(base core.Base) error {
	if len(a) != len(base) {
		return fmt.Errorf("buffer: assignment has %d components, base has %d", len(a), len(base))
	}
	for i, f := range a {
		if f < 0 || f > int(base[i])-1 {
			return fmt.Errorf("buffer: f_%d = %d out of range [0, %d]", i+1, f, base[i]-1)
		}
	}
	return nil
}

// marginal returns the reduction in expected scans from buffering one more
// bitmap of component i (0-based), from the derivative of eq. (5). The
// small negative term reflects the boundary correction: a buffered slot
// occasionally holds a bitmap the degenerate constants would not have
// scanned anyway.
func marginal(base core.Base, card uint64, i int) float64 {
	if i == 0 {
		return (4.0 / 3.0) / float64(base[0])
	}
	return 2/float64(base[i]) - 1/(3*float64(card)*float64(base[i]-1))
}

// Optimal returns the optimal m-bitmap buffer assignment for the base
// (Theorem 10.1): the linear objective makes greedy-by-marginal-benefit
// exact. Assignments are capped at each component's b_i - 1 stored
// bitmaps; if m exceeds the total stored bitmaps the surplus is unused.
func Optimal(base core.Base, card uint64, m int) Assignment {
	a := make(Assignment, len(base))
	for m > 0 {
		best, bestGain := -1, 0.0
		for i := range base {
			if a[i] >= int(base[i])-1 {
				continue
			}
			if g := marginal(base, card, i); g > bestGain {
				bestGain = g
				best = i
			}
		}
		if best < 0 {
			break
		}
		a[best]++
		m--
	}
	return a
}

// Time returns the expected scans per query for the base with the given
// buffer assignment (eq. (5) with the boundary correction of
// cost.TimeRangeBuffered).
func Time(base core.Base, card uint64, a Assignment) float64 {
	return cost.TimeRangeBuffered(base, card, a)
}

// For converts an assignment into a predicate usable as
// core.EvalOptions.Buffered: the f_i lowest slots of each component are the
// resident ones (any choice of slots has the same expected hit rate under
// the uniform query distribution).
func (a Assignment) For() func(comp, slot int) bool {
	return func(comp, slot int) bool {
		return comp < len(a) && slot < a[comp]
	}
}

// HitStats counts buffer consultations so buffering experiments can report
// measured hits next to the eq. (5) expectation. The evaluator consults
// the Buffered predicate once per distinct bitmap referenced per query (and
// only when EvalOptions.Stats is set), so hits+misses equals the distinct
// bitmap references and misses equals the scan count. Safe for concurrent
// queries (core.EvalBatch).
type HitStats struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Hits returns the number of bitmap references served by the buffer.
func (h *HitStats) Hits() int64 { return h.hits.Load() }

// Misses returns the number of bitmap references that went to storage.
func (h *HitStats) Misses() int64 { return h.misses.Load() }

// HitRate returns the fraction of bitmap references served by the buffer.
func (h *HitStats) HitRate() float64 {
	hits, misses := h.Hits(), h.Misses()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// CountingFor is For with hit accounting: every consultation is counted
// into h and mirrored to the telemetry registry's bix_buffer_hits_total /
// bix_buffer_misses_total.
func (a Assignment) CountingFor(h *HitStats) func(comp, slot int) bool {
	resident := a.For()
	return func(comp, slot int) bool {
		if resident(comp, slot) {
			h.hits.Add(1)
			telemetry.BufferHitsTotal.Inc()
			return true
		}
		h.misses.Add(1)
		telemetry.BufferMissesTotal.Inc()
		return false
	}
}

// TimeOptimalIndex returns the time-optimal index design when m bitmaps
// can be buffered, together with its optimal assignment (Theorem 10.2):
// for m >= 1 it is the m-component index <2, ..., 2, ceil(C/2^(m-1))>
// whose m-1 base-2 bitmaps are all buffered plus one bitmap of component
// 1. When m meets or exceeds ceil(log2 C) the base-2 index with every
// bitmap buffered evaluates queries entirely from memory.
func TimeOptimalIndex(card uint64, m int) (core.Base, Assignment, error) {
	if card < 2 {
		return nil, nil, fmt.Errorf("buffer: cardinality must be >= 2, got %d", card)
	}
	if m < 0 {
		return nil, nil, fmt.Errorf("buffer: negative buffer size %d", m)
	}
	n := m
	if max := core.Log2Ceil(card); n > max {
		n = max
	}
	if n == 0 {
		n = 1
	}
	base := make(core.Base, n)
	rest := uint64(1) << uint(n-1)
	b1 := (card + rest - 1) / rest
	if b1 < 2 {
		b1 = 2
	}
	base[0] = b1
	for i := 1; i < n; i++ {
		base[i] = 2
	}
	return base, Optimal(base, card, m), nil
}
