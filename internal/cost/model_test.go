package cost

import (
	"testing"

	"bitmapindex/internal/core"
)

// TestScansForExact proves the per-query prediction exact against the
// instrumented serial evaluators for every operator and constant, across
// all three encodings and several decompositions — the property
// engine.ExplainAnalyze's scans_error=0 guarantee rests on.
func TestScansForExact(t *testing.T) {
	rows := []uint64{0, 3, 7, 11, 11, 2, 9, 4, 0, 6}
	const card = 12
	for _, base := range []core.Base{{12}, {4, 3}, {3, 2, 2}} {
		for _, enc := range []core.Encoding{
			core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded,
		} {
			ix, err := core.Build(rows, card, base, enc, nil)
			if err != nil {
				t.Fatalf("build %v/%v: %v", base, enc, err)
			}
			for _, op := range core.AllOps {
				for v := uint64(0); v < card+2; v++ { // incl. out-of-domain constants
					var st core.Stats
					ix.Eval(op, v, &core.EvalOptions{Stats: &st})
					if got := ScansFor(base, enc, card, op, v); got != st.Scans {
						t.Errorf("%v/%v A %v %d: predicted %d scans, measured %d",
							base, enc, op, v, got, st.Scans)
					}
				}
			}
		}
	}
}

// TestScansForProbeCacheReuse checks repeated interval predictions reuse
// one probe index (the cache key covers base, encoding and cardinality).
func TestScansForProbeCacheReuse(t *testing.T) {
	base := core.Base{5, 2}
	ScansFor(base, core.IntervalEncoded, 10, core.Le, 3)
	probeCache.Lock()
	before := len(probeCache.m)
	probeCache.Unlock()
	for v := uint64(0); v < 10; v++ {
		ScansFor(base, core.IntervalEncoded, 10, core.Ge, v)
	}
	probeCache.Lock()
	after := len(probeCache.m)
	probeCache.Unlock()
	if after != before {
		t.Fatalf("probe cache grew from %d to %d for one shape", before, after)
	}
}
