package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bitmapindex/internal/core"
)

func TestSpaceRange(t *testing.T) {
	cases := []struct {
		base core.Base
		want int
	}{
		{core.Base{9}, 8},
		{core.Base{3, 3}, 4},
		{core.Base{2, 2, 2, 2}, 4},
		{core.Base{10, 10, 10}, 27},
	}
	for _, c := range cases {
		if got := SpaceRange(c.base); got != c.want {
			t.Errorf("SpaceRange(%v) = %d, want %d", c.base, got, c.want)
		}
		if got := Space(c.base, core.RangeEncoded); got != c.want {
			t.Errorf("Space(range) disagrees")
		}
	}
}

func TestSpaceEquality(t *testing.T) {
	cases := []struct {
		base core.Base
		want int
	}{
		{core.Base{9}, 9},
		{core.Base{3, 3}, 6},
		{core.Base{2, 2, 2}, 3}, // base-2 components store one bitmap each
		{core.Base{2, 5}, 6},
	}
	for _, c := range cases {
		if got := SpaceEquality(c.base); got != c.want {
			t.Errorf("SpaceEquality(%v) = %d, want %d", c.base, got, c.want)
		}
	}
}

// TestSpaceMatchesBuiltIndex ensures the analytic space metric equals the
// stored-bitmap count of real indexes.
func TestSpaceMatchesBuiltIndex(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, base := range []core.Base{{7}, {3, 3}, {2, 2, 3}, {4, 2}} {
		card, _ := base.Product()
		vals := make([]uint64, 40)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
		}
		for _, enc := range []core.Encoding{core.EqualityEncoded, core.RangeEncoded} {
			ix, err := core.Build(vals, card, base, enc, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ix.NumBitmaps(), Space(base, enc); got != want {
				t.Errorf("base %v enc %v: built %d bitmaps, model says %d", base, enc, got, want)
			}
		}
	}
}

// TestScansModelMatchesEvaluator is the keystone cross-check: the pure
// digit-level scan model must agree with the instrumented evaluators on
// every query, for both encodings.
func TestScansModelMatchesEvaluator(t *testing.T) {
	bases := []core.Base{{9}, {3, 3}, {4, 3}, {2, 2, 2, 2}, {5, 2, 3}, {2, 7}, {12, 2}}
	for _, base := range bases {
		card, _ := base.Product()
		// A one-row index suffices: scan counts are data independent.
		vals := []uint64{0}
		for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded} {
			ix, err := core.Build(vals, card, base, enc, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range core.AllOps {
				for v := uint64(0); v < card; v++ {
					var st core.Stats
					ix.Eval(op, v, &core.EvalOptions{Stats: &st})
					var want int
					if enc == core.RangeEncoded {
						want = ScansRange(base, card, op, v)
					} else {
						want = ScansEquality(base, card, op, v)
					}
					if st.Scans != want {
						t.Fatalf("%v %v: A %s %d: evaluator scanned %d, model says %d",
							base, enc, op, v, st.Scans, want)
					}
				}
			}
		}
	}
}

// TestClosedFormMatchesEnumeration verifies eq. (4): when C equals the base
// product, the closed form equals exact enumeration.
func TestClosedFormMatchesEnumeration(t *testing.T) {
	for _, base := range []core.Base{{9}, {3, 3}, {10, 10}, {2, 2, 2, 2}, {4, 5, 3}, {17, 2}} {
		card, _ := base.Product()
		closed := TimeRange(base, card)
		exact := ExactTimeRange(base, card)
		if math.Abs(closed-exact) > 1e-9 {
			t.Errorf("base %v: closed form %.9f != enumeration %.9f", base, closed, exact)
		}
	}
}

// TestClosedFormSingleComponent checks the n = 1 special values: a
// single-component base-C range-encoded index needs (1 - 1/C) scans for a
// range predicate and 2 - 2/C for an equality predicate, averaging
// (4/3)*(1 - 1/C).
func TestClosedFormSingleComponent(t *testing.T) {
	for _, c := range []uint64{2, 10, 100, 1000} {
		want := (4.0 / 3.0) * (1 - 1/float64(c))
		if got := TimeRange(core.Base{c}, c); math.Abs(got-want) > 1e-12 {
			t.Errorf("C=%d: TimeRange = %f, want %f", c, got, want)
		}
	}
}

func TestTimeRangeMonotoneInComponents(t *testing.T) {
	// Theorem 6.1(4): splitting into more components never improves time.
	// <1000> vs <40,25> vs <10,10,10> vs base-2.
	seq := []core.Base{{1000}, {25, 40}, {10, 10, 10}, {2, 2, 2, 2, 2, 2, 2, 2, 2, 2}}
	prev := -1.0
	for _, b := range seq {
		tm := TimeRangeAsymptotic(b)
		if tm < prev {
			t.Fatalf("time decreased from %f to %f at %v", prev, tm, b)
		}
		prev = tm
	}
}

// TestBufferedFormula checks eq. (5) boundary behaviour.
func TestBufferedFormula(t *testing.T) {
	base := core.Base{10, 10}
	if got, want := TimeRangeBuffered(base, 100, nil), TimeRange(base, 100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("no buffering: %f != %f", got, want)
	}
	// Fully buffering every stored bitmap drives the cost to zero.
	if got := TimeRangeBuffered(base, 100, []int{9, 9}); math.Abs(got) > 1e-12 {
		t.Fatalf("fully buffered cost = %f, want 0", got)
	}
	// Clamping: over-large and negative assignments are tolerated.
	if got := TimeRangeBuffered(base, 100, []int{100, -5}); got < 0 || got > TimeRange(base, 100) {
		t.Fatalf("clamped cost out of range: %f", got)
	}
	// Buffering a bitmap of component 2 helps more than one of component 1
	// when bases are equal (marginal 2/b vs 4/(3b)).
	b1 := TimeRangeBuffered(base, 100, []int{1, 0})
	b2 := TimeRangeBuffered(base, 100, []int{0, 1})
	if b2 >= b1 {
		t.Fatalf("buffering comp2 (%f) should beat comp1 (%f)", b2, b1)
	}
}

func TestBufferedMonotoneProperty(t *testing.T) {
	f := func(b1r, b2r uint8, f1r, f2r uint8) bool {
		base := core.Base{uint64(b1r%20) + 2, uint64(b2r%20) + 2}
		f1 := int(f1r) % int(base[0])
		f2 := int(f2r) % int(base[1])
		card, _ := base.Product()
		t0 := TimeRangeBuffered(base, card, []int{f1, f2})
		// Adding one more buffered bitmap never hurts.
		t1 := TimeRangeBuffered(base, card, []int{f1 + 1, f2})
		t2 := TimeRangeBuffered(base, card, []int{f1, f2 + 1})
		return t1 <= t0+1e-12 && t2 <= t0+1e-12 && t0 <= TimeRange(base, card)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWorstCaseMatchesMeasured verifies Table 1: the analytic worst-case
// totals equal the maximum over all queries of the instrumented counts, for
// null-free indexes whose bases have interior digits (b_i >= 3).
func TestWorstCaseMatchesMeasured(t *testing.T) {
	for _, base := range []core.Base{{5}, {4, 3}, {3, 3, 3}, {5, 4, 3, 3}} {
		n := base.N()
		card, _ := base.Product()
		ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range core.AllOps {
			var maxOptOps, maxOptScans, maxNaiveOps, maxNaiveScans int
			for v := uint64(0); v < card; v++ {
				var so, sn core.Stats
				ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &so})
				ix.EvalRangeNaive(op, v, &core.EvalOptions{Stats: &sn})
				if so.Ops() > maxOptOps {
					maxOptOps = so.Ops()
				}
				if so.Scans > maxOptScans {
					maxOptScans = so.Scans
				}
				if sn.Ops() > maxNaiveOps {
					maxNaiveOps = sn.Ops()
				}
				if sn.Scans > maxNaiveScans {
					maxNaiveScans = sn.Scans
				}
			}
			wo, wn := WorstCaseOpt(op, n), WorstCaseNaive(op, n)
			if maxOptOps != wo.Total() || maxOptScans != wo.Scans {
				t.Errorf("base %v op %s: measured opt (%d ops, %d scans), table (%d, %d)",
					base, op, maxOptOps, maxOptScans, wo.Total(), wo.Scans)
			}
			if maxNaiveOps != wn.Total() || maxNaiveScans != wn.Scans {
				t.Errorf("base %v op %s: measured naive (%d ops, %d scans), table (%d, %d)",
					base, op, maxNaiveOps, maxNaiveScans, wn.Total(), wn.Scans)
			}
		}
	}
}

// TestWorstCaseReductionClaims checks the paper's headline Section 3 claims:
// RangeEval-Opt cuts range-predicate operations by about half (at least 45%
// for n >= 2) and needs exactly one fewer scan; equality predicates cost
// the same.
func TestWorstCaseReductionClaims(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for _, op := range []core.Op{core.Lt, core.Le, core.Gt, core.Ge} {
			opt, naive := WorstCaseOpt(op, n), WorstCaseNaive(op, n)
			if opt.Scans != naive.Scans-1 {
				t.Errorf("n=%d op %s: scans %d vs %d, want exactly one fewer", n, op, opt.Scans, naive.Scans)
			}
			if n >= 2 {
				reduction := 1 - float64(opt.Total())/float64(naive.Total())
				if reduction < 0.45 {
					t.Errorf("n=%d op %s: ops reduction %.2f < 0.45", n, op, reduction)
				}
			}
		}
		for _, op := range []core.Op{core.Eq, core.Ne} {
			opt, naive := WorstCaseOpt(op, n), WorstCaseNaive(op, n)
			if opt != naive {
				t.Errorf("n=%d op %s: equality rows differ: %+v vs %+v", n, op, opt, naive)
			}
		}
	}
}

func TestExactTimeEqualityAgainstEvaluator(t *testing.T) {
	// Average instrumented scans over all queries must equal the exact
	// enumeration for equality encoding.
	for _, base := range []core.Base{{9}, {3, 3}, {2, 2, 3}, {6, 4}} {
		card, _ := base.Product()
		ix, err := core.Build([]uint64{0}, card, base, core.EqualityEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, op := range core.AllOps {
			for v := uint64(0); v < card; v++ {
				var st core.Stats
				ix.EvalEquality(op, v, &core.EvalOptions{Stats: &st})
				total += st.Scans
			}
		}
		measured := float64(total) / float64(6*card)
		exact := ExactTimeEquality(base, card)
		if math.Abs(measured-exact) > 1e-9 {
			t.Errorf("base %v: measured %.6f != exact %.6f", base, measured, exact)
		}
		if ExactTime(base, core.EqualityEncoded, card) != exact {
			t.Error("ExactTime dispatch wrong")
		}
	}
	b := core.Base{3, 3}
	if ExactTime(b, core.RangeEncoded, 9) != ExactTimeRange(b, 9) {
		t.Error("ExactTime dispatch wrong for range")
	}
}

// TestRangeBeatsEqualityOnRangeQueries spot-checks Section 5's conclusion:
// at equal decomposition, range encoding needs fewer expected scans than
// equality encoding once bases are non-trivial.
func TestRangeBeatsEqualityOnRangeQueries(t *testing.T) {
	for _, base := range []core.Base{{100}, {10, 10}, {25, 40}} {
		card, _ := base.Product()
		r := ExactTimeRange(base, card)
		e := ExactTimeEquality(base, card)
		if r >= e {
			t.Errorf("base %v: range time %.3f not better than equality %.3f", base, r, e)
		}
	}
}

// TestTimeEqualityClosedForm: the closed form equals exact enumeration
// whenever C is the base product.
func TestTimeEqualityClosedForm(t *testing.T) {
	for _, base := range []core.Base{{9}, {2}, {3, 3}, {10, 10}, {2, 2, 2}, {4, 5, 3}, {17, 2}, {2, 17}} {
		card, _ := base.Product()
		closed := TimeEquality(base, card)
		exact := ExactTimeEquality(base, card)
		if math.Abs(closed-exact) > 1e-9 {
			t.Errorf("base %v: closed form %.9f != enumeration %.9f", base, closed, exact)
		}
	}
}
