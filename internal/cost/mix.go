package cost

import (
	"bitmapindex/internal/core"
)

// Per-operator-class expectations for range-encoded indexes. TimeRange
// averages over the paper's fixed 4:2 operator mix; an observed workload
// rarely matches it, so the workload-aware design layer needs the two
// class expectations separately and a mix that recombines them at the
// measured range fraction.

// DefaultRangeFraction is the fraction of range-class operators in the
// paper's uniform query mix Q: four of the six operators (<, <=, >, >=)
// are range predicates, two (=, !=) are equality predicates.
const DefaultRangeFraction = 2.0 / 3.0

// TimeRangeEqOps returns the expected scans of an equality-class query
// (=, !=) against a range-encoded index under the digit-equality chain,
// with the constant uniform over 0..C-1 (exact when C equals the base
// product): component i reads one bitmap when the digit is 0 or b_i-1 and
// two otherwise, giving sum_i (2 - 2/b_i).
func TimeRangeEqOps(base core.Base) float64 {
	var t float64
	for _, bi := range base {
		t += 2 - 2/float64(bi)
	}
	return t
}

// TimeRangeRangeOps returns the expected scans of a range-class query
// (<, <=, >, >=) against a range-encoded index under RangeEval-Opt, exact
// when card equals the base product. Averaging the (A <= w) core over the
// 4*card one-sided queries: component 1 costs 1 - 1/b_1, every other
// component 2 - 2/b_i, minus the boundary term (n-1)/(2C) — each of the
// four operators has one zero-cost boundary constant, and the all-max-digit
// constant skips one bitmap per component beyond the first.
func TimeRangeRangeOps(base core.Base, card uint64) float64 {
	n := float64(len(base))
	t := 1 - 1/float64(base[0])
	for _, bi := range base[1:] {
		t += 2 - 2/float64(bi)
	}
	return t - (n-1)/(2*float64(card))
}

// TimeRangeMix returns the expected scans per query for a range-encoded
// index when a fraction rangeFrac of the one-sided evaluations are
// range-class and the rest equality-class. rangeFrac outside [0, 1]
// selects the paper's default mix. The default mix returns TimeRange
// itself — bit-identical, not merely algebraically equal — so designs
// priced under an unobserved (uniform) workload agree exactly with the
// frontier times of the design package.
func TimeRangeMix(base core.Base, card uint64, rangeFrac float64) float64 {
	if !(rangeFrac >= 0 && rangeFrac <= 1) || rangeFrac == DefaultRangeFraction {
		return TimeRange(base, card)
	}
	return rangeFrac*TimeRangeRangeOps(base, card) + (1-rangeFrac)*TimeRangeEqOps(base)
}
