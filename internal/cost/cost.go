// Package cost implements the paper's analytic cost model (Section 4) for
// the space-time tradeoff study.
//
// The space metric is the number of stored bitmaps (Theorem 5.1, eqs. (1)
// and (3)). The time metric is the expected number of bitmap scans to
// evaluate one selection query, with queries uniformly distributed over
//
//	Q = {A op v : op in {<, <=, >, >=, =, !=}, 0 <= v < C}.
//
// For range-encoded indexes evaluated with RangeEval-Opt the expectation
// has a closed form. With base <b_n, ..., b_1> and digits of the query
// constant uniform (exact when C equals the base product):
//
//   - an equality operator (=, !=) reads, in component i, one bitmap when
//     the digit is 0 or b_i-1 and two otherwise: expected 2 - 2/b_i;
//   - a range operator reduces to (A <= w) and reads, in component 1, one
//     bitmap unless w's digit is b_1-1 (expected 1 - 1/b_1), and in every
//     other component up to two bitmaps (expected 2 - 2/b_i).
//
// Averaging over the six operators (4 range : 2 equality) gives eq. (4):
//
//	Time(I) = 2*(n - sum_i 1/b_i) - (2/3)*(1 - 1/b_1).
//
// The buffered variant (Section 10, eq. (5)) scales each component's
// contribution by its buffer miss rate 1 - f_i/(b_i - 1):
//
//	Time(I,f) = 2*sum_{i>=2}(1 - (1+f_i)/b_i) + (4/3)*(1 - (1+f_1)/b_1).
//
// ExactTime* functions compute the same expectations by exhaustive
// enumeration of all 6C queries against a digit-level model of the
// evaluators; the test suite verifies the model against the instrumented
// evaluators and the closed forms against the enumeration.
package cost

import (
	"bitmapindex/internal/core"
)

// SpaceRange returns the number of stored bitmaps of a range-encoded index:
// sum_i (b_i - 1), eq. (3).
func SpaceRange(base core.Base) int {
	s := 0
	for _, bi := range base {
		s += int(bi) - 1
	}
	return s
}

// SpaceEquality returns the number of stored bitmaps of an equality-encoded
// index, eq. (1): b_i bitmaps per component, except base-2 components which
// store a single bitmap (the other is its complement).
func SpaceEquality(base core.Base) int {
	s := 0
	for _, bi := range base {
		if bi == 2 {
			s++
		} else {
			s += int(bi)
		}
	}
	return s
}

// SpaceInterval returns the number of stored bitmaps of an
// interval-encoded index (extension): ceil(b_i/2) per component.
func SpaceInterval(base core.Base) int {
	s := 0
	for _, bi := range base {
		s += int(bi+1) / 2
	}
	return s
}

// Space returns the stored-bitmap count for the given encoding.
func Space(base core.Base, enc core.Encoding) int {
	switch enc {
	case core.RangeEncoded:
		return SpaceRange(base)
	case core.IntervalEncoded:
		return SpaceInterval(base)
	default:
		return SpaceEquality(base)
	}
}

// TimeRangeAsymptotic returns the paper's eq. (4) closed form, the
// expected scans per query for a range-encoded index under RangeEval-Opt
// in the large-C limit. TimeRange adds the exact O(n/C) boundary
// correction; this form is kept because the paper's theorems are stated
// against it and the two orderings agree at fixed n.
func TimeRangeAsymptotic(base core.Base) float64 {
	n := float64(len(base))
	var invSum float64
	for _, bi := range base {
		invSum += 1 / float64(bi)
	}
	return 2*(n-invSum) - (2.0/3.0)*(1-1/float64(base[0]))
}

// TimeRange returns the exact expected scans per query for a range-encoded
// index under RangeEval-Opt when C = card equals the base product (digits
// of the query constant are then exactly uniform). Beyond eq. (4) it keeps
// the boundary term from the two degenerate constants: A < 0 / A >= 0 scan
// nothing, and the all-max-digit constant skips one bitmap per component
// beyond the first, giving
//
//	Time(I) = 2*(n - sum 1/b_i) - (2/3)*(1 - 1/b_1) - (n-1)/(3C).
//
// When card is less than the base product the digit distribution is not
// exactly uniform; use ExactTimeRange for the precise value then.
func TimeRange(base core.Base, card uint64) float64 {
	n := float64(len(base))
	return TimeRangeAsymptotic(base) - (n-1)/(3*float64(card))
}

// TimeRangeBuffered returns the exact expected scans when f[i] bitmaps of
// component i+1 are buffered in memory with uniform per-bitmap hit
// probability f_i/(b_i-1) (the paper's eq. (5) model plus the same
// boundary correction as TimeRange). f may be nil (no buffering); entries
// are clamped to [0, b_i-1].
func TimeRangeBuffered(base core.Base, card uint64, f []int) float64 {
	var t float64
	for i, bi := range base {
		fi := 0
		if i < len(f) {
			fi = f[i]
		}
		if fi < 0 {
			fi = 0
		}
		if fi > int(bi)-1 {
			fi = int(bi) - 1
		}
		miss := 1 - float64(1+fi)/float64(bi)
		if i == 0 {
			t += (4.0 / 3.0) * miss
		} else {
			t += 2 * miss
			// Boundary correction: the all-max-digit constant contributes
			// one scan per component beyond the first, which eq. (4)'s
			// uniform-digit averaging counts but exhaustive enumeration
			// does not (A < 0 and A >= 0 scan nothing).
			t -= (1 - float64(fi)/float64(bi-1)) / (3 * float64(card))
		}
	}
	return t
}

// scansRangeLE returns the scan count of RangeEval-Opt's (A <= w) core for
// the digit vector of w.
func scansRangeLE(base core.Base, digits []uint64) int {
	s := 0
	if digits[0] != base[0]-1 {
		s++
	}
	for i := 1; i < len(base); i++ {
		if digits[i] != base[i]-1 {
			s++
		}
		if digits[i] != 0 {
			s++
		}
	}
	return s
}

// scansRangeEQ returns the scan count of the digit equality chain on a
// range-encoded index.
func scansRangeEQ(base core.Base, digits []uint64) int {
	s := 0
	for i, bi := range base {
		if digits[i] == 0 || digits[i] == bi-1 {
			s++
		} else {
			s += 2
		}
	}
	return s
}

// ScansRange returns the number of bitmap scans RangeEval-Opt performs for
// the single query (A op v) on a range-encoded index with the given base,
// for 0 <= v < card. It is the digit-level model of the evaluator.
func ScansRange(base core.Base, card uint64, op core.Op, v uint64) int {
	if v >= card {
		return 0
	}
	digits := make([]uint64, len(base))
	if !op.IsRange() {
		base.Decompose(v, digits)
		return scansRangeEQ(base, digits)
	}
	w := v
	if op == core.Lt || op == core.Ge {
		if v == 0 {
			return 0
		}
		w = v - 1
	}
	base.Decompose(w, digits)
	return scansRangeLE(base, digits)
}

// ScansRangeBuffered is ScansRange with a buffer-residency predicate:
// fetches of buffered bitmaps are free. It is the exact model for a
// concrete (deterministic) choice of resident slots, whereas
// TimeRangeBuffered averages over a uniformly random choice.
func ScansRangeBuffered(base core.Base, card uint64, op core.Op, v uint64, buffered func(comp, slot int) bool) int {
	if v >= card {
		return 0
	}
	count := func(comp, slot int) int {
		if buffered != nil && buffered(comp, slot) {
			return 0
		}
		return 1
	}
	digits := make([]uint64, len(base))
	s := 0
	if !op.IsRange() {
		base.Decompose(v, digits)
		for i, bi := range base {
			switch digits[i] {
			case 0:
				s += count(i, 0)
			case bi - 1:
				s += count(i, int(bi-2))
			default:
				s += count(i, int(digits[i])) + count(i, int(digits[i]-1))
			}
		}
		return s
	}
	w := v
	if op == core.Lt || op == core.Ge {
		if v == 0 {
			return 0
		}
		w = v - 1
	}
	base.Decompose(w, digits)
	if digits[0] != base[0]-1 {
		s += count(0, int(digits[0]))
	}
	for i := 1; i < len(base); i++ {
		if digits[i] != base[i]-1 {
			s += count(i, int(digits[i]))
		}
		if digits[i] != 0 {
			s += count(i, int(digits[i]-1))
		}
	}
	return s
}

// ExactTimeRangeBuffered returns the expected scans per query for a
// concrete set of resident bitmaps, by enumerating all 6*card queries.
func ExactTimeRangeBuffered(base core.Base, card uint64, buffered func(comp, slot int) bool) float64 {
	total := 0
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			total += ScansRangeBuffered(base, card, op, v, buffered)
		}
	}
	return float64(total) / float64(6*card)
}

// ExactTimeRange returns the expected scans per query for a range-encoded
// index by enumerating all 6*card queries. It equals TimeRange when card
// equals the base product and differs slightly otherwise (digit
// distributions are then not exactly uniform).
func ExactTimeRange(base core.Base, card uint64) float64 {
	total := 0
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			total += ScansRange(base, card, op, v)
		}
	}
	return float64(total) / float64(6*card)
}

// ScansEquality returns the number of bitmap scans the equality-encoded
// evaluator performs for the single query (A op v), 0 <= v < card. It
// mirrors core.(*Index).EvalEquality including its per-query fetch cache
// and the per-component choice between the forward OR and the complemented
// backward OR.
func ScansEquality(base core.Base, card uint64, op core.Op, v uint64) int {
	if v >= card {
		return 0
	}
	switch op {
	case core.Eq, core.Ne:
		return len(base) // one stored bitmap per component
	case core.Le, core.Gt:
		if v >= card-1 {
			return 0
		}
		return scansEqualityLT(base, v+1)
	default: // Lt, Ge
		if v == 0 {
			return 0
		}
		return scansEqualityLT(base, v)
	}
}

// scansEqualityLT models eqLT(w), 1 <= w <= card-1.
func scansEqualityLT(base core.Base, w uint64) int {
	digits := base.Decompose(w, nil)
	s := 0
	for i := len(base) - 1; i >= 0; i-- {
		bi, di := base[i], digits[i]
		backward := false
		if di > 0 {
			if bi == 2 {
				s++ // derived E^0 reads the single stored bitmap
			} else if di <= bi-di {
				s += int(di) // forward OR of E^0..E^{di-1}
			} else {
				s += int(bi - di) // backward OR of E^{di}..E^{b_i-1}
				backward = true
			}
		}
		if i > 0 {
			// Prefix update reads E_i^{di} unless the backward OR already
			// fetched it; for base-2 components the derived bitmap reads
			// the single stored slot, which the lt step already fetched
			// when di > 0.
			switch {
			case backward:
				// cache hit
			case bi == 2 && di > 0:
				// cache hit on the single stored bitmap
			default:
				s++
			}
		}
	}
	return s
}

// ExactTimeEquality returns the expected scans per query for an
// equality-encoded index by enumerating all 6*card queries.
func ExactTimeEquality(base core.Base, card uint64) float64 {
	total := 0
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			total += ScansEquality(base, card, op, v)
		}
	}
	return float64(total) / float64(6*card)
}

// ExactTime dispatches on encoding. Range and equality use their
// digit-level models; interval encoding is measured on an instrumented
// one-row index (scan counts are data independent).
func ExactTime(base core.Base, enc core.Encoding, card uint64) float64 {
	switch enc {
	case core.RangeEncoded:
		return ExactTimeRange(base, card)
	case core.EqualityEncoded:
		return ExactTimeEquality(base, card)
	default:
		return MeasuredTime(base, enc, card)
	}
}

// MeasuredTime computes the expected scans per query for any encoding by
// instrumenting the real evaluator over a one-row index (scan counts do
// not depend on the data). It is the reference the digit-level models are
// tested against, and the primary metric for encodings without a model.
func MeasuredTime(base core.Base, enc core.Encoding, card uint64) float64 {
	ix, err := core.Build([]uint64{0}, card, base, enc, nil)
	if err != nil {
		panic("cost: " + err.Error())
	}
	var st core.Stats
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			ix.Eval(op, v, &core.EvalOptions{Stats: &st})
		}
	}
	return float64(st.Scans) / float64(6*card)
}

// TimeEquality returns the closed-form expected scans per query for an
// equality-encoded index under this package's evaluator, exact when card
// equals the base product. Derivation (THEORY.md-style):
//
// Equality operators read one bitmap per component: n scans.
//
// Range operators reduce to (A < w), w uniform over 1..C-1 with one
// zero-cost boundary constant per operator, costing per component
//
//	component 1:  min(w_1, b_1-w_1)              (0 when w_1 = 0)
//	component i:  1                               (w_i = 0: prefix probe)
//	              w_i + 1                         (forward OR, w_i <= b_i-w_i)
//	              b_i - w_i                       (backward OR; prefix probe
//	                                               hits the fetch cache)
//
// whose uniform-digit expectations use sum_w min(w, b-w) = floor(b^2/4):
//
//	E_1 = floor(b_1^2/4) / b_1
//	E_i = (1 + floor(b_i^2/4) + floor(b_i/2)) / b_i   (b_i >= 3)
//	E_i = 1                                            (b_i = 2, the single
//	                                                    stored bitmap serves
//	                                                    both probes)
//
// so Time = n/3 + (2/3) (sum_i E_i - (n-1)/C), the last term being the
// all-zero-digit boundary constant the per-digit averaging overcounts.
func TimeEquality(base core.Base, card uint64) float64 {
	n := float64(len(base))
	var sum float64
	for i, bi := range base {
		b := float64(bi)
		quarter := float64(bi * bi / 4) // floor(b^2/4)
		switch {
		case i == 0:
			sum += quarter / b
		case bi == 2:
			sum++
		default:
			sum += (1 + quarter + float64(bi/2)) / b
		}
	}
	return n/3 + (2.0/3.0)*(sum-(n-1)/float64(card))
}
