package cost

import (
	"math"
	"testing"

	"bitmapindex/internal/core"
)

func TestSpaceInterval(t *testing.T) {
	cases := []struct {
		base core.Base
		want int
	}{
		{core.Base{9}, 5},
		{core.Base{10}, 5},
		{core.Base{3, 3}, 4},
		{core.Base{2, 2, 2}, 3},
		{core.Base{100}, 50},
	}
	for _, c := range cases {
		if got := SpaceInterval(c.base); got != c.want {
			t.Errorf("SpaceInterval(%v) = %d, want %d", c.base, got, c.want)
		}
		if got := Space(c.base, core.IntervalEncoded); got != c.want {
			t.Errorf("Space(interval) disagrees for %v", c.base)
		}
	}
	// Interval stores no more than range encoding, and about half for
	// large bases.
	for _, base := range []core.Base{{50}, {32, 32}, {10, 10, 10}} {
		if SpaceInterval(base) > SpaceRange(base) {
			t.Errorf("base %v: interval larger than range", base)
		}
	}
}

// TestScansRangeBufferedMatchesEvaluator: the buffered digit model must
// agree with the instrumented evaluator for deterministic slot choices.
func TestScansRangeBufferedMatchesEvaluator(t *testing.T) {
	for _, base := range []core.Base{{9}, {4, 3}, {5, 2, 3}} {
		card, _ := base.Product()
		ix, err := core.Build([]uint64{0}, card, base, core.RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		buffered := func(comp, slot int) bool { return (comp+slot)%2 == 0 }
		for _, op := range core.AllOps {
			for v := uint64(0); v < card+1; v++ {
				var st core.Stats
				ix.EvalRangeOpt(op, v, &core.EvalOptions{Stats: &st, Buffered: buffered})
				if want := ScansRangeBuffered(base, card, op, v, buffered); st.Scans != want {
					t.Fatalf("base %v A %s %d: evaluator %d, model %d", base, op, v, st.Scans, want)
				}
			}
		}
	}
}

func TestScansRangeBufferedNilPredicate(t *testing.T) {
	base := core.Base{4, 3}
	card, _ := base.Product()
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			if ScansRangeBuffered(base, card, op, v, nil) != ScansRange(base, card, op, v) {
				t.Fatalf("nil buffered predicate must equal unbuffered model")
			}
		}
	}
}

func TestExactTimeRangeBuffered(t *testing.T) {
	base := core.Base{5, 4}
	card, _ := base.Product()
	unbuf := ExactTimeRangeBuffered(base, card, nil)
	if math.Abs(unbuf-ExactTimeRange(base, card)) > 1e-12 {
		t.Fatalf("unbuffered mismatch: %f vs %f", unbuf, ExactTimeRange(base, card))
	}
	all := ExactTimeRangeBuffered(base, card, func(comp, slot int) bool { return true })
	if all != 0 {
		t.Fatalf("everything buffered should cost 0, got %f", all)
	}
	some := ExactTimeRangeBuffered(base, card, func(comp, slot int) bool { return slot == 0 })
	if some <= 0 || some >= unbuf {
		t.Fatalf("partial buffering %f not between 0 and %f", some, unbuf)
	}
}

// TestMeasuredTimeAgreesWithModels: the instrumented reference must equal
// the digit-level models for the two modelled encodings, and be positive
// and sane for interval encoding.
func TestMeasuredTimeAgreesWithModels(t *testing.T) {
	for _, base := range []core.Base{{9}, {3, 3}, {6, 4}} {
		card, _ := base.Product()
		if m, e := MeasuredTime(base, core.RangeEncoded, card), ExactTimeRange(base, card); math.Abs(m-e) > 1e-9 {
			t.Errorf("base %v range: measured %f != model %f", base, m, e)
		}
		if m, e := MeasuredTime(base, core.EqualityEncoded, card), ExactTimeEquality(base, card); math.Abs(m-e) > 1e-9 {
			t.Errorf("base %v equality: measured %f != model %f", base, m, e)
		}
		iv := MeasuredTime(base, core.IntervalEncoded, card)
		if iv <= 0 || iv > 4*float64(base.N()) {
			t.Errorf("base %v interval: measured %f out of range", base, iv)
		}
		if ExactTime(base, core.IntervalEncoded, card) != iv {
			t.Errorf("ExactTime(interval) must dispatch to MeasuredTime")
		}
	}
}

// TestIntervalTimeBetweenEncodings: single-component interval encoding
// costs more scans than range encoding but roughly half the space; its
// time stays within 2x of range encoding.
func TestIntervalTimeBetweenEncodings(t *testing.T) {
	for _, card := range []uint64{25, 100} {
		b := core.SingleComponent(card)
		r := TimeRange(b, card)
		iv := MeasuredTime(b, core.IntervalEncoded, card)
		if iv <= r {
			t.Errorf("C=%d: interval time %f should exceed range time %f", card, iv, r)
		}
		if iv > 2*r+0.5 {
			t.Errorf("C=%d: interval time %f more than ~2x range time %f", card, iv, r)
		}
	}
}
