package cost

import (
	"fmt"
	"sync"

	"bitmapindex/internal/core"
)

// ScansFor predicts the number of stored-bitmap scans the serial evaluator
// performs for the single predicate (A op v) on an index with the given
// base, encoding and cardinality. For range and equality encodings it uses
// the paper's digit-level models (which the test suite proves exact
// against the instrumented evaluators); for any other encoding it measures
// the evaluator itself on a cached one-row index — exact too, because scan
// counts depend only on the predicate shape, never on the data.
//
// This is the per-query prediction behind engine.ExplainAnalyze; the
// workload-average counterparts are TimeRange / TimeEquality / ExactTime.
func ScansFor(base core.Base, enc core.Encoding, card uint64, op core.Op, v uint64) int {
	if v >= card {
		// Out-of-domain constants short-circuit in the evaluator (the
		// answer is all non-null rows or none) without reading any value
		// bitmap.
		return 0
	}
	switch enc {
	case core.RangeEncoded:
		return ScansRange(base, card, op, v)
	case core.EqualityEncoded:
		return ScansEquality(base, card, op, v)
	default:
		return scansMeasured(base, enc, card, op, v)
	}
}

// probeCache holds the one-row probe indexes scansMeasured instruments,
// keyed by base/encoding/cardinality. Probe indexes are tiny (one row),
// and an ExplainAnalyze workload reuses a handful of shapes, so the cache
// is unbounded.
var probeCache struct {
	sync.Mutex
	m map[string]*core.Index
}

func scansMeasured(base core.Base, enc core.Encoding, card uint64, op core.Op, v uint64) int {
	key := fmt.Sprintf("%s/%s/%d", base.String(), enc.String(), card)
	probeCache.Lock()
	ix, ok := probeCache.m[key]
	if !ok {
		var err error
		ix, err = core.Build([]uint64{0}, card, base, enc, nil)
		if err != nil {
			probeCache.Unlock()
			panic("cost: " + err.Error())
		}
		if probeCache.m == nil {
			probeCache.m = make(map[string]*core.Index)
		}
		probeCache.m[key] = ix
	}
	probeCache.Unlock()

	// The probe evaluation must not pollute the process-wide telemetry or
	// flight recorder; use the encoding-specific evaluator directly (Eval
	// is the instrumented wrapper).
	var st core.Stats
	o := core.EvalOptions{Stats: &st}
	switch enc {
	case core.IntervalEncoded:
		ix.EvalInterval(op, v, &o)
	case core.RangeEncoded:
		ix.EvalRangeOpt(op, v, &o)
	default:
		ix.EvalEquality(op, v, &o)
	}
	return st.Scans
}
