package cost

import (
	"math"
	"testing"

	"bitmapindex/internal/core"
)

// enumerateClass computes the per-class expected scans by exhaustive
// enumeration of the evaluator model: range class over the 4*card
// one-sided queries, equality class over the 2*card point queries.
func enumerateClass(base core.Base, card uint64, rangeClass bool) float64 {
	ops := []core.Op{core.Eq, core.Ne}
	if rangeClass {
		ops = []core.Op{core.Lt, core.Le, core.Gt, core.Ge}
	}
	total := 0
	for _, op := range ops {
		for v := uint64(0); v < card; v++ {
			total += ScansRange(base, card, op, v)
		}
	}
	return float64(total) / float64(len(ops)) / float64(card)
}

// exactProductBases lists bases whose product equals their cardinality,
// where the closed forms are exact.
var exactProductBases = []struct {
	base core.Base
	card uint64
}{
	{core.Base{10}, 10},
	{core.Base{10, 10}, 100},
	{core.Base{25, 4}, 100},
	{core.Base{5, 4, 5}, 100},
	{core.Base{2, 2, 2, 2}, 16},
	{core.Base{13, 2, 3}, 78},
}

func TestClassClosedFormsMatchEnumeration(t *testing.T) {
	for _, tc := range exactProductBases {
		if got, want := TimeRangeEqOps(tc.base), enumerateClass(tc.base, tc.card, false); math.Abs(got-want) > 1e-9 {
			t.Errorf("TimeRangeEqOps(%v) = %v, enumeration gives %v", tc.base, got, want)
		}
		if got, want := TimeRangeRangeOps(tc.base, tc.card), enumerateClass(tc.base, tc.card, true); math.Abs(got-want) > 1e-9 {
			t.Errorf("TimeRangeRangeOps(%v, %d) = %v, enumeration gives %v", tc.base, tc.card, got, want)
		}
	}
}

// TestDefaultMixIsTimeRange pins the bit-identity contract: at the default
// 2/3 range fraction the mix is TimeRange itself, which the weighted
// allocator's uniform-equals-unweighted property test relies on.
func TestDefaultMixIsTimeRange(t *testing.T) {
	for _, tc := range exactProductBases {
		got := TimeRangeMix(tc.base, tc.card, DefaultRangeFraction)
		if want := TimeRange(tc.base, tc.card); got != want {
			t.Errorf("TimeRangeMix(%v, %d, 2/3) = %v, want TimeRange = %v (must be bit-identical)",
				tc.base, tc.card, got, want)
		}
		// Out-of-range fractions select the default mix too.
		if got := TimeRangeMix(tc.base, tc.card, -1); got != TimeRange(tc.base, tc.card) {
			t.Errorf("TimeRangeMix(%v, %d, -1) did not fall back to TimeRange", tc.base, tc.card)
		}
	}
}

// TestMixInterpolates verifies the mix against per-class enumeration at
// skewed fractions, and that recombining at 2/3 reproduces the overall
// six-operator expectation.
func TestMixInterpolates(t *testing.T) {
	for _, tc := range exactProductBases {
		for _, p := range []float64{0, 0.25, 0.8, 1} {
			got := TimeRangeMix(tc.base, tc.card, p)
			want := p*enumerateClass(tc.base, tc.card, true) + (1-p)*enumerateClass(tc.base, tc.card, false)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("TimeRangeMix(%v, %d, %v) = %v, enumeration gives %v", tc.base, tc.card, p, got, want)
			}
		}
		// The algebraic identity behind the default-mix shortcut.
		recombined := DefaultRangeFraction*TimeRangeRangeOps(tc.base, tc.card) +
			(1-DefaultRangeFraction)*TimeRangeEqOps(tc.base)
		if want := ExactTimeRange(tc.base, tc.card); math.Abs(recombined-want) > 1e-9 {
			t.Errorf("recombined 2/3 mix for %v = %v, ExactTimeRange = %v", tc.base, recombined, want)
		}
	}
}
