package cost

import "bitmapindex/internal/core"

// OpCounts tallies bitmap operations by kind plus bitmap scans; it is the
// row type of the paper's Table 1 (worst-case analysis of the evaluation
// algorithms). Counts follow this implementation's convention: the final
// AND with B_nn is performed (and counted) only when the index contains
// null values; worst-case rows below assume a null-free index.
type OpCounts struct {
	Ands, Ors, Xors, Nots int
	Scans                 int
}

// Total returns the total number of bitmap operations.
func (c OpCounts) Total() int { return c.Ands + c.Ors + c.Xors + c.Nots }

// WorstCaseOpt returns the worst-case operation and scan counts of
// Algorithm RangeEval-Opt for an n-component range-encoded index. The worst
// case occurs when every digit of the (adjusted) predicate constant is
// interior, i.e. 0 < v_i < b_i - 1, which is also the most probable case.
func WorstCaseOpt(op core.Op, n int) OpCounts {
	switch op {
	case core.Lt, core.Le:
		return OpCounts{Ands: n - 1, Ors: n - 1, Scans: 2*n - 1}
	case core.Gt, core.Ge:
		return OpCounts{Ands: n - 1, Ors: n - 1, Nots: 1, Scans: 2*n - 1}
	case core.Eq:
		return OpCounts{Ands: n, Xors: n, Scans: 2 * n}
	default: // Ne
		return OpCounts{Ands: n, Xors: n, Nots: 1, Scans: 2 * n}
	}
}

// WorstCaseNaive returns the worst-case operation and scan counts of
// Algorithm RangeEval (the O'Neil-Quass strategy) for an n-component
// range-encoded index.
func WorstCaseNaive(op core.Op, n int) OpCounts {
	switch op {
	case core.Lt:
		return OpCounts{Ands: 2 * n, Ors: n, Xors: n, Scans: 2 * n}
	case core.Le:
		return OpCounts{Ands: 2 * n, Ors: n + 1, Xors: n, Scans: 2 * n}
	case core.Gt:
		return OpCounts{Ands: 2 * n, Ors: n, Xors: n, Nots: n, Scans: 2 * n}
	case core.Ge:
		return OpCounts{Ands: 2 * n, Ors: n + 1, Xors: n, Nots: n, Scans: 2 * n}
	case core.Eq:
		return OpCounts{Ands: n, Xors: n, Scans: 2 * n}
	default: // Ne
		return OpCounts{Ands: n, Xors: n, Nots: 1, Scans: 2 * n}
	}
}
