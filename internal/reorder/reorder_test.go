package reorder

import (
	"math/rand"
	"sort"
	"testing"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/wah"
)

func TestParseOrderRoundTrip(t *testing.T) {
	for _, o := range []Order{None, Lex, Gray} {
		got, err := ParseOrder(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseOrder(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseOrder("shuffled"); err == nil {
		t.Fatal("ParseOrder accepted unknown order")
	}
}

func randCols(t *testing.T, rows, ncols int, card uint64, seed int64) [][]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]uint64, ncols)
	for i := range cols {
		cols[i] = make([]uint64, rows)
		for r := range cols[i] {
			cols[i][r] = uint64(rng.Intn(int(card)))
		}
	}
	return cols
}

func TestPermutationIsValid(t *testing.T) {
	cols := randCols(t, 500, 3, 7, 1)
	for _, o := range []Order{None, Lex, Gray} {
		perm := Permutation(o, cols)
		if err := Validate(perm, 500); err != nil {
			t.Fatalf("%v: %v", o, err)
		}
	}
	if got := Permutation(Lex, nil); len(got) != 0 {
		t.Fatalf("Permutation over no columns = %v", got)
	}
}

func TestLexOrderSorts(t *testing.T) {
	cols := randCols(t, 1000, 2, 5, 2)
	perm := Permutation(Lex, cols)
	for i := 1; i < len(perm); i++ {
		if lexLess(cols, perm[i], perm[i-1]) {
			t.Fatalf("rows %d,%d out of lexicographic order", i-1, i)
		}
	}
	// Stability: equal tuples keep original relative order.
	for i := 1; i < len(perm); i++ {
		if !lexLess(cols, perm[i-1], perm[i]) && !lexLess(cols, perm[i], perm[i-1]) && perm[i-1] > perm[i] {
			t.Fatalf("stable sort violated at %d", i)
		}
	}
}

// TestGrayOrderMatchesRankSort checks grayLess against an independent
// formulation: converting each tuple to its reflected-Gray rank (the
// digit sequence after un-Graying) and sorting by that rank.
func TestGrayOrderMatchesRankSort(t *testing.T) {
	card := uint64(4)
	cols := randCols(t, 300, 3, card, 3)
	perm := Permutation(Gray, cols)
	// grayRank decodes the mixed-radix reflected Gray code: digit d_i is
	// read in reverse (card-1-d_i) whenever the parity of the preceding
	// digits is odd.
	grayRank := func(r int) uint64 {
		rank := uint64(0)
		inverted := false
		for _, c := range cols {
			d := c[r]
			if inverted {
				d = card - 1 - d
			}
			rank = rank*card + d
			// Parity flips on the ORIGINAL digit value.
			if c[r]%2 == 1 {
				inverted = !inverted
			}
		}
		return rank
	}
	want := make([]int, len(perm))
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(i, j int) bool { return grayRank(want[i]) < grayRank(want[j]) })
	for i := range perm {
		if perm[i] != want[i] {
			t.Fatalf("gray order diverges from rank sort at position %d: %d vs %d", i, perm[i], want[i])
		}
	}
}

func TestApplyAndMapBackInverse(t *testing.T) {
	cols := randCols(t, 400, 2, 6, 4)
	perm := Permutation(Gray, cols)
	sorted := Apply(perm, cols[0])
	// A bitmap of "column 0 == 3" in sorted space maps back to the rows
	// where the original column is 3.
	v := bitvec.New(len(sorted))
	for i, x := range sorted {
		if x == 3 {
			v.Set(i)
		}
	}
	back := MapBack(perm, v)
	for r, x := range cols[0] {
		if back.Get(r) != (x == 3) {
			t.Fatalf("row %d: mapped-back bit %v, value %d", r, back.Get(r), x)
		}
	}
	if back.Count() != v.Count() {
		t.Fatal("MapBack changed the count")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := Validate([]int{0, 1, 1}, 3); err == nil {
		t.Fatal("accepted repeated entry")
	}
	if err := Validate([]int{0, 1, 3}, 3); err == nil {
		t.Fatal("accepted out-of-range entry")
	}
	if err := Validate([]int{0, 1}, 3); err == nil {
		t.Fatal("accepted short permutation")
	}
}

// TestSortingImprovesWAHCompression pins the point of the pass (the
// paper's headline claim): on random data, sorting strictly shrinks the
// WAH-compressed size of the equality bitmaps of the leading column.
func TestSortingImprovesWAHCompression(t *testing.T) {
	col := data.Uniform(1<<15, 16, 9)
	cols := [][]uint64{col.Values}
	for _, o := range []Order{Lex, Gray} {
		perm := Permutation(o, cols)
		sortedSize, origSize := 0, 0
		for v := uint64(0); v < 16; v++ {
			mk := func(vals []uint64) int {
				bm := bitvec.New(len(vals))
				for i, x := range vals {
					if x == v {
						bm.Set(i)
					}
				}
				return wah.Compress(bm).SizeBytes()
			}
			origSize += mk(col.Values)
			sortedSize += mk(Apply(perm, col.Values))
		}
		if sortedSize >= origSize {
			t.Fatalf("%v: sorted WAH size %d >= unsorted %d", o, sortedSize, origSize)
		}
	}
}

// TestReorderedIndexAnswersMatch builds an index over reordered ranks and
// checks that mapped-back results equal the unreordered index's results.
func TestReorderedIndexAnswersMatch(t *testing.T) {
	col := data.Uniform(2000, 12, 11)
	cols := [][]uint64{col.Values}
	base := core.Base{4, 3}
	plain, err := core.Build(col.Values, col.Card, base, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Order{Lex, Gray} {
		perm := Permutation(o, cols)
		sorted, err := core.Build(Apply(perm, col.Values), col.Card, base, core.RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range core.AllOps {
			for v := uint64(0); v < col.Card; v += 5 {
				want := plain.Eval(op, v, nil)
				got := MapBack(perm, sorted.Eval(op, v, nil))
				if !got.Equal(want) {
					t.Fatalf("%v: A %s %d differs after map-back", o, op, v)
				}
			}
		}
	}
}
