// Package reorder implements build-time row reordering for bitmap
// indexes, after Lemire, Kaser & Aouiche, "Sorting improves word-aligned
// bitmap indexes" (arXiv:0901.3751): sorting the rows of a table by
// their attribute-rank tuples before bitmap construction lengthens the
// runs of identical bits in every column's bitmaps, multiplying the
// effectiveness of run-length codecs (WAH fills, roaring run
// containers).
//
// Two sort orders are provided. Lexicographic order sorts tuples
// digit-by-digit; it maximizes run length in the leading attribute.
// Reflected Gray-code order alternates the sort direction of each digit
// with the parity of the digits before it, so consecutive tuples differ
// in as few digits as possible — spreading the benefit across trailing
// attributes.
//
// The sort produces a permutation, not a new table: Permutation returns
// perm with perm[newPos] = originalRow, Apply reorders any column by it,
// and MapBack translates a result bitmap over reordered rows back to
// original row ids. The catalog persists the permutation next to the
// indexes so queries keep answering in the table's original row space.
package reorder

import (
	"fmt"
	"sort"

	"bitmapindex/internal/bitvec"
)

// Order selects the row sort applied before bitmap construction.
type Order uint8

const (
	// None leaves rows in their original order.
	None Order = iota
	// Lex sorts rows lexicographically by their attribute-rank tuple.
	Lex
	// Gray sorts rows in reflected (mixed-radix) Gray-code order of
	// their attribute-rank tuple.
	Gray
)

// String returns the order name used in descriptors and flags.
func (o Order) String() string {
	switch o {
	case None:
		return "none"
	case Lex:
		return "lex"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// ParseOrder parses "none", "lex" or "gray".
func ParseOrder(s string) (Order, error) {
	switch s {
	case "none", "":
		return None, nil
	case "lex":
		return Lex, nil
	case "gray":
		return Gray, nil
	}
	return 0, fmt.Errorf("reorder: unknown order %q", s)
}

// Permutation computes the row permutation of the given sort order over
// the attribute columns: perm[newPos] = originalRow. All columns must
// have equal length; the sort is stable, so rows with identical tuples
// keep their original relative order. Order None returns the identity.
func Permutation(order Order, cols [][]uint64) []int {
	rows := 0
	if len(cols) > 0 {
		rows = len(cols[0])
	}
	for _, c := range cols {
		if len(c) != rows {
			panic(fmt.Sprintf("reorder: column lengths differ (%d vs %d)", len(c), rows))
		}
	}
	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}
	switch order {
	case None:
		return perm
	case Lex:
		sort.SliceStable(perm, func(i, j int) bool {
			return lexLess(cols, perm[i], perm[j])
		})
	case Gray:
		sort.SliceStable(perm, func(i, j int) bool {
			return grayLess(cols, perm[i], perm[j])
		})
	default:
		panic(fmt.Sprintf("reorder: unknown order %d", order))
	}
	return perm
}

// lexLess compares rows a and b digit-by-digit in column order.
func lexLess(cols [][]uint64, a, b int) bool {
	for _, c := range cols {
		if c[a] != c[b] {
			return c[a] < c[b]
		}
	}
	return false
}

// grayLess compares rows a and b in reflected mixed-radix Gray-code
// order: walking digits most-significant first, every odd digit passed
// flips the direction of all later comparisons, so consecutive tuples in
// the resulting order differ in few digits (arXiv:0901.3751 §3).
func grayLess(cols [][]uint64, a, b int) bool {
	inverted := false
	for _, c := range cols {
		if c[a] != c[b] {
			return (c[a] < c[b]) != inverted
		}
		if c[a]%2 == 1 {
			inverted = !inverted
		}
	}
	return false
}

// Apply reorders one column by the permutation: out[i] = col[perm[i]].
func Apply(perm []int, col []uint64) []uint64 {
	if len(col) != len(perm) {
		panic(fmt.Sprintf("reorder: column has %d rows, permutation %d", len(col), len(perm)))
	}
	out := make([]uint64, len(col))
	for i, p := range perm {
		out[i] = col[p]
	}
	return out
}

// ApplyBools reorders a bool column (e.g. a null mask) by the
// permutation.
func ApplyBools(perm []int, col []bool) []bool {
	if len(col) != len(perm) {
		panic(fmt.Sprintf("reorder: column has %d rows, permutation %d", len(col), len(perm)))
	}
	out := make([]bool, len(col))
	for i, p := range perm {
		out[i] = col[p]
	}
	return out
}

// MapBack translates a result bitmap over reordered rows back to
// original row ids: bit i of v (a reordered position) becomes bit
// perm[i] of the result. Counts are invariant under the mapping.
func MapBack(perm []int, v *bitvec.Vector) *bitvec.Vector {
	if v.Len() != len(perm) {
		panic(fmt.Sprintf("reorder: bitmap has %d rows, permutation %d", v.Len(), len(perm)))
	}
	out := bitvec.New(v.Len())
	v.Ones(func(i int) bool {
		out.Set(perm[i])
		return true
	})
	return out
}

// Validate checks that perm is a permutation of [0, rows).
func Validate(perm []int, rows int) error {
	if len(perm) != rows {
		return fmt.Errorf("reorder: permutation has %d entries, want %d", len(perm), rows)
	}
	seen := make([]bool, rows)
	for _, p := range perm {
		if p < 0 || p >= rows {
			return fmt.Errorf("reorder: permutation entry %d out of range [0,%d)", p, rows)
		}
		if seen[p] {
			return fmt.Errorf("reorder: permutation repeats row %d", p)
		}
		seen[p] = true
	}
	return nil
}
