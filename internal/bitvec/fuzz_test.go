package bitvec

import (
	"bytes"
	"testing"
)

// FuzzPayloadRoundTrip ensures arbitrary byte strings never panic the
// vector decoder, that every accepted payload satisfies the tail-mask
// invariant, and that re-serialization is canonical and stable.
func FuzzPayloadRoundTrip(f *testing.F) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		v := New(n)
		for i := 0; i < n; i += 3 {
			v.Set(i)
		}
		p, _ := v.MarshalBinary()
		f.Add(p)
		// Oversized payloads (trailing garbage past ceil(n/8)) must be
		// rejected, not silently truncated; seed that shape explicitly.
		f.Add(append(p, 0xAA))
		f.Add(append(p, 0x00))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var v Vector
		if err := v.UnmarshalBinary(data); err != nil {
			return // malformed input rejected: fine
		}
		// Tail-mask invariant: no bits beyond the logical length. Stray
		// payload bits past n must have been masked off on decode.
		if last := v.Len() % 64; last != 0 && len(v.Words()) > 0 {
			tail := v.Words()[len(v.Words())-1]
			if tail&^((uint64(1)<<uint(last))-1) != 0 {
				t.Fatalf("tail bits set beyond length %d: %#x", v.Len(), tail)
			}
		}
		if c := v.Count(); c > v.Len() {
			t.Fatalf("count %d exceeds length %d", c, v.Len())
		}
		// The second marshal is canonical; it must round-trip exactly.
		p1, _ := v.MarshalBinary()
		var w Vector
		if err := w.UnmarshalBinary(p1); err != nil {
			t.Fatalf("canonical payload rejected: %v", err)
		}
		p2, _ := w.MarshalBinary()
		if !bytes.Equal(p1, p2) || !w.Equal(&v) {
			t.Fatal("round trip drift")
		}
	})
}
