// Package bitvec provides the dense bit-vector kernel that every bitmap in
// the index is built on. A Vector is a fixed-length sequence of bits packed
// into 64-bit words, supporting the four logical operations the paper's
// evaluation algorithms need (AND, OR, XOR, NOT) plus AND-NOT, population
// count, and serialization for the on-disk storage schemes.
//
// Invariant: the unused high bits of the last word are always zero. Every
// mutating operation preserves this, so Count and Equal never have to mask.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"bitmapindex/internal/invariant"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is an empty (length 0)
// vector; use New to create one with a given length.
type Vector struct {
	n     int // number of valid bits
	words []uint64
}

// New returns an all-zeros vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, wordsFor(n))}
}

// NewOnes returns an all-ones vector of n bits.
func NewOnes(n int) *Vector {
	v := New(n)
	v.SetAll()
	return v
}

// FromBools builds a vector whose i-th bit is set iff bs[i] is true.
func FromBools(bs []bool) *Vector {
	v := New(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i)
		}
	}
	return v
}

// FromIndices builds an n-bit vector with the given bit positions set.
// It panics if any index is out of range.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// tailMask returns the mask of valid bits in the last word, or ^0 when the
// length is a multiple of 64 (or zero).
func (v *Vector) tailMask() uint64 {
	if r := v.n % wordBits; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

func (v *Vector) maskTail() {
	if len(v.words) > 0 {
		v.words[len(v.words)-1] &= v.tailMask()
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words for read-only word-at-a-time access
// (used by the storage layer). Callers must not mutate the slice.
func (v *Vector) Words() []uint64 { return v.words }

// Get reports whether bit i is set. It panics if i is out of range.
//
//bix:hotpath
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(uint64(1)<<uint(i%wordBits)) != 0
}

// Set sets bit i to 1. It panics if i is out of range.
//
//bix:hotpath
//bix:maskok (check bounds i < n, so the set bit is always a valid bit)
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= uint64(1) << uint(i%wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
//
//bix:hotpath
//bix:maskok (clearing bits cannot set tail bits)
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= uint64(1) << uint(i%wordBits)
}

// SetBool sets bit i to b.
func (v *Vector) SetBool(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// SetAll sets every bit to 1.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
	invariant.TailZero(v.words, v.n)
}

// ClearAll sets every bit to 0.
//
//bix:maskok (all-zero words trivially satisfy the tail invariant)
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy of v.
//
//bix:maskok (copies from a vector that already holds the invariant)
func (v *Vector) Clone() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// CopyFrom overwrites v with the contents of u. The lengths must match.
//
//bix:maskok (copies from a same-length vector that already holds the invariant)
func (v *Vector) CopyFrom(u *Vector) {
	v.mustMatch(u)
	copy(v.words, u.words)
}

func (v *Vector) mustMatch(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
}

// And sets v = v AND u. The lengths must match.
//
//bix:hotpath
//bix:maskok (AND can only clear bits; the tail stays zero)
func (v *Vector) And(u *Vector) {
	v.mustMatch(u)
	for i, w := range u.words {
		v.words[i] &= w
	}
}

// Or sets v = v OR u. The lengths must match.
//
//bix:hotpath
//bix:maskok (u holds the invariant, so its tail contributes no bits)
func (v *Vector) Or(u *Vector) {
	v.mustMatch(u)
	for i, w := range u.words {
		v.words[i] |= w
	}
	invariant.TailZero(v.words, v.n)
}

// Xor sets v = v XOR u. The lengths must match.
//
//bix:hotpath
//bix:maskok (u holds the invariant, so its tail contributes no bits)
func (v *Vector) Xor(u *Vector) {
	v.mustMatch(u)
	for i, w := range u.words {
		v.words[i] ^= w
	}
	invariant.TailZero(v.words, v.n)
}

// AndNot sets v = v AND (NOT u). The lengths must match.
//
//bix:hotpath
//bix:maskok (AND-NOT can only clear bits; the tail stays zero)
func (v *Vector) AndNot(u *Vector) {
	v.mustMatch(u)
	for i, w := range u.words {
		v.words[i] &^= w
	}
}

// Not complements every bit of v in place.
//
//bix:hotpath
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.maskTail()
	invariant.TailZero(v.words, v.n)
}

// Count returns the number of set bits.
//
//bix:hotpath
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
//
//bix:hotpath
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (v *Vector) None() bool { return !v.Any() }

// All reports whether every bit is set.
func (v *Vector) All() bool {
	if v.n == 0 {
		return true
	}
	last := len(v.words) - 1
	for i := 0; i < last; i++ {
		if v.words[i] != ^uint64(0) {
			return false
		}
	}
	return v.words[last] == v.tailMask()
}

// Equal reports whether v and u have identical length and contents.
//
//bix:hotpath
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.words {
		if w != u.words[i] {
			return false
		}
	}
	return true
}

// Ones calls fn for each set bit position in ascending order. It stops early
// if fn returns false.
//
//bix:hotpath
func (v *Vector) Ones(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// OnesSlice returns the positions of all set bits in ascending order.
func (v *Vector) OnesSlice() []int {
	out := make([]int, 0, v.Count())
	v.Ones(func(i int) bool { out = append(out, i); return true })
	return out
}

// NextOne returns the position of the first set bit at or after i, or -1 if
// there is none.
//
//bix:hotpath
func (v *Vector) NextOne(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// String renders the vector as a bit string, bit 0 first, e.g. "10110".
// Intended for tests and small examples.
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// SizeBytes returns the serialized payload size in bytes (excluding the
// length header), i.e. ceil(n/8).
func (v *Vector) SizeBytes() int { return (v.n + 7) / 8 }

// MarshalBinary serializes the vector as an 8-byte little-endian length
// followed by ceil(n/8) payload bytes.
func (v *Vector) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+v.SizeBytes())
	binary.LittleEndian.PutUint64(out, uint64(v.n))
	copy(out[8:], v.PayloadBytes())
	return out, nil
}

// PayloadBytes returns just the bit payload, ceil(n/8) bytes, little-endian
// within each word (bit i of the vector is bit i%8 of byte i/8).
func (v *Vector) PayloadBytes() []byte {
	nb := v.SizeBytes()
	out := make([]byte, nb)
	for i := 0; i < nb; i++ {
		out[i] = byte(v.words[i/8] >> uint(8*(i%8)))
	}
	return out
}

// UnmarshalBinary restores a vector serialized by MarshalBinary.
func (v *Vector) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitvec: truncated header (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if n > uint64(int(^uint(0)>>1)) {
		return fmt.Errorf("bitvec: length %d overflows int", n)
	}
	if err := v.SetPayload(int(n), data[8:]); err != nil {
		return err
	}
	return nil
}

// SetPayload overwrites v with an n-bit vector decoded from the given
// payload bytes (the PayloadBytes format). The payload must be exactly
// ceil(n/8) bytes: trailing garbage would make the "canonical round trip"
// property ambiguous, so oversized payloads are rejected rather than
// silently truncated. (Stray bits past n within the final byte are still
// masked off, as PayloadBytes itself produces them for lengths that are
// not a multiple of 8.)
func (v *Vector) SetPayload(n int, payload []byte) error {
	nb := (n + 7) / 8
	if len(payload) != nb {
		return fmt.Errorf("bitvec: payload size mismatch: have %d bytes, need exactly %d", len(payload), nb)
	}
	v.n = n
	v.words = make([]uint64, wordsFor(n))
	for i := 0; i < nb; i++ {
		v.words[i/8] |= uint64(payload[i]) << uint(8*(i%8))
	}
	v.maskTail()
	invariant.TailZero(v.words, v.n)
	return nil
}

// AndCount returns the number of bits set in (a AND b) without
// materializing the intersection. The lengths must match.
//
//bix:hotpath
func AndCount(a, b *Vector) int {
	a.mustMatch(b)
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// AndNotCount returns the number of bits set in (a AND NOT b).
//
//bix:hotpath
func AndNotCount(a, b *Vector) int {
	a.mustMatch(b)
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w &^ b.words[i])
	}
	return c
}

// OrCount returns the number of bits set in (a OR b).
//
//bix:hotpath
func OrCount(a, b *Vector) int {
	a.mustMatch(b)
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w | b.words[i])
	}
	return c
}
