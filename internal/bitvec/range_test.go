package bitvec

import (
	"math/rand"
	"testing"
)

// restricted applies the full-vector operation and then splices the window
// back into a copy of the original, producing the reference result for a
// range kernel: outside [lo,hi) the vector must be untouched.
func restricted(orig, full *Vector, lo, hi int) *Vector {
	want := orig.Clone()
	copy(want.words[lo:hi], full.words[lo:hi])
	return want
}

func TestRangeKernelsMatchFullOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000, 4096} {
		v0 := randomVec(r, n)
		u := randomVec(r, n)
		nw := v0.NumWords()
		windows := [][2]int{{0, nw}, {0, nw / 2}, {nw / 2, nw}, {nw / 3, 2 * nw / 3}, {0, 0}, {nw, nw}}
		for _, w := range windows {
			lo, hi := w[0], w[1]
			type kernel struct {
				name string
				rng  func(v *Vector)
				full func(v *Vector)
			}
			kernels := []kernel{
				{"AndRange", func(v *Vector) { v.AndRange(u, lo, hi) }, func(v *Vector) { v.And(u) }},
				{"OrRange", func(v *Vector) { v.OrRange(u, lo, hi) }, func(v *Vector) { v.Or(u) }},
				{"XorRange", func(v *Vector) { v.XorRange(u, lo, hi) }, func(v *Vector) { v.Xor(u) }},
				{"AndNotRange", func(v *Vector) { v.AndNotRange(u, lo, hi) }, func(v *Vector) { v.AndNot(u) }},
				{"NotRange", func(v *Vector) { v.NotRange(lo, hi) }, func(v *Vector) { v.Not() }},
				{"CopyRange", func(v *Vector) { v.CopyRange(u, lo, hi) }, func(v *Vector) { v.CopyFrom(u) }},
				{"ZeroRange", func(v *Vector) { v.ZeroRange(lo, hi) }, func(v *Vector) { v.ClearAll() }},
				{"OnesRange", func(v *Vector) { v.OnesRange(lo, hi) }, func(v *Vector) { v.SetAll() }},
			}
			for _, k := range kernels {
				got := v0.Clone()
				k.rng(got)
				full := v0.Clone()
				k.full(full)
				want := restricted(v0, full, lo, hi)
				if !got.Equal(want) {
					t.Fatalf("n=%d window=[%d,%d) %s mismatch", n, lo, hi, k.name)
				}
				// Kernels touching the true last word must preserve the tail
				// invariant; verify explicitly (Equal alone would pass if both
				// sides had stray tail bits).
				if last := got.n % 64; last != 0 && len(got.words) > 0 {
					tail := got.words[len(got.words)-1]
					if tail&^((uint64(1)<<uint(last))-1) != 0 {
						t.Fatalf("n=%d window=[%d,%d) %s violates tail invariant: %#x", n, lo, hi, k.name, tail)
					}
				}
			}
			if got, want := v0.CountRange(lo, hi), countWindow(v0, lo, hi); got != want {
				t.Fatalf("n=%d window=[%d,%d) CountRange = %d, want %d", n, lo, hi, got, want)
			}
			if got, want := v0.AnyRange(lo, hi), countWindow(v0, lo, hi) > 0; got != want {
				t.Fatalf("n=%d window=[%d,%d) AnyRange = %v, want %v", n, lo, hi, got, want)
			}
		}
	}
}

func countWindow(v *Vector, lo, hi int) int {
	c := 0
	for i := lo * wordBits; i < hi*wordBits && i < v.n; i++ {
		if v.Get(i) {
			c++
		}
	}
	return c
}

// TestNotRangeInteriorDoesNotMask pins the "true last word only" contract:
// complementing an interior window must not mask anything (the window's last
// word is a full word), while a window ending at the final word must mask.
func TestNotRangeInteriorDoesNotMask(t *testing.T) {
	v := New(130) // 3 words, 2 valid bits in the last
	nw := v.NumWords()
	v.NotRange(0, nw-1)
	for i := 0; i < 128; i++ {
		if !v.Get(i) {
			t.Fatalf("bit %d not set after interior NotRange", i)
		}
	}
	v.NotRange(nw-1, nw)
	if v.Count() != 130 {
		t.Fatalf("Count = %d, want 130 (tail must be masked)", v.Count())
	}
	if w := v.Words()[nw-1]; w != 3 {
		t.Fatalf("last word = %#x, want 0x3", w)
	}
}

func TestRangeKernelPanics(t *testing.T) {
	v, u := New(100), New(100)
	short := New(99)
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative lo", func() { v.AndRange(u, -1, 1) }},
		{"hi past end", func() { v.OrRange(u, 0, v.NumWords()+1) }},
		{"hi < lo", func() { v.NotRange(2, 1) }},
		{"length mismatch", func() { v.XorRange(short, 0, 1) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestSetPayloadRejectsOversized(t *testing.T) {
	var v Vector
	if err := v.SetPayload(9, []byte{0xFF, 0x01, 0xAA}); err == nil {
		t.Fatal("SetPayload accepted a payload with trailing garbage")
	}
	if err := v.SetPayload(0, []byte{0x00}); err == nil {
		t.Fatal("SetPayload accepted a 1-byte payload for an empty vector")
	}
	if err := v.SetPayload(0, nil); err != nil {
		t.Fatalf("SetPayload rejected the empty payload for an empty vector: %v", err)
	}
}
