package bitvec

import (
	"fmt"
	"math/bits"
)

// Range-restricted kernels for segmented evaluation: each operates on the
// word window [lo, hi) of the receiver, leaving all other words untouched.
// Windows are expressed in 64-bit words, not bits, so segment boundaries
// are always word-aligned and the kernels never need partial-word masking —
// except for the tail-mask invariant, which NotRange and OnesRange restore
// when (and only when) the window covers the true last word.
//
// All binary kernels require u to have the same length as v, exactly like
// their full-vector counterparts.

// NumWords returns the number of 64-bit words backing the vector,
// i.e. ceil(Len()/64). Word windows passed to the *Range kernels must lie
// within [0, NumWords()].
func (v *Vector) NumWords() int { return len(v.words) }

// checkWindow validates the word window [lo, hi). Kept out of the hot
// paths so the kernels themselves stay allocation-free.
func (v *Vector) checkWindow(lo, hi int) {
	if lo < 0 || hi < lo || hi > len(v.words) {
		panic(fmt.Sprintf("bitvec: word window [%d,%d) out of range [0,%d]", lo, hi, len(v.words)))
	}
}

// AndRange sets v = v AND u over the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (AND can only clear bits; the tail stays zero)
func (v *Vector) AndRange(u *Vector, lo, hi int) {
	v.mustMatch(u)
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] &= u.words[i]
	}
}

// OrRange sets v = v OR u over the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (u holds the invariant, so its tail contributes no bits)
func (v *Vector) OrRange(u *Vector, lo, hi int) {
	v.mustMatch(u)
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] |= u.words[i]
	}
}

// XorRange sets v = v XOR u over the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (u holds the invariant, so its tail contributes no bits)
func (v *Vector) XorRange(u *Vector, lo, hi int) {
	v.mustMatch(u)
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] ^= u.words[i]
	}
}

// AndNotRange sets v = v AND (NOT u) over the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (AND-NOT can only clear bits; the tail stays zero)
func (v *Vector) AndNotRange(u *Vector, lo, hi int) {
	v.mustMatch(u)
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] &^= u.words[i]
	}
}

// NotRange complements v over the word window [lo, hi), masking the tail
// only when the window includes the true last word.
//
//bix:hotpath
func (v *Vector) NotRange(lo, hi int) {
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] = ^v.words[i]
	}
	if hi == len(v.words) && hi > lo {
		v.words[hi-1] &= v.tailMask()
	}
}

// CopyRange sets v = u over the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (copies from a same-length vector that already holds the invariant)
func (v *Vector) CopyRange(u *Vector, lo, hi int) {
	v.mustMatch(u)
	v.checkWindow(lo, hi)
	copy(v.words[lo:hi], u.words[lo:hi])
}

// ZeroRange clears every bit in the word window [lo, hi).
//
//bix:hotpath
//bix:maskok (all-zero words trivially satisfy the tail invariant)
func (v *Vector) ZeroRange(lo, hi int) {
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] = 0
	}
}

// OnesRange sets every bit in the word window [lo, hi), masking the tail
// only when the window includes the true last word.
//
//bix:hotpath
func (v *Vector) OnesRange(lo, hi int) {
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		v.words[i] = ^uint64(0)
	}
	if hi == len(v.words) && hi > lo {
		v.words[hi-1] &= v.tailMask()
	}
}

// CountRange returns the number of set bits in the word window [lo, hi).
//
//bix:hotpath
func (v *Vector) CountRange(lo, hi int) int {
	v.checkWindow(lo, hi)
	c := 0
	for i := lo; i < hi; i++ {
		c += bits.OnesCount64(v.words[i])
	}
	return c
}

// AnyRange reports whether any bit is set in the word window [lo, hi).
//
//bix:hotpath
func (v *Vector) AnyRange(lo, hi int) bool {
	v.checkWindow(lo, hi)
	for i := lo; i < hi; i++ {
		if v.words[i] != 0 {
			return true
		}
	}
	return false
}
