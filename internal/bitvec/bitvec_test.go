package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroAndOnes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64, 65, 127, 128, 1000} {
		z := New(n)
		if z.Len() != n {
			t.Fatalf("Len = %d, want %d", z.Len(), n)
		}
		if z.Count() != 0 || z.Any() {
			t.Fatalf("n=%d: new vector not empty", n)
		}
		o := NewOnes(n)
		if o.Count() != n {
			t.Fatalf("n=%d: ones Count = %d", n, o.Count())
		}
		if !o.All() {
			t.Fatalf("n=%d: ones All = false", n)
		}
		if n > 0 && o.None() {
			t.Fatalf("n=%d: ones None = true", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", v.Count(), len(idx))
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	v.SetBool(64, true)
	if !v.Get(64) {
		t.Fatal("SetBool(64,true) did not set")
	}
	v.SetBool(64, false)
	if v.Get(64) {
		t.Fatal("SetBool(64,false) did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for name, fn := range map[string]func(){
		"Get(-1)":  func() { v.Get(-1) },
		"Get(10)":  func() { v.Get(10) },
		"Set(10)":  func() { v.Set(10) },
		"Clear(-)": func() { v.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestFromBoolsAndIndices(t *testing.T) {
	bs := []bool{true, false, true, true, false}
	v := FromBools(bs)
	for i, b := range bs {
		if v.Get(i) != b {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), b)
		}
	}
	u := FromIndices(5, []int{0, 2, 3})
	if !v.Equal(u) {
		t.Fatalf("FromBools %v != FromIndices %v", v, u)
	}
}

func TestNotMaskedTail(t *testing.T) {
	// The tail bits beyond Len must stay zero after Not, so Count is exact.
	for _, n := range []int{1, 5, 63, 64, 65, 100} {
		v := New(n)
		v.Not()
		if v.Count() != n {
			t.Fatalf("n=%d: Not of zeros Count = %d", n, v.Count())
		}
		v.Not()
		if v.Count() != 0 {
			t.Fatalf("n=%d: double Not Count = %d", n, v.Count())
		}
	}
}

func randomVec(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestLogicalOpsAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(300)
		a, b := randomVec(r, n), randomVec(r, n)
		type op struct {
			name string
			run  func(x, y *Vector)
			ref  func(p, q bool) bool
		}
		ops := []op{
			{"And", (*Vector).And, func(p, q bool) bool { return p && q }},
			{"Or", (*Vector).Or, func(p, q bool) bool { return p || q }},
			{"Xor", (*Vector).Xor, func(p, q bool) bool { return p != q }},
			{"AndNot", (*Vector).AndNot, func(p, q bool) bool { return p && !q }},
		}
		for _, o := range ops {
			got := a.Clone()
			o.run(got, b)
			for i := 0; i < n; i++ {
				want := o.ref(a.Get(i), b.Get(i))
				if got.Get(i) != want {
					t.Fatalf("%s bit %d: got %v want %v", o.name, i, got.Get(i), want)
				}
			}
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOT(a AND b) == NOT a OR NOT b, for random contents and lengths.
	f := func(aw, bw []byte) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		n %= 200
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if aw[i]&1 == 1 {
				a.Set(i)
			}
			if bw[i]&1 == 1 {
				b.Set(i)
			}
		}
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()
		rhs := a.Clone()
		rhs.Not()
		nb := b.Clone()
		nb.Not()
		rhs.Or(nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(aw, bw []byte) bool {
		n := len(aw)
		if len(bw) < n {
			n = len(bw)
		}
		n %= 200
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if aw[i]&1 == 1 {
				a.Set(i)
			}
			if bw[i]&1 == 1 {
				b.Set(i)
			}
		}
		got := a.Clone()
		got.Xor(b)
		got.Xor(b)
		return got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountInclusionExclusion(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(500)
		a, b := randomVec(r, n), randomVec(r, n)
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		if a.Count()+b.Count() != and.Count()+or.Count() {
			t.Fatalf("inclusion-exclusion violated: |a|=%d |b|=%d |and|=%d |or|=%d",
				a.Count(), b.Count(), and.Count(), or.Count())
		}
	}
}

func TestOnesIteration(t *testing.T) {
	v := FromIndices(200, []int{0, 63, 64, 65, 130, 199})
	got := v.OnesSlice()
	want := []int{0, 63, 64, 65, 130, 199}
	if len(got) != len(want) {
		t.Fatalf("OnesSlice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnesSlice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	v.Ones(func(i int) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early-stop visited %d, want 3", count)
	}
}

func TestNextOne(t *testing.T) {
	v := FromIndices(200, []int{5, 64, 199})
	cases := []struct{ from, want int }{
		{-5, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := v.NextOne(c.from); got != c.want {
			t.Fatalf("NextOne(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(50).NextOne(0) != -1 {
		t.Fatal("NextOne on empty vector should be -1")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3})
	b := a.Clone()
	b.Set(50)
	if a.Get(50) {
		t.Fatal("mutating clone changed original")
	}
	c := New(100)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestStringRendering(t *testing.T) {
	v := FromIndices(5, []int{0, 2, 3})
	if s := v.String(); s != "10110" {
		t.Fatalf("String = %q, want %q", s, "10110")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 8, 9, 63, 64, 65, 500} {
		v := randomVec(r, n)
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var u Vector
		if err := u.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !u.Equal(v) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v Vector
	if err := v.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on truncated header")
	}
	if err := v.UnmarshalBinary([]byte{100, 0, 0, 0, 0, 0, 0, 0, 0xFF}); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestPayloadBytesTailZeroed(t *testing.T) {
	// Payload of a 9-bit all-ones vector must have only the first 9 bits set.
	v := NewOnes(9)
	p := v.PayloadBytes()
	if len(p) != 2 || p[0] != 0xFF || p[1] != 0x01 {
		t.Fatalf("payload = %x, want ff01", p)
	}
}

func TestSetPayload(t *testing.T) {
	var v Vector
	if err := v.SetPayload(9, []byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if v.Count() != 9 {
		t.Fatalf("Count = %d, want 9 (tail must be masked)", v.Count())
	}
}

func BenchmarkAnd64K(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x, y := randomVec(r, 1<<16), randomVec(r, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkCount64K(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	x := randomVec(r, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func TestFusedCounts(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(400)
		a, b := randomVec(r, n), randomVec(r, n)
		and := a.Clone()
		and.And(b)
		if got := AndCount(a, b); got != and.Count() {
			t.Fatalf("AndCount = %d, want %d", got, and.Count())
		}
		or := a.Clone()
		or.Or(b)
		if got := OrCount(a, b); got != or.Count() {
			t.Fatalf("OrCount = %d, want %d", got, or.Count())
		}
		anot := a.Clone()
		anot.AndNot(b)
		if got := AndNotCount(a, b); got != anot.Count() {
			t.Fatalf("AndNotCount = %d, want %d", got, anot.Count())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	AndCount(New(3), New(4))
}
