// Package data provides deterministic synthetic workload generators. They
// stand in for the TPC-D benchmark data the paper's Section 9 experiments
// used (see DESIGN.md): the generators match the attribute cardinalities
// and value distributions of the paper's two data sets, with the relation
// cardinality as a configurable scale factor.
package data

import (
	"fmt"
	"math/rand"
)

// Column is a generated attribute column: Values[i] in [0, Card) for every
// row. Attribute values are already rank-mapped to consecutive integers,
// the form the bitmap index consumes.
type Column struct {
	Name   string
	Values []uint64
	Card   uint64
}

// Rows returns the relation cardinality.
func (c Column) Rows() int { return len(c.Values) }

// String summarizes the column.
func (c Column) String() string {
	return fmt.Sprintf("%s[N=%d C=%d]", c.Name, len(c.Values), c.Card)
}

// LineitemQuantityCard is the attribute cardinality of TPC-D
// Lineitem.Quantity: integer quantities 1..50.
const LineitemQuantityCard = 50

// OrderDateCard is the attribute cardinality of TPC-D Order.OrderDate:
// order dates are uniform over the 2,406 days from 1992-01-01 through
// 1998-08-02.
const OrderDateCard = 2406

// LineitemQuantity generates the paper's data set 1: n rows of
// Lineitem.Quantity, uniform over its 50 distinct values.
func LineitemQuantity(n int, seed int64) Column {
	c := Uniform(n, LineitemQuantityCard, seed)
	c.Name = "lineitem.quantity"
	return c
}

// OrderDate generates the paper's data set 2: n rows of Order.OrderDate,
// uniform over its 2,406 distinct day values.
func OrderDate(n int, seed int64) Column {
	c := Uniform(n, OrderDateCard, seed)
	c.Name = "order.orderdate"
	return c
}

// Uniform generates n values uniform over [0, card).
func Uniform(n int, card uint64, seed int64) Column {
	r := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(r.Int63n(int64(card)))
	}
	return Column{Name: fmt.Sprintf("uniform(%d)", card), Values: vals, Card: card}
}

// Zipf generates n values over [0, card) with a Zipf(s) frequency skew:
// value 0 is the most frequent. s must be > 1.
func Zipf(n int, card uint64, s float64, seed int64) Column {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, s, 1, card-1)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = z.Uint64()
	}
	return Column{Name: fmt.Sprintf("zipf(%d,s=%.2f)", card, s), Values: vals, Card: card}
}

// Clustered generates n values over [0, card) in runs of geometrically
// distributed length with mean runLen, modelling physically clustered data
// (e.g. a relation loaded in date order). Run-length compression thrives
// on it.
func Clustered(n int, card uint64, runLen int, seed int64) Column {
	if runLen < 1 {
		runLen = 1
	}
	r := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	cur := uint64(r.Int63n(int64(card)))
	for i := range vals {
		if r.Float64() < 1/float64(runLen) {
			cur = uint64(r.Int63n(int64(card)))
		}
		vals[i] = cur
	}
	return Column{Name: fmt.Sprintf("clustered(%d,run=%d)", card, runLen), Values: vals, Card: card}
}

// Sorted generates n values over [0, card) in non-decreasing order with
// near-equal frequency per value — the best case for range-encoded bitmap
// compressibility.
func Sorted(n int, card uint64) Column {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i) * card / uint64(n)
	}
	return Column{Name: fmt.Sprintf("sorted(%d)", card), Values: vals, Card: card}
}

// WithNulls returns a copy of the column plus a null mask with the given
// null fraction, deterministically from seed.
func WithNulls(c Column, frac float64, seed int64) (Column, []bool) {
	r := rand.New(rand.NewSource(seed))
	nulls := make([]bool, len(c.Values))
	for i := range nulls {
		nulls[i] = r.Float64() < frac
	}
	out := Column{Name: c.Name + "+nulls", Values: append([]uint64(nil), c.Values...), Card: c.Card}
	return out, nulls
}
