package data

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	gens := map[string]func() Column{
		"quantity":  func() Column { return LineitemQuantity(1000, 7) },
		"orderdate": func() Column { return OrderDate(1000, 7) },
		"uniform":   func() Column { return Uniform(1000, 123, 7) },
		"zipf":      func() Column { return Zipf(1000, 123, 1.5, 7) },
		"clustered": func() Column { return Clustered(1000, 123, 16, 7) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("%s: not deterministic at row %d", name, i)
			}
		}
	}
}

func TestRangesAndCardinalities(t *testing.T) {
	cols := []Column{
		LineitemQuantity(5000, 1),
		OrderDate(5000, 1),
		Uniform(5000, 77, 1),
		Zipf(5000, 77, 1.3, 1),
		Clustered(5000, 77, 8, 1),
		Sorted(5000, 77),
	}
	for _, c := range cols {
		if c.Rows() != 5000 {
			t.Fatalf("%s: Rows = %d", c, c.Rows())
		}
		for i, v := range c.Values {
			if v >= c.Card {
				t.Fatalf("%s: value %d at row %d out of range [0,%d)", c, v, i, c.Card)
			}
		}
	}
	if LineitemQuantity(10, 1).Card != 50 {
		t.Fatal("quantity cardinality must be 50")
	}
	if OrderDate(10, 1).Card != 2406 {
		t.Fatal("orderdate cardinality must be 2406")
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	c := Uniform(100000, 10, 2)
	counts := make([]int, 10)
	for _, v := range c.Values {
		counts[v]++
	}
	for v, n := range counts {
		if math.Abs(float64(n)-10000) > 600 {
			t.Errorf("value %d occurs %d times, expected ~10000", v, n)
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	c := Zipf(100000, 100, 1.5, 3)
	counts := make([]int, 100)
	for _, v := range c.Values {
		counts[v]++
	}
	if counts[0] < 10*counts[50] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestClusteredHasRuns(t *testing.T) {
	c := Clustered(100000, 1000, 32, 4)
	runs := 1
	for i := 1; i < len(c.Values); i++ {
		if c.Values[i] != c.Values[i-1] {
			runs++
		}
	}
	avgRun := float64(len(c.Values)) / float64(runs)
	if avgRun < 8 {
		t.Errorf("average run length %.1f too short for runLen=32", avgRun)
	}
	u := Uniform(100000, 1000, 4)
	uruns := 1
	for i := 1; i < len(u.Values); i++ {
		if u.Values[i] != u.Values[i-1] {
			uruns++
		}
	}
	if runs >= uruns {
		t.Errorf("clustered data has no fewer runs (%d) than uniform (%d)", runs, uruns)
	}
}

func TestSortedIsSorted(t *testing.T) {
	c := Sorted(10000, 64)
	seen := map[uint64]bool{}
	for i := 1; i < len(c.Values); i++ {
		if c.Values[i] < c.Values[i-1] {
			t.Fatalf("not sorted at row %d", i)
		}
	}
	for _, v := range c.Values {
		seen[v] = true
	}
	if len(seen) != 64 {
		t.Errorf("sorted column uses %d distinct values, want 64", len(seen))
	}
}

func TestWithNulls(t *testing.T) {
	c := Uniform(10000, 10, 5)
	c2, nulls := WithNulls(c, 0.1, 6)
	if len(nulls) != c.Rows() {
		t.Fatal("null mask length mismatch")
	}
	count := 0
	for _, b := range nulls {
		if b {
			count++
		}
	}
	if count < 800 || count > 1200 {
		t.Errorf("null count %d, expected ~1000", count)
	}
	// Copy independence.
	c2.Values[0] = 99
	if c.Values[0] == 99 && c.Values[1] == 99 {
		t.Error("WithNulls did not copy values")
	}
	if c.Rows() != c2.Rows() {
		t.Error("row count changed")
	}
}

func TestColumnString(t *testing.T) {
	c := Uniform(10, 5, 1)
	if s := c.String(); s == "" {
		t.Fatal("empty String")
	}
}
