package engine

import (
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/telemetry"
)

// telemetryRelation builds a two-column relation over identity-ranked data
// with bitmap (range-encoded) and RID indexes on both columns.
func telemetryRelation(t *testing.T, rows int, card uint64, base core.Base) *Relation {
	t.Helper()
	r := NewRelation("tele")
	for _, name := range []string{"a", "b"} {
		ranks := make([]uint64, rows)
		shift := 0
		if name == "b" {
			shift = 7
		}
		for i := range ranks {
			ranks[i] = uint64(i+shift) % card
		}
		c, err := r.AddRanked(name, ranks, card)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BuildBitmapIndex(base, core.RangeEncoded); err != nil {
			t.Fatal(err)
		}
		c.BuildRIDIndex()
	}
	return r
}

func plansCount(method string) int64 {
	return telemetry.Default().Snapshot().Counters[`bix_engine_plans_total{method="`+method+`"}`]
}

// TestPlanStatsPropagation checks Cost.Stats through all plans: the
// bitmap-merge plan's scan count must equal the analytic per-predicate
// scan model plus the counted cross-predicate AND, while the non-bitmap
// plans report zero Stats. Each executed plan bumps its
// bix_engine_plans_total{method=...} counter and the bitmap work flows into
// the default registry's bix_scans_total.
func TestPlanStatsPropagation(t *testing.T) {
	const (
		rows = 4000
		card = 20
	)
	base := core.Base{5, 4}
	r := telemetryRelation(t, rows, card, base)
	preds := []Pred{
		{Col: "a", Op: core.Le, Val: 11},
		{Col: "b", Op: core.Ge, Val: 4},
	}

	// P1, P2 and P3-ridmerge touch no bitmap index: Stats must stay zero.
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge} {
		beforePlans := plansCount(m.String())
		res, c, err := r.Select(preds, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if c.Stats != (core.Stats{}) {
			t.Errorf("%v: Stats = %+v, want zero", m, c.Stats)
		}
		if res.Count() != c.Rows || c.Rows <= 0 {
			t.Errorf("%v: result count %d vs Cost.Rows %d", m, res.Count(), c.Rows)
		}
		if got := plansCount(m.String()) - beforePlans; got != 1 {
			t.Errorf("%v: bix_engine_plans_total grew by %d, want 1", m, got)
		}
	}

	// P3-bitmapmerge: per-predicate scans follow the analytic model (the
	// dictionary is the identity, so predicates translate 1:1 to ranks),
	// plus one counted AND merging the two result bitmaps.
	wantScans := cost.ScansRange(base, card, core.Le, 11) +
		cost.ScansRange(base, card, core.Ge, 4)
	beforeScans := telemetry.Default().Snapshot().Counters["bix_scans_total"]
	beforePlans := plansCount(BitmapMerge.String())
	res, c, err := r.Select(preds, BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Scans != wantScans {
		t.Errorf("bitmapMerge Stats.Scans = %d, want %d", c.Stats.Scans, wantScans)
	}
	if c.Stats.Ands == 0 {
		t.Error("bitmapMerge must count the cross-predicate AND")
	}
	if res.Count() != c.Rows {
		t.Errorf("result count %d vs Cost.Rows %d", res.Count(), c.Rows)
	}
	if got := plansCount(BitmapMerge.String()) - beforePlans; got != 1 {
		t.Errorf("bix_engine_plans_total{P3-bitmapmerge} grew by %d, want 1", got)
	}
	if got := telemetry.Default().Snapshot().Counters["bix_scans_total"] - beforeScans; got != int64(wantScans) {
		t.Errorf("bix_scans_total grew by %d, want %d", got, wantScans)
	}

	// Auto must execute exactly one concrete plan (no double count via the
	// dispatch path) and report which.
	snapBefore := telemetry.Default().Snapshot().Counters
	_, c, err = r.Select(preds, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if c.Method == Auto {
		t.Errorf("auto must resolve to a concrete method, got %v", c.Method)
	}
	snapAfter := telemetry.Default().Snapshot().Counters
	grew := 0
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge} {
		id := `bix_engine_plans_total{method="` + m.String() + `"}`
		d := snapAfter[id] - snapBefore[id]
		grew += int(d)
		if m == c.Method && d != 1 {
			t.Errorf("auto: %v counter grew by %d, want 1", m, d)
		}
	}
	if grew != 1 {
		t.Errorf("auto bumped %d plan counters, want exactly 1", grew)
	}
}

// TestSelectTracedPhases checks that a traced auto-selection records the
// planning phase plus the executed plan's work phases.
func TestSelectTracedPhases(t *testing.T) {
	base := core.Base{5, 4}
	r := telemetryRelation(t, 2000, 20, base)
	preds := []Pred{{Col: "a", Op: core.Le, Val: 11}, {Col: "b", Op: core.Ge, Val: 4}}
	tr := telemetry.NewTrace("auto le/ge")
	if _, _, err := r.SelectTraced(preds, Auto, tr); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	phases := make(map[telemetry.Phase]telemetry.PhaseRecord)
	for _, p := range tr.Phases() {
		phases[p.Phase] = p
	}
	if phases[telemetry.PhasePlan].Calls == 0 {
		t.Error("trace missing plan phase")
	}
	if len(phases) < 2 {
		t.Errorf("trace has %d phases, want planning plus execution work: %v", len(phases), tr.Phases())
	}
}

// TestBufferedEvalMatchesCostModel compares the measured buffered scan
// counts against the cost model: per-query scans must equal
// cost.ScansRangeBuffered, and the average over all 6*card queries must
// match cost.ExactTimeRangeBuffered.
func TestBufferedEvalMatchesCostModel(t *testing.T) {
	const card = 24
	base := core.Base{6, 4}
	rows := 3000
	ranks := make([]uint64, rows)
	for i := range ranks {
		ranks[i] = uint64(i*7+3) % card
	}
	ix, err := core.Build(ranks, card, base, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := []int{2, 1} // buffer two bitmaps of component 1, one of component 2
	buffered := func(comp, slot int) bool { return slot < a[comp] }

	var total int
	var queries int
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v++ {
			var st core.Stats
			ix.Eval(op, v, &core.EvalOptions{Stats: &st, Buffered: buffered})
			want := cost.ScansRangeBuffered(base, card, op, v, buffered)
			if st.Scans != want {
				t.Errorf("%v %d: measured %d scans, model says %d", op, v, st.Scans, want)
			}
			total += st.Scans
			queries++
		}
	}
	// ExactTimeRangeBuffered averages over all 6*card queries.
	wantAvg := cost.ExactTimeRangeBuffered(base, card, buffered)
	gotAvg := float64(total) / float64(queries)
	if diff := gotAvg - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("average buffered scans = %v, cost model = %v", gotAvg, wantAvg)
	}
}
