package engine

import (
	"fmt"
	"strings"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
)

// Expr is a boolean selection expression over column predicates. The
// efficient hardware support for bitmap AND/OR/NOT is the paper's core
// motivation for bitmap indexes; expressions compose predicate bitmaps
// with exactly those operations.
type Expr interface {
	// String renders the expression as SQL-ish text.
	String() string
	// evalScan tests one row directly against the columns.
	evalScan(r *Relation, row int) bool
	// evalBitmap evaluates via bitmap indexes, accumulating index bytes.
	evalBitmap(r *Relation, bytes *int64) (*bitvec.Vector, error)
}

// Leaf lifts a predicate into an expression.
func Leaf(p Pred) Expr { return leafExpr{p} }

// All is the conjunction of the given expressions (true when empty).
func All(es ...Expr) Expr { return naryExpr{op: "AND", es: es} }

// Any is the disjunction of the given expressions (false when empty).
func Any(es ...Expr) Expr { return naryExpr{op: "OR", es: es} }

// Not negates an expression; null rows still never match.
func Not(e Expr) Expr { return notExpr{e} }

type leafExpr struct{ p Pred }

func (l leafExpr) String() string { return l.p.String() }

func (l leafExpr) evalScan(r *Relation, row int) bool {
	c, _ := r.Column(l.p.Col)
	return l.p.matches(c, row)
}

func (l leafExpr) evalBitmap(r *Relation, bytes *int64) (*bitvec.Vector, error) {
	c, err := r.Column(l.p.Col)
	if err != nil {
		return nil, err
	}
	if c.bitmap == nil {
		return nil, fmt.Errorf("engine: column %q has no bitmap index", l.p.Col)
	}
	rop, rank, all, none := c.dict.Translate(l.p.Op, l.p.Val)
	switch {
	case none:
		return bitvec.New(r.Rows()), nil
	case all:
		return bitvec.NewOnes(r.Rows()), nil
	}
	var st core.Stats
	res := c.bitmap.Eval(rop, rank, &core.EvalOptions{Stats: &st})
	*bytes += int64(st.Scans) * int64((r.Rows()+7)/8)
	return res, nil
}

type naryExpr struct {
	op string
	es []Expr
}

func (n naryExpr) String() string {
	if len(n.es) == 0 {
		if n.op == "AND" {
			return "TRUE"
		}
		return "FALSE"
	}
	parts := make([]string, len(n.es))
	for i, e := range n.es {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " "+n.op+" ") + ")"
}

func (n naryExpr) evalScan(r *Relation, row int) bool {
	if n.op == "AND" {
		for _, e := range n.es {
			if !e.evalScan(r, row) {
				return false
			}
		}
		return true
	}
	for _, e := range n.es {
		if e.evalScan(r, row) {
			return true
		}
	}
	return false
}

func (n naryExpr) evalBitmap(r *Relation, bytes *int64) (*bitvec.Vector, error) {
	var acc *bitvec.Vector
	for _, e := range n.es {
		b, err := e.evalBitmap(r, bytes)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = b
			continue
		}
		if n.op == "AND" {
			acc.And(b)
		} else {
			acc.Or(b)
		}
	}
	if acc == nil {
		if n.op == "AND" {
			return bitvec.NewOnes(r.Rows()), nil
		}
		return bitvec.New(r.Rows()), nil
	}
	return acc, nil
}

type notExpr struct{ e Expr }

func (n notExpr) String() string { return "NOT " + n.e.String() }

func (n notExpr) evalScan(r *Relation, row int) bool { return !n.e.evalScan(r, row) }

func (n notExpr) evalBitmap(r *Relation, bytes *int64) (*bitvec.Vector, error) {
	b, err := n.e.evalBitmap(r, bytes)
	if err != nil {
		return nil, err
	}
	out := b.Clone()
	out.Not()
	return out, nil
}

// SelectExpr evaluates a boolean expression over the relation. FullScan
// tests each row; BitmapMerge composes predicate bitmaps with AND/OR/NOT
// (every referenced column needs a bitmap index). Other methods are not
// applicable to general expressions.
func (r *Relation) SelectExpr(e Expr, m Method) (*bitvec.Vector, Cost, error) {
	switch m {
	case FullScan:
		out := bitvec.New(r.Rows())
		for row := 0; row < r.Rows(); row++ {
			if e.evalScan(r, row) {
				out.Set(row)
			}
		}
		return out, Cost{Method: FullScan, BytesRead: int64(r.Rows()) * int64(r.RowBytes()), Rows: out.Count()}, nil
	case BitmapMerge:
		var bytes int64
		out, err := e.evalBitmap(r, &bytes)
		if err != nil {
			return nil, Cost{}, err
		}
		return out, Cost{Method: BitmapMerge, BytesRead: bytes, Rows: out.Count()}, nil
	default:
		return nil, Cost{}, fmt.Errorf("engine: method %v cannot evaluate general expressions", m)
	}
}

// CountExpr returns the number of qualifying rows — the aggregation the
// paper notes Bit-Sliced indexes serve well: only a population count of
// the result bitmap, no record fetches.
func (r *Relation) CountExpr(e Expr, m Method) (int, Cost, error) {
	b, c, err := r.SelectExpr(e, m)
	if err != nil {
		return 0, Cost{}, err
	}
	return b.Count(), c, nil
}
