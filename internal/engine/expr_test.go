package engine

import (
	"math/rand"
	"testing"

	"bitmapindex/internal/core"
)

// randomExpr builds a random expression tree over the given predicates.
func randomExpr(r *rand.Rand, preds []Pred, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		return Leaf(preds[r.Intn(len(preds))])
	}
	switch r.Intn(3) {
	case 0:
		return All(randomExpr(r, preds, depth-1), randomExpr(r, preds, depth-1))
	case 1:
		return Any(randomExpr(r, preds, depth-1), randomExpr(r, preds, depth-1))
	default:
		return Not(randomExpr(r, preds, depth-1))
	}
}

// TestExprBitmapMatchesScan: for random expression trees, the bitmap
// evaluation must equal the row-at-a-time scan.
func TestExprBitmapMatchesScan(t *testing.T) {
	rel := buildRelation(t, 2500, 9)
	r := rand.New(rand.NewSource(10))
	preds := []Pred{
		{Col: "quantity", Op: core.Le, Val: 15},
		{Col: "quantity", Op: core.Gt, Val: 40},
		{Col: "price", Op: core.Ge, Val: 2000},
		{Col: "region", Op: core.Eq, Val: 3},
		{Col: "region", Op: core.Ne, Val: 0},
		{Col: "price", Op: core.Lt, Val: 100},
	}
	for trial := 0; trial < 60; trial++ {
		e := randomExpr(r, preds, 3)
		scan, scanCost, err := rel.SelectExpr(e, FullScan)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		bm, bmCost, err := rel.SelectExpr(e, BitmapMerge)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if !scan.Equal(bm) {
			t.Fatalf("expression %s: bitmap result differs from scan", e)
		}
		if scanCost.Rows != bmCost.Rows {
			t.Fatalf("expression %s: row counts differ", e)
		}
		if bmCost.BytesRead < 0 {
			t.Fatalf("negative bytes")
		}
	}
}

func TestExprDeMorgan(t *testing.T) {
	rel := buildRelation(t, 1000, 11)
	a := Leaf(Pred{Col: "quantity", Op: core.Le, Val: 20})
	b := Leaf(Pred{Col: "region", Op: core.Eq, Val: 2})
	lhs, _, err := rel.SelectExpr(Not(All(a, b)), BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	rhs, _, err := rel.SelectExpr(Any(Not(a), Not(b)), BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.Equal(rhs) {
		t.Fatal("De Morgan violated by bitmap expression evaluation")
	}
}

func TestExprEmptyAndString(t *testing.T) {
	rel := buildRelation(t, 100, 12)
	all, _, err := rel.SelectExpr(All(), BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != 100 {
		t.Fatalf("empty conjunction matched %d rows, want all", all.Count())
	}
	none, _, err := rel.SelectExpr(Any(), BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	if none.Count() != 0 {
		t.Fatalf("empty disjunction matched %d rows, want none", none.Count())
	}
	if All().String() != "TRUE" || Any().String() != "FALSE" {
		t.Fatal("empty expression strings wrong")
	}
	e := Not(Any(Leaf(Pred{Col: "quantity", Op: core.Le, Val: 5}), Leaf(Pred{Col: "region", Op: core.Eq, Val: 1})))
	want := "NOT (quantity <= 5 OR region = 1)"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e.String(), want)
	}
}

func TestExprErrors(t *testing.T) {
	rel := NewRelation("r")
	if _, err := rel.AddInt64("a", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	e := Leaf(Pred{Col: "a", Op: core.Eq, Val: 1})
	if _, _, err := rel.SelectExpr(e, BitmapMerge); err == nil {
		t.Error("missing bitmap index must fail")
	}
	if _, _, err := rel.SelectExpr(e, RIDMerge); err == nil {
		t.Error("RIDMerge on expressions must fail")
	}
	bad := Leaf(Pred{Col: "zzz", Op: core.Eq, Val: 1})
	if _, _, err := rel.SelectExpr(bad, BitmapMerge); err == nil {
		t.Error("unknown column must fail")
	}
	if _, _, err := rel.SelectExpr(All(bad), BitmapMerge); err == nil {
		t.Error("error must propagate through conjunction")
	}
	if _, _, err := rel.SelectExpr(Not(bad), BitmapMerge); err == nil {
		t.Error("error must propagate through negation")
	}
	if _, _, err := rel.CountExpr(bad, BitmapMerge); err == nil {
		t.Error("CountExpr must propagate errors")
	}
}

func TestCountExpr(t *testing.T) {
	rel := buildRelation(t, 3000, 13)
	e := Any(
		Leaf(Pred{Col: "quantity", Op: core.Le, Val: 10}),
		Leaf(Pred{Col: "quantity", Op: core.Gt, Val: 45}),
	)
	nScan, _, err := rel.CountExpr(e, FullScan)
	if err != nil {
		t.Fatal(err)
	}
	nBm, cost, err := rel.CountExpr(e, BitmapMerge)
	if err != nil {
		t.Fatal(err)
	}
	if nScan != nBm {
		t.Fatalf("counts differ: %d vs %d", nScan, nBm)
	}
	if cost.Rows != nBm {
		t.Fatalf("cost.Rows %d != count %d", cost.Rows, nBm)
	}
}
