package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/flight"
	"bitmapindex/internal/telemetry"
	"bitmapindex/internal/workload"
)

// Method selects a query evaluation plan for a conjunctive selection.
type Method uint8

const (
	// FullScan is plan P1: read every record and test all predicates.
	FullScan Method = iota
	// IndexFilter is plan P2: probe one index for the most selective
	// predicate, then fetch the matching records and test the rest.
	IndexFilter
	// RIDMerge is plan P3 with RID-list indexes: probe one RID index per
	// predicate and intersect the sorted RID lists.
	RIDMerge
	// BitmapMerge is plan P3 with bitmap indexes: evaluate one bitmap
	// predicate per index and AND the result bitmaps.
	BitmapMerge
	// Auto picks the plan with the lowest estimated bytes read among the
	// plans whose indexes exist.
	Auto
)

// String names the plan like the paper's introduction.
func (m Method) String() string {
	switch m {
	case FullScan:
		return "P1-fullscan"
	case IndexFilter:
		return "P2-indexfilter"
	case RIDMerge:
		return "P3-ridmerge"
	case BitmapMerge:
		return "P3-bitmapmerge"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Cost reports the physical work a plan performed (or, for estimates,
// would perform).
type Cost struct {
	Method    Method
	BytesRead int64
	// Rows is the result cardinality.
	Rows int
	// Stats accumulates the bitmap scan and operation counts of every
	// index evaluation the plan performed (zero for plans that touch no
	// bitmap index), so the paper's cost measures propagate to plan level.
	Stats core.Stats
	// AllocBytes and AllocObjects are the heap allocation deltas measured
	// across the plan's execution (telemetry.ReadAllocs). The counters are
	// process-global, so the attribution is exact under serial evaluation
	// and approximate when other goroutines allocate concurrently; small
	// objects surface only at span-refill granularity, large (>32KB)
	// allocations immediately. Plan selection (Auto's cost estimation) is
	// excluded.
	AllocBytes   int64
	AllocObjects int64
}

// Select evaluates the conjunction of preds over the relation with the
// given plan and returns the qualifying record bitmap plus the measured
// cost. All predicates must reference existing columns; RIDMerge needs a
// RID index and BitmapMerge a bitmap index on every referenced column.
func (r *Relation) Select(preds []Pred, m Method) (*bitvec.Vector, Cost, error) {
	return r.SelectTraced(preds, m, nil)
}

// SelectOptions tunes plan execution beyond the method choice.
type SelectOptions struct {
	// Trace, when non-nil, receives per-phase durations (plan selection,
	// bitmap work, row filtering, result popcounts).
	Trace *telemetry.Trace
	// Parallel evaluates bitmap predicates with the segmented intra-query
	// evaluator (core.SegmentedEval) instead of the serial one, so a
	// single heavy predicate uses every core. Engine-level batches over
	// many predicates should instead parallelize across predicates; see
	// core.EvalBatch for the crossover heuristic.
	Parallel bool
	// Workers bounds segment workers when Parallel is set (0 selects
	// GOMAXPROCS).
	Workers int
	// SegBits overrides the segment width when Parallel is set (0 selects
	// the core default).
	SegBits int

	// Workload, when non-nil, receives one event per bitmap predicate
	// evaluated by the bitmap-merge plans: the attribute name, operator
	// class, rank-space constant and measured scan/latency cost. Result
	// cardinalities are not counted per predicate (the plans fuse the
	// final AND with the popcount), so events carry Matches: -1.
	Workload *workload.Accumulator

	// perPred, when non-nil, receives one predActual per bitmap predicate
	// evaluated by the bitmap-merge plans, in predicate order: the measured
	// scan delta and wall-clock time of that predicate alone. Filled only
	// by ExplainAnalyze, which compares the entries against the cost
	// model's per-predicate predictions.
	perPred *[]predActual
}

// predActual is one bitmap predicate's measured cost within a plan.
type predActual struct {
	Scans int
	NS    int64
}

func (o *SelectOptions) segConfig() core.SegConfig {
	return core.SegConfig{SegBits: o.SegBits, Workers: o.Workers}
}

// plansTotal pre-registers one execution counter per concrete plan. The
// label values are compile-time constants (and must stay in sync with
// Method.String), keeping the metric's cardinality statically bounded —
// the contract bixlint's telemetry-labels analyzer enforces.
var plansTotal = [...]*telemetry.Counter{
	FullScan:    telemetry.Default().Counter("bix_engine_plans_total", plansHelp, telemetry.Label{Name: "method", Value: "P1-fullscan"}),
	IndexFilter: telemetry.Default().Counter("bix_engine_plans_total", plansHelp, telemetry.Label{Name: "method", Value: "P2-indexfilter"}),
	RIDMerge:    telemetry.Default().Counter("bix_engine_plans_total", plansHelp, telemetry.Label{Name: "method", Value: "P3-ridmerge"}),
	BitmapMerge: telemetry.Default().Counter("bix_engine_plans_total", plansHelp, telemetry.Label{Name: "method", Value: "P3-bitmapmerge"}),
}

const plansHelp = "Query plan executions, by method."

// SelectTraced is Select with per-query tracing: plan selection, bitmap
// work, row filtering and result popcounts are recorded into tr (which may
// be nil). Each executed plan also increments the registry's
// bix_engine_plans_total{method=...} counter.
func (r *Relation) SelectTraced(preds []Pred, m Method, tr *telemetry.Trace) (*bitvec.Vector, Cost, error) {
	return r.SelectOpts(preds, m, &SelectOptions{Trace: tr})
}

// SelectOpts is Select with full execution options (tracing plus
// segmented intra-query parallelism for the bitmap plan). opt may be nil.
func (r *Relation) SelectOpts(preds []Pred, m Method, opt *SelectOptions) (*bitvec.Vector, Cost, error) {
	if opt == nil {
		opt = &SelectOptions{}
	}
	if err := r.checkPreds(preds); err != nil {
		return nil, Cost{}, err
	}
	tr := opt.Trace
	var (
		res *bitvec.Vector
		c   Cost
		err error
	)
	aB, aO := telemetry.ReadAllocs()
	t0 := time.Now()
	switch m {
	case FullScan:
		res, c, err = r.fullScan(preds, tr)
	case IndexFilter:
		res, c, err = r.indexFilter(preds, tr)
	case RIDMerge:
		res, c, err = r.ridMerge(preds, tr)
	case BitmapMerge:
		res, c, err = r.bitmapMerge(preds, opt)
	case Auto:
		return r.auto(preds, opt) // the recursive call accounts and records
	default:
		return nil, Cost{}, fmt.Errorf("engine: unknown method %v", m)
	}
	if err == nil {
		b, o := telemetry.ReadAllocs()
		c.AllocBytes, c.AllocObjects = b-aB, o-aO
		if int(c.Method) < len(plansTotal) {
			plansTotal[c.Method].Inc()
		}
		recordPlanFlight(preds, &c, time.Since(t0), tr)
	}
	return res, c, err
}

// recordPlanFlight lands one plan-level flight record for an executed
// plan. Core evaluations beneath a bitmap plan land their own records
// under the same trace ID, so /debug/queries readers can join a plan to
// its per-index evaluations.
func recordPlanFlight(preds []Pred, c *Cost, elapsed time.Duration, tr *telemetry.Trace) {
	frec := flight.Record{
		TraceID: tr.ID(), Query: predsSummary(preds), Plan: c.Method.String(),
		Total: elapsed, Rows: int64(c.Rows), BytesRead: c.BytesRead,
		Scans: c.Stats.Scans, Ands: c.Stats.Ands, Ors: c.Stats.Ors,
		Xors: c.Stats.Xors, Nots: c.Stats.Nots,
		AllocBytes: c.AllocBytes, AllocObjects: c.AllocObjects,
	}
	flight.Default().Add(&frec, tr)
}

// predsSummary renders the conjunction compactly ("A <= 7 AND B = 2").
func predsSummary(preds []Pred) string {
	if len(preds) == 1 {
		return preds[0].String()
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}

func (r *Relation) checkPreds(preds []Pred) error {
	if len(preds) == 0 {
		return fmt.Errorf("engine: empty predicate list")
	}
	for _, p := range preds {
		if _, err := r.Column(p.Col); err != nil {
			return err
		}
	}
	return nil
}

func (r *Relation) fullScan(preds []Pred, tr *telemetry.Trace) (*bitvec.Vector, Cost, error) {
	sp := tr.Start(telemetry.PhaseFilter)
	out := bitvec.New(r.Rows())
	cols := make([]*Column, len(preds))
	for i, p := range preds {
		cols[i], _ = r.Column(p.Col)
	}
	for row := 0; row < r.Rows(); row++ {
		ok := true
		for i, p := range preds {
			if !p.matches(cols[i], row) {
				ok = false
				break
			}
		}
		if ok {
			out.Set(row)
		}
	}
	sp.End()
	cost := Cost{Method: FullScan, BytesRead: int64(r.Rows()) * int64(r.RowBytes()), Rows: popcount(out, tr)}
	return out, cost, nil
}

// popcount counts the result bits under the popcount trace phase.
func popcount(v *bitvec.Vector, tr *telemetry.Trace) int {
	defer tr.Start(telemetry.PhasePopcount).End()
	return v.Count()
}

// ridsFor returns the RIDs matching the predicate via the column's RID
// index, along with the index bytes read (RIDBytes per RID touched, over
// every list probed).
func (r *Relation) ridsFor(p Pred) ([]uint32, int64, error) {
	c, _ := r.Column(p.Col)
	if c.rids == nil {
		return nil, 0, fmt.Errorf("engine: column %q has no RID index", p.Col)
	}
	rop, rank, all, none, err := translateChecked(c, p)
	if err != nil {
		return nil, 0, err
	}
	if none {
		return nil, 0, nil
	}
	match := func(v uint64) bool {
		if all {
			return true
		}
		return rop.Matches(v, rank)
	}
	var out []uint32
	var bytes int64
	for v := uint64(0); v < c.Card(); v++ {
		if !match(v) {
			continue
		}
		list := c.rids[v]
		bytes += int64(len(list)) * RIDBytes
		out = append(out, list...)
	}
	sortRIDs(out)
	return out, bytes, nil
}

func translateChecked(c *Column, p Pred) (rop core.Op, rank uint64, all, none bool, err error) {
	rop, rank, all, none = c.dict.Translate(p.Op, p.Val)
	return rop, rank, all, none, nil
}

func sortRIDs(r []uint32) {
	// RID lists are concatenations of already-sorted per-value lists;
	// a simple merge via sort is adequate at this scale.
	if len(r) < 2 {
		return
	}
	quickSortRIDs(r)
}

func quickSortRIDs(r []uint32) {
	if len(r) < 16 {
		for i := 1; i < len(r); i++ {
			for j := i; j > 0 && r[j] < r[j-1]; j-- {
				r[j], r[j-1] = r[j-1], r[j]
			}
		}
		return
	}
	pivot := r[len(r)/2]
	lo, hi := 0, len(r)-1
	for lo <= hi {
		for r[lo] < pivot {
			lo++
		}
		for r[hi] > pivot {
			hi--
		}
		if lo <= hi {
			r[lo], r[hi] = r[hi], r[lo]
			lo++
			hi--
		}
	}
	quickSortRIDs(r[:hi+1])
	quickSortRIDs(r[lo:])
}

func (r *Relation) indexFilter(preds []Pred, tr *telemetry.Trace) (*bitvec.Vector, Cost, error) {
	// Choose the most selective indexed predicate (smallest RID list) as
	// the driver; fall back to the first RID-indexed column.
	probe := tr.Start(telemetry.PhaseFetch)
	driver := -1
	var driverRIDs []uint32
	var driverBytes int64
	for i, p := range preds {
		c, _ := r.Column(p.Col)
		if c.rids == nil {
			continue
		}
		rids, bytes, err := r.ridsFor(p)
		if err != nil {
			probe.End()
			return nil, Cost{}, err
		}
		if driver < 0 || len(rids) < len(driverRIDs) {
			driver, driverRIDs, driverBytes = i, rids, bytes
		}
	}
	probe.End()
	if driver < 0 {
		return nil, Cost{}, fmt.Errorf("engine: no RID index available for index-filter plan")
	}
	sp := tr.Start(telemetry.PhaseFilter)
	out := bitvec.New(r.Rows())
	cols := make([]*Column, len(preds))
	for i, p := range preds {
		cols[i], _ = r.Column(p.Col)
	}
	for _, rid := range driverRIDs {
		ok := true
		for i, p := range preds {
			if i == driver {
				continue
			}
			if !p.matches(cols[i], int(rid)) {
				ok = false
				break
			}
		}
		if ok {
			out.Set(int(rid))
		}
	}
	sp.End()
	cost := Cost{
		Method: IndexFilter,
		// Index probe plus fetching each candidate record.
		BytesRead: driverBytes + int64(len(driverRIDs))*int64(r.RowBytes()),
		Rows:      popcount(out, tr),
	}
	return out, cost, nil
}

func (r *Relation) ridMerge(preds []Pred, tr *telemetry.Trace) (*bitvec.Vector, Cost, error) {
	var result []uint32
	var bytes int64
	for i, p := range preds {
		probe := tr.Start(telemetry.PhaseFetch)
		rids, b, err := r.ridsFor(p)
		probe.End()
		if err != nil {
			return nil, Cost{}, err
		}
		bytes += b
		if i == 0 {
			result = rids
			continue
		}
		sp := tr.Start(telemetry.PhaseFilter)
		result = intersectSorted(result, rids)
		sp.End()
	}
	out := bitvec.New(r.Rows())
	for _, rid := range result {
		out.Set(int(rid))
	}
	return out, Cost{Method: RIDMerge, BytesRead: bytes, Rows: len(result)}, nil
}

func intersectSorted(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// evalBitmapPred evaluates one predicate through the column's bitmap
// index, honoring opt.Parallel (segmented evaluation) and accounting
// stats into st.
func (r *Relation) evalBitmapPred(p Pred, opt *SelectOptions, st *core.Stats) (*bitvec.Vector, error) {
	c, _ := r.Column(p.Col)
	if c.bitmap == nil {
		return nil, fmt.Errorf("engine: column %q has no bitmap index", p.Col)
	}
	rop, rank, all, none, err := translateChecked(c, p)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	scans0 := st.Scans
	if opt.Workload != nil {
		t0 = time.Now()
	}
	var res *bitvec.Vector
	cls := workload.ClassOf(p.Op)
	switch {
	case none:
		res = bitvec.New(r.Rows())
	case all:
		res = bitvec.NewOnes(r.Rows())
	case opt.Parallel:
		cls = workload.ClassOf(rop)
		res = c.bitmap.SegmentedEval(rop, rank, &core.EvalOptions{Stats: st, Trace: opt.Trace}, opt.segConfig())
	default:
		cls = workload.ClassOf(rop)
		res = c.bitmap.Eval(rop, rank, &core.EvalOptions{Stats: st, Trace: opt.Trace})
	}
	if opt.Workload != nil {
		opt.Workload.Observe(workload.Event{
			Attr:    p.Col,
			Class:   cls,
			Value:   rank,
			Matches: -1,
			Scans:   st.Scans - scans0,
			NS:      time.Since(t0).Nanoseconds(),
		})
	}
	return res, nil
}

func (r *Relation) bitmapMerge(preds []Pred, opt *SelectOptions) (*bitvec.Vector, Cost, error) {
	tr := opt.Trace
	bitmapBytes := int64((r.Rows() + 7) / 8)
	var out *bitvec.Vector
	var bytes int64
	var st core.Stats
	for _, p := range preds {
		before := st
		var t0 time.Time
		if opt.perPred != nil {
			t0 = time.Now()
		}
		res, err := r.evalBitmapPred(p, opt, &st)
		if err != nil {
			return nil, Cost{}, err
		}
		if opt.perPred != nil {
			*opt.perPred = append(*opt.perPred,
				predActual{Scans: st.Scans - before.Scans, NS: time.Since(t0).Nanoseconds()})
		}
		bytes += int64(st.Scans-before.Scans) * bitmapBytes
		if out == nil {
			out = res
		} else {
			// The cross-predicate AND is a bitmap operation too; count it
			// so plan-level Stats cover all CPU work, not just the
			// per-index evaluations.
			sp := tr.Start(telemetry.PhaseBoolOps)
			out.And(res)
			sp.End()
			st.Ands++
		}
	}
	return out, Cost{Method: BitmapMerge, BytesRead: bytes, Rows: popcount(out, tr), Stats: st}, nil
}

// EstimateBytes predicts the bytes a plan would read, using exact index
// statistics (RID-list lengths) and the analytic bitmap scan model. It
// returns an error when the plan's required indexes are missing.
func (r *Relation) EstimateBytes(preds []Pred, m Method) (int64, error) {
	switch m {
	case FullScan:
		return int64(r.Rows()) * int64(r.RowBytes()), nil
	case IndexFilter:
		best := int64(math.MaxInt64)
		found := false
		for _, p := range preds {
			c, _ := r.Column(p.Col)
			if c.rids == nil {
				continue
			}
			n, idxBytes := r.ridStats(c, p)
			found = true
			if e := idxBytes + n*int64(r.RowBytes()); e < best {
				best = e
			}
		}
		if !found {
			return 0, fmt.Errorf("engine: no RID index for index-filter estimate")
		}
		return best, nil
	case RIDMerge:
		var total int64
		for _, p := range preds {
			c, _ := r.Column(p.Col)
			if c.rids == nil {
				return 0, fmt.Errorf("engine: column %q has no RID index", p.Col)
			}
			_, idxBytes := r.ridStats(c, p)
			total += idxBytes
		}
		return total, nil
	case BitmapMerge:
		bitmapBytes := int64((r.Rows() + 7) / 8)
		var total int64
		for _, p := range preds {
			c, _ := r.Column(p.Col)
			if c.bitmap == nil {
				return 0, fmt.Errorf("engine: column %q has no bitmap index", p.Col)
			}
			rop, rank, all, none := c.dict.Translate(p.Op, p.Val)
			if all || none {
				continue
			}
			var scans int
			if c.bitmap.Encoding() == core.RangeEncoded {
				scans = cost.ScansRange(c.bitmap.Base(), c.Card(), rop, rank)
			} else {
				scans = cost.ScansEquality(c.bitmap.Base(), c.Card(), rop, rank)
			}
			total += int64(scans) * bitmapBytes
		}
		return total, nil
	}
	return 0, fmt.Errorf("engine: cannot estimate method %v", m)
}

// auto runs the cheapest estimable plan; the estimation pass is traced as
// the plan phase.
func (r *Relation) auto(preds []Pred, opt *SelectOptions) (*bitvec.Vector, Cost, error) {
	best, err := r.pickPlan(preds, opt.Trace)
	if err != nil {
		return nil, Cost{}, err
	}
	return r.SelectOpts(preds, best, opt)
}

// pickPlan returns the method with the lowest estimated bytes read among
// the plans whose indexes exist; the estimation pass is traced as the plan
// phase.
func (r *Relation) pickPlan(preds []Pred, tr *telemetry.Trace) (Method, error) {
	sp := tr.Start(telemetry.PhasePlan)
	best := Method(0)
	bestBytes := int64(math.MaxInt64)
	found := false
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge} {
		e, err := r.EstimateBytes(preds, m)
		if err != nil {
			continue
		}
		if e < bestBytes {
			best, bestBytes, found = m, e, true
		}
	}
	sp.End()
	if !found {
		return 0, fmt.Errorf("engine: no executable plan")
	}
	return best, nil
}

// SelectCount evaluates the conjunction like SelectOpts but returns only
// the number of qualifying records, pushing the count into each plan:
// FullScan and IndexFilter count matches without building a result bitmap,
// RIDMerge counts the intersected list, and BitmapMerge fuses the final
// AND with the popcount (bitvec.AndCount) — with a single predicate and
// opt.Parallel set it counts segment-by-segment (core.SegmentedCount)
// without materializing any result vector at all. Costs report the same
// bytes as the materializing plans; Cost.Rows is the count. opt may be
// nil.
func (r *Relation) SelectCount(preds []Pred, m Method, opt *SelectOptions) (int, Cost, error) {
	if opt == nil {
		opt = &SelectOptions{}
	}
	if err := r.checkPreds(preds); err != nil {
		return 0, Cost{}, err
	}
	tr := opt.Trace
	var (
		n   int
		c   Cost
		err error
	)
	aB, aO := telemetry.ReadAllocs()
	t0 := time.Now()
	switch m {
	case FullScan:
		n, c, err = r.countFullScan(preds, tr)
	case IndexFilter:
		n, c, err = r.countIndexFilter(preds, tr)
	case RIDMerge:
		n, c, err = r.countRIDMerge(preds, tr)
	case BitmapMerge:
		n, c, err = r.countBitmapMerge(preds, opt)
	case Auto:
		best, perr := r.pickPlan(preds, tr)
		if perr != nil {
			return 0, Cost{}, perr
		}
		return r.SelectCount(preds, best, opt) // the recursive call accounts and records
	default:
		return 0, Cost{}, fmt.Errorf("engine: unknown method %v", m)
	}
	if err == nil {
		b, o := telemetry.ReadAllocs()
		c.AllocBytes, c.AllocObjects = b-aB, o-aO
		if int(c.Method) < len(plansTotal) {
			plansTotal[c.Method].Inc()
		}
		recordPlanFlight(preds, &c, time.Since(t0), tr)
	}
	return n, c, err
}

func (r *Relation) countFullScan(preds []Pred, tr *telemetry.Trace) (int, Cost, error) {
	sp := tr.Start(telemetry.PhaseFilter)
	cols := make([]*Column, len(preds))
	for i, p := range preds {
		cols[i], _ = r.Column(p.Col)
	}
	n := 0
	for row := 0; row < r.Rows(); row++ {
		ok := true
		for i, p := range preds {
			if !p.matches(cols[i], row) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	sp.End()
	return n, Cost{Method: FullScan, BytesRead: int64(r.Rows()) * int64(r.RowBytes()), Rows: n}, nil
}

func (r *Relation) countIndexFilter(preds []Pred, tr *telemetry.Trace) (int, Cost, error) {
	probe := tr.Start(telemetry.PhaseFetch)
	driver := -1
	var driverRIDs []uint32
	var driverBytes int64
	for i, p := range preds {
		c, _ := r.Column(p.Col)
		if c.rids == nil {
			continue
		}
		rids, bytes, err := r.ridsFor(p)
		if err != nil {
			probe.End()
			return 0, Cost{}, err
		}
		if driver < 0 || len(rids) < len(driverRIDs) {
			driver, driverRIDs, driverBytes = i, rids, bytes
		}
	}
	probe.End()
	if driver < 0 {
		return 0, Cost{}, fmt.Errorf("engine: no RID index available for index-filter plan")
	}
	sp := tr.Start(telemetry.PhaseFilter)
	cols := make([]*Column, len(preds))
	for i, p := range preds {
		cols[i], _ = r.Column(p.Col)
	}
	// Per-value RID lists are disjoint, so the driver list has no
	// duplicates and counting candidates equals counting result bits.
	n := 0
	for _, rid := range driverRIDs {
		ok := true
		for i, p := range preds {
			if i == driver {
				continue
			}
			if !p.matches(cols[i], int(rid)) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	sp.End()
	cost := Cost{
		Method:    IndexFilter,
		BytesRead: driverBytes + int64(len(driverRIDs))*int64(r.RowBytes()),
		Rows:      n,
	}
	return n, cost, nil
}

func (r *Relation) countRIDMerge(preds []Pred, tr *telemetry.Trace) (int, Cost, error) {
	var result []uint32
	var bytes int64
	for i, p := range preds {
		probe := tr.Start(telemetry.PhaseFetch)
		rids, b, err := r.ridsFor(p)
		probe.End()
		if err != nil {
			return 0, Cost{}, err
		}
		bytes += b
		if i == 0 {
			result = rids
			continue
		}
		sp := tr.Start(telemetry.PhaseFilter)
		result = intersectSorted(result, rids)
		sp.End()
	}
	return len(result), Cost{Method: RIDMerge, BytesRead: bytes, Rows: len(result)}, nil
}

func (r *Relation) countBitmapMerge(preds []Pred, opt *SelectOptions) (int, Cost, error) {
	tr := opt.Trace
	bitmapBytes := int64((r.Rows() + 7) / 8)
	var st core.Stats

	// Single predicate: count straight off the evaluator. With Parallel
	// set, no result vector is materialized at all.
	if len(preds) == 1 {
		p := preds[0]
		c, _ := r.Column(p.Col)
		if c.bitmap == nil {
			return 0, Cost{}, fmt.Errorf("engine: column %q has no bitmap index", p.Col)
		}
		rop, rank, all, none, err := translateChecked(c, p)
		if err != nil {
			return 0, Cost{}, err
		}
		t0 := time.Now()
		var n int
		cls := workload.ClassOf(p.Op)
		switch {
		case none:
			n = 0
		case all:
			n = r.Rows()
		case opt.Parallel:
			cls = workload.ClassOf(rop)
			n = c.bitmap.SegmentedCount(rop, rank, &core.EvalOptions{Stats: &st, Trace: tr}, opt.segConfig())
		default:
			cls = workload.ClassOf(rop)
			n = popcount(c.bitmap.Eval(rop, rank, &core.EvalOptions{Stats: &st, Trace: tr}), tr)
		}
		if opt.perPred != nil {
			*opt.perPred = append(*opt.perPred,
				predActual{Scans: st.Scans, NS: time.Since(t0).Nanoseconds()})
		}
		if opt.Workload != nil {
			opt.Workload.Observe(workload.Event{Attr: p.Col, Class: cls, Value: rank,
				Matches: n, Rows: r.Rows(), Scans: st.Scans, NS: time.Since(t0).Nanoseconds()})
		}
		bytes := int64(st.Scans) * bitmapBytes
		return n, Cost{Method: BitmapMerge, BytesRead: bytes, Rows: n, Stats: st}, nil
	}

	// Multi-predicate: materialize the running AND for all but the last
	// predicate, then fuse the final AND with the popcount so the result
	// vector of the conjunction is never written.
	var out *bitvec.Vector
	var bytes int64
	n := 0
	for k, p := range preds {
		before := st
		var t0 time.Time
		if opt.perPred != nil {
			t0 = time.Now()
		}
		res, err := r.evalBitmapPred(p, opt, &st)
		if err != nil {
			return 0, Cost{}, err
		}
		if opt.perPred != nil {
			*opt.perPred = append(*opt.perPred,
				predActual{Scans: st.Scans - before.Scans, NS: time.Since(t0).Nanoseconds()})
		}
		bytes += int64(st.Scans-before.Scans) * bitmapBytes
		switch {
		case out == nil:
			out = res
		case k == len(preds)-1:
			sp := tr.Start(telemetry.PhasePopcount)
			n = bitvec.AndCount(out, res)
			sp.End()
			st.Ands++
		default:
			sp := tr.Start(telemetry.PhaseBoolOps)
			out.And(res)
			sp.End()
			st.Ands++
		}
	}
	return n, Cost{Method: BitmapMerge, BytesRead: bytes, Rows: n, Stats: st}, nil
}

// ridStats returns the matching-row count and index bytes for a predicate
// from the RID index without materializing the lists.
func (r *Relation) ridStats(c *Column, p Pred) (nRows, idxBytes int64) {
	rop, rank, all, none := c.dict.Translate(p.Op, p.Val)
	if none {
		return 0, 0
	}
	for v := uint64(0); v < c.Card(); v++ {
		if all || rop.Matches(v, rank) {
			n := int64(len(c.rids[v]))
			nRows += n
			idxBytes += n * RIDBytes
		}
	}
	return nRows, idxBytes
}

// Explain renders the optimizer's view of a conjunctive selection: the
// estimated bytes for every applicable plan and which one Auto would run.
func (r *Relation) Explain(preds []Pred) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "select %v from %s (%d rows)\n", preds, r.Name, r.Rows())
	best := Method(0)
	bestBytes := int64(math.MaxInt64)
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge} {
		e, err := r.EstimateBytes(preds, m)
		if err != nil {
			fmt.Fprintf(&sb, "  %-16s unavailable: %v\n", m, err)
			continue
		}
		fmt.Fprintf(&sb, "  %-16s ~%d bytes\n", m, e)
		if e < bestBytes {
			best, bestBytes = m, e
		}
	}
	if bestBytes < int64(math.MaxInt64) {
		fmt.Fprintf(&sb, "  -> auto picks %v\n", best)
	} else {
		sb.WriteString("  -> no executable plan\n")
	}
	return sb.String()
}
