package engine

import (
	"math/rand"
	"strings"
	"testing"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/design"
)

func TestDictRoundTrip(t *testing.T) {
	raw := []int64{500, -3, 500, 42, 0, -3, 99}
	d, ranks := NewDict(raw)
	if d.Card() != 5 {
		t.Fatalf("Card = %d, want 5", d.Card())
	}
	for i, v := range raw {
		if d.Value(ranks[i]) != v {
			t.Fatalf("row %d: rank %d maps back to %d, want %d", i, ranks[i], d.Value(ranks[i]), v)
		}
	}
	// Ranks preserve order.
	for r := uint64(1); r < d.Card(); r++ {
		if d.Value(r-1) >= d.Value(r) {
			t.Fatal("dictionary not sorted")
		}
	}
	if _, ok := d.Rank(123456); ok {
		t.Fatal("absent value must not have a rank")
	}
	if r, ok := d.Rank(-3); !ok || r != 0 {
		t.Fatalf("Rank(-3) = %d,%v", r, ok)
	}
}

func TestDictTranslateExhaustive(t *testing.T) {
	raw := []int64{10, 20, 20, 30, 50}
	d, ranks := NewDict(raw)
	// For every op and constants around/between the values, translating
	// then evaluating in rank space must equal evaluating in raw space.
	for _, op := range core.AllOps {
		for c := int64(5); c <= 55; c++ {
			rop, rank, all, none := d.Translate(op, c)
			for i, v := range raw {
				want := core.Op.Matches(op, uint64(v+100), uint64(c+100)) // shift to stay unsigned
				var got bool
				switch {
				case none:
					got = false
				case all:
					got = true
				default:
					got = rop.Matches(ranks[i], rank)
				}
				if got != want {
					t.Fatalf("op %s c=%d row %d (v=%d): got %v want %v (rop=%s rank=%d all=%v none=%v)",
						op, c, i, v, got, want, rop, rank, all, none)
				}
			}
		}
	}
}

func buildRelation(t *testing.T, n int, seed int64) *Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	qty := make([]int64, n)
	price := make([]int64, n)
	region := make([]int64, n)
	for i := 0; i < n; i++ {
		qty[i] = int64(r.Intn(50) + 1)
		price[i] = int64(r.Intn(1000)) * 5
		region[i] = int64(r.Intn(8))
	}
	rel := NewRelation("lineitem")
	for name, col := range map[string][]int64{"quantity": qty, "price": price, "region": region} {
		c, err := rel.AddInt64(name, col)
		if err != nil {
			t.Fatal(err)
		}
		c.BuildRIDIndex()
		knee, err := design.Knee(c.Card())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BuildBitmapIndex(knee, core.RangeEncoded); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// TestAllPlansAgree is the engine's keystone test: every plan returns the
// same result bitmap for a battery of conjunctive selections.
func TestAllPlansAgree(t *testing.T) {
	rel := buildRelation(t, 3000, 1)
	queries := [][]Pred{
		{{Col: "quantity", Op: core.Le, Val: 10}},
		{{Col: "quantity", Op: core.Gt, Val: 45}, {Col: "region", Op: core.Eq, Val: 3}},
		{{Col: "price", Op: core.Ge, Val: 2500}, {Col: "quantity", Op: core.Lt, Val: 25}},
		{{Col: "price", Op: core.Lt, Val: 3}, {Col: "region", Op: core.Ne, Val: 0}},
		{{Col: "quantity", Op: core.Eq, Val: 7}, {Col: "price", Op: core.Le, Val: 4000}, {Col: "region", Op: core.Ge, Val: 2}},
		{{Col: "quantity", Op: core.Eq, Val: 999}}, // absent constant
	}
	for qi, preds := range queries {
		var ref *bitvec.Vector
		for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge, Auto} {
			got, cost, err := rel.Select(preds, m)
			if err != nil {
				t.Fatalf("query %d method %v: %v", qi, m, err)
			}
			if cost.Rows != got.Count() {
				t.Fatalf("query %d method %v: cost.Rows %d != result %d", qi, m, cost.Rows, got.Count())
			}
			if ref == nil {
				ref = got
				continue
			}
			if !got.Equal(ref) {
				t.Fatalf("query %d: method %v disagrees with full scan", qi, m)
			}
		}
	}
}

// TestIntroCostCrossover reproduces the paper's Section 1 analysis: for a
// one-bitmap-per-predicate equality query, the bitmap plan reads fewer
// bytes than the RID plan iff the result fraction exceeds about 1/32.
func TestIntroCostCrossover(t *testing.T) {
	n := 64000
	rel := NewRelation("r")
	// A column engineered so value v selects exactly (v+1)/64 of the rows.
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i * 64 / n) // uniform over 0..63
	}
	c, err := rel.AddRanked("a", vals, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.BuildRIDIndex()
	if err := c.BuildBitmapIndex(nil, core.EqualityEncoded); err != nil {
		t.Fatal(err)
	}
	bitmapBytes := int64((n + 7) / 8)
	for v := int64(0); v < 64; v++ {
		preds := []Pred{{Col: "a", Op: core.Eq, Val: v}}
		_, ridCost, err := rel.Select(preds, RIDMerge)
		if err != nil {
			t.Fatal(err)
		}
		_, bmCost, err := rel.Select(preds, BitmapMerge)
		if err != nil {
			t.Fatal(err)
		}
		if bmCost.BytesRead != bitmapBytes {
			t.Fatalf("v=%d: bitmap plan read %d bytes, want one bitmap (%d)", v, bmCost.BytesRead, bitmapBytes)
		}
		sel := float64(ridCost.Rows) / float64(n)
		bitmapWins := bmCost.BytesRead <= ridCost.BytesRead
		// n/N >= 1/32  <=>  4n >= N/8.
		wantWin := sel >= 1.0/32
		if bitmapWins != wantWin {
			t.Errorf("selectivity %.4f: bitmapWins=%v, analysis says %v (bm %d vs rid %d bytes)",
				sel, bitmapWins, wantWin, bmCost.BytesRead, ridCost.BytesRead)
		}
	}
}

func TestAutoPicksCheapest(t *testing.T) {
	rel := buildRelation(t, 5000, 2)
	preds := []Pred{{Col: "quantity", Op: core.Le, Val: 40}, {Col: "region", Op: core.Ne, Val: 7}}
	_, autoCost, err := rel.Select(preds, Auto)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge} {
		est, err := rel.EstimateBytes(preds, m)
		if err != nil {
			continue
		}
		_, c, err := rel.Select(preds, m)
		if err != nil {
			t.Fatal(err)
		}
		// Estimates must equal the measured bytes for the deterministic
		// plans (FullScan, RIDMerge, BitmapMerge).
		if m != IndexFilter && est != c.BytesRead {
			t.Errorf("method %v: estimate %d != measured %d", m, est, c.BytesRead)
		}
		if autoCost.BytesRead > c.BytesRead {
			t.Errorf("auto (%v, %d bytes) beaten by %v (%d bytes)", autoCost.Method, autoCost.BytesRead, m, c.BytesRead)
		}
	}
}

func TestRelationErrors(t *testing.T) {
	rel := NewRelation("r")
	if _, err := rel.AddInt64("a", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.AddInt64("a", []int64{1, 2, 3}); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := rel.AddInt64("b", []int64{1}); err == nil {
		t.Error("row count mismatch must fail")
	}
	if _, err := rel.Column("nope"); err == nil {
		t.Error("missing column must fail")
	}
	if _, _, err := rel.Select(nil, FullScan); err == nil {
		t.Error("empty predicate list must fail")
	}
	if _, _, err := rel.Select([]Pred{{Col: "zzz", Op: core.Eq, Val: 1}}, FullScan); err == nil {
		t.Error("unknown column in predicate must fail")
	}
	// Plans that need indexes fail without them.
	if _, _, err := rel.Select([]Pred{{Col: "a", Op: core.Eq, Val: 1}}, RIDMerge); err == nil {
		t.Error("RIDMerge without RID index must fail")
	}
	if _, _, err := rel.Select([]Pred{{Col: "a", Op: core.Eq, Val: 1}}, BitmapMerge); err == nil {
		t.Error("BitmapMerge without bitmap index must fail")
	}
	if _, _, err := rel.Select([]Pred{{Col: "a", Op: core.Eq, Val: 1}}, IndexFilter); err == nil {
		t.Error("IndexFilter without any RID index must fail")
	}
	if _, err := rel.AddRanked("c", []uint64{5}, 4); err == nil {
		t.Error("AddRanked with out-of-range rank must fail")
	}
}

func TestRowBytes(t *testing.T) {
	rel := buildRelation(t, 100, 3)
	if rel.RowBytes() != 3*ColBytes {
		t.Fatalf("RowBytes = %d", rel.RowBytes())
	}
	if rel.Rows() != 100 {
		t.Fatalf("Rows = %d", rel.Rows())
	}
	if NewRelation("x").Rows() != 0 {
		t.Fatal("empty relation Rows != 0")
	}
}

func TestSortRIDs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(500)
		rids := make([]uint32, n)
		for i := range rids {
			rids[i] = uint32(r.Intn(1000))
		}
		sortRIDs(rids)
		for i := 1; i < len(rids); i++ {
			if rids[i] < rids[i-1] {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge, Auto} {
		if m.String() == "" {
			t.Fatal("empty method name")
		}
	}
	if _, _, err := buildRelation(t, 10, 5).Select([]Pred{{Col: "quantity", Op: core.Eq, Val: 1}}, Method(42)); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestDictSerializationRoundTrip(t *testing.T) {
	d, _ := NewDict([]int64{5, -2, 9, 5, 0})
	vals := d.Values()
	d2, err := DictFromValues(vals)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Card() != d.Card() {
		t.Fatal("cardinality changed")
	}
	for r := uint64(0); r < d.Card(); r++ {
		if d.Value(r) != d2.Value(r) {
			t.Fatalf("rank %d differs", r)
		}
	}
	// Mutating the copy must not affect the dictionary.
	vals[0] = 999
	if d.Value(0) == 999 {
		t.Fatal("Values leaked internal state")
	}
	if _, err := DictFromValues([]int64{1, 1}); err == nil {
		t.Fatal("duplicate values must fail")
	}
	if _, err := DictFromValues([]int64{2, 1}); err == nil {
		t.Fatal("unsorted values must fail")
	}
}

func TestExplain(t *testing.T) {
	rel := buildRelation(t, 1000, 14)
	preds := []Pred{{Col: "quantity", Op: core.Le, Val: 30}}
	out := rel.Explain(preds)
	for _, want := range []string{"P1-fullscan", "P3-bitmapmerge", "-> auto picks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// Without any index only the full scan shows as available.
	rel2 := NewRelation("bare")
	if _, err := rel2.AddInt64("a", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	out = rel2.Explain([]Pred{{Col: "a", Op: core.Eq, Val: 1}})
	if !strings.Contains(out, "unavailable") {
		t.Fatalf("Explain should mark index plans unavailable:\n%s", out)
	}
}
