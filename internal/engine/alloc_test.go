package engine

import (
	"testing"

	"bitmapindex/internal/core"
)

// allocRows is sized so a result bitvec (rows/8 bytes) is a large heap
// object (>32KB). The runtime credits large allocations to the
// /gc/heap/allocs counters immediately, while small-object counts are only
// flushed at span refills — so only plans that materialize large vectors
// have a delta the test can assert deterministically.
const allocRows = 300_000

// TestSelectReportsAllocDeltas checks plan execution accounts its heap
// allocations into the cost: a materializing plan over allocRows rows
// necessarily allocates at least its result vector.
func TestSelectReportsAllocDeltas(t *testing.T) {
	rel := buildRelation(t, allocRows, 7)
	preds := []Pred{{Col: "quantity", Op: core.Le, Val: 25}}
	for _, m := range []Method{FullScan, BitmapMerge} {
		_, c, err := rel.Select(preds, m)
		if err != nil {
			t.Fatal(err)
		}
		if c.AllocBytes < allocRows/8 || c.AllocObjects <= 0 {
			t.Errorf("method %v: alloc delta %d bytes / %d objects, below the %d-byte result-vector floor",
				m, c.AllocBytes, c.AllocObjects, allocRows/8)
		}
	}
}

// TestAutoSelectAccountsAllocs checks the Auto dispatch reaches the
// concrete plan's accounting rather than returning zeros. The count path
// uses two predicates so at least one intermediate bitmap must
// materialize even with the fused count pushdown.
func TestAutoSelectAccountsAllocs(t *testing.T) {
	rel := buildRelation(t, allocRows, 7)
	preds := []Pred{
		{Col: "quantity", Op: core.Ge, Val: 40},
		{Col: "region", Op: core.Le, Val: 5},
	}
	_, c, err := rel.Select(preds, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if c.AllocBytes < allocRows/8 {
		t.Errorf("auto plan alloc delta %d bytes, below the %d-byte result-vector floor",
			c.AllocBytes, allocRows/8)
	}
	n, cc, err := rel.SelectCount(preds, BitmapMerge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.Rows {
		t.Fatalf("count %d != select rows %d", n, c.Rows)
	}
	if cc.AllocBytes < allocRows/8 {
		t.Errorf("fused count alloc delta %d bytes, below the %d-byte intermediate floor",
			cc.AllocBytes, allocRows/8)
	}
}
