package engine

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
)

// TestExplainAnalyzeExactScans is the acceptance pin for the scan model:
// on the bitmap plan with serial evaluators, predicted scans equal
// measured scans exactly — per predicate and for the whole plan — so
// every relative error is zero.
func TestExplainAnalyzeExactScans(t *testing.T) {
	rel := buildRelation(t, 3000, 1)
	queries := [][]Pred{
		{{Col: "quantity", Op: core.Le, Val: 10}},
		{{Col: "quantity", Op: core.Gt, Val: 45}, {Col: "region", Op: core.Eq, Val: 3}},
		{{Col: "price", Op: core.Ge, Val: 2500}, {Col: "quantity", Op: core.Lt, Val: 25}},
		{{Col: "quantity", Op: core.Eq, Val: 7}, {Col: "price", Op: core.Le, Val: 4000}, {Col: "region", Op: core.Ge, Val: 2}},
		{{Col: "quantity", Op: core.Eq, Val: 999}}, // absent constant -> trivial none
	}
	before := telemetry.CostModelErrorScans.Count()
	for qi, preds := range queries {
		rep, err := rel.ExplainAnalyze(preds, BitmapMerge, nil)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if !rep.ModelApplies || rep.Method != "P3-bitmapmerge" {
			t.Fatalf("query %d: model_applies=%v method=%s", qi, rep.ModelApplies, rep.Method)
		}
		if rep.ScansError != 0 {
			t.Errorf("query %d: plan scans error %v (predicted %d, measured %d)",
				qi, rep.ScansError, rep.PredictedScans, rep.MeasuredScans)
		}
		if len(rep.Preds) != len(preds) {
			t.Fatalf("query %d: %d pred nodes for %d preds", qi, len(rep.Preds), len(preds))
		}
		for i, node := range rep.Preds {
			if node.ScansError != 0 {
				t.Errorf("query %d pred %d (%s): scans error %v (predicted %d, measured %d)",
					qi, i, node.Pred, node.ScansError, node.PredictedScans, node.MeasuredScans)
			}
			if node.Encoding != "range" || node.SpaceBitmaps == 0 {
				t.Errorf("query %d pred %d: design fields = %+v", qi, i, node)
			}
		}
		// Cross-check the reported actuals against a plain Select.
		_, c, err := rel.Select(preds, BitmapMerge)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rows != c.Rows || rep.MeasuredScans != c.Stats.Scans {
			t.Errorf("query %d: report rows/scans %d/%d, Select measured %d/%d",
				qi, rep.Rows, rep.MeasuredScans, c.Rows, c.Stats.Scans)
		}
	}
	if got := telemetry.CostModelErrorScans.Count() - before; got != int64(len(queries)) {
		t.Errorf("scan-error histogram grew by %d, want %d", got, len(queries))
	}
}

// TestExplainAnalyzeTrivialPredicate pins the degenerate-constant paths:
// a constant below the whole dictionary matches everything (zero scans,
// predicted and measured agree) and one above it under Eq matches nothing
// (the dictionary flags it trivial-none).
func TestExplainAnalyzeTrivialPredicate(t *testing.T) {
	rel := buildRelation(t, 500, 3)
	rep, err := rel.ExplainAnalyze([]Pred{{Col: "region", Op: core.Ge, Val: -5}}, BitmapMerge, nil)
	if err != nil {
		t.Fatal(err)
	}
	node := rep.Preds[0]
	if node.PredictedScans != 0 || node.MeasuredScans != 0 || node.ScansError != 0 {
		t.Fatalf("match-all node = %+v", node)
	}
	if rep.Rows != 500 {
		t.Fatalf("rows = %d, want all 500", rep.Rows)
	}

	rep, err = rel.ExplainAnalyze([]Pred{{Col: "region", Op: core.Eq, Val: 999}}, BitmapMerge, nil)
	if err != nil {
		t.Fatal(err)
	}
	node = rep.Preds[0]
	if node.Trivial != "none" || node.PredictedScans != 0 || node.MeasuredScans != 0 {
		t.Fatalf("match-none node = %+v", node)
	}
	if rep.Rows != 0 {
		t.Fatalf("rows = %d, want 0", rep.Rows)
	}
}

// TestExplainAnalyzeTimeCalibration checks the live time model: after one
// analyzed query seeds the ns-per-scan EWMA, subsequent reports carry a
// prediction and a non-negative out-of-sample error.
func TestExplainAnalyzeTimeCalibration(t *testing.T) {
	rel := buildRelation(t, 2000, 5)
	preds := []Pred{{Col: "price", Op: core.Le, Val: 2000}}
	if _, err := rel.ExplainAnalyze(preds, BitmapMerge, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := rel.ExplainAnalyze(preds, BitmapMerge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PredictedNS <= 0 || rep.TimeError < 0 {
		t.Fatalf("calibrated report: predicted_ns=%v time_error=%v", rep.PredictedNS, rep.TimeError)
	}
}

// TestExplainAnalyzeNonBitmapPlan checks plans that never read a stored
// bitmap do not claim (or pollute) model accuracy.
func TestExplainAnalyzeNonBitmapPlan(t *testing.T) {
	rel := buildRelation(t, 500, 7)
	before := telemetry.CostModelErrorScans.Count()
	rep, err := rel.ExplainAnalyze([]Pred{{Col: "quantity", Op: core.Le, Val: 10}}, FullScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelApplies || rep.Method != "P1-fullscan" {
		t.Fatalf("fullscan report: %+v", rep)
	}
	if rep.PredictedScans == 0 {
		t.Error("prediction nodes should still carry the model's scans")
	}
	if rep.MeasuredScans != 0 {
		t.Errorf("fullscan measured %d scans", rep.MeasuredScans)
	}
	if telemetry.CostModelErrorScans.Count() != before {
		t.Error("non-bitmap plan recorded model error")
	}
}

// TestExplainAnalyzeJSON checks the report marshals with the documented
// field names (the wire contract of /query?analyze=1).
func TestExplainAnalyzeJSON(t *testing.T) {
	rel := buildRelation(t, 500, 9)
	rep, err := rel.ExplainAnalyze([]Pred{{Col: "region", Op: core.Eq, Val: 3}}, Auto, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"query"`, `"method"`, `"trace_id"`, `"predicted_scans"`,
		`"measured_scans"`, `"scans_error"`, `"model_applies"`, `"preds"`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("report JSON missing %s: %s", want, raw)
		}
	}
}

// TestAnalyzeIndexQuery covers the single-index path the server uses:
// prediction is exact against the measured stats of a direct evaluation.
func TestAnalyzeIndexQuery(t *testing.T) {
	vals := []uint64{0, 3, 7, 11, 2, 9, 4, 0, 6, 1}
	ix, err := core.Build(vals, 12, core.Base{4, 3}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTrace("A <= 7")
	var st core.Stats
	t0 := time.Now()
	ix.Eval(core.Le, 7, &core.EvalOptions{Stats: &st, Trace: tr})
	rep := AnalyzeIndexQuery("A <= 7", "eval-range", ix.Base(), ix.Encoding(),
		ix.Cardinality(), core.Le, 7, st, time.Since(t0), tr)
	if !rep.ModelApplies || rep.ScansError != 0 || rep.MeasuredScans != st.Scans {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Preds[0].Base != "<3,4>" || rep.Preds[0].SpaceBitmaps == 0 {
		t.Fatalf("pred node = %+v", rep.Preds[0])
	}
}
