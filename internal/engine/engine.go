// Package engine is a miniature in-memory column-store: relations with
// integer columns, a value dictionary mapping arbitrary attribute values to
// the consecutive ranks the bitmap index requires, RID-list indexes, and
// the three query plans of the paper's introduction (P1 full scan, P2
// index-filter, P3 index-merge via RID lists or bitmaps) with byte-level
// I/O accounting. It is the substrate for reproducing the paper's Section 1
// cost analysis — bitmap merges beat RID-list merges once the query
// selects more than about 1/32 of the relation (with 4-byte RIDs) — and
// for the runnable examples.
package engine

import (
	"fmt"
	"sort"

	"bitmapindex/internal/core"
)

// RIDBytes is the assumed width of a record identifier, matching the
// paper's 4-byte RIDs.
const RIDBytes = 4

// ColBytes is the assumed stored width of one column value in a relation
// row, for scan cost accounting.
const ColBytes = 8

// Dict maps arbitrary int64 attribute values to consecutive ranks
// 0..Card-1, the domain bitmap indexes operate on (paper Section 2: "by
// mapping each actual attribute value to its rank via a lookup table").
type Dict struct {
	sorted []int64 // rank -> value
}

// NewDict builds a dictionary over the distinct values in raw and returns
// it along with the rank-mapped column.
func NewDict(raw []int64) (*Dict, []uint64) {
	uniq := make(map[int64]struct{}, len(raw))
	for _, v := range raw {
		uniq[v] = struct{}{}
	}
	d := &Dict{sorted: make([]int64, 0, len(uniq))}
	for v := range uniq {
		d.sorted = append(d.sorted, v)
	}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	ranks := make([]uint64, len(raw))
	for i, v := range raw {
		r, _ := d.Rank(v)
		ranks[i] = r
	}
	return d, ranks
}

// Card returns the number of distinct values (the attribute cardinality).
func (d *Dict) Card() uint64 { return uint64(len(d.sorted)) }

// Value returns the attribute value with the given rank.
func (d *Dict) Value(rank uint64) int64 { return d.sorted[rank] }

// Rank returns the rank of v and whether v is present.
func (d *Dict) Rank(v int64) (uint64, bool) {
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] >= v })
	if i < len(d.sorted) && d.sorted[i] == v {
		return uint64(i), true
	}
	return 0, false
}

// Translate rewrites the predicate (A op c) over raw attribute values into
// an equivalent predicate over ranks. The returned trivial flags handle
// constants outside or between dictionary values: when trivialAll is true
// every (non-null) record matches; when trivialNone is true none does.
//
// Because ranks preserve order, range predicates translate exactly even
// when c itself never occurs in the column.
func (d *Dict) Translate(op core.Op, c int64) (rop core.Op, rank uint64, trivialAll, trivialNone bool) {
	n := len(d.sorted)
	// lb = number of values < c; ub = number of values <= c.
	lb := sort.Search(n, func(i int) bool { return d.sorted[i] >= c })
	ub := sort.Search(n, func(i int) bool { return d.sorted[i] > c })
	present := lb < ub
	switch op {
	case core.Eq:
		if !present {
			return 0, 0, false, true
		}
		return core.Eq, uint64(lb), false, false
	case core.Ne:
		if !present {
			return 0, 0, true, false
		}
		return core.Ne, uint64(lb), false, false
	case core.Lt:
		if lb == 0 {
			return 0, 0, false, true
		}
		return core.Le, uint64(lb - 1), false, false
	case core.Le:
		if ub == 0 {
			return 0, 0, false, true
		}
		return core.Le, uint64(ub - 1), false, false
	case core.Gt:
		if ub == n {
			return 0, 0, false, true
		}
		return core.Ge, uint64(ub), false, false
	case core.Ge:
		if lb == n {
			return 0, 0, false, true
		}
		return core.Ge, uint64(lb), false, false
	}
	panic("engine: invalid op")
}

// Column is one attribute of a relation: rank values plus the dictionary,
// and optionally a bitmap index and/or a RID-list index.
type Column struct {
	Name  string
	dict  *Dict
	ranks []uint64

	bitmap *core.Index
	rids   map[uint64][]uint32
}

// Card returns the attribute cardinality.
func (c *Column) Card() uint64 { return c.dict.Card() }

// Dict returns the column's value dictionary.
func (c *Column) Dict() *Dict { return c.dict }

// Ranks exposes the rank-mapped values; callers must not mutate them.
func (c *Column) Ranks() []uint64 { return c.ranks }

// BitmapIndex returns the column's bitmap index, or nil.
func (c *Column) BitmapIndex() *core.Index { return c.bitmap }

// BuildBitmapIndex builds (or replaces) the column's bitmap index with the
// given base and encoding. A nil base selects the single-component base.
func (c *Column) BuildBitmapIndex(base core.Base, enc core.Encoding) error {
	if base == nil {
		base = core.SingleComponent(c.Card())
	}
	ix, err := core.Build(c.ranks, c.Card(), base, enc, nil)
	if err != nil {
		return err
	}
	c.bitmap = ix
	return nil
}

// BuildRIDIndex builds the column's RID-list index: for every rank, the
// sorted list of record ids holding it.
func (c *Column) BuildRIDIndex() {
	c.rids = make(map[uint64][]uint32, c.Card())
	for r, v := range c.ranks {
		c.rids[v] = append(c.rids[v], uint32(r))
	}
}

// Relation is a fixed-cardinality collection of columns.
type Relation struct {
	Name string
	rows int
	cols map[string]*Column
	// order preserves column addition order for row-width accounting.
	order []string
}

// NewRelation creates an empty relation.
func NewRelation(name string) *Relation {
	return &Relation{Name: name, rows: -1, cols: make(map[string]*Column)}
}

// AddInt64 adds a raw int64 column, dictionary-encoding it.
func (r *Relation) AddInt64(name string, raw []int64) (*Column, error) {
	d, ranks := NewDict(raw)
	return r.addColumn(name, d, ranks)
}

// AddRanked adds a column whose values are already consecutive ranks in
// [0, card); the dictionary is the identity.
func (r *Relation) AddRanked(name string, ranks []uint64, card uint64) (*Column, error) {
	d := &Dict{sorted: make([]int64, card)}
	for i := range d.sorted {
		d.sorted[i] = int64(i)
	}
	for i, v := range ranks {
		if v >= card {
			return nil, fmt.Errorf("engine: column %s row %d: rank %d out of range [0,%d)", name, i, v, card)
		}
	}
	return r.addColumn(name, d, append([]uint64(nil), ranks...))
}

func (r *Relation) addColumn(name string, d *Dict, ranks []uint64) (*Column, error) {
	if _, dup := r.cols[name]; dup {
		return nil, fmt.Errorf("engine: duplicate column %q", name)
	}
	if r.rows >= 0 && len(ranks) != r.rows {
		return nil, fmt.Errorf("engine: column %q has %d rows, relation has %d", name, len(ranks), r.rows)
	}
	r.rows = len(ranks)
	c := &Column{Name: name, dict: d, ranks: ranks}
	r.cols[name] = c
	r.order = append(r.order, name)
	return c, nil
}

// Rows returns the relation cardinality.
func (r *Relation) Rows() int {
	if r.rows < 0 {
		return 0
	}
	return r.rows
}

// Column returns the named column, or an error.
func (r *Relation) Column(name string) (*Column, error) {
	c, ok := r.cols[name]
	if !ok {
		return nil, fmt.Errorf("engine: relation %s has no column %q", r.Name, name)
	}
	return c, nil
}

// RowBytes returns the assumed width of one stored record.
func (r *Relation) RowBytes() int { return ColBytes * len(r.order) }

// Pred is a selection predicate over raw attribute values.
type Pred struct {
	Col string
	Op  core.Op
	Val int64
}

// String renders "col op val".
func (p Pred) String() string { return fmt.Sprintf("%s %s %d", p.Col, p.Op, p.Val) }

// matches evaluates the predicate against the raw value at row i.
func (p Pred) matches(c *Column, i int) bool {
	raw := c.dict.Value(c.ranks[i])
	// Compare in raw space: translate both sides to int64 comparison.
	switch p.Op {
	case core.Lt:
		return raw < p.Val
	case core.Le:
		return raw <= p.Val
	case core.Gt:
		return raw > p.Val
	case core.Ge:
		return raw >= p.Val
	case core.Eq:
		return raw == p.Val
	default:
		return raw != p.Val
	}
}

// Values returns a copy of the dictionary's sorted distinct values
// (rank order), for serialization.
func (d *Dict) Values() []int64 {
	return append([]int64(nil), d.sorted...)
}

// DictFromValues reconstructs a dictionary from its sorted distinct
// values (the Values output).
func DictFromValues(sorted []int64) (*Dict, error) {
	for i := 1; i < len(sorted); i++ {
		if sorted[i] <= sorted[i-1] {
			return nil, fmt.Errorf("engine: dictionary values not strictly increasing at %d", i)
		}
	}
	return &Dict{sorted: append([]int64(nil), sorted...)}, nil
}

// ColumnNames returns the column names in addition order.
func (r *Relation) ColumnNames() []string {
	return append([]string(nil), r.order...)
}
