package engine

import (
	"math"
	"sync"
	"time"

	"bitmapindex/internal/core"
	"bitmapindex/internal/cost"
	"bitmapindex/internal/telemetry"
)

// PlanReport is the structured EXPLAIN ANALYZE result: the cost model's
// predictions (scans from the paper's digit-level analysis, time from the
// live ns-per-scan calibration) side by side with the measured actuals of
// one real execution, plus the relative error per dimension. The report is
// JSON-marshalable; /query?analyze=1 and `bixstore query -analyze` return
// it verbatim.
//
// ModelApplies reports whether the executed plan exercised the bitmap cost
// model at all: only the bitmap-merge plan (and direct index evaluations)
// read stored bitmaps, so scan/time errors are recorded — both into the
// report and into the bix_cost_model_error_* histograms — only then.
// TimeError is -1 when the time model was not yet calibrated (the first
// analyzed query seeds the calibration; see predictNS).
type PlanReport struct {
	Query   string `json:"query"`
	Method  string `json:"method"`
	TraceID string `json:"trace_id,omitempty"`
	Rows    int    `json:"rows"`
	TotalNS int64  `json:"ns"`

	BytesRead    int64 `json:"bytes_read,omitempty"`
	EstBytesRead int64 `json:"est_bytes_read,omitempty"`

	ModelApplies   bool    `json:"model_applies"`
	PredictedScans int     `json:"predicted_scans"`
	MeasuredScans  int     `json:"measured_scans"`
	ScansError     float64 `json:"scans_error"`

	// MeasuredEvalNS is the bitmap-evaluation time alone (per-predicate
	// sums, excluding cross-predicate ANDs and popcounts), the quantity the
	// scan-proportional time model predicts.
	MeasuredEvalNS int64   `json:"measured_eval_ns,omitempty"`
	PredictedNS    float64 `json:"predicted_ns,omitempty"`
	TimeError      float64 `json:"time_error"`

	AllocBytes   int64 `json:"alloc_bytes,omitempty"`
	AllocObjects int64 `json:"alloc_objects,omitempty"`

	Preds  []PredReport            `json:"preds,omitempty"`
	Phases []telemetry.PhaseRecord `json:"phases,omitempty"`
}

// PredReport is one predicate's node in the plan tree: the index design
// that would serve it (encoding, base, stored-bitmap space), the model's
// predicted scans for exactly this predicate, and — when the executed plan
// evaluated the predicate through its bitmap index — the measured scans
// and time of that evaluation alone.
type PredReport struct {
	Pred         string `json:"pred"`
	Col          string `json:"col,omitempty"`
	Encoding     string `json:"encoding,omitempty"`
	Base         string `json:"base,omitempty"`
	SpaceBitmaps int    `json:"space_bitmaps,omitempty"`
	// Trivial marks predicates the dictionary resolves without touching
	// the index: "all" (every row matches) or "none".
	Trivial string `json:"trivial,omitempty"`

	PredictedScans int     `json:"predicted_scans"`
	MeasuredScans  int     `json:"measured_scans"`
	ScansError     float64 `json:"scans_error"`
	MeasuredNS     int64   `json:"measured_ns,omitempty"`
}

// calibration is the live ns-per-scan estimate behind the time model: an
// exponentially weighted moving average over analyzed executions, shared
// process-wide so every ExplainAnalyze refines it. Predictions are made
// with the value as of before the analyzed query updates it, so reported
// time errors are out-of-sample.
var calibration struct {
	mu        sync.Mutex
	nsPerScan float64 // 0 until the first analyzed query with scans
}

const calibrationAlpha = 0.2

// predictNS returns the predicted evaluation time for scans bitmap scans,
// or 0 when uncalibrated.
func predictNS(scans int) float64 {
	calibration.mu.Lock()
	defer calibration.mu.Unlock()
	return calibration.nsPerScan * float64(scans)
}

// calibrate folds one measured (scans, elapsed) pair into the EWMA.
func calibrate(scans int, ns int64) {
	if scans <= 0 || ns <= 0 {
		return
	}
	sample := float64(ns) / float64(scans)
	calibration.mu.Lock()
	if calibration.nsPerScan == 0 {
		calibration.nsPerScan = sample
	} else {
		calibration.nsPerScan = (1-calibrationAlpha)*calibration.nsPerScan +
			calibrationAlpha*sample
	}
	calibration.mu.Unlock()
}

// relErr is |predicted - measured| / max(measured, 1), the error measure
// of the bix_cost_model_error_* histograms.
func relErr(predicted, measured float64) float64 {
	denom := measured
	if denom < 1 {
		denom = 1
	}
	return math.Abs(predicted-measured) / denom
}

// ExplainAnalyze executes the conjunction with the given method (Auto
// resolves as usual) and returns a PlanReport comparing the paper's cost
// model against the measured execution. When the executed plan is the
// bitmap merge, predicted scans are exact for the serial evaluators (the
// digit-level model counts the very fetches the evaluator performs), and
// scan/time errors are also observed into the bix_cost_model_error_*
// histograms with the query's trace ID as exemplar. opt may be nil; a
// profiled trace is created when opt carries none, so the report's phase
// breakdown includes per-phase allocation deltas.
func (r *Relation) ExplainAnalyze(preds []Pred, m Method, opt *SelectOptions) (*PlanReport, error) {
	var o SelectOptions
	if opt != nil {
		o = *opt
	}
	query := predsSummary(preds)
	if o.Trace == nil {
		o.Trace = telemetry.NewTrace(query).Profile()
	}
	var actuals []predActual
	o.perPred = &actuals

	t0 := time.Now()
	_, c, err := r.SelectOpts(preds, m, &o)
	if err != nil {
		return nil, err
	}
	total := time.Since(t0)

	rep := &PlanReport{
		Query:   query,
		Method:  c.Method.String(),
		TraceID: o.Trace.ID(),
		Rows:    c.Rows,
		TotalNS: total.Nanoseconds(),

		BytesRead:     c.BytesRead,
		MeasuredScans: c.Stats.Scans,
		TimeError:     -1,

		AllocBytes:   c.AllocBytes,
		AllocObjects: c.AllocObjects,
		Phases:       o.Trace.Phases(),
	}
	if est, eerr := r.EstimateBytes(preds, c.Method); eerr == nil {
		rep.EstBytesRead = est
	}

	// Per-predicate prediction nodes, built from the dictionary-translated
	// predicate (the form the evaluator actually runs).
	rep.Preds = make([]PredReport, len(preds))
	for i, p := range preds {
		col, _ := r.Column(p.Col)
		node := PredReport{Pred: p.String(), Col: p.Col}
		if col.bitmap != nil {
			rop, rank, all, none := col.dict.Translate(p.Op, p.Val)
			node.Encoding = col.bitmap.Encoding().String()
			node.Base = col.bitmap.Base().String()
			node.SpaceBitmaps = cost.Space(col.bitmap.Base(), col.bitmap.Encoding())
			switch {
			case all:
				node.Trivial = "all"
			case none:
				node.Trivial = "none"
			default:
				node.PredictedScans = cost.ScansFor(
					col.bitmap.Base(), col.bitmap.Encoding(), col.Card(), rop, rank)
			}
			rep.PredictedScans += node.PredictedScans
		}
		rep.Preds[i] = node
	}

	// Measured per-predicate actuals exist only when the bitmap plan ran.
	if c.Method == BitmapMerge && len(actuals) == len(preds) {
		rep.ModelApplies = true
		var evalNS int64
		for i := range rep.Preds {
			rep.Preds[i].MeasuredScans = actuals[i].Scans
			rep.Preds[i].MeasuredNS = actuals[i].NS
			rep.Preds[i].ScansError = relErr(
				float64(rep.Preds[i].PredictedScans), float64(actuals[i].Scans))
			evalNS += actuals[i].NS
		}
		rep.MeasuredEvalNS = evalNS
		rep.ScansError = relErr(float64(rep.PredictedScans), float64(rep.MeasuredScans))
		if pred := predictNS(rep.PredictedScans); pred > 0 {
			rep.PredictedNS = pred
			rep.TimeError = relErr(pred, float64(evalNS))
		}
		recordModelError(rep, o.Trace)
		calibrate(rep.MeasuredScans, evalNS)
	}
	return rep, nil
}

// AnalyzeIndexQuery builds a single-node PlanReport for a direct index
// evaluation — the path bixstore's /query endpoint takes, where one stored
// index answers one predicate without a relation or plan choice. st and
// elapsed are the evaluation's measured stats and wall time; plan names
// the evaluator (e.g. "eval-range" or a storage Describe string). The
// same model-error histograms and time calibration are fed as for
// ExplainAnalyze.
func AnalyzeIndexQuery(query, plan string, base core.Base, enc core.Encoding, card uint64,
	op core.Op, v uint64, st core.Stats, elapsed time.Duration, tr *telemetry.Trace) *PlanReport {
	predicted := cost.ScansFor(base, enc, card, op, v)
	rep := &PlanReport{
		Query:   query,
		Method:  plan,
		TraceID: tr.ID(),
		Rows:    -1,
		TotalNS: elapsed.Nanoseconds(),

		ModelApplies:   true,
		PredictedScans: predicted,
		MeasuredScans:  st.Scans,
		ScansError:     relErr(float64(predicted), float64(st.Scans)),
		MeasuredEvalNS: elapsed.Nanoseconds(),
		TimeError:      -1,
		Phases:         tr.Phases(),

		Preds: []PredReport{{
			Pred:           query,
			Encoding:       enc.String(),
			Base:           base.String(),
			SpaceBitmaps:   cost.Space(base, enc),
			PredictedScans: predicted,
			MeasuredScans:  st.Scans,
			ScansError:     relErr(float64(predicted), float64(st.Scans)),
			MeasuredNS:     elapsed.Nanoseconds(),
		}},
	}
	if pred := predictNS(predicted); pred > 0 {
		rep.PredictedNS = pred
		rep.TimeError = relErr(pred, float64(elapsed.Nanoseconds()))
	}
	recordModelError(rep, tr)
	calibrate(st.Scans, elapsed.Nanoseconds())
	return rep
}

// recordModelError publishes a report's model errors to the registry so
// drift shows up on /metrics, tagging the bucket with the query's trace ID.
func recordModelError(rep *PlanReport, tr *telemetry.Trace) {
	telemetry.CostModelErrorScans.ObserveExemplar(rep.ScansError, tr.ID())
	if rep.TimeError >= 0 {
		telemetry.CostModelErrorTime.ObserveExemplar(rep.TimeError, tr.ID())
	}
}
