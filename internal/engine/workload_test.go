package engine

import (
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
	"bitmapindex/internal/workload"
)

// TestSelectFeedsWorkload: the bitmap-merge plans report one event per
// predicate into SelectOptions.Workload, for both the serial and the
// segmented evaluator and for the fused count path.
func TestSelectFeedsWorkload(t *testing.T) {
	rel := buildRelation(t, 2000, 5)
	var infos []workload.AttrInfo
	for _, name := range rel.ColumnNames() {
		c, _ := rel.Column(name)
		infos = append(infos, workload.AttrInfo{Name: name, Card: c.Card()})
	}
	wl := workload.NewWithRegistry(telemetry.New(), infos)

	preds := []Pred{
		{Col: "quantity", Op: core.Le, Val: 25},
		{Col: "region", Op: core.Eq, Val: 3},
	}
	for _, parallel := range []bool{false, true} {
		opt := &SelectOptions{Parallel: parallel, Workload: wl}
		if _, _, err := rel.SelectOpts(preds, BitmapMerge, opt); err != nil {
			t.Fatal(err)
		}
	}
	p := wl.Snapshot()
	byName := map[string]workload.AttrProfile{}
	for _, ap := range p.Attrs {
		byName[ap.Name] = ap
	}
	if got := byName["quantity"]; got.Range != 2 || got.Eq != 0 {
		t.Errorf("quantity counts = %d range / %d eq, want 2/0", got.Range, got.Eq)
	}
	if got := byName["region"]; got.Eq != 2 || got.Range != 0 {
		t.Errorf("region counts = %d eq / %d range, want 2/0", got.Eq, got.Range)
	}
	if byName["quantity"].Scans == 0 || byName["region"].Scans == 0 {
		t.Error("predicate scans not attributed")
	}
	if byName["price"].Queries() != 0 {
		t.Error("untouched attribute accumulated queries")
	}

	// The fused count path records the result cardinality (single
	// predicate counts straight off the evaluator).
	n, _, err := rel.SelectCount(preds[:1], BitmapMerge, &SelectOptions{Workload: wl})
	if err != nil {
		t.Fatal(err)
	}
	q := wl.Snapshot()
	for _, ap := range q.Attrs {
		if ap.Name != "quantity" {
			continue
		}
		if ap.Range != 3 {
			t.Errorf("quantity range count after count query = %d, want 3", ap.Range)
		}
		if n > 0 && sumHist(ap.Selectivity) == 0 {
			t.Error("count path did not record selectivity")
		}
	}
}

func sumHist(h []int64) int64 {
	var t int64
	for _, v := range h {
		t += v
	}
	return t
}
