package engine

import (
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
)

var parallelQueries = [][]Pred{
	{{Col: "quantity", Op: core.Le, Val: 10}},
	{{Col: "quantity", Op: core.Gt, Val: 45}, {Col: "region", Op: core.Eq, Val: 3}},
	{{Col: "price", Op: core.Ge, Val: 2500}, {Col: "quantity", Op: core.Lt, Val: 25}},
	{{Col: "quantity", Op: core.Eq, Val: 7}, {Col: "price", Op: core.Le, Val: 4000}, {Col: "region", Op: core.Ge, Val: 2}},
	{{Col: "quantity", Op: core.Eq, Val: 999}}, // absent constant
}

// noAllocs strips the run-dependent allocation deltas so cost comparisons
// pin only the deterministic accounting (bytes, rows, stats).
func noAllocs(c Cost) Cost {
	c.AllocBytes, c.AllocObjects = 0, 0
	return c
}

// TestSelectOptsParallelMatchesSerial pins the segmented bitmap plan to the
// serial one: same result bitmap, same stats, same bytes.
func TestSelectOptsParallelMatchesSerial(t *testing.T) {
	rel := buildRelation(t, 3000, 7)
	for qi, preds := range parallelQueries {
		want, wc, err := rel.Select(preds, BitmapMerge)
		if err != nil {
			t.Fatalf("query %d serial: %v", qi, err)
		}
		opt := &SelectOptions{Parallel: true, Workers: 3, SegBits: 10}
		got, gc, err := rel.SelectOpts(preds, BitmapMerge, opt)
		if err != nil {
			t.Fatalf("query %d parallel: %v", qi, err)
		}
		if !got.Equal(want) {
			t.Fatalf("query %d: parallel bitmap plan differs from serial", qi)
		}
		if noAllocs(gc) != noAllocs(wc) {
			t.Fatalf("query %d: parallel cost %+v != serial cost %+v", qi, gc, wc)
		}
	}
}

// TestSelectCountAllPlans checks the count pushdown of every plan against
// the materializing Select, with and without segment parallelism.
func TestSelectCountAllPlans(t *testing.T) {
	rel := buildRelation(t, 3000, 7)
	for qi, preds := range parallelQueries {
		want, _, err := rel.Select(preds, FullScan)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		wantN := want.Count()
		for _, m := range []Method{FullScan, IndexFilter, RIDMerge, BitmapMerge, Auto} {
			for _, opt := range []*SelectOptions{nil, {Parallel: true, Workers: 2, SegBits: 10}} {
				n, c, err := rel.SelectCount(preds, m, opt)
				if err != nil {
					t.Fatalf("query %d method %v: %v", qi, m, err)
				}
				if n != wantN {
					t.Fatalf("query %d method %v (opt=%+v): count %d, want %d", qi, m, opt, n, wantN)
				}
				if c.Rows != n {
					t.Fatalf("query %d method %v: cost.Rows %d != count %d", qi, m, c.Rows, n)
				}
			}
		}
	}
}

// TestSelectCountBitmapCostMatchesSelect checks that the fused bitmap count
// reports the same bytes and stats as the materializing plan (the pushdown
// is a CPU/memory optimization, not an accounting change).
func TestSelectCountBitmapCostMatchesSelect(t *testing.T) {
	rel := buildRelation(t, 3000, 7)
	for qi, preds := range parallelQueries {
		_, wc, err := rel.Select(preds, BitmapMerge)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		_, cc, err := rel.SelectCount(preds, BitmapMerge, nil)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if noAllocs(cc) != noAllocs(wc) {
			t.Fatalf("query %d: count cost %+v != select cost %+v", qi, cc, wc)
		}
	}
}

func TestSelectCountErrors(t *testing.T) {
	rel := buildRelation(t, 500, 1)
	if _, _, err := rel.SelectCount(nil, FullScan, nil); err == nil {
		t.Fatal("empty predicate list: want error")
	}
	if _, _, err := rel.SelectCount([]Pred{{Col: "nope", Op: core.Eq, Val: 1}}, FullScan, nil); err == nil {
		t.Fatal("unknown column: want error")
	}
	if _, _, err := rel.SelectCount([]Pred{{Col: "quantity", Op: core.Eq, Val: 1}}, Method(99), nil); err == nil {
		t.Fatal("unknown method: want error")
	}
	bare := NewRelation("bare")
	if _, err := bare.AddInt64("v", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.SelectCount([]Pred{{Col: "v", Op: core.Eq, Val: 1}}, BitmapMerge, nil); err == nil {
		t.Fatal("missing bitmap index: want error")
	}
	if _, _, err := bare.SelectCount([]Pred{{Col: "v", Op: core.Eq, Val: 1}}, IndexFilter, nil); err == nil {
		t.Fatal("missing RID index: want error")
	}
}

// TestSelectCountTracesSegments checks that the parallel count path records
// per-segment spans into the trace.
func TestSelectCountTracesSegments(t *testing.T) {
	rel := buildRelation(t, 3000, 7)
	tr := telemetry.NewTrace("count")
	opt := &SelectOptions{Trace: tr, Parallel: true, Workers: 2, SegBits: 10}
	if _, _, err := rel.SelectCount(parallelQueries[0], BitmapMerge, opt); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ph := range tr.Phases() {
		if ph.Phase == telemetry.PhaseSegments && ph.Calls > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("parallel SelectCount recorded no segment spans")
	}
}
