package core

import (
	"math/rand"
	"testing"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
)

// TestEvalCarriesPprofLabels is the attribution acceptance check: while a
// traced Eval runs, the evaluating goroutine must carry the pprof labels
// bix_query_id=<trace ID> / bix_phase=eval. The Fetch callback executes on
// that goroutine inside the labeled region, so reading the runtime's own
// label sets from there observes exactly what a CPU profile sample would.
func TestEvalCarriesPprofLabels(t *testing.T) {
	vals := make([]uint64, 4096)
	r := rand.New(rand.NewSource(3))
	for i := range vals {
		vals[i] = uint64(r.Intn(10))
	}
	ix, err := Build(vals, 10, Base{5, 2}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTrace("label-probe")
	var observed []profile.QueryLabel
	opt := &EvalOptions{
		Trace: tr,
		Fetch: func(comp, slot int) *bitvec.Vector {
			if observed == nil {
				observed = profile.ActiveQueryLabels()
			}
			return ix.StoredBitmap(comp, slot)
		},
	}
	ix.Eval(Le, 6, opt)
	found := false
	for _, ql := range observed {
		if ql.QueryID == tr.ID() && ql.Phase == "eval" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pprof labels not observed inside Eval: trace %q, saw %+v", tr.ID(), observed)
	}
	// Outside the evaluation the label must be gone again.
	for _, ql := range profile.ActiveQueryLabels() {
		if ql.QueryID == tr.ID() {
			t.Fatalf("label %+v leaked past Eval", ql)
		}
	}
}

// TestUntracedEvalRunsUnlabeled pins the nil-trace fast path: no trace, no
// labels, no label-set bookkeeping.
func TestUntracedEvalRunsUnlabeled(t *testing.T) {
	ix, err := Build([]uint64{0, 1, 2, 3}, 4, Base{4}, EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	var observed []profile.QueryLabel
	opt := &EvalOptions{
		Fetch: func(comp, slot int) *bitvec.Vector {
			observed = profile.ActiveQueryLabels()
			return ix.StoredBitmap(comp, slot)
		},
	}
	ix.Eval(Eq, 2, opt)
	for _, ql := range observed {
		if ql.Phase == "eval" {
			t.Fatalf("untraced Eval carried a label: %+v", ql)
		}
	}
}

// TestSegmentedTraceAggregatesSegments is the satellite check for
// per-segment skew visibility: the segments phase must record one call per
// segment with coherent min/max/sum aggregates.
func TestSegmentedTraceAggregatesSegments(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 3<<16 + 1 // several full segments plus a ragged tail at SegBits=12
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(r.Intn(20))
	}
	ix, err := Build(vals, 20, Base{5, 4}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SegConfig{SegBits: 12, Workers: 3}
	nwords := (n + 63) / 64
	segWords := 1 << (12 - 6)
	nseg := (nwords + segWords - 1) / segWords

	tr := telemetry.NewTrace("seg-agg")
	ix.SegmentedEval(Ge, 7, &EvalOptions{Trace: tr}, cfg)

	var rec *telemetry.PhaseRecord
	for _, ph := range tr.Phases() {
		if ph.Phase == telemetry.PhaseSegments {
			r := ph
			rec = &r
		}
	}
	if rec == nil {
		t.Fatal("no segments phase recorded")
	}
	if rec.Calls != nseg {
		t.Errorf("segments calls = %d, want one per segment (%d)", rec.Calls, nseg)
	}
	if rec.Min < 0 || rec.Max < rec.Min {
		t.Errorf("incoherent extremes: min %v max %v", rec.Min, rec.Max)
	}
	if rec.Duration < rec.Max {
		t.Errorf("sum %v < max %v", rec.Duration, rec.Max)
	}
}
