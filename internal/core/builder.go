package core

import "fmt"

// Builder accumulates a column row by row and builds the index in one
// shot, for loaders that stream records (the paper's DSS environment is
// read-mostly: indexes are rebuilt on batch loads rather than updated in
// place). The zero value is not usable; call NewBuilder.
type Builder struct {
	card   uint64
	base   Base
	enc    Encoding
	values []uint64
	nulls  []bool
	any    bool // any null seen
	built  bool
}

// NewBuilder prepares an index build with the given design. The base and
// encoding are validated immediately so configuration errors surface
// before any data is loaded.
func NewBuilder(card uint64, base Base, enc Encoding) (*Builder, error) {
	if card < 1 {
		return nil, fmt.Errorf("core: cardinality must be >= 1, got %d", card)
	}
	if err := base.Validate(card); err != nil {
		return nil, err
	}
	switch enc {
	case EqualityEncoded, RangeEncoded, IntervalEncoded:
	default:
		return nil, fmt.Errorf("core: unknown encoding %v", enc)
	}
	return &Builder{card: card, base: base.Clone(), enc: enc}, nil
}

// Add appends one value; it must be in [0, cardinality).
func (b *Builder) Add(v uint64) error {
	if b.built {
		return fmt.Errorf("core: builder already built")
	}
	if v >= b.card {
		return fmt.Errorf("%w: value %d at row %d, cardinality %d", ErrValueOutOfRange, v, len(b.values), b.card)
	}
	b.values = append(b.values, v)
	b.nulls = append(b.nulls, false)
	return nil
}

// AddNull appends one null row.
func (b *Builder) AddNull() error {
	if b.built {
		return fmt.Errorf("core: builder already built")
	}
	b.values = append(b.values, 0)
	b.nulls = append(b.nulls, true)
	b.any = true
	return nil
}

// Rows returns the number of rows accumulated so far.
func (b *Builder) Rows() int { return len(b.values) }

// Build constructs the index over everything added. The builder cannot be
// reused afterwards.
func (b *Builder) Build() (*Index, error) {
	if b.built {
		return nil, fmt.Errorf("core: builder already built")
	}
	b.built = true
	var opts *BuildOptions
	if b.any {
		opts = &BuildOptions{Nulls: b.nulls}
	}
	return Build(b.values, b.card, b.base, b.enc, opts)
}
