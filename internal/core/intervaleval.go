package core

import "bitmapindex/internal/bitvec"

// Interval encoding is the third encoding scheme, included as an extension
// beyond the paper's two (the same group's follow-up work): component i
// stores m_i = ceil(b_i/2) bitmaps, where window bitmap I_i^j marks
// records whose digit lies in [j, j+m_i-1]. Any single-digit comparison is
// then answerable from at most two stored bitmaps:
//
//	digit = d:   I^d AND NOT I^{d+1}              (d < m-1)
//	             I^{m-1} AND I^0                  (d = m-1)
//	             I^{d-m+1} AND NOT I^{d-m}        (m <= d <= 2m-2)
//	             NOT (I^0 OR I^{m-1})             (d = 2m-1, even b only)
//	digit <= w:  I^0 AND NOT I^{w+1}              (w < m-1)
//	             I^0                              (w = m-1)
//	             I^0 OR I^{w-m+1}                 (m <= w <= 2m-2)
//
// so interval encoding roughly halves the space of range encoding at up to
// twice the scans — a new family of points in the space-time tradeoff.

// EvalInterval evaluates (A op v) on an interval-encoded index.
func (ix *Index) EvalInterval(op Op, v uint64, opt *EvalOptions) *bitvec.Vector {
	ix.mustBe(IntervalEncoded)
	qc := newQctx(ix, opt)
	if r, ok := qc.trivialResult(op, v); ok {
		return r
	}
	switch op {
	case Eq:
		return qc.maskNN(qc.ivEQChain(v))
	case Ne:
		B := qc.ivEQChain(v)
		qc.not(B)
		return qc.maskNN(B)
	case Lt:
		if v == 0 {
			return qc.zeros()
		}
		return qc.ivLT(v)
	case Ge:
		if v == 0 {
			return qc.nonNull()
		}
		B := qc.ivLT(v)
		qc.not(B)
		return qc.maskNN(B)
	case Le:
		if v >= ix.card-1 {
			return qc.nonNull()
		}
		return qc.ivLT(v + 1)
	default: // Gt
		if v >= ix.card-1 {
			return qc.zeros()
		}
		B := qc.ivLT(v + 1)
		qc.not(B)
		return qc.maskNN(B)
	}
}

// ivWindows returns m_i, the number of stored window bitmaps of component
// i under interval encoding.
func ivWindows(b uint64) int { return int((b + 1) / 2) }

// ivEQDigit returns a fresh bitmap of records whose i-th digit equals d.
// Complement cases may include null rows; callers AND the result with a
// null-free prefix (or mask with B_nn at the end).
func (qc *qctx) ivEQDigit(i int, d uint64) *bitvec.Vector {
	bi := qc.ix.base[i]
	m := uint64(ivWindows(bi))
	switch {
	case d < m-1:
		t := qc.fetch(i, int(d)).Clone()
		qc.andNot(t, qc.fetch(i, int(d+1)))
		return t
	case d == m-1:
		t := qc.fetch(i, int(m-1)).Clone()
		if m > 1 {
			qc.and(t, qc.fetch(i, 0))
		}
		return t
	case d <= 2*m-2:
		t := qc.fetch(i, int(d-m+1)).Clone()
		qc.andNot(t, qc.fetch(i, int(d-m)))
		return t
	default: // d == 2m-1: the one digit outside every window (even b)
		t := qc.fetch(i, 0).Clone()
		if m > 1 {
			qc.or(t, qc.fetch(i, int(m-1)))
		}
		qc.not(t)
		return t
	}
}

// ivLEDigit returns a fresh bitmap of records whose i-th digit is <= w,
// for 0 <= w <= b_i-2 (w = b_i-1 is the implicit all-ones).
func (qc *qctx) ivLEDigit(i int, w uint64) *bitvec.Vector {
	bi := qc.ix.base[i]
	m := uint64(ivWindows(bi))
	switch {
	case w < m-1:
		t := qc.fetch(i, 0).Clone()
		qc.andNot(t, qc.fetch(i, int(w+1)))
		return t
	case w == m-1:
		return qc.fetch(i, 0).Clone()
	default: // m <= w <= 2m-2, always within range since w <= b-2
		t := qc.fetch(i, 0).Clone()
		qc.or(t, qc.fetch(i, int(w-m+1)))
		return t
	}
}

// ivEQChain computes (A = v) as the AND over components of digit equality.
func (qc *qctx) ivEQChain(v uint64) *bitvec.Vector {
	digits := qc.ix.base.Decompose(v, nil)
	var B *bitvec.Vector
	for i := range qc.ix.base {
		e := qc.ivEQDigit(i, digits[i])
		if B == nil {
			B = e
			continue
		}
		qc.and(B, e)
	}
	return B
}

// ivLT computes (A < v) for 1 <= v <= C with the most-significant-first
// expansion, exactly like the equality-encoded evaluator but with interval
// digit primitives.
func (qc *qctx) ivLT(v uint64) *bitvec.Vector {
	ix := qc.ix
	digits := ix.base.Decompose(v, nil)
	R := qc.zeros()
	P := qc.nonNull()
	for i := len(ix.base) - 1; i >= 0; i-- {
		di := digits[i]
		if di > 0 {
			lt := qc.ivLEDigit(i, di-1)
			qc.and(lt, P)
			qc.or(R, lt)
		}
		if i > 0 {
			e := qc.ivEQDigit(i, di)
			qc.and(P, e)
		}
	}
	return R
}
