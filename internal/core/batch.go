package core

import (
	"runtime"
	"sync"

	"bitmapindex/internal/bitvec"
)

// Query is one selection predicate for batch evaluation.
type Query struct {
	Op Op
	V  uint64
}

// EvalBatch evaluates many predicates concurrently and returns the result
// bitmaps in input order. The index is immutable, so queries share it
// without locking; parallelism <= 0 selects GOMAXPROCS. Per-query
// statistics are accumulated into stats[i] when stats is non-nil (it must
// then have len(queries) entries).
func (ix *Index) EvalBatch(queries []Query, parallelism int, stats []Stats) []*bitvec.Vector {
	if stats != nil && len(stats) != len(queries) {
		panic("core: stats length differs from queries")
	}
	out := make([]*bitvec.Vector, len(queries))
	if len(queries) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism == 1 {
		for i, q := range queries {
			var opt *EvalOptions
			if stats != nil {
				opt = &EvalOptions{Stats: &stats[i]}
			}
			out[i] = ix.Eval(q.Op, q.V, opt)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				var opt *EvalOptions
				if stats != nil {
					opt = &EvalOptions{Stats: &stats[i]}
				}
				out[i] = ix.Eval(q.Op, q.V, opt)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
