package core

import (
	"runtime"
	"sync"

	"bitmapindex/internal/bitvec"
)

// Query is one selection predicate for batch evaluation.
type Query struct {
	Op Op
	V  uint64
}

// batchIntraMinRows is the row count above which a batch with fewer
// queries than workers switches from inter-query to intra-query
// (segmented) parallelism: below it, per-segment dispatch overhead
// outweighs the idle workers. Package variable so tests can lower it.
var batchIntraMinRows = 1 << 21

// EvalBatch evaluates many predicates and returns the result bitmaps in
// input order. The index is immutable, so queries share it without
// locking; parallelism <= 0 selects GOMAXPROCS. Per-query statistics are
// accumulated into stats[i] when stats is non-nil (it must then have
// len(queries) entries).
//
// tmpl, when non-nil, is an options template applied to every query so
// callers can thread Fetch/Buffered/Trace through the batch. tmpl.Stats
// is ignored — sharing one Stats across concurrent queries would race;
// use the stats slice, which stays per-query. When queries may run
// concurrently (parallelism > 1), tmpl.Fetch and tmpl.Buffered must be
// safe for concurrent use (tmpl.Trace already is).
//
// Parallelism is spent across queries when the batch is wide enough, and
// within queries (SegmentedEval) when there are fewer queries than
// workers over a large index — one heavy predicate over many rows should
// use every core, not one.
func (ix *Index) EvalBatch(queries []Query, parallelism int, stats []Stats, tmpl *EvalOptions) []*bitvec.Vector {
	if stats != nil && len(stats) != len(queries) {
		panic("core: stats length differs from queries")
	}
	out := make([]*bitvec.Vector, len(queries))
	if len(queries) == 0 {
		return out
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	opt := func(i int) *EvalOptions {
		if tmpl == nil && stats == nil {
			return nil
		}
		var o EvalOptions
		if tmpl != nil {
			o = *tmpl
		}
		o.Stats = nil
		if stats != nil {
			o.Stats = &stats[i]
		}
		return &o
	}
	if len(queries) < parallelism && ix.rows >= batchIntraMinRows {
		// Few queries, many rows: run the queries sequentially and spend
		// the parallelism inside each one. Sequential queries also mean a
		// non-concurrency-safe tmpl.Fetch stays safe here, matching
		// SegmentedEval's sequential-prefetch contract.
		for i, q := range queries {
			out[i] = ix.SegmentedEval(q.Op, q.V, opt(i), SegConfig{Workers: parallelism})
		}
		return out
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if parallelism == 1 {
		for i, q := range queries {
			out[i] = ix.Eval(q.Op, q.V, opt(i))
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				out[i] = ix.Eval(q.Op, q.V, opt(i))
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
