// Package core implements the paper's two-dimensional design space of
// bitmap indexes for selection queries: attribute value decomposition
// (Section 2(1)) crossed with bitmap encoding (Section 2(2)), the
// multi-component bitmap index built from a column of values, and the
// evaluation algorithms of Section 3 (RangeEval, RangeEval-Opt, and an
// equality-encoded evaluator).
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Base is the base sequence <b_n, ..., b_1> of an index, stored
// little-endian: Base[0] is b_1 (the least significant digit's base) and
// Base[len-1] is b_n. A value v is decomposed into digits v_i with
// 0 <= v_i < b_i such that v = sum_i v_i * prod_{j<i} b_j.
type Base []uint64

// Uniform returns a uniform base-b sequence with n components.
func Uniform(b uint64, n int) Base {
	s := make(Base, n)
	for i := range s {
		s[i] = b
	}
	return s
}

// UniformFor returns the uniform base-b sequence with the minimum number of
// components whose product covers card, i.e. n = ceil(log_b card).
func UniformFor(b, card uint64) Base {
	if b < 2 {
		panic("core: uniform base must be >= 2")
	}
	n := 0
	p := uint64(1)
	for p < card {
		// Guard overflow: once p*b would overflow it certainly covers card.
		if p > math.MaxUint64/b {
			n++
			break
		}
		p *= b
		n++
	}
	if n == 0 {
		n = 1
	}
	return Uniform(b, n)
}

// SingleComponent returns the base-<card> sequence of the classic
// single-component index (Value-List when equality-encoded).
func SingleComponent(card uint64) Base { return Base{card} }

// N returns the number of components.
func (b Base) N() int { return len(b) }

// Validate reports whether the base is well-defined for attribute
// cardinality card: at least one component, every base number >= 2, and the
// product of base numbers >= card so every value is representable.
func (b Base) Validate(card uint64) error {
	if len(b) == 0 {
		return fmt.Errorf("core: empty base")
	}
	for i, bi := range b {
		if bi < 2 {
			return fmt.Errorf("core: base component %d is %d; must be >= 2", i+1, bi)
		}
	}
	if p, ok := b.Product(); !ok || p < card {
		if !ok {
			return nil // product overflows uint64, certainly covers card
		}
		return fmt.Errorf("core: base %v covers only %d values; cardinality is %d", b, p, card)
	}
	return nil
}

// Product returns the product of the base numbers and whether it fits in a
// uint64 (ok=false means overflow, i.e. the product exceeds MaxUint64).
func (b Base) Product() (p uint64, ok bool) {
	p = 1
	for _, bi := range b {
		if bi != 0 && p > math.MaxUint64/bi {
			return 0, false
		}
		p *= bi
	}
	return p, true
}

// Covers reports whether the base can represent all values in [0, card).
func (b Base) Covers(card uint64) bool {
	p, ok := b.Product()
	return !ok || p >= card
}

// Decompose writes the digits of v into dst (which must have length N()) and
// returns it; dst[i] is the digit for component i+1. If dst is nil a new
// slice is allocated. Digits satisfy 0 <= dst[i] < b[i] provided v is less
// than the base product.
func (b Base) Decompose(v uint64, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, len(b))
	}
	rem := v
	for i, bi := range b {
		dst[i] = rem % bi
		rem /= bi
	}
	return dst
}

// Compose is the inverse of Decompose.
func (b Base) Compose(digits []uint64) uint64 {
	var v, mult uint64 = 0, 1
	for i, bi := range b {
		v += digits[i] * mult
		mult *= bi
	}
	return v
}

// Clone returns a copy of the base sequence.
func (b Base) Clone() Base {
	c := make(Base, len(b))
	copy(c, b)
	return c
}

// Equal reports whether two bases are identical component-wise.
func (b Base) Equal(o Base) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the base in the paper's big-endian notation, e.g. "<3,3>"
// for a 2-component base where b_2 = b_1 = 3.
func (b Base) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i := len(b) - 1; i >= 0; i-- {
		sb.WriteString(strconv.FormatUint(b[i], 10))
		if i > 0 {
			sb.WriteByte(',')
		}
	}
	sb.WriteByte('>')
	return sb.String()
}

// ParseBase parses the String format (big-endian, with or without the angle
// brackets), e.g. "<10,10,10>" or "4,3".
func ParseBase(s string) (Base, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "<")
	s = strings.TrimSuffix(s, ">")
	parts := strings.Split(s, ",")
	if len(parts) == 0 || (len(parts) == 1 && strings.TrimSpace(parts[0]) == "") {
		return nil, fmt.Errorf("core: empty base string %q", s)
	}
	b := make(Base, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad base component %q: %v", p, err)
		}
		// Input is big-endian; store little-endian.
		b[len(parts)-1-i] = v
	}
	return b, nil
}

// Log2Ceil returns ceil(log2(card)), the maximum useful number of
// components for attribute cardinality card (every base number is then 2).
// Log2Ceil(0) and Log2Ceil(1) return 1 by convention.
func Log2Ceil(card uint64) int {
	n := 1
	p := uint64(2)
	for p < card {
		p *= 2
		n++
	}
	return n
}
