package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"bitmapindex/internal/telemetry"
)

// parkSegPool occupies every worker of the shared segment pool with a
// blocking job, so the next non-blocking submit fails. It returns a
// release function that unparks the workers and waits them out.
func parkSegPool(t *testing.T) func() {
	t.Helper()
	release := make(chan struct{})
	var parked sync.WaitGroup
	n := runtime.GOMAXPROCS(0)
	for accepted := 0; accepted < n; {
		parked.Add(1)
		if segPoolSubmit(func() { defer parked.Done(); <-release }) {
			accepted++
		} else {
			// A worker is between jobs and not yet back at the channel
			// receive; give it a beat and retry.
			parked.Done()
			time.Sleep(time.Millisecond)
		}
	}
	return func() {
		close(release)
		parked.Wait()
	}
}

// TestSegmentedEvalPoolSaturatedDegradesToSerial forces the degraded
// submission path audited in PR 9: with every pool worker busy the
// non-blocking submit in segRun fails and the calling goroutine drains
// every segment itself. The fallback must not double-count Stats (scans
// are charged once during prefetch, op counts once after the drain) and
// must return bit-identical results, and the bix_segment_* metrics must
// advance exactly as in the helped path: one eval per call, the worker
// gauge untouched.
func TestSegmentedEvalPoolSaturatedDegradesToSerial(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	n := 3<<14 + 5
	const card = 30
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(r.Intn(card))
	}
	ix, err := Build(vals, card, Base{6, 5}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}

	unpark := parkSegPool(t)
	defer unpark()
	if segPoolSubmit(func() {}) {
		t.Fatal("pool accepted a job with every worker parked")
	}

	evals0 := telemetry.SegmentEvalTotal.Value()
	workers0 := telemetry.SegmentWorkers.Value()
	cfg := SegConfig{SegBits: 12, Workers: 4} // several segments, helpers requested
	calls := int64(0)
	for _, op := range AllOps {
		for _, v := range []uint64{0, 7, card - 1, card + 3} {
			var wst Stats
			want := ix.Eval(op, v, &EvalOptions{Stats: &wst})
			var gst Stats
			got := ix.SegmentedEval(op, v, &EvalOptions{Stats: &gst}, cfg)
			calls++
			if !got.Equal(want) {
				t.Fatalf("A %s %d: degraded segmented result differs", op, v)
			}
			if gst != wst {
				t.Fatalf("A %s %d: degraded stats %+v, want %+v", op, v, gst, wst)
			}
			var cst Stats
			if c := ix.SegmentedCount(op, v, &EvalOptions{Stats: &cst}, cfg); c != want.Count() {
				t.Fatalf("A %s %d: degraded SegmentedCount = %d, want %d", op, v, c, want.Count())
			}
			calls++
			if cst != wst {
				t.Fatalf("A %s %d: degraded count stats %+v, want %+v", op, v, cst, wst)
			}
		}
	}
	if d := telemetry.SegmentEvalTotal.Value() - evals0; d != calls {
		t.Fatalf("bix_segment_eval_total advanced by %d over %d degraded calls", d, calls)
	}
	if w := telemetry.SegmentWorkers.Value(); w != workers0 {
		t.Fatalf("bix_segment_workers drifted from %d to %d on the degraded path", workers0, w)
	}
}
