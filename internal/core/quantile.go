package core

import (
	"fmt"

	"bitmapindex/internal/bitvec"
)

// Order statistics over the index: minimum, maximum, and quantiles of the
// indexed values within a selection, each answered with O(log C) range
// predicate evaluations (binary search over cumulative counts). With a
// range-encoded index every probe touches at most 2n-1 bitmaps, so a
// median costs ~ (2n-1) * log2(C) bitmap scans regardless of the relation
// size — another workload where the paper's encoding pays off.

// selAndCount prepares the non-null selection and its cardinality.
func (ix *Index) selAndCount(sel *bitvec.Vector) (*bitvec.Vector, int, error) {
	s := ix.nn.Clone()
	if sel != nil {
		if sel.Len() != ix.rows {
			return nil, 0, fmt.Errorf("core: selection has %d bits, index has %d rows", sel.Len(), ix.rows)
		}
		s.And(sel)
	}
	return s, s.Count(), nil
}

// countLe returns the number of selected non-null rows with value <= v.
func (ix *Index) countLe(v uint64, selNN *bitvec.Vector) int {
	return bitvec.AndCount(ix.Eval(Le, v, nil), selNN)
}

// MinSelected returns the smallest indexed value among the selected rows;
// ok is false when the selection is empty. sel may be nil (all rows).
func (ix *Index) MinSelected(sel *bitvec.Vector) (v uint64, ok bool, err error) {
	selNN, n, err := ix.selAndCount(sel)
	if err != nil || n == 0 {
		return 0, false, err
	}
	// Smallest v with count(A <= v) >= 1.
	return ix.searchCount(1, selNN), true, nil
}

// MaxSelected returns the largest indexed value among the selected rows.
func (ix *Index) MaxSelected(sel *bitvec.Vector) (v uint64, ok bool, err error) {
	selNN, n, err := ix.selAndCount(sel)
	if err != nil || n == 0 {
		return 0, false, err
	}
	// Largest v present: smallest v with count(A <= v) == n.
	return ix.searchCount(n, selNN), true, nil
}

// QuantileSelected returns the q-quantile (0 <= q <= 1) of the indexed
// values among the selected rows, defined as the smallest value v such
// that at least ceil(q * n) selected rows have value <= v (q = 0.5 is the
// lower median; q = 0 the minimum; q = 1 the maximum).
func (ix *Index) QuantileSelected(q float64, sel *bitvec.Vector) (v uint64, ok bool, err error) {
	if q < 0 || q > 1 {
		return 0, false, fmt.Errorf("core: quantile %v out of [0,1]", q)
	}
	selNN, n, err := ix.selAndCount(sel)
	if err != nil || n == 0 {
		return 0, false, err
	}
	k := int(q*float64(n) + 0.9999999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return ix.searchCount(k, selNN), true, nil
}

// searchCount returns the smallest v with countLe(v) >= k, for 1 <= k <=
// |selection|. Binary search over [0, C).
func (ix *Index) searchCount(k int, selNN *bitvec.Vector) uint64 {
	lo, hi := uint64(0), ix.card-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ix.countLe(mid, selNN) >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MedianSelected is QuantileSelected(0.5, sel): the lower median.
func (ix *Index) MedianSelected(sel *bitvec.Vector) (uint64, bool, error) {
	return ix.QuantileSelected(0.5, sel)
}
