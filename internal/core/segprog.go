package core

import (
	"fmt"

	"bitmapindex/internal/invariant"
)

// segprog.go — compiled bitmap programs for segmented evaluation.
//
// A segProgram is the bitmap-combination plan of one selection predicate:
// a straight-line register program over the index's stored bitmaps that
// the segmented evaluator (segeval.go) replays once per row segment using
// the range-restricted bitvec kernels. Compilation mirrors the serial
// evaluators (EvalRangeOpt, EvalEquality, EvalInterval) instruction for
// instruction: every place a serial evaluator performs one counted qctx
// operation, the compiler emits exactly one counted instruction, so a
// segmented evaluation reports the same Stats as its serial counterpart
// and — verified under -tags bixdebug — produces the bit-identical result.
// Any change to a serial evaluator must be applied to its compiler twin.

// Instruction kinds. sLoad/sZero/sOnes initialize a register (mirroring
// Clone/zeros/ones, which the serial evaluators do not count); the rest
// mirror the counted qctx operations.
const (
	sLoad   uint8 = iota // reg[dst] = src
	sZero                // reg[dst] = 0
	sOnes                // reg[dst] = all ones
	sAnd                 // reg[dst] &= src
	sOr                  // reg[dst] |= src
	sXor                 // reg[dst] ^= src
	sAndNot              // reg[dst] &^= src
	sNot                 // reg[dst] = ^reg[dst]
)

// segOperand is an instruction source: a fetched bitmap (ref >= 0, an
// index into segProgram.refs) or a register (reg >= 0). Exactly one is
// set; the other is -1.
type segOperand struct {
	ref int
	reg int
}

func noOperand() segOperand     { return segOperand{ref: -1, reg: -1} }
func refOp(i int) segOperand    { return segOperand{ref: i, reg: -1} }
func regOp(r segreg) segOperand { return segOperand{ref: -1, reg: int(r)} }

type segInstr struct {
	kind uint8
	dst  int // destination register
	src  segOperand
}

// segRef identifies one input bitmap of the program. comp == -1 is the
// non-null bitmap B_nn, which is always in memory and never counted as a
// scan (matching qctx.nonNull).
type segRef struct{ comp, slot int }

// segProgram is one compiled predicate. The result is always register 0
// (every compiler allocates the result register first; seal asserts it).
type segProgram struct {
	instrs []segInstr
	nregs  int
	refs   []segRef
	ops    Stats // logical operation counts; Scans stays 0 (filled at prefetch)
}

// segreg is a virtual register index within a segProgram.
type segreg int

// progBuilder compiles a predicate into a segProgram. Its methods mirror
// the qctx API so the compile functions below read exactly like the serial
// evaluators they shadow.
type progBuilder struct {
	ix     *Index
	p      *segProgram
	refIdx map[segRef]int
	free   []segreg
}

func newProgBuilder(ix *Index) *progBuilder {
	return &progBuilder{ix: ix, p: &segProgram{}, refIdx: make(map[segRef]int, 8)}
}

// fetch interns the stored bitmap (comp, slot) and returns it as an
// operand. Distinct refs correspond exactly to the distinct bitmaps the
// serial evaluator's per-query seen map would count, so scan accounting at
// prefetch time matches qctx.fetch.
func (b *progBuilder) fetch(comp, slot int) segOperand {
	key := segRef{comp: comp, slot: slot}
	i, ok := b.refIdx[key]
	if !ok {
		i = len(b.p.refs)
		b.refIdx[key] = i
		b.p.refs = append(b.p.refs, key)
	}
	return refOp(i)
}

// nnOp returns the non-null bitmap as an operand (not a scan).
func (b *progBuilder) nnOp() segOperand {
	return b.fetchRef(segRef{comp: -1, slot: 0})
}

func (b *progBuilder) fetchRef(key segRef) segOperand {
	i, ok := b.refIdx[key]
	if !ok {
		i = len(b.p.refs)
		b.refIdx[key] = i
		b.p.refs = append(b.p.refs, key)
	}
	return refOp(i)
}

func (b *progBuilder) alloc() segreg {
	if n := len(b.free); n > 0 {
		r := b.free[n-1]
		b.free = b.free[:n-1]
		return r
	}
	r := segreg(b.p.nregs)
	b.p.nregs++
	return r
}

// release returns a dead temporary to the free list so register count (and
// with it per-worker scratch memory) stays bounded by live values, not by
// component count.
func (b *progBuilder) release(r segreg) { b.free = append(b.free, r) }

// emit appends one instruction, mirroring qctx operation accounting: and,
// or, xor, not count as themselves; andNot counts as one AND plus one NOT;
// load/zero/ones (Clone and friends) are uncounted.
func (b *progBuilder) emit(kind uint8, dst segreg, src segOperand) {
	b.p.instrs = append(b.p.instrs, segInstr{kind: kind, dst: int(dst), src: src})
	switch kind {
	case sAnd:
		b.p.ops.Ands++
	case sOr:
		b.p.ops.Ors++
	case sXor:
		b.p.ops.Xors++
	case sNot:
		b.p.ops.Nots++
	case sAndNot:
		b.p.ops.Ands++
		b.p.ops.Nots++
	}
}

func (b *progBuilder) cloneInto(src segOperand) segreg {
	r := b.alloc()
	b.emit(sLoad, r, src)
	return r
}

func (b *progBuilder) zeros() segreg {
	r := b.alloc()
	b.emit(sZero, r, noOperand())
	return r
}

func (b *progBuilder) ones() segreg {
	r := b.alloc()
	b.emit(sOnes, r, noOperand())
	return r
}

func (b *progBuilder) nonNull() segreg { return b.cloneInto(b.nnOp()) }

func (b *progBuilder) and(dst segreg, src segOperand)    { b.emit(sAnd, dst, src) }
func (b *progBuilder) or(dst segreg, src segOperand)     { b.emit(sOr, dst, src) }
func (b *progBuilder) xor(dst segreg, src segOperand)    { b.emit(sXor, dst, src) }
func (b *progBuilder) andNot(dst segreg, src segOperand) { b.emit(sAndNot, dst, src) }
func (b *progBuilder) not(dst segreg)                    { b.emit(sNot, dst, noOperand()) }

// maskNN mirrors qctx.maskNN: one counted AND with B_nn, only on nullable
// indexes.
func (b *progBuilder) maskNN(r segreg) {
	if b.ix.hasNulls {
		b.and(r, b.nnOp())
	}
}

// seal asserts the compiler left the result in register 0, which the
// interpreter aliases to the (shared) result vector.
func (b *progBuilder) seal(r segreg) {
	if r != 0 {
		panic(fmt.Sprintf("core: segment program result in register %d, want 0", r))
	}
}

// compileSeg builds the segment program for (A op v).
func (ix *Index) compileSeg(op Op, v uint64) *segProgram {
	b := newProgBuilder(ix)
	// Mirror qctx.trivialResult: constants outside [0, C) need no bitmaps
	// beyond B_nn and count no operations.
	if v >= ix.card {
		switch op {
		case Lt, Le, Ne:
			b.seal(b.nonNull())
		default: // Gt, Ge, Eq
			b.seal(b.zeros())
		}
		return b.p
	}
	switch ix.enc {
	case RangeEncoded:
		b.seal(b.compileRangeOpt(op, v))
	case EqualityEncoded:
		b.seal(b.compileEquality(op, v))
	case IntervalEncoded:
		b.seal(b.compileInterval(op, v))
	default:
		panic("core: unknown encoding")
	}
	return b.p
}

// compileRangeOpt mirrors EvalRangeOpt (rangeeval.go).
func (b *progBuilder) compileRangeOpt(op Op, v uint64) segreg {
	ix := b.ix
	if !op.IsRange() {
		B := b.compileRangeEqChain(v)
		if op == Ne {
			b.not(B)
		}
		b.maskNN(B)
		return B
	}
	neg := op == Gt || op == Ge
	w := v
	underflow := false
	if op == Lt || op == Ge {
		if v == 0 {
			underflow = true // A <= -1: empty
		} else {
			w = v - 1
		}
	}
	var B segreg
	if underflow {
		B = b.zeros()
	} else {
		digits := ix.base.Decompose(w, nil)
		invariant.DigitsInBase(digits, ix.base)
		if digits[0] < ix.base[0]-1 {
			B = b.cloneInto(b.fetch(0, int(digits[0])))
		} else {
			B = b.ones()
		}
		for i := 1; i < len(ix.base); i++ {
			bi, di := ix.base[i], digits[i]
			if di != bi-1 {
				b.and(B, b.fetch(i, int(di)))
			}
			if di != 0 {
				b.or(B, b.fetch(i, int(di-1)))
			}
		}
	}
	if neg {
		b.not(B)
	}
	b.maskNN(B)
	return B
}

// compileRangeEqChain mirrors qctx.rangeEqChain.
func (b *progBuilder) compileRangeEqChain(v uint64) segreg {
	ix := b.ix
	digits := ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, ix.base)
	B := b.ones()
	for i, bi := range ix.base {
		di := digits[i]
		switch {
		case di == 0:
			b.and(B, b.fetch(i, 0))
		case di == bi-1:
			t := b.cloneInto(b.fetch(i, int(bi-2)))
			b.not(t)
			b.and(B, regOp(t))
			b.release(t)
		default:
			t := b.cloneInto(b.fetch(i, int(di)))
			b.xor(t, b.fetch(i, int(di-1)))
			b.and(B, regOp(t))
			b.release(t)
		}
	}
	return B
}

// compileEquality mirrors EvalEquality (eqeval.go).
func (b *progBuilder) compileEquality(op Op, v uint64) segreg {
	ix := b.ix
	switch op {
	case Eq:
		return b.compileEqEQ(v)
	case Ne:
		B := b.compileEqEQ(v)
		b.not(B)
		b.maskNN(B)
		return B
	case Lt:
		if v == 0 {
			return b.zeros()
		}
		return b.compileEqLT(v)
	case Ge:
		if v == 0 {
			return b.nonNull()
		}
		B := b.compileEqLT(v)
		b.not(B)
		b.maskNN(B)
		return B
	case Le:
		if v >= ix.card-1 {
			return b.nonNull()
		}
		return b.compileEqLT(v + 1)
	default: // Gt
		if v >= ix.card-1 {
			return b.zeros()
		}
		B := b.compileEqLT(v + 1)
		b.not(B)
		b.maskNN(B)
		return B
	}
}

// compileEqBitmap mirrors qctx.eqBitmap: the digit-equality bitmap E_i^j.
// When derived (base-2 component, j == 0) the operand is a fresh register
// the caller must release (or adopt as its accumulator).
func (b *progBuilder) compileEqBitmap(i int, j uint64) (op segOperand, t segreg, derived bool) {
	if b.ix.base[i] == 2 {
		stored := b.fetch(i, 0) // E_i^1
		if j == 1 {
			return stored, 0, false
		}
		t = b.nonNull()
		b.andNot(t, stored)
		return regOp(t), t, true
	}
	return b.fetch(i, int(j)), 0, false
}

// compileEqEQ mirrors qctx.eqEQ.
func (b *progBuilder) compileEqEQ(v uint64) segreg {
	digits := b.ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, b.ix.base)
	B := segreg(-1)
	for i := range b.ix.base {
		e, t, derived := b.compileEqBitmap(i, digits[i])
		if B < 0 {
			if derived {
				B = t
			} else {
				B = b.cloneInto(e)
			}
			continue
		}
		b.and(B, e)
		if derived {
			b.release(t)
		}
	}
	return B
}

// compileEqLT mirrors qctx.eqLT.
func (b *progBuilder) compileEqLT(v uint64) segreg {
	ix := b.ix
	digits := ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, ix.base)
	R := b.zeros()
	P := b.nonNull()
	for i := len(ix.base) - 1; i >= 0; i-- {
		di := digits[i]
		if di > 0 {
			lt := b.compileEqLTDigit(i, di)
			b.and(lt, regOp(P))
			b.or(R, regOp(lt))
			b.release(lt)
		}
		if i > 0 {
			e, t, derived := b.compileEqBitmap(i, di)
			b.and(P, e)
			if derived {
				b.release(t)
			}
		}
	}
	b.release(P)
	return R
}

// compileEqLTDigit mirrors qctx.eqLTDigit.
func (b *progBuilder) compileEqLTDigit(i int, d uint64) segreg {
	bi := b.ix.base[i]
	if bi == 2 {
		e, t, derived := b.compileEqBitmap(i, 0)
		if derived {
			return t
		}
		return b.cloneInto(e)
	}
	if d <= bi-d {
		acc := b.cloneInto(b.fetch(i, 0))
		for j := uint64(1); j < d; j++ {
			b.or(acc, b.fetch(i, int(j)))
		}
		return acc
	}
	acc := b.cloneInto(b.fetch(i, int(d)))
	for j := d + 1; j < bi; j++ {
		b.or(acc, b.fetch(i, int(j)))
	}
	b.not(acc)
	return acc
}

// compileInterval mirrors EvalInterval (intervaleval.go).
func (b *progBuilder) compileInterval(op Op, v uint64) segreg {
	ix := b.ix
	switch op {
	case Eq:
		B := b.compileIvEQChain(v)
		b.maskNN(B)
		return B
	case Ne:
		B := b.compileIvEQChain(v)
		b.not(B)
		b.maskNN(B)
		return B
	case Lt:
		if v == 0 {
			return b.zeros()
		}
		return b.compileIvLT(v)
	case Ge:
		if v == 0 {
			return b.nonNull()
		}
		B := b.compileIvLT(v)
		b.not(B)
		b.maskNN(B)
		return B
	case Le:
		if v >= ix.card-1 {
			return b.nonNull()
		}
		return b.compileIvLT(v + 1)
	default: // Gt
		if v >= ix.card-1 {
			return b.zeros()
		}
		B := b.compileIvLT(v + 1)
		b.not(B)
		b.maskNN(B)
		return B
	}
}

// compileIvEQDigit mirrors qctx.ivEQDigit.
func (b *progBuilder) compileIvEQDigit(i int, d uint64) segreg {
	bi := b.ix.base[i]
	m := uint64(ivWindows(bi))
	switch {
	case d < m-1:
		t := b.cloneInto(b.fetch(i, int(d)))
		b.andNot(t, b.fetch(i, int(d+1)))
		return t
	case d == m-1:
		t := b.cloneInto(b.fetch(i, int(m-1)))
		if m > 1 {
			b.and(t, b.fetch(i, 0))
		}
		return t
	case d <= 2*m-2:
		t := b.cloneInto(b.fetch(i, int(d-m+1)))
		b.andNot(t, b.fetch(i, int(d-m)))
		return t
	default: // d == 2m-1: the one digit outside every window (even b)
		t := b.cloneInto(b.fetch(i, 0))
		if m > 1 {
			b.or(t, b.fetch(i, int(m-1)))
		}
		b.not(t)
		return t
	}
}

// compileIvLEDigit mirrors qctx.ivLEDigit.
func (b *progBuilder) compileIvLEDigit(i int, w uint64) segreg {
	bi := b.ix.base[i]
	m := uint64(ivWindows(bi))
	switch {
	case w < m-1:
		t := b.cloneInto(b.fetch(i, 0))
		b.andNot(t, b.fetch(i, int(w+1)))
		return t
	case w == m-1:
		return b.cloneInto(b.fetch(i, 0))
	default: // m <= w <= 2m-2, always within range since w <= b-2
		t := b.cloneInto(b.fetch(i, 0))
		b.or(t, b.fetch(i, int(w-m+1)))
		return t
	}
}

// compileIvEQChain mirrors qctx.ivEQChain.
func (b *progBuilder) compileIvEQChain(v uint64) segreg {
	digits := b.ix.base.Decompose(v, nil)
	B := segreg(-1)
	for i := range b.ix.base {
		e := b.compileIvEQDigit(i, digits[i])
		if B < 0 {
			B = e
			continue
		}
		b.and(B, regOp(e))
		b.release(e)
	}
	return B
}

// compileIvLT mirrors qctx.ivLT.
func (b *progBuilder) compileIvLT(v uint64) segreg {
	ix := b.ix
	digits := ix.base.Decompose(v, nil)
	R := b.zeros()
	P := b.nonNull()
	for i := len(ix.base) - 1; i >= 0; i-- {
		di := digits[i]
		if di > 0 {
			lt := b.compileIvLEDigit(i, di-1)
			b.and(lt, regOp(P))
			b.or(R, regOp(lt))
			b.release(lt)
		}
		if i > 0 {
			e := b.compileIvEQDigit(i, di)
			b.and(P, regOp(e))
			b.release(e)
		}
	}
	b.release(P)
	return R
}
