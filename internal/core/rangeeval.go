package core

import (
	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/invariant"
)

// EvalRangeOpt evaluates (A op v) on a range-encoded index using the
// paper's improved Algorithm RangeEval-Opt (Section 3, Figure 6 right).
//
// Range predicates are rewritten in terms of <= using the identities
// A < v == A <= v-1, A > v == NOT(A <= v), A >= v == NOT(A <= v-1), so a
// single bitmap B is maintained instead of the B_EQ/B_LT/B_GT triple of
// Algorithm RangeEval. Component 1 initializes B directly; each further
// component i contributes at most one AND (with B_i^{v_i}, skipped when
// v_i = b_i - 1, whose bitmap is the implicit all-ones) and one OR (with
// B_i^{v_i - 1}, skipped when v_i = 0).
func (ix *Index) EvalRangeOpt(op Op, v uint64, opt *EvalOptions) *bitvec.Vector {
	ix.mustBe(RangeEncoded)
	qc := newQctx(ix, opt)
	if r, ok := qc.trivialResult(op, v); ok {
		return r
	}
	if !op.IsRange() {
		B := qc.rangeEqChain(v)
		if op == Ne {
			qc.not(B)
		}
		return qc.maskNN(B)
	}

	// Reduce to (A <= w), negating for > and >=.
	neg := op == Gt || op == Ge
	w := v
	underflow := false
	if op == Lt || op == Ge {
		if v == 0 {
			underflow = true // A <= -1: empty
		} else {
			w = v - 1
		}
	}
	var B *bitvec.Vector
	if underflow {
		B = qc.zeros()
	} else {
		digits := ix.base.Decompose(w, nil)
		invariant.DigitsInBase(digits, ix.base)
		if digits[0] < ix.base[0]-1 {
			B = qc.fetch(0, int(digits[0])).Clone()
		} else {
			B = qc.ones()
		}
		for i := 1; i < len(ix.base); i++ {
			bi, di := ix.base[i], digits[i]
			if di != bi-1 {
				qc.and(B, qc.fetch(i, int(di)))
			}
			if di != 0 {
				qc.or(B, qc.fetch(i, int(di-1)))
			}
		}
	}
	if neg {
		qc.not(B)
	}
	return qc.maskNN(B)
}

// rangeEqChain computes the equality bitmap (A = v) on a range-encoded
// index: per component, digit equality is B_i^{v_i} XOR B_i^{v_i-1}
// (degenerating to a single bitmap or its complement at the digit extremes).
func (qc *qctx) rangeEqChain(v uint64) *bitvec.Vector {
	ix := qc.ix
	digits := ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, ix.base)
	B := qc.ones()
	for i, bi := range ix.base {
		di := digits[i]
		switch {
		case di == 0:
			qc.and(B, qc.fetch(i, 0))
		case di == bi-1:
			t := qc.fetch(i, int(bi-2)).Clone()
			qc.not(t)
			qc.and(B, t)
		default:
			t := qc.fetch(i, int(di)).Clone()
			qc.xor(t, qc.fetch(i, int(di-1)))
			qc.and(B, t)
		}
	}
	return B
}

// EvalRangeNaive evaluates (A op v) on a range-encoded index using
// Algorithm RangeEval, the O'Neil-Quass evaluation strategy the paper
// improves upon (Section 3, Figure 6 left). It incrementally maintains the
// equality bitmap B_EQ together with B_LT or B_GT as required by the
// operator. It is retained as the experimental baseline for Table 1 and
// Figure 8.
func (ix *Index) EvalRangeNaive(op Op, v uint64, opt *EvalOptions) *bitvec.Vector {
	ix.mustBe(RangeEncoded)
	qc := newQctx(ix, opt)
	if r, ok := qc.trivialResult(op, v); ok {
		return r
	}
	needLT := op == Lt || op == Le
	needGT := op == Gt || op == Ge

	BEQ := qc.nonNull()
	var BLT, BGT *bitvec.Vector
	if needLT {
		BLT = qc.zeros()
	}
	if needGT {
		BGT = qc.zeros()
	}
	digits := ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, ix.base)
	for i := len(ix.base) - 1; i >= 0; i-- {
		bi, di := ix.base[i], digits[i]
		if di > 0 {
			if needLT {
				t := BEQ.Clone()
				qc.and(t, qc.fetch(i, int(di-1)))
				qc.or(BLT, t)
			}
			if di < bi-1 {
				if needGT {
					t := qc.fetch(i, int(di)).Clone()
					qc.not(t)
					qc.and(t, BEQ)
					qc.or(BGT, t)
				}
				t := qc.fetch(i, int(di)).Clone()
				qc.xor(t, qc.fetch(i, int(di-1)))
				qc.and(BEQ, t)
			} else {
				t := qc.fetch(i, int(bi-2)).Clone()
				qc.not(t)
				qc.and(BEQ, t)
			}
		} else {
			if needGT {
				t := qc.fetch(i, 0).Clone()
				qc.not(t)
				qc.and(t, BEQ)
				qc.or(BGT, t)
			}
			qc.and(BEQ, qc.fetch(i, 0))
		}
	}
	switch op {
	case Eq:
		return BEQ
	case Ne:
		qc.not(BEQ)
		return qc.maskNN(BEQ)
	case Lt:
		return BLT
	case Le:
		qc.or(BLT, BEQ)
		return BLT
	case Gt:
		return BGT
	default: // Ge
		qc.or(BGT, BEQ)
		return BGT
	}
}

func (ix *Index) mustBe(enc Encoding) {
	if ix.enc != enc {
		panic("core: evaluator called on " + ix.enc.String() + "-encoded index")
	}
}
