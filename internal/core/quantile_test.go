package core

import (
	"math/rand"
	"sort"
	"testing"

	"bitmapindex/internal/bitvec"
)

// refQuantile computes the same definition directly: smallest value with
// at least ceil(q*n) selected values <= it.
func refQuantile(vals []uint64, sel []bool, q float64) (uint64, bool) {
	var xs []uint64
	for i, v := range vals {
		if sel == nil || sel[i] {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return 0, false
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	k := int(q*float64(len(xs)) + 0.9999999999)
	if k < 1 {
		k = 1
	}
	if k > len(xs) {
		k = len(xs)
	}
	return xs[k-1], true
}

func TestOrderStatisticsAllEncodings(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for _, base := range []Base{{30}, {6, 5}, {2, 3, 5}} {
		card, _ := base.Product()
		vals := make([]uint64, 400)
		selMask := make([]bool, 400)
		sel := bitvec.New(400)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
			if r.Intn(3) != 0 {
				selMask[i] = true
				sel.Set(i)
			}
		}
		for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
			ix, err := Build(vals, card, base, enc, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
				got, ok, err := ix.QuantileSelected(q, sel)
				if err != nil {
					t.Fatal(err)
				}
				want, wok := refQuantile(vals, selMask, q)
				if ok != wok || got != want {
					t.Fatalf("base %v enc %v q=%.2f: got %d,%v want %d,%v", base, enc, q, got, ok, want, wok)
				}
			}
			min, ok, err := ix.MinSelected(sel)
			if err != nil || !ok {
				t.Fatal(err)
			}
			wantMin, _ := refQuantile(vals, selMask, 0)
			if min != wantMin {
				t.Fatalf("min = %d, want %d", min, wantMin)
			}
			max, ok, err := ix.MaxSelected(sel)
			if err != nil || !ok {
				t.Fatal(err)
			}
			wantMax, _ := refQuantile(vals, selMask, 1)
			if max != wantMax {
				t.Fatalf("max = %d, want %d", max, wantMax)
			}
			med, ok, err := ix.MedianSelected(nil)
			if err != nil || !ok {
				t.Fatal(err)
			}
			wantMed, _ := refQuantile(vals, nil, 0.5)
			if med != wantMed {
				t.Fatalf("median = %d, want %d", med, wantMed)
			}
		}
	}
}

func TestOrderStatisticsWithNulls(t *testing.T) {
	vals := []uint64{5, 1, 9, 3, 7}
	nulls := []bool{false, true, false, true, false}
	ix, err := Build(vals, 10, Base{10}, RangeEncoded, &BuildOptions{Nulls: nulls})
	if err != nil {
		t.Fatal(err)
	}
	min, ok, _ := ix.MinSelected(nil)
	if !ok || min != 5 {
		t.Fatalf("min = %d,%v; nulls must not count", min, ok)
	}
	max, ok, _ := ix.MaxSelected(nil)
	if !ok || max != 9 {
		t.Fatalf("max = %d,%v", max, ok)
	}
}

func TestOrderStatisticsEmptyAndErrors(t *testing.T) {
	vals := []uint64{1, 2, 3}
	ix, _ := Build(vals, 4, Base{4}, RangeEncoded, nil)
	if _, ok, err := ix.MinSelected(bitvec.New(3)); ok || err != nil {
		t.Fatal("empty selection must give ok=false")
	}
	if _, ok, err := ix.MaxSelected(bitvec.New(3)); ok || err != nil {
		t.Fatal("empty selection must give ok=false")
	}
	if _, _, err := ix.QuantileSelected(0.5, bitvec.New(7)); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, _, err := ix.QuantileSelected(1.5, nil); err == nil {
		t.Fatal("q out of range must fail")
	}
	if _, _, err := ix.QuantileSelected(-0.1, nil); err == nil {
		t.Fatal("negative q must fail")
	}
}
