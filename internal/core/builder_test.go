package core

import (
	"errors"
	"sync"
	"testing"
)

func TestBuilderMatchesBuild(t *testing.T) {
	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	nulls := []bool{false, false, true, false, false, false, true, false, false, false}
	for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
		b, err := NewBuilder(9, Base{3, 3}, enc)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vals {
			if nulls[i] {
				err = b.AddNull()
			} else {
				err = b.Add(v)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if b.Rows() != len(vals) {
			t.Fatalf("Rows = %d", b.Rows())
		}
		got, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Build(vals, 9, Base{3, 3}, enc, &BuildOptions{Nulls: nulls})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range AllOps {
			for v := uint64(0); v < 9; v++ {
				if !got.Eval(op, v, nil).Equal(want.Eval(op, v, nil)) {
					t.Fatalf("enc %v: builder index differs for A %s %d", enc, op, v)
				}
			}
		}
	}
}

func TestBuilderNoNullsPath(t *testing.T) {
	b, err := NewBuilder(4, Base{4}, RangeEncoded)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{0, 1, 2, 3} {
		if err := b.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ix.HasNulls() {
		t.Fatal("no nulls were added")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(0, Base{2}, RangeEncoded); err == nil {
		t.Error("card 0 must fail")
	}
	if _, err := NewBuilder(9, Base{2}, RangeEncoded); err == nil {
		t.Error("non-covering base must fail")
	}
	if _, err := NewBuilder(9, Base{9}, Encoding(42)); err == nil {
		t.Error("bad encoding must fail")
	}
	b, err := NewBuilder(4, Base{4}, RangeEncoded)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(4); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("Add(4) err = %v", err)
	}
	if err := b.Add(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1); err == nil {
		t.Error("Add after Build must fail")
	}
	if err := b.AddNull(); err == nil {
		t.Error("AddNull after Build must fail")
	}
	if _, err := b.Build(); err == nil {
		t.Error("double Build must fail")
	}
}

// TestConcurrentEval: an Index is immutable after Build; concurrent
// readers must be safe (run under -race to verify).
func TestConcurrentEval(t *testing.T) {
	vals := make([]uint64, 4000)
	for i := range vals {
		vals[i] = uint64(i % 100)
	}
	for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
		ix, err := Build(vals, 100, Base{10, 10}, enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := ix.Eval(Le, 42, nil)
		var wg sync.WaitGroup
		errs := make(chan string, 16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 50; k++ {
					var st Stats
					got := ix.Eval(Le, 42, &EvalOptions{Stats: &st})
					if !got.Equal(want) {
						errs <- "result mismatch"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}
}
