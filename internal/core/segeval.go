package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/flight"
	"bitmapindex/internal/invariant"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
)

// segeval.go — segmented (intra-query parallel) evaluation.
//
// The row space is partitioned into fixed-width segments of 2^SegBits bits
// (word-aligned by construction), the predicate is compiled once into a
// segProgram (segprog.go), and a pool of workers replays the program over
// the segments concurrently using the range-restricted bitvec kernels.
// Each worker writes only its own segments' windows of the shared result
// vector, so stitching is free: the windows are disjoint and the final
// vector is complete once every segment is processed.

// DefaultSegBits is log2 of the default segment width in bits: 2^18 bits
// = 32 KiB per bitmap per segment, small enough that one segment's working
// set (result + a few registers + the referenced bitmap windows) stays
// cache-resident, large enough that per-segment dispatch overhead is noise.
const DefaultSegBits = 18

// MinSegBits is the smallest accepted segment width (one 64-bit word).
const MinSegBits = 6

// SegConfig tunes segmented evaluation.
type SegConfig struct {
	// SegBits is log2 of the segment width in bits. 0 selects
	// DefaultSegBits; values below MinSegBits are clamped up.
	SegBits int
	// Workers bounds the number of goroutines combining segments,
	// including the calling goroutine. <= 0 selects GOMAXPROCS. The
	// effective count never exceeds the number of segments or the pool
	// size.
	Workers int
}

func (cfg SegConfig) normalized() SegConfig {
	if cfg.SegBits == 0 {
		cfg.SegBits = DefaultSegBits
	}
	if cfg.SegBits < MinSegBits {
		cfg.SegBits = MinSegBits
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// segPool is the process-wide segment worker pool: GOMAXPROCS goroutines
// started on first use and reused across queries. Submission is
// non-blocking — when every pool worker is busy (e.g. with another
// query's segments) the submitting query just runs with fewer helpers,
// because the calling goroutine always drains segments itself. That makes
// concurrent segmented queries degrade gracefully instead of deadlocking
// or over-subscribing the CPU.
var segPool struct {
	once sync.Once
	jobs chan func()
}

func segPoolStart() {
	n := runtime.GOMAXPROCS(0)
	segPool.jobs = make(chan func())
	telemetry.SegmentWorkers.Set(int64(n))
	for i := 0; i < n; i++ {
		go segPoolWorker()
	}
}

// segPoolWorker drains the shared job channel for the life of the
// process. The pool is sized once to GOMAXPROCS and never torn down, so
// the range below intentionally has no shutdown signal.
//
//bix:daemon (process-wide segment worker pool, lives until exit)
func segPoolWorker() {
	for fn := range segPool.jobs {
		fn()
	}
}

// segPoolSubmit hands fn to an idle pool worker, reporting false when none
// is idle (the jobs channel is unbuffered, so the send succeeds only if a
// worker is blocked receiving).
func segPoolSubmit(fn func()) bool {
	segPool.once.Do(segPoolStart)
	select {
	case segPool.jobs <- fn:
		return true
	default:
		return false
	}
}

// Evaluation modes of segRun.
const (
	segMaterialize = iota // build the full result vector
	segCount              // per-segment popcount, no shared result
	segAny                // early exit on the first non-empty segment
)

// segRegSet is one worker's scratch register file, recycled across
// queries through segRegPool: for a fixed row count the register vectors
// are the dominant per-drain allocation (nregs × rows/8 bytes per worker
// per query), and reusing them makes steady-state segmented evaluation
// allocation-free outside the result vector itself.
//
// vecs owns the scratch vectors; regs is the view handed to runSegment,
// in which register 0 may alias the query's shared result vector instead
// of a scratch. Stale scratch content is safe by construction: a
// segProgram initializes every register (sLoad/sZero/sOnes) inside the
// segment window before combining into it, and Count/Any read only the
// window just written.
type segRegSet struct {
	rows int
	vecs []*bitvec.Vector // owned scratch, reused across queries
	regs []*bitvec.Vector // register view; regs[0] may alias the shared result
}

var segRegPool sync.Pool

// getSegRegs checks a register set out of the pool, rebuilding it when the
// row count changed or the program needs more registers than last time.
// When shared is non-nil it becomes register 0 (materialize mode).
func getSegRegs(rows, nregs int, shared *bitvec.Vector) *segRegSet {
	rs, ok := segRegPool.Get().(*segRegSet)
	if !ok || rs.rows != rows {
		rs = &segRegSet{rows: rows}
	}
	if cap(rs.regs) < nregs {
		rs.regs = make([]*bitvec.Vector, nregs)
	}
	rs.regs = rs.regs[:nregs]
	own := 0
	for i := 0; i < nregs; i++ {
		if i == 0 && shared != nil {
			rs.regs[0] = shared
			continue
		}
		if own == len(rs.vecs) {
			rs.vecs = append(rs.vecs, bitvec.New(rows))
		}
		rs.regs[i] = rs.vecs[own]
		own++
	}
	return rs
}

// putSegRegs returns a register set to the pool, dropping the aliased
// result reference so the pool never retains a caller's result vector.
func putSegRegs(rs *segRegSet) {
	if rs == nil {
		return
	}
	for i := range rs.regs {
		rs.regs[i] = nil
	}
	segRegPool.Put(rs)
}

// SegmentedEval evaluates (A op v) exactly like Eval but combines bitmaps
// segment-by-segment across a worker pool, using up to cfg.Workers
// goroutines. The result is bit-identical to Eval's and the reported
// Stats are the same (verified under -tags bixdebug).
//
// All opt.Fetch and opt.Buffered calls happen sequentially on the calling
// goroutine before any parallel work starts, so the callbacks need not be
// safe for concurrent use — a CachedStore's per-query closures work
// unchanged. The fetched bitmaps themselves are only read concurrently.
func (ix *Index) SegmentedEval(op Op, v uint64, opt *EvalOptions, cfg SegConfig) *bitvec.Vector {
	res, _, _ := ix.segRun(op, v, opt, cfg, segMaterialize)
	return res
}

// SegmentedCount evaluates (A op v) and returns only the number of
// qualifying records, popcounting each segment in place of stitching a
// result vector — the fast path for COUNT(*) consumers.
func (ix *Index) SegmentedCount(op Op, v uint64, opt *EvalOptions, cfg SegConfig) int {
	_, n, _ := ix.segRun(op, v, opt, cfg, segCount)
	return n
}

// SegmentedAny evaluates (A op v) and reports whether any record
// qualifies, stopping all workers as soon as one segment turns up a set
// bit. Reported operation counts still cover the full program, since the
// logical per-query cost measures do not depend on the early exit.
func (ix *Index) SegmentedAny(op Op, v uint64, opt *EvalOptions, cfg SegConfig) bool {
	_, _, any := ix.segRun(op, v, opt, cfg, segAny)
	return any
}

func (ix *Index) segRun(op Op, v uint64, opt *EvalOptions, cfg SegConfig, mode int) (*bitvec.Vector, int, bool) {
	cfg = cfg.normalized()
	var o EvalOptions
	if opt != nil {
		o = *opt
	}
	hits0, misses0 := telemetry.CacheHitsTotal.Value(), telemetry.CacheMissesTotal.Value()
	t0 := time.Now()
	prog := ix.compileSeg(op, v)

	// Prefetch every referenced bitmap sequentially on this goroutine
	// (the documented Fetch contract), counting scans per distinct stored
	// bitmap exactly like qctx.fetch would.
	srcs := make([]*bitvec.Vector, len(prog.refs))
	scans := 0
	for i, rf := range prog.refs {
		if rf.comp < 0 {
			srcs[i] = ix.nn
			continue
		}
		if o.Stats != nil && (o.Buffered == nil || !o.Buffered(rf.comp, rf.slot)) {
			scans++
		}
		sp := o.Trace.Start(telemetry.PhaseFetch)
		if o.Fetch != nil {
			srcs[i] = o.Fetch(rf.comp, rf.slot)
		} else {
			srcs[i] = ix.comps[rf.comp][rf.slot]
		}
		sp.End()
	}

	nwords := (ix.rows + 63) / 64
	segWords := 1 << (cfg.SegBits - 6)
	nseg := (nwords + segWords - 1) / segWords

	var res *bitvec.Vector
	if mode == segMaterialize {
		res = bitvec.New(ix.rows)
	}
	var next atomic.Int64
	var total atomic.Int64
	var found atomic.Bool
	drain := func() {
		// Worker-local scratch registers, checked out of segRegPool on the
		// first segment this goroutine actually claims and returned at
		// exit. In materialize mode register 0 aliases the shared result:
		// workers write disjoint word windows, so no synchronization is
		// needed beyond the final wg.Wait.
		var rs *segRegSet
		var regs []*bitvec.Vector
		defer func() {
			if rs != nil {
				putSegRegs(rs)
			}
		}()
		local := 0
		for {
			if mode == segAny && found.Load() {
				break
			}
			s := int(next.Add(1)) - 1
			if s >= nseg {
				break
			}
			if regs == nil {
				var shared *bitvec.Vector
				if mode == segMaterialize {
					shared = res
				}
				rs = getSegRegs(ix.rows, prog.nregs, shared)
				regs = rs.regs
			}
			lo := s * segWords
			hi := lo + segWords
			if hi > nwords {
				hi = nwords
			}
			ts := time.Now()
			runSegment(prog, srcs, regs, lo, hi)
			switch mode {
			case segCount:
				local += regs[0].CountRange(lo, hi)
			case segAny:
				if regs[0].AnyRange(lo, hi) {
					found.Store(true)
				}
			}
			o.Trace.Add(telemetry.PhaseSegments, time.Since(ts))
		}
		if local != 0 {
			total.Add(int64(local))
		}
	}

	workers := cfg.Workers
	if workers > nseg {
		workers = nseg
	}
	// Pool workers combine segments on this query's behalf from a foreign
	// goroutine; the pprof labels are what tie their CPU samples back to
	// the query (phase "segment" vs the caller's own "eval").
	qid := o.Trace.ID()
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		if !segPoolSubmit(func() { defer wg.Done(); profile.Do(qid, "segment", drain) }) {
			wg.Done()
			break // pool saturated; the caller still drains everything
		}
	}
	profile.Do(qid, "eval", drain)
	wg.Wait()

	if o.Stats != nil {
		o.Stats.Scans += scans
		o.Stats.Ands += prog.ops.Ands
		o.Stats.Ors += prog.ops.Ors
		o.Stats.Xors += prog.ops.Xors
		o.Stats.Nots += prog.ops.Nots
	}
	telemetry.SegmentEvalTotal.Inc()
	elapsed := time.Since(t0)
	telemetry.RecordEval(scans, prog.ops.Ands, prog.ops.Ors, prog.ops.Xors,
		prog.ops.Nots, elapsed, o.Trace)
	rows := int64(-1)
	if mode == segCount {
		rows = total.Load()
	}
	frec := flight.Record{
		TraceID: o.Trace.ID(), Plan: planEvalSegmented, Op: op.String(), Value: v,
		Total: elapsed, Rows: rows,
		Scans: scans, Ands: prog.ops.Ands, Ors: prog.ops.Ors,
		Xors: prog.ops.Xors, Nots: prog.ops.Nots,
		CacheHits:   telemetry.CacheHitsTotal.Value() - hits0,
		CacheMisses: telemetry.CacheMissesTotal.Value() - misses0,
	}
	flight.Default().Add(&frec, o.Trace)

	count := int(total.Load())
	any := found.Load()
	if invariant.Enabled {
		ix.segCrossCheck(op, v, prog, srcs, mode, res, count, any)
	}
	return res, count, any
}

// runSegment replays the compiled program over the word window [lo, hi).
//
//bix:hotpath
func runSegment(p *segProgram, srcs, regs []*bitvec.Vector, lo, hi int) {
	for i := range p.instrs {
		in := &p.instrs[i]
		dst := regs[in.dst]
		var src *bitvec.Vector
		if in.src.ref >= 0 {
			src = srcs[in.src.ref]
		} else if in.src.reg >= 0 {
			src = regs[in.src.reg]
		}
		switch in.kind {
		case sLoad:
			dst.CopyRange(src, lo, hi)
		case sZero:
			dst.ZeroRange(lo, hi)
		case sOnes:
			dst.OnesRange(lo, hi)
		case sAnd:
			dst.AndRange(src, lo, hi)
		case sOr:
			dst.OrRange(src, lo, hi)
		case sXor:
			dst.XorRange(src, lo, hi)
		case sAndNot:
			dst.AndNotRange(src, lo, hi)
		case sNot:
			dst.NotRange(lo, hi)
		}
	}
}

// segCrossCheck (bixdebug only) re-evaluates the predicate with the serial
// encoding-specific evaluator, resolving fetches from the already
// prefetched bitmaps, and asserts the segmented outcome matches bit for
// bit (or count for count / any for any).
func (ix *Index) segCrossCheck(op Op, v uint64, prog *segProgram, srcs []*bitvec.Vector, mode int, res *bitvec.Vector, count int, any bool) {
	byKey := make(map[segRef]*bitvec.Vector, len(prog.refs))
	for i, rf := range prog.refs {
		if rf.comp >= 0 {
			byKey[rf] = srcs[i]
		}
	}
	sopt := &EvalOptions{Fetch: func(comp, slot int) *bitvec.Vector {
		bv, ok := byKey[segRef{comp: comp, slot: slot}]
		invariant.Assert(ok, "core: serial evaluator fetched a bitmap the segment program did not")
		return bv
	}}
	var want *bitvec.Vector
	switch ix.enc {
	case RangeEncoded:
		want = ix.EvalRangeOpt(op, v, sopt)
	case EqualityEncoded:
		want = ix.EvalEquality(op, v, sopt)
	default:
		want = ix.EvalInterval(op, v, sopt)
	}
	switch mode {
	case segMaterialize:
		invariant.TailZero(res.Words(), res.Len())
		invariant.Assert(want.Equal(res), "core: segmented result differs from serial")
	case segCount:
		invariant.Assert(want.Count() == count, "core: segmented count differs from serial")
	default: // segAny
		invariant.Assert(want.Any() == any, "core: segmented any differs from serial")
	}
}
