package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bitmapindex/internal/bitvec"
)

// referenceEval computes the expected result bitmap by scanning the raw
// column, the semantics every index evaluator must reproduce.
func referenceEval(vals []uint64, nulls []bool, op Op, v uint64) *bitvec.Vector {
	out := bitvec.New(len(vals))
	for i, a := range vals {
		if nulls != nil && nulls[i] {
			continue
		}
		if op.Matches(a, v) {
			out.Set(i)
		}
	}
	return out
}

type evalFn func(ix *Index, op Op, v uint64, opt *EvalOptions) *bitvec.Vector

func allEvaluators(enc Encoding) map[string]evalFn {
	if enc == RangeEncoded {
		return map[string]evalFn{
			"RangeEvalOpt":   (*Index).EvalRangeOpt,
			"RangeEvalNaive": (*Index).EvalRangeNaive,
			"Eval":           (*Index).Eval,
		}
	}
	return map[string]evalFn{
		"EqualityEval": (*Index).EvalEquality,
		"Eval":         (*Index).Eval,
	}
}

// TestEvalExhaustiveSmall checks every evaluator against the reference for
// every operator and every constant (including out-of-domain constants) on
// a gallery of bases, encodings, and null patterns.
func TestEvalExhaustiveSmall(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	type tc struct {
		card uint64
		base Base
	}
	cases := []tc{
		{2, Base{2}},
		{5, Base{5}},
		{9, Base{3, 3}},
		{9, Base{9}},
		{10, Base{4, 3}}, // product 12 > C
		{12, Base{2, 3, 2}},
		{16, Base{2, 2, 2, 2}},
		{30, Base{3, 5, 2}},
		{7, Base{2, 2, 2}},
	}
	for _, c := range cases {
		for _, withNulls := range []bool{false, true} {
			vals := make([]uint64, 120)
			var nulls []bool
			for i := range vals {
				vals[i] = uint64(r.Intn(int(c.card)))
			}
			var opts *BuildOptions
			if withNulls {
				nulls = make([]bool, len(vals))
				for i := range nulls {
					nulls[i] = r.Intn(7) == 0
				}
				opts = &BuildOptions{Nulls: nulls}
			}
			for _, enc := range []Encoding{EqualityEncoded, RangeEncoded} {
				ix, err := Build(vals, c.card, c.base, enc, opts)
				if err != nil {
					t.Fatalf("Build(%v,%v): %v", c.base, enc, err)
				}
				for name, fn := range allEvaluators(enc) {
					for _, op := range AllOps {
						for v := uint64(0); v < c.card+2; v++ {
							got := fn(ix, op, v, nil)
							want := referenceEval(vals, nulls, op, v)
							if !got.Equal(want) {
								t.Fatalf("%s base=%v enc=%v nulls=%v: A %s %d\n got %s\nwant %s",
									name, c.base, enc, withNulls, op, v, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestEvalAgreementProperty is a quick-check that the two range evaluators
// and the reference always agree on random inputs.
func TestEvalAgreementProperty(t *testing.T) {
	f := func(seed int64, rawOp uint8, v uint64, b1, b2 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		base := Base{uint64(b1%9) + 2, uint64(b2%9) + 2}
		p, _ := base.Product()
		card := p - uint64(r.Intn(int(p/2)))
		op := AllOps[rawOp%6]
		v %= card + 3
		vals := make([]uint64, 80)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
		}
		ix, err := Build(vals, card, base, RangeEncoded, nil)
		if err != nil {
			return false
		}
		want := referenceEval(vals, nil, op, v)
		return ix.EvalRangeOpt(op, v, nil).Equal(want) &&
			ix.EvalRangeNaive(op, v, nil).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalWrongEncodingPanics(t *testing.T) {
	ix, _ := Build([]uint64{0, 1}, 2, Base{2}, EqualityEncoded, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("EvalRangeOpt on equality-encoded index did not panic")
		}
	}()
	ix.EvalRangeOpt(Le, 0, nil)
}

// TestOptNeverMoreScansThanNaive verifies the paper's Section 3 claim: the
// improved algorithm never performs more bitmap scans or operations than
// RangeEval, and strictly fewer scans for the worst-case range predicates.
func TestOptNeverMoreScansThanNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, base := range []Base{{10, 10}, {4, 4, 4}, {2, 2, 2, 2, 2, 2}, {100}} {
		card, _ := base.Product()
		vals := make([]uint64, 50)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
		}
		ix, err := Build(vals, card, base, RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		sawStrictlyFewer := false
		for _, op := range AllOps {
			for v := uint64(0); v < card; v++ {
				var so, sn Stats
				ix.EvalRangeOpt(op, v, &EvalOptions{Stats: &so})
				ix.EvalRangeNaive(op, v, &EvalOptions{Stats: &sn})
				if so.Scans > sn.Scans {
					t.Fatalf("base %v A %s %d: opt scans %d > naive %d", base, op, v, so.Scans, sn.Scans)
				}
				if so.Ops() > sn.Ops() {
					t.Fatalf("base %v A %s %d: opt ops %d > naive %d", base, op, v, so.Ops(), sn.Ops())
				}
				if op.IsRange() && so.Scans < sn.Scans {
					sawStrictlyFewer = true
				}
			}
		}
		if !sawStrictlyFewer {
			t.Errorf("base %v: opt never scanned strictly fewer bitmaps", base)
		}
	}
}

// TestScanBounds checks the paper's worst-case scan counts: RangeEval-Opt
// reads at most 2n-1 bitmaps for a range predicate and at most 2n for an
// equality predicate; RangeEval reads at most 2n.
func TestScanBounds(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, base := range []Base{{10, 10}, {5, 4, 3}, {7}} {
		n := base.N()
		card, _ := base.Product()
		vals := make([]uint64, 30)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
		}
		ix, _ := Build(vals, card, base, RangeEncoded, nil)
		for _, op := range AllOps {
			for v := uint64(0); v < card; v++ {
				var so, sn Stats
				ix.EvalRangeOpt(op, v, &EvalOptions{Stats: &so})
				ix.EvalRangeNaive(op, v, &EvalOptions{Stats: &sn})
				maxOpt := 2*n - 1
				if !op.IsRange() {
					maxOpt = 2 * n
				}
				if so.Scans > maxOpt {
					t.Fatalf("base %v A %s %d: opt scans %d > %d", base, op, v, so.Scans, maxOpt)
				}
				if sn.Scans > 2*n {
					t.Fatalf("base %v A %s %d: naive scans %d > %d", base, op, v, sn.Scans, 2*n)
				}
			}
		}
	}
}

// TestEqualityEvalScanBounds checks the stated behaviour for equality
// encoding: one scan per component for equality predicates; between 0 and
// ceil(b_i/2)+1 per component for range predicates.
func TestEqualityEvalScanBounds(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, base := range []Base{{10, 10}, {6, 5}, {25}, {2, 2, 5}} {
		card, _ := base.Product()
		vals := make([]uint64, 30)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
		}
		ix, _ := Build(vals, card, base, EqualityEncoded, nil)
		for v := uint64(0); v < card; v++ {
			var s Stats
			ix.EvalEquality(Eq, v, &EvalOptions{Stats: &s})
			if s.Scans != base.N() {
				t.Fatalf("base %v A = %d: scans %d, want %d", base, v, s.Scans, base.N())
			}
		}
		budget := 0
		for _, bi := range base {
			budget += int(bi/2) + 1
		}
		for _, op := range []Op{Lt, Le, Gt, Ge} {
			for v := uint64(0); v < card; v++ {
				var s Stats
				ix.EvalEquality(op, v, &EvalOptions{Stats: &s})
				if s.Scans > budget {
					t.Fatalf("base %v A %s %d: scans %d > budget %d", base, op, v, s.Scans, budget)
				}
			}
		}
	}
}

func TestStatsAddAndOps(t *testing.T) {
	a := Stats{Scans: 1, Ands: 2, Ors: 3, Xors: 4, Nots: 5}
	b := Stats{Scans: 10, Ands: 20, Ors: 30, Xors: 40, Nots: 50}
	a.Add(b)
	if a.Scans != 11 || a.Ands != 22 || a.Ors != 33 || a.Xors != 44 || a.Nots != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Ops() != 22+33+44+55 {
		t.Fatalf("Ops = %d", a.Ops())
	}
}

func TestOpHelpers(t *testing.T) {
	for _, op := range AllOps {
		parsed, err := ParseOp(op.String())
		if err != nil || parsed != op {
			t.Fatalf("ParseOp(String(%v)) = %v, %v", op, parsed, err)
		}
	}
	if op, err := ParseOp("=="); err != nil || op != Eq {
		t.Fatal("ParseOp(==) wrong")
	}
	if op, err := ParseOp("<>"); err != nil || op != Ne {
		t.Fatal("ParseOp(<>) wrong")
	}
	if _, err := ParseOp("~"); err == nil {
		t.Fatal("expected error")
	}
	if !Lt.IsRange() || !Ge.IsRange() || Eq.IsRange() || Ne.IsRange() {
		t.Fatal("IsRange wrong")
	}
	if s := Op(42).String(); s != "Op(42)" {
		t.Fatalf("unknown op String = %q", s)
	}
}

func TestBufferedScansNotCounted(t *testing.T) {
	vals := []uint64{0, 5, 9, 3, 7, 2}
	ix, _ := Build(vals, 10, Base{5, 2}, RangeEncoded, nil)
	var unbuf, buf Stats
	ix.EvalRangeOpt(Le, 7, &EvalOptions{Stats: &unbuf})
	ix.EvalRangeOpt(Le, 7, &EvalOptions{
		Stats:    &buf,
		Buffered: func(comp, slot int) bool { return comp == 0 },
	})
	if buf.Scans >= unbuf.Scans {
		t.Fatalf("buffered scans %d not fewer than unbuffered %d", buf.Scans, unbuf.Scans)
	}
	if buf.Ops() != unbuf.Ops() {
		t.Fatalf("buffering must not change op count: %d vs %d", buf.Ops(), unbuf.Ops())
	}
}

// TestFigure7Example reproduces the paper's Figure 7: evaluating A <= 62
// with a 3-component base-<5,5,4> index... the paper uses base-10 over
// C=1000; we use base <5,5,4> over C=100 and check both algorithms give the
// reference answer while Opt uses fewer operations.
func TestFigure7Example(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	vals := make([]uint64, 500)
	for i := range vals {
		vals[i] = uint64(r.Intn(100))
	}
	ix, err := Build(vals, 100, Base{4, 5, 5}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	var so, sn Stats
	got := ix.EvalRangeOpt(Le, 62, &EvalOptions{Stats: &so})
	naive := ix.EvalRangeNaive(Le, 62, &EvalOptions{Stats: &sn})
	want := referenceEval(vals, nil, Le, 62)
	if !got.Equal(want) || !naive.Equal(want) {
		t.Fatal("wrong answer for A <= 62")
	}
	if so.Ops() >= sn.Ops() {
		t.Fatalf("opt ops %d not fewer than naive %d", so.Ops(), sn.Ops())
	}
	if so.Scans != sn.Scans-1 {
		t.Fatalf("opt scans %d, naive %d; want exactly one fewer", so.Scans, sn.Scans)
	}
}

func BenchmarkEvalRangeOptLe(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(r.Intn(1000))
	}
	ix, _ := Build(vals, 1000, Base{10, 10, 10}, RangeEncoded, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.EvalRangeOpt(Le, uint64(i%1000), nil)
	}
}

func BenchmarkEvalRangeNaiveLe(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(r.Intn(1000))
	}
	ix, _ := Build(vals, 1000, Base{10, 10, 10}, RangeEncoded, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.EvalRangeNaive(Le, uint64(i%1000), nil)
	}
}

func BenchmarkBuildRange1000(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(r.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(vals, 1000, Base{10, 10, 10}, RangeEncoded, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvalBetween(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	vals := make([]uint64, 300)
	for i := range vals {
		vals[i] = uint64(r.Intn(30))
	}
	nulls := make([]bool, 300)
	for i := range nulls {
		nulls[i] = r.Intn(10) == 0
	}
	for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
		ix, err := Build(vals, 30, Base{6, 5}, enc, &BuildOptions{Nulls: nulls})
		if err != nil {
			t.Fatal(err)
		}
		for lo := uint64(0); lo < 32; lo += 3 {
			for hi := uint64(0); hi < 32; hi += 3 {
				got := ix.EvalBetween(lo, hi, nil)
				want := bitvec.New(300)
				for i, v := range vals {
					if !nulls[i] && v >= lo && v <= hi {
						want.Set(i)
					}
				}
				if !got.Equal(want) {
					t.Fatalf("enc %v: between [%d,%d] differs", enc, lo, hi)
				}
			}
		}
		// Scan budget: two one-sided evaluations.
		var st Stats
		ix.EvalBetween(7, 22, &EvalOptions{Stats: &st})
		if enc == RangeEncoded && st.Scans > 2*(2*ix.Components()-1) {
			t.Fatalf("between scanned %d bitmaps", st.Scans)
		}
	}
}
