package core

import (
	"math"
	"math/rand"
	"testing"

	"bitmapindex/internal/bitvec"
)

func TestSumSelectedAllEncodings(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, base := range []Base{{9}, {3, 3}, {2, 2, 2, 2}, {4, 3}, {5, 5}} {
		card, _ := base.Product()
		vals := make([]uint64, 300)
		nulls := make([]bool, 300)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
			nulls[i] = r.Intn(9) == 0
		}
		// A selection bitmap over ~half the rows.
		sel := bitvec.New(len(vals))
		for i := range vals {
			if r.Intn(2) == 0 {
				sel.Set(i)
			}
		}
		var wantSum uint64
		wantN := 0
		for i, v := range vals {
			if !nulls[i] && sel.Get(i) {
				wantSum += v
				wantN++
			}
		}
		for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
			ix, err := Build(vals, card, base, enc, &BuildOptions{Nulls: nulls})
			if err != nil {
				t.Fatal(err)
			}
			sum, n, err := ix.SumSelected(sel)
			if err != nil {
				t.Fatal(err)
			}
			if sum != wantSum || n != wantN {
				t.Fatalf("base %v enc %v: Sum = %d over %d rows, want %d over %d",
					base, enc, sum, n, wantSum, wantN)
			}
			avg, an, err := ix.AvgSelected(sel)
			if err != nil {
				t.Fatal(err)
			}
			if an != wantN || math.Abs(avg-float64(wantSum)/float64(wantN)) > 1e-12 {
				t.Fatalf("base %v enc %v: Avg = %f over %d", base, enc, avg, an)
			}
		}
	}
}

func TestSumSelectedNilSelection(t *testing.T) {
	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	ix, err := Build(vals, 9, Base{3, 3}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, n, err := ix.SumSelected(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 32 || n != 10 {
		t.Fatalf("Sum = %d over %d, want 32 over 10", sum, n)
	}
}

func TestSumSelectedEmptyAndErrors(t *testing.T) {
	vals := []uint64{1, 2, 3}
	ix, _ := Build(vals, 4, Base{4}, EqualityEncoded, nil)
	sum, n, err := ix.SumSelected(bitvec.New(3))
	if err != nil || sum != 0 || n != 0 {
		t.Fatalf("empty selection: %d %d %v", sum, n, err)
	}
	avg, n, err := ix.AvgSelected(bitvec.New(3))
	if err != nil || avg != 0 || n != 0 {
		t.Fatalf("empty avg: %f %d %v", avg, n, err)
	}
	if _, _, err := ix.SumSelected(bitvec.New(5)); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

// TestBitSlicedSum: on a base-2 equality-encoded index the computation is
// the textbook bit-sliced sum; verify it on larger data.
func TestBitSlicedSum(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	vals := make([]uint64, 5000)
	var want uint64
	for i := range vals {
		vals[i] = uint64(r.Intn(1024))
		want += vals[i]
	}
	ix, err := Build(vals, 1024, Uniform(2, 10), EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := ix.SumSelected(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || n != len(vals) {
		t.Fatalf("bit-sliced sum = %d, want %d", got, want)
	}
}

func TestHistogram(t *testing.T) {
	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	for _, enc := range []Encoding{EqualityEncoded, RangeEncoded, IntervalEncoded} {
		ix, err := Build(vals, 9, Base{3, 3}, enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		h := ix.Histogram()
		want := []int{1, 1, 4, 1, 0, 1, 0, 1, 1}
		for v, c := range want {
			if h[v] != c {
				t.Fatalf("enc %v: histogram[%d] = %d, want %d", enc, v, h[v], c)
			}
		}
	}
}

func TestHistogramSelectedAndTopK(t *testing.T) {
	vals := []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}
	ix, err := Build(vals, 9, Base{3, 3}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel := bitvec.FromIndices(10, []int{0, 1, 2, 3, 4}) // first five rows
	h, err := ix.HistogramSelected(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1, 0, 0, 0, 0, 1}
	for v, c := range want {
		if h[v] != c {
			t.Fatalf("histogram[%d] = %d, want %d", v, h[v], c)
		}
	}
	top, err := ix.TopKSelected(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0] != (ValueCount{Value: 2, Count: 4}) {
		t.Fatalf("top = %v", top)
	}
	// Ties break toward smaller values.
	if top[1].Count != 1 || top[1].Value != 0 {
		t.Fatalf("second = %v, want value 0 count 1", top[1])
	}
	if got, err := ix.TopKSelected(0, nil); err != nil || got != nil {
		t.Fatal("k=0 must return nothing")
	}
	if _, err := ix.HistogramSelected(bitvec.New(3)); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := ix.TopKSelected(1, bitvec.New(3)); err == nil {
		t.Fatal("length mismatch must propagate")
	}
	// Asking for more than exist returns all non-zero entries.
	all, err := ix.TopKSelected(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("distinct values = %d, want 7", len(all))
	}
}
