package core

import (
	"fmt"
	"sort"

	"bitmapindex/internal/bitvec"
)

// SumSelected computes the sum of the indexed values over the selected
// rows using only bitmap ANDs and population counts — no per-row value
// access. This is the aggregation technique the paper attributes to
// Bit-Sliced indexes in Sybase IQ, generalized here to every encoding and
// base:
//
//   - equality encoding: sum += weight_i * j * Count(E_i^j AND sel)
//   - range encoding:    per component, sum of digits = sum over j of
//     Count(digit > j) = selCount - Count(B_i^j AND sel)
//   - interval encoding: digit-equality bitmaps are reconstructed from at
//     most two windows each
//
// where weight_i is the mixed-radix place value of component i. sel may
// be nil (aggregate over every row); null rows never contribute. The
// second result is the number of non-null rows aggregated. For a base-2
// equality-encoded index this degenerates to exactly the classic
// bit-sliced sum: one AND and one popcount per bit slice.
//
// The sum is computed in uint64; it overflows only when N*C exceeds 2^64.
func (ix *Index) SumSelected(sel *bitvec.Vector) (sum uint64, n int, err error) {
	selNN := ix.nn.Clone()
	if sel != nil {
		if sel.Len() != ix.rows {
			return 0, 0, fmt.Errorf("core: selection has %d bits, index has %d rows", sel.Len(), ix.rows)
		}
		selNN.And(sel)
	}
	n = selNN.Count()
	if n == 0 {
		return 0, 0, nil
	}
	qc := newQctx(ix, nil)
	weight := uint64(1)
	for i, bi := range ix.base {
		var digitSum uint64
		switch ix.enc {
		case EqualityEncoded:
			if bi == 2 {
				digitSum = uint64(bitvec.AndCount(ix.comps[i][0], selNN)) // E^1
				break
			}
			for j := uint64(1); j < bi; j++ {
				digitSum += j * uint64(bitvec.AndCount(ix.comps[i][j], selNN))
			}
		case RangeEncoded:
			// sum of digits = sum_{j=0}^{b-2} Count(digit > j).
			for j := uint64(0); j < bi-1; j++ {
				digitSum += uint64(n - bitvec.AndCount(ix.comps[i][j], selNN))
			}
		case IntervalEncoded:
			for d := uint64(1); d < bi; d++ {
				digitSum += d * uint64(bitvec.AndCount(qc.ivEQDigit(i, d), selNN))
			}
		default:
			return 0, 0, fmt.Errorf("core: unknown encoding %v", ix.enc)
		}
		sum += weight * digitSum
		weight *= bi
	}
	return sum, n, nil
}

// AvgSelected returns the mean of the indexed values over the selected
// rows, and the number of rows aggregated (0 means an empty selection and
// a mean of 0).
func (ix *Index) AvgSelected(sel *bitvec.Vector) (float64, int, error) {
	sum, n, err := ix.SumSelected(sel)
	if err != nil || n == 0 {
		return 0, n, err
	}
	return float64(sum) / float64(n), n, nil
}

// Histogram returns the number of non-null rows per value, computed from
// the index alone (C equality evaluations). Intended for statistics and
// verification rather than hot paths.
func (ix *Index) Histogram() []int {
	h, _ := ix.HistogramSelected(nil)
	return h
}

// HistogramSelected returns per-value counts restricted to the selected
// rows (nil means all rows), plus the number of rows counted.
func (ix *Index) HistogramSelected(sel *bitvec.Vector) ([]int, error) {
	selNN, _, err := ix.selAndCount(sel)
	if err != nil {
		return nil, err
	}
	out := make([]int, ix.card)
	for v := uint64(0); v < ix.card; v++ {
		out[v] = bitvec.AndCount(ix.Eval(Eq, v, nil), selNN)
	}
	return out, nil
}

// ValueCount is one histogram entry.
type ValueCount struct {
	Value uint64
	Count int
}

// TopKSelected returns the k most frequent values among the selected rows
// (nil means all rows), most frequent first; ties break toward smaller
// values. Values with zero occurrences are omitted.
func (ix *Index) TopKSelected(k int, sel *bitvec.Vector) ([]ValueCount, error) {
	if k <= 0 {
		return nil, nil
	}
	h, err := ix.HistogramSelected(sel)
	if err != nil {
		return nil, err
	}
	out := make([]ValueCount, 0, len(h))
	for v, c := range h {
		if c > 0 {
			out = append(out, ValueCount{Value: uint64(v), Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}
