package core

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"bitmapindex/internal/bitvec"
)

// segSizes are row counts straddling the default segment boundary
// (k*2^18 +/- 1), where window/tail-mask bugs live.
var segSizes = []int{(1 << 18) - 1, 1 << 18, (1 << 18) + 1}

// TestSegmentedMatchesSerialProperty is the keystone property test:
// segmented evaluation returns the same bitmap AND the same Stats as the
// serial evaluator for every encoding, every operator, boundary row
// counts, several bases and several segment configurations.
func TestSegmentedMatchesSerialProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const card = 20
	bases := []Base{{5, 4}, {20}, {5, 2, 2}}
	cfgs := []SegConfig{
		{}, // defaults: one or two segments at these sizes
		{SegBits: 14, Workers: 3},
		{SegBits: MinSegBits, Workers: 1},
	}
	for _, n := range segSizes {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(r.Intn(card))
		}
		for _, base := range bases {
			for _, enc := range []Encoding{RangeEncoded, EqualityEncoded, IntervalEncoded} {
				ix, err := Build(vals, card, base, enc, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range AllOps {
					for _, v := range []uint64{0, 7, card - 1, card + 5} {
						var wst Stats
						want := ix.Eval(op, v, &EvalOptions{Stats: &wst})
						for _, cfg := range cfgs {
							var gst Stats
							got := ix.SegmentedEval(op, v, &EvalOptions{Stats: &gst}, cfg)
							if !got.Equal(want) {
								t.Fatalf("n=%d base=%v enc=%v A %s %d cfg=%+v: segmented result differs",
									n, base, enc, op, v, cfg)
							}
							if gst != wst {
								t.Fatalf("n=%d base=%v enc=%v A %s %d cfg=%+v: stats %+v, want %+v",
									n, base, enc, op, v, cfg, gst, wst)
							}
						}
					}
				}
			}
		}
	}
}

// TestSegmentedLargeMultiSegment covers a run of several full segments
// plus a ragged tail at a narrower segment width.
func TestSegmentedLargeMultiSegment(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 3<<16 + 1
	const card = 100
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(r.Intn(card))
	}
	ix, err := Build(vals, card, Base{10, 10}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SegConfig{SegBits: 12, Workers: 4} // 17 segments
	for _, op := range AllOps {
		for v := uint64(0); v < card; v += 13 {
			want := ix.Eval(op, v, nil)
			if got := ix.SegmentedEval(op, v, nil, cfg); !got.Equal(want) {
				t.Fatalf("A %s %d: segmented result differs", op, v)
			}
			if got := ix.SegmentedCount(op, v, nil, cfg); got != want.Count() {
				t.Fatalf("A %s %d: SegmentedCount = %d, want %d", op, v, got, want.Count())
			}
			if got := ix.SegmentedAny(op, v, nil, cfg); got != want.Any() {
				t.Fatalf("A %s %d: SegmentedAny = %v, want %v", op, v, got, want.Any())
			}
		}
	}
}

// TestSegmentedCountAnyEmpty pins the count/any fast paths on empty and
// trivial results, including a non-trivial empty result (a present-rank
// equality that no row carries).
func TestSegmentedCountAnyEmpty(t *testing.T) {
	n := 1<<14 + 3
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 10) // values 0..9 out of card 20: ranks 10..19 are empty
	}
	ix, err := Build(vals, 20, Base{5, 4}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SegConfig{SegBits: 10, Workers: 2}
	if got := ix.SegmentedCount(Eq, 15, nil, cfg); got != 0 {
		t.Fatalf("empty Eq count = %d", got)
	}
	if ix.SegmentedAny(Eq, 15, nil, cfg) {
		t.Fatal("empty Eq reported any=true")
	}
	if got := ix.SegmentedCount(Lt, 0, nil, cfg); got != 0 {
		t.Fatalf("A < 0 count = %d", got)
	}
	if got := ix.SegmentedCount(Ge, 0, nil, cfg); got != n {
		t.Fatalf("A >= 0 count = %d, want %d", got, n)
	}
	if !ix.SegmentedAny(Le, 0, nil, cfg) {
		t.Fatal("A <= 0 reported any=false")
	}
	// Trivial constants (v >= card).
	if got := ix.SegmentedCount(Le, 99, nil, cfg); got != n {
		t.Fatalf("trivial Le count = %d, want %d", got, n)
	}
	if got := ix.SegmentedCount(Gt, 99, nil, cfg); got != 0 {
		t.Fatalf("trivial Gt count = %d", got)
	}
}

// TestSegmentedWithNulls checks the null-masking path segment by segment.
func TestSegmentedWithNulls(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 1<<13 + 5
	vals := make([]uint64, n)
	nulls := make([]bool, n)
	for i := range vals {
		vals[i] = uint64(r.Intn(7))
		nulls[i] = r.Intn(5) == 0
	}
	for _, enc := range []Encoding{RangeEncoded, EqualityEncoded, IntervalEncoded} {
		ix, err := Build(vals, 7, Base{7}, enc, &BuildOptions{Nulls: nulls})
		if err != nil {
			t.Fatal(err)
		}
		cfg := SegConfig{SegBits: 9, Workers: 3}
		for _, op := range AllOps {
			for v := uint64(0); v < 7; v++ {
				want := ix.Eval(op, v, nil)
				if got := ix.SegmentedEval(op, v, nil, cfg); !got.Equal(want) {
					t.Fatalf("enc=%v A %s %d: segmented result differs with nulls", enc, op, v)
				}
			}
		}
	}
}

// TestSegConfigNormalization pins the clamping rules.
func TestSegConfigNormalization(t *testing.T) {
	got := SegConfig{}.normalized()
	if got.SegBits != DefaultSegBits || got.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero config normalized to %+v", got)
	}
	got = SegConfig{SegBits: 2, Workers: -3}.normalized()
	if got.SegBits != MinSegBits || got.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("clamped config normalized to %+v", got)
	}
	// A tiny index with more workers than segments must still work.
	ix, err := Build([]uint64{0, 1, 2, 1}, 3, Base{3}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.Eval(Le, 1, nil)
	if got := ix.SegmentedEval(Le, 1, nil, SegConfig{Workers: 64}); !got.Equal(want) {
		t.Fatal("tiny index segmented result differs")
	}
}

// TestEvalBatchIntraQueryPath forces the few-queries/many-rows branch and
// checks it still returns serial-identical results and per-query stats.
func TestEvalBatchIntraQueryPath(t *testing.T) {
	old := batchIntraMinRows
	batchIntraMinRows = 1 << 10
	defer func() { batchIntraMinRows = old }()

	r := rand.New(rand.NewSource(11))
	vals := make([]uint64, 1<<12)
	for i := range vals {
		vals[i] = uint64(r.Intn(50))
	}
	ix, err := Build(vals, 50, Base{10, 5}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{Op: Le, V: 20}, {Op: Eq, V: 7}} // fewer queries than workers
	stats := make([]Stats, len(queries))
	got := ix.EvalBatch(queries, 4, stats, nil)
	for i, q := range queries {
		var st Stats
		want := ix.Eval(q.Op, q.V, &EvalOptions{Stats: &st})
		if !got[i].Equal(want) {
			t.Fatalf("query %d: intra-query batch result differs", i)
		}
		if stats[i] != st {
			t.Fatalf("query %d: stats %+v, want %+v", i, stats[i], st)
		}
	}
}

// TestEvalBatchOptionsTemplate checks that Fetch/Buffered thread through
// the batch and that tmpl.Stats is ignored in favor of the stats slice.
func TestEvalBatchOptionsTemplate(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	vals := make([]uint64, 4000)
	for i := range vals {
		vals[i] = uint64(r.Intn(30))
	}
	ix, err := Build(vals, 30, Base{6, 5}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{Op: Le, V: 10}, {Op: Gt, V: 3}, {Op: Ne, V: 7}, {Op: Eq, V: 0}}

	var fetched int64
	var tmplStats Stats
	tmpl := &EvalOptions{
		Stats: &tmplStats, // must be ignored
		Fetch: func(comp, slot int) *bitvec.Vector {
			atomic.AddInt64(&fetched, 1)
			return ix.StoredBitmap(comp, slot)
		},
		Buffered: func(comp, slot int) bool { return comp == 0 && slot == 0 },
	}
	stats := make([]Stats, len(queries))
	got := ix.EvalBatch(queries, 2, stats, tmpl)
	if fetched == 0 {
		t.Fatal("template Fetch was never called")
	}
	if tmplStats != (Stats{}) {
		t.Fatalf("tmpl.Stats was written: %+v", tmplStats)
	}
	for i, q := range queries {
		var st Stats
		want := ix.Eval(q.Op, q.V, &EvalOptions{Stats: &st, Buffered: tmpl.Buffered})
		if !got[i].Equal(want) {
			t.Fatalf("query %d: batch result differs", i)
		}
		if stats[i] != st {
			t.Fatalf("query %d: stats %+v, want %+v", i, stats[i], st)
		}
	}
}

// TestSegRegSet pins the register-recycling contract deterministically
// (never asserting pool hits: the runtime may drop pool entries at any
// GC): shape and aliasing on checkout, result-reference clearing on
// return, and full rebuild when the row count changes.
func TestSegRegSet(t *testing.T) {
	const rows = 1 << 10
	shared := bitvec.New(rows)

	rs := getSegRegs(rows, 3, shared)
	if rs.rows != rows || len(rs.regs) != 3 {
		t.Fatalf("checkout shape: rows=%d regs=%d, want %d/3", rs.rows, len(rs.regs), rows)
	}
	if rs.regs[0] != shared {
		t.Fatal("materialize mode must alias register 0 to the shared result")
	}
	for i := 1; i < 3; i++ {
		if rs.regs[i] == nil || rs.regs[i] == shared || rs.regs[i].Len() != rows {
			t.Fatalf("register %d: got %v, want owned scratch of %d rows", i, rs.regs[i], rows)
		}
	}
	regs := rs.regs
	putSegRegs(rs)
	for i, r := range regs {
		if r != nil {
			t.Fatalf("putSegRegs left register %d set; the pool must not retain result references", i)
		}
	}

	// Count/Any mode: no shared vector, register 0 is scratch too.
	rs2 := getSegRegs(rows, 2, nil)
	if rs2.regs[0] == nil || rs2.regs[0].Len() != rows {
		t.Fatal("count mode must provide scratch for register 0")
	}
	putSegRegs(rs2)

	// A row-count change must discard recycled state entirely.
	segRegPool.Put(&segRegSet{rows: rows, vecs: []*bitvec.Vector{bitvec.New(rows)}})
	rs3 := getSegRegs(2*rows, 2, nil)
	if rs3.rows != 2*rows {
		t.Fatalf("rows after mismatched checkout = %d, want %d", rs3.rows, 2*rows)
	}
	for i, r := range rs3.regs {
		if r.Len() != 2*rows {
			t.Fatalf("register %d has %d rows, want %d", i, r.Len(), 2*rows)
		}
	}
	putSegRegs(rs3)

	// Growing the register demand on a recycled set allocates the extras.
	segRegPool.Put(&segRegSet{rows: rows})
	rs4 := getSegRegs(rows, 4, nil)
	if len(rs4.regs) != 4 {
		t.Fatalf("grew to %d registers, want 4", len(rs4.regs))
	}
	for i, r := range rs4.regs {
		if r == nil || r.Len() != rows {
			t.Fatalf("register %d missing after growth", i)
		}
	}
	putSegRegs(rs4)
}
