package core

import (
	"math/rand"
	"testing"
)

func TestEvalBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	vals := make([]uint64, 2000)
	for i := range vals {
		vals[i] = uint64(r.Intn(100))
	}
	ix, err := Build(vals, 100, Base{10, 10}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	var queries []Query
	for _, op := range AllOps {
		for v := uint64(0); v < 100; v += 3 {
			queries = append(queries, Query{Op: op, V: v})
		}
	}
	for _, par := range []int{0, 1, 2, 7, 64, len(queries) + 5} {
		stats := make([]Stats, len(queries))
		got := ix.EvalBatch(queries, par, stats, nil)
		if len(got) != len(queries) {
			t.Fatalf("par=%d: got %d results", par, len(got))
		}
		for i, q := range queries {
			var st Stats
			want := ix.Eval(q.Op, q.V, &EvalOptions{Stats: &st})
			if !got[i].Equal(want) {
				t.Fatalf("par=%d query %d (A %s %d): result differs", par, i, q.Op, q.V)
			}
			if stats[i] != st {
				t.Fatalf("par=%d query %d: stats %+v, want %+v", par, i, stats[i], st)
			}
		}
	}
}

func TestEvalBatchEdgeCases(t *testing.T) {
	ix, _ := Build([]uint64{0, 1}, 2, Base{2}, RangeEncoded, nil)
	if out := ix.EvalBatch(nil, 4, nil, nil); len(out) != 0 {
		t.Fatal("empty batch must return empty slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched stats length must panic")
		}
	}()
	ix.EvalBatch([]Query{{Op: Eq, V: 0}}, 1, make([]Stats, 2), nil)
}

func BenchmarkEvalBatchParallel(b *testing.B) {
	r := rand.New(rand.NewSource(45))
	vals := make([]uint64, 1<<18)
	for i := range vals {
		vals[i] = uint64(r.Intn(1000))
	}
	ix, err := Build(vals, 1000, Base{32, 32}, RangeEncoded, nil)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{Op: AllOps[i%6], V: uint64(i * 15)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.EvalBatch(queries, 0, nil, nil)
	}
}
