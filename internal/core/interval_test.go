package core

import (
	"math/rand"
	"testing"
)

// TestIntervalExhaustive checks the interval evaluator against the scalar
// reference for every operator and constant across a gallery of bases
// (odd, even, base-2, single- and multi-component) and null patterns.
func TestIntervalExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	cases := []struct {
		card uint64
		base Base
	}{
		{2, Base{2}},
		{3, Base{3}},
		{4, Base{4}},
		{5, Base{5}},
		{9, Base{3, 3}},
		{9, Base{9}},
		{10, Base{10}},
		{10, Base{4, 3}},
		{12, Base{2, 3, 2}},
		{16, Base{2, 2, 2, 2}},
		{30, Base{3, 5, 2}},
		{50, Base{10, 5}},
		{100, Base{100}},
	}
	for _, c := range cases {
		for _, withNulls := range []bool{false, true} {
			vals := make([]uint64, 150)
			var nulls []bool
			for i := range vals {
				vals[i] = uint64(r.Intn(int(c.card)))
			}
			var opts *BuildOptions
			if withNulls {
				nulls = make([]bool, len(vals))
				for i := range nulls {
					nulls[i] = r.Intn(6) == 0
				}
				opts = &BuildOptions{Nulls: nulls}
			}
			ix, err := Build(vals, c.card, c.base, IntervalEncoded, opts)
			if err != nil {
				t.Fatalf("Build(%v): %v", c.base, err)
			}
			for _, op := range AllOps {
				for v := uint64(0); v < c.card+2; v++ {
					got := ix.EvalInterval(op, v, nil)
					want := referenceEval(vals, nulls, op, v)
					if !got.Equal(want) {
						t.Fatalf("base %v nulls=%v: A %s %d\n got %s\nwant %s",
							c.base, withNulls, op, v, got, want)
					}
					// The generic dispatcher must route here too.
					if !ix.Eval(op, v, nil).Equal(want) {
						t.Fatalf("base %v: Eval dispatch differs for A %s %d", c.base, op, v)
					}
				}
			}
		}
	}
}

// TestIntervalStoredBitmaps verifies the window semantics directly: stored
// bitmap j of a component marks digits in [j, j+m-1].
func TestIntervalStoredBitmaps(t *testing.T) {
	for _, base := range []Base{{6}, {7}, {4, 5}, {2, 9}} {
		card, _ := base.Product()
		vals := make([]uint64, int(card))
		for i := range vals {
			vals[i] = uint64(i) // every value once
		}
		ix, err := Build(vals, card, base, IntervalEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		digits := make([]uint64, base.N())
		for i, bi := range base {
			m := ivWindows(bi)
			if ix.ComponentBitmaps(i) != m {
				t.Fatalf("base %v comp %d: %d bitmaps, want %d", base, i, ix.ComponentBitmaps(i), m)
			}
			for j := 0; j < m; j++ {
				bm := ix.StoredBitmap(i, j)
				for r := range vals {
					base.Decompose(vals[r], digits)
					d := digits[i]
					want := d >= uint64(j) && d <= uint64(j+m-1)
					if bm.Get(r) != want {
						t.Fatalf("base %v comp %d window %d row %d (digit %d): got %v want %v",
							base, i, j, r, d, bm.Get(r), want)
					}
				}
			}
		}
	}
}

// TestIntervalSpaceHalvesRange: the extension's selling point — interval
// encoding stores about half as many bitmaps as range encoding.
func TestIntervalSpaceHalvesRange(t *testing.T) {
	for _, base := range []Base{{100}, {10, 10}, {32, 32}} {
		card, _ := base.Product()
		vals := []uint64{0, card - 1}
		rix, err := Build(vals, card, base, RangeEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		iix, err := Build(vals, card, base, IntervalEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		if iix.NumBitmaps() > rix.NumBitmaps()/2+base.N() {
			t.Fatalf("base %v: interval stores %d bitmaps vs range %d; expected about half",
				base, iix.NumBitmaps(), rix.NumBitmaps())
		}
	}
}

// TestIntervalScanBounds: every single-digit comparison needs at most two
// stored bitmaps, so a query reads at most 4 per component (2 for the
// less-than part, 2 for the prefix-equality part).
func TestIntervalScanBounds(t *testing.T) {
	for _, base := range []Base{{10}, {7, 9}, {4, 5, 6}} {
		card, _ := base.Product()
		ix, err := Build([]uint64{0}, card, base, IntervalEncoded, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range AllOps {
			for v := uint64(0); v < card; v++ {
				var st Stats
				ix.EvalInterval(op, v, &EvalOptions{Stats: &st})
				max := 4 * base.N()
				if !op.IsRange() {
					max = 2 * base.N()
				}
				if st.Scans > max {
					t.Fatalf("base %v A %s %d: %d scans > %d", base, op, v, st.Scans, max)
				}
			}
		}
	}
}

func TestIntervalValueRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, base := range []Base{{12}, {4, 3}, {2, 3, 2}, {5, 5}} {
		card, _ := base.Product()
		vals := make([]uint64, 200)
		nulls := make([]bool, 200)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
			nulls[i] = r.Intn(10) == 0
		}
		ix, err := Build(vals, card, base, IntervalEncoded, &BuildOptions{Nulls: nulls})
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			got, ok := ix.Value(i)
			if nulls[i] {
				if ok {
					t.Fatalf("base %v row %d: expected null", base, i)
				}
				continue
			}
			if !ok || got != vals[i] {
				t.Fatalf("base %v row %d: Value = %d,%v want %d", base, i, got, ok, vals[i])
			}
		}
	}
}

func TestIntervalEncodingParse(t *testing.T) {
	if IntervalEncoded.String() != "interval" {
		t.Fatal("String wrong")
	}
	for _, s := range []string{"interval", "iv", "I"} {
		if e, err := ParseEncoding(s); err != nil || e != IntervalEncoded {
			t.Fatalf("ParseEncoding(%q) = %v, %v", s, e, err)
		}
	}
}
