package core

import (
	"fmt"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/flight"
	"bitmapindex/internal/invariant"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
)

// Op is a selection predicate comparison operator. The paper's query class
// is Q = {A op v : op in {<, <=, >, >=, =, !=}, 0 <= v < C}.
type Op uint8

const (
	Lt Op = iota // A < v
	Le           // A <= v
	Gt           // A > v
	Ge           // A >= v
	Eq           // A = v
	Ne           // A != v
)

// AllOps lists every operator, in a fixed order, for exhaustive sweeps.
var AllOps = []Op{Lt, Le, Gt, Ge, Eq, Ne}

// String returns the SQL-ish spelling of the operator.
func (op Op) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// IsRange reports whether the operator is a range operator (<, <=, >, >=)
// as opposed to an equality operator (=, !=).
func (op Op) IsRange() bool { return op <= Ge }

// ParseOp parses an operator spelling ("<", "<=", ">", ">=", "=", "==",
// "!=", "<>").
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	case "=", "==":
		return Eq, nil
	case "!=", "<>":
		return Ne, nil
	}
	return 0, fmt.Errorf("core: unknown operator %q", s)
}

// Matches reports whether value a satisfies the predicate (a op v). It is
// the scalar reference semantics every evaluator must agree with.
func (op Op) Matches(a, v uint64) bool {
	switch op {
	case Lt:
		return a < v
	case Le:
		return a <= v
	case Gt:
		return a > v
	case Ge:
		return a >= v
	case Eq:
		return a == v
	case Ne:
		return a != v
	default:
		panic("core: invalid op")
	}
}

// Stats accumulates the paper's two cost measures while evaluating queries:
// the number of bitmap scans (distinct stored bitmaps read, the I/O metric)
// and the number of bitmap operations by kind (the CPU metric). A single
// Stats may be reused across queries; the counters only ever accumulate.
type Stats struct {
	Scans int // distinct stored bitmaps read
	Ands  int
	Ors   int
	Xors  int
	Nots  int
}

// Ops returns the total number of bitmap operations.
func (s *Stats) Ops() int { return s.Ands + s.Ors + s.Xors + s.Nots }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Scans += o.Scans
	s.Ands += o.Ands
	s.Ors += o.Ors
	s.Xors += o.Xors
	s.Nots += o.Nots
}

// EvalOptions tunes a single evaluation.
type EvalOptions struct {
	// Stats, when non-nil, accumulates scan and operation counts.
	Stats *Stats
	// Buffered, when non-nil, reports whether stored bitmap slot j of
	// component i is resident in the bitmap buffer; reads of buffered
	// bitmaps do not count as scans (paper Section 10).
	Buffered func(comp, slot int) bool
	// Fetch, when non-nil, overrides in-memory bitmap access: the
	// evaluator obtains stored bitmap slot j of component i by calling
	// Fetch(i, j). Required for shell indexes (NewShell); the returned
	// vector must have Rows() bits and must not be retained or mutated by
	// Fetch after returning.
	Fetch func(comp, slot int) *bitvec.Vector
	// Trace, when non-nil, accumulates per-phase wall-clock durations
	// (bitmap fetch, boolean ops, ...) for this evaluation.
	Trace *telemetry.Trace
}

// qctx is the per-query evaluation context: instrumentation plus the
// per-query fetch cache that makes "scans" mean distinct bitmaps read.
type qctx struct {
	ix      *Index
	st      *Stats
	buf     func(comp, slot int) bool
	fetchFn func(comp, slot int) *bitvec.Vector
	tr      *telemetry.Trace
	seen    map[uint64]bool
}

func newQctx(ix *Index, opt *EvalOptions) *qctx {
	qc := &qctx{ix: ix}
	if opt != nil {
		qc.st = opt.Stats
		qc.buf = opt.Buffered
		qc.fetchFn = opt.Fetch
		qc.tr = opt.Trace
	}
	if qc.st != nil {
		// Allocated here, once per query, so the per-bitmap fetch path
		// stays allocation-free.
		qc.seen = make(map[uint64]bool, 8)
	}
	return qc
}

// fetch returns stored bitmap slot j of component i, counting a scan the
// first time each bitmap is read within this query (unless buffered).
//
//bix:hotpath
func (qc *qctx) fetch(i, j int) *bitvec.Vector {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseFetch).End()
	}
	if qc.st != nil {
		key := uint64(i)<<32 | uint64(uint32(j))
		if !qc.seen[key] {
			qc.seen[key] = true
			if qc.buf == nil || !qc.buf(i, j) {
				qc.st.Scans++
			}
		}
	}
	if qc.fetchFn != nil {
		return qc.fetchFn(i, j)
	}
	return qc.ix.comps[i][j]
}

//bix:hotpath
func (qc *qctx) and(dst, src *bitvec.Vector) {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseBoolOps).End()
	}
	dst.And(src)
	if qc.st != nil {
		qc.st.Ands++
	}
}

//bix:hotpath
func (qc *qctx) or(dst, src *bitvec.Vector) {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseBoolOps).End()
	}
	dst.Or(src)
	if qc.st != nil {
		qc.st.Ors++
	}
}

//bix:hotpath
func (qc *qctx) xor(dst, src *bitvec.Vector) {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseBoolOps).End()
	}
	dst.Xor(src)
	if qc.st != nil {
		qc.st.Xors++
	}
}

//bix:hotpath
func (qc *qctx) not(dst *bitvec.Vector) {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseBoolOps).End()
	}
	dst.Not()
	if qc.st != nil {
		qc.st.Nots++
	}
}

// andNot counts as one AND plus one NOT, matching the paper's operation
// inventory (AND, OR, XOR, NOT).
//
//bix:hotpath
func (qc *qctx) andNot(dst, src *bitvec.Vector) {
	if qc.tr != nil {
		defer qc.tr.Start(telemetry.PhaseBoolOps).End()
	}
	dst.AndNot(src)
	if qc.st != nil {
		qc.st.Ands++
		qc.st.Nots++
	}
}

func (qc *qctx) zeros() *bitvec.Vector { return bitvec.New(qc.ix.rows) }
func (qc *qctx) ones() *bitvec.Vector  { return bitvec.NewOnes(qc.ix.rows) }

// nonNull returns a fresh copy of B_nn (reading B_nn is not counted as a
// scan: the paper's scan counts are over the value bitmaps).
func (qc *qctx) nonNull() *bitvec.Vector { return qc.ix.nn.Clone() }

// finishPositive AND-masks a result that was built only from stored value
// bitmaps ORed together; such results can only contain non-null rows
// already, except when they started from the implicit all-ones bitmap.
func (qc *qctx) maskNN(b *bitvec.Vector) *bitvec.Vector {
	if qc.ix.hasNulls {
		qc.and(b, qc.ix.nn)
	}
	return b
}

// Eval evaluates the selection predicate (A op v) and returns the bitmap of
// qualifying records. For range-encoded indexes it uses RangeEval-Opt; for
// equality-encoded indexes it uses the equality evaluator. v may be any
// uint64; values >= Cardinality are handled by their natural semantics.
//
// Every Eval also publishes its scan and operation counts plus wall-clock
// latency to the process-wide telemetry registry (telemetry.Default), so
// the paper's two cost measures are observable without threading a Stats
// through every caller. Calling the encoding-specific evaluators directly
// bypasses the registry.
func (ix *Index) Eval(op Op, v uint64, opt *EvalOptions) *bitvec.Vector {
	var o EvalOptions
	if opt != nil {
		o = *opt
	}
	var local Stats
	if o.Stats == nil {
		o.Stats = &local
	}
	before := *o.Stats
	hits0, misses0 := telemetry.CacheHitsTotal.Value(), telemetry.CacheMissesTotal.Value()
	t0 := time.Now()
	var res *bitvec.Vector
	var plan string
	profile.Do(o.Trace.ID(), "eval", func() {
		switch ix.enc {
		case RangeEncoded:
			plan = planEvalRange
			res = ix.EvalRangeOpt(op, v, &o)
		case EqualityEncoded:
			plan = planEvalEquality
			res = ix.EvalEquality(op, v, &o)
		case IntervalEncoded:
			plan = planEvalInterval
			res = ix.EvalInterval(op, v, &o)
		default:
			panic("core: unknown encoding")
		}
	})
	d := *o.Stats
	if invariant.Enabled {
		invariant.TailZero(res.Words(), res.Len())
		if ix.enc == RangeEncoded {
			// Cross-check the paper's Section 3 claim under -tags bixdebug:
			// RangeEval-Opt agrees with RangeEval on every predicate and,
			// for range operators, never performs more bitmap operations.
			// (Equality operators are excluded from the op comparison: on a
			// nullable index the single-bitmap rewrite pays one extra AND
			// with B_nn that the B_EQ chain does not.)
			var ns Stats
			nres := ix.EvalRangeNaive(op, v, &EvalOptions{Stats: &ns, Fetch: o.Fetch})
			invariant.Assert(nres.Equal(res), "core: RangeEval disagrees with RangeEval-Opt")
			if op.IsRange() {
				invariant.OptNoWorse(d.Ops()-before.Ops(), ns.Ops(),
					"core: RangeEval-Opt vs RangeEval, op "+op.String())
			}
		}
	}
	elapsed := time.Since(t0)
	telemetry.RecordEval(d.Scans-before.Scans, d.Ands-before.Ands,
		d.Ors-before.Ors, d.Xors-before.Xors, d.Nots-before.Nots, elapsed, o.Trace)
	frec := flight.Record{
		TraceID: o.Trace.ID(), Plan: plan, Op: op.String(), Value: v,
		Total: elapsed, Rows: -1,
		Scans: d.Scans - before.Scans, Ands: d.Ands - before.Ands,
		Ors: d.Ors - before.Ors, Xors: d.Xors - before.Xors,
		Nots:        d.Nots - before.Nots,
		CacheHits:   telemetry.CacheHitsTotal.Value() - hits0,
		CacheMisses: telemetry.CacheMissesTotal.Value() - misses0,
	}
	flight.Default().Add(&frec, o.Trace)
	return res
}

// Flight-recorder plan tags of the core evaluators. The engine's plan
// methods and the HTTP layer use their own tags; records from nested
// layers share the same trace ID, so a /debug/queries reader can join an
// engine-level record to the per-index evaluations beneath it.
const (
	planEvalRange     = "eval-range"
	planEvalEquality  = "eval-equality"
	planEvalInterval  = "eval-interval"
	planEvalSegmented = "eval-segmented"
)

// trivialResult handles predicate constants outside [0, C): for those, the
// answer does not depend on any bitmap. ok is false when the predicate
// needs real evaluation.
func (qc *qctx) trivialResult(op Op, v uint64) (*bitvec.Vector, bool) {
	c := qc.ix.card
	if v < c {
		return nil, false
	}
	switch op {
	case Lt, Le, Ne:
		return qc.nonNull(), true
	default: // Gt, Ge, Eq
		return qc.zeros(), true
	}
}

// EvalBetween evaluates the two-sided range predicate (lo <= A <= hi) as
// LE(hi) AND NOT LE(lo-1), two one-sided evaluations regardless of
// encoding (at most 2(2n-1) scans on a range-encoded index). An empty
// interval (lo > hi) matches nothing.
func (ix *Index) EvalBetween(lo, hi uint64, opt *EvalOptions) *bitvec.Vector {
	if lo > hi {
		return bitvec.New(ix.rows)
	}
	upper := ix.Eval(Le, hi, opt)
	if lo == 0 {
		return upper
	}
	lower := ix.Eval(Le, lo-1, opt)
	upper.AndNot(lower)
	return upper
}
