package core

import (
	"errors"
	"fmt"

	"bitmapindex/internal/bitvec"
)

// Encoding selects how each component's digits are encoded in bitmaps
// (paper Section 2(2)).
type Encoding uint8

const (
	// EqualityEncoded stores one bitmap per digit value: bitmap E_i^j has a
	// 1 for every record whose i-th digit equals j. A component with base 2
	// stores only E_i^1 (E_i^0 is its complement within non-null records).
	EqualityEncoded Encoding = iota
	// RangeEncoded stores bitmaps B_i^j (j = 0..b_i-2) where B_i^j has a 1
	// for every record whose i-th digit is <= j. The all-ones bitmap
	// B_i^{b_i-1} is implicit and never stored.
	RangeEncoded
	// IntervalEncoded stores ceil(b_i/2) window bitmaps per component:
	// I_i^j marks digits in [j, j+ceil(b_i/2)-1]. An extension beyond the
	// paper's two encodings; see intervaleval.go.
	IntervalEncoded
)

// String returns "equality", "range" or "interval".
func (e Encoding) String() string {
	switch e {
	case EqualityEncoded:
		return "equality"
	case RangeEncoded:
		return "range"
	case IntervalEncoded:
		return "interval"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// ParseEncoding parses "equality"/"eq", "range" or "interval"/"iv".
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "equality", "eq", "E":
		return EqualityEncoded, nil
	case "range", "R":
		return RangeEncoded, nil
	case "interval", "iv", "I":
		return IntervalEncoded, nil
	}
	return 0, fmt.Errorf("core: unknown encoding %q", s)
}

// Errors returned by Build.
var (
	ErrValueOutOfRange = errors.New("core: value out of range [0, cardinality)")
	ErrNullsLength     = errors.New("core: nulls slice length differs from values")
)

// Index is a multi-component bitmap index over a column of integer values
// in [0, Cardinality). It corresponds to one point in the paper's design
// space: a base sequence (the decomposition) plus an encoding scheme.
//
// An Index is immutable after Build and safe for concurrent readers.
type Index struct {
	base     Base
	enc      Encoding
	card     uint64
	rows     int
	comps    [][]*bitvec.Vector // comps[i][slot]: stored bitmaps of component i+1
	nn       *bitvec.Vector     // B_nn: records with non-null values
	hasNulls bool
}

// BuildOptions carries optional Build inputs.
type BuildOptions struct {
	// Nulls marks records whose value is NULL; such records match no
	// predicate. When nil, all records are non-null. Values at null
	// positions are ignored (any value is accepted there).
	Nulls []bool
}

// Build constructs a bitmap index over values with the given attribute
// cardinality, base sequence, and encoding. Every non-null value must be in
// [0, card). Attribute values that are not consecutive integers should be
// mapped to their rank first (see the engine package's value dictionary).
func Build(values []uint64, card uint64, base Base, enc Encoding, opts *BuildOptions) (*Index, error) {
	if card < 1 {
		return nil, fmt.Errorf("core: cardinality must be >= 1, got %d", card)
	}
	if err := base.Validate(card); err != nil {
		return nil, err
	}
	var nulls []bool
	if opts != nil {
		nulls = opts.Nulls
	}
	if nulls != nil && len(nulls) != len(values) {
		return nil, ErrNullsLength
	}
	n := len(values)
	ix := &Index{
		base: base.Clone(),
		enc:  enc,
		card: card,
		rows: n,
	}
	// Pass 1: equality bitmaps for every component.
	eq := make([][]*bitvec.Vector, len(base))
	for i, bi := range base {
		eq[i] = make([]*bitvec.Vector, bi)
		for j := range eq[i] {
			eq[i][j] = bitvec.New(n)
		}
	}
	ix.nn = bitvec.NewOnes(n)
	digits := make([]uint64, len(base))
	for r, v := range values {
		if nulls != nil && nulls[r] {
			ix.nn.Clear(r)
			ix.hasNulls = true
			continue
		}
		if v >= card {
			return nil, fmt.Errorf("%w: value %d at row %d, cardinality %d", ErrValueOutOfRange, v, r, card)
		}
		base.Decompose(v, digits)
		for i, d := range digits {
			eq[i][d].Set(r)
		}
	}
	// Pass 2: derive the stored form.
	ix.comps = make([][]*bitvec.Vector, len(base))
	for i, bi := range base {
		switch enc {
		case EqualityEncoded:
			if bi == 2 {
				// Store only E^1; E^0 = B_nn AND NOT E^1 is derived on read.
				ix.comps[i] = []*bitvec.Vector{eq[i][1]}
			} else {
				ix.comps[i] = eq[i]
			}
		case RangeEncoded:
			// B^j = OR_{k<=j} E^k; the top slot (all ones over non-null) is
			// implicit and dropped.
			stored := make([]*bitvec.Vector, bi-1)
			acc := eq[i][0]
			stored[0] = acc
			for j := uint64(1); j < bi-1; j++ {
				nxt := acc.Clone()
				nxt.Or(eq[i][j])
				stored[j] = nxt
				acc = nxt
			}
			ix.comps[i] = stored
		case IntervalEncoded:
			ix.comps[i] = buildWindows(eq[i])
		default:
			return nil, fmt.Errorf("core: unknown encoding %v", enc)
		}
	}
	return ix, nil
}

// NewShell constructs an Index descriptor without in-memory bitmaps, for
// evaluating queries against externally stored bitmaps (see the storage
// package). Evaluation on a shell requires EvalOptions.Fetch; StoredBitmap
// returns nil for every slot and Value is unavailable. nn is the non-null
// bitmap (pass an all-ones vector when the column has no nulls); hasNulls
// should report whether any bit of nn is zero.
func NewShell(base Base, enc Encoding, card uint64, nn *bitvec.Vector, hasNulls bool) (*Index, error) {
	if card < 1 {
		return nil, fmt.Errorf("core: cardinality must be >= 1, got %d", card)
	}
	if err := base.Validate(card); err != nil {
		return nil, err
	}
	ix := &Index{
		base:     base.Clone(),
		enc:      enc,
		card:     card,
		rows:     nn.Len(),
		nn:       nn,
		hasNulls: hasNulls,
	}
	ix.comps = make([][]*bitvec.Vector, len(base))
	for i, bi := range base {
		n := int(bi)
		switch {
		case enc == RangeEncoded:
			n = int(bi) - 1
		case enc == IntervalEncoded:
			n = ivWindows(bi)
		case bi == 2:
			n = 1
		}
		ix.comps[i] = make([]*bitvec.Vector, n)
	}
	return ix, nil
}

// Base returns a copy of the index's base sequence.
func (ix *Index) Base() Base { return ix.base.Clone() }

// Encoding returns the index's encoding scheme.
func (ix *Index) Encoding() Encoding { return ix.enc }

// Cardinality returns the attribute cardinality C.
func (ix *Index) Cardinality() uint64 { return ix.card }

// Rows returns the number of records indexed.
func (ix *Index) Rows() int { return ix.rows }

// Components returns the number of components n.
func (ix *Index) Components() int { return len(ix.base) }

// HasNulls reports whether any indexed record is null.
func (ix *Index) HasNulls() bool { return ix.hasNulls }

// NonNull returns the B_nn bitmap (records with non-null values). Callers
// must not mutate it.
func (ix *Index) NonNull() *bitvec.Vector { return ix.nn }

// buildWindows builds the interval-encoding window bitmaps for one
// component from its digit-equality bitmaps: window j is the OR of
// E^j..E^{j+m-1} with m = ceil(b/2). Sliding-window ORs are computed with
// the standard two-sided prefix/suffix trick in O(b) vector operations:
// blocks of size m carry prefix and suffix ORs, and any width-m window is
// the union of one block suffix and the next block prefix.
func buildWindows(eq []*bitvec.Vector) []*bitvec.Vector {
	b := len(eq)
	m := (b + 1) / 2
	if m == b { // b == 1 cannot occur (bases are >= 2), but stay safe
		return []*bitvec.Vector{eq[0].Clone()}
	}
	// prefix[k] = OR of eq[blockStart..k]; suffix[k] = OR of eq[k..blockEnd].
	prefix := make([]*bitvec.Vector, b)
	suffix := make([]*bitvec.Vector, b)
	for start := 0; start < b; start += m {
		end := start + m - 1
		if end >= b {
			end = b - 1
		}
		prefix[start] = eq[start].Clone()
		for k := start + 1; k <= end; k++ {
			prefix[k] = prefix[k-1].Clone()
			prefix[k].Or(eq[k])
		}
		suffix[end] = eq[end].Clone()
		for k := end - 1; k >= start; k-- {
			suffix[k] = suffix[k+1].Clone()
			suffix[k].Or(eq[k])
		}
	}
	out := make([]*bitvec.Vector, m)
	for j := 0; j < m; j++ {
		hi := j + m - 1
		w := suffix[j].Clone()
		if hi/m != j/m { // window spans two blocks
			w.Or(prefix[hi])
		}
		out[j] = w
	}
	return out
}

// NumBitmaps returns the total number of stored bitmaps, the paper's space
// metric (Section 4).
func (ix *Index) NumBitmaps() int {
	total := 0
	for _, c := range ix.comps {
		total += len(c)
	}
	return total
}

// ComponentBitmaps returns the number of stored bitmaps in component i
// (0-based).
func (ix *Index) ComponentBitmaps(i int) int { return len(ix.comps[i]) }

// SizeBytes returns the total size of all stored bitmaps plus B_nn, in
// bytes, uncompressed.
func (ix *Index) SizeBytes() int {
	per := (ix.rows + 7) / 8
	return per * (ix.NumBitmaps() + 1)
}

// StoredBitmap returns stored bitmap slot j of component i for direct
// inspection or storage. Callers must not mutate it.
func (ix *Index) StoredBitmap(i, j int) *bitvec.Vector { return ix.comps[i][j] }

// Value reconstructs the value at row r (and whether it is non-null) by
// probing the bitmaps. It is O(sum b_i) and intended for testing and
// debugging, not bulk access.
func (ix *Index) Value(r int) (v uint64, ok bool) {
	if !ix.nn.Get(r) {
		return 0, false
	}
	digits := make([]uint64, len(ix.base))
	for i, bi := range ix.base {
		switch ix.enc {
		case EqualityEncoded:
			if bi == 2 {
				if ix.comps[i][0].Get(r) {
					digits[i] = 1
				}
				continue
			}
			for j := uint64(0); j < bi; j++ {
				if ix.comps[i][j].Get(r) {
					digits[i] = j
					break
				}
			}
		case RangeEncoded:
			// The digit is the first slot whose bitmap has the bit set;
			// if none is set the digit is b_i - 1.
			digits[i] = bi - 1
			for j := uint64(0); j < bi-1; j++ {
				if ix.comps[i][j].Get(r) {
					digits[i] = j
					break
				}
			}
		case IntervalEncoded:
			// Windows containing digit d are [max(0,d-m+1), min(d,m-1)].
			m := ivWindows(bi)
			lo, hi := -1, -1
			for j := 0; j < m; j++ {
				if ix.comps[i][j].Get(r) {
					if lo < 0 {
						lo = j
					}
					hi = j
				}
			}
			switch {
			case lo < 0:
				digits[i] = bi - 1 // outside every window (even b only)
			case hi < m-1:
				digits[i] = uint64(hi)
			case lo > 0:
				digits[i] = uint64(lo + m - 1)
			default:
				digits[i] = uint64(m - 1)
			}
		}
	}
	return ix.base.Compose(digits), true
}
