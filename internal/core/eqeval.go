package core

import (
	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/invariant"
)

// EvalEquality evaluates (A op v) on an equality-encoded index. The paper
// uses (but does not print) an equality-encoding evaluator; this one follows
// the paper's stated cost behaviour: an equality predicate reads one bitmap
// per component, while a range predicate reads between two and half the
// bitmaps of each component, choosing per component whichever of the two
// directions (OR of low digit bitmaps vs complement of the OR of high digit
// bitmaps) needs fewer bitmap scans.
func (ix *Index) EvalEquality(op Op, v uint64, opt *EvalOptions) *bitvec.Vector {
	ix.mustBe(EqualityEncoded)
	qc := newQctx(ix, opt)
	if r, ok := qc.trivialResult(op, v); ok {
		return r
	}
	switch op {
	case Eq:
		return qc.eqEQ(v)
	case Ne:
		B := qc.eqEQ(v)
		qc.not(B)
		return qc.maskNN(B)
	case Lt:
		if v == 0 {
			return qc.zeros()
		}
		return qc.eqLT(v)
	case Ge:
		if v == 0 {
			return qc.nonNull()
		}
		B := qc.eqLT(v)
		qc.not(B)
		return qc.maskNN(B)
	case Le:
		if v >= ix.card-1 {
			return qc.nonNull()
		}
		return qc.eqLT(v + 1)
	default: // Gt
		if v >= ix.card-1 {
			return qc.zeros()
		}
		B := qc.eqLT(v + 1)
		qc.not(B)
		return qc.maskNN(B)
	}
}

// eqBitmap returns the digit-equality bitmap E_i^j. For base-2 components
// only E_i^1 is stored; E_i^0 is derived as B_nn AND NOT E_i^1 (one scan).
// The returned vector may be shared storage; callers must not mutate it
// unless derived is true.
func (qc *qctx) eqBitmap(i int, j uint64) (v *bitvec.Vector, derived bool) {
	if qc.ix.base[i] == 2 {
		stored := qc.fetch(i, 0) // E_i^1
		if j == 1 {
			return stored, false
		}
		t := qc.nonNull()
		qc.andNot(t, stored)
		return t, true
	}
	return qc.fetch(i, int(j)), false
}

// eqEQ computes the equality bitmap (A = v): the AND over components of
// E_i^{v_i}, one scan per component.
func (qc *qctx) eqEQ(v uint64) *bitvec.Vector {
	digits := qc.ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, qc.ix.base)
	var B *bitvec.Vector
	for i := range qc.ix.base {
		e, derived := qc.eqBitmap(i, digits[i])
		if B == nil {
			if derived {
				B = e
			} else {
				B = e.Clone()
			}
			continue
		}
		qc.and(B, e)
	}
	return B
}

// eqLT computes (A < v) for 1 <= v <= C using the standard most-significant
// first expansion: A < v iff for some component i, the digits above i equal
// v's and digit_i < v_i. The prefix-equality bitmap P starts from B_nn so
// null records never qualify even when a per-digit comparison is computed
// by complement.
func (qc *qctx) eqLT(v uint64) *bitvec.Vector {
	ix := qc.ix
	digits := ix.base.Decompose(v, nil)
	invariant.DigitsInBase(digits, ix.base)
	R := qc.zeros()
	P := qc.nonNull()
	for i := len(ix.base) - 1; i >= 0; i-- {
		di := digits[i]
		if di > 0 {
			lt := qc.eqLTDigit(i, di)
			qc.and(lt, P)
			qc.or(R, lt)
		}
		if i > 0 {
			e, _ := qc.eqBitmap(i, di)
			qc.and(P, e)
		}
	}
	return R
}

// eqLTDigit returns a fresh bitmap of records whose i-th digit is < d,
// 1 <= d <= b_i - 1. It reads min(d, b_i - d) stored bitmaps: either the OR
// of E_i^0..E_i^{d-1}, or the complement of the OR of E_i^d..E_i^{b_i-1}.
// The complement direction may include null rows; callers AND the result
// with a null-free prefix bitmap.
func (qc *qctx) eqLTDigit(i int, d uint64) *bitvec.Vector {
	bi := qc.ix.base[i]
	if bi == 2 {
		// Only d = 1 is possible: digit < 1 means digit = 0.
		e, derived := qc.eqBitmap(i, 0)
		if derived {
			return e
		}
		return e.Clone()
	}
	if d <= bi-d {
		// Forward: OR of the d low digit bitmaps.
		acc := qc.fetch(i, 0).Clone()
		for j := uint64(1); j < d; j++ {
			qc.or(acc, qc.fetch(i, int(j)))
		}
		return acc
	}
	// Backward: complement of the OR of the b_i - d high digit bitmaps.
	acc := qc.fetch(i, int(d)).Clone()
	for j := d + 1; j < bi; j++ {
		qc.or(acc, qc.fetch(i, int(j)))
	}
	qc.not(acc)
	return acc
}
