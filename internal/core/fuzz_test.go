package core

import (
	"math/rand"
	"testing"
)

// FuzzEvalAgreement cross-checks all evaluators against the scalar
// reference on fuzzer-chosen designs, data, and predicates. Run with
// `go test -fuzz=FuzzEvalAgreement ./internal/core` to explore; the seed
// corpus runs as an ordinary test.
func FuzzEvalAgreement(f *testing.F) {
	f.Add(int64(1), uint8(0), uint64(3), uint8(3), uint8(3), uint8(1))
	f.Add(int64(2), uint8(4), uint64(0), uint8(2), uint8(9), uint8(0))
	f.Add(int64(3), uint8(5), uint64(99), uint8(7), uint8(2), uint8(2))
	f.Add(int64(4), uint8(2), uint64(7), uint8(16), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, rawOp uint8, v uint64, b1r, b2r, encR uint8) {
		base := Base{uint64(b1r%20) + 2, uint64(b2r%20) + 2}
		prod, _ := base.Product()
		r := rand.New(rand.NewSource(seed))
		card := prod - uint64(r.Intn(int(prod/2+1)))
		if card < 2 {
			card = 2
		}
		op := AllOps[rawOp%6]
		enc := Encoding(encR % 3)
		v %= card + 3
		vals := make([]uint64, 64)
		nulls := make([]bool, 64)
		for i := range vals {
			vals[i] = uint64(r.Intn(int(card)))
			nulls[i] = r.Intn(8) == 0
		}
		ix, err := Build(vals, card, base, enc, &BuildOptions{Nulls: nulls})
		if err != nil {
			t.Fatalf("Build(%v, %d, %v): %v", base, card, enc, err)
		}
		want := referenceEval(vals, nulls, op, v)
		var st Stats
		got := ix.Eval(op, v, &EvalOptions{Stats: &st})
		if !got.Equal(want) {
			t.Fatalf("base %v card %d enc %v: A %s %d\n got %s\nwant %s", base, card, enc, op, v, got, want)
		}
		// Scan bounds per encoding: range reads at most 2 bitmaps per
		// component, interval at most 4, and equality up to half the
		// component's bitmaps plus the prefix probe.
		bound := 0
		for _, bi := range base {
			switch enc {
			case RangeEncoded:
				bound += 2
			case IntervalEncoded:
				bound += 4
			default:
				bound += int(bi/2) + 1
			}
		}
		if st.Scans > bound {
			t.Fatalf("scan count %d exceeds bound %d for %v/%v", st.Scans, bound, base, enc)
		}
		// The naive baseline must agree on range-encoded indexes.
		if enc == RangeEncoded {
			if !ix.EvalRangeNaive(op, v, nil).Equal(want) {
				t.Fatalf("naive evaluator disagrees for %v A %s %d", base, op, v)
			}
		}
		// Value reconstruction inverts the build.
		for i := 0; i < 8; i++ {
			got, ok := ix.Value(i)
			if nulls[i] != !ok || (ok && got != vals[i]) {
				t.Fatalf("Value(%d) = %d,%v want %d null=%v", i, got, ok, vals[i], nulls[i])
			}
		}
	})
}

// FuzzBaseDecompose checks the decomposition invariants on arbitrary
// bases and values.
func FuzzBaseDecompose(f *testing.F) {
	f.Add(uint64(42), uint8(3), uint8(5), uint8(7))
	f.Add(uint64(0), uint8(2), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, v uint64, b1, b2, b3 uint8) {
		base := Base{uint64(b1%60) + 2, uint64(b2%60) + 2, uint64(b3%60) + 2}
		prod, _ := base.Product()
		v %= prod
		d := base.Decompose(v, nil)
		for i, bi := range base {
			if d[i] >= bi {
				t.Fatalf("digit %d = %d out of range for base %d", i, d[i], bi)
			}
		}
		if back := base.Compose(d); back != v {
			t.Fatalf("Compose(Decompose(%d)) = %d", v, back)
		}
	})
}
