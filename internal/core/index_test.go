package core

import (
	"errors"
	"math/rand"
	"testing"
)

// figure1Column is a 10-record column over C = 9 used throughout the
// paper's running example (Figures 1, 3, 4).
var figure1Column = []uint64{3, 2, 1, 2, 8, 2, 2, 0, 7, 5}

func TestBuildValueListIndex(t *testing.T) {
	// Single-component, equality-encoded = the Value-List index (Fig. 1).
	ix, err := Build(figure1Column, 9, SingleComponent(9), EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != 9 {
		t.Fatalf("NumBitmaps = %d, want 9", ix.NumBitmaps())
	}
	// Each record's bit must be set in exactly the bitmap of its value.
	for r, v := range figure1Column {
		for j := 0; j < 9; j++ {
			want := uint64(j) == v
			if got := ix.StoredBitmap(0, j).Get(r); got != want {
				t.Fatalf("record %d, bitmap B%d: got %v want %v", r, j, got, want)
			}
		}
	}
}

func TestBuildTwoComponentValueList(t *testing.T) {
	// Figure 3: base <3,3> equality-encoded reduces 9 bitmaps to 6.
	ix, err := Build(figure1Column, 9, Base{3, 3}, EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != 6 {
		t.Fatalf("NumBitmaps = %d, want 6", ix.NumBitmaps())
	}
	for r, v := range figure1Column {
		lo, hi := v%3, v/3
		if !ix.StoredBitmap(0, int(lo)).Get(r) {
			t.Fatalf("record %d: low digit bitmap %d not set", r, lo)
		}
		if !ix.StoredBitmap(1, int(hi)).Get(r) {
			t.Fatalf("record %d: high digit bitmap %d not set", r, hi)
		}
	}
}

func TestBuildRangeEncoded(t *testing.T) {
	// Figure 4(b): single-component base-9 range-encoded index stores 8
	// bitmaps B^0..B^7; B^j is set for records with value <= j.
	ix, err := Build(figure1Column, 9, SingleComponent(9), RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != 8 {
		t.Fatalf("NumBitmaps = %d, want 8", ix.NumBitmaps())
	}
	for r, v := range figure1Column {
		for j := 0; j < 8; j++ {
			want := v <= uint64(j)
			if got := ix.StoredBitmap(0, j).Get(r); got != want {
				t.Fatalf("record %d (value %d), B^%d: got %v want %v", r, v, j, got, want)
			}
		}
	}
}

func TestBuildRangeEncodedTwoComponent(t *testing.T) {
	// Figure 4(c): base <3,3> range-encoded stores 2 bitmaps per component.
	ix, err := Build(figure1Column, 9, Base{3, 3}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != 4 {
		t.Fatalf("NumBitmaps = %d, want 4", ix.NumBitmaps())
	}
	for r, v := range figure1Column {
		lo, hi := v%3, v/3
		for j := uint64(0); j < 2; j++ {
			if got := ix.StoredBitmap(0, int(j)).Get(r); got != (lo <= j) {
				t.Fatalf("record %d low B^%d wrong", r, j)
			}
			if got := ix.StoredBitmap(1, int(j)).Get(r); got != (hi <= j) {
				t.Fatalf("record %d high B^%d wrong", r, j)
			}
		}
	}
}

func TestBuildBase2EqualityStoresOneBitmap(t *testing.T) {
	vals := []uint64{0, 1, 1, 0, 1}
	ix, err := Build(vals, 2, Base{2}, EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumBitmaps() != 1 {
		t.Fatalf("base-2 equality component stores %d bitmaps, want 1", ix.NumBitmaps())
	}
	for r, v := range vals {
		if ix.StoredBitmap(0, 0).Get(r) != (v == 1) {
			t.Fatalf("record %d: stored E^1 wrong", r)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]uint64{0}, 0, Base{2}, RangeEncoded, nil); err == nil {
		t.Error("cardinality 0 must fail")
	}
	if _, err := Build([]uint64{5}, 4, Base{4}, RangeEncoded, nil); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("out-of-range value: err = %v", err)
	}
	if _, err := Build([]uint64{0}, 4, Base{2}, RangeEncoded, nil); err == nil {
		t.Error("base not covering cardinality must fail")
	}
	if _, err := Build([]uint64{0, 1}, 4, Base{4}, RangeEncoded, &BuildOptions{Nulls: []bool{true}}); !errors.Is(err, ErrNullsLength) {
		t.Errorf("nulls length mismatch: err = %v", err)
	}
}

func TestBuildWithNulls(t *testing.T) {
	vals := []uint64{3, 0, 99, 2, 1} // value at null row is ignored
	nulls := []bool{false, false, true, false, false}
	ix, err := Build(vals, 4, Base{2, 2}, RangeEncoded, &BuildOptions{Nulls: nulls})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.HasNulls() {
		t.Fatal("HasNulls = false")
	}
	if ix.NonNull().Get(2) {
		t.Fatal("null row marked non-null")
	}
	if ix.NonNull().Count() != 4 {
		t.Fatalf("NonNull count = %d, want 4", ix.NonNull().Count())
	}
	// Null rows must be 0 in every stored bitmap.
	for i := 0; i < ix.Components(); i++ {
		for j := 0; j < ix.ComponentBitmaps(i); j++ {
			if ix.StoredBitmap(i, j).Get(2) {
				t.Fatalf("null row set in component %d slot %d", i, j)
			}
		}
	}
}

func TestValueRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, enc := range []Encoding{EqualityEncoded, RangeEncoded} {
		for _, base := range []Base{{12}, {4, 3}, {2, 3, 2}, {2, 2, 2, 2}} {
			card := uint64(12)
			if !base.Covers(card) {
				t.Fatalf("test base %v does not cover %d", base, card)
			}
			vals := make([]uint64, 200)
			nulls := make([]bool, 200)
			for i := range vals {
				vals[i] = uint64(r.Intn(int(card)))
				nulls[i] = r.Intn(10) == 0
			}
			ix, err := Build(vals, card, base, enc, &BuildOptions{Nulls: nulls})
			if err != nil {
				t.Fatal(err)
			}
			for i := range vals {
				got, ok := ix.Value(i)
				if nulls[i] {
					if ok {
						t.Fatalf("%v/%v row %d: expected null", enc, base, i)
					}
					continue
				}
				if !ok || got != vals[i] {
					t.Fatalf("%v/%v row %d: Value = %d,%v want %d", enc, base, i, got, ok, vals[i])
				}
			}
		}
	}
}

func TestAccessors(t *testing.T) {
	ix, err := Build(figure1Column, 9, Base{3, 3}, RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Base().Equal(Base{3, 3}) {
		t.Errorf("Base = %v", ix.Base())
	}
	if ix.Encoding() != RangeEncoded {
		t.Errorf("Encoding = %v", ix.Encoding())
	}
	if ix.Cardinality() != 9 {
		t.Errorf("Cardinality = %d", ix.Cardinality())
	}
	if ix.Rows() != 10 {
		t.Errorf("Rows = %d", ix.Rows())
	}
	if ix.Components() != 2 {
		t.Errorf("Components = %d", ix.Components())
	}
	if ix.HasNulls() {
		t.Error("HasNulls = true")
	}
	if ix.ComponentBitmaps(0) != 2 || ix.ComponentBitmaps(1) != 2 {
		t.Error("ComponentBitmaps wrong")
	}
	// 10 rows -> 2 bytes per bitmap; 4 stored + B_nn = 5 bitmaps.
	if got := ix.SizeBytes(); got != 2*5 {
		t.Errorf("SizeBytes = %d, want 10", got)
	}
	// Mutating the returned base must not affect the index.
	b := ix.Base()
	b[0] = 99
	if !ix.Base().Equal(Base{3, 3}) {
		t.Error("Base() leaked internal state")
	}
}

func TestEncodingStringParse(t *testing.T) {
	if EqualityEncoded.String() != "equality" || RangeEncoded.String() != "range" {
		t.Fatal("Encoding.String wrong")
	}
	if e, err := ParseEncoding("range"); err != nil || e != RangeEncoded {
		t.Fatal("ParseEncoding(range) wrong")
	}
	if e, err := ParseEncoding("eq"); err != nil || e != EqualityEncoded {
		t.Fatal("ParseEncoding(eq) wrong")
	}
	if _, err := ParseEncoding("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if s := Encoding(9).String(); s != "Encoding(9)" {
		t.Fatalf("unknown encoding String = %q", s)
	}
}
