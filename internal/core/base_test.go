package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	b := Uniform(3, 4)
	if b.N() != 4 {
		t.Fatalf("N = %d, want 4", b.N())
	}
	for i, bi := range b {
		if bi != 3 {
			t.Fatalf("component %d = %d, want 3", i, bi)
		}
	}
}

func TestUniformFor(t *testing.T) {
	cases := []struct {
		b, card uint64
		wantN   int
	}{
		{2, 2, 1}, {2, 3, 2}, {2, 4, 2}, {2, 5, 3}, {2, 1024, 10}, {2, 1025, 11},
		{10, 100, 2}, {10, 101, 3}, {10, 1000, 3}, {100, 100, 1},
		{3, 1, 1}, {2, 0, 1},
	}
	for _, c := range cases {
		got := UniformFor(c.b, c.card)
		if got.N() != c.wantN {
			t.Errorf("UniformFor(%d,%d) = %v, want %d components", c.b, c.card, got, c.wantN)
		}
		if !got.Covers(c.card) {
			t.Errorf("UniformFor(%d,%d) = %v does not cover", c.b, c.card, got)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Base{3, 3}).Validate(9); err != nil {
		t.Errorf("<3,3> should be valid for C=9: %v", err)
	}
	if err := (Base{3, 3}).Validate(10); err == nil {
		t.Error("<3,3> must not validate for C=10")
	}
	if err := (Base{}).Validate(4); err == nil {
		t.Error("empty base must not validate")
	}
	if err := (Base{1, 9}).Validate(9); err == nil {
		t.Error("base component 1 must not validate")
	}
	if err := (Base{0, 9}).Validate(9); err == nil {
		t.Error("base component 0 must not validate")
	}
}

func TestProductOverflow(t *testing.T) {
	b := Base{math.MaxUint64 / 2, 4}
	if _, ok := b.Product(); ok {
		t.Fatal("expected overflow")
	}
	if !b.Covers(math.MaxUint64) {
		t.Fatal("overflowing product must cover everything")
	}
	if err := b.Validate(math.MaxUint64); err != nil {
		t.Fatalf("overflowing base should validate: %v", err)
	}
}

func TestDecomposeKnownValues(t *testing.T) {
	// The paper's Figure 3: base <3,3>, value v decomposes as
	// v = v_2*3 + v_1.
	b := Base{3, 3} // little-endian: b_1 = 3, b_2 = 3
	cases := []struct {
		v    uint64
		want []uint64 // digits[0] = v_1
	}{
		{0, []uint64{0, 0}}, {1, []uint64{1, 0}}, {2, []uint64{2, 0}},
		{3, []uint64{0, 1}}, {4, []uint64{1, 1}}, {8, []uint64{2, 2}},
	}
	for _, c := range cases {
		got := b.Decompose(c.v, nil)
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Errorf("Decompose(%d) = %v, want %v", c.v, got, c.want)
		}
		if back := b.Compose(got); back != c.v {
			t.Errorf("Compose(Decompose(%d)) = %d", c.v, back)
		}
	}
}

func TestDecomposeNonUniform(t *testing.T) {
	// Mixed-radix base <2,5,3>: b_1 = 3, b_2 = 5, b_3 = 2; product 30.
	b := Base{3, 5, 2}
	for v := uint64(0); v < 30; v++ {
		d := b.Decompose(v, nil)
		for i, bi := range b {
			if d[i] >= bi {
				t.Fatalf("v=%d digit %d = %d out of range (base %d)", v, i, d[i], bi)
			}
		}
		if back := b.Compose(d); back != v {
			t.Fatalf("Compose(Decompose(%d)) = %d", v, back)
		}
	}
}

func TestDecomposeComposeProperty(t *testing.T) {
	f := func(v uint64, b1, b2, b3 uint8) bool {
		base := Base{uint64(b1%50) + 2, uint64(b2%50) + 2, uint64(b3%50) + 2}
		p, _ := base.Product()
		v %= p
		return base.Compose(base.Decompose(v, nil)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeReuseDst(t *testing.T) {
	b := Base{4, 4}
	dst := make([]uint64, 2)
	got := b.Decompose(7, dst)
	if &got[0] != &dst[0] {
		t.Fatal("Decompose did not reuse dst")
	}
	if got[0] != 3 || got[1] != 1 {
		t.Fatalf("digits = %v, want [3 1]", got)
	}
}

func TestStringAndParse(t *testing.T) {
	cases := []struct {
		b Base
		s string
	}{
		{Base{3, 3}, "<3,3>"},
		{Base{10}, "<10>"},
		{Base{2, 5, 7}, "<7,5,2>"}, // big-endian display: b_3=7, b_2=5, b_1=2
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.s {
			t.Errorf("String(%v) = %q, want %q", []uint64(c.b), got, c.s)
		}
		parsed, err := ParseBase(c.s)
		if err != nil {
			t.Fatalf("ParseBase(%q): %v", c.s, err)
		}
		if !parsed.Equal(c.b) {
			t.Errorf("ParseBase(%q) = %v, want %v", c.s, parsed, c.b)
		}
	}
	if _, err := ParseBase("<x,3>"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseBase(""); err == nil {
		t.Error("expected parse error on empty string")
	}
	if p, err := ParseBase("4,3"); err != nil || !p.Equal(Base{3, 4}) {
		t.Errorf("ParseBase without brackets = %v, %v", p, err)
	}
}

func TestEqualClone(t *testing.T) {
	a := Base{2, 3, 4}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a.Equal(b) || a[0] == 9 {
		t.Fatal("clone not independent")
	}
	if a.Equal(Base{2, 3}) {
		t.Fatal("length mismatch must not be equal")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		c    uint64
		want int
	}{{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1000, 10}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Log2Ceil(c.c); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.c, got, c.want)
		}
	}
}

func TestSingleComponent(t *testing.T) {
	b := SingleComponent(42)
	if b.N() != 1 || b[0] != 42 {
		t.Fatalf("SingleComponent = %v", b)
	}
}
