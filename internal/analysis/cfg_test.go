package analysis

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite CFG golden dot files")

// cfgSources are the control-flow shapes the builder must model exactly:
// labeled break/continue out of nested loops, goto, select with default,
// defer inside a loop, and explicit panic edges. Each compiles as a
// function body and is pinned by a golden dot dump under testdata/cfg/.
var cfgSources = map[string]string{
	"straightline": `package p
func f(a, b int) int {
	x := a + b
	x *= 2
	return x
}`,
	"if_else": `package p
func f(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}`,
	"nested_labeled_break_continue": `package p
func f(m [][]int) int {
	sum := 0
outer:
	for i := 0; i < len(m); i++ {
	inner:
		for j := 0; j < len(m[i]); j++ {
			if m[i][j] < 0 {
				break outer
			}
			if m[i][j] == 0 {
				continue outer
			}
			if m[i][j] == 1 {
				continue inner
			}
			sum += m[i][j]
		}
	}
	return sum
}`,
	"goto_forward_backward": `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		if i == 7 {
			goto done
		}
		goto loop
	}
done:
	return i
}`,
	"select_with_default": `package p
func f(c chan int) int {
	select {
	case v := <-c:
		return v
	case c <- 1:
		return 1
	default:
		return 0
	}
}`,
	"defer_in_loop": `package p
func f(files []func() error) (err error) {
	for _, close := range files {
		defer close()
	}
	return nil
}`,
	"panic_edge": `package p
func f(v int) int {
	if v < 0 {
		panic("negative")
	}
	return v
}`,
	"switch_fallthrough": `package p
func f(v int) int {
	switch v {
	case 0:
		v++
		fallthrough
	case 1:
		v += 2
	default:
		v = -1
	}
	return v
}`,
	"range_loop": `package p
func f(xs []int) int {
	sum := 0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		sum += x
	}
	return sum
}`,
}

func buildTestCFG(t *testing.T, name, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name+".go", src, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return BuildCFG(fn.Name.Name, fn.Body), fset
		}
	}
	t.Fatalf("no function in %s", name)
	return nil, nil
}

func TestCFGGolden(t *testing.T) {
	for name, src := range cfgSources {
		t.Run(name, func(t *testing.T) {
			cfg, fset := buildTestCFG(t, name, src)
			got := cfg.Dot(fset)
			golden := filepath.Join("testdata", "cfg", name+".dot")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("CFG dot mismatch for %s:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestCFGStructure checks graph-level properties the goldens alone don't
// make obvious: panic blocks route to exit, defers are collected, every
// edge is mirrored in Preds, and reachability behaves.
func TestCFGStructure(t *testing.T) {
	t.Run("panic_routes_to_exit", func(t *testing.T) {
		cfg, _ := buildTestCFG(t, "panic_edge", cfgSources["panic_edge"])
		found := false
		for _, blk := range cfg.Blocks {
			if !blk.PanicExit {
				continue
			}
			found = true
			ok := false
			for _, s := range blk.Succs {
				if s == cfg.Exit {
					ok = true
				}
			}
			if !ok {
				t.Errorf("panic block %d has no edge to exit", blk.Index)
			}
		}
		if !found {
			t.Fatal("no PanicExit block built for explicit panic")
		}
	})
	t.Run("defers_collected", func(t *testing.T) {
		cfg, _ := buildTestCFG(t, "defer_in_loop", cfgSources["defer_in_loop"])
		if len(cfg.Defers) != 1 {
			t.Fatalf("want 1 defer, got %d", len(cfg.Defers))
		}
	})
	t.Run("preds_mirror_succs", func(t *testing.T) {
		for name, src := range cfgSources {
			cfg, _ := buildTestCFG(t, name, src)
			for _, blk := range cfg.Blocks {
				for _, s := range blk.Succs {
					mirrored := false
					for _, p := range s.Preds {
						if p == blk {
							mirrored = true
						}
					}
					if !mirrored {
						t.Errorf("%s: edge %d->%d not mirrored in Preds", name, blk.Index, s.Index)
					}
				}
			}
		}
	})
	t.Run("labeled_break_skips_inner_join", func(t *testing.T) {
		cfg, _ := buildTestCFG(t, "nested_labeled_break_continue",
			cfgSources["nested_labeled_break_continue"])
		// The exit must be reachable from entry.
		seen := make(map[*Block]bool)
		var walk func(*Block)
		walk = func(b *Block) {
			if seen[b] {
				return
			}
			seen[b] = true
			for _, s := range b.Succs {
				walk(s)
			}
		}
		walk(cfg.Entry)
		if !seen[cfg.Exit] {
			t.Fatal("exit unreachable from entry")
		}
	})
}

// TestCFGDotDeterministic: two builds of the same source render
// byte-identical dot output.
func TestCFGDotDeterministic(t *testing.T) {
	for name, src := range cfgSources {
		a, fsa := buildTestCFG(t, name, src)
		b, fsb := buildTestCFG(t, name, src)
		if da, db := a.Dot(fsa), b.Dot(fsb); da != db {
			t.Errorf("%s: dot output not deterministic", name)
		}
	}
}
