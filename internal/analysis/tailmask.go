package analysis

import (
	"go/ast"
	"go/types"
)

// TailMask enforces the bitvec tail-mask invariant: bits beyond the logical
// length in the last backing word are always zero. Every bitwise kernel in
// the repository (Count, And, Or, WAH compression, the evaluator's
// cross-checks) silently assumes it.
//
// Inside package bitvec, any function that writes the words field of a
// Vector must either call maskTail (or tailMask, for the in-place masking
// idiom `words[i] &= v.tailMask()`) or carry a `//bix:maskok (reason)`
// directive explaining why the write cannot set tail bits.
//
// Outside package bitvec, the backing words are off limits entirely:
// Words() hands out the slice for read-only scanning, and any write through
// it — directly or via an alias — is reported.
var TailMask = &Analyzer{
	Name: "tailmask",
	Doc:  "writes to bitvec backing words must preserve the tail-mask invariant",
	Run:  runTailMask,
}

func runTailMask(pass *Pass) {
	if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "bitvec" {
		tailMaskInPackage(pass)
		return
	}
	tailMaskCrossPackage(pass)
}

// isWordsField reports whether sel selects the words field of a
// bitvec.Vector (matched by package and type name, so fixture packages
// named bitvec are checked under the same rule).
func isWordsField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != "words" {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Vector" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "bitvec"
}

// wordsWrite returns the position of a write to a Vector's words within the
// statement-level node, or nil.
func wordsWriteTargets(pass *Pass, n ast.Node) []ast.Node {
	var hits []ast.Node
	addLHS := func(lhs ast.Expr) {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			if sel, ok := e.X.(*ast.SelectorExpr); ok && isWordsField(pass, sel) {
				hits = append(hits, e)
			}
		case *ast.SelectorExpr:
			if isWordsField(pass, e) {
				hits = append(hits, e)
			}
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			addLHS(lhs)
		}
	case *ast.IncDecStmt:
		addLHS(s.X)
	case *ast.CallExpr:
		if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) > 0 {
			if _, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
				dst := s.Args[0]
				if sl, ok := dst.(*ast.SliceExpr); ok {
					dst = sl.X
				}
				if sel, ok := dst.(*ast.SelectorExpr); ok && isWordsField(pass, sel) {
					hits = append(hits, s)
				}
			}
		}
	}
	return hits
}

func tailMaskInPackage(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		if hasDirective(fn.Doc, "maskok") {
			continue
		}
		var writes []ast.Node
		normalizes := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			writes = append(writes, wordsWriteTargets(pass, n)...)
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "maskTail" || sel.Sel.Name == "tailMask" {
						normalizes = true
					}
				}
			}
			return true
		})
		if len(writes) > 0 && !normalizes {
			pass.Reportf(writes[0].Pos(),
				"%s writes Vector.words without a maskTail/tailMask call; normalize the tail or annotate //bix:maskok (reason)", fn.Name.Name)
		}
	}
}

// isWordsCall reports whether e is a call of bitvec.Vector's Words method.
func isWordsCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Words" {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Name() == "bitvec"
}

func tailMaskCrossPackage(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: objects aliasing a Words() result anywhere in the package.
	aliases := make(map[types.Object]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || !isWordsCall(pass, rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						aliases[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						aliases[obj] = true
					}
				}
			}
			return true
		})
	}
	isAliased := func(e ast.Expr) bool {
		if isWordsCall(pass, e) {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && aliases[info.Uses[id]]
	}
	report := func(n ast.Node) {
		pass.Reportf(n.Pos(),
			"mutates the backing words of a bitvec.Vector; Words() is read-only outside package bitvec")
	}
	// Pass 2: writes through a Words() result or one of its aliases.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if ix, ok := lhs.(*ast.IndexExpr); ok && isAliased(ix.X) {
						report(ix)
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := s.X.(*ast.IndexExpr); ok && isAliased(ix.X) {
					report(ix)
				}
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) > 0 {
					if _, ok := info.Uses[id].(*types.Builtin); ok {
						dst := s.Args[0]
						if sl, ok := dst.(*ast.SliceExpr); ok {
							dst = sl.X
						}
						if isAliased(dst) {
							report(s)
						}
					}
				}
			}
			return true
		})
	}
}
