package analysis

import (
	"go/ast"
	"go/types"
)

// TailMask enforces the bitvec tail-mask invariant: bits beyond the logical
// length in the last backing word are always zero. Every bitwise kernel in
// the repository (Count, And, Or, WAH compression, the evaluator's
// cross-checks) silently assumes it.
//
// Inside package bitvec, any function that writes the words field of a
// Vector — directly, or through a local alias of the slice — must either
// call maskTail (or tailMask, for the in-place masking idiom
// `words[i] &= v.tailMask()`) or carry a `//bix:maskok (reason)` directive
// explaining why the write cannot set tail bits.
//
// Outside package bitvec, the backing words are off limits entirely:
// Words() hands out the slice for read-only scanning, and any write
// through it is reported. The alias tracking is a package-wide closure
// (see alias.go): assignments, re-slicings (`u := w[1:]`), append results
// and the results of module functions that return one of their slice
// parameters all stay tainted, and passing a tainted slice to a module
// function that writes its parameter's elements is reported at the call
// site.
var TailMask = &Analyzer{
	Name: "tailmask",
	Doc:  "writes to bitvec backing words must preserve the tail-mask invariant",
	Run:  runTailMask,
}

func runTailMask(pass *Pass) {
	if pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "bitvec" {
		tailMaskInPackage(pass)
		return
	}
	tailMaskCrossPackage(pass)
}

// isWordsField reports whether sel selects the words field of a
// bitvec.Vector (matched by package and type name, so fixture packages
// named bitvec are checked under the same rule).
func isWordsField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != "words" {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Vector" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "bitvec"
}

// isWordsCall reports whether e is a call of bitvec.Vector's Words method.
func isWordsCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Words" {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Name() == "bitvec"
}

// sliceWrites finds element writes within the statement-level node whose
// base satisfies tainted: index assignments, ++/-- on elements, and copy
// with a tainted destination. The base of `w[i] = x` is w; slicing the
// destination of copy is unwrapped.
func sliceWrites(pass *Pass, n ast.Node, tainted func(ast.Expr) bool) []ast.Node {
	var hits []ast.Node
	base := func(e ast.Expr) (ast.Expr, bool) {
		if ix, ok := e.(*ast.IndexExpr); ok {
			return ix.X, true
		}
		return nil, false
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if b, ok := base(lhs); ok && tainted(b) {
				hits = append(hits, lhs)
			}
		}
	case *ast.IncDecStmt:
		if b, ok := base(s.X); ok && tainted(b) {
			hits = append(hits, s.X)
		}
	case *ast.CallExpr:
		if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "copy" && len(s.Args) > 0 {
			if _, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
				dst := s.Args[0]
				if sl, ok := dst.(*ast.SliceExpr); ok {
					dst = sl.X
				}
				if tainted(dst) {
					hits = append(hits, s)
				}
			}
		}
	}
	return hits
}

// tailMaskInPackage applies the in-package rule: every function writing
// Vector.words (directly, via `v.words = ...`, or through an alias of the
// slice) must normalize the tail or carry //bix:maskok.
func tailMaskInPackage(pass *Pass) {
	// Aliases of any words field or Words() result, package-wide.
	tracker := newAliasTracker(pass.Pkg, func(e ast.Expr) bool {
		if sel, ok := e.(*ast.SelectorExpr); ok && isWordsField(pass, sel) {
			return true
		}
		return isWordsCall(pass, e)
	})
	tracker.solve()
	isWordsView := func(e ast.Expr) bool {
		if sel, ok := e.(*ast.SelectorExpr); ok && isWordsField(pass, sel) {
			return true
		}
		return tracker.aliased(e)
	}
	for _, fn := range funcDecls(pass.Pkg) {
		if hasDirective(fn.Doc, "maskok") {
			continue
		}
		var writes []ast.Node
		normalizes := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			writes = append(writes, sliceWrites(pass, n, isWordsView)...)
			// Whole-field replacement: v.words = src.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && isWordsField(pass, sel) {
						writes = append(writes, sel)
					}
				}
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "maskTail" || sel.Sel.Name == "tailMask" {
						normalizes = true
					}
				}
			}
			return true
		})
		if len(writes) > 0 && !normalizes {
			pass.Reportf(writes[0].Pos(),
				"%s writes Vector.words without a maskTail/tailMask call; normalize the tail or annotate //bix:maskok (reason)", fn.Name.Name)
		}
	}
}

// sliceParamSummary records how a module function treats its slice
// parameters: which it may return (the result aliases the argument) and
// which it writes through (element assignment or copy). Both relations
// are transitive through calls to other module functions.
type sliceParamSummary struct {
	returns []int
	writes  []int
}

// emptySliceParams is the shared no-information summary returned for
// memo misses after prepare seals the table.
var emptySliceParams = &sliceParamSummary{}

// sliceParamInfo computes (and memoizes on the Batch) the summary for fn.
// Cycles in the module call graph are cut by seeding the memo with an
// empty summary before recursing — a fixpoint from below, which can only
// under-approximate through recursion, never report falsely. prepare
// (runner.go) computes the summary of every module declaration up front;
// after that the memo is read-only, and a miss can only be a non-module
// function, whose summary is empty anyway.
func sliceParamInfo(b *Batch, fn *types.Func) *sliceParamSummary {
	if s, ok := b.sliceParams[fn]; ok {
		return s
	}
	if b.prepared {
		return emptySliceParams
	}
	sum := &sliceParamSummary{}
	b.sliceParams[fn] = sum
	decl, declPkg := b.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		return sum
	}
	info := declPkg.Info
	// Map parameter objects to their indices.
	paramIx := make(map[types.Object]int)
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					paramIx[obj] = i
				}
			}
			i++
		}
	}
	if len(paramIx) == 0 {
		return sum
	}
	paramOf := func(e ast.Expr) (int, bool) {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.SliceExpr:
				e = v.X
			case *ast.Ident:
				if obj := info.Uses[v]; obj != nil {
					ix, ok := paramIx[obj]
					return ix, ok
				}
				return 0, false
			default:
				return 0, false
			}
		}
	}
	addUnique := func(s []int, v int) []int {
		for _, x := range s {
			if x == v {
				return s
			}
		}
		return append(s, v)
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if ix, ok := paramOf(r); ok {
					sum.returns = addUnique(sum.returns, ix)
				}
				// return g(p): the result aliases p if g returns its arg.
				if call, ok := r.(*ast.CallExpr); ok {
					if callee := calleeFunc(info, call); callee != nil && callee != fn {
						for _, ri := range sliceParamInfo(b, callee).returns {
							if ri < len(call.Args) {
								if ix, ok := paramOf(call.Args[ri]); ok {
									sum.returns = addUnique(sum.returns, ix)
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// g(p) where g writes its parameter: p is written too.
			if callee := calleeFunc(info, s); callee != nil && callee != fn {
				for _, wi := range sliceParamInfo(b, callee).writes {
					if wi < len(s.Args) {
						if ix, ok := paramOf(s.Args[wi]); ok {
							sum.writes = addUnique(sum.writes, ix)
						}
					}
				}
			}
		}
		tainted := func(e ast.Expr) bool { _, ok := paramOf(e); return ok }
		for range sliceWrites(&Pass{Pkg: declPkg}, n, tainted) {
			// Attribute the write to whichever parameter is the base.
			switch w := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range w.Lhs {
					if ix, ok := lhs.(*ast.IndexExpr); ok {
						if p, ok := paramOf(ix.X); ok {
							sum.writes = addUnique(sum.writes, p)
						}
					}
				}
			case *ast.IncDecStmt:
				if ix, ok := w.X.(*ast.IndexExpr); ok {
					if p, ok := paramOf(ix.X); ok {
						sum.writes = addUnique(sum.writes, p)
					}
				}
			case *ast.CallExpr:
				dst := w.Args[0]
				if sl, ok := dst.(*ast.SliceExpr); ok {
					dst = sl.X
				}
				if p, ok := paramOf(dst); ok {
					sum.writes = addUnique(sum.writes, p)
				}
			}
			break
		}
		return true
	})
	return sum
}

func tailMaskCrossPackage(pass *Pass) {
	tracker := newAliasTracker(pass.Pkg, func(e ast.Expr) bool { return isWordsCall(pass, e) })
	tracker.returnsParam = func(fn *types.Func) []int { return sliceParamInfo(pass.Batch, fn).returns }
	tracker.solve()
	report := func(n ast.Node) {
		pass.Reportf(n.Pos(),
			"mutates the backing words of a bitvec.Vector; Words() is read-only outside package bitvec")
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, hit := range sliceWrites(pass, n, tracker.aliased) {
				report(hit)
			}
			// Passing an alias into a module function that writes through
			// that parameter is a write by proxy.
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.Pkg.Info, call); callee != nil {
					for _, wi := range sliceParamInfo(pass.Batch, callee).writes {
						if wi < len(call.Args) && tracker.aliased(call.Args[wi]) {
							pass.Reportf(call.Pos(),
								"passes the backing words of a bitvec.Vector to %s, which writes its slice parameter; Words() is read-only outside package bitvec",
								callee.Name())
						}
					}
				}
			}
			return true
		})
	}
}
