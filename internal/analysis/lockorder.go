package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a module-wide mutex acquisition graph and reports
// cycles — the static shadow of a deadlock. A node is a mutex identity
// (package path + type + field for struct mutexes, package path + name for
// package-level ones); an edge A → B means some function acquires B while
// A is definitely held, either directly (`a.mu.Lock(); b.mu.Lock()`) or
// through a call to a module function whose transitive may-acquire summary
// contains B. A self-edge A → A is the degenerate cycle: re-acquiring a
// sync.Mutex the goroutine already holds deadlocks immediately, and a
// recursive RLock can deadlock against a waiting writer.
//
// Held sets are must-held (intersection over paths), so the common
// `for { mu.Lock(); ...; mu.Unlock() }` loop does not feed the previous
// iteration's lock into the next. Call summaries are flow-insensitive
// may-acquire: if g ever locks B, calling g while holding A orders A
// before B on some interleaving, which is what lock ordering is about.
//
// The graph spans every package of the run (Pass.Batch); each package's
// pass reports only the cycle edges whose acquisition site lies in that
// package, so a module run reports each edge exactly once, in file order.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the module-wide mutex acquisition graph must be acyclic (deadlock freedom)",
	Run:  runLockOrder,
}

// lockOrderEdge is one "B acquired while A held" observation.
type lockOrderEdge struct {
	from, to string
	pos      token.Pos
	pkg      *Package
	via      string // callee name when the acquisition is inside a call
}

// batchLockGraph builds (once per Batch, serially in prepare) the full
// acquisition graph.
func batchLockGraph(b *Batch) []lockOrderEdge {
	if b.lockGraph != nil || b.lockGraphBuilt {
		return b.lockGraph
	}
	b.lockGraphBuilt = true
	for _, pkg := range b.Pkgs {
		for _, fn := range funcDecls(pkg) {
			bodies := []*ast.BlockStmt{fn.Body}
			for _, lit := range funcLits(fn.Body) {
				bodies = append(bodies, lit.Body)
			}
			for _, body := range bodies {
				collectLockEdges(b, pkg, fn.Name.Name, body)
			}
		}
	}
	// Deterministic order for reporting.
	sort.Slice(b.lockGraph, func(i, j int) bool {
		x, y := b.lockGraph[i], b.lockGraph[j]
		if x.from != y.from {
			return x.from < y.from
		}
		if x.to != y.to {
			return x.to < y.to
		}
		return x.pos < y.pos
	})
	return b.lockGraph
}

// collectLockEdges runs the must-held analysis over one body and records
// acquisition-order edges on the batch.
func collectLockEdges(b *Batch, pkg *Package, fnName string, body *ast.BlockStmt) {
	info := pkg.Info
	cfg := BuildCFG(fnName, body)
	transfer := func(blk *Block, in FlowFact) FlowFact {
		s := in.(StringSet)
		for _, n := range blk.Nodes {
			s = lockTransferKey(info, n, s)
		}
		return s
	}
	facts := SolveForward(cfg, FlowProblem{Entry: NewStringSet(), Transfer: transfer, Join: IntersectSets})
	for _, blk := range cfg.Blocks {
		in, ok := facts[blk]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range blk.Nodes {
			held := s // held set at this node's program point
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// A goroutine body starts with nothing held, and a defer
				// runs at exit; neither orders locks at this point.
			default:
				inspectShallow(n, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if ref, ok := lockCall(info, call); ok && ref.op.acquires() {
						for a := range held {
							b.lockGraph = append(b.lockGraph,
								lockOrderEdge{from: a, to: ref.key, pos: call.Pos(), pkg: pkg})
						}
						return true
					}
					if callee := calleeFunc(info, call); callee != nil && len(held) > 0 {
						for _, acq := range lockSummary(b, callee).Sorted() {
							for a := range held {
								b.lockGraph = append(b.lockGraph,
									lockOrderEdge{from: a, to: acq, pos: call.Pos(), pkg: pkg, via: callee.Name()})
							}
						}
					}
					return true
				})
			}
			s = lockTransferKey(info, n, held)
		}
	}
}

// lockTransferKey is lockTransfer keyed by module-wide mutex identity
// instead of short name.
func lockTransferKey(info *types.Info, n ast.Node, s StringSet) StringSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return s
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if ref, ok := lockCall(info, call); ok {
				if ref.op.acquires() {
					s = s.With(ref.key)
				} else {
					key := ref.key
					s = s.Without(func(k string) bool { return k == key })
				}
			}
		}
		return true
	})
	return s
}

// lockSummary returns the transitive may-acquire set of a module
// function, straight off the call graph's bottom-up summaries
// (callgraph.go), which compute the full fixpoint through mutual
// recursion; functions outside the module (no graph node) have an empty
// summary. The lookup is two map reads, so there is no memo — which also
// keeps it write-free for the parallel runner.
func lockSummary(b *Batch, fn *types.Func) StringSet {
	if n := batchGraph(b).node(fn); n != nil {
		if s, ok := b.graph.transAcquires[n.key]; ok {
			return s
		}
	}
	return NewStringSet()
}

func runLockOrder(pass *Pass) {
	edges := batchLockGraph(pass.Batch)
	if len(edges) == 0 {
		return
	}
	// Nodes and adjacency for cycle detection.
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	inCycle := cyclicEdges(adj)
	seen := make(map[string]bool) // dedupe identical (from,to,pos) observations
	for _, e := range edges {
		if e.pkg != pass.Pkg {
			continue
		}
		if e.from == e.to {
			k := fmt.Sprintf("self|%s|%d", e.from, e.pos)
			if seen[k] {
				continue
			}
			seen[k] = true
			if e.via != "" {
				pass.Reportf(e.pos,
					"calls %s while holding %s, which %s acquires again (self-deadlock: sync mutexes are not reentrant)",
					e.via, shortLockName(e.from), e.via)
			} else {
				pass.Reportf(e.pos,
					"acquires %s while already holding it (self-deadlock: sync mutexes are not reentrant)",
					shortLockName(e.from))
			}
			continue
		}
		if !inCycle[e.from+"->"+e.to] {
			continue
		}
		k := fmt.Sprintf("cycle|%s|%s|%d", e.from, e.to, e.pos)
		if seen[k] {
			continue
		}
		seen[k] = true
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via call to %s)", e.via)
		}
		pass.Reportf(e.pos,
			"acquires %s while holding %s%s, closing a lock-order cycle (potential deadlock); acquire module mutexes in one global order",
			shortLockName(e.to), shortLockName(e.from), via)
	}
}

// shortLockName renders a mutex key for messages: the type-qualified tail
// of the identity ("CachedStore.mu") rather than the full import path.
func shortLockName(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}
