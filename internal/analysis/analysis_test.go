package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: the stdlib source importer
// re-type-checks os/io/etc. per loader, which is the expensive part.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// loadFixture loads testdata/src/<name> as its own package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	before := len(l.TypeErrors)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "bitmapindex/fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(l.TypeErrors) > before {
		t.Fatalf("fixture %s has type errors: %v", name, l.TypeErrors[before:])
	}
	return pkg
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// wants maps file:line to the expected message substring.
func wants(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				abs, _ := filepath.Abs(path)
				out[posKey(abs, line)] = m[1]
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return out
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// checkFixture runs one analyzer over one fixture and matches findings
// against the fixture's // want comments, both directions.
func checkFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	checkFixtures(t, a, fixture)
}

// checkFixtures is checkFixture over several fixture directories loaded
// into one Batch — the multi-package harness for interprocedural
// analyzers. Directories load in argument order, so dependency packages
// must precede their importers (the loader memoizes by import path, which
// is how a root fixture's `bitmapindex/fixture/...` import resolves).
// Expected findings are the union of every directory's // want comments.
func checkFixtures(t *testing.T, a *Analyzer, fixtures ...string) {
	t.Helper()
	var pkgs []*Package
	expected := make(map[string]string)
	for _, fixture := range fixtures {
		pkgs = append(pkgs, loadFixture(t, fixture))
		for k, v := range wants(t, filepath.Join("testdata", "src", fixture)) {
			expected[k] = v
		}
	}
	findings := Run(pkgs, []*Analyzer{a})
	matched := make(map[string]bool)
	for _, f := range findings {
		file, err := filepath.Abs(f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		key := posKey(file, f.Pos.Line)
		want, ok := expected[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("finding at %s:%d: got %q, want substring %q",
				f.Pos.Filename, f.Pos.Line, f.Message, want)
		}
		matched[key] = true
	}
	for key, want := range expected {
		if !matched[key] {
			t.Errorf("missing finding at %s (want %q)", key, want)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixtures []string
	}{
		{TailMask, []string{"tailmask_bad", "tailmask_good", "tailmask_xbad", "tailmask_xgood"}},
		{HotAlloc, []string{"hotalloc_bad", "hotalloc_good"}},
		{ErrcheckIO, []string{"errcheckio_bad", "errcheckio_good"}},
		{TelemetryLabels, []string{"telemetrylabels_bad", "telemetrylabels_good",
			"telemetrylabels_attr_bad", "telemetrylabels_attr_good"}},
		{LockHeld, []string{"lockheld_bad", "lockheld_good", "lockheld_flow"}},
		{LockOrder, []string{"lockorder_bad", "lockorder_good"}},
		{UnlockPath, []string{"unlockpath_bad", "unlockpath_good"}},
		{GoCapture, []string{"gocapture_bad", "gocapture_good"}},
		{AtomicField, []string{"atomicfield_bad", "atomicfield_good"}},
		{PoolHygiene, []string{"poolhygiene_bad", "poolhygiene_good"}},
		{GoroutineLife, []string{"goroutinelife_bad", "goroutinelife_good"}},
		{ChanProtocol, []string{"chanprotocol_bad", "chanprotocol_good"}},
		{CtxFlow, []string{"ctxflow_bad", "ctxflow_good"}},
		{CloseOwn, []string{"closeown_bad", "closeown_good"}},
	}
	for _, c := range cases {
		for _, fixture := range c.fixtures {
			t.Run(c.analyzer.Name+"/"+fixture, func(t *testing.T) {
				checkFixture(t, c.analyzer, fixture)
			})
		}
	}
}

// TestTransitiveHotpath exercises the multi-package call-graph walk: hot
// roots in hotpath_multi, allocations (and the //bix:allocok boundary) in
// its helper package, diagnostics landing in the helper with the full
// cross-package call chain — including an edge resolved through a bound
// function value.
func TestTransitiveHotpath(t *testing.T) {
	checkFixtures(t, HotAlloc, "hotpath_multi/helper", "hotpath_multi")
}

// TestModuleClean is `bixlint ./...` as a test: the whole module loads
// without type errors and every analyzer comes back clean. A regression
// anywhere in the tree fails here before it fails in CI's lint step.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := fixtureLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(l.TypeErrors) > 0 {
		t.Fatalf("module has type errors: %v", l.TypeErrors)
	}
	if len(pkgs) < 15 {
		t.Fatalf("LoadAll found only %d packages; the walker is skipping too much", len(pkgs))
	}
	for _, f := range Run(pkgs, All) {
		t.Errorf("finding on clean tree: %s", f)
	}
}

func TestDirectiveParsing(t *testing.T) {
	pkg := loadFixture(t, "hotalloc_good")
	n := 0
	for _, fn := range funcDecls(pkg) {
		if hasDirective(fn.Doc, "hotpath") {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("hotalloc_good should have 4 //bix:hotpath functions, found %d", n)
	}
	// A directive with a reason suffix still counts; a prefix collision
	// ("hotpathx") must not.
	for _, fn := range funcDecls(pkg) {
		if hasDirective(fn.Doc, "hotpat") {
			t.Fatalf("%s: directive prefix %q must not match //bix:hotpath", fn.Name.Name, "hotpat")
		}
	}
}
