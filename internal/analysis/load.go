package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks the packages of one Go module using only the standard
// library: go/build for file selection (build-constraint aware), go/parser
// for syntax, go/types for checking, and the toolchain's source importer
// for standard-library dependencies. Module-internal imports are resolved
// recursively from source, so the loader needs no build cache, no network
// and no external binaries.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod
	ModDir  string // directory containing go.mod

	ctx  build.Context
	std  types.Importer
	pkgs map[string]*Package // by import path
	busy map[string]bool     // import-cycle guard

	// TypeErrors collects type-checking diagnostics across all loads;
	// callers decide whether they are fatal.
	TypeErrors []error
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader creates a loader for the module containing dir, walking upward
// to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		modDir = parent
	}
	modPath, err := modulePath(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	// The source importer type-checks the standard library from GOROOT/src;
	// with cgo disabled every package (net, os/user, ...) selects its pure
	// Go fallback, so no C toolchain is ever needed. The importer reads the
	// context by pointer, so build.Default must be adjusted globally.
	build.Default.CgoEnabled = false
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  modDir,
		ctx:     ctx,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		busy:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", file)
}

// LoadAll loads every package directory of the module, skipping testdata,
// vendor, hidden and underscore directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

func isNoGo(err error) bool {
	_, ok := err.(*build.NoGoError)
	return ok
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files are excluded: the analyzers target production code.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { l.TypeErrors = append(l.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info) // errors are in TypeErrors
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source, everything else is delegated to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		dir := filepath.Join(l.ModDir, filepath.FromSlash(rel))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
