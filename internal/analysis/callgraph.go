package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the analysis layer: a
// deterministic module-wide call graph over every package of the Batch,
// with per-function fact summaries folded bottom-up over the graph's
// SCC condensation (scc.go). The graph is what lets hotalloc follow
// //bix:hotpath across call chains, lockorder resolve transitive
// may-acquire sets through mutual recursion, and poolhygiene see that an
// argument handed to a helper ends up in a sync.Pool.Put.
//
// Resolution is static and best-effort: direct calls and method calls
// resolve through go/types; a function value bound by a simple assignment
// (`f := helper.Fill; f(x)`) resolves to its target; calls through
// interface methods, struct fields and channel-delivered closures do not
// resolve and simply contribute no edge. Edges record how the callee runs
// (call, defer, go, or referenced from a closure) so each client can pick
// the traversal that matches its semantics.
//
// Extracted facts and edges are cheap to recompute but are also
// serializable: factcache.go persists them keyed by a content hash of the
// package (and its module-internal imports), so repeated `-ci` runs skip
// the extraction walk for unchanged packages.

// edgeKind says how a callee runs relative to its caller.
type edgeKind int

const (
	edgeCall  edgeKind = iota // plain call at this program point
	edgeDefer                 // deferred to function exit (still this call's frame)
	edgeGo                    // launched on a new goroutine
	edgeRef                   // called from inside a function literal, or referenced as a value
)

// callEdge is one resolved call site. Fields are exported for the fact
// cache's JSON encoding; Pos is a token.Position (not token.Pos) so cached
// edges stay meaningful across runs.
type callEdge struct {
	Callee string         `json:"c"`
	Kind   edgeKind       `json:"k"`
	Pos    token.Position `json:"p"`
}

// allocSite is one allocation-inducing construct. What is a message
// fragment ("calls append", "builds a slice literal") phrased so both the
// direct and the transitive hotalloc diagnostics can embed it verbatim.
type allocSite struct {
	Pos  token.Position `json:"p"`
	What string         `json:"w"`
}

// funcFacts is the per-function summary extracted in one AST walk:
// everything the interprocedural analyzers need to reason about a callee
// without revisiting its body.
type funcFacts struct {
	Allocs        []allocSite `json:"allocs,omitempty"`
	Acquires      []string    `json:"acquires,omitempty"` // mutex keys locked anywhere in the body
	Releases      []string    `json:"releases,omitempty"` // mutex keys unlocked anywhere in the body
	PoolGets      []string    `json:"pool_gets,omitempty"`
	PoolPuts      []string    `json:"pool_puts,omitempty"`
	PoolPutParams []int       `json:"pool_put_params,omitempty"` // parameter indices that reach a Put
}

// cgNode is one module function in the call graph.
type cgNode struct {
	key     string // types.Func.FullName(): unique, stable across runs
	display string // "pkg.(*Recv).Name": unambiguous in cross-package chains
	pkg     *Package
	decl    *ast.FuncDecl
	fn      *types.Func
	hot     bool // //bix:hotpath
	allocOK bool // //bix:allocok
	edges   []callEdge
	facts   *funcFacts
}

// callGraph is the built graph plus its bottom-up summaries.
type callGraph struct {
	nodes map[string]*cgNode
	keys  []string // sorted node keys: the deterministic iteration order

	// transAcquires is the transitive may-acquire set per function,
	// computed over the SCC condensation (full fixpoint inside cycles).
	transAcquires map[string]StringSet
	// allocates reports whether the function or anything it (transitively)
	// calls or defers allocates, stopping at //bix:allocok boundaries.
	allocates map[string]bool

	hotDone     bool
	hotFindings []hotFinding
}

// batchGraph builds (once per Batch) the module call graph and its
// summaries, consulting the fact cache when the Batch has one configured.
func batchGraph(b *Batch) *callGraph {
	if b.graph != nil {
		return b.graph
	}
	g := &callGraph{
		nodes:         make(map[string]*cgNode),
		transAcquires: make(map[string]StringSet),
		allocates:     make(map[string]bool),
	}
	b.graph = g

	var cache *factCache
	hashes := make(map[string]string)
	if b.CachePath != "" {
		cache = openFactCache(b.CachePath)
		h := newBatchHasher(b)
		for _, pkg := range b.Pkgs {
			hashes[pkg.Path] = h.hash(pkg)
		}
	}

	for _, pkg := range b.Pkgs {
		var cached map[string]cachedFunc
		hash := hashes[pkg.Path]
		if cache != nil && hash != "" {
			if c, ok := cache.lookup(pkg.Path, hash); ok {
				cached = c
				b.cacheHits++
			} else {
				b.cacheMisses++
			}
		}
		fresh := make(map[string]cachedFunc)
		for _, decl := range funcDecls(pkg) {
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{
				key:     fn.FullName(),
				display: displayName(pkg, decl, fn),
				pkg:     pkg,
				decl:    decl,
				fn:      fn,
				hot:     hasDirective(decl.Doc, "hotpath"),
				allocOK: hasDirective(decl.Doc, "allocok"),
			}
			if cf, ok := cached[n.key]; ok {
				n.edges, n.facts = cf.Edges, cf.Facts
			} else {
				n.edges, n.facts = extractFunc(pkg, decl)
				fresh[n.key] = cachedFunc{Edges: n.edges, Facts: n.facts}
			}
			if n.facts == nil {
				n.facts = &funcFacts{}
			}
			g.nodes[n.key] = n
		}
		if cache != nil && cached == nil && hash != "" {
			cache.store(pkg.Path, hash, fresh)
		}
	}
	for k := range g.nodes {
		g.keys = append(g.keys, k)
	}
	sort.Strings(g.keys)
	g.buildSummaries()
	if cache != nil {
		_ = cache.save() // best-effort: a failed save only costs the next run time
	}
	return g
}

// displayName renders a function for call-chain diagnostics:
// "bitvec.(*Vector).CopyRange", "core.runSegment".
func displayName(pkg *Package, decl *ast.FuncDecl, fn *types.Func) string {
	name := decl.Name.Name
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := false
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = true
		}
		if named, ok := rt.(*types.Named); ok {
			if ptr {
				name = "(*" + named.Obj().Name() + ")." + name
			} else {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	pkgName := ""
	if pkg.Types != nil {
		pkgName = pkg.Types.Name()
	}
	return pkgName + "." + name
}

// posRange is a half-open source interval used to classify constructs by
// lexical containment (inside a function literal, inside a panic argument).
type posRange struct{ lo, hi token.Pos }

func (r posRange) containsStrict(p token.Pos) bool { return r.lo < p && p < r.hi }
func (r posRange) contains(p token.Pos) bool       { return r.lo <= p && p < r.hi }

func inAny(rs []posRange, p token.Pos, strict bool) bool {
	for _, r := range rs {
		if strict && r.containsStrict(p) {
			return true
		}
		if !strict && r.contains(p) {
			return true
		}
	}
	return false
}

// extractFunc computes one function's edges and facts in two passes over
// its body: a collection pass (defer/go call sites, literal and panic-
// argument extents, function-value bindings, parameter indices) and an
// emission pass.
func extractFunc(pkg *Package, decl *ast.FuncDecl) ([]callEdge, *funcFacts) {
	info := pkg.Info
	fset := pkg.Fset
	facts := &funcFacts{}
	var edges []callEdge

	deferCalls := make(map[*ast.CallExpr]bool)
	goCalls := make(map[*ast.CallExpr]bool)
	var litRanges, panicRanges []posRange
	binds := make(map[types.Object]*types.Func) // x := f (best-effort function values)
	paramIndex := make(map[types.Object]int)

	if decl.Type.Params != nil {
		i := 0
		for _, field := range decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					paramIndex[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}

	bindTarget := func(e ast.Expr) *types.Func {
		var id *ast.Ident
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return nil
		}
		fn, _ := info.Uses[id].(*types.Func)
		return fn
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			deferCalls[s.Call] = true
		case *ast.GoStmt:
			goCalls[s.Call] = true
		case *ast.FuncLit:
			litRanges = append(litRanges, posRange{s.Pos(), s.End()})
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					panicRanges = append(panicRanges, posRange{s.Lparen, s.Rparen})
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
						continue
					}
					if fn := bindTarget(rhs); fn != nil {
						if id, ok := s.Lhs[i].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								binds[obj] = fn
							} else if obj := info.Uses[id]; obj != nil {
								binds[obj] = fn
							}
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i, v := range s.Values {
					if fn := bindTarget(v); fn != nil {
						if obj := info.Defs[s.Names[i]]; obj != nil {
							binds[obj] = fn
						}
					}
				}
			}
		}
		return true
	})

	inLit := func(p token.Pos) bool { return inAny(litRanges, p, true) }
	inPanic := func(p token.Pos) bool { return inAny(panicRanges, p, false) }

	addAlloc := func(pos token.Pos, what string) {
		if inLit(pos) || inPanic(pos) {
			// Closure bodies run outside the enclosing function's hot path
			// (the closure itself is the allocation); panic arguments run
			// only on the failure path, which is by definition not hot.
			return
		}
		facts.Allocs = append(facts.Allocs, allocSite{Pos: fset.Position(pos), What: what})
	}

	seenAcq := make(map[string]bool)
	seenRel := make(map[string]bool)
	seenGet := make(map[string]bool)
	seenPut := make(map[string]bool)
	seenPutParam := make(map[int]bool)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			addAlloc(e.Pos(), "contains a closure literal")
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					addAlloc(e.Pos(), "builds a slice literal")
				case *types.Map:
					addAlloc(e.Pos(), "builds a map literal")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := e.X.(*ast.CompositeLit); ok {
					addAlloc(cl.Pos(), "takes the address of a composite literal")
				}
			}
		case *ast.CallExpr:
			extractCall(pkg, e, extractCtx{
				deferCalls: deferCalls, goCalls: goCalls,
				inLit: inLit, addAlloc: addAlloc, binds: binds,
			}, &edges)
			// Lock and pool facts cover the whole body including literal
			// interiors: a closure that locks still locks on behalf of its
			// creator's data structures.
			if ref, ok := lockCall(info, e); ok {
				if ref.op.acquires() {
					if !seenAcq[ref.key] {
						seenAcq[ref.key] = true
						facts.Acquires = append(facts.Acquires, ref.key)
					}
				} else if !seenRel[ref.key] {
					seenRel[ref.key] = true
					facts.Releases = append(facts.Releases, ref.key)
				}
			}
			if ref, ok := poolCall(info, e); ok {
				if ref.isGet {
					if !seenGet[ref.key] {
						seenGet[ref.key] = true
						facts.PoolGets = append(facts.PoolGets, ref.key)
					}
				} else {
					if !seenPut[ref.key] {
						seenPut[ref.key] = true
						facts.PoolPuts = append(facts.PoolPuts, ref.key)
					}
					if len(e.Args) == 1 {
						if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								if i, ok := paramIndex[obj]; ok && !seenPutParam[i] {
									seenPutParam[i] = true
									facts.PoolPutParams = append(facts.PoolPutParams, i)
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	sort.Strings(facts.Acquires)
	sort.Strings(facts.Releases)
	sort.Strings(facts.PoolGets)
	sort.Strings(facts.PoolPuts)
	sort.Ints(facts.PoolPutParams)
	return edges, facts
}

type extractCtx struct {
	deferCalls map[*ast.CallExpr]bool
	goCalls    map[*ast.CallExpr]bool
	inLit      func(token.Pos) bool
	addAlloc   func(token.Pos, string)
	binds      map[types.Object]*types.Func
}

// extractCall records the edge and the allocation facts of one call site.
func extractCall(pkg *Package, call *ast.CallExpr, ctx extractCtx, edges *[]callEdge) {
	info := pkg.Info

	// Builtin allocators and fmt calls.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				ctx.addAlloc(call.Pos(), "calls "+b.Name())
			}
			return // builtins contribute no edge
		}
	}

	callee := calleeFunc(info, call)
	if callee == nil {
		// Best-effort function values: a call through an identifier bound
		// by a simple `x := f` assignment resolves to f.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				callee = ctx.binds[obj]
			}
		}
	}
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		ctx.addAlloc(call.Pos(), "calls fmt."+callee.Name())
	}

	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				if at, ok := info.Types[call.Args[0]]; ok {
					if _, already := at.Type.Underlying().(*types.Interface); !already && !at.IsNil() {
						ctx.addAlloc(call.Pos(), "converts to an interface")
					}
				}
			}
		}
		return // a conversion is not a call: no edge, no boxing check
	}

	// Implicit boxing at the call site: a concrete argument passed to an
	// interface parameter allocates exactly like an explicit conversion,
	// but v2 could not see it. fmt callees are skipped (flagged wholesale
	// above); unresolved callees still get the check via their signature.
	if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
				checkBoxing(pkg, call, sig, callee, ctx.addAlloc)
			}
		}
	}

	if callee != nil {
		kind := edgeCall
		switch {
		case ctx.inLit(call.Pos()):
			kind = edgeRef
		case ctx.deferCalls[call]:
			kind = edgeDefer
		case ctx.goCalls[call]:
			kind = edgeGo
		}
		*edges = append(*edges, callEdge{
			Callee: callee.FullName(),
			Kind:   kind,
			Pos:    pkg.Fset.Position(call.Pos()),
		})
	}
}

// checkBoxing flags concrete-to-interface argument passing.
func checkBoxing(pkg *Package, call *ast.CallExpr, sig *types.Signature, callee *types.Func, addAlloc func(token.Pos, string)) {
	info := pkg.Info
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return
	}
	calleeName := "function value"
	if callee != nil {
		calleeName = callee.Name()
	}
	qual := func(p *types.Package) string { return p.Name() }
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice itself: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if _, already := at.Type.Underlying().(*types.Interface); already {
			continue
		}
		if pointerShaped(at.Type) {
			continue // a single-word pointer fits the iface data word: no heap allocation
		}
		addAlloc(arg.Pos(), fmt.Sprintf("passes %s to interface parameter %d of %s",
			types.TypeString(at.Type, qual), i, calleeName))
	}
}

// pointerShaped reports whether values of t are represented as a single
// pointer word, which the runtime stores directly in an interface's data
// word without allocating (pointers, maps, channels, funcs, unsafe.Pointer).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// buildSummaries folds per-function facts bottom-up over the SCC
// condensation: Tarjan emits components callees-first (scc.go), so by the
// time a component is processed every out-of-component callee summary is
// final, and within a component the union over members is the fixpoint.
func (g *callGraph) buildSummaries() {
	adj := make(map[string]map[string]bool, len(g.nodes))
	for k, n := range g.nodes {
		succ := make(map[string]bool)
		for _, e := range n.edges {
			if _, ok := g.nodes[e.Callee]; ok {
				succ[e.Callee] = true
			}
		}
		adj[k] = succ
	}
	comp, comps := stronglyConnected(adj)
	for _, members := range comps {
		acq := NewStringSet()
		allocates := false
		for _, m := range members {
			n := g.nodes[m]
			if n == nil {
				continue
			}
			for _, a := range n.facts.Acquires {
				acq[a] = true
			}
			if len(n.facts.Allocs) > 0 {
				allocates = true
			}
			for _, e := range n.edges {
				cn := g.nodes[e.Callee]
				if cn == nil || comp[e.Callee] == comp[m] {
					continue
				}
				// May-acquire traverses every edge kind: a lock taken in a
				// deferred call, a goroutine or a stored closure still
				// orders against locks the caller's data structures use.
				for k := range g.transAcquires[e.Callee] {
					acq[k] = true
				}
				// Allocation propagates only through calls and defers that
				// actually run in the caller's frame, and stops at audited
				// //bix:allocok boundaries.
				if (e.Kind == edgeCall || e.Kind == edgeDefer) && !cn.allocOK && g.allocates[e.Callee] {
					allocates = true
				}
			}
		}
		for _, m := range members {
			g.transAcquires[m] = acq
			g.allocates[m] = allocates
		}
	}
}

// node returns the graph node for a types.Func, or nil.
func (g *callGraph) node(fn *types.Func) *cgNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.FullName()]
}
