package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// UnlockPath verifies that every mutex acquisition is released on every
// path out of the function: normal returns, falls off the end, early
// returns from branches, labeled breaks, and explicit panic(...) exits.
// It runs a forward may-held dataflow over the CFG — facts are
// (mutex, mode, acquisition site) triples — and reports any acquisition
// that can reach the exit block still held.
//
// `defer mu.Unlock()` discharges the obligation for all paths, including
// panic edges, which is exactly why the repository prefers that idiom; an
// explicit Unlock discharges only the paths that execute it. RLock must be
// paired with RUnlock and Lock with Unlock — releasing a write lock with
// RUnlock (or vice versa) leaves the obligation standing and is reported.
//
// A function that intentionally returns with the lock held (lock-transfer
// across an API boundary) can declare it with `//bix:unlockok (reason)`.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "every Lock/RLock must reach an Unlock/RUnlock on all paths, including panic and defer edges",
	Run:  runUnlockPath,
}

// acqElem encodes one live acquisition as a lattice element. The fields
// never contain '|': keys are type/package paths plus a field name, and
// the rest are enum/int renderings.
func acqElem(ref lockRef) string {
	return ref.key + "|" + ref.name + "|" + strconv.Itoa(int(ref.op)) + "|" + strconv.Itoa(int(ref.call.Pos()))
}

func parseAcqElem(e string) (key, name string, op lockOp, pos token.Pos) {
	parts := strings.SplitN(e, "|", 4)
	opInt, _ := strconv.Atoi(parts[2])
	posInt, _ := strconv.Atoi(parts[3])
	return parts[0], parts[1], lockOp(opInt), token.Pos(posInt)
}

func runUnlockPath(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		if hasDirective(fn.Doc, "unlockok") {
			continue
		}
		checkUnlockPaths(pass, fn.Name.Name, fn.Body)
		for _, lit := range funcLits(fn.Body) {
			checkUnlockPaths(pass, fn.Name.Name+" (func literal)", lit.Body)
		}
	}
}

func checkUnlockPaths(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	cfg := BuildCFG(name, body)
	deferred := deferredReleases(info, cfg)
	transfer := func(b *Block, in FlowFact) FlowFact {
		s := in.(StringSet)
		for _, n := range b.Nodes {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				continue
			}
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				ref, ok := lockCall(info, call)
				if !ok {
					return true
				}
				if ref.op.acquires() {
					s = s.With(acqElem(ref))
				} else if rel := ref.op.releases(); rel >= 0 {
					key := ref.key
					s = s.Without(func(e string) bool {
						k, _, op, _ := parseAcqElem(e)
						return k == key && op == rel
					})
				}
				return true
			})
		}
		return s
	}
	facts := SolveForward(cfg, FlowProblem{Entry: NewStringSet(), Transfer: transfer, Join: UnionSets})
	exitIn, ok := facts[cfg.Exit]
	if !ok {
		return // exit unreachable (e.g. infinite loop): no exiting path to audit
	}
	for _, e := range exitIn.(StringSet).Sorted() {
		key, lockName, op, pos := parseAcqElem(e)
		if deferred[key][op] {
			continue
		}
		release := "Unlock"
		if op == opRLock {
			release = "RUnlock"
		}
		pass.Reportf(pos,
			"%s: %s.%s() can reach function exit without a matching %s.%s() on every path (including panic edges); release it on all paths or defer the %s",
			name, lockName, op, lockName, release, release)
	}
}
