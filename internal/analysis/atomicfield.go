package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces atomicity discipline on struct fields, module-wide.
// Two rules:
//
//  1. Mixed access: a field whose address is ever passed to a sync/atomic
//     function (atomic.AddInt64(&s.n, 1)) is an atomic field everywhere.
//     A plain read or write of it at a point where no mutex is definitely
//     held is a data race the race detector only catches if the schedule
//     cooperates; the analyzer catches it statically. The index of atomic
//     fields spans every package of the Batch, so a field published
//     atomically in one package and read plainly in another is still
//     caught. Functions annotated //bix:lockheld are trusted (their
//     callers hold the lock); any definitely-held mutex excuses the
//     access, since the module convention is one mutex per field.
//
//  2. Value copy: a field of a sync/atomic type (atomic.Int64,
//     atomic.Uint64, ...) must only be used through its methods or have
//     its address taken. Copying the value (x := r.cursor) copies the
//     hidden noCopy guard and, worse, snapshots the value in a way that
//     looks atomic but is not tied to the original. This is what gates
//     the flight recorder's cursor/threshold and the telemetry registry.
//
// Rule 1 analyzes function bodies with the same must-held dataflow the
// lock analyzers use; function literals are skipped (best-effort, like
// gocapture's inherited-state rule, the race CI gate backstops them).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic anywhere must never be plainly read or written without a lock held",
	Run:  runAtomicField,
}

// atomicFieldIndex is the module-wide index behind rule 1: fields whose
// address reaches a sync/atomic call, with the atomic function name and
// the set of selector expressions that are legitimate atomic uses.
type atomicFieldIndex struct {
	fields map[types.Object]string    // field -> atomic function name ("AddInt64")
	uses   map[*ast.SelectorExpr]bool // selectors consumed by an atomic call (not plain accesses)
}

// batchAtomicIndex builds (once per Batch) the atomic-field index.
func batchAtomicIndex(b *Batch) *atomicFieldIndex {
	if b.atomicIndex != nil {
		return b.atomicIndex
	}
	idx := &atomicFieldIndex{
		fields: make(map[types.Object]string),
		uses:   make(map[*ast.SelectorExpr]bool),
	}
	b.atomicIndex = idx
	for _, pkg := range b.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						idx.fields[s.Obj()] = fn.Name()
						idx.uses[sel] = true
					}
				}
				return true
			})
		}
	}
	return idx
}

func runAtomicField(pass *Pass) {
	idx := batchAtomicIndex(pass.Batch)
	for _, fn := range funcDecls(pass.Pkg) {
		// Rule 2 is purely syntactic and applies everywhere, including
		// lockheld-annotated functions: a copy is wrong under any lock.
		checkAtomicCopies(pass, fn)
		if len(idx.fields) == 0 || hasDirective(fn.Doc, "lockheld") {
			continue
		}
		checkMixedAccess(pass, idx, fn)
	}
}

// checkMixedAccess re-walks fn's CFG with the must-held lock state and
// reports plain accesses of indexed fields at lock-free points.
func checkMixedAccess(pass *Pass, idx *atomicFieldIndex, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	cfg := BuildCFG(fn.Name.Name, fn.Body)
	facts := SolveForward(cfg, FlowProblem{
		Entry: NewStringSet(),
		Transfer: func(b *Block, in FlowFact) FlowFact {
			s := in.(StringSet)
			for _, n := range b.Nodes {
				s = lockTransferKey(info, n, s)
			}
			return s
		},
		Join: IntersectSets,
	})
	reported := make(map[types.Object]bool) // one finding per field per function
	for _, b := range cfg.Blocks {
		in, ok := facts[b]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range b.Nodes {
			held := s
			inspectShallow(n, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sl, ok := info.Selections[sel]
				if !ok || sl.Kind() != types.FieldVal {
					return true
				}
				atomicFn, ok := idx.fields[sl.Obj()]
				if !ok || idx.uses[sel] {
					return true
				}
				if len(held) > 0 || reported[sl.Obj()] {
					return true
				}
				reported[sl.Obj()] = true
				pass.Reportf(sel.Pos(),
					"%s reads/writes %s plainly, but the field is accessed with sync/atomic (atomic.%s) elsewhere; use the atomic API here or hold the guarding mutex on every path",
					fn.Name.Name, sel.Sel.Name, atomicFn)
				return true
			})
			s = lockTransferKey(info, n, s)
		}
	}
}

// checkAtomicCopies flags value copies of sync/atomic-typed fields.
func checkAtomicCopies(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	// Parent-tracking walk: a selector of atomic type is fine as a method
	// receiver (r.next.Add) or under & (legacy API bridging); anything
	// else copies the value.
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sl, ok := info.Selections[sel]
		if !ok || sl.Kind() != types.FieldVal {
			return true
		}
		if !isAtomicType(info.Types[sel].Type) {
			return true
		}
		if len(stack) >= 2 {
			switch p := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if p.X == sel {
					return true // receiver of a method call / deeper selection
				}
			case *ast.UnaryExpr:
				if p.Op.String() == "&" && p.X == sel {
					return true
				}
			}
		}
		pass.Reportf(sel.Pos(),
			"%s copies atomic field %s (%s); atomic values must be used through their methods on the original, never copied",
			fn.Name.Name, sel.Sel.Name, info.Types[sel].Type.String())
		return true
	})
}

// isAtomicType reports whether t is a named type from sync/atomic
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic" && !strings.HasPrefix(named.Obj().Name(), "no")
}
