package analysis

import (
	"go/ast"
	"go/types"
)

// GoCapture audits what goroutines launched by `go` statements touch.
// One rule remains in v3: a goroutine literal that accesses a
// `// guarded by <mu>` field must acquire that mutex inside its own body
// before the access. Lock state never transfers across a `go` boundary:
// whatever the launching function holds is released (or contested) by the
// time the goroutine runs, so the literal is analyzed with an empty entry
// lock set by the same must-held dataflow lockheld uses. (lockheld itself
// skips direct go-literals to keep each defect reported once.)
//
// The v2 loop-variable rules (capturing an iteration variable, passing
// its address) were retired: since Go 1.22 — the version this module's
// go.mod requires — for-loop variables are per-iteration, so both
// patterns are well-defined and go vet's loopclosure no longer flags
// them either. Re-reporting them here produced pure noise on idiomatic
// worker-launch loops.
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "go statements must not touch guarded fields without acquiring the guard inside the goroutine",
	Run:  runGoCapture,
}

func runGoCapture(pass *Pass) {
	guarded := collectGuarded(pass.Pkg)
	if len(guarded) == 0 {
		return
	}
	for _, fn := range funcDecls(pass.Pkg) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, guarded, fn.Name.Name, g)
			}
			return true
		})
	}
}

func checkGoStmt(pass *Pass, guarded map[types.Object]string, fnName string, g *ast.GoStmt) {
	info := pass.Pkg.Info
	lit, isLit := g.Call.Fun.(*ast.FuncLit)
	if !isLit {
		return
	}
	// Guarded-field accesses inside the goroutine body, checked by the
	// must-held dataflow with an empty entry set — the launcher's locks do
	// not protect the goroutine.
	cfg := BuildCFG(fnName+" (go literal)", lit.Body)
	facts := SolveForward(cfg, FlowProblem{
		Entry: NewStringSet(),
		Transfer: func(b *Block, in FlowFact) FlowFact {
			s := in.(StringSet)
			for _, n := range b.Nodes {
				s = lockTransfer(info, n, s)
			}
			return s
		},
		Join: IntersectSets,
	})
	reported := make(map[types.Object]bool)
	for _, b := range cfg.Blocks {
		in, ok := facts[b]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range b.Nodes {
			for _, use := range guardedUses(info, guarded, n) {
				if s[use.mu] {
					continue
				}
				obj := info.Selections[use.sel].Obj()
				if reported[obj] {
					continue
				}
				reported[obj] = true
				pass.Reportf(use.sel.Pos(),
					"%s: goroutine accesses %s (guarded by %s) without acquiring %s inside the goroutine; the launcher's locks do not cover it",
					fnName, use.sel.Sel.Name, use.mu, use.mu)
			}
			s = lockTransfer(info, n, s)
		}
	}
}
