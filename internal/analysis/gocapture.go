package analysis

import (
	"go/ast"
	"go/types"
)

// GoCapture audits what goroutines launched by `go` statements capture.
// Two rules:
//
//  1. A goroutine literal must not capture an enclosing loop's iteration
//     variable, and a `go f(...)` call must not pass the address of one.
//     Under Go ≥ 1.22 the variable is per-iteration, but the repository's
//     concurrency kernels (core.EvalBatch's worker pool, bixbench's
//     metrics server) deliberately pass indices through channels or
//     arguments instead — the goroutine's identity must not depend on
//     loop state, and the code must stay correct under earlier toolchain
//     semantics and go vet's loopclosure rule.
//
//  2. A goroutine literal that touches a `// guarded by <mu>` field must
//     acquire that mutex inside its own body before the access. Lock
//     state never transfers across a `go` boundary: whatever the
//     launching function holds is released (or contested) by the time the
//     goroutine runs, so the literal is analyzed with an empty entry lock
//     set by the same must-held dataflow lockheld uses. (lockheld itself
//     skips direct go-literals to keep each defect reported once.)
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "go statements must not capture loop variables or guarded fields without the guard",
	Run:  runGoCapture,
}

func runGoCapture(pass *Pass) {
	guarded := collectGuarded(pass.Pkg)
	for _, fn := range funcDecls(pass.Pkg) {
		var goStmts []*ast.GoStmt
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, g)
			}
			return true
		})
		for _, g := range goStmts {
			loopVars := enclosingLoopVars(pass, fn.Body, g)
			checkGoStmt(pass, guarded, fn.Name.Name, g, loopVars)
		}
	}
}

// enclosingLoopVars returns the iteration-variable objects of every loop
// on the path from root to target: range key/value bindings and variables
// defined in a for statement's init.
func enclosingLoopVars(pass *Pass, root ast.Node, target ast.Node) map[types.Object]bool {
	info := pass.Pkg.Info
	vars := make(map[types.Object]bool)
	var stack []ast.Node
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			for _, e := range stack {
				switch loop := e.(type) {
				case *ast.RangeStmt:
					for _, x := range []ast.Expr{loop.Key, loop.Value} {
						if id, ok := x.(*ast.Ident); ok && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil {
								vars[obj] = true
							}
						}
					}
				case *ast.ForStmt:
					if as, ok := loop.Init.(*ast.AssignStmt); ok {
						for _, lhs := range as.Lhs {
							if id, ok := lhs.(*ast.Ident); ok {
								if obj := info.Defs[id]; obj != nil {
									vars[obj] = true
								}
							}
						}
					}
				}
			}
			found = true
			return false
		}
		return true
	})
	return vars
}

func checkGoStmt(pass *Pass, guarded map[types.Object]string, fnName string, g *ast.GoStmt, loopVars map[types.Object]bool) {
	info := pass.Pkg.Info
	lit, isLit := g.Call.Fun.(*ast.FuncLit)

	// Rule 1a: the literal captures a loop variable.
	if isLit && len(loopVars) > 0 {
		reported := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && loopVars[obj] && !reported[obj] {
					reported[obj] = true
					pass.Reportf(id.Pos(),
						"%s: goroutine captures loop variable %s; pass it as an argument or read it from a channel",
						fnName, id.Name)
				}
			}
			return true
		})
	}
	// Rule 1b: go f(&i) — the address of a loop variable escapes into the
	// goroutine even without a literal.
	for _, arg := range g.Call.Args {
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && loopVars[obj] {
					pass.Reportf(arg.Pos(),
						"%s: go statement passes the address of loop variable %s to a goroutine; pass the value instead",
						fnName, id.Name)
				}
			}
		}
	}
	if !isLit || len(guarded) == 0 {
		return
	}
	// Rule 2: guarded-field accesses inside the goroutine body, checked by
	// the must-held dataflow with an empty entry set — the launcher's
	// locks do not protect the goroutine.
	cfg := BuildCFG(fnName+" (go literal)", lit.Body)
	facts := SolveForward(cfg, FlowProblem{
		Entry: NewStringSet(),
		Transfer: func(b *Block, in FlowFact) FlowFact {
			s := in.(StringSet)
			for _, n := range b.Nodes {
				s = lockTransfer(info, n, s)
			}
			return s
		},
		Join: IntersectSets,
	})
	reported := make(map[types.Object]bool)
	for _, b := range cfg.Blocks {
		in, ok := facts[b]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range b.Nodes {
			for _, use := range guardedUses(info, guarded, n) {
				if s[use.mu] {
					continue
				}
				obj := info.Selections[use.sel].Obj()
				if reported[obj] {
					continue
				}
				reported[obj] = true
				pass.Reportf(use.sel.Pos(),
					"%s: goroutine accesses %s (guarded by %s) without acquiring %s inside the goroutine; the launcher's locks do not cover it",
					fnName, use.sel.Sel.Name, use.mu, use.mu)
			}
			s = lockTransfer(info, n, s)
		}
	}
}
