package analysis

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// A baseline is a checked-in suppression file: one accepted finding per
// line, in the form
//
//	relative/path.go [analyzer] message text
//
// deliberately WITHOUT line numbers, so unrelated edits above a finding
// do not invalidate the entry. Lines starting with '#' and blank lines
// are ignored. A baseline entry suppresses any number of identical
// findings in the named file (same analyzer, same message).

// baselineKey normalises one finding to its baseline line.
func baselineKey(f Finding, root string) string {
	file := f.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s [%s] %s", filepath.ToSlash(file), f.Analyzer, f.Message)
}

// ReadBaseline parses a baseline stream into the set of suppressed keys.
func ReadBaseline(r io.Reader) (map[string]bool, error) {
	out := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, sc.Err()
}

// FilterBaseline drops findings whose key appears in the baseline and
// returns the survivors plus the baseline entries that matched nothing
// (stale entries a -write-baseline refresh would remove).
func FilterBaseline(findings []Finding, baseline map[string]bool, root string) (kept []Finding, stale []string) {
	used := make(map[string]bool)
	for _, f := range findings {
		key := baselineKey(f, root)
		if baseline[key] {
			used[key] = true
			continue
		}
		kept = append(kept, f)
	}
	for key := range baseline {
		if !used[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return kept, stale
}

// WriteBaseline renders findings as a baseline file, sorted and
// deduplicated so regeneration is byte-stable.
func WriteBaseline(w io.Writer, findings []Finding, root string) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool)
	for _, f := range findings {
		key := baselineKey(f, root)
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintln(w, "# bixlint baseline: accepted findings, one per line."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# Format: relative/path.go [analyzer] message"); err != nil {
		return err
	}
	for _, key := range keys {
		if _, err := fmt.Fprintln(w, key); err != nil {
			return err
		}
	}
	return nil
}
