package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc keeps `//bix:hotpath` functions allocation-free. The annotated
// set is the per-word kernel tier — bitvec bit operations, WAH group
// encoding, the evaluator's bitmap fetch — where a single allocation per
// call multiplies across millions of words per query.
//
// Flagged constructs: calls into package fmt, the allocating builtins
// (append, make, new), function literals (closures capture onto the heap),
// slice/map composite literals, &T{} literals, and explicit conversions to
// interface types. Map reads/writes on pre-sized maps and plain calls are
// allowed: the rule targets constructs that allocate on every execution,
// not amortized growth.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//bix:hotpath functions must not contain allocation-inducing constructs",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		if !hasDirective(fn.Doc, "hotpath") {
			continue
		}
		checkHotBody(pass, fn)
	}
}

func checkHotBody(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "%s is //bix:hotpath but contains a closure literal (allocates)", name)
			return false // the literal's own body runs outside the hot path
		case *ast.CompositeLit:
			switch info.Types[e].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "%s is //bix:hotpath but builds a %s literal (allocates)",
					name, kindName(info.Types[e].Type))
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := e.X.(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(), "%s is //bix:hotpath but takes the address of a composite literal (allocates)", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, e)
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return t.String()
}

func checkHotCall(pass *Pass, name string, call *ast.CallExpr) {
	info := pass.Pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "append", "make", "new":
				pass.Reportf(call.Pos(), "%s is //bix:hotpath but calls %s (allocates)", name, obj.Name())
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "%s is //bix:hotpath but calls fmt.%s (allocates)", name, fn.Name())
		}
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if at, ok := info.Types[call.Args[0]]; ok {
				if _, already := at.Type.Underlying().(*types.Interface); !already && !at.IsNil() {
					pass.Reportf(call.Pos(), "%s is //bix:hotpath but converts to an interface (allocates)", name)
				}
			}
		}
	}
}
