package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// HotAlloc keeps `//bix:hotpath` functions allocation-free — transitively.
// The annotated set is the per-word kernel tier (bitvec bit operations,
// WAH group encoding, the evaluator's bitmap fetch, the flight recorder's
// record path) where a single allocation per call multiplies across
// millions of words per query. v3 follows call chains over the module
// call graph (callgraph.go): any module-internal function reachable from
// a hotpath root through plain or deferred calls is held to the same
// rule, and the diagnostic prints the full chain from root to the
// allocation site.
//
// Flagged constructs: calls into package fmt, the allocating builtins
// (append, make, new), function literals (closures capture onto the
// heap), slice/map composite literals, &T{} literals, explicit
// conversions to interface types, and — new in v3 — implicit boxing at
// call sites, where a concrete value is passed to an interface
// parameter. Two deliberate exemptions: constructs inside panic(...)
// arguments run only on the failure path (the bitvec bounds-check
// helpers build their message with fmt.Sprintf, which is fine), and a
// callee audited as an amortized-growth boundary can declare it with
// `//bix:allocok (reason)` — the chain stops there and its own body is
// not descended into. Map reads/writes on pre-sized maps and plain calls
// are allowed: the rule targets constructs that allocate on every
// execution, not amortized growth.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//bix:hotpath functions and everything they reach must not allocate (//bix:allocok bounds the audit)",
	Run:  runHotAlloc,
}

// hotFinding is one allocation diagnostic, attributed to the package the
// allocation site lives in (which, for transitive findings, is not
// necessarily the hotpath root's package).
type hotFinding struct {
	pkg *Package
	pos token.Position
	msg string
}

func runHotAlloc(pass *Pass) {
	for _, f := range batchHotFindings(pass.Batch) {
		if f.pkg == pass.Pkg {
			pass.reportAt(f.pos, "%s", f.msg)
		}
	}
}

// batchHotFindings computes (once per Batch) every hotalloc diagnostic in
// the module: direct findings inside //bix:hotpath bodies, then a
// breadth-first walk from each root over plain-call and defer edges.
// Each allocation site is reported once — under the first root that
// reaches it in sorted key order — so overlapping hot subtrees do not
// multiply diagnostics. Roots are themselves never treated as transitive
// targets (each is its own root), and //bix:allocok callees terminate the
// walk without being descended into.
func batchHotFindings(b *Batch) []hotFinding {
	g := batchGraph(b)
	if g.hotDone {
		return g.hotFindings
	}
	g.hotDone = true
	seenSite := make(map[string]bool) // one finding per allocation site, module-wide

	siteKey := func(a allocSite) string {
		return fmt.Sprintf("%s:%d:%d|%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.What)
	}

	for _, key := range g.keys {
		root := g.nodes[key]
		if !root.hot || root.allocOK {
			continue
		}
		// Direct findings keep the v2 message shape: the function itself
		// promised not to allocate.
		for _, a := range root.facts.Allocs {
			sk := siteKey(a)
			if seenSite[sk] {
				continue
			}
			seenSite[sk] = true
			g.hotFindings = append(g.hotFindings, hotFinding{
				pkg: root.pkg, pos: a.Pos,
				msg: fmt.Sprintf("%s is //bix:hotpath but %s (allocates)", root.decl.Name.Name, a.What),
			})
		}
		// Transitive findings: BFS over call/defer edges with the chain
		// carried along for the diagnostic.
		type item struct {
			key   string
			chain []string
		}
		visited := map[string]bool{key: true}
		queue := []item{{key: key, chain: []string{root.display}}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range g.nodes[cur.key].edges {
				if e.Kind != edgeCall && e.Kind != edgeDefer {
					continue // goroutines and closures run outside this hot path
				}
				cn := g.nodes[e.Callee]
				if cn == nil || visited[e.Callee] {
					continue
				}
				visited[e.Callee] = true
				if cn.hot || cn.allocOK {
					continue // its own root, or an audited boundary
				}
				chain := append(append([]string(nil), cur.chain...), cn.display)
				for _, a := range cn.facts.Allocs {
					sk := siteKey(a)
					if seenSite[sk] {
						continue
					}
					seenSite[sk] = true
					g.hotFindings = append(g.hotFindings, hotFinding{
						pkg: cn.pkg, pos: a.Pos,
						msg: fmt.Sprintf("%s %s (allocates) and is reachable from //bix:hotpath via %s; hoist the allocation or mark an audited boundary with //bix:allocok",
							cn.display, a.What, strings.Join(chain, " -> ")),
					})
				}
				queue = append(queue, item{key: e.Callee, chain: chain})
			}
		}
	}
	return g.hotFindings
}
