package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ChanProtocol checks the send/close protocol on channels with a stable
// identity (the same selIdentity keys as the mutex and pool analyzers).
// Four rules:
//
//   - Close by the receiving side: `close(ch)` in a function that only
//     receives from ch, while some other function sends on it. In Go the
//     sender owns the close — a receiver closing under a live sender is a
//     panic waiting for the next send. Usage inside function literals is
//     attributed to the enclosing declaration, so the common
//     fan-out/close/Wait shape (sends and the close in one function,
//     worker literals receiving) stays clean.
//   - Send after close: a send reachable after a close of the same
//     channel on any CFG path (may-analysis, like poolhygiene), and the
//     degenerate double close.
//   - `time.After` inside a loop: each iteration allocates a timer that
//     is not collected until it fires — a slow leak on quiet daemons.
//     Hoist a time.NewTimer/NewTicker outside the loop instead.
//   - Select loop without a shutdown case: an eternal for-select from
//     which no path exits. `//bix:daemon (reason)` on the enclosing
//     declaration audits intentional process-lifetime loops.
var ChanProtocol = &Analyzer{
	Name: "chanprotocol",
	Doc:  "channel protocol: sender-side close, no send after close, no time.After in loops, select loops need a shutdown case",
	Run:  runChanProtocol,
}

func runChanProtocol(pass *Pass) {
	ci := pass.Batch.chanIndex
	if ci == nil {
		// Direct single-analyzer runs (tests) reach here before prepare.
		ci = buildChanIndex(pass.Batch)
		pass.Batch.chanIndex = ci
	}
	reportReceiverCloses(pass, ci)
	for _, fn := range funcDecls(pass.Pkg) {
		daemon := hasDirective(fn.Doc, "daemon")
		checkChanBody(pass, fn.Name.Name, fn.Body, daemon)
		for _, lit := range funcLits(fn.Body) {
			checkChanBody(pass, fn.Name.Name+" (func literal)", lit.Body, daemon)
		}
	}
}

// reportReceiverCloses applies the ownership rule using the module-wide
// index; each close site is reported once, in the package it lives in.
func reportReceiverCloses(pass *Pass, ci *chanIndex) {
	for _, site := range ci.closes {
		if site.pkg != pass.Pkg {
			continue
		}
		closer := site.decl
		if containsDecl(ci.sends[site.key], closer) {
			continue // the closing function sends: it is (part of) the owner
		}
		if !containsDecl(ci.recvs[site.key], closer) {
			continue // close from a third party (constructor, Stop method): allowed
		}
		var senders []string
		for _, d := range ci.sends[site.key] {
			senders = append(senders, d.Name.Name)
		}
		if len(senders) == 0 {
			continue // nobody sends: closing is a pure shutdown signal
		}
		sort.Strings(senders)
		pass.Reportf(site.pos,
			"%s closes channel %s but only receives from it, while %s send(s) on it; the sending side owns the close",
			closer.Name.Name, site.name, strings.Join(senders, ", "))
	}
}

func containsDecl(list []*ast.FuncDecl, d *ast.FuncDecl) bool {
	for _, x := range list {
		if x == d {
			return true
		}
	}
	return false
}

// checkChanBody runs the per-body rules: send-after-close dataflow,
// time.After-in-loop, and the shutdown-case rule for eternal selects.
func checkChanBody(pass *Pass, name string, body *ast.BlockStmt, daemon bool) {
	info := pass.Pkg.Info
	reportTimerLoops(pass, name, body)
	if !daemon {
		reportEternalSelects(pass, name, body)
	}

	cfg := BuildCFG(name, body)
	transfer := func(b *Block, in FlowFact) FlowFact {
		s := in.(StringSet)
		for _, n := range b.Nodes {
			s = chanCloseTransfer(info, n, s)
		}
		return s
	}
	facts := SolveForward(cfg, FlowProblem{Entry: NewStringSet(), Transfer: transfer, Join: UnionSets})
	reported := make(map[string]bool)
	for _, blk := range cfg.Blocks {
		in, ok := facts[blk]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range blk.Nodes {
			checkAfterClose(pass, info, name, n, s, reported)
			s = chanCloseTransfer(info, n, s)
		}
	}
}

// closedElem encodes one may-closed fact: "key|name".
func closedElem(key, name string) string { return key + "|" + name }

func parseClosedElem(e string) (key, name string) {
	i := strings.LastIndexByte(e, '|')
	return e[:i], e[i+1:]
}

// chanCloseTransfer adds a closed fact at each close(ch) node. Deferred
// closes are skipped: they run at function exit, after every send in the
// body, so they cannot put a send "after" the close.
func chanCloseTransfer(info *types.Info, n ast.Node, s StringSet) StringSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return s
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if arg, ok := closeBuiltinArg(info, call); ok {
				if name, _, key := selIdentity(info, ast.Unparen(arg)); key != "" {
					s = s.With(closedElem(key, name))
				}
			}
		}
		return true
	})
	return s
}

// checkAfterClose flags sends (and repeat closes) of channels with a live
// closed fact at this program point.
func checkAfterClose(pass *Pass, info *types.Info, name string, n ast.Node, s StringSet, reported map[string]bool) {
	if len(s) == 0 {
		return
	}
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	closed := make(map[string]string)
	for e := range s {
		key, chName := parseClosedElem(e)
		closed[key] = chName
	}
	once := func(kind string, pos token.Pos, format string, args ...any) {
		k := kind + "|" + name + "|" + strconv.Itoa(int(pos))
		if reported[k] {
			return
		}
		reported[k] = true
		pass.Reportf(pos, format, args...)
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			if _, _, key := selIdentity(info, ast.Unparen(m.Chan)); key != "" {
				if chName, ok := closed[key]; ok {
					once("send", m.Pos(),
						"%s: send on %s is reachable after close(%s) (panic: send on closed channel); close after the last send, on the sending side",
						name, chName, chName)
				}
			}
		case *ast.CallExpr:
			if arg, ok := closeBuiltinArg(info, m); ok {
				if _, _, key := selIdentity(info, ast.Unparen(arg)); key != "" {
					if chName, ok := closed[key]; ok {
						once("close", m.Pos(),
							"%s: %s may already be closed on this path (panic: close of closed channel)",
							name, chName)
					}
				}
			}
		}
		return true
	})
}

// reportTimerLoops flags time.After calls lexically inside a loop.
func reportTimerLoops(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				inLoop(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(m.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				if fn := calleeFunc(info, m); fn != nil &&
					fn.Name() == "After" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					pass.Reportf(m.Pos(),
						"%s: time.After in a loop allocates a timer every iteration that lives until it fires; hoist a time.NewTimer or time.NewTicker out of the loop",
						name)
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}

// reportEternalSelects flags an eternal for containing a select when no
// path leaves the loop — a daemon loop with no shutdown case.
func reportEternalSelects(pass *Pass, name string, body *ast.BlockStmt) {
	labels := loopLabels(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loopBodyCanExit(loop.Body, labels[loop]) {
			return true
		}
		// Inescapable eternal loop: report at its first select, if any.
		for _, s := range loop.Body.List {
			if sel, ok := s.(*ast.SelectStmt); ok {
				pass.Reportf(sel.Pos(),
					"%s: select loop has no shutdown case — no path leaves the loop; add a ctx.Done/quit-channel case that returns, or audit with //bix:daemon (reason)",
					name)
				return false // inner loops share the fate; one report
			}
		}
		return true
	})
}
