package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the minimal subset that code-scanning consumers
// require: schema/version at the log level, one run with a tool driver
// that declares its rules, and one result per finding with a ruleId,
// message, and a physical location. Everything is plain structs so the
// encoder output is deterministic (struct field order, not map order).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. analyzers supplies
// the rule table (every enabled analyzer is declared even when it has no
// results, so suppressions and rule metadata resolve in consumers). File
// paths are made relative to root and slash-separated, per the SARIF
// convention for artifact URIs.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(f.Pos.Filename, root)},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "bixlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI converts a finding's file path to a root-relative, slash
// separated URI; paths outside root pass through slash-converted.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}
