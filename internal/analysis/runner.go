package analysis

import (
	"go/types"
	"sort"
	"sync"
	"time"
)

// The parallel runner. RunBatch analyzes packages on a bounded worker
// pool in module-internal dependency order. Correctness rests on a strict
// phase split:
//
//   - prepare (serial, once): every lazily built module-wide index that a
//     selected analyzer touches — the declaration map, the call graph and
//     its summaries (through the fact cache when configured), hotalloc's
//     findings, the atomicfield index, the lockorder acquisition graph,
//     tailmask's slice-parameter summaries, the channel index and
//     goroutinelife's findings, closeown's parameter summaries — is
//     forced up front.
//   - run (parallel): passes only read Batch state. Each (package,
//     analyzer) pair appends into its own findings cell, and the cells
//     are concatenated in the exact nested order the serial loop used, so
//     the pre-sort sequence — and therefore the output — is byte-identical
//     to a Workers=1 run.
//
// Dependency order means a package is analyzed only after every batch
// package it imports; Go forbids import cycles, so the schedule always
// drains.

// Timing is one analyzer's accumulated wall time across the run, plus the
// synthetic "(prepare)" entry for the serial index-building phase.
type Timing struct {
	Name  string
	Total time.Duration
}

// Timings returns per-analyzer accumulated wall time, largest first.
// Parallel passes overlap, so analyzer entries can sum to more than the
// run's wall clock — they answer "where would effort on speeding up an
// analyzer pay off", not "what did the run cost".
func (b *Batch) Timings() []Timing {
	b.timingsMu.Lock()
	defer b.timingsMu.Unlock()
	out := make([]Timing, 0, len(b.timings))
	for name, d := range b.timings {
		out = append(out, Timing{Name: name, Total: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (b *Batch) noteTiming(name string, d time.Duration) {
	b.timingsMu.Lock()
	if b.timings == nil {
		b.timings = make(map[string]time.Duration)
	}
	b.timings[name] += d
	b.timingsMu.Unlock()
}

// prepare forces, serially, every shared index the selected analyzers
// will read, so the parallel passes never write Batch state.
func (b *Batch) prepare(analyzers []*Analyzer) {
	if b.prepared {
		return
	}
	start := time.Now()
	sel := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		sel[a.Name] = true
	}
	b.funcDecl(nil) // the declaration map underlies everything below
	if sel["hotalloc"] || sel["lockorder"] || sel["poolhygiene"] {
		batchGraph(b)
	}
	if sel["hotalloc"] {
		batchHotFindings(b)
	}
	if sel["atomicfield"] {
		batchAtomicIndex(b)
	}
	if sel["lockorder"] {
		batchLockGraph(b)
	}
	if sel["tailmask"] {
		// Precompute slice-parameter summaries for every module function;
		// after prepare the memo is read-only and non-module callees
		// resolve to a shared empty summary.
		for _, pkg := range b.Pkgs {
			for _, decl := range funcDecls(pkg) {
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					sliceParamInfo(b, fn)
				}
			}
		}
	}
	if sel["goroutinelife"] || sel["chanprotocol"] {
		b.chanIndex = buildChanIndex(b)
	}
	if sel["goroutinelife"] {
		batchLifeFindings(b)
	}
	if sel["closeown"] {
		b.closeIndex = buildCloseIndex(b)
	}
	b.prepared = true
	b.noteTiming("(prepare)", time.Since(start))
}

// scheduleParallel runs run(i) for every package index on `workers`
// goroutines, releasing a package only when its module-internal imports
// within the batch have finished.
func scheduleParallel(b *Batch, workers int, run func(int)) {
	n := len(b.Pkgs)
	byPath := make(map[string]int, n)
	for i, p := range b.Pkgs {
		byPath[p.Path] = i
	}
	waiting := make([]int, n)
	dependents := make([][]int, n)
	for i, p := range b.Pkgs {
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if j, ok := byPath[imp.Path()]; ok && j != i {
				waiting[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}
	ready := make(chan int, n) // buffered: finish never blocks
	for i := 0; i < n; i++ {
		if waiting[i] == 0 {
			ready <- i
		}
	}
	var mu sync.Mutex
	var done sync.WaitGroup
	done.Add(n)
	finish := func(i int) {
		mu.Lock()
		for _, d := range dependents[i] {
			waiting[d]--
			if waiting[d] == 0 {
				ready <- d
			}
		}
		mu.Unlock()
		done.Done()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				run(i)
				finish(i)
			}
		}()
	}
	done.Wait()  // every package analyzed
	close(ready) // release the workers' range loops
	wg.Wait()    // workers drained
}
