package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLife requires every `go` statement to have a provable
// termination signal. A spawned body (the function literal itself, the
// named callee, or anything the callee transitively calls inside the
// module) must not contain an inescapable loop:
//
//   - an eternal `for` whose body has no reachable exit — no return, no
//     break binding to it, no goto, no panic. A quit-channel or ctx.Done
//     select case that returns is an exit, which is how the idiomatic
//     daemon shape passes;
//   - a range over a channel that is never closed anywhere in the module.
//     Ranging over a closed channel terminates — the worker-pool shape
//     `for v := range jobs { ... }` with a `close(jobs)` in the module is
//     clean, with or without a WaitGroup — but a range over a channel no
//     one closes runs forever. Channel-typed parameters are exempt
//     (closing them is the caller's business, which static identity
//     cannot track across the call).
//
// The walk follows plain and deferred calls through module declarations,
// like hotalloc's, and the diagnostic prints the spawn chain from the `go`
// statement to the function that never returns. Nested `go` statements are
// not descended into — each is its own spawn, checked at its own site.
//
// `//bix:daemon (reason)` on the spawning function's declaration, or on
// any function reached by the walk, is the audited escape hatch for
// process-lifetime goroutines.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement must have a provable termination signal (//bix:daemon audits process-lifetime daemons)",
	Run:  runGoroutineLife,
}

// lifeFinding is one diagnostic, attributed to the package containing the
// go statement (findings are computed module-wide during prepare).
type lifeFinding struct {
	pkg *Package
	pos token.Position
	msg string
}

func runGoroutineLife(pass *Pass) {
	for _, f := range batchLifeFindings(pass.Batch) {
		if f.pkg == pass.Pkg {
			pass.reportAt(f.pos, "%s", f.msg)
		}
	}
}

// batchLifeFindings computes (once per Batch, serially in prepare) every
// goroutinelife diagnostic in the module.
func batchLifeFindings(b *Batch) []lifeFinding {
	if b.lifeDone {
		return b.lifeFindings
	}
	b.lifeDone = true
	ci := b.chanIndex
	if ci == nil {
		ci = buildChanIndex(b)
		b.chanIndex = ci
	}
	// Per-declaration termination verdicts, shared across spawn sites.
	memo := make(map[*ast.FuncDecl]lifeVerdict)
	declVerdict := func(decl *ast.FuncDecl, pkg *Package) lifeVerdict {
		if v, ok := memo[decl]; ok {
			return v
		}
		reason, bad := nonTermLoop(pkg.Info, decl.Body, ci)
		v := lifeVerdict{bad: bad, reason: reason}
		memo[decl] = v
		return v
	}
	for _, pkg := range b.Pkgs {
		for _, decl := range funcDecls(pkg) {
			if hasDirective(decl.Doc, "daemon") {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				b.checkSpawn(pkg, g, declVerdict)
				return true
			})
		}
	}
	return b.lifeFindings
}

// lifeVerdict is one declaration's termination judgement.
type lifeVerdict struct {
	bad    bool
	reason string
}

// checkSpawn analyzes one go statement: the spawned body directly, then a
// breadth-first walk over module callees. At most one finding per spawn.
func (b *Batch) checkSpawn(pkg *Package, g *ast.GoStmt,
	declVerdict func(*ast.FuncDecl, *Package) lifeVerdict) {
	info := pkg.Info
	report := func(msg string) {
		b.lifeFindings = append(b.lifeFindings, lifeFinding{
			pkg: pkg, pos: pkg.Fset.Position(g.Pos()), msg: msg,
		})
	}
	advice := "add a shutdown signal (a ctx.Done/quit-channel case that returns, closing the ranged channel, or a bounded loop) or audit it with //bix:daemon (reason)"

	var queue []*types.Func
	var rootChain []string
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if reason, bad := nonTermLoop(info, lit.Body, b.chanIndex); bad {
			report(fmt.Sprintf("goroutine never terminates: the function literal %s; %s", reason, advice))
			return
		}
		queue = directCallees(info, lit.Body)
	} else {
		callee := calleeFunc(info, g.Call)
		if callee == nil {
			return // dynamic call: nothing to resolve, stay optimistic
		}
		queue = []*types.Func{callee}
	}
	// BFS over module declarations, carrying the chain for the diagnostic.
	type item struct {
		fn    *types.Func
		chain []string
	}
	var work []item
	for _, fn := range queue {
		work = append(work, item{fn: fn, chain: append(rootChain, shortFuncName(fn))})
	}
	visited := make(map[*types.Func]bool)
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		if visited[cur.fn] {
			continue
		}
		visited[cur.fn] = true
		decl, dpkg := b.funcDecl(cur.fn)
		if decl == nil {
			continue // outside the module: optimistic
		}
		if hasDirective(decl.Doc, "daemon") {
			continue // audited daemon: the walk stops here
		}
		if v := declVerdict(decl, dpkg); v.bad {
			via := ""
			if len(cur.chain) > 1 {
				via = fmt.Sprintf(", reached via %s", strings.Join(cur.chain, " -> "))
			}
			report(fmt.Sprintf("goroutine never terminates: %s %s%s; %s",
				shortFuncName(cur.fn), v.reason, via, advice))
			return
		}
		for _, callee := range directCallees(dpkg.Info, decl.Body) {
			if !visited[callee] {
				work = append(work, item{fn: callee, chain: append(append([]string(nil), cur.chain...), shortFuncName(callee))})
			}
		}
	}
}

// nonTermLoop finds the first inescapable loop in body: an eternal for
// with no exit, or a range over a channel that the module never closes.
// Function literals and nested go statements are separate control flow
// and are not descended into.
func nonTermLoop(info *types.Info, body *ast.BlockStmt, ci *chanIndex) (reason string, found bool) {
	labels := loopLabels(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopBodyCanExit(n.Body, labels[n]) {
				reason = "loops forever with no reachable exit"
				found = true
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok || !isChanType(tv.Type) {
				return true
			}
			name, obj, key := selIdentity(info, ast.Unparen(n.X))
			if key == "" || ci.isParam[obj] || ci.closed[key] {
				return true // unresolvable, caller-owned, or provably closed
			}
			if !loopBodyCanExit(n.Body, labels[n]) {
				reason = fmt.Sprintf("ranges over channel %s, which is never closed anywhere in the module", name)
				found = true
			}
		}
		return true
	})
	return reason, found
}

// directCallees resolves the statically-known module-facing calls in body,
// pruning function literals and nested go statements (each spawn is
// checked at its own site). Deferred calls are included: they run before
// the goroutine can exit.
func directCallees(info *types.Info, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// shortFuncName renders a function for chain diagnostics: the package-
// qualified tail of types.Func.FullName, without the import path prefix.
func shortFuncName(fn *types.Func) string {
	name := fn.FullName()
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}
