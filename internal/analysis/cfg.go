package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// This file is the control-flow half of the flow-sensitive analysis layer:
// an intraprocedural CFG over go/ast statements. It models every statement
// shape the repository uses — if/for/range/switch/type-switch/select,
// labeled break and continue, goto, fallthrough, defer and explicit
// panic — precisely enough for the lock-discipline and tail-mask analyzers
// to reason about paths instead of bodies.
//
// Design notes:
//
//   - Block nodes are leaves with respect to control flow: a block never
//     contains a statement that itself branches. Conditions and range
//     operands are stored as bare expressions. Clients that walk nodes
//     must prune *ast.FuncLit (a literal's body is its own CFG; see
//     inspectShallow) and must treat *ast.DeferStmt and *ast.GoStmt
//     specially: their calls do not execute at the point of the statement.
//   - Deferred statements are additionally collected in CFG.Defers, in
//     syntactic order, because they execute at every exit — normal return
//     or panic — regardless of where control left the body.
//   - An explicit panic(...) statement ends its block with an edge to
//     Exit and marks the block PanicExit. Implicit panics (nil map
//     writes, index errors) are not modeled; analyzers that care about
//     panic paths get the explicit ones plus the defer guarantee.
//   - Unreachable code (after return/break/goto) lands in fresh blocks
//     with no predecessors, so the builder never loses statements and
//     solvers can recognize dead code by a missing in-fact.
type CFG struct {
	Name   string
	Blocks []*Block // Blocks[0] is Entry; Exit is the final block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt // every defer in the body, in source order
}

// Block is one straight-line run of statements.
type Block struct {
	Index     int
	Kind      string     // "entry", "exit", "if.then", "for.head", ...
	Nodes     []ast.Node // leaf statements and control expressions, in order
	Succs     []*Block
	Preds     []*Block
	PanicExit bool // block ends in an explicit panic(...) call
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(name string, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Name: name},
		labels: make(map[string]*Block),
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"}
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit) // fall off the end: implicit return
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type frame struct {
	label    string
	brk      *Block // break target
	cont     *Block // continue target; nil for switch/select frames
	fallInto *Block // fallthrough target within a switch, per-clause
	isLoop   bool
	isSwitch bool
}

type gotoFixup struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block
	frames       []frame
	labels       map[string]*Block
	gotos        []gotoFixup
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and starts an
// unreachable successor for anything that follows.
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label from an enclosing LabeledStmt so
// that the loop/switch frame built next can answer labeled break/continue.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A labeled statement starts a new block so that goto (and labeled
		// continue targeting a loop head created below) has a landing site.
		lbl := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, lbl)
		b.cur = lbl
		b.labels[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		join := b.newBlock("if.done")
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		join := b.newBlock("for.done")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.frames = append(b.frames, frame{label: label, brk: join, cont: cont, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		// The ranged operand (and the key/value assignment it implies)
		// lives in the head, evaluated once per iteration decision.
		head.Nodes = append(head.Nodes, s.X)
		b.edge(b.cur, head)
		body := b.newBlock("range.body")
		join := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, join)
		b.frames = append(b.frames, frame{label: label, brk: join, cont: head, isLoop: true})
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.newBlock("select.done")
		var blocks []*Block
		for i := range s.Body.List {
			cc := s.Body.List[i].(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(head, blk)
			blocks = append(blocks, blk)
		}
		// A select with no cases blocks forever; with cases, control only
		// reaches join through a clause (there is no head->join edge even
		// without default — some clause always runs).
		b.frames = append(b.frames, frame{label: label, brk: join})
		for i, raw := range s.Body.List {
			cc := raw.(*ast.CommClause)
			b.cur = blocks[i]
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.cur.PanicExit = true
				b.jump(b.cfg.Exit)
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Go, Send, Decl, ... — straight-line statements.
		b.add(s)
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.takeLabel()
	var init ast.Stmt
	var tag ast.Node
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, body = s.Init, s.Body
		if s.Tag != nil {
			tag = s.Tag
		}
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
		tag = s.Assign
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	join := b.newBlock("switch.done")
	var blocks []*Block
	hasDefault := false
	for i := range body.List {
		cc := body.List[i].(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	for i, raw := range body.List {
		cc := raw.(*ast.CaseClause)
		fallInto := join
		if i+1 < len(blocks) {
			fallInto = blocks[i+1]
		}
		b.frames = append(b.frames, frame{label: label, brk: join, fallInto: fallInto, isSwitch: true})
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e) // case expressions are evaluated on this path
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
		b.frames = b.frames[:len(b.frames)-1]
	}
	b.cur = join
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name != "" && f.label != name {
				continue
			}
			b.jump(f.brk)
			return
		}
		b.jump(b.cfg.Exit) // malformed input; be safe
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if !f.isLoop || (name != "" && f.label != name) {
				continue
			}
			b.jump(f.cont)
			return
		}
		b.jump(b.cfg.Exit)
	case token.GOTO:
		if target, ok := b.labels[name]; ok {
			b.jump(target)
			return
		}
		// Forward goto: record a fixup from the current block, then start
		// an unreachable continuation.
		from := b.cur
		b.cur = b.newBlock("unreachable")
		b.gotos = append(b.gotos, gotoFixup{from: from, label: name})
	case token.FALLTHROUGH:
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].isSwitch {
				b.jump(b.frames[i].fallInto)
				return
			}
		}
	}
}

// inspectShallow walks n without descending into function literals, whose
// bodies belong to their own CFG.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}

// funcLits collects the function literals lexically inside n (including
// nested ones), in source order.
func funcLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// Dot renders the CFG in Graphviz dot syntax, deterministically: blocks in
// index order, successors in creation order, each node printed with
// go/printer. Used by the golden CFG tests and handy for debugging
// (`dot -Tsvg`).
func (c *CFG) Dot(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", c.Name)
	for _, blk := range c.Blocks {
		var lines []string
		lines = append(lines, fmt.Sprintf("%d: %s", blk.Index, blk.Kind))
		for _, n := range blk.Nodes {
			var nb strings.Builder
			if err := printer.Fprint(&nb, fset, n); err != nil {
				nb.WriteString("?")
			}
			// Multi-line statements are summarized by their first line to
			// keep goldens readable and stable.
			text := nb.String()
			if i := strings.IndexByte(text, '\n'); i >= 0 {
				text = text[:i] + " ..."
			}
			lines = append(lines, text)
		}
		if blk.PanicExit {
			lines = append(lines, "(panic)")
		}
		label := strings.Join(lines, "\\n")
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(&sb, "  n%d [shape=box,label=\"%s\"];\n", blk.Index, label)
	}
	for _, blk := range c.Blocks {
		for _, succ := range blk.Succs {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", blk.Index, succ.Index)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
