package analysis

import (
	"go/ast"
	"go/types"
)

// aliasTracker is a small intraprocedural (package-scoped) alias
// approximation for slice and pointer values: starting from a predicate
// identifying "source" expressions (e.g. calls to bitvec's Words), it
// computes the closure of objects that may alias a source result under
//
//   - plain and short-variable assignment (including the matching
//     positions of multi-assignments),
//   - var declarations with initializers,
//   - slice expressions w[i:j] (same backing array),
//   - parenthesization,
//   - append(alias, ...) results (append may return the same backing
//     array when capacity suffices), and
//   - calls to package-local functions that return one of their
//     parameters (the call result aliases the argument), registered by
//     the client through returnsParam.
//
// The closure runs to a fixpoint over the whole package, so chains like
// `w := v.Words(); u := w[1:]; x := u` are all tracked. It
// over-approximates: an object that aliased a source on any path is
// treated as aliasing it everywhere, which is the safe direction for the
// read-only-slice rule.
type aliasTracker struct {
	pkg      *Package
	isSource func(ast.Expr) bool
	// returnsParam reports, for a package-local call, which parameter
	// indices the callee may return (aliasing its argument). Nil means no
	// interprocedural return tracking.
	returnsParam func(fn *types.Func) []int

	objs map[types.Object]bool
}

func newAliasTracker(pkg *Package, isSource func(ast.Expr) bool) *aliasTracker {
	return &aliasTracker{pkg: pkg, isSource: isSource, objs: make(map[types.Object]bool)}
}

// aliased reports whether e may evaluate to (a view of) a source value.
func (t *aliasTracker) aliased(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.aliased(e.X)
	case *ast.SliceExpr:
		return t.aliased(e.X)
	case *ast.Ident:
		if obj := t.pkg.Info.Uses[e]; obj != nil && t.objs[obj] {
			return true
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, ok := t.pkg.Info.Uses[id].(*types.Builtin); ok {
				return t.aliased(e.Args[0])
			}
		}
		if t.returnsParam != nil {
			if fn := calleeFunc(t.pkg.Info, e); fn != nil {
				for _, i := range t.returnsParam(fn) {
					if i < len(e.Args) && t.aliased(e.Args[i]) {
						return true
					}
				}
			}
		}
	}
	return t.isSource(e)
}

// define marks the object bound by lhs as an alias.
func (t *aliasTracker) define(lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.pkg.Info.Defs[id]
	if obj == nil {
		obj = t.pkg.Info.Uses[id]
	}
	if obj == nil || t.objs[obj] {
		return false
	}
	t.objs[obj] = true
	return true
}

// solve runs the closure to a fixpoint over every file of the package.
func (t *aliasTracker) solve() {
	for changed := true; changed; {
		changed = false
		for _, f := range t.pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					if len(s.Lhs) == len(s.Rhs) {
						for i, rhs := range s.Rhs {
							if t.aliased(rhs) && t.define(s.Lhs[i]) {
								changed = true
							}
						}
					}
				case *ast.ValueSpec:
					if len(s.Names) == len(s.Values) {
						for i, v := range s.Values {
							if t.aliased(v) && t.define(s.Names[i]) {
								changed = true
							}
						}
					}
				}
				return true
			})
		}
	}
}

// calleeFunc resolves a call to its static *types.Func, or nil for
// builtins, function values and interface methods.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
