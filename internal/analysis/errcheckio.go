package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckIO flags dropped error returns from I/O-bearing packages: os, io
// and this module's internal/storage. A silently dropped storage error is
// how a bitmap index serves wrong answers instead of failing loudly, so
// the rule is narrow (only these packages) but strict.
//
// A call drops its error when it appears as a bare expression statement or
// a go statement. Deferred calls are exempt: `defer f.Close()` on a
// read-only path is idiomatic cleanup, and write paths in this repository
// promote the close error through a named return instead (see
// cmd/bixbench). Assigning the error to _ is an explicit, visible decision
// and is likewise allowed.
//
// Close is carved out entirely: closeown owns the whole Close discipline
// (dropped Close errors and handles that never reach Close), so a bare
// `f.Close()` is reported once, by closeown, not twice.
var ErrcheckIO = &Analyzer{
	Name: "errcheck-io",
	Doc:  "error results from os, io and internal/storage calls must not be dropped",
	Run:  runErrcheckIO,
}

// errcheckPkg reports whether the callee's package is in scope.
func errcheckPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "os" || path == "io" || strings.HasSuffix(path, "/internal/storage")
}

// returnsError reports whether the signature has an error result.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}

func runErrcheckIO(pass *Pass) {
	info := pass.Pkg.Info
	check := func(call *ast.CallExpr, how string) {
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || !errcheckPkg(fn.Pkg()) {
			return
		}
		if fn.Name() == "Close" {
			return // closeown owns the Close discipline end to end
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return
		}
		pass.Reportf(call.Pos(), "error from %s.%s is dropped%s; handle it or assign it to _",
			fn.Pkg().Name(), fn.Name(), how)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.GoStmt:
				check(s.Call, " in a go statement")
			case *ast.DeferStmt:
				return false // deferred cleanup is exempt by policy
			}
			return true
		})
	}
}
