package analysis

import "sort"

// Strongly connected components over string-keyed directed graphs, shared
// by the lock-order cycle check and the call-graph condensation. One
// implementation, two very different clients: lockorder asks "which edges
// lie on a cycle", the interprocedural summary layer asks "give me the
// components bottom-up so I can fold facts callee-before-caller".

// stronglyConnected runs Tarjan's algorithm over the graph described by
// adj (node -> successor set; nodes appearing only as successors are
// included). It returns the component index of every node and the
// components themselves, each with its members sorted.
//
// Determinism: nodes and successors are visited in sorted order, so the
// numbering is a pure function of the graph. Ordering: Tarjan emits a
// component only once all components reachable from it are emitted, so
// comps is in reverse topological order of the condensation — callees
// before callers, exactly the order a bottom-up summary computation wants.
func stronglyConnected(adj map[string]map[string]bool) (map[string]int, [][]string) {
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	for _, tos := range adj {
		for t := range tos {
			nodes = append(nodes, t)
		}
	}
	sort.Strings(nodes)
	nodes = dedupeSorted(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var comps [][]string
	var stack []string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := len(comps)
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = id
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Strings(members)
			comps = append(comps, members)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return comp, comps
}

// cyclicEdges returns the set of edges ("from->to") that lie inside a
// strongly connected component of size > 1, i.e. that participate in a
// cycle. Self-edges are handled separately by the caller.
func cyclicEdges(adj map[string]map[string]bool) map[string]bool {
	comp, comps := stronglyConnected(adj)
	out := make(map[string]bool)
	for from, tos := range adj {
		for to := range tos {
			if from != to && comp[from] == comp[to] && len(comps[comp[from]]) > 1 {
				out[from+"->"+to] = true
			}
		}
	}
	return out
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
