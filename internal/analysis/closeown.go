package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// CloseOwn generalizes poolhygiene's obligation lattice from sync.Pool
// values to io.Closers: a handle acquired from package os or net (a file,
// a listener, a connection — anything whose type has a `Close() error`
// method) must reach Close on every path out of the acquiring function,
// including panic edges and early error returns, unless ownership is
// transferred first. Discharges:
//
//   - a Close call on the variable, direct or deferred — including a Close
//     inside a deferred closure (the promote-the-close-error idiom) and a
//     deferred module helper that closes its parameter (the closeParams
//     summary, poolhygiene's PoolPutParams for closers);
//   - returning the variable (ownership moves to the caller), or returning
//     anything on the error path paired with the acquisition — both
//     `return err`-style results that mention the paired error object and
//     any statement inside an `if err != nil { ... }` guard, where the
//     handle is nil by contract;
//   - storing the variable into a struct field or element (the structure
//     now owns it), or passing it to any call (optimistic handoff — the
//     rule targets locally-owned handles, not every custody chain).
//
// CloseOwn also owns the Close half of errcheck-io's old rule: a bare
// `x.Close()` expression statement drops the close error (assign it to _
// or handle it; deferred closes on read paths stay exempt by policy), and
// an acquisition bound entirely to blanks leaks by construction.
var CloseOwn = &Analyzer{
	Name: "closeown",
	Doc:  "every io.Closer acquired from os/net must reach Close on all paths; transfer by return/store/arg discharges",
	Run:  runCloseOwn,
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isCloserType reports whether t has a Close() error in its method set
// (taking the address if needed).
func isCloserType(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		isErrorType(sig.Results().At(0).Type())
}

// acquiringCall classifies a call whose first result is a Closer from
// package os or net. The package allowlist keeps the rule anchored to
// process-visible resources (fds); wrapping readers and writers have their
// own conventions and are out of scope.
func acquiringCall(info *types.Info, call *ast.CallExpr) (what string, nres int, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", 0, false
	}
	if p := fn.Pkg().Path(); p != "os" && p != "net" {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 || sig.Results().Len() > 2 {
		return "", 0, false
	}
	if !isCloserType(sig.Results().At(0).Type()) {
		return "", 0, false
	}
	if sig.Results().Len() == 2 && !isErrorType(sig.Results().At(1).Type()) {
		return "", 0, false
	}
	return fn.Pkg().Name() + "." + fn.Name(), sig.Results().Len(), true
}

// Obligation facts are "open|what|var|varObjPos|sitePos|errObjPos", with
// errObjPos 0 when the acquisition has no paired error variable.
func closeElem(what, varName string, objPos, sitePos, errPos token.Pos) string {
	return "open|" + what + "|" + varName + "|" +
		strconv.Itoa(int(objPos)) + "|" + strconv.Itoa(int(sitePos)) + "|" + strconv.Itoa(int(errPos))
}

func parseCloseElem(e string) (what, varName string, objPos, sitePos, errPos token.Pos) {
	parts := strings.SplitN(e, "|", 6)
	op, _ := strconv.Atoi(parts[3])
	sp, _ := strconv.Atoi(parts[4])
	ep, _ := strconv.Atoi(parts[5])
	return parts[1], parts[2], token.Pos(op), token.Pos(sp), token.Pos(ep)
}

// buildCloseIndex computes, per module function, the parameter indices on
// which Close is called (directly, deferred, or inside a literal in the
// body) — the transfer summary that lets `defer closeQuiet(f)` discharge.
func buildCloseIndex(b *Batch) map[*types.Func][]int {
	idx := make(map[*types.Func][]int)
	for _, pkg := range b.Pkgs {
		info := pkg.Info
		for _, decl := range funcDecls(pkg) {
			fn, ok := info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			paramIx := make(map[types.Object]int)
			i := 0
			for _, field := range decl.Type.Params.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						paramIx[obj] = i
					}
					i++
				}
			}
			if len(paramIx) == 0 {
				continue
			}
			var closes []int
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Close" {
					return true
				}
				if obj := identObj(info, sel.X); obj != nil {
					if ix, ok := paramIx[obj]; ok {
						closes = appendUniqueInt(closes, ix)
					}
				}
				return true
			})
			if len(closes) > 0 {
				idx[fn] = closes
			}
		}
	}
	return idx
}

func appendUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func runCloseOwn(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		checkClosePaths(pass, fn.Name.Name, fn.Body)
		for _, lit := range funcLits(fn.Body) {
			checkClosePaths(pass, fn.Name.Name+" (func literal)", lit.Body)
		}
	}
}

func checkClosePaths(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	closeParams := pass.Batch.closeIndex

	reportDroppedCloses(pass, name, body)
	reportDiscardedOpens(pass, name, body)

	cfg := BuildCFG(name, body)
	guards := errGuardExtents(info, body)
	deferred := deferredCloseDischarges(info, closeParams, cfg)
	transfer := func(b *Block, in FlowFact) FlowFact {
		s := in.(StringSet)
		for _, n := range b.Nodes {
			s = closeTransfer(info, closeParams, guards, n, s)
		}
		return s
	}
	facts := SolveForward(cfg, FlowProblem{Entry: NewStringSet(), Transfer: transfer, Join: UnionSets})
	if exitIn, ok := facts[cfg.Exit]; ok {
		for _, e := range exitIn.(StringSet).Sorted() {
			what, varName, objPos, sitePos, _ := parseCloseElem(e)
			if deferred[objPos] {
				continue
			}
			pass.Reportf(sitePos,
				"%s: %s acquired from %s may reach function exit without Close on every path (including panic and early-return edges); defer %s.Close() after the error check, or return/store it on all branches",
				name, varName, what, varName)
		}
	}
}

// errGuardExtent marks the source range of an `if err != nil { ... }` body
// for one error object: obligations paired with that error are nil inside.
type errGuardExtent struct {
	errPos   token.Pos
	from, to token.Pos
}

// errGuardExtents collects the guard ranges in body. The then-branch of an
// err-check lives in its own CFG blocks, so dropping the paired obligation
// at nodes inside the range is path-sensitive for free.
func errGuardExtents(info *types.Info, body *ast.BlockStmt) []errGuardExtent {
	var out []errGuardExtent
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || bin.Op != token.NEQ {
			return true
		}
		errExpr := bin.X
		if id, ok := ast.Unparen(bin.Y).(*ast.Ident); !ok || id.Name != "nil" {
			if id, ok := ast.Unparen(bin.X).(*ast.Ident); !ok || id.Name != "nil" {
				return true
			}
			errExpr = bin.Y
		}
		obj := identObj(info, errExpr)
		if obj == nil || !isErrorType(obj.Type()) {
			return true
		}
		out = append(out, errGuardExtent{errPos: obj.Pos(), from: ifs.Body.Pos(), to: ifs.Body.End()})
		return true
	})
	return out
}

// closeTransfer applies one CFG node's effect on the obligation set.
func closeTransfer(info *types.Info, closeParams map[*types.Func][]int, guards []errGuardExtent, n ast.Node, s StringSet) StringSet {
	// Inside an err-guard the paired handle is nil by contract: the
	// obligation does not exist on this path.
	if len(s) > 0 && len(guards) > 0 {
		pos := n.Pos()
		for _, g := range guards {
			if pos >= g.from && pos < g.to {
				errPos := g.errPos
				s = s.Without(func(e string) bool {
					_, _, _, _, ep := parseCloseElem(e)
					return ep != 0 && ep == errPos
				})
			}
		}
	}
	switch g := n.(type) {
	case *ast.DeferStmt:
		return s // all-paths credit, handled by deferredCloseDischarges
	case *ast.GoStmt:
		// Arguments handed to a goroutine transfer ownership with them.
		for _, arg := range g.Call.Args {
			if obj := identObj(info, arg); obj != nil {
				s = dropCloseFacts(s, obj.Pos())
			}
		}
		return s
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			s = closeAssign(info, m.Lhs, m.Rhs, s)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(m.Names))
			for i, name := range m.Names {
				lhs[i] = name
			}
			s = closeAssign(info, lhs, m.Values, s)
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				ast.Inspect(r, func(x ast.Node) bool {
					id, ok := x.(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[id]
					if obj == nil {
						return true
					}
					pos := obj.Pos()
					s = s.Without(func(e string) bool {
						_, _, op, _, ep := parseCloseElem(e)
						return op == pos || (ep != 0 && ep == pos)
					})
					return true
				})
			}
		case *ast.CallExpr:
			s = closeCallEffect(info, m, s)
		}
		return true
	})
	return s
}

// closeAssign handles one assignment: new acquisitions, rebinds, and
// stores into longer-lived structure.
func closeAssign(info *types.Info, lhs, rhs []ast.Expr, s StringSet) StringSet {
	// The tuple form `f, err := os.Open(p)`.
	if len(lhs) == 2 && len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if what, nres, ok := acquiringCall(info, call); ok && nres == 2 {
				if obj := identObj(info, lhs[0]); obj != nil {
					var errPos token.Pos
					if errObj := identObj(info, lhs[1]); errObj != nil {
						errPos = errObj.Pos()
					}
					s = dropCloseFacts(s, obj.Pos())
					id := ast.Unparen(lhs[0]).(*ast.Ident)
					s = s.With(closeElem(what, id.Name, obj.Pos(), call.Pos(), errPos))
				}
				return s
			}
		}
	}
	if len(lhs) != len(rhs) {
		return s
	}
	for i := range rhs {
		if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
			if what, nres, ok := acquiringCall(info, call); ok && nres == 1 {
				if obj := identObj(info, lhs[i]); obj != nil {
					s = dropCloseFacts(s, obj.Pos())
					id := ast.Unparen(lhs[i]).(*ast.Ident)
					s = s.With(closeElem(what, id.Name, obj.Pos(), call.Pos(), 0))
				}
				continue
			}
		}
		// Storing the handle into a field or element transfers ownership to
		// the containing structure; rebinding the variable abandons its
		// previous tracking.
		if obj := identObj(info, rhs[i]); obj != nil {
			switch ast.Unparen(lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				s = dropCloseFacts(s, obj.Pos())
			}
		}
		if obj := identObj(info, lhs[i]); obj != nil {
			s = dropCloseFacts(s, obj.Pos())
		}
	}
	return s
}

// closeCallEffect discharges on a Close call and on the handle appearing
// in any call argument (optimistic handoff).
func closeCallEffect(info *types.Info, call *ast.CallExpr, s StringSet) StringSet {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if obj := identObj(info, sel.X); obj != nil {
			return dropCloseFacts(s, obj.Pos())
		}
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					s = dropCloseFacts(s, obj.Pos())
				}
			}
			return true
		})
	}
	return s
}

func dropCloseFacts(s StringSet, objPos token.Pos) StringSet {
	return s.Without(func(e string) bool {
		_, _, op, _, _ := parseCloseElem(e)
		return op == objPos
	})
}

// deferredCloseDischarges collects handles whose Close is deferred —
// directly, through a module helper that closes its parameter, or inside
// a deferred closure — crediting every exit path like a deferred Unlock.
func deferredCloseDischarges(info *types.Info, closeParams map[*types.Func][]int, c *CFG) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	record := func(call *ast.CallExpr) {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
			if obj := identObj(info, sel.X); obj != nil {
				out[obj.Pos()] = true
			}
			return
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return
		}
		for _, i := range closeParams[callee] {
			if i < len(call.Args) {
				if obj := identObj(info, call.Args[i]); obj != nil {
					out[obj.Pos()] = true
				}
			}
		}
	}
	for _, d := range c.Defers {
		record(d.Call)
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
	}
	return out
}

// reportDroppedCloses is errcheck-io's Close rule, relocated: a bare
// `x.Close()` expression statement drops the error. Deferred closes are
// exempt by the same policy errcheck-io documents.
func reportDroppedCloses(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	inspectShallow(body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return true
		}
		recv, _, _ := selIdentity(info, ast.Unparen(sel.X))
		if recv == "" {
			recv = "the value"
		}
		pass.Reportf(call.Pos(),
			"%s: error from %s.Close() is dropped; handle it or assign it to _ (defer the Close for read-path cleanup)",
			name, recv)
		return true
	})
}

// reportDiscardedOpens flags acquisitions bound entirely to blanks: the
// handle exists but can never be closed.
func reportDiscardedOpens(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	isBlank := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "_"
	}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		what, _, ok := acquiringCall(info, call)
		if !ok {
			return true
		}
		// The handle is the first result; binding it to _ discards it even
		// when the paired error is checked.
		if isBlank(as.Lhs[0]) {
			pass.Reportf(call.Pos(),
				"%s: discards the handle returned by %s; it can never be closed — bind it and Close it, or do not open it",
				name, what)
		}
		return true
	})
}
