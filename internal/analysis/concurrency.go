package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Shared machinery for the lock-discipline analyzers (lockheld,
// unlockpath, lockorder, gocapture): classifying sync.Mutex/RWMutex call
// sites and resolving the identity of the mutex they act on.

type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

func (o lockOp) String() string {
	switch o {
	case opLock:
		return "Lock"
	case opRLock:
		return "RLock"
	case opUnlock:
		return "Unlock"
	case opRUnlock:
		return "RUnlock"
	}
	return "?"
}

// acquires reports whether the operation takes the mutex.
func (o lockOp) acquires() bool { return o == opLock || o == opRLock }

// releases returns the acquisition op this op undoes, or -1.
func (o lockOp) releases() lockOp {
	switch o {
	case opUnlock:
		return opLock
	case opRUnlock:
		return opRLock
	}
	return -1
}

// lockRef is one resolved mutex operation.
type lockRef struct {
	op   lockOp
	name string       // receiver's short name ("mu"), for `guarded by` matching
	obj  types.Object // variable or field holding the mutex; may be nil
	key  string       // stable module-wide identity, for the acquisition graph
	call *ast.CallExpr
}

// lockCall classifies call as a sync.Mutex/RWMutex operation. Only methods
// resolved to package sync count, so a user type with its own Lock method
// is never misread as a mutex.
func lockCall(info *types.Info, call *ast.CallExpr) (lockRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockRef{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockRef{}, false
	}
	ref := lockRef{op: op, call: call}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr: // v.mu.Lock() or pkg.mu.Lock()
		ref.name = x.Sel.Name
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			ref.obj = s.Obj()
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			ref.key = types.TypeString(recv, nil) + "." + ref.name
		} else if o := info.Uses[x.Sel]; o != nil {
			ref.obj = o
			if o.Pkg() != nil {
				ref.key = o.Pkg().Path() + "." + ref.name
			}
		}
	case *ast.Ident: // mu.Lock() — package-level or local mutex,
		// or t.Lock() through an embedded sync.Mutex.
		ref.name = x.Name
		if o := info.Uses[x]; o != nil {
			ref.obj = o
			switch {
			case o.Pkg() != nil && o.Parent() == o.Pkg().Scope():
				ref.key = o.Pkg().Path() + "." + ref.name
			default:
				// Function-local mutex: identity is the object itself.
				ref.key = fmt.Sprintf("local.%s@%d", ref.name, o.Pos())
			}
		}
	default:
		// Mutex reached through an index or call result; no stable
		// identity, but the short name may still be recoverable.
		return lockRef{}, false
	}
	if ref.key == "" {
		return lockRef{}, false
	}
	return ref, true
}

// collectGuarded maps each struct field carrying a `// guarded by <mu>`
// comment to the name of its mutex.
func collectGuarded(pkg *Package) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardComment(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardedAccess returns the guarded-field selections within node (pruning
// function literals), paired with their guarding mutex names.
type guardedUse struct {
	sel *ast.SelectorExpr
	mu  string
}

func guardedUses(info *types.Info, guarded map[types.Object]string, node ast.Node) []guardedUse {
	var out []guardedUse
	inspectShallow(node, func(n ast.Node) bool {
		if e, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
				if mu, ok := guarded[s.Obj()]; ok {
					out = append(out, guardedUse{e, mu})
				}
			}
		}
		return true
	})
	return out
}

// deferredReleases returns, for each mutex short name, the set of
// acquisition ops whose deferred release is registered anywhere in the
// function — `defer mu.Unlock()` and `defer mu.RUnlock()`. Deferred
// releases run at every exit, normal or panicking, so analyzers treat
// them as covering all paths (a defer inside a conditional is credited
// optimistically; the race-detector CI gate backstops that gap).
func deferredReleases(info *types.Info, c *CFG) map[string]map[lockOp]bool {
	out := make(map[string]map[lockOp]bool)
	for _, d := range c.Defers {
		ref, ok := lockCall(info, d.Call)
		if !ok {
			continue
		}
		if rel := ref.op.releases(); rel >= 0 {
			if out[ref.key] == nil {
				out[ref.key] = make(map[lockOp]bool)
			}
			out[ref.key][rel] = true
		}
	}
	return out
}
