package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Shared machinery for the lock-discipline analyzers (lockheld,
// unlockpath, lockorder, gocapture): classifying sync.Mutex/RWMutex call
// sites and resolving the identity of the mutex they act on.

type lockOp int

const (
	opLock lockOp = iota
	opRLock
	opUnlock
	opRUnlock
)

func (o lockOp) String() string {
	switch o {
	case opLock:
		return "Lock"
	case opRLock:
		return "RLock"
	case opUnlock:
		return "Unlock"
	case opRUnlock:
		return "RUnlock"
	}
	return "?"
}

// acquires reports whether the operation takes the mutex.
func (o lockOp) acquires() bool { return o == opLock || o == opRLock }

// releases returns the acquisition op this op undoes, or -1.
func (o lockOp) releases() lockOp {
	switch o {
	case opUnlock:
		return opLock
	case opRUnlock:
		return opRLock
	}
	return -1
}

// lockRef is one resolved mutex operation.
type lockRef struct {
	op   lockOp
	name string       // receiver's short name ("mu"), for `guarded by` matching
	obj  types.Object // variable or field holding the mutex; may be nil
	key  string       // stable module-wide identity, for the acquisition graph
	call *ast.CallExpr
}

// lockCall classifies call as a sync.Mutex/RWMutex operation. Only methods
// resolved to package sync count, so a user type with its own Lock method
// is never misread as a mutex.
func lockCall(info *types.Info, call *ast.CallExpr) (lockRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockRef{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockRef{}, false
	}
	ref := lockRef{op: op, call: call}
	ref.name, ref.obj, ref.key = selIdentity(info, sel.X)
	if ref.key == "" {
		return lockRef{}, false
	}
	return ref, true
}

// selIdentity resolves the identity of a value reached through a method
// call's receiver expression — the `v.mu` of `v.mu.Lock()` or the
// `bufPool` of `bufPool.Get()`. It returns the short name (for `guarded
// by` matching and messages), the variable or field object, and a stable
// module-wide identity key: type + field for struct members, package path
// + name for package-level variables, and a position-tagged name for
// locals. A value reached through an index or call result has no stable
// identity and yields an empty key.
func selIdentity(info *types.Info, x ast.Expr) (name string, obj types.Object, key string) {
	switch x := x.(type) {
	case *ast.SelectorExpr: // v.mu or pkg.mu
		name = x.Sel.Name
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			obj = s.Obj()
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			key = types.TypeString(recv, nil) + "." + name
		} else if o := info.Uses[x.Sel]; o != nil {
			obj = o
			if o.Pkg() != nil {
				key = o.Pkg().Path() + "." + name
			}
		}
	case *ast.Ident: // mu — package-level or local,
		// or t.Lock() through an embedded sync.Mutex.
		name = x.Name
		if o := info.Uses[x]; o != nil {
			obj = o
			switch {
			case o.Pkg() != nil && o.Parent() == o.Pkg().Scope():
				key = o.Pkg().Path() + "." + name
			default:
				// Function-local value: identity is the object itself.
				key = fmt.Sprintf("local.%s@%d", name, o.Pos())
			}
		}
	}
	return name, obj, key
}

// collectGuarded maps each struct field carrying a `// guarded by <mu>`
// comment to the name of its mutex.
func collectGuarded(pkg *Package) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardComment(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardedAccess returns the guarded-field selections within node (pruning
// function literals), paired with their guarding mutex names.
type guardedUse struct {
	sel *ast.SelectorExpr
	mu  string
}

func guardedUses(info *types.Info, guarded map[types.Object]string, node ast.Node) []guardedUse {
	var out []guardedUse
	inspectShallow(node, func(n ast.Node) bool {
		if e, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
				if mu, ok := guarded[s.Obj()]; ok {
					out = append(out, guardedUse{e, mu})
				}
			}
		}
		return true
	})
	return out
}

// deferredReleases returns, for each mutex short name, the set of
// acquisition ops whose deferred release is registered anywhere in the
// function — `defer mu.Unlock()` and `defer mu.RUnlock()`. Deferred
// releases run at every exit, normal or panicking, so analyzers treat
// them as covering all paths (a defer inside a conditional is credited
// optimistically; the race-detector CI gate backstops that gap).
func deferredReleases(info *types.Info, c *CFG) map[string]map[lockOp]bool {
	out := make(map[string]map[lockOp]bool)
	for _, d := range c.Defers {
		ref, ok := lockCall(info, d.Call)
		if !ok {
			continue
		}
		if rel := ref.op.releases(); rel >= 0 {
			if out[ref.key] == nil {
				out[ref.key] = make(map[lockOp]bool)
			}
			out[ref.key][rel] = true
		}
	}
	return out
}
