package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// TelemetryLabels keeps the metrics registry bounded and uniformly named.
// Two failure modes motivate it: a metric name outside the bix_* scheme
// fragments dashboards, and a label value computed from request data (a
// query string, a row count) creates one time series per distinct value —
// unbounded registry growth on a long-lived server.
//
// The rule: every Registry.Counter/Gauge/Histogram call site must pass a
// constant metric name matching ^bix_[a-z0-9_]+$, and every label argument
// must be a Label literal whose fields are compile-time constants. Dynamic
// label needs are served by pre-registering one metric per known value
// (see internal/engine's per-plan counters).
//
// The one audited exception is the attribute-labeled bix_attr_* families:
// their label values are catalog attribute names — bounded by the schema,
// not by query traffic — which are only known at run time. A function
// whose doc comment carries `//bix:attrlabel (reason)` declares itself the
// bounded-cardinality seam: inside it, dynamic label values are permitted.
// The directive cuts both ways — registering a bix_attr_* metric anywhere
// outside an attrlabel function is reported, so the only place the
// attribute families can grow is the audited constructor, and label values
// there can never be query constants or other user input.
//
// Names must also agree with the metric kind, Prometheus-style: a Counter
// is cumulative and must end in _total (the bix_runtime_* family feeds
// counters by deltas exactly so this holds), while a Gauge or Histogram is
// a point-in-time value or a distribution and must not carry the _total
// suffix.
var TelemetryLabels = &Analyzer{
	Name: "telemetry-labels",
	Doc:  "metric registrations need constant bix_* names and constant label values",
	Run:  runTelemetryLabels,
}

var metricNameRE = regexp.MustCompile(`^bix_[a-z0-9_]+$`)

func runTelemetryLabels(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Body ranges of the file's //bix:attrlabel functions: metric
		// registrations positioned inside one are the audited seam.
		type span struct{ lo, hi token.Pos }
		var audited []span
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil && hasDirective(fn.Doc, "attrlabel") {
				audited = append(audited, span{fn.Body.Pos(), fn.Body.End()})
			}
		}
		inAttrLabel := func(p token.Pos) bool {
			for _, s := range audited {
				if s.lo <= p && p < s.hi {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
			default:
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "telemetry" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !sig.Variadic() {
				return true
			}
			checkMetricCall(pass, call, sig, sel.Sel.Name, inAttrLabel(call.Pos()))
			return true
		})
	}
}

func checkMetricCall(pass *Pass, call *ast.CallExpr, sig *types.Signature, kind string, inAttrLabel bool) {
	info := pass.Pkg.Info
	if len(call.Args) == 0 {
		return
	}
	// Metric name: first argument, must be a string constant in the scheme
	// with the suffix its kind demands.
	if tv, ok := info.Types[call.Args[0]]; ok {
		if tv.Value == nil {
			pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time constant")
		} else if tv.Value.Kind() == constant.String {
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q does not match the bix_* scheme (%s)",
					name, metricNameRE)
			} else if isTotal := strings.HasSuffix(name, "_total"); kind == "Counter" && !isTotal {
				pass.Reportf(call.Args[0].Pos(),
					"counter %q must end in _total (cumulative metrics carry the suffix; use a Gauge for point-in-time values)", name)
			} else if kind != "Counter" && isTotal {
				pass.Reportf(call.Args[0].Pos(),
					"%s %q must not end in _total (the suffix marks cumulative counters)", strings.ToLower(kind), name)
			}
			if strings.HasPrefix(name, "bix_attr_") && !inAttrLabel {
				pass.Reportf(call.Args[0].Pos(),
					"attribute-labeled metric %q may only be registered inside a //bix:attrlabel function (label values must derive from catalog attribute names, never query input)", name)
			}
		}
	}
	// Inside an audited //bix:attrlabel function dynamic label values are
	// the point; the constant-field checks below do not apply.
	if inAttrLabel {
		return
	}
	// Labels: the variadic tail. Spreading a slice hides the values.
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis, "labels spread from a slice cannot be checked for constant values; pass Label literals")
		return
	}
	labelStart := sig.Params().Len() - 1
	if labelStart < 0 || labelStart > len(call.Args) {
		return
	}
	for _, arg := range call.Args[labelStart:] {
		lit, ok := arg.(*ast.CompositeLit)
		if !ok {
			pass.Reportf(arg.Pos(), "label must be a Label literal with constant fields, not a variable")
			continue
		}
		for _, elt := range lit.Elts {
			expr := elt
			field := ""
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				expr = kv.Value
				if id, ok := kv.Key.(*ast.Ident); ok {
					field = id.Name + " "
				}
			}
			if tv, ok := info.Types[expr]; ok && tv.Value == nil {
				pass.Reportf(expr.Pos(),
					"label %sfield is not a compile-time constant (unbounded label cardinality); pre-register one metric per value instead", field)
			}
		}
	}
}
