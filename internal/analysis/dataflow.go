package analysis

import "sort"

// This file is the value half of the flow-sensitive layer: a forward
// worklist solver over the CFG of cfg.go, plus the one small lattice every
// current client needs — finite sets of strings, joined either by union
// (may-analyses: "a lock may still be held here") or intersection
// (must-analyses: "this lock is held on every path reaching here").
//
// The solver is deliberately minimal. Facts are opaque to it; clients
// supply a transfer function over whole blocks and a join. nil is the
// "unreached" fact and is the identity of every join, which makes the same
// solver serve may- and must-analyses without a separate TOP encoding:
// a must-analysis simply never joins against unreached predecessors.

// FlowFact is one dataflow fact. Implementations must be treated as
// immutable by Transfer (copy before mutating).
type FlowFact interface {
	EqualFact(FlowFact) bool
}

// FlowProblem describes one forward dataflow problem.
type FlowProblem struct {
	// Entry is the fact at function entry.
	Entry FlowFact
	// Transfer maps the fact at block entry to the fact at block exit.
	Transfer func(b *Block, in FlowFact) FlowFact
	// Join merges facts along converging edges; either argument may be
	// nil (unreached), in which case the other is returned unchanged by
	// the solver before Join is ever called.
	Join func(a, b FlowFact) FlowFact
}

// SolveForward runs the worklist algorithm and returns the fact at the
// entry of each reachable block. Unreachable blocks are absent from the
// result, which is how clients recognize dead code.
func SolveForward(c *CFG, p FlowProblem) map[*Block]FlowFact {
	in := make(map[*Block]FlowFact, len(c.Blocks))
	in[c.Entry] = p.Entry
	// Deterministic worklist: a FIFO seeded with entry; duplicates are
	// suppressed by the queued set. Termination needs facts to form a
	// finite-height lattice, which string sets over a fixed universe do.
	queue := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		out := p.Transfer(b, in[b])
		for _, s := range b.Succs {
			cur, ok := in[s]
			var merged FlowFact
			if !ok {
				merged = out
			} else {
				merged = p.Join(cur, out)
			}
			if ok && merged.EqualFact(cur) {
				continue
			}
			in[s] = merged
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}

// StringSet is a finite set of strings — the lattice element used by the
// lock analyses (elements are mutex keys, or mutex keys tagged with an
// acquisition site).
type StringSet map[string]bool

// NewStringSet builds a set from its arguments.
func NewStringSet(elems ...string) StringSet {
	s := make(StringSet, len(elems))
	for _, e := range elems {
		s[e] = true
	}
	return s
}

// EqualFact implements FlowFact.
func (s StringSet) EqualFact(o FlowFact) bool {
	t, ok := o.(StringSet)
	if !ok || len(s) != len(t) {
		return false
	}
	for k := range s {
		if !t[k] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s StringSet) Clone() StringSet {
	t := make(StringSet, len(s))
	for k := range s {
		t[k] = true
	}
	return t
}

// With returns s ∪ {e} without mutating s.
func (s StringSet) With(e string) StringSet {
	if s[e] {
		return s
	}
	t := s.Clone()
	t[e] = true
	return t
}

// Without returns s \ drop, where drop selects elements to remove.
func (s StringSet) Without(drop func(string) bool) StringSet {
	any := false
	for k := range s {
		if drop(k) {
			any = true
			break
		}
	}
	if !any {
		return s
	}
	t := make(StringSet, len(s))
	for k := range s {
		if !drop(k) {
			t[k] = true
		}
	}
	return t
}

// Sorted returns the elements in sorted order (deterministic reporting).
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UnionSets is the join of a may-analysis.
func UnionSets(a, b FlowFact) FlowFact {
	x, y := a.(StringSet), b.(StringSet)
	if len(x) == 0 {
		return y
	}
	if len(y) == 0 {
		return x
	}
	out := x.Clone()
	for k := range y {
		out[k] = true
	}
	return out
}

// IntersectSets is the join of a must-analysis.
func IntersectSets(a, b FlowFact) FlowFact {
	x, y := a.(StringSet), b.(StringSet)
	out := make(StringSet)
	for k := range x {
		if y[k] {
			out[k] = true
		}
	}
	return out
}
