package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow keeps context.Context flowing the way the package documents:
// down the call stack, never sideways into state.
//
//   - Detached callee: a function that receives a ctx parameter must pass
//     its own ctx (or a context derived from it — WithCancel, WithTimeout,
//     a rebound variable) to every callee that accepts one. Passing
//     context.Background()/TODO() instead silently disconnects the callee
//     from cancellation. Functions without a ctx parameter may call
//     ctx-accepting callees however they like: they have nothing to
//     thread.
//   - Struct storage: assigning a context to a struct field, or building a
//     composite literal with a context field, freezes a request-scoped
//     value into state that outlives the request. Checked in every
//     function, ctx parameter or not.
//   - Unconsulted loop: an eternal `for` in a ctx-receiving function that
//     never uses the context at all — no Done/Err check, no ctx-forwarding
//     call inside the loop — keeps running after cancellation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must flow to every ctx-accepting callee, never into struct fields; eternal loops must consult ctx",
	Run:  runCtxFlow,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func runCtxFlow(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		checkCtxStores(pass, fn.Body)
		checkCtxFunc(pass, fn.Name.Name, fn.Type, fn.Body)
		for _, lit := range funcLits(fn.Body) {
			checkCtxFunc(pass, fn.Name.Name+" (func literal)", lit.Type, lit.Body)
		}
	}
}

// checkCtxStores flags contexts escaping into structs, anywhere.
func checkCtxStores(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal || !isContextType(s.Obj().Type()) {
					continue
				}
				// `h.ctx = nil` is a reset, not a capture.
				if i < len(n.Rhs) {
					rhs := ast.Unparen(n.Rhs[i])
					if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
						continue
					}
					if tv, ok := info.Types[rhs]; ok && !isContextType(tv.Type) {
						continue
					}
				}
				pass.Reportf(lhs.Pos(),
					"stores a context.Context in struct field %s; contexts are request-scoped — pass ctx as an argument instead",
					sel.Sel.Name)
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if vt, ok := info.Types[val]; ok && isContextType(vt.Type) {
					pass.Reportf(val.Pos(),
						"stores a context.Context in a struct literal; contexts are request-scoped — pass ctx as an argument instead")
				}
			}
		}
		return true
	})
}

// checkCtxFunc applies the flow rules to one function with a ctx parameter.
func checkCtxFunc(pass *Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	derived := ctxDerivedObjects(info, ftype, body)
	if derived == nil {
		return // no named ctx parameter: nothing to thread
	}
	usesDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Detached callees: a ctx-typed argument that is not derived from the
	// function's own ctx.
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || tv.IsType() {
			return true // conversion, not a call
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			if usesDerived(call.Args[i]) {
				continue
			}
			calleeName := "a function value"
			if fn := calleeFunc(info, call); fn != nil {
				calleeName = shortFuncName(fn)
			}
			pass.Reportf(call.Args[i].Pos(),
				"%s receives a context.Context but calls %s with a detached context; pass ctx (or a context derived from it) so cancellation propagates",
				name, calleeName)
		}
		return true
	})

	// Unconsulted eternal loops.
	labels := loopLabels(body)
	inspectShallow(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		consults := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					consults = true
				}
			}
			return !consults
		})
		if !consults {
			// Bounded daemon loops with their own quit channel still leave;
			// only flag the loop when ctx is the function's sole signal.
			if !loopBodyCanExit(loop.Body, labels[loop]) {
				pass.Reportf(loop.Pos(),
					"%s: eternal loop never consults ctx; add a ctx.Done() check (or select case) so cancellation stops it",
					name)
				return false
			}
		}
		return true
	})
}

// ctxDerivedObjects seeds the ctx parameter objects of ftype and closes
// over assignments: any ctx-typed variable assigned from an expression
// that mentions a derived object is derived too. Returns nil when the
// function has no named ctx parameter.
func ctxDerivedObjects(info *types.Info, ftype *ast.FuncType, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
				}
			}
		}
	}
	if len(derived) == 0 {
		return nil
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	bind := func(lhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			derived[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		before := len(derived)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				rhsDerived := false
				for _, r := range n.Rhs {
					if mentions(r) {
						rhsDerived = true
					}
				}
				if rhsDerived {
					for _, l := range n.Lhs {
						bind(l)
					}
				}
			case *ast.ValueSpec:
				rhsDerived := false
				for _, v := range n.Values {
					if mentions(v) {
						rhsDerived = true
					}
				}
				if rhsDerived {
					for _, name := range n.Names {
						bind(name)
					}
				}
			}
			return true
		})
		if len(derived) != before {
			changed = true
		}
	}
	return derived
}
