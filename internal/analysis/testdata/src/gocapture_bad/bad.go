// Package gocapturebad launches goroutines that touch guarded fields
// without taking the guard inside the goroutine body.
package gocapturebad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// UnguardedTouch bumps a guarded field from a goroutine without taking
// the guard inside the goroutine — the launcher's lock (even if it held
// one) would not protect the racing access.
func UnguardedTouch(c *counter) {
	go func() {
		c.n++ // want "guarded by mu"
	}()
}

// LauncherLockDoesNotCover: the launcher holds mu, but the goroutine
// runs after Unlock; the access still races.
func LauncherLockDoesNotCover(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu"
	}()
}
