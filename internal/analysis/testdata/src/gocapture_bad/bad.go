// Package gocapturebad launches goroutines that capture what they must
// not: loop iteration variables, addresses of loop variables, and
// guarded fields accessed without taking the guard inside the goroutine.
package gocapturebad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// FanOut captures the range variable inside each goroutine.
func FanOut(jobs []int, out chan<- int) {
	for _, j := range jobs {
		go func() {
			out <- j * j // want "captures loop variable j"
		}()
	}
}

// IndexCapture captures a for-init variable.
func IndexCapture(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i // want "captures loop variable i"
		}()
	}
}

// AddressEscape passes the address of the loop variable to the goroutine.
func AddressEscape(jobs []int, sink func(*int)) {
	for _, j := range jobs {
		go sink(&j) // want "address of loop variable j"
	}
}

// UnguardedTouch bumps a guarded field from a goroutine without taking
// the guard inside the goroutine — the launcher's lock (even if it held
// one) would not protect the racing access.
func UnguardedTouch(c *counter) {
	go func() {
		c.n++ // want "guarded by mu"
	}()
}

// LauncherLockDoesNotCover: the launcher holds mu, but the goroutine
// runs after Unlock; the access still races.
func LauncherLockDoesNotCover(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "guarded by mu"
	}()
}
