// Package unlockpathbad leaks locks: early returns, panic edges and
// mismatched release modes all leave a mutex held at function exit.
package unlockpathbad

import (
	"errors"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

// EarlyReturnLeaks releases on the success path only.
func (s *store) EarlyReturnLeaks(k string) (int, error) {
	s.mu.Lock() // want "without a matching mu.Unlock"
	v, ok := s.m[k]
	if !ok {
		return 0, errors.New("missing") // leaves mu held
	}
	s.mu.Unlock()
	return v, nil
}

// PanicLeaks panics between Lock and Unlock with no defer.
func (s *store) PanicLeaks(k string) int {
	s.mu.Lock() // want "without a matching mu.Unlock"
	v, ok := s.m[k]
	if !ok {
		panic("missing key")
	}
	s.mu.Unlock()
	return v
}

// WrongRelease pairs RLock with Unlock: the read lock is never released.
func (s *store) WrongRelease() int {
	s.rw.RLock() // want "without a matching rw.RUnlock"
	n := len(s.m)
	s.rw.Unlock()
	return n
}

// BreakLeaks exits the loop holding the lock.
func (s *store) BreakLeaks(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock() // want "without a matching mu.Unlock"
		v, ok := s.m[k]
		if !ok {
			break // leaves mu held
		}
		total += v
		s.mu.Unlock()
	}
	return total
}
