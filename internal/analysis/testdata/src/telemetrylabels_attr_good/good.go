// Package attrgood registers attribute-labeled metrics the audited way:
// inside a //bix:attrlabel constructor whose label values come from a
// fixed schema-derived set.
package attrgood

import "bitmapindex/internal/telemetry"

// Counters holds the pre-registered per-attribute counters.
type Counters struct {
	Queries []*telemetry.Counter
}

// NewCounters is the audited bounded-cardinality seam: attrs is a catalog
// attribute list, fixed at construction.
//
//bix:attrlabel (label values are catalog attribute names; the set is fixed at construction)
func NewCounters(reg *telemetry.Registry, attrs []string) *Counters {
	c := &Counters{}
	for _, a := range attrs {
		c.Queries = append(c.Queries, reg.Counter("bix_attr_fixture_good_total",
			"Queries by attribute.", telemetry.Label{Name: "attr", Value: a}))
	}
	return c
}

// BuildInfo shows the other sanctioned use: a run-time-derived but
// bounded label value (one series per process).
//
//bix:attrlabel (one series; the label value is the build's Go version)
func BuildInfo(reg *telemetry.Registry, version string) *telemetry.Gauge {
	return reg.Gauge("bix_fixture_build_info", "Build information.",
		telemetry.Label{Name: "goversion", Value: version})
}

// ConstantElsewhere: ordinary constant-label registrations outside the
// seam stay fine.
var served = telemetry.Default().Counter("bix_fixture_served_total", "Requests served.",
	telemetry.Label{Name: "proto", Value: "http"})
