// Package bitvec is a miniature stand-in for the real bitvec package: the
// tailmask analyzer matches on the package and type names, so this fixture
// exercises the in-package rule without importing the real implementation.
package bitvec

type Vector struct {
	n     int
	words []uint64
}

func (v *Vector) tailMask() uint64 {
	if r := uint(v.n % 64); r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// maskTail writes words but calls tailMask, so it passes.
func (v *Vector) maskTail() {
	if len(v.words) > 0 {
		v.words[len(v.words)-1] &= v.tailMask()
	}
}

func (v *Vector) SetAllBad() {
	for i := range v.words {
		v.words[i] = ^uint64(0) // want "maskTail"
	}
}

func (v *Vector) OrBad(o *Vector) {
	for i := range v.words {
		v.words[i] |= o.words[i] // want "maskTail"
	}
}

func (v *Vector) CopyBad(src []uint64) {
	copy(v.words, src) // want "maskTail"
}

func (v *Vector) ReplaceBad(src []uint64) {
	v.words = src // want "maskTail"
}
