// Package closeowngood closes or transfers every handle it acquires:
// deferred closes, the promote-the-close-error idiom, transfer by
// return, store into owning structure, deferred helper closes, and
// handoff to a closing goroutine.
package closeowngood

import "os"

// ReadAll defers the close right after the error check.
func ReadAll(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, rerr := f.Read(buf)
	if rerr != nil {
		return nil, rerr
	}
	return buf[:n], nil
}

// WriteAll promotes the close error through the named return.
func WriteAll(p string, data []byte) (err error) {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

// OpenNamed transfers ownership to the caller by returning the handle.
func OpenNamed(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// fileHolder owns its handle once open stores it.
type fileHolder struct {
	f *os.File
}

func (h *fileHolder) open(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}

// closeQuiet is the deferred-helper shape: it closes its parameter.
func closeQuiet(f *os.File) {
	_ = f.Close()
}

// Probe defers a module helper that closes its parameter.
func Probe(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer closeQuiet(f)
	return nil
}

// HandOff transfers the handle to a goroutine that closes it.
func HandOff(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	go consume(f)
	return nil
}

func consume(f *os.File) {
	defer f.Close()
	buf := make([]byte, 8)
	_, _ = f.Read(buf)
}
