// Package atomicfieldbad mixes sync/atomic access with plain access to
// the same field, and copies atomic-typed values.
package atomicfieldbad

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu   sync.Mutex
	hits int64
	cnt  atomic.Int64
}

// Bump publishes hits atomically — which makes every plain access to the
// field, anywhere in the module, a race.
func Bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

// PlainRead reads the atomically-updated field with no lock held.
func PlainRead(s *stats) int64 {
	return s.hits // want "accessed with sync/atomic"
}

// PlainWrite resets it plainly — same race, write side.
func PlainWrite(s *stats) {
	s.hits = 0 // want "accessed with sync/atomic"
}

// LateLock acquires the mutex only after the read.
func LateLock(s *stats) int64 {
	v := s.hits // want "accessed with sync/atomic"
	s.mu.Lock()
	defer s.mu.Unlock()
	return v
}

// CopyValue copies an atomic.Int64 by value: the copy is detached from
// the original and the hidden noCopy guard is violated.
func CopyValue(s *stats) int64 {
	c := s.cnt // want "copies atomic field"
	return c.Load()
}
