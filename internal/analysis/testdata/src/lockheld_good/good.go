// Package lockheldgood follows the lock discipline: accessors lock,
// helpers with transferred obligations carry //bix:lockheld, constructors
// build the struct before it is shared.
package lockheldgood

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// newCounter runs before the struct is shared; composite literals are not
// field accesses.
func newCounter() *counter {
	return &counter{n: 0}
}

func (c *counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

// bumpLocked is the classic split: callers hold mu.
//
//bix:lockheld
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

var _ = newCounter
