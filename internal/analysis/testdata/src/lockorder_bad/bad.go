// Package lockorderbad contains the two deadlock shapes the lockorder
// analyzer exists for: an A→B / B→A acquisition cycle (here split across
// a direct acquisition and a call) and a re-acquisition of a mutex the
// goroutine already holds.
package lockorderbad

import "sync"

type accounts struct {
	mu      sync.Mutex
	balance int
}

type audit struct {
	mu  sync.Mutex
	log []string
}

// TransferThenAudit takes accounts.mu then audit.mu.
func TransferThenAudit(a *accounts, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance--
	l.mu.Lock() // want "closing a lock-order cycle"
	defer l.mu.Unlock()
	l.log = append(l.log, "transfer")
}

// AuditThenTransfer takes the same two mutexes in the opposite order,
// the second one through a call.
func AuditThenTransfer(a *accounts, l *audit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log = append(l.log, "audit")
	debit(a) // want "closing a lock-order cycle"
}

// debit acquires accounts.mu; callers holding audit.mu order the locks
// audit→accounts.
func debit(a *accounts) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance--
}

// DoubleLock re-acquires a mutex the goroutine already holds: immediate
// self-deadlock, sync mutexes are not reentrant.
func DoubleLock(a *accounts) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mu.Lock() // want "self-deadlock"
	a.balance++
	a.mu.Unlock()
}

// LockThenCallLocker holds the mutex across a call that takes it again.
func LockThenCallLocker(a *accounts) {
	a.mu.Lock()
	defer a.mu.Unlock()
	debit(a) // want "self-deadlock"
}
