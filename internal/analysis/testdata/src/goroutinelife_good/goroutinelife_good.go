// Package goroutinelifegood spawns goroutines with provable termination
// signals: quit-channel selects, closed ranged channels, bounded loops,
// audited daemons, and caller-owned channel parameters.
package goroutinelifegood

import "sync"

// Pump drains jobs until the quit broadcast: the select case returns.
func Pump(jobs <-chan int, quit <-chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// FanOut closes the channel it feeds, so the range workers terminate.
func FanOut(n int) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				_ = j
			}
		}()
	}
	for i := 0; i < 100; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Bounded loops carry their own condition: nothing to prove.
func Bounded() {
	go func() {
		for i := 0; i < 8; i++ {
			work(i)
		}
	}()
}

func work(int) {}

// flusher runs for the process lifetime by design.
//
//bix:daemon (metrics flusher, stopped only at process exit)
func flusher() {
	for {
		work(0)
	}
}

// StartFlusher spawns the audited daemon; the walk stops at the
// directive.
func StartFlusher() {
	go flusher()
}

// drain ranges over a parameter: closing it is the caller's business,
// which static identity cannot track across the call.
func drain(in <-chan int) {
	for j := range in {
		_ = j
	}
}

// StartDrain hands drain a channel the caller closes elsewhere.
func StartDrain(in <-chan int) {
	go drain(in)
}
