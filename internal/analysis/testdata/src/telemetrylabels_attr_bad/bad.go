// Package attrbad registers attribute-labeled metrics outside the
// audited //bix:attrlabel seam.
package attrbad

import "bitmapindex/internal/telemetry"

// RegisterAttr registers a bix_attr_* family without the directive: even
// with a constant label value the family belongs in the audited seam.
func RegisterAttr() {
	telemetry.Default().Counter("bix_attr_fixture_total", "Attr family outside the seam.", // want "attrlabel"
		telemetry.Label{Name: "attr", Value: "region"})
}

// RegisterDynamic has the dynamic-label bug the directive exists to
// audit, without the directive: both findings fire.
func RegisterDynamic(attr string) {
	telemetry.Default().Counter("bix_attr_fixture_q_total", "Dynamic label outside the seam.", // want "attrlabel"
		telemetry.Label{Name: "attr", Value: attr}) // want "constant"
}

// wrongDirective is not the attrlabel directive: the prefix must not
// match.
//
//bix:attrlabelish (not the directive)
func WrongDirective(attr string) {
	telemetry.Default().Gauge("bix_attr_fixture_depth", "Misspelled directive.", // want "attrlabel"
		telemetry.Label{Name: "attr", Value: attr}) // want "constant"
}
