// Package telemetrybad registers metrics with off-scheme names and
// unbounded label values.
package telemetrybad

import "bitmapindex/internal/telemetry"

func Register(queryText string) {
	telemetry.Default().Counter("queries_total", "Off-scheme name.") // want "bix_"
	telemetry.Default().Counter("bix_fixture_q_total", "Per-query label.",
		telemetry.Label{Name: "q", Value: queryText}) // want "constant"
}

func Dynamic(name string) {
	telemetry.Default().Gauge(name, "Dynamic name.") // want "compile-time constant"
}

func Spread(labels []telemetry.Label) {
	telemetry.Default().Counter("bix_fixture_s_total", "Spread labels.", labels...) // want "spread"
}

func Variable(l telemetry.Label) {
	telemetry.Default().Counter("bix_fixture_v_total", "Variable label.", l) // want "not a variable"
}

func KindSuffixes() {
	telemetry.Default().Counter("bix_runtime_alloc_bytes", "Counter without suffix.") // want "_total"
	telemetry.Default().Gauge("bix_runtime_heap_bytes_total", "Gauge with suffix.")   // want "must not end in _total"
	telemetry.Default().Histogram("bix_profile_pause_total",                          // want "must not end in _total"
		"Histogram with suffix.", telemetry.LatencyBuckets)
}
