// Package ctxflowbad detaches, stores and ignores contexts.
package ctxflowbad

import "context"

func helper(ctx context.Context) error {
	return ctx.Err()
}

// Detach receives a ctx but hands its callee a fresh root, silently
// disconnecting it from cancellation.
func Detach(ctx context.Context) error {
	return helper(context.Background()) // want "detached context"
}

type holder struct {
	ctx context.Context
}

// Save freezes a request-scoped ctx into struct state.
func Save(ctx context.Context, h *holder) {
	h.ctx = ctx // want "stores a context.Context in struct field"
}

// Build does the same through a composite literal.
func Build(ctx context.Context) *holder {
	return &holder{ctx: ctx} // want "struct literal"
}

// Run never consults ctx: cancellation cannot stop it.
func Run(ctx context.Context) {
	for { // want "never consults ctx"
		step()
	}
}

func step() {}
