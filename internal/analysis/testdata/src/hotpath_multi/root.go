// Package hotpathmulti holds the hot roots of the multi-package hotpath
// fixture. The allocations all live in the imported helper package; every
// diagnostic must land there, carrying the chain from the root.
package hotpathmulti

import "bitmapindex/fixture/hotpath_multi/helper"

// Kernel reaches helper.Fill's append: flagged, in the helper package.
//
//bix:hotpath
func Kernel(dst []int, v int) []int {
	return helper.Fill(dst, v)
}

// Audited reaches only the //bix:allocok boundary: clean.
//
//bix:hotpath
func Audited(dst []int, v int) []int {
	return helper.Grow(dst, v)
}

// ViaValue calls through a bound function value; the best-effort binding
// resolution still produces the edge to helper.Indirect.
//
//bix:hotpath
func ViaValue() *int {
	f := helper.Indirect
	return f()
}
