// Package helper is the callee side of the multi-package hotpath fixture:
// nothing here is annotated //bix:hotpath, but Fill and Indirect are
// reached from hot roots in the parent package and must be flagged with
// the full cross-package call chain. Grow demonstrates the //bix:allocok
// escape hatch: an audited amortized-growth boundary terminates the walk.
package helper

// Fill grows dst; flagged because hotpathmulti.Kernel reaches it.
func Fill(dst []int, v int) []int {
	return append(dst, v) // want "via hotpathmulti.Kernel -> helper.Fill"
}

// Grow is the audited boundary: same body as Fill, but the directive
// stops the transitive walk before it descends into this function.
//
//bix:allocok (amortized doubling audited in the multi-package fixture)
func Grow(dst []int, v int) []int {
	return append(dst, v)
}

// Indirect is reached through a function value (f := helper.Indirect).
func Indirect() *int {
	return new(int) // want "via hotpathmulti.ViaValue -> helper.Indirect"
}
