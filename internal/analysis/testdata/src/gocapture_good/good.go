// Package gocapturegood launches goroutines the way the repository's
// kernels do: guarded fields are locked inside the goroutine that touches
// them, and — since Go 1.22 made loop variables per-iteration — capturing
// an iteration variable or passing its address is fine and must NOT be
// flagged.
package gocapturegood

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// WorkerPool is the core.EvalBatch shape: workers receive indices from a
// channel; nothing loop-scoped is captured.
func WorkerPool(jobs []int, workers int, out []int) {
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = jobs[i] * jobs[i]
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ParamPass hands the loop variable to the goroutine as an argument — a
// per-call copy, not a capture.
func ParamPass(jobs []int, out chan<- int) {
	for _, j := range jobs {
		go func(v int) {
			out <- v * v
		}(j)
	}
}

// RangeCapture captures the range variable directly. Per-iteration loop
// variables (Go >= 1.22) make each goroutine see its own j.
func RangeCapture(jobs []int, out chan<- int) {
	for _, j := range jobs {
		go func() {
			out <- j * j
		}()
	}
}

// IndexCapture captures a for-init variable — also per-iteration now.
func IndexCapture(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i
		}()
	}
}

// AddressEscape passes the address of the loop variable: each iteration's
// variable is distinct, so the pointer is stable for that goroutine.
func AddressEscape(jobs []int, sink func(*int)) {
	for _, j := range jobs {
		go sink(&j)
	}
}

// GuardedTouch locks inside the goroutine that accesses the field.
func GuardedTouch(c *counter) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}
