// Package gocapturegood launches goroutines the way the repository's
// kernels do: indices arrive through channels or parameters, and guarded
// fields are locked inside the goroutine that touches them.
package gocapturegood

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// WorkerPool is the core.EvalBatch shape: workers receive indices from a
// channel; nothing loop-scoped is captured.
func WorkerPool(jobs []int, workers int, out []int) {
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = jobs[i] * jobs[i]
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ParamPass hands the loop variable to the goroutine as an argument — a
// per-call copy, not a capture.
func ParamPass(jobs []int, out chan<- int) {
	for _, j := range jobs {
		go func(v int) {
			out <- v * v
		}(j)
	}
}

// GuardedTouch locks inside the goroutine that accesses the field.
func GuardedTouch(c *counter) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}
