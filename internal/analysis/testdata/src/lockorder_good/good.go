// Package lockordergood acquires its mutexes in one global order
// (accounts before audit, everywhere) and never holds one across a call
// that re-acquires it — the acquisition graph is a DAG.
package lockordergood

import "sync"

type accounts struct {
	mu      sync.Mutex
	balance int
}

type audit struct {
	mu  sync.Mutex
	log []string
}

// Transfer and Refund both order accounts.mu before audit.mu: one
// direction, no cycle.
func Transfer(a *accounts, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance--
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log = append(l.log, "transfer")
}

func Refund(a *accounts, l *audit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance++
	record(l)
}

// record acquires audit.mu; every caller holds accounts.mu first, which
// matches Transfer's order.
func record(l *audit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log = append(l.log, "refund")
}

// SequentialLocks release the first mutex before taking it again: the
// must-held set is empty at the second acquisition, so no self-edge.
func SequentialLocks(a *accounts) {
	a.mu.Lock()
	a.balance--
	a.mu.Unlock()
	a.mu.Lock()
	a.balance++
	a.mu.Unlock()
}

// LoopLocks: the per-iteration lock/unlock pair does not feed the
// previous iteration's acquisition into the next (must-held, not
// may-held).
func LoopLocks(a *accounts, n int) {
	for i := 0; i < n; i++ {
		a.mu.Lock()
		a.balance += i
		a.mu.Unlock()
	}
}
