// Package poolhygienebad violates sync.Pool ownership discipline: leaks
// on early-return and panic paths, discarded Gets, and use after Put.
package poolhygienebad

import "sync"

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// LeakOnEarlyReturn: the failure branch exits with the value checked out.
func LeakOnEarlyReturn(fail bool) int {
	b := bufPool.Get() // want "without a bufPool.Put"
	if fail {
		return 0
	}
	bufPool.Put(b)
	return 1
}

// Discard drops the checked-out value on the floor.
func Discard() {
	bufPool.Get() // want "discards the result"
}

// UseAfterPut touches the value after surrendering it to the pool.
func UseAfterPut() any {
	b := bufPool.Get()
	bufPool.Put(b)
	return b // want "after it was returned to pool"
}

// LeakOnPanic: the explicit panic edge exits with the value live.
func LeakOnPanic(bad bool) {
	b := bufPool.Get() // want "without a bufPool.Put"
	if bad {
		panic("pool value leaks here")
	}
	bufPool.Put(b)
}
