// Package lockheldflow exercises the path-sensitive upgrade of the
// lockheld analyzer: the lock must be held at the access, on every path —
// a lock that was merely "somewhere in the body" is no longer enough.
package lockheldflow

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// UseAfterUnlock locks, releases, then touches the field: the textual
// check passed this, the flow-sensitive one must not.
func (b *box) UseAfterUnlock() int {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	return b.n // want "guarded by mu"
}

// OneArmOnly locks on one branch only; the access after the join is not
// protected on the other path.
func (b *box) OneArmOnly(cond bool) int {
	if cond {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	return b.n // want "guarded by mu"
}

// BothArms locks on every path before the access: fine.
func (b *box) BothArms(cond bool) int {
	if cond {
		b.mu.Lock()
	} else {
		b.mu.Lock()
	}
	defer b.mu.Unlock()
	return b.n
}

// DeferredUnlockCoversAll: the deferred release runs at exit, after the
// access — the classic repository idiom stays clean.
func (b *box) DeferredUnlockCoversAll() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n > 10 {
		return 10
	}
	return b.n
}

// EarlyReturnBeforeLock reads before any lock on the early path.
func (b *box) EarlyReturnBeforeLock(skip bool) int {
	if skip {
		return b.n // want "guarded by mu"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// CallbackUnderLock: a function literal defined while the lock is held
// inherits the lock state (synchronous callbacks like bitvec's Ones
// visitor run under the caller's locks).
func (b *box) CallbackUnderLock(visit func(func() int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	visit(func() int { return b.n })
}

// CallbackWithoutLock: the same literal without the lock is reported.
func (b *box) CallbackWithoutLock(visit func(func() int)) {
	visit(func() int { return b.n }) // want "guarded by mu"
}
