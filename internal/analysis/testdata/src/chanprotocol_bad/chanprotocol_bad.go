// Package chanprotocolbad breaks the channel send/close protocol:
// receiver-side close, send after close, double close, a timer allocated
// every loop iteration, and a select loop with no way out.
package chanprotocolbad

import "time"

// Queue couples a producer and a consumer on one channel.
type Queue struct {
	ch chan int
}

// Produce is the sending side.
func (q *Queue) Produce(v int) {
	q.ch <- v
}

// Consume receives, then closes the channel out from under Produce.
func (q *Queue) Consume() int {
	v := <-q.ch
	close(q.ch) // want "the sending side owns the close"
	return v
}

// SendAfterClose sends on a channel it just closed.
func SendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want "reachable after close"
}

// DoubleClose closes twice on the same path.
func DoubleClose(ch chan int) {
	close(ch)
	close(ch) // want "may already be closed"
}

// PollLoop allocates a fresh timer every iteration.
func PollLoop(quit <-chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case <-time.After(time.Second): // want "time.After in a loop"
			tick()
		}
	}
}

func tick() {}

// Stuck selects forever with no shutdown case and no exit.
func Stuck(in <-chan int) {
	for {
		select { // want "select loop has no shutdown case"
		case v := <-in:
			_ = v
		}
	}
}
