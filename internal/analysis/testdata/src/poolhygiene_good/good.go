// Package poolhygienegood shows every accepted way to discharge a Get:
// straight-line Put, deferred Put (directly, or through a forwarding
// helper inside a deferred closure — the drain-loop shape), Put on every
// branch, returning the value, storing it into a longer-lived structure,
// and the untracked comma-ok assertion idiom.
package poolhygienegood

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

func use(v any) { _ = v }

// StraightLine: Get then Put on the single path.
func StraightLine() {
	b := bufPool.Get()
	use(b)
	bufPool.Put(b)
}

// DeferredPut credits every path, including the panic edge.
func DeferredPut(bad bool) {
	b := bufPool.Get()
	defer bufPool.Put(b)
	if bad {
		panic("deferred Put still runs")
	}
	use(b)
}

// ReturnTransfer hands ownership to the caller.
func ReturnTransfer() any {
	b := bufPool.Get()
	return b
}

// BranchPut puts on every branch.
func BranchPut(flip bool) {
	b := bufPool.Get()
	if flip {
		bufPool.Put(b)
		return
	}
	bufPool.Put(b)
}

// putBack forwards its parameter to a Put: the call-graph summary
// (PoolPutParams) is what lets callers discharge through it.
func putBack(v any) {
	bufPool.Put(v)
}

// ViaHelper discharges through the helper's summary.
func ViaHelper() {
	b := bufPool.Get()
	putBack(b)
}

// DeferViaClosure is the segment-drain shape: a deferred closure forwards
// the value to the helper at exit.
func DeferViaClosure() {
	b := bufPool.Get()
	defer func() {
		putBack(b)
	}()
	use(b)
}

// CommaOkUntracked: the comma-ok assertion is the discard-on-mismatch
// idiom and is deliberately untracked.
func CommaOkUntracked() []byte {
	b, ok := bufPool.Get().([]byte)
	if !ok {
		b = make([]byte, 0, 64)
	}
	return b
}

type holder struct{ v any }

// StoreTransfer parks the value in a longer-lived structure.
func StoreTransfer(h *holder) {
	b := bufPool.Get()
	h.v = b
}
