// Package hotallocbad puts every flagged allocation construct inside a
// //bix:hotpath function.
package hotallocbad

import "fmt"

//bix:hotpath
func BadFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf"
}

//bix:hotpath
func BadAppend(s []int, v int) []int {
	return append(s, v) // want "append"
}

//bix:hotpath
func BadMake(n int) []uint64 {
	return make([]uint64, n) // want "make"
}

//bix:hotpath
func BadClosure(s []int) func() int {
	return func() int { return len(s) } // want "closure"
}

//bix:hotpath
func BadSliceLit(n int) []int {
	return []int{n} // want "slice literal"
}

//bix:hotpath
func BadAddr(n int) *struct{ v int } {
	return &struct{ v int }{n} // want "address of a composite literal"
}

//bix:hotpath
func BadIface(n int) any {
	return any(n) // want "interface"
}

// sink is cold-path: it may be handed anything. The cost is paid by the
// hot caller that boxes a concrete value into the parameter.
func sink(v any) { _ = v }

//bix:hotpath
func BadBox(n int) {
	sink(n) // want "interface parameter"
}
