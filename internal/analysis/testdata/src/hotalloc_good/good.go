// Package hotallocgood: hot-path functions that stay on the stack, and an
// unannotated function that may allocate freely.
package hotallocgood

import "fmt"

//bix:hotpath
func PopCount(words []uint64) int {
	total := 0
	for _, w := range words {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

//bix:hotpath
func Lookup(seen map[uint64]bool, key uint64) bool {
	return seen[key] // map reads do not allocate
}

//bix:hotpath
func Mark(seen map[uint64]bool, key uint64) {
	seen[key] = true // amortized growth is allowed; the map is pre-sized
}

// Report is cold-path code: no annotation, no restrictions.
func Report(words []uint64) string {
	return fmt.Sprintf("%d bits set", PopCount(words))
}

// Check is hot but its fmt.Sprintf lives inside a panic argument: the
// failure path is by definition not the hot path.
//
//bix:hotpath
func Check(i, n int) {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
}
