// Package closeownbad leaks and mishandles os handles: success-path and
// branch leaks, a handle bound to blank, and a dropped Close error.
package closeownbad

import "os"

// Leak forgets the handle on the success path.
func Leak(p string) error {
	f, err := os.Open(p) // want "without Close on every path"
	if err != nil {
		return err
	}
	_ = f
	return nil
}

// BranchLeak closes on one branch only.
func BranchLeak(p string, flag bool) error {
	f, err := os.Open(p) // want "without Close on every path"
	if err != nil {
		return err
	}
	if flag {
		return f.Close()
	}
	return nil
}

// Discard binds the handle to blank: it can never be closed.
func Discard(p string) {
	_, _ = os.Open(p) // want "discards the handle"
}

// DropClose ignores the close error on a bare statement.
func DropClose(f *os.File) {
	f.Close() // want "error from f.Close"
}
