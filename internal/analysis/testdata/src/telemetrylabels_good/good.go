// Package telemetrygood registers metrics the approved way: constant
// bix_* names, constant label values, one metric per known label value.
package telemetrygood

import "bitmapindex/internal/telemetry"

const hitsName = "bix_fixture_hits_total"

var (
	hits   = telemetry.Default().Counter(hitsName, "Fixture hits.")
	byKind = [...]*telemetry.Counter{
		telemetry.Default().Counter("bix_fixture_ops_total", "Fixture ops.",
			telemetry.Label{Name: "kind", Value: "and"}),
		telemetry.Default().Counter("bix_fixture_ops_total", "Fixture ops.",
			telemetry.Label{"kind", "or"}),
	}
	lat = telemetry.Default().Histogram("bix_fixture_latency_seconds",
		"Fixture latency.", telemetry.LatencyBuckets,
		telemetry.Label{Name: "path", Value: "query"})
)

func Touch(kind int) {
	hits.Inc()
	byKind[kind%len(byKind)].Inc()
	lat.Observe(0.001)
}

// Runtime-profiling family: counters fed by deltas carry _total, the
// point-in-time gauges and distributions do not.
var (
	gcCycles = telemetry.Default().Counter("bix_runtime_gc_cycles_total", "Fixture GC cycles.")
	heap     = telemetry.Default().Gauge("bix_runtime_heap_bytes", "Fixture heap bytes.")
	pauses   = telemetry.Default().Histogram("bix_profile_gc_pause_seconds",
		"Fixture pauses.", telemetry.LatencyBuckets)
)

func TouchRuntime() {
	gcCycles.Inc()
	heap.Set(1)
	pauses.Observe(0.001)
}
