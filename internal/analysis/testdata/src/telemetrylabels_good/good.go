// Package telemetrygood registers metrics the approved way: constant
// bix_* names, constant label values, one metric per known label value.
package telemetrygood

import "bitmapindex/internal/telemetry"

const hitsName = "bix_fixture_hits_total"

var (
	hits   = telemetry.Default().Counter(hitsName, "Fixture hits.")
	byKind = [...]*telemetry.Counter{
		telemetry.Default().Counter("bix_fixture_ops_total", "Fixture ops.",
			telemetry.Label{Name: "kind", Value: "and"}),
		telemetry.Default().Counter("bix_fixture_ops_total", "Fixture ops.",
			telemetry.Label{"kind", "or"}),
	}
	lat = telemetry.Default().Histogram("bix_fixture_latency_seconds",
		"Fixture latency.", telemetry.LatencyBuckets,
		telemetry.Label{Name: "path", Value: "query"})
)

func Touch(kind int) {
	hits.Inc()
	byKind[kind%len(byKind)].Inc()
	lat.Observe(0.001)
}
