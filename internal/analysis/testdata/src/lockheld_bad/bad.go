// Package lockheldbad touches guarded fields without acquiring the mutex.
package lockheldbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	// hot is a cache line the RW lock protects.
	rw  sync.RWMutex
	hot []int // guarded by rw
}

func (c *counter) Bump() {
	c.n++ // want "guarded by mu"
}

func (c *counter) Peek() int {
	return c.n // want "guarded by mu"
}

func (c *counter) Hot(i int) int {
	return c.hot[i] // want "guarded by rw"
}

// WrongLock takes mu but reads a field guarded by rw.
func (c *counter) WrongLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hot) // want "guarded by rw"
}
