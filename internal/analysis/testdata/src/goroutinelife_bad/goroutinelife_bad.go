// Package goroutinelifebad spawns goroutines with no termination signal:
// a range over a channel nothing closes, an eternal literal, and an
// eternal loop reached through a call chain.
package goroutinelifebad

// Server owns a job channel that nothing in the module ever closes.
type Server struct {
	jobs chan int
}

func (s *Server) worker() {
	for j := range s.jobs {
		_ = j
	}
}

// Start spawns a worker that can never leave its range loop.
func (s *Server) Start() {
	go s.worker() // want "never closed anywhere in the module"
}

// SpinLit spawns a literal that loops forever with no exit.
func SpinLit() {
	go func() { // want "the function literal loops forever"
		for {
			step()
		}
	}()
}

func step() {}

// SpinDeep reaches the eternal loop two calls down; the diagnostic
// prints the spawn chain.
func SpinDeep() {
	go wrapper() // want "reached via"
}

func wrapper() { spin() }

func spin() {
	for {
		step()
	}
}
