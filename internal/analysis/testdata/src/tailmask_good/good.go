// Package bitvec (fixture): every write restores the tail mask, is
// annotated, or cannot set tail bits.
package bitvec

type Vector struct {
	n     int
	words []uint64
}

func (v *Vector) tailMask() uint64 {
	if r := uint(v.n % 64); r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

func (v *Vector) maskTail() {
	if len(v.words) > 0 {
		v.words[len(v.words)-1] &= v.tailMask()
	}
}

// SetAll restores the invariant explicitly.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// Clear cannot set bits, only clear them.
//
//bix:maskok (clearing bits cannot violate the tail-mask invariant)
func (v *Vector) Clear(i int) {
	v.words[i/64] &^= uint64(1) << uint(i%64)
}

// Count only reads the words.
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}
