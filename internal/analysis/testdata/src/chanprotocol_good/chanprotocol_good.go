// Package chanprotocolgood follows the channel protocol: sender-side
// close, hoisted tickers, third-party shutdown signals, and an audited
// daemon loop.
package chanprotocolgood

import "time"

// Pipeline sends and closes on the producing side.
func Pipeline(n int) <-chan int {
	out := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
		close(out)
	}()
	return out
}

// Ticker hoists the timer out of the loop and has a shutdown case.
func Ticker(quit <-chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
			tick()
		}
	}
}

func tick() {}

// Worker owns a quit channel closed by Stop: a close of a channel nobody
// sends on is a pure shutdown broadcast, whoever performs it.
type Worker struct {
	quit chan struct{}
}

// Stop broadcasts shutdown by closing the signal channel.
func (w *Worker) Stop() {
	close(w.quit)
}

// Run drains until the quit broadcast arrives.
func (w *Worker) Run(in <-chan int) {
	for {
		select {
		case <-w.quit:
			return
		case v := <-in:
			_ = v
		}
	}
}

// pump runs for the process lifetime by design; the daemon audit covers
// the missing shutdown case.
//
//bix:daemon (process-lifetime pump)
func pump(in, out chan int) {
	for {
		select {
		case v := <-in:
			out <- v
		}
	}
}
