// Package atomicfieldgood accesses atomic fields the allowed ways: the
// atomic API, a consistently held mutex, a //bix:lockheld trust boundary,
// and atomic-typed fields used only through their methods.
package atomicfieldgood

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu   sync.Mutex
	hits int64
	cnt  atomic.Int64
}

// Bump publishes hits atomically.
func Bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

// AtomicRead stays on the atomic API.
func AtomicRead(s *stats) int64 {
	return atomic.LoadInt64(&s.hits)
}

// LockedRead holds the guarding mutex across the plain access.
func LockedRead(s *stats) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// TrustedRead documents that every caller holds mu.
//
//bix:lockheld
func TrustedRead(s *stats) int64 {
	return s.hits
}

// MethodUse touches the atomic.Int64 only through its methods, on the
// original field.
func MethodUse(s *stats) int64 {
	s.cnt.Add(1)
	return s.cnt.Load()
}

// AddressUse bridges to a legacy API by address — no copy.
func AddressUse(s *stats) *atomic.Int64 {
	return &s.cnt
}
