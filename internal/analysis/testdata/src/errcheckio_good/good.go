// Package errcheckiogood handles, explicitly discards, or defers every
// I/O error.
package errcheckiogood

import (
	"fmt"
	"os"
)

func Handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

func Explicit(path string) {
	_ = os.Remove(path) // a visible decision, allowed
}

func DeferredCleanup(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // deferred cleanup on a read path is exempt
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func OutOfScope() {
	fmt.Println("fmt is not an I/O-bearing package for this rule")
}

// BareClose is no longer errcheck-io's concern: closeown owns the whole
// Close discipline (dropped close errors and leaked handles), so the
// bare statement is reported once, there, not twice.
func BareClose(f *os.File) {
	f.Close()
}
