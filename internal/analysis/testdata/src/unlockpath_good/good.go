// Package unlockpathgood releases every acquisition on every path: the
// deferred idiom, explicit unlocks on all branches, and a declared
// lock-transfer.
package unlockpathgood

import (
	"errors"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

// Deferred covers every exit, including the panic edge.
func (s *store) Deferred(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	if !ok {
		panic("missing key")
	}
	return v
}

// AllBranches unlocks explicitly on both paths.
func (s *store) AllBranches(k string) (int, error) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0, errors.New("missing")
	}
	s.mu.Unlock()
	return v, nil
}

// ReadPath pairs RLock with RUnlock.
func (s *store) ReadPath() int {
	s.rw.RLock()
	n := len(s.m)
	s.rw.RUnlock()
	return n
}

// LoopBalanced locks and unlocks within each iteration, breaking only
// after the release.
func (s *store) LoopBalanced(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		v, ok := s.m[k]
		s.mu.Unlock()
		if !ok {
			break
		}
		total += v
	}
	return total
}

// LockAndGet transfers the obligation to the caller, and says so.
//
//bix:unlockok (returns holding mu; caller must Unlock via Release)
func (s *store) LockAndGet(k string) int {
	s.mu.Lock()
	return s.m[k]
}

// Release is the matching half of the transfer.
//
//bix:lockheld
func (s *store) Release() { s.mu.Unlock() }
