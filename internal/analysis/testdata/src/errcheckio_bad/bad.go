// Package errcheckiobad drops error returns from os and io calls.
package errcheckiobad

import (
	"io"
	"os"
)

func Drop(path string) {
	os.Remove(path) // want "os.Remove"
}

func DropGo(path string) {
	go os.Remove(path) // want "os.Remove"
}

func DropCopy(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want "io.Copy"
}

func DropMethod(f *os.File) {
	f.Sync() // want "os.Sync"
}
