// Aliases of the backing words stay tainted through re-slicing and
// module-function calls; writes through any of them are reported.
package xbad

import "bitmapindex/internal/bitvec"

// SmashSlice writes through a re-slice of the Words() result.
func SmashSlice(v *bitvec.Vector) {
	w := v.Words()
	u := w[1:]
	u[0] = 9 // want "read-only"
}

// fill writes the elements of its parameter.
func fill(dst []uint64) {
	for i := range dst {
		dst[i] = 7
	}
}

// SmashViaCall hands the backing words to a function that writes them.
func SmashViaCall(v *bitvec.Vector) {
	fill(v.Words()) // want "writes its slice parameter"
}

// view returns (a view of) its parameter.
func view(w []uint64) []uint64 { return w[1:] }

// SmashViaReturn writes through a call result that aliases the words.
func SmashViaReturn(v *bitvec.Vector) {
	u := view(v.Words())
	u[0] = 3 // want "read-only"
}
