// Package xbad violates the cross-package rule: Words() hands out the
// backing slice for read-only scanning, and this package writes through it.
package xbad

import "bitmapindex/internal/bitvec"

func Smash(v *bitvec.Vector) {
	w := v.Words()
	w[0] = 1 // want "read-only"
}

func SmashDirect(v *bitvec.Vector) {
	v.Words()[0] |= 2 // want "read-only"
}

func SmashCopy(v *bitvec.Vector, src []uint64) {
	w := v.Words()
	copy(w, src) // want "read-only"
}
