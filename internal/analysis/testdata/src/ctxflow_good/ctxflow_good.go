// Package ctxflowgood threads contexts correctly: pass-through, derived
// contexts, fresh roots at entry points, consulted loops, and nil resets.
package ctxflowgood

import (
	"context"
	"time"
)

func helper(ctx context.Context) error {
	return ctx.Err()
}

// Threaded passes its own ctx down.
func Threaded(ctx context.Context) error {
	return helper(ctx)
}

// Derived rebinds through WithTimeout: still connected to the parent.
func Derived(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return helper(tctx)
}

// Entry has no ctx parameter: starting a fresh root here is the point.
func Entry() error {
	return helper(context.Background())
}

// Loop consults ctx every iteration.
func Loop(ctx context.Context, work <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-work:
			_ = v
		}
	}
}

// Bounded loops need no ctx check.
func Bounded(ctx context.Context) int {
	sum := 0
	for i := 0; i < 10; i++ {
		sum += i
	}
	_ = ctx
	return sum
}

type holder struct {
	ctx context.Context
}

// Reset clears a stored ctx: writing nil is not a capture.
func (h *holder) Reset() {
	h.ctx = nil
}
