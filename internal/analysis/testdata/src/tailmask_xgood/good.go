// Package xgood reads bitvec backing words without writing them.
package xgood

import "bitmapindex/internal/bitvec"

func PopCount(v *bitvec.Vector) int {
	total := 0
	for _, w := range v.Words() {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Scratch mutates its own slice, which merely shares a name with nothing.
func Scratch(n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = uint64(i)
	}
	return w
}
