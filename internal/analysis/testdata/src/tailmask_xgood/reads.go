// Read-only flows through aliases and calls stay clean, and a genuine
// copy of the words may be mutated freely.
package xgood

import "bitmapindex/internal/bitvec"

// sum only reads its parameter.
func sum(ws []uint64) uint64 {
	var t uint64
	for _, w := range ws {
		t += w
	}
	return t
}

// ReadViaCall passes the words to a reader: fine.
func ReadViaCall(v *bitvec.Vector) uint64 {
	return sum(v.Words())
}

// ReadSlice reads through a re-slice: fine.
func ReadSlice(v *bitvec.Vector) uint64 {
	u := v.Words()[1:]
	return sum(u)
}

// CloneAndMutate copies the words into a fresh slice first; the copy is
// the caller's to mutate.
func CloneAndMutate(v *bitvec.Vector) []uint64 {
	w := append([]uint64(nil), v.Words()...)
	w[0] = 1
	return w
}
