package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// badFixtureFindings runs a set of analyzers over fixtures that are
// guaranteed to report, giving the output tests real findings to format.
// The set spans several packages — including the cross-package
// hotpath_multi pair, whose findings depend on the interprocedural call
// graph — so the byte-stability test below covers multi-package ordering,
// not just the single-package sort.
func badFixtureFindings(t *testing.T) []Finding {
	t.Helper()
	pkgs := []*Package{
		loadFixture(t, "unlockpath_bad"),
		loadFixture(t, "lockorder_bad"),
		loadFixture(t, "gocapture_bad"),
		loadFixture(t, "hotpath_multi/helper"),
		loadFixture(t, "hotpath_multi"),
	}
	findings := Run(pkgs, []*Analyzer{UnlockPath, LockOrder, GoCapture, HotAlloc})
	if len(findings) == 0 {
		t.Fatal("bad fixtures produced no findings")
	}
	analyzers := make(map[string]bool)
	files := make(map[string]bool)
	for _, f := range findings {
		analyzers[f.Analyzer] = true
		files[f.Pos.Filename] = true
	}
	if len(analyzers) < 3 || len(files) < 3 {
		t.Fatalf("fixture set too narrow for ordering tests: %d analyzers, %d files", len(analyzers), len(files))
	}
	return findings
}

func renderText(findings []Finding) []byte {
	var buf bytes.Buffer
	for _, f := range findings {
		fmt.Fprintln(&buf, f)
	}
	return buf.Bytes()
}

// TestOutputByteStable: two independent full runs (fresh Batch, fresh
// passes) must produce byte-identical text output — the ordering
// contract CI diffs and baselines depend on.
func TestOutputByteStable(t *testing.T) {
	first := renderText(badFixtureFindings(t))
	second := renderText(badFixtureFindings(t))
	if !bytes.Equal(first, second) {
		t.Errorf("lint output is not byte-stable across runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// Findings must arrive sorted by file, line, column, then analyzer —
	// the full cross-package ordering contract, not just file/line.
	findings := badFixtureFindings(t)
	key := func(f Finding) string {
		return fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer)
	}
	for i := 1; i < len(findings); i++ {
		if key(findings[i-1]) > key(findings[i]) {
			t.Errorf("findings out of (file, line, column, analyzer) order: %s before %s",
				findings[i-1], findings[i])
		}
	}
}

// TestParallelByteIdentical: the parallel runner must produce the exact
// finding sequence of the serial path — same positions, same messages,
// same order — for the full suite and for -only/-skip subsets. This is
// the contract that lets -workers default on without perturbing CI
// diffs, baselines, or SARIF output.
func TestParallelByteIdentical(t *testing.T) {
	load := func() []*Package {
		return []*Package{
			loadFixture(t, "unlockpath_bad"),
			loadFixture(t, "lockorder_bad"),
			loadFixture(t, "gocapture_bad"),
			loadFixture(t, "hotpath_multi/helper"),
			loadFixture(t, "hotpath_multi"),
			loadFixture(t, "goroutinelife_bad"),
			loadFixture(t, "chanprotocol_bad"),
			loadFixture(t, "closeown_bad"),
		}
	}
	subsets := []struct {
		name       string
		only, skip string
	}{
		{"full-suite", "", ""},
		{"only-lifecycle", "goroutinelife,chanprotocol,closeown", ""},
		{"skip-interprocedural", "", "hotalloc,lockorder,goroutinelife"},
	}
	for _, sub := range subsets {
		t.Run(sub.name, func(t *testing.T) {
			analyzers, err := Select(sub.only, sub.skip)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) []byte {
				batch := NewBatch(load())
				batch.Workers = workers
				return renderText(RunBatch(batch, analyzers))
			}
			serial := run(1)
			if len(serial) == 0 && sub.name == "full-suite" {
				t.Fatal("bad fixtures produced no findings")
			}
			for _, workers := range []int{2, 4, 8} {
				if parallel := run(workers); !bytes.Equal(serial, parallel) {
					t.Errorf("workers=%d output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
						workers, serial, parallel)
				}
			}
		})
	}
}

// TestTimingsCoverSuite: after a run, every selected analyzer (plus the
// prepare phase) has a wall-time entry — the -timings contract.
func TestTimingsCoverSuite(t *testing.T) {
	batch := NewBatch([]*Package{loadFixture(t, "unlockpath_bad")})
	RunBatch(batch, All)
	seen := make(map[string]bool)
	for _, tm := range batch.Timings() {
		seen[tm.Name] = true
	}
	if !seen["(prepare)"] {
		t.Error("no (prepare) timing recorded")
	}
	for _, a := range All {
		if !seen[a.Name] {
			t.Errorf("no timing recorded for %s", a.Name)
		}
	}
}

// TestSARIFRequiredFields validates the SARIF 2.1.0 subset that
// code-scanning consumers require, by decoding the generic JSON rather
// than our own structs.
func TestSARIFRequiredFields(t *testing.T) {
	findings := badFixtureFindings(t)
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, All, ""); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", s)
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs has %d entries, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "bixlint" {
		t.Errorf("driver.name = %q, want bixlint", name)
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != len(All) {
		t.Errorf("driver declares %d rules, want %d (one per analyzer)", len(rules), len(All))
	}
	ruleIDs := make(map[string]bool)
	for _, r := range rules {
		rm := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Error("rule with empty id")
		}
		ruleIDs[id] = true
	}
	results, _ := run["results"].([]any)
	if len(results) != len(findings) {
		t.Fatalf("results has %d entries, want %d", len(results), len(findings))
	}
	for i, r := range results {
		rm := r.(map[string]any)
		id, _ := rm["ruleId"].(string)
		if !ruleIDs[id] {
			t.Errorf("result %d: ruleId %q not declared in driver.rules", i, id)
		}
		msg, _ := rm["message"].(map[string]any)
		if text, _ := msg["text"].(string); text == "" {
			t.Errorf("result %d: empty message.text", i)
		}
		locs, _ := rm["locations"].([]any)
		if len(locs) == 0 {
			t.Fatalf("result %d: no locations", i)
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		if uri, _ := art["uri"].(string); uri == "" || strings.Contains(uri, "\\") {
			t.Errorf("result %d: bad artifactLocation.uri %q", i, art["uri"])
		}
		region := phys["region"].(map[string]any)
		if line, _ := region["startLine"].(float64); line < 1 {
			t.Errorf("result %d: startLine %v, want >= 1", i, region["startLine"])
		}
	}
}

// TestBaselineRoundTrip: writing the current findings as a baseline and
// reading it back suppresses exactly those findings, with no stale
// entries; an edited message resurfaces and goes stale.
func TestBaselineRoundTrip(t *testing.T) {
	findings := badFixtureFindings(t)
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, findings, ""); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	baseline, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	kept, stale := FilterBaseline(findings, baseline, "")
	if len(kept) != 0 {
		t.Errorf("round-trip kept %d findings, want 0: %v", len(kept), kept)
	}
	if len(stale) != 0 {
		t.Errorf("round-trip produced %d stale entries, want 0: %v", len(stale), stale)
	}
	// Regeneration is byte-stable.
	var buf2 bytes.Buffer
	if err := WriteBaseline(&buf2, findings, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("baseline output is not byte-stable")
	}
	// A changed message no longer matches and its old entry is stale.
	mutated := make([]Finding, len(findings))
	copy(mutated, findings)
	mutated[0].Message += " (changed)"
	kept, stale = FilterBaseline(mutated, baseline, "")
	if len(kept) != 1 {
		t.Errorf("mutated finding: kept %d, want 1", len(kept))
	}
	if len(stale) != 1 {
		t.Errorf("mutated finding: %d stale entries, want 1", len(stale))
	}
}
