package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// The fact cache persists the call-graph extraction (edges + funcFacts,
// callgraph.go) between bixlint runs, keyed by a content hash of each
// package. Type-checking still happens on every run — facts reference
// types — but the per-function extraction walk is skipped for unchanged
// packages, which is what keeps `-ci` on a warm tree close to the v2
// wall-clock despite the new interprocedural layer.
//
// Invalidation is by construction, not by mtime: a package's hash covers
// the analyzer version, the Go toolchain version, its own file contents,
// and (recursively) the hashes of its module-internal imports that are
// part of the Batch — a signature change in a callee package therefore
// invalidates its importers. Module-internal imports that are not in the
// Batch (possible when bixlint is pointed at a single package) contribute
// only their import path, an accepted imprecision for partial runs; a
// `./...` run always has every module package in the Batch.

// factCacheVersion invalidates all cached facts when the extraction
// logic changes. Bump it whenever funcFacts gains a field or an analyzer
// reads the facts differently.
const factCacheVersion = 1

type cacheFile struct {
	Version  int                      `json:"version"`
	Go       string                   `json:"go"`
	Packages map[string]cachedPackage `json:"packages"`
}

type cachedPackage struct {
	Hash  string                `json:"hash"`
	Funcs map[string]cachedFunc `json:"funcs"`
}

// cachedFunc is one function's serialized extraction result.
type cachedFunc struct {
	Edges []callEdge `json:"edges,omitempty"`
	Facts *funcFacts `json:"facts,omitempty"`
}

type factCache struct {
	path  string
	file  cacheFile
	dirty bool
}

// openFactCache loads the cache at path. A missing, unreadable or
// version-mismatched file yields an empty cache — the cache is an
// accelerator, never a correctness input.
func openFactCache(path string) *factCache {
	c := &factCache{path: path}
	c.file.Version = factCacheVersion
	c.file.Go = runtime.Version()
	c.file.Packages = make(map[string]cachedPackage)
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var f cacheFile
	if json.Unmarshal(data, &f) != nil ||
		f.Version != factCacheVersion || f.Go != runtime.Version() || f.Packages == nil {
		return c
	}
	c.file = f
	return c
}

// lookup returns the cached functions for a package if the stored hash
// matches the package's current content hash.
func (c *factCache) lookup(pkgPath, hash string) (map[string]cachedFunc, bool) {
	p, ok := c.file.Packages[pkgPath]
	if !ok || p.Hash != hash || p.Funcs == nil {
		return nil, false
	}
	return p.Funcs, true
}

// store records a freshly extracted package.
func (c *factCache) store(pkgPath, hash string, funcs map[string]cachedFunc) {
	c.file.Packages[pkgPath] = cachedPackage{Hash: hash, Funcs: funcs}
	c.dirty = true
}

// save writes the cache atomically (tmp + rename) if anything changed.
func (c *factCache) save() error {
	if !c.dirty {
		return nil
	}
	data, err := json.Marshal(c.file)
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".bixlint-cache-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), c.path)
}

// batchHasher computes per-package content hashes with dependency
// closure, memoized across the Batch.
type batchHasher struct {
	byPath map[string]*Package
	memo   map[string]string
	busy   map[string]bool // guards against import cycles (impossible in valid Go, cheap to be safe)
}

func newBatchHasher(b *Batch) *batchHasher {
	h := &batchHasher{
		byPath: make(map[string]*Package, len(b.Pkgs)),
		memo:   make(map[string]string),
		busy:   make(map[string]bool),
	}
	for _, pkg := range b.Pkgs {
		h.byPath[pkg.Path] = pkg
	}
	return h
}

// hash returns the package's content hash, or "" when a source file
// cannot be read (the package is then simply not cached this run).
func (h *batchHasher) hash(pkg *Package) string {
	if v, ok := h.memo[pkg.Path]; ok {
		return v
	}
	if h.busy[pkg.Path] {
		return ""
	}
	h.busy[pkg.Path] = true
	defer delete(h.busy, pkg.Path)

	sum := sha256.New()
	writeStr := func(s string) {
		_, _ = sum.Write([]byte(s)) // hash.Hash.Write never fails
		_, _ = sum.Write([]byte{0})
	}
	writeStr("bixlint-facts")
	writeStr(runtime.Version())
	writeStr(string(rune('0' + factCacheVersion)))
	writeStr(pkg.Path)

	var files []string
	for _, f := range pkg.Files {
		files = append(files, pkg.Fset.Position(f.Package).Filename)
	}
	sort.Strings(files)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return ""
		}
		writeStr(filepath.Base(name))
		_, _ = sum.Write(data)
		_, _ = sum.Write([]byte{0})
	}

	var imports []string
	if pkg.Types != nil {
		for _, imp := range pkg.Types.Imports() {
			imports = append(imports, imp.Path())
		}
	}
	sort.Strings(imports)
	for _, path := range imports {
		writeStr(path)
		if dep, ok := h.byPath[path]; ok {
			dh := h.hash(dep)
			if dh == "" {
				return ""
			}
			writeStr(dh)
		}
	}
	v := hex.EncodeToString(sum.Sum(nil))
	h.memo[pkg.Path] = v
	return v
}
