// Package analysis is a self-contained static-analysis framework for this
// module, built entirely on the standard library's go/ast, go/types and
// go/importer. It exists because the repository's core invariants — the
// bitvec tail-mask contract, allocation-free hot paths, checked storage
// errors, bounded metric label cardinality and lock discipline — are
// exactly the kind of rules that decay silently under refactoring unless a
// tool re-checks them on every change.
//
// Analyzers communicate with the code they check through a small directive
// grammar in doc comments:
//
//	//bix:hotpath          the function and everything it reaches must not
//	                       allocate (checked transitively by hotalloc)
//	//bix:allocok (reason) the function is an audited amortized-growth
//	                       boundary; hotalloc's transitive walk stops here
//	//bix:maskok (reason)  the function maintains the tail-mask invariant
//	                       without calling maskTail (checked by tailmask)
//	//bix:lockheld         every caller holds the mutex (checked by lockheld)
//	//bix:unlockok (reason) the function intentionally returns with a lock
//	                       held (checked by unlockpath)
//	//bix:daemon (reason)  the function is an audited process-lifetime
//	                       goroutine body or spawner; goroutinelife and
//	                       chanprotocol's shutdown-case rule stop here
//	//bix:attrlabel (reason) the function is an audited bounded-cardinality
//	                       seam: metric registrations inside it may carry
//	                       dynamic label values (telemetry-labels requires
//	                       this for the bix_attr_* families and trusts no
//	                       other dynamic labels)
//
// and through `// guarded by <mu>` comments on struct fields (lockheld,
// gocapture, atomicfield).
//
// Interprocedural analyses (hotalloc's transitive walk, lockorder's
// acquisition summaries, poolhygiene's Put-forwarding, goroutinelife's
// spawn walk) share one module-wide call graph with SCC-condensed
// bottom-up fact summaries (callgraph.go), optionally persisted across
// runs in a content-hash keyed fact cache (factcache.go). RunBatch
// analyzes packages on a bounded worker pool in dependency order after a
// serial prepare phase builds the shared indexes (runner.go); output is
// byte-identical at any worker count.
//
// Run `go run ./cmd/bixlint ./...` to apply every analyzer to the module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named rule applied to a loaded package.
type Analyzer struct {
	Name string // short lower-case identifier, used in findings
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Batch    *Batch // all packages of this Run, for module-wide analyses
	findings *[]Finding
}

// Batch is the set of packages loaded for one Run, with lazily built
// module-wide indexes shared by every pass: the function-declaration map
// used to resolve calls across packages (lockorder's acquisition graph,
// tailmask's parameter summaries) and per-analysis memo tables.
type Batch struct {
	Pkgs []*Package

	// CachePath, when non-empty, points the call-graph layer at a
	// persistent fact cache (factcache.go). Set it before the first pass
	// runs; cacheHits/cacheMisses count package-level cache outcomes.
	CachePath   string
	cacheHits   int
	cacheMisses int

	// Workers bounds the parallel analysis pool. Zero means GOMAXPROCS;
	// one forces the serial path. Output is identical either way.
	Workers int

	declsOnce bool
	decls     map[*types.Func]*ast.FuncDecl
	declPkg   map[*types.Func]*Package

	graph          *callGraph                         // module call graph + summaries (callgraph.go)
	atomicIndex    *atomicFieldIndex                  // atomicfield's module-wide field index
	sliceParams    map[*types.Func]*sliceParamSummary // tailmask memo
	lockGraph      []lockOrderEdge                    // module acquisition graph
	lockGraphBuilt bool
	chanIndex      *chanIndex            // module channel usage (chanindex.go)
	closeIndex     map[*types.Func][]int // closeown: params each helper closes
	lifeDone       bool                  // goroutinelife findings computed
	lifeFindings   []lifeFinding

	// prepared flips after the serial prepare phase; from then on every
	// lazily built index above is read-only (runner.go relies on this).
	prepared bool

	timingsMu sync.Mutex
	timings   map[string]time.Duration
}

// NewBatch indexes a package set for module-wide analyses.
func NewBatch(pkgs []*Package) *Batch {
	return &Batch{
		Pkgs:        pkgs,
		sliceParams: make(map[*types.Func]*sliceParamSummary),
	}
}

// funcDecl resolves a function object to its declaration, if it was
// declared in one of the batch's packages.
func (b *Batch) funcDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	if !b.declsOnce {
		b.declsOnce = true
		b.decls = make(map[*types.Func]*ast.FuncDecl)
		b.declPkg = make(map[*types.Func]*Package)
		for _, pkg := range b.Pkgs {
			for _, d := range funcDecls(pkg) {
				if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					b.decls[obj] = d
					b.declPkg[obj] = pkg
				}
			}
		}
	}
	return b.decls[fn], b.declPkg[fn]
}

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportAt(p.Pkg.Fset.Position(pos), format, args...)
}

// reportAt records a finding at an already-resolved position — the form
// the interprocedural layer uses, since cached facts carry
// token.Position values rather than live token.Pos offsets.
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the complete analyzer suite, in the order bixlint runs it: the
// five flow-sensitive rewrites of the original rules, the three
// concurrency analyzers built on the CFG/dataflow layer, the two v3
// analyzers built on the module call graph and the may-facts engine
// (atomicfield, poolhygiene), and the four v4 lifecycle analyzers
// (goroutinelife, chanprotocol, ctxflow, closeown).
var All = []*Analyzer{TailMask, HotAlloc, ErrcheckIO, TelemetryLabels, LockHeld,
	LockOrder, UnlockPath, GoCapture, AtomicField, PoolHygiene,
	GoroutineLife, ChanProtocol, CtxFlow, CloseOwn}

// Select resolves -only/-skip analyzer-selection expressions against the
// full suite: comma-separated analyzer names, where an unknown name is an
// error. only narrows the suite (preserving suite order), then skip
// removes from the result. Empty strings select everything / skip
// nothing.
func Select(only, skip string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	parse := func(list, flag string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		out := make(map[string]bool)
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("analysis: unknown analyzer %q in %s", name, flag)
			}
			out[name] = true
		}
		return out, nil
	}
	keep, err := parse(only, "-only")
	if err != nil {
		return nil, err
	}
	drop, err := parse(skip, "-skip")
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All {
		if keep != nil && !keep[a.Name] {
			continue
		}
		if drop[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package and returns the findings in
// file/line/column/analyzer order. All packages share one Batch, so
// module-wide analyses (the call graph, lockorder's acquisition graph)
// see every package of the run.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunBatch(NewBatch(pkgs), analyzers)
}

// RunBatch is Run over a caller-constructed Batch, which is how bixlint
// threads the fact-cache path and the worker count in. A serial prepare
// phase builds every shared index the selected analyzers read; the
// per-package passes then run on a bounded worker pool in dependency
// order, each (package, analyzer) pair writing its own findings cell.
// Concatenating the cells in the serial loop's nested order before the
// final sort makes the output byte-identical at any worker count.
func RunBatch(batch *Batch, analyzers []*Analyzer) []Finding {
	batch.prepare(analyzers)
	cells := make([][]Finding, len(batch.Pkgs)*len(analyzers))
	runPkg := func(i int) {
		pkg := batch.Pkgs[i]
		for j, a := range analyzers {
			start := time.Now()
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Batch: batch,
				findings: &cells[i*len(analyzers)+j]})
			batch.noteTiming(a.Name, time.Since(start))
		}
	}
	workers := batch.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch.Pkgs) {
		workers = len(batch.Pkgs)
	}
	if workers <= 1 {
		for i := range batch.Pkgs {
			runPkg(i)
		}
	} else {
		scheduleParallel(batch, workers, runPkg)
	}
	var findings []Finding
	for _, cell := range cells {
		findings = append(findings, cell...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// hasDirective reports whether the declaration's doc comment carries the
// //bix:<name> directive (optionally followed by a reason).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//bix:"+name)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}
