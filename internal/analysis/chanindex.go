package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// chanIndex is the module-wide channel-usage index shared by goroutinelife
// and chanprotocol, built once per Batch during prepare. Channels are
// identified with the same selIdentity keys as mutexes and pools: type +
// field for struct channels, package path + name for package-level ones,
// and a position-tagged name for locals. Usage inside a function literal
// is attributed to the enclosing declaration — ownership is a
// per-function-family judgement, and the literals are where the sends and
// receives of a worker pattern actually live.
type chanIndex struct {
	closed  map[string]bool            // keys ever passed to the close builtin
	sends   map[string][]*ast.FuncDecl // key -> decls containing a send
	recvs   map[string][]*ast.FuncDecl // key -> decls containing a receive (<-ch or range)
	closes  []chanCloseSite            // every close site, in batch/file order
	isParam map[types.Object]bool      // channel-typed parameter objects (decl and literal params)
}

// chanCloseSite is one close(ch) call.
type chanCloseSite struct {
	pkg  *Package
	decl *ast.FuncDecl
	key  string
	name string
	pos  token.Pos
}

// isChanType reports whether t is (or points at) a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// closeBuiltinArg returns the argument of a call to the close builtin.
func closeBuiltinArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil, false
	}
	return call.Args[0], true
}

// buildChanIndex scans every function body in the batch.
func buildChanIndex(b *Batch) *chanIndex {
	ci := &chanIndex{
		closed:  make(map[string]bool),
		sends:   make(map[string][]*ast.FuncDecl),
		recvs:   make(map[string][]*ast.FuncDecl),
		isParam: make(map[types.Object]bool),
	}
	addDecl := func(m map[string][]*ast.FuncDecl, key string, decl *ast.FuncDecl) {
		for _, d := range m[key] {
			if d == decl {
				return
			}
		}
		m[key] = append(m[key], decl)
	}
	params := func(info *types.Info, ft *ast.FuncType) {
		if ft == nil || ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isChanType(obj.Type()) {
					ci.isParam[obj] = true
				}
			}
		}
	}
	for _, pkg := range b.Pkgs {
		info := pkg.Info
		for _, decl := range funcDecls(pkg) {
			params(info, decl.Type)
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					params(info, n.Type)
				case *ast.SendStmt:
					if _, _, key := selIdentity(info, ast.Unparen(n.Chan)); key != "" {
						addDecl(ci.sends, key, decl)
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if _, _, key := selIdentity(info, ast.Unparen(n.X)); key != "" {
							addDecl(ci.recvs, key, decl)
						}
					}
				case *ast.RangeStmt:
					if tv, ok := info.Types[n.X]; ok && isChanType(tv.Type) {
						if _, _, key := selIdentity(info, ast.Unparen(n.X)); key != "" {
							addDecl(ci.recvs, key, decl)
						}
					}
				case *ast.CallExpr:
					if arg, ok := closeBuiltinArg(info, n); ok {
						name, _, key := selIdentity(info, ast.Unparen(arg))
						if key != "" {
							ci.closed[key] = true
							ci.closes = append(ci.closes, chanCloseSite{
								pkg: pkg, decl: decl, key: key, name: name, pos: n.Pos(),
							})
						}
					}
				}
				return true
			})
		}
	}
	return ci
}

// loopBodyCanExit reports whether control can leave a loop from inside its
// body: a return, a break binding to this loop (plain at depth zero, or
// labeled with the loop's label), a goto (optimistically assumed to jump
// out), or a panic (the goroutine ends, loudly). Function literals are
// separate control flow and are skipped; so are go and defer statements —
// what they run does not exit this loop.
func loopBodyCanExit(body *ast.BlockStmt, label string) bool {
	exit := false
	var stmts func([]ast.Stmt, int)
	var visit func(ast.Stmt, int)
	visit = func(s ast.Stmt, depth int) {
		if exit || s == nil {
			return
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if (s.Label == nil && depth == 0) ||
					(s.Label != nil && label != "" && s.Label.Name == label) {
					exit = true
				}
			case token.GOTO:
				exit = true
			}
		case *ast.BlockStmt:
			stmts(s.List, depth)
		case *ast.IfStmt:
			visit(s.Init, depth)
			visit(s.Body, depth)
			visit(s.Else, depth)
		case *ast.ForStmt:
			visit(s.Body, depth+1)
		case *ast.RangeStmt:
			visit(s.Body, depth+1)
		case *ast.SwitchStmt:
			visit(s.Body, depth+1)
		case *ast.TypeSwitchStmt:
			visit(s.Body, depth+1)
		case *ast.SelectStmt:
			visit(s.Body, depth+1)
		case *ast.CaseClause:
			stmts(s.Body, depth)
		case *ast.CommClause:
			stmts(s.Body, depth)
		case *ast.LabeledStmt:
			visit(s.Stmt, depth)
		case *ast.DeferStmt, *ast.GoStmt:
			// Not this loop's control flow.
		default:
			inspectShallow(s, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
						exit = true
					}
				}
				return !exit
			})
		}
	}
	stmts = func(list []ast.Stmt, depth int) {
		for _, s := range list {
			visit(s, depth)
		}
	}
	stmts(body.List, 0)
	return exit
}

// loopLabels maps each labeled for/range statement in body to its label,
// so loopBodyCanExit can match labeled breaks.
func loopLabels(body *ast.BlockStmt) map[ast.Stmt]string {
	labels := make(map[ast.Stmt]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			switch ls.Stmt.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				labels[ls.Stmt] = ls.Label.Name
			}
		}
		return true
	})
	return labels
}
