package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockHeld enforces the repository's lock-annotation convention: a struct
// field commented `// guarded by <mu>` may only be touched by functions
// that visibly acquire that mutex (a .<mu>.Lock() or .<mu>.RLock() call in
// the same body) or that declare the transferred obligation with
// `//bix:lockheld` (callers hold the lock — see mutable.rebuild).
//
// The check is intentionally flow-insensitive: it asks "is the lock
// acquired somewhere in this function", not "is it held at this access".
// That misses unlock-then-use bugs but catches the common regression —
// a new accessor added without any locking at all — with zero false
// positives on the deferred-unlock idiom used throughout the repository.
// Composite literals do not count as field accesses, so constructors that
// build the struct before sharing it pass without annotation.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "fields marked `guarded by mu` need the mutex held or a //bix:lockheld directive",
	Run:  runLockHeld,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardComment extracts the mutex name from a field's comments, if any.
func guardComment(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

func runLockHeld(pass *Pass) {
	info := pass.Pkg.Info
	// Pass 1: map guarded field objects to the name of their mutex.
	guarded := make(map[types.Object]string)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := guardComment(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}
	// Pass 2: every function touching a guarded field must lock its mutex.
	for _, fn := range funcDecls(pass.Pkg) {
		if hasDirective(fn.Doc, "lockheld") {
			continue
		}
		locked := make(map[string]bool)
		type access struct {
			sel *ast.SelectorExpr
			mu  string
		}
		var accesses []access
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
					switch x := sel.X.(type) {
					case *ast.SelectorExpr:
						locked[x.Sel.Name] = true
					case *ast.Ident:
						locked[x.Name] = true
					}
				}
			case *ast.SelectorExpr:
				if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
					if mu, ok := guarded[s.Obj()]; ok {
						accesses = append(accesses, access{e, mu})
					}
				}
			}
			return true
		})
		reported := make(map[types.Object]bool)
		for _, a := range accesses {
			if locked[a.mu] {
				continue
			}
			obj := info.Selections[a.sel].Obj()
			if reported[obj] {
				continue
			}
			reported[obj] = true
			pass.Reportf(a.sel.Pos(),
				"%s accesses %s (guarded by %s) without calling %s.Lock or %s.RLock; lock it or annotate //bix:lockheld",
				fn.Name.Name, a.sel.Sel.Name, a.mu, a.mu, a.mu)
		}
	}
}
