package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockHeld enforces the repository's lock-annotation convention: a struct
// field commented `// guarded by <mu>` may only be touched at points where
// that mutex is held, or inside functions that declare the transferred
// obligation with `//bix:lockheld` (callers hold the lock — see
// mutable.rebuild).
//
// The check is path-sensitive: a must-held dataflow analysis over the CFG
// (cfg.go, dataflow.go) computes, at every access, the set of mutexes
// definitely held on all paths reaching it. That catches what the original
// same-body textual check could not — unlock-then-use, an early return
// releasing before a late access, a branch that locks only on one arm —
// while keeping its zero-false-positive behavior on the deferred-unlock
// idiom: `defer mu.Unlock()` releases at exit, after every access, so it
// never removes the lock from the in-flight set.
//
// Function literals inherit the lock state at their definition point
// (callbacks like bitvec's Ones visitor run synchronously under the
// caller's locks), except literals launched by a go statement, which start
// from an empty lock set and are checked by the gocapture analyzer
// instead. Composite literals do not count as field accesses, so
// constructors that build the struct before sharing it pass without
// annotation.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "fields marked `guarded by mu` need the mutex held at the access or a //bix:lockheld directive",
	Run:  runLockHeld,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

// guardComment extracts the mutex name from a field's comments, if any.
func guardComment(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// lockTransfer applies the lock effects of one CFG node to a must-held
// set keyed by mutex short name. Defer and go statements contribute
// nothing: a deferred release runs at exit, and a goroutine's effects are
// concurrent, not sequential.
func lockTransfer(info *types.Info, n ast.Node, s StringSet) StringSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return s
	}
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if ref, ok := lockCall(info, call); ok {
				if ref.op.acquires() {
					s = s.With(ref.name)
				} else {
					name := ref.name
					s = s.Without(func(k string) bool { return k == name })
				}
			}
		}
		return true
	})
	return s
}

// topFuncLits returns the function literals in n that are not nested
// inside another literal of n.
func topFuncLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

func runLockHeld(pass *Pass) {
	guarded := collectGuarded(pass.Pkg)
	if len(guarded) == 0 {
		return
	}
	for _, fn := range funcDecls(pass.Pkg) {
		if hasDirective(fn.Doc, "lockheld") {
			continue
		}
		c := &lockHeldChecker{pass: pass, guarded: guarded, fnName: fn.Name.Name,
			reported: make(map[types.Object]bool)}
		c.checkBody(fn.Body, NewStringSet())
	}
}

type lockHeldChecker struct {
	pass     *Pass
	guarded  map[types.Object]string
	fnName   string
	reported map[types.Object]bool // one finding per field per function
}

func (c *lockHeldChecker) checkBody(body *ast.BlockStmt, entry StringSet) {
	info := c.pass.Pkg.Info
	cfg := BuildCFG(c.fnName, body)
	facts := SolveForward(cfg, FlowProblem{
		Entry: entry,
		Transfer: func(b *Block, in FlowFact) FlowFact {
			s := in.(StringSet)
			for _, n := range b.Nodes {
				s = lockTransfer(info, n, s)
			}
			return s
		},
		Join: IntersectSets,
	})
	// Re-walk each reachable block, checking accesses against the lock
	// state at their program point and collecting literals with the state
	// at their definition point.
	type litAt struct {
		lit  *ast.FuncLit
		held StringSet
	}
	var lits []litAt
	for _, b := range cfg.Blocks {
		in, ok := facts[b]
		if !ok {
			continue // unreachable: no path, no obligation
		}
		s := in.(StringSet)
		for _, n := range b.Nodes {
			goTarget := map[*ast.FuncLit]bool{}
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					goTarget[lit] = true
				}
			}
			for _, lit := range topFuncLits(n) {
				if goTarget[lit] {
					continue // empty entry set, reported by gocapture
				}
				lits = append(lits, litAt{lit, s})
			}
			for _, use := range guardedUses(info, c.guarded, n) {
				if s[use.mu] {
					continue
				}
				obj := info.Selections[use.sel].Obj()
				if c.reported[obj] {
					continue
				}
				c.reported[obj] = true
				c.pass.Reportf(use.sel.Pos(),
					"%s accesses %s (guarded by %s) without holding %s at this point; lock it on every path or annotate //bix:lockheld",
					c.fnName, use.sel.Sel.Name, use.mu, use.mu)
			}
			s = lockTransfer(info, n, s)
		}
	}
	for _, l := range lits {
		c.checkBody(l.lit.Body, l.held)
	}
}
