package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// factCacheBatch runs HotAlloc over pkgs through a caller-built Batch
// wired to the given cache path, returning the findings and the batch for
// hit/miss inspection.
func factCacheBatch(t *testing.T, pkgs []*Package, cachePath string) ([]Finding, *Batch) {
	t.Helper()
	b := NewBatch(pkgs)
	b.CachePath = cachePath
	return RunBatch(b, []*Analyzer{HotAlloc}), b
}

// TestFactCacheColdWarm: a cold run misses for every batch package and
// populates the cache; a warm run over the same (unchanged) packages hits
// for all of them and produces byte-identical findings.
func TestFactCacheColdWarm(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "hotpath_multi/helper"),
		loadFixture(t, "hotpath_multi"),
	}
	cachePath := filepath.Join(t.TempDir(), "facts.json")

	cold, b1 := factCacheBatch(t, pkgs, cachePath)
	if b1.cacheMisses != len(pkgs) || b1.cacheHits != 0 {
		t.Fatalf("cold run: %d hits / %d misses, want 0 / %d", b1.cacheHits, b1.cacheMisses, len(pkgs))
	}
	if len(cold) == 0 {
		t.Fatal("hotpath_multi fixtures produced no findings")
	}
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("cold run did not write the cache: %v", err)
	}

	warm, b2 := factCacheBatch(t, pkgs, cachePath)
	if b2.cacheHits != len(pkgs) || b2.cacheMisses != 0 {
		t.Fatalf("warm run: %d hits / %d misses, want %d / 0", b2.cacheHits, b2.cacheMisses, len(pkgs))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold, warm)
	}
}

// TestFactCacheContentInvalidation: the cache keys on file content, not
// mtime. Touching a source file on disk (even with the in-memory AST
// unchanged) changes the package hash, so the next run re-extracts instead
// of serving stale facts.
func TestFactCacheContentInvalidation(t *testing.T) {
	// Copy a single-file fixture where this test may mutate it.
	src, err := os.ReadFile(filepath.Join("testdata", "src", "hotalloc_bad", "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(file, src, 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := fixtureLoader(t).LoadDir(dir, "bitmapindex/fixture/factcache_tmp")
	if err != nil {
		t.Fatalf("load temp fixture: %v", err)
	}
	cachePath := filepath.Join(dir, "facts.json")

	cold, _ := factCacheBatch(t, []*Package{pkg}, cachePath)
	if _, b := factCacheBatch(t, []*Package{pkg}, cachePath); b.cacheHits != 1 {
		t.Fatalf("warm run before edit: %d hits, want 1", b.cacheHits)
	}

	if err := os.WriteFile(file, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after, b := factCacheBatch(t, []*Package{pkg}, cachePath)
	if b.cacheMisses != 1 || b.cacheHits != 0 {
		t.Fatalf("run after edit: %d hits / %d misses, want 0 / 1", b.cacheHits, b.cacheMisses)
	}
	if !reflect.DeepEqual(cold, after) {
		t.Errorf("re-extracted findings differ:\nbefore: %v\nafter: %v", cold, after)
	}
}

// TestFactCacheCorruptAndVersionMismatch: a corrupt or version-mismatched
// cache file degrades to an empty cache instead of failing the run.
func TestFactCacheCorruptAndVersionMismatch(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c := openFactCache(corrupt); len(c.file.Packages) != 0 {
		t.Errorf("corrupt cache loaded %d packages, want 0", len(c.file.Packages))
	}

	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale,
		[]byte(`{"version":-1,"go":"go0.0","packages":{"p":{"hash":"h","funcs":{}}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if c := openFactCache(stale); len(c.file.Packages) != 0 {
		t.Errorf("version-mismatched cache loaded %d packages, want 0", len(c.file.Packages))
	}

	// And a stored entry only resolves under the exact hash it was stored with.
	c := openFactCache(filepath.Join(dir, "fresh.json"))
	c.store("p", "h1", map[string]cachedFunc{})
	if _, ok := c.lookup("p", "h2"); ok {
		t.Error("lookup with a different hash must miss")
	}
	if _, ok := c.lookup("p", "h1"); !ok {
		t.Error("lookup with the stored hash must hit")
	}
}
