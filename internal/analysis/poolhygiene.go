package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// PoolHygiene audits sync.Pool usage with the same may-facts machinery as
// unlockpath: a value obtained from Pool.Get is an obligation that must be
// discharged on every path out of the function. Three rules:
//
//   - Leak: a Get-bound variable that can reach function exit (including
//     explicit panic edges) without being Put back, returned to the
//     caller, stored into a longer-lived structure, or handed to a module
//     function that Puts its parameter (the call graph's PoolPutParams
//     summary resolves that). A `defer pool.Put(x)` — or a deferred call,
//     possibly inside a deferred closure, to a Put-forwarding helper —
//     discharges all paths at once, exactly like a deferred Unlock.
//   - Use after Put: once a value is Put, the pool owns it; any later
//     read or write races with the next Get.
//   - Discarded Get: `pool.Get()` as a statement (or assigned to _) takes
//     a value out of the pool and drops it on the floor.
//
// Tracking is by-variable and deliberately modest: only single-value
// bindings (`x := pool.Get()`, with or without a single-value type
// assertion) create an obligation. The comma-ok form
// `x, ok := pool.Get().(*T)` is untracked by design — it is the idiom for
// "discard on shape mismatch", where the discard is the point.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc:  "every sync.Pool Get must reach a Put (or an ownership transfer) on all paths, and never be used after Put",
	Run:  runPoolHygiene,
}

// poolRef is one resolved sync.Pool Get/Put call site.
type poolRef struct {
	isGet bool
	name  string       // the pool variable's short name, for messages
	obj   types.Object // the pool variable, when resolvable
	key   string       // module-wide pool identity (selIdentity)
	call  *ast.CallExpr
}

// poolCall resolves a call to (*sync.Pool).Get or Put, on a pool we can
// name. Pools reached through arbitrary expressions (map lookups, channel
// receives) yield no identity and are skipped.
func poolCall(info *types.Info, call *ast.CallExpr) (poolRef, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return poolRef{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return poolRef{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !strings.Contains(sig.Recv().Type().String(), "Pool") {
		return poolRef{}, false
	}
	ref := poolRef{isGet: sel.Sel.Name == "Get", call: call}
	ref.name, ref.obj, ref.key = selIdentity(info, sel.X)
	if ref.key == "" {
		return poolRef{}, false
	}
	return ref, true
}

// Obligation lattice elements mirror unlockpath's acqElem: each live fact
// is "kind|pool|var|varObjPos|sitePos", where kind is "get" (value checked
// out, must be discharged) or "put" (value surrendered, must not be used).
func poolElem(kind, pool, varName string, objPos, sitePos token.Pos) string {
	return kind + "|" + pool + "|" + varName + "|" +
		strconv.Itoa(int(objPos)) + "|" + strconv.Itoa(int(sitePos))
}

func parsePoolElem(e string) (kind, pool, varName string, objPos, sitePos token.Pos) {
	parts := strings.SplitN(e, "|", 5)
	op, _ := strconv.Atoi(parts[3])
	sp, _ := strconv.Atoi(parts[4])
	return parts[0], parts[1], parts[2], token.Pos(op), token.Pos(sp)
}

func runPoolHygiene(pass *Pass) {
	for _, fn := range funcDecls(pass.Pkg) {
		checkPoolPaths(pass, fn.Name.Name, fn.Body)
		for _, lit := range funcLits(fn.Body) {
			checkPoolPaths(pass, fn.Name.Name+" (func literal)", lit.Body)
		}
	}
}

func checkPoolPaths(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := batchGraph(pass.Batch)

	// Rule 3 is syntactic and needs no dataflow.
	reportDiscardedGets(pass, name, body)

	cfg := BuildCFG(name, body)
	deferred := poolDeferredDischarges(info, g, cfg)
	transfer := func(b *Block, in FlowFact) FlowFact {
		s := in.(StringSet)
		for _, n := range b.Nodes {
			s = poolTransfer(info, g, n, s)
		}
		return s
	}
	facts := SolveForward(cfg, FlowProblem{Entry: NewStringSet(), Transfer: transfer, Join: UnionSets})

	// Rule 1: obligations live at exit, minus defer-discharged variables.
	if exitIn, ok := facts[cfg.Exit]; ok {
		for _, e := range exitIn.(StringSet).Sorted() {
			kind, pool, varName, objPos, sitePos := parsePoolElem(e)
			if kind != "get" || deferred[objPos] {
				continue
			}
			pass.Reportf(sitePos,
				"%s: %s taken from pool %s may reach function exit without a %s.Put on every path (including panic edges); defer the Put or return it on all branches",
				name, varName, pool, pool)
		}
	}

	// Rule 2: re-walk with in-facts, flagging uses of surrendered values.
	reported := make(map[string]bool)
	for _, blk := range cfg.Blocks {
		in, ok := facts[blk]
		if !ok {
			continue
		}
		s := in.(StringSet)
		for _, n := range blk.Nodes {
			checkUseAfterPut(pass, info, name, n, s, reported)
			s = poolTransfer(info, g, n, s)
		}
	}
}

// identObj resolves a plain identifier expression to its object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// getPoolCall unwraps an assignment RHS to a Pool.Get call: parens and a
// single-value type assertion (`pool.Get().(*T)`) are transparent.
func getPoolCall(info *types.Info, e ast.Expr) (poolRef, bool) {
	x := ast.Unparen(e)
	if ta, ok := x.(*ast.TypeAssertExpr); ok && ta.Type != nil {
		x = ast.Unparen(ta.X)
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return poolRef{}, false
	}
	ref, ok := poolCall(info, call)
	if !ok || !ref.isGet {
		return poolRef{}, false
	}
	return ref, true
}

// poolTransfer applies one CFG node's effect on the obligation set. It is
// pure — the solver re-runs it to fixpoint — so all reporting lives
// elsewhere.
func poolTransfer(info *types.Info, g *callGraph, n ast.Node, s StringSet) StringSet {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return s // handled by poolDeferredDischarges / not this path
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) == len(m.Rhs) {
				for i := range m.Rhs {
					s = poolAssign(info, m.Lhs[i], m.Rhs[i], s)
				}
			}
		case *ast.ValueSpec:
			if len(m.Names) == len(m.Values) {
				for i := range m.Values {
					s = poolAssign(info, m.Names[i], m.Values[i], s)
				}
			}
		case *ast.ReturnStmt:
			// Returning the value transfers ownership to the caller.
			for _, r := range m.Results {
				if obj := identObj(info, r); obj != nil {
					s = dropPoolFacts(s, obj.Pos(), "get")
				}
			}
		case *ast.CallExpr:
			s = poolCallEffect(info, g, m, s)
		}
		return true
	})
	return s
}

// poolAssign handles one lhs := rhs pair.
func poolAssign(info *types.Info, lhs, rhs ast.Expr, s StringSet) StringSet {
	if ref, ok := getPoolCall(info, rhs); ok {
		if obj := identObj(info, lhs); obj != nil {
			s = dropPoolFacts(s, obj.Pos(), "") // rebinding clears old history
			id := ast.Unparen(lhs).(*ast.Ident)
			s = s.With(poolElem("get", ref.name, id.Name, obj.Pos(), ref.call.Pos()))
		}
		return s
	}
	// Storing the value into a field or element is a deliberate ownership
	// transfer to the containing structure; rebinding the variable to
	// anything else abandons the old value's tracking.
	if obj := identObj(info, rhs); obj != nil {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			s = dropPoolFacts(s, obj.Pos(), "get")
		}
	}
	if obj := identObj(info, lhs); obj != nil {
		s = dropPoolFacts(s, obj.Pos(), "")
	}
	return s
}

// poolCallEffect handles Put calls and calls into module functions whose
// summary says a parameter reaches a Put (PoolPutParams).
func poolCallEffect(info *types.Info, g *callGraph, call *ast.CallExpr, s StringSet) StringSet {
	if ref, ok := poolCall(info, call); ok {
		if !ref.isGet && len(call.Args) == 1 {
			if obj := identObj(info, call.Args[0]); obj != nil {
				id := ast.Unparen(call.Args[0]).(*ast.Ident)
				s = dropPoolFacts(s, obj.Pos(), "get")
				s = s.With(poolElem("put", ref.name, id.Name, obj.Pos(), call.Pos()))
			}
		}
		return s
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return s
	}
	n := g.nodes[callee.FullName()]
	if n == nil || n.facts == nil {
		return s
	}
	for _, i := range n.facts.PoolPutParams {
		if i >= len(call.Args) {
			continue
		}
		if obj := identObj(info, call.Args[i]); obj != nil {
			id := ast.Unparen(call.Args[i]).(*ast.Ident)
			s = dropPoolFacts(s, obj.Pos(), "get")
			s = s.With(poolElem("put", callee.Name(), id.Name, obj.Pos(), call.Pos()))
		}
	}
	return s
}

// dropPoolFacts removes facts for one tracked variable; kind "" drops
// both get and put facts (rebinding), "get" discharges the obligation but
// keeps any put fact alive (use-after-put still applies).
func dropPoolFacts(s StringSet, objPos token.Pos, kind string) StringSet {
	return s.Without(func(e string) bool {
		k, _, _, op, _ := parsePoolElem(e)
		return op == objPos && (kind == "" || k == kind)
	})
}

// poolDeferredDischarges collects variables whose Put is deferred —
// directly (`defer pool.Put(x)`), through a Put-forwarding module helper
// (`defer putSegRegs(rs)`), or inside a deferred closure — which, like a
// deferred Unlock, credits every exit path.
func poolDeferredDischarges(info *types.Info, g *callGraph, c *CFG) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	record := func(call *ast.CallExpr) {
		if ref, ok := poolCall(info, call); ok {
			if !ref.isGet && len(call.Args) == 1 {
				if obj := identObj(info, call.Args[0]); obj != nil {
					out[obj.Pos()] = true
				}
			}
			return
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return
		}
		n := g.nodes[callee.FullName()]
		if n == nil || n.facts == nil {
			return
		}
		for _, i := range n.facts.PoolPutParams {
			if i < len(call.Args) {
				if obj := identObj(info, call.Args[i]); obj != nil {
					out[obj.Pos()] = true
				}
			}
		}
	}
	for _, d := range c.Defers {
		record(d.Call)
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
	}
	return out
}

// checkUseAfterPut flags identifier uses of a variable with a live put
// fact. Assignment targets are exempt (rebinding the variable is how it
// becomes usable again), as is handing the variable to another Put-shaped
// call (double Put is reported as a use: the pool owns the value).
func checkUseAfterPut(pass *Pass, info *types.Info, name string, n ast.Node, s StringSet, reported map[string]bool) {
	if len(s) == 0 {
		return
	}
	type putInfo struct{ pool, varName string }
	puts := make(map[token.Pos]putInfo)
	for e := range s {
		if kind, pool, varName, objPos, _ := parsePoolElem(e); kind == "put" {
			puts[objPos] = putInfo{pool, varName}
		}
	}
	if len(puts) == 0 {
		return
	}
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	lhsTargets := make(map[*ast.Ident]bool)
	inspectShallow(n, func(m ast.Node) bool {
		if as, ok := m.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					lhsTargets[id] = true
				}
			}
		}
		return true
	})
	inspectShallow(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || lhsTargets[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		pi, ok := puts[obj.Pos()]
		if !ok {
			return true
		}
		key := name + "|" + strconv.Itoa(int(obj.Pos())) + "|" + strconv.Itoa(int(id.Pos()))
		if reported[key] {
			return true
		}
		reported[key] = true
		pass.Reportf(id.Pos(),
			"%s: uses %s after it was returned to pool %s with Put; the pool owns the value once Put, so reorder the Put or re-Get",
			name, pi.varName, pi.pool)
		return true
	})
}

// reportDiscardedGets flags Pool.Get results that are thrown away.
func reportDiscardedGets(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if ref, ok := poolCall(info, call); ok && ref.isGet {
					pass.Reportf(call.Pos(),
						"%s: discards the result of %s.Get(); the checked-out value never returns to the pool",
						name, ref.name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				ref, ok := getPoolCall(info, rhs)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(ref.call.Pos(),
						"%s: discards the result of %s.Get(); the checked-out value never returns to the pool",
						name, ref.name)
				}
			}
		}
		return true
	})
}
