// Package roaring implements a Roaring-style hybrid-container compressed
// bitmap (Chambi, Lemire, Kaser, Godin — "Better bitmap performance with
// Roaring bitmaps", arXiv:1402.6407), the third compression backend next
// to the dense bitvec kernel and WAH run-length coding.
//
// The row space is split into chunks of 2^16 rows keyed by the high 16
// bits of the row id. Each non-empty chunk is stored in whichever of
// three container forms is smallest for its contents:
//
//   - array: a sorted []uint16 of the set low bits (sparse chunks,
//     2 bytes per set row);
//   - bitmap: a packed 1024-word dense bitmap (8 KiB, for chunks too
//     dense for an array);
//   - run: sorted, non-overlapping, non-adjacent [start,last] intervals
//     (4 bytes per run — the form that wins on sorted/clustered data,
//     where WAH needs two 8-byte words per run boundary).
//
// All logical operations (And/Or/Xor/AndNot) and Count run directly on
// the container forms; a full-length dense vector is never materialized
// except by ToVector. Containers are kept canonical after every
// operation: empty chunks are dropped and each survivor is re-encoded in
// its minimal form, so two Bitmaps holding the same bits are structurally
// identical (Equal is a cheap structural walk).
package roaring

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"bitmapindex/internal/bitvec"
)

const (
	chunkBits  = 1 << 16 // rows per chunk
	chunkWords = chunkBits / 64

	// arrayCutoff is the container cardinality at which an array (2 bytes
	// per entry) stops being smaller than the 8 KiB packed bitmap.
	arrayCutoff = 4096

	typeArray  = uint8(0)
	typeBitmap = uint8(1)
	typeRun    = uint8(2)
)

// run is one inclusive interval [start, last] of set low bits.
type run struct{ start, last uint16 }

// container holds one chunk's bits in exactly one of the three forms,
// selected by typ. card caches the container's popcount; canonical
// containers always have card >= 1.
type container struct {
	typ  uint8
	card int
	arr  []uint16 // typeArray: sorted set positions
	bits []uint64 // typeBitmap: chunkWords packed words
	runs []run    // typeRun: sorted, non-overlapping, non-adjacent
}

// Bitmap is a roaring-compressed bitmap of fixed logical length. Chunks
// absent from keys are all-zero. keys is sorted ascending and parallel to
// containers.
type Bitmap struct {
	nbits      int
	keys       []uint16
	containers []container
}

// New returns an empty (all zeros) bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic("roaring: negative length")
	}
	return &Bitmap{nbits: n}
}

// Len returns the logical length in bits.
func (b *Bitmap) Len() int { return b.nbits }

// Count returns the number of set bits, from the cached container
// cardinalities — no decompression.
//
//bix:hotpath
func (b *Bitmap) Count() int {
	c := 0
	for i := range b.containers {
		c += b.containers[i].card
	}
	return c
}

// Containers returns the number of non-empty chunks.
func (b *Bitmap) Containers() int { return len(b.containers) }

// ContainerKinds returns how many containers are stored in each form
// (array, bitmap, run) — the space study and the container-transition
// tests read it.
func (b *Bitmap) ContainerKinds() (arrays, bitmaps, runs int) {
	for i := range b.containers {
		switch b.containers[i].typ {
		case typeArray:
			arrays++
		case typeBitmap:
			bitmaps++
		default:
			runs++
		}
	}
	return
}

// SizeBytes returns the compressed size in bytes: the serialized payload
// minus the fixed 12-byte header, i.e. 3 bytes of per-container directory
// (key + type) plus each container's body. Comparable to
// bitvec.Vector.SizeBytes and wah.Bitmap.SizeBytes.
func (b *Bitmap) SizeBytes() int {
	n := 0
	for i := range b.containers {
		n += 3 + b.containers[i].body()
	}
	return n
}

// body returns the serialized body size of one container in bytes
// (excluding the key/type directory entry).
func (c *container) body() int {
	switch c.typ {
	case typeArray:
		return 2 + 2*len(c.arr) // uint16 count + entries
	case typeBitmap:
		return 8 * chunkWords
	default:
		return 2 + 4*len(c.runs) // uint16 count + [start,last] pairs
	}
}

// Get reports whether bit i is set. It panics if i is out of range.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.nbits {
		panic(fmt.Sprintf("roaring: index %d out of range [0,%d)", i, b.nbits))
	}
	ci, ok := b.find(uint16(i >> 16))
	if !ok {
		return false
	}
	return b.containers[ci].get(uint16(i & 0xffff))
}

// find locates the container for chunk key, by binary search.
func (b *Bitmap) find(key uint16) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

func (c *container) get(low uint16) bool {
	switch c.typ {
	case typeArray:
		lo, hi := 0, len(c.arr)
		for lo < hi {
			mid := (lo + hi) / 2
			if c.arr[mid] < low {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(c.arr) && c.arr[lo] == low
	case typeBitmap:
		return c.bits[low>>6]&(1<<(low&63)) != 0
	default:
		for _, r := range c.runs {
			if low < r.start {
				return false
			}
			if low <= r.last {
				return true
			}
		}
		return false
	}
}

// FromVector compresses a dense vector.
func FromVector(v *bitvec.Vector) *Bitmap {
	b := New(v.Len())
	words := v.Words()
	nchunks := (v.Len() + chunkBits - 1) / chunkBits
	var cw [chunkWords]uint64
	for k := 0; k < nchunks; k++ {
		base := k * chunkWords
		card := 0
		for i := 0; i < chunkWords; i++ {
			w := uint64(0)
			if base+i < len(words) {
				w = words[base+i]
			}
			cw[i] = w
			card += bits.OnesCount64(w)
		}
		if card == 0 {
			continue
		}
		b.keys = append(b.keys, uint16(k))
		b.containers = append(b.containers, packContainer(&cw, card))
	}
	return b
}

// packContainer encodes one chunk's words in its minimal form. card must
// be the popcount of cw and must be >= 1. The form rule compares payload
// sizes (array 2*card, run 4*nruns, bitmap 8192 bytes — count headers
// excluded, as in classic roaring): run wins when strictly smallest,
// otherwise array up to arrayCutoff entries, otherwise bitmap.
func packContainer(cw *[chunkWords]uint64, card int) container {
	nruns := countRuns(cw)
	if runWins(card, nruns) {
		return runsFromWords(cw, card, nruns)
	}
	if card <= arrayCutoff {
		return arrayFromWords(cw, card)
	}
	c := container{typ: typeBitmap, card: card, bits: make([]uint64, chunkWords)}
	copy(c.bits, cw[:])
	return c
}

// runWins reports whether a run container is strictly smaller than both
// the array and bitmap forms for the given cardinality and run count.
func runWins(card, nruns int) bool {
	runB, bmB := 4*nruns, 8*chunkWords
	return runB < 2*card && runB < bmB
}

// countRuns returns the number of maximal runs of consecutive set bits.
//
//bix:hotpath
func countRuns(cw *[chunkWords]uint64) int {
	n := 0
	prev := false // bit 63 of the previous word
	for _, w := range cw {
		// Runs starting in this word: set bits whose predecessor is clear.
		// Bit 0's predecessor is the previous word's bit 63.
		starts := w &^ (w << 1)
		if prev {
			starts &^= 1
		}
		n += bits.OnesCount64(starts)
		prev = w>>63 != 0
	}
	return n
}

func arrayFromWords(cw *[chunkWords]uint64, card int) container {
	c := container{typ: typeArray, card: card, arr: make([]uint16, 0, card)}
	for wi, w := range cw {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			c.arr = append(c.arr, uint16(wi*64+b))
			w &= w - 1
		}
	}
	return c
}

func runsFromWords(cw *[chunkWords]uint64, card, nruns int) container {
	c := container{typ: typeRun, card: card, runs: make([]run, 0, nruns)}
	pos := nextBit(cw, 0, false)
	for pos < chunkBits {
		end := nextBit(cw, pos+1, true) // first clear bit after the run start
		c.runs = append(c.runs, run{uint16(pos), uint16(end - 1)})
		pos = nextBit(cw, end, false)
	}
	return c
}

// nextBit returns the position of the first bit >= from whose value is
// clear (invert=true) or set (invert=false), or chunkBits if none.
func nextBit(cw *[chunkWords]uint64, from int, invert bool) int {
	for from < chunkBits {
		w := cw[from>>6]
		if invert {
			w = ^w
		}
		w >>= uint(from & 63)
		if w != 0 {
			return from + bits.TrailingZeros64(w)
		}
		from = (from | 63) + 1
	}
	return chunkBits
}

// ToVector expands the bitmap to a dense vector of the same length. The
// bits are staged in a local word buffer and installed via SetPayload —
// Words() is read-only outside package bitvec.
func (b *Bitmap) ToVector() *bitvec.Vector {
	v := bitvec.New(b.nbits)
	if b.nbits == 0 {
		return v
	}
	words := make([]uint64, (b.nbits+63)/64)
	for i := range b.containers {
		base := int(b.keys[i]) * chunkWords
		b.containers[i].writeWords(words[base:min(base+chunkWords, len(words))])
	}
	payload := make([]byte, (b.nbits+7)/8)
	for i := range payload {
		payload[i] = byte(words[i/8] >> uint(8*(i%8)))
	}
	if err := v.SetPayload(b.nbits, payload); err != nil {
		panic("roaring: internal: " + err.Error())
	}
	return v
}

// writeWords ORs the container's bits into dst, which holds the chunk's
// words (possibly truncated at the vector tail).
//
//bix:maskok (containers never hold bits past the logical length; see canonical invariant)
func (c *container) writeWords(dst []uint64) {
	switch c.typ {
	case typeArray:
		for _, p := range c.arr {
			dst[p>>6] |= 1 << (p & 63)
		}
	case typeBitmap:
		copy(dst, c.bits[:len(dst)])
	default:
		for _, r := range c.runs {
			setWordRange(dst, int(r.start), int(r.last))
		}
	}
}

// setWordRange sets bits [start, last] (inclusive) in a word slice.
func setWordRange(dst []uint64, start, last int) {
	sw, lw := start>>6, last>>6
	first := ^uint64(0) << uint(start&63)
	lastM := ^uint64(0) >> uint(63-last&63)
	if sw == lw {
		dst[sw] |= first & lastM
		return
	}
	dst[sw] |= first
	for w := sw + 1; w < lw; w++ {
		dst[w] = ^uint64(0)
	}
	dst[lw] |= lastM
}

// Equal reports whether two bitmaps have identical length and contents.
// Canonical form makes this a structural comparison.
func (b *Bitmap) Equal(o *Bitmap) bool {
	if b.nbits != o.nbits || len(b.keys) != len(o.keys) {
		return false
	}
	for i := range b.keys {
		if b.keys[i] != o.keys[i] || !b.containers[i].equal(&o.containers[i]) {
			return false
		}
	}
	return true
}

func (c *container) equal(o *container) bool {
	if c.typ != o.typ || c.card != o.card {
		return false
	}
	switch c.typ {
	case typeArray:
		for i := range c.arr {
			if c.arr[i] != o.arr[i] {
				return false
			}
		}
	case typeBitmap:
		for i := range c.bits {
			if c.bits[i] != o.bits[i] {
				return false
			}
		}
	default:
		for i := range c.runs {
			if c.runs[i] != o.runs[i] {
				return false
			}
		}
	}
	return true
}

// MarshalBinary serializes the bitmap:
//
//	8 bytes  little-endian bit length
//	4 bytes  little-endian container count
//	per container: 2-byte key, 1-byte type, body
//	  array:  2-byte count, count 2-byte entries
//	  bitmap: 1024 8-byte words
//	  run:    2-byte count, count (2-byte start, 2-byte last) pairs
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12, 12+b.SizeBytes())
	binary.LittleEndian.PutUint64(out, uint64(b.nbits))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(b.containers)))
	var u16 [2]byte
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(u16[:], v)
		out = append(out, u16[0], u16[1])
	}
	for i := range b.containers {
		c := &b.containers[i]
		put16(b.keys[i])
		out = append(out, c.typ)
		switch c.typ {
		case typeArray:
			put16(uint16(len(c.arr)))
			for _, p := range c.arr {
				put16(p)
			}
		case typeBitmap:
			var w8 [8]byte
			for _, w := range c.bits {
				binary.LittleEndian.PutUint64(w8[:], w)
				out = append(out, w8[:]...)
			}
		default:
			put16(uint16(len(c.runs)))
			for _, r := range c.runs {
				put16(r.start)
				put16(r.last)
			}
		}
	}
	return out, nil
}

// UnmarshalBinary restores a bitmap serialized by MarshalBinary,
// validating the canonical-form invariants so a corrupted or adversarial
// payload is rejected rather than producing a bitmap whose Count,
// operations and ToVector disagree.
func (b *Bitmap) UnmarshalBinary(p []byte) error {
	if len(p) < 12 {
		return fmt.Errorf("roaring: truncated header (%d bytes)", len(p))
	}
	n64 := binary.LittleEndian.Uint64(p)
	if n64 > uint64(int(^uint(0)>>1)) {
		return fmt.Errorf("roaring: length %d overflows int", n64)
	}
	nbits := int(n64)
	nc := int(binary.LittleEndian.Uint32(p[8:]))
	maxChunks := (nbits + chunkBits - 1) / chunkBits
	if nc > maxChunks {
		return fmt.Errorf("roaring: %d containers exceed %d chunks for length %d", nc, maxChunks, nbits)
	}
	pos := 12
	need := func(n int) error {
		if len(p)-pos < n {
			return fmt.Errorf("roaring: truncated payload at byte %d", pos)
		}
		return nil
	}
	nb := &Bitmap{nbits: nbits}
	prevKey := -1
	for i := 0; i < nc; i++ {
		if err := need(3); err != nil {
			return err
		}
		key := binary.LittleEndian.Uint16(p[pos:])
		typ := p[pos+2]
		pos += 3
		if int(key) <= prevKey {
			return fmt.Errorf("roaring: container keys not strictly ascending at %d", key)
		}
		if int(key) >= maxChunks {
			return fmt.Errorf("roaring: container key %d outside length %d", key, nbits)
		}
		prevKey = int(key)
		var c container
		switch typ {
		case typeArray:
			if err := need(2); err != nil {
				return err
			}
			cnt := int(binary.LittleEndian.Uint16(p[pos:]))
			pos += 2
			if cnt == 0 || cnt > arrayCutoff {
				return fmt.Errorf("roaring: array container cardinality %d out of (0,%d]", cnt, arrayCutoff)
			}
			if err := need(2 * cnt); err != nil {
				return err
			}
			c = container{typ: typeArray, card: cnt, arr: make([]uint16, cnt)}
			for j := 0; j < cnt; j++ {
				c.arr[j] = binary.LittleEndian.Uint16(p[pos:])
				pos += 2
				if j > 0 && c.arr[j] <= c.arr[j-1] {
					return fmt.Errorf("roaring: array container not strictly ascending")
				}
			}
		case typeBitmap:
			if err := need(8 * chunkWords); err != nil {
				return err
			}
			c = container{typ: typeBitmap, bits: make([]uint64, chunkWords)}
			for j := 0; j < chunkWords; j++ {
				c.bits[j] = binary.LittleEndian.Uint64(p[pos:])
				c.card += bits.OnesCount64(c.bits[j])
				pos += 8
			}
			if c.card <= arrayCutoff {
				return fmt.Errorf("roaring: bitmap container cardinality %d should be an array", c.card)
			}
		case typeRun:
			if err := need(2); err != nil {
				return err
			}
			cnt := int(binary.LittleEndian.Uint16(p[pos:]))
			pos += 2
			if cnt == 0 {
				return fmt.Errorf("roaring: empty run container")
			}
			if err := need(4 * cnt); err != nil {
				return err
			}
			c = container{typ: typeRun, runs: make([]run, cnt)}
			for j := 0; j < cnt; j++ {
				r := run{binary.LittleEndian.Uint16(p[pos:]), binary.LittleEndian.Uint16(p[pos+2:])}
				pos += 4
				if r.last < r.start {
					return fmt.Errorf("roaring: inverted run [%d,%d]", r.start, r.last)
				}
				if j > 0 && int(r.start) <= int(c.runs[j-1].last)+1 {
					return fmt.Errorf("roaring: runs overlap or touch")
				}
				c.runs[j] = r
				c.card += int(r.last) - int(r.start) + 1
			}
		default:
			return fmt.Errorf("roaring: unknown container type %d", typ)
		}
		// The container must stay inside the logical length and in its
		// canonical (minimal) form, so Count/ops/serialization agree.
		if int(key) == maxChunks-1 {
			if rem := nbits & (chunkBits - 1); rem != 0 && c.maxBit() >= rem {
				return fmt.Errorf("roaring: container %d has bits past length %d", key, nbits)
			}
		}
		if !c.isCanonicalForm() {
			return fmt.Errorf("roaring: container %d not in minimal form", key)
		}
		nb.keys = append(nb.keys, key)
		nb.containers = append(nb.containers, c)
	}
	if pos != len(p) {
		return fmt.Errorf("roaring: %d trailing bytes", len(p)-pos)
	}
	*b = *nb
	return nil
}

// maxBit returns the highest set low-bit position in the container.
func (c *container) maxBit() int {
	switch c.typ {
	case typeArray:
		return int(c.arr[len(c.arr)-1])
	case typeBitmap:
		for i := chunkWords - 1; i >= 0; i-- {
			if c.bits[i] != 0 {
				return i*64 + 63 - bits.LeadingZeros64(c.bits[i])
			}
		}
		return -1
	default:
		return int(c.runs[len(c.runs)-1].last)
	}
}

// isCanonicalForm reports whether the container's representation is the
// one packContainer would pick for its contents.
func (c *container) isCanonicalForm() bool {
	nruns := c.numRuns()
	switch c.typ {
	case typeRun:
		return runWins(c.card, nruns)
	case typeArray:
		return !runWins(c.card, nruns) && c.card <= arrayCutoff
	default:
		return !runWins(c.card, nruns) && c.card > arrayCutoff
	}
}

// numRuns returns the number of maximal runs in the container.
func (c *container) numRuns() int {
	switch c.typ {
	case typeRun:
		return len(c.runs)
	case typeArray:
		n := 0
		for i, p := range c.arr {
			if i == 0 || p != c.arr[i-1]+1 {
				n++
			}
		}
		return n
	default:
		var cw [chunkWords]uint64
		copy(cw[:], c.bits)
		return countRuns(&cw)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
