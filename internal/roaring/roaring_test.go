package roaring

import (
	"math/rand"
	"testing"

	"bitmapindex/internal/bitvec"
)

// mkVec builds a dense vector of n bits with bits set by fill.
func mkVec(n int, fill func(i int) bool) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if fill(i) {
			v.Set(i)
		}
	}
	return v
}

// boundaryLengths exercises k*2^16 ± 1 plus small and tail-odd sizes.
var boundaryLengths = []int{
	0, 1, 63, 64, 65, 100, 4095, 4096, 4097,
	chunkBits - 1, chunkBits, chunkBits + 1,
	2*chunkBits - 1, 2 * chunkBits, 2*chunkBits + 1,
	3*chunkBits + 17,
}

// fills covers the container transitions: empty and full chunks, sparse
// (array), dense-random (bitmap), clustered (run), and mixtures that put
// different container types in adjacent chunks.
var fills = []struct {
	name string
	fn   func(rng *rand.Rand) func(i int) bool
}{
	{"empty", func(*rand.Rand) func(int) bool { return func(int) bool { return false } }},
	{"full", func(*rand.Rand) func(int) bool { return func(int) bool { return true } }},
	{"sparse", func(rng *rand.Rand) func(int) bool {
		return func(int) bool { return rng.Intn(1000) == 0 }
	}},
	{"dense", func(rng *rand.Rand) func(int) bool {
		return func(int) bool { return rng.Intn(4) != 0 }
	}},
	{"half", func(rng *rand.Rand) func(int) bool {
		return func(int) bool { return rng.Intn(2) == 0 }
	}},
	{"runs", func(*rand.Rand) func(int) bool {
		return func(i int) bool { return (i/777)%2 == 0 }
	}},
	{"longruns", func(*rand.Rand) func(int) bool {
		return func(i int) bool { return (i/20000)%2 == 0 }
	}},
	{"mixed", func(rng *rand.Rand) func(int) bool {
		// Chunk 0 sparse, chunk 1 dense, chunk 2 runs, repeat.
		return func(i int) bool {
			switch (i / chunkBits) % 3 {
			case 0:
				return rng.Intn(500) == 0
			case 1:
				return rng.Intn(3) != 0
			default:
				return (i/999)%2 == 1
			}
		}
	}},
	{"edgebits", func(*rand.Rand) func(int) bool {
		// Only bits at chunk and word boundaries.
		return func(i int) bool {
			m := i % chunkBits
			return m == 0 || m == 63 || m == 64 || m == chunkBits-1
		}
	}},
}

func TestRoundTripVector(t *testing.T) {
	for _, n := range boundaryLengths {
		for _, f := range fills {
			rng := rand.New(rand.NewSource(int64(n)))
			v := mkVec(n, f.fn(rng))
			b := FromVector(v)
			if b.Len() != n {
				t.Fatalf("%s/%d: Len=%d", f.name, n, b.Len())
			}
			if got, want := b.Count(), v.Count(); got != want {
				t.Fatalf("%s/%d: Count=%d want %d", f.name, n, got, want)
			}
			back := b.ToVector()
			if !back.Equal(v) {
				t.Fatalf("%s/%d: ToVector(FromVector(v)) != v", f.name, n)
			}
			// Spot-check Get against the dense vector.
			for i := 0; i < n; i += 1 + n/97 {
				if b.Get(i) != v.Get(i) {
					t.Fatalf("%s/%d: Get(%d)=%v want %v", f.name, n, i, b.Get(i), v.Get(i))
				}
			}
		}
	}
}

func TestOpsMatchDense(t *testing.T) {
	dense := func(f func(v, u *bitvec.Vector)) func(a, b *bitvec.Vector) *bitvec.Vector {
		return func(a, b *bitvec.Vector) *bitvec.Vector {
			out := a.Clone()
			f(out, b)
			return out
		}
	}
	ops := []struct {
		name string
		r    func(a, b *Bitmap) *Bitmap
		d    func(a, b *bitvec.Vector) *bitvec.Vector
	}{
		{"and", (*Bitmap).And, dense((*bitvec.Vector).And)},
		{"or", (*Bitmap).Or, dense((*bitvec.Vector).Or)},
		{"xor", (*Bitmap).Xor, dense((*bitvec.Vector).Xor)},
		{"andnot", (*Bitmap).AndNot, dense((*bitvec.Vector).AndNot)},
	}
	for _, n := range boundaryLengths {
		for ai, af := range fills {
			for bi, bf := range fills {
				rngA := rand.New(rand.NewSource(int64(n*31 + ai)))
				rngB := rand.New(rand.NewSource(int64(n*37 + bi)))
				va := mkVec(n, af.fn(rngA))
				vb := mkVec(n, bf.fn(rngB))
				ra, rb := FromVector(va), FromVector(vb)
				for _, op := range ops {
					got := op.r(ra, rb)
					want := op.d(va, vb)
					if got.Count() != want.Count() || !got.ToVector().Equal(want) {
						t.Fatalf("%s(%s,%s)/%d: mismatch", op.name, af.name, bf.name, n)
					}
					// The result must itself be canonical: re-compressing its
					// expansion yields a structurally identical bitmap.
					if !got.Equal(FromVector(want)) {
						t.Fatalf("%s(%s,%s)/%d: result not canonical", op.name, af.name, bf.name, n)
					}
				}
			}
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	New(64).And(New(65))
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range boundaryLengths {
		for _, f := range fills {
			rng := rand.New(rand.NewSource(int64(n ^ 0x5a5a)))
			b := FromVector(mkVec(n, f.fn(rng)))
			p, err := b.MarshalBinary()
			if err != nil {
				t.Fatalf("%s/%d: marshal: %v", f.name, n, err)
			}
			if want := 12 + b.SizeBytes(); len(p) != want {
				t.Fatalf("%s/%d: payload %d bytes, SizeBytes says %d", f.name, n, len(p), want)
			}
			var back Bitmap
			if err := back.UnmarshalBinary(p); err != nil {
				t.Fatalf("%s/%d: unmarshal: %v", f.name, n, err)
			}
			if !back.Equal(b) {
				t.Fatalf("%s/%d: round trip not equal", f.name, n)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := FromVector(mkVec(3*chunkBits+17, fills[7].fn(rng))) // mixed
	good, _ := b.MarshalBinary()
	cases := []struct {
		name string
		mut  func(p []byte) []byte
	}{
		{"truncated header", func(p []byte) []byte { return p[:8] }},
		{"truncated body", func(p []byte) []byte { return p[:len(p)-3] }},
		{"trailing bytes", func(p []byte) []byte { return append(p, 0) }},
		{"bad type", func(p []byte) []byte { p[14] = 9; return p }},
		{"container count too large", func(p []byte) []byte { p[8] = 0xff; p[9] = 0xff; return p }},
	}
	for _, tc := range cases {
		p := append([]byte(nil), good...)
		var nb Bitmap
		if err := nb.UnmarshalBinary(tc.mut(p)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	// A non-canonical but otherwise well-formed payload must be rejected:
	// an array container whose contents are one long run.
	one := New(chunkBits)
	one.keys = []uint16{0}
	arr := make([]uint16, 64)
	for i := range arr {
		arr[i] = uint16(i)
	}
	one.containers = []container{{typ: typeArray, card: len(arr), arr: arr}}
	p, _ := one.MarshalBinary()
	var nb Bitmap
	if err := nb.UnmarshalBinary(p); err == nil {
		t.Fatal("accepted non-canonical array-of-one-run container")
	}
}

func TestContainerKinds(t *testing.T) {
	// One chunk of each kind: sparse -> array, dense-random -> bitmap,
	// clustered -> run.
	rng := rand.New(rand.NewSource(3))
	v := mkVec(3*chunkBits, func(i int) bool {
		switch i / chunkBits {
		case 0:
			return i%1000 == 0
		case 1:
			return rng.Intn(3) != 0
		default:
			return (i%chunkBits)/8192%2 == 0
		}
	})
	b := FromVector(v)
	a, bm, r := b.ContainerKinds()
	if a != 1 || bm != 1 || r != 1 {
		t.Fatalf("ContainerKinds = %d arrays, %d bitmaps, %d runs; want 1,1,1", a, bm, r)
	}
	if b.Containers() != 3 {
		t.Fatalf("Containers = %d, want 3", b.Containers())
	}
}

func TestSizeBytesBeatsDenseOnSparse(t *testing.T) {
	n := 1 << 20
	v := mkVec(n, func(i int) bool { return i%5000 == 0 })
	b := FromVector(v)
	if b.SizeBytes() >= v.SizeBytes() {
		t.Fatalf("sparse roaring %d bytes, dense %d", b.SizeBytes(), v.SizeBytes())
	}
}
