package roaring

import (
	"bytes"
	"testing"

	"bitmapindex/internal/bitvec"
)

// vecFromBytes builds an n-bit dense vector from a raw payload, zero
// padding or truncating as needed (and masking the tail).
func vecFromBytes(n int, p []byte) *bitvec.Vector {
	need := (n + 7) / 8
	buf := make([]byte, need)
	copy(buf, p)
	if n%8 != 0 && need > 0 {
		buf[need-1] &= byte(1<<(n%8)) - 1
	}
	v := bitvec.New(n)
	if err := v.SetPayload(n, buf); err != nil {
		panic(err)
	}
	return v
}

// FuzzOpsVsDense differentially checks every roaring operation and Count
// against the dense bitvec kernel on arbitrary bit patterns. Seeds pin
// the chunk boundaries (k*2^16 ± 1) and container-transition densities.
func FuzzOpsVsDense(f *testing.F) {
	f.Add(uint32(0), []byte{}, []byte{})
	f.Add(uint32(1), []byte{1}, []byte{0})
	f.Add(uint32(63), bytes.Repeat([]byte{0xff}, 8), bytes.Repeat([]byte{0x55}, 8))
	f.Add(uint32(64), bytes.Repeat([]byte{0xaa}, 8), bytes.Repeat([]byte{0xff}, 8))
	f.Add(uint32(65), bytes.Repeat([]byte{0xff}, 9), []byte{0x01})
	f.Add(uint32(chunkBits-1), bytes.Repeat([]byte{0xff}, chunkBits/8), bytes.Repeat([]byte{0x0f}, 16))
	f.Add(uint32(chunkBits), bytes.Repeat([]byte{0xf0}, chunkBits/8), []byte{})
	f.Add(uint32(chunkBits+1), []byte{0x80}, bytes.Repeat([]byte{0xff}, chunkBits/8+1))
	f.Add(uint32(2*chunkBits+1), bytes.Repeat([]byte{0x01, 0x00}, chunkBits/8), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, n32 uint32, pa, pb []byte) {
		n := int(n32 % (3*chunkBits + 2))
		va, vb := vecFromBytes(n, pa), vecFromBytes(n, pb)
		ra, rb := FromVector(va), FromVector(vb)
		if ra.Count() != va.Count() || rb.Count() != vb.Count() {
			t.Fatalf("Count mismatch: roaring %d/%d dense %d/%d", ra.Count(), rb.Count(), va.Count(), vb.Count())
		}
		check := func(name string, got *Bitmap, want *bitvec.Vector) {
			if got.Count() != want.Count() {
				t.Fatalf("%s: Count %d want %d", name, got.Count(), want.Count())
			}
			if !got.ToVector().Equal(want) {
				t.Fatalf("%s: bits differ", name)
			}
			if !got.Equal(FromVector(want)) {
				t.Fatalf("%s: result not canonical", name)
			}
			p, err := got.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: marshal: %v", name, err)
			}
			var back Bitmap
			if err := back.UnmarshalBinary(p); err != nil {
				t.Fatalf("%s: unmarshal own serialization: %v", name, err)
			}
			if !back.Equal(got) {
				t.Fatalf("%s: serialization round trip differs", name)
			}
		}
		and := va.Clone()
		and.And(vb)
		check("and", ra.And(rb), and)
		or := va.Clone()
		or.Or(vb)
		check("or", ra.Or(rb), or)
		xor := va.Clone()
		xor.Xor(vb)
		check("xor", ra.Xor(rb), xor)
		andnot := va.Clone()
		andnot.AndNot(vb)
		check("andnot", ra.AndNot(rb), andnot)
	})
}

// FuzzUnmarshal feeds arbitrary bytes to UnmarshalBinary: it must either
// reject them or produce a bitmap whose re-serialization is canonical and
// whose Count matches its expansion.
func FuzzUnmarshal(f *testing.F) {
	for _, n := range []int{0, 1, 65, chunkBits, 2*chunkBits + 1} {
		b := FromVector(mkVec(n, func(i int) bool { return i%3 == 0 }))
		p, _ := b.MarshalBinary()
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		var b Bitmap
		if err := b.UnmarshalBinary(p); err != nil {
			return
		}
		// Expanding to a dense vector is only feasible for modest lengths;
		// a huge-but-valid sparse bitmap is checked structurally instead.
		if b.Len() <= 1<<24 {
			if got, want := b.Count(), b.ToVector().Count(); got != want {
				t.Fatalf("accepted payload with Count %d but %d set bits", got, want)
			}
		}
		p2, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("accepted non-canonical serialization")
		}
	})
}
