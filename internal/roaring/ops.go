package roaring

import (
	"fmt"
	"math/bits"
)

// Logical operations over the container forms. Each binary op walks the
// two sorted key lists like a merge join; only chunks present in the
// relevant side(s) are touched, and each result container is re-packed
// into its minimal form, preserving the canonical invariant.
//
// Mixed-form pairs that lack a profitable direct path are evaluated by
// materializing the pair into a single stack-allocated 8 KiB chunk
// buffer — still "compressed-domain" in the roaring sense (never a
// full-length vector), and bounded by the chunk size regardless of the
// bitmap's logical length.

// And returns a AND b. Both bitmaps must have the same length; like the
// dense and WAH kernels, a length mismatch is a programming error and
// panics.
func (b *Bitmap) And(o *Bitmap) *Bitmap { return b.binop(o, opAnd) }

// Or returns a OR b.
func (b *Bitmap) Or(o *Bitmap) *Bitmap { return b.binop(o, opOr) }

// Xor returns a XOR b.
func (b *Bitmap) Xor(o *Bitmap) *Bitmap { return b.binop(o, opXor) }

// AndNot returns a AND NOT b.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap { return b.binop(o, opAndNot) }

type opKind uint8

const (
	opAnd opKind = iota
	opOr
	opXor
	opAndNot
)

func (b *Bitmap) binop(o *Bitmap, kind opKind) *Bitmap {
	if b.nbits != o.nbits {
		panic(fmt.Sprintf("roaring: length mismatch %d vs %d", b.nbits, o.nbits))
	}
	out := New(b.nbits)
	i, j := 0, 0
	for i < len(b.keys) && j < len(o.keys) {
		switch {
		case b.keys[i] < o.keys[j]:
			// Chunk only on the left: AND drops it, OR/XOR/ANDNOT keep it.
			if kind != opAnd {
				out.appendCopy(b.keys[i], &b.containers[i])
			}
			i++
		case b.keys[i] > o.keys[j]:
			// Chunk only on the right: only OR and XOR keep it.
			if kind == opOr || kind == opXor {
				out.appendCopy(o.keys[j], &o.containers[j])
			}
			j++
		default:
			if c, ok := combine(&b.containers[i], &o.containers[j], kind); ok {
				out.keys = append(out.keys, b.keys[i])
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	for ; i < len(b.keys); i++ {
		if kind != opAnd {
			out.appendCopy(b.keys[i], &b.containers[i])
		}
	}
	if kind == opOr || kind == opXor {
		for ; j < len(o.keys); j++ {
			out.appendCopy(o.keys[j], &o.containers[j])
		}
	}
	return out
}

// appendCopy appends a deep copy of c under key. Results never alias
// their operands, matching wah's value semantics.
func (b *Bitmap) appendCopy(key uint16, c *container) {
	nc := container{typ: c.typ, card: c.card}
	switch c.typ {
	case typeArray:
		nc.arr = append([]uint16(nil), c.arr...)
	case typeBitmap:
		nc.bits = append([]uint64(nil), c.bits...)
	default:
		nc.runs = append([]run(nil), c.runs...)
	}
	b.keys = append(b.keys, key)
	b.containers = append(b.containers, nc)
}

// combine computes a op b for two same-key containers, returning ok=false
// when the result chunk is empty.
func combine(a, b *container, kind opKind) (container, bool) {
	// Direct sparse paths where they beat chunk materialization.
	if a.typ == typeArray && b.typ == typeArray {
		return arrayArray(a, b, kind)
	}
	if kind == opAnd || kind == opAndNot {
		if a.typ == typeArray {
			// Filter the left array against the right container.
			want := kind == opAnd
			arr := make([]uint16, 0, len(a.arr))
			for _, p := range a.arr {
				if b.get(p) == want {
					arr = append(arr, p)
				}
			}
			return containerFromArray(arr)
		}
	}
	// General path: materialize into one chunk buffer.
	var wa, wb [chunkWords]uint64
	a.fillWords(&wa)
	b.fillWords(&wb)
	card := 0
	for i := 0; i < chunkWords; i++ {
		var w uint64
		switch kind {
		case opAnd:
			w = wa[i] & wb[i]
		case opOr:
			w = wa[i] | wb[i]
		case opXor:
			w = wa[i] ^ wb[i]
		default:
			w = wa[i] &^ wb[i]
		}
		wa[i] = w
		card += bits.OnesCount64(w)
	}
	if card == 0 {
		return container{}, false
	}
	return packContainer(&wa, card), true
}

// fillWords expands the container into a zeroed chunk buffer.
func (c *container) fillWords(cw *[chunkWords]uint64) {
	for i := range cw {
		cw[i] = 0
	}
	switch c.typ {
	case typeArray:
		for _, p := range c.arr {
			cw[p>>6] |= 1 << (p & 63)
		}
	case typeBitmap:
		copy(cw[:], c.bits)
	default:
		for _, r := range c.runs {
			setWordRange(cw[:], int(r.start), int(r.last))
		}
	}
}

// arrayArray merges two sorted arrays directly.
func arrayArray(a, b *container, kind opKind) (container, bool) {
	out := make([]uint16, 0, len(a.arr)+len(b.arr))
	i, j := 0, 0
	for i < len(a.arr) && j < len(b.arr) {
		switch {
		case a.arr[i] < b.arr[j]:
			if kind != opAnd {
				out = append(out, a.arr[i])
			}
			i++
		case a.arr[i] > b.arr[j]:
			if kind == opOr || kind == opXor {
				out = append(out, b.arr[j])
			}
			j++
		default:
			if kind == opAnd || kind == opOr {
				out = append(out, a.arr[i])
			}
			i++
			j++
		}
	}
	if kind != opAnd {
		out = append(out, a.arr[i:]...)
	}
	if kind == opOr || kind == opXor {
		out = append(out, b.arr[j:]...)
	}
	return containerFromArray(out)
}

// containerFromArray packs a sorted position array into canonical form.
func containerFromArray(arr []uint16) (container, bool) {
	if len(arr) == 0 {
		return container{}, false
	}
	if len(arr) <= arrayCutoff {
		// Check whether a run container is smaller before settling.
		nruns := 0
		for i, p := range arr {
			if i == 0 || p != arr[i-1]+1 {
				nruns++
			}
		}
		if runWins(len(arr), nruns) {
			c := container{typ: typeRun, card: len(arr), runs: make([]run, 0, nruns)}
			for i, p := range arr {
				if i == 0 || p != arr[i-1]+1 {
					c.runs = append(c.runs, run{p, p})
				} else {
					c.runs[len(c.runs)-1].last = p
				}
			}
			return c, true
		}
		return container{typ: typeArray, card: len(arr), arr: arr}, true
	}
	var cw [chunkWords]uint64
	for _, p := range arr {
		cw[p>>6] |= 1 << (p & 63)
	}
	return packContainer(&cw, len(arr)), true
}
