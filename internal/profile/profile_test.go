package profile

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"bitmapindex/internal/telemetry"
)

// TestDoLabelsVisible checks the labels Do installs are observable on the
// live goroutine set (via the runtime's own goroutine profile) while fn
// runs, and gone afterwards.
func TestDoLabelsVisible(t *testing.T) {
	var during []QueryLabel
	Do("q-test#42", "eval", func() {
		during = ActiveQueryLabels()
	})
	found := false
	for _, ql := range during {
		if ql.QueryID == "q-test#42" && ql.Phase == "eval" {
			found = true
		}
	}
	if !found {
		t.Fatalf("labels not visible during Do: %+v", during)
	}
	for _, ql := range ActiveQueryLabels() {
		if ql.QueryID == "q-test#42" {
			t.Fatalf("labels leaked after Do returned: %+v", ql)
		}
	}
}

func TestDoEmptyIDRunsUnlabeled(t *testing.T) {
	ran := false
	Do("", "eval", func() {
		ran = true
		for _, ql := range ActiveQueryLabels() {
			if ql.Phase == "eval" && ql.QueryID == "" {
				t.Errorf("empty query ID produced a label: %+v", ql)
			}
		}
	})
	if !ran {
		t.Fatal("fn did not run")
	}
}

// TestSamplerPublishes runs two passes (the first only primes deltas) and
// checks the gauges carry live runtime values into the registry.
func TestSamplerPublishes(t *testing.T) {
	reg := telemetry.New()
	s := NewSampler(reg, time.Hour)
	s.SampleOnce()
	// Allocate between passes so the delta counters have something to see.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 8192))
	}
	runtime.KeepAlive(sink)
	s.SampleOnce()

	snap := reg.Snapshot()
	if g := snap.Gauges["bix_runtime_heap_bytes"]; g <= 0 {
		t.Errorf("heap bytes gauge = %d, want > 0", g)
	}
	if g := snap.Gauges["bix_runtime_goroutines"]; g <= 0 {
		t.Errorf("goroutines gauge = %d, want > 0", g)
	}
	if g := snap.Gauges["bix_runtime_heap_objects"]; g <= 0 {
		t.Errorf("heap objects gauge = %d, want > 0", g)
	}
	// The runtime flushes per-P alloc stats lazily, so the delta may trail
	// the true total slightly; half the allocated volume is a safe floor.
	if c := snap.Counters["bix_runtime_alloc_bytes_total"]; c < 128*8192 {
		t.Errorf("alloc bytes counter = %d, want >= %d", c, 128*8192)
	}
	// GC histograms are present (possibly empty if no GC ran between the
	// two passes — only check registration, not counts).
	if _, ok := snap.Histograms["bix_runtime_gc_pause_seconds"]; !ok {
		t.Error("gc pause histogram not registered")
	}
	if _, ok := snap.Histograms["bix_runtime_sched_latency_seconds"]; !ok {
		t.Error("sched latency histogram not registered")
	}
}

// TestSamplerReplaysGCPauses forces GC cycles between passes and checks
// the pause histogram accumulates observations via bucket-delta replay.
func TestSamplerReplaysGCPauses(t *testing.T) {
	reg := telemetry.New()
	s := NewSampler(reg, time.Hour)
	s.SampleOnce()
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	s.SampleOnce()
	snap := reg.Snapshot()
	if h := snap.Histograms["bix_runtime_gc_pause_seconds"]; h.Count < 3 {
		t.Errorf("gc pause observations = %d, want >= 3 after 3 forced GCs", h.Count)
	}
	if c := snap.Counters["bix_runtime_gc_cycles_total"]; c < 3 {
		t.Errorf("gc cycles counter = %d, want >= 3", c)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := telemetry.New()
	s := NewSampler(reg, time.Millisecond)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Snapshot().Gauges["bix_runtime_goroutines"] <= 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler loop never published")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
}

func TestBucketValue(t *testing.T) {
	inf := math.Inf(1)
	bounds := []float64{math.Inf(-1), 1, 3, inf}
	if v := bucketValue(bounds, 0); v != 1 {
		t.Errorf("(-Inf,1] value = %v, want 1", v)
	}
	if v := bucketValue(bounds, 1); v != 2 {
		t.Errorf("[1,3) value = %v, want midpoint 2", v)
	}
	if v := bucketValue(bounds, 2); v != 3 {
		t.Errorf("[3,+Inf) value = %v, want 3", v)
	}
}

func TestRuntimeStatusHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/runtime", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var st RuntimeStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if st.GoVersion == "" || st.GOMAXPROCS < 1 || st.Goroutines < 1 || st.HeapBytes == 0 {
		t.Errorf("implausible status: %+v", st)
	}
	if st.ActiveQueries == nil {
		t.Error("active_queries must encode as [], not null")
	}
}

func TestCPUAndHeapProfileCapture(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.out")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestKindForPath(t *testing.T) {
	cases := map[string]ProfileKind{
		"cpu.out":        CPUProfile,
		"/tmp/cpu.pprof": CPUProfile,
		"heap.out":       HeapProfile,
		"x/HEAP.pb.gz":   HeapProfile,
		"mem.out":        HeapProfile,
		"profile.out":    CPUProfile,
	}
	for path, want := range cases {
		if got := KindForPath(path); got != want {
			t.Errorf("KindForPath(%q) = %v, want %v", path, got, want)
		}
	}
}
