package profile

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/metrics"
)

// RuntimeStatus is the /debug/runtime JSON body: a point-in-time runtime
// snapshot plus the queries currently labeled on live goroutines. It is
// read fresh per request (not from the sampler), so it works even when no
// Sampler is running.
type RuntimeStatus struct {
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	NumCPU        int          `json:"num_cpu"`
	Goroutines    int          `json:"goroutines"`
	HeapBytes     uint64       `json:"heap_bytes"`
	HeapObjects   uint64       `json:"heap_objects"`
	GCCycles      uint64       `json:"gc_cycles"`
	AllocBytes    uint64       `json:"alloc_bytes_total"`
	ActiveQueries []QueryLabel `json:"active_queries"`
}

// ReadRuntimeStatus captures the current runtime status.
func ReadRuntimeStatus() RuntimeStatus {
	samples := []metrics.Sample{
		{Name: rmHeapBytes},
		{Name: rmHeapObjects},
		{Name: rmGCCycles},
		{Name: rmAllocBytes},
	}
	metrics.Read(samples)
	u64 := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	st := RuntimeStatus{
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Goroutines:    runtime.NumGoroutine(),
		HeapBytes:     u64(0),
		HeapObjects:   u64(1),
		GCCycles:      u64(2),
		AllocBytes:    u64(3),
		ActiveQueries: ActiveQueryLabels(),
	}
	if st.ActiveQueries == nil {
		st.ActiveQueries = []QueryLabel{}
	}
	return st
}

// Handler serves ReadRuntimeStatus as indented JSON; mount it at
// /debug/runtime next to the net/http/pprof endpoints.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ReadRuntimeStatus()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
