package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// Whole-process profile capture for the CLIs (`bixstore serve -profile
// cpu.out|heap.out`). The kind is inferred from the file name so one flag
// covers both, mirroring the familiar -cpuprofile/-memprofile pair.

// ProfileKind selects what -profile captures.
type ProfileKind int

const (
	// CPUProfile samples CPU usage for the whole run (labels from Do
	// appear on the samples).
	CPUProfile ProfileKind = iota
	// HeapProfile writes a heap snapshot at shutdown.
	HeapProfile
)

// KindForPath infers the profile kind from the output file name: a base
// name starting with "heap" or "mem" selects a heap profile, anything
// else a CPU profile (the conventional spellings are cpu.out and
// heap.out).
func KindForPath(path string) ProfileKind {
	base := strings.ToLower(filepath.Base(path))
	if strings.HasPrefix(base, "heap") || strings.HasPrefix(base, "mem") {
		return HeapProfile
	}
	return CPUProfile
}

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("profile: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the "inuse" numbers reflect live
// data, the standard pre-snapshot step) and writes the heap profile to
// path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("profile: write heap profile: %w", err)
	}
	return f.Close()
}
