// Package profile is the stdlib-only resource-profiling layer: pprof
// labels that attribute CPU samples to individual queries, a sampler that
// feeds runtime health (heap, GC pauses, goroutines, scheduler latency)
// into the telemetry registry as bix_runtime_* series, whole-process
// CPU/heap profile capture for the CLIs, and an HTTP handler exposing a
// point-in-time runtime snapshot at /debug/runtime.
//
// The package deliberately builds only on runtime/pprof and
// runtime/metrics. Attribution granularity follows from that: pprof
// labels tag goroutines exactly (every CPU sample taken while a labeled
// query runs carries bix_query_id/bix_phase), while allocation deltas
// (telemetry.ReadAllocs, used by trace spans and engine plans) are
// process-global and therefore exact only under serial evaluation.
package profile

import (
	"bufio"
	"bytes"
	"context"
	"regexp"
	"runtime/pprof"
	"sort"
	"strings"
)

// Pprof label keys attached by Do. Dashboards and `go tool pprof -tagshow`
// filters key on these names; changing them is a tooling-breaking change.
const (
	// LabelQueryID carries the telemetry trace ID ("name#seq") of the
	// evaluation the goroutine is working on.
	LabelQueryID = "bix_query_id"
	// LabelPhase carries the coarse execution phase: "eval" for the
	// query's own goroutine, "segment" for pool workers combining
	// segments on its behalf, "cache_fill" for pool-miss reads.
	LabelPhase = "bix_phase"
)

// Do runs fn with the pprof labels bix_query_id=queryID and
// bix_phase=phase attached to the calling goroutine (and inherited by any
// goroutines fn starts). CPU profile samples taken while fn runs carry
// the labels, which is what links a flame graph back to one query. The
// previous label set is restored when fn returns. An empty queryID runs
// fn unlabeled — callers can pass a trace's ID unconditionally since a
// nil trace's ID is "".
func Do(queryID, phase string, fn func()) {
	if queryID == "" {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(LabelQueryID, queryID, LabelPhase, phase),
		func(context.Context) { fn() })
}

// QueryLabel is one (query, phase) pair observed on a live goroutine.
type QueryLabel struct {
	QueryID string `json:"query_id"`
	Phase   string `json:"phase"`
}

// labelPairRE matches one "key":"value" pair inside the `# labels: {...}`
// line of a debug=1 goroutine profile.
var labelPairRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)":"((?:[^"\\]|\\.)*)"`)

// ActiveQueryLabels reports the distinct (bix_query_id, bix_phase) label
// pairs currently attached to any goroutine, sorted for determinism. It
// answers "which queries is this process executing right now?" from
// nothing but the runtime's own goroutine profile — the same data a
// /debug/pprof/goroutine?debug=1 fetch would show — so it needs no
// registration or bookkeeping in the evaluators.
func ActiveQueryLabels() []QueryLabel {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return nil
	}
	seen := make(map[QueryLabel]bool)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "# labels:") {
			continue
		}
		var ql QueryLabel
		for _, m := range labelPairRE.FindAllStringSubmatch(line, -1) {
			switch m[1] {
			case LabelQueryID:
				ql.QueryID = m[2]
			case LabelPhase:
				ql.Phase = m[2]
			}
		}
		if ql.QueryID != "" {
			seen[ql] = true
		}
	}
	out := make([]QueryLabel, 0, len(seen))
	for ql := range seen {
		out = append(out, ql)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QueryID != out[j].QueryID {
			return out[i].QueryID < out[j].QueryID
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
