package profile

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"bitmapindex/internal/telemetry"
)

// Runtime metric names sampled from runtime/metrics. All exist since Go
// 1.22; a name the runtime does not recognize yields KindBad and is
// skipped, so the sampler degrades instead of panicking on toolchain
// drift.
const (
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmHeapObjects = "/gc/heap/objects:objects"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmAllocBytes  = "/gc/heap/allocs:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// GCPauseBuckets is the upper-bound layout of bix_runtime_gc_pause_seconds
// and bix_runtime_sched_latency_seconds: 1µs to 100ms.
var GCPauseBuckets = []float64{
	1e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1,
}

// Sampler periodically reads runtime/metrics and publishes the result to
// a telemetry registry as the bix_runtime_* series: instantaneous gauges
// (heap bytes/objects, goroutines), monotonic counters fed by deltas (GC
// cycles, allocated bytes) and histograms replaying the runtime's own
// pause/latency distributions bucket-delta by bucket-delta.
//
// One Sampler owns its delta state; run one per process. Start/Stop
// manage a background goroutine; SampleOnce is the single synchronous
// pass (used by Start's loop, tests, and callers that want a fresh
// reading without a background goroutine).
type Sampler struct {
	interval time.Duration

	mu      sync.Mutex       // guards samples and all prev* delta state
	samples []metrics.Sample // guarded by mu; reused across passes

	prevGCCycles   uint64 // guarded by mu
	prevAllocBytes uint64 // guarded by mu
	prevGCPause    []uint64
	prevSchedLat   []uint64
	primed         bool // guarded by mu; first pass only establishes deltas

	heapBytes   *telemetry.Gauge
	heapObjects *telemetry.Gauge
	goroutines  *telemetry.Gauge
	gcCycles    *telemetry.Counter
	allocBytes  *telemetry.Counter
	gcPause     *telemetry.Histogram
	schedLat    *telemetry.Histogram

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler creates a sampler publishing into reg (nil selects the
// process-wide default registry) every interval (<= 0 selects 1s).
func NewSampler(reg *telemetry.Registry, interval time.Duration) *Sampler {
	if reg == nil {
		reg = telemetry.Default()
	}
	if interval <= 0 {
		interval = time.Second
	}
	names := []string{rmHeapBytes, rmHeapObjects, rmGoroutines, rmGCCycles,
		rmAllocBytes, rmGCPauses, rmSchedLat}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	s := &Sampler{
		interval: interval,
		samples:  samples,
		heapBytes: reg.Gauge("bix_runtime_heap_bytes",
			"Bytes of live heap objects (runtime/metrics)."),
		heapObjects: reg.Gauge("bix_runtime_heap_objects",
			"Live heap objects (runtime/metrics)."),
		goroutines: reg.Gauge("bix_runtime_goroutines",
			"Live goroutines."),
		gcCycles: reg.Counter("bix_runtime_gc_cycles_total",
			"Completed GC cycles."),
		allocBytes: reg.Counter("bix_runtime_alloc_bytes_total",
			"Cumulative heap bytes allocated."),
		gcPause: reg.Histogram("bix_runtime_gc_pause_seconds",
			"Stop-the-world GC pause durations.", GCPauseBuckets),
		schedLat: reg.Histogram("bix_runtime_sched_latency_seconds",
			"Time goroutines spent runnable before running.", GCPauseBuckets),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	return s
}

// Start launches the background sampling loop. The first pass runs
// immediately, so gauges are live before the first interval elapses.
func (s *Sampler) Start() {
	go func() {
		defer close(s.done)
		s.SampleOnce()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.SampleOnce()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// more than once; a Sampler that was never Started must not be Stopped.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SampleOnce performs one synchronous sampling pass. The first pass only
// primes the delta state (boot-to-now GC history would otherwise flood
// the histograms); every later pass publishes.
func (s *Sampler) SampleOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	for i := range s.samples {
		v := s.samples[i].Value
		switch s.samples[i].Name {
		case rmHeapBytes:
			if v.Kind() == metrics.KindUint64 {
				s.heapBytes.Set(int64(v.Uint64()))
			}
		case rmHeapObjects:
			if v.Kind() == metrics.KindUint64 {
				s.heapObjects.Set(int64(v.Uint64()))
			}
		case rmGoroutines:
			if v.Kind() == metrics.KindUint64 {
				s.goroutines.Set(int64(v.Uint64()))
			}
		case rmGCCycles:
			if v.Kind() == metrics.KindUint64 {
				cur := v.Uint64()
				if s.primed && cur > s.prevGCCycles {
					s.gcCycles.Add(int64(cur - s.prevGCCycles))
				}
				s.prevGCCycles = cur
			}
		case rmAllocBytes:
			if v.Kind() == metrics.KindUint64 {
				cur := v.Uint64()
				if s.primed && cur > s.prevAllocBytes {
					s.allocBytes.Add(int64(cur - s.prevAllocBytes))
				}
				s.prevAllocBytes = cur
			}
		case rmGCPauses:
			if v.Kind() == metrics.KindFloat64Histogram {
				s.prevGCPause = replayHistogram(s.gcPause, v.Float64Histogram(), s.prevGCPause, s.primed)
			}
		case rmSchedLat:
			if v.Kind() == metrics.KindFloat64Histogram {
				s.prevSchedLat = replayHistogram(s.schedLat, v.Float64Histogram(), s.prevSchedLat, s.primed)
			}
		}
	}
	s.primed = true
}

// replayHistogram feeds the bucket-count growth of a runtime
// Float64Histogram since prev into dst, observing each bucket's
// representative value (midpoint; boundary for half-open edge buckets)
// once per new count. Returns the updated prev snapshot.
func replayHistogram(dst *telemetry.Histogram, h *metrics.Float64Histogram, prev []uint64, primed bool) []uint64 {
	if prev == nil || len(prev) != len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
		primed = false // bucket layout changed; re-prime
	}
	for i, c := range h.Counts {
		if primed && c > prev[i] {
			dst.ObserveN(bucketValue(h.Buckets, i), int64(c-prev[i]))
		}
		prev[i] = c
	}
	return prev
}

// bucketValue picks the representative observation value for runtime
// histogram bucket i with boundaries bounds[i], bounds[i+1] (either edge
// may be infinite).
func bucketValue(bounds []float64, i int) float64 {
	if i+1 >= len(bounds) {
		if len(bounds) == 0 {
			return 0
		}
		return bounds[len(bounds)-1]
	}
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
