package storage

import (
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
)

// TestCacheFillCounterAdvances checks pool misses charge their read time
// to bix_cache_fill_ns_total while pool hits do not.
func TestCacheFillCounterAdvances(t *testing.T) {
	_, cs := cachedFixture(t, 1000)
	before := telemetry.CacheFillNSTotal.Value()
	if _, err := cs.Eval(core.Le, 17, nil); err != nil {
		t.Fatal(err)
	}
	cold := telemetry.CacheFillNSTotal.Value()
	if cold <= before {
		t.Fatalf("cold query advanced fill counter by %d ns, want > 0", cold-before)
	}
	// Second identical query: everything resident, no fill time.
	if _, err := cs.Eval(core.Le, 17, nil); err != nil {
		t.Fatal(err)
	}
	if warm := telemetry.CacheFillNSTotal.Value(); warm != cold {
		t.Fatalf("warm query advanced fill counter by %d ns, want 0", warm-cold)
	}
}

// TestCacheFillCarriesPprofLabel checks a traced query's pool misses run
// under the cache_fill pprof label, attributing decompress/extract CPU to
// the query that missed.
func TestCacheFillCarriesPprofLabel(t *testing.T) {
	_, cs := cachedFixture(t, 1000)
	m := &Metrics{Trace: telemetry.NewTrace("fill-probe")}
	var observed []profile.QueryLabel
	cs.fetchHook = func(comp, slot int) {
		if observed == nil {
			observed = profile.ActiveQueryLabels()
		}
	}
	if _, err := cs.Eval(core.Le, 17, m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ql := range observed {
		if ql.QueryID == m.Trace.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no pprof label for trace %q during cached eval, saw %+v", m.Trace.ID(), observed)
	}
}
