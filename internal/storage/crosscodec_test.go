package storage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/reorder"
)

// chunkRows straddle the roaring chunk boundary (k*2^16 ± 1), where the
// codec's last-chunk tail masking and container selection live.
var chunkRows = []int{1<<16 - 1, 1<<16 + 1}

// transitionValues mixes a clustered prefix (long runs of one value), a
// dense stripe and a sparse random tail, so the roaring containers for
// the same attribute cross array/bitmap/run forms within one index and
// flip forms again once the rows are sorted.
func transitionValues(n int, card uint64, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	for i := range vals {
		switch {
		case i < n/3:
			vals[i] = uint64(i/2048) % card // long runs
		case i < 2*n/3:
			vals[i] = uint64(r.Intn(2)) // dense half-and-half stripe
		default:
			vals[i] = uint64(r.Intn(int(card))) // sparse per-value bitmaps
		}
	}
	return vals
}

// TestCrossCodecResultsAndStatsAgree is the PR 9 property test: for every
// encoding, every operator, chunk-boundary row counts and both row
// orders, the dense, WAH and roaring stores return bit-identical results
// with identical evaluation Stats — the codec is invisible above the
// fetch seam.
func TestCrossCodecResultsAndStatsAgree(t *testing.T) {
	const card = 24
	for _, rows := range chunkRows {
		base := transitionValues(rows, card, int64(rows))
		for _, sorted := range []bool{false, true} {
			vals := base
			if sorted {
				vals = reorder.Apply(reorder.Permutation(reorder.Lex, [][]uint64{base}), base)
			}
			for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
				ix, err := core.Build(vals, card, core.Base{6, 4}, enc, nil)
				if err != nil {
					t.Fatal(err)
				}
				stores := make(map[Codec]*Store)
				for _, codec := range []Codec{CodecRaw, CodecWAH, CodecRoaring} {
					dir := filepath.Join(t.TempDir(), fmt.Sprintf("%s-%v-%v", codec, enc, sorted))
					st, err := Save(ix, dir, Options{Scheme: BitmapLevel, Codec: codec})
					if err != nil {
						t.Fatalf("%v: Save: %v", codec, err)
					}
					stores[codec] = st
				}
				for _, op := range core.AllOps {
					for _, v := range []uint64{0, 1, 7, card - 1, card + 2} {
						var mraw Metrics
						want, err := stores[CodecRaw].Eval(op, v, &mraw)
						if err != nil {
							t.Fatal(err)
						}
						for _, codec := range []Codec{CodecWAH, CodecRoaring} {
							var m Metrics
							got, err := stores[codec].Eval(op, v, &m)
							if err != nil {
								t.Fatalf("%v: Eval(A %s %d): %v", codec, op, v, err)
							}
							if !got.Equal(want) {
								t.Fatalf("rows=%d sorted=%v enc=%v codec=%v: A %s %d: result differs from dense",
									rows, sorted, enc, codec, op, v)
							}
							if m.Stats != mraw.Stats {
								t.Fatalf("rows=%d sorted=%v enc=%v codec=%v: A %s %d: Stats %+v, dense %+v",
									rows, sorted, enc, codec, op, v, m.Stats, mraw.Stats)
							}
						}
					}
				}
			}
		}
	}
}

// TestCrossCodecEvaluatorsAgree routes a roaring-backed store through the
// cached, segmented and batch evaluators and cross-checks each against
// serial dense evaluation: the codec plugs in behind the fetch seam, so
// every evaluator must work unchanged.
func TestCrossCodecEvaluatorsAgree(t *testing.T) {
	const card = 24
	rows := 1<<16 + 1
	vals := transitionValues(rows, card, 3)
	ix, err := core.Build(vals, card, core.Base{6, 4}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: BitmapLevel, Codec: CodecRoaring})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCached(st, ix.NumBitmaps()/2)
	if err != nil {
		t.Fatal(err)
	}
	var queries []core.Query
	for _, op := range []core.Op{core.Le, core.Eq, core.Gt} {
		for v := uint64(0); v < card; v += 5 {
			queries = append(queries, core.Query{Op: op, V: v})
			want := ix.Eval(op, v, nil)
			var m Metrics
			got, err := cs.Eval(op, v, &m)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("cached roaring A %s %d differs", op, v)
			}
			seg, err := cs.EvalSegmented(op, v, &m, core.SegConfig{SegBits: 14, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !seg.Equal(want) {
				t.Fatalf("segmented roaring A %s %d differs", op, v)
			}
		}
	}
	var m Metrics
	batch, err := cs.EvalBatch(queries, 3, &m)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if !batch[i].Equal(ix.Eval(q.Op, q.V, nil)) {
			t.Fatalf("batch roaring A %s %d differs", q.Op, q.V)
		}
	}
}
