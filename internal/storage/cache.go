package storage

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/profile"
	"bitmapindex/internal/telemetry"
)

// CachedStore wraps a Store with an LRU buffer pool of decompressed
// bitmaps, turning Section 10's analytic buffering model into a running
// system: bitmap reads that hit the pool cost no I/O and are not counted
// as scans, exactly the paper's accounting. The pool capacity is in
// bitmaps, matching the paper's unit of buffering.
//
// A CachedStore is safe for concurrent use; the pool is guarded by a
// mutex (bitmap vectors themselves are immutable once cached).
type CachedStore struct {
	store    *Store
	capacity int

	mu     sync.Mutex
	lru    *list.List                 // guarded by mu; of cacheEntry, front = most recent
	byKey  map[cacheKey]*list.Element // guarded by mu
	hits   int64                      // guarded by mu
	misses int64                      // guarded by mu

	// fetchHook, when non-nil, observes every Fetch callback before any
	// pool access; tests use it to force evictions between touches of the
	// same query. Set it before issuing queries and never mutate it while
	// queries run.
	fetchHook func(comp, slot int)
}

type cacheKey struct{ comp, slot int }

type cacheEntry struct {
	key cacheKey
	v   *bitvec.Vector
}

// NewCached wraps the store with an LRU pool holding up to capacity
// bitmaps. Capacity 0 disables caching (every read misses).
func NewCached(s *Store, capacity int) (*CachedStore, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("storage: negative cache capacity %d", capacity)
	}
	return &CachedStore{
		store:    s,
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[cacheKey]*list.Element),
	}, nil
}

// Store returns the underlying store.
func (c *CachedStore) Store() *Store { return c.store }

// Hits returns the number of bitmap reads served from the pool.
func (c *CachedStore) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the number of bitmap reads that missed the pool.
func (c *CachedStore) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// HitRate returns the fraction of bitmap reads served from the pool.
func (c *CachedStore) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Resident returns the number of bitmaps currently in the pool.
func (c *CachedStore) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// lookup returns the cached bitmap and whether it was resident, updating
// recency and counters.
func (c *CachedStore) lookup(comp, slot int) (*bitvec.Vector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[cacheKey{comp, slot}]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		telemetry.CacheHitsTotal.Inc()
		return el.Value.(cacheEntry).v, true
	}
	c.misses++
	telemetry.CacheMissesTotal.Inc()
	return nil, false
}

// insert adds a bitmap to the pool, evicting the least recently used
// entries beyond capacity.
func (c *CachedStore) insert(comp, slot int, v *bitvec.Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The gauge tracks lru.Len() on every path out of insert — including
	// duplicate keys and capacity 0 — so it can never drift from the pool.
	defer func() { telemetry.CacheResident.Set(int64(c.lru.Len())) }()
	if c.capacity == 0 {
		return
	}
	key := cacheKey{comp, slot}
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(cacheEntry{key: key, v: v})
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		delete(c.byKey, el.Value.(cacheEntry).key)
		c.lru.Remove(el)
		telemetry.CacheEvictionsTotal.Inc()
	}
}

// queryOptions builds the per-query EvalOptions wiring the pool into the
// evaluator. The returned callbacks share per-query state and are NOT safe
// for concurrent use; they fit Eval and SegmentedEval (which prefetches
// sequentially on the calling goroutine) but not concurrent batch workers
// — those use the batch-scoped wiring in EvalBatch.
func (c *CachedStore) queryOptions(q *query, m *Metrics) *core.EvalOptions {
	// perQuery remembers residency as observed at first touch within this
	// query, so the Buffered callback and Fetch agree even though Fetch
	// also inserts into the pool.
	perQuery := make(map[cacheKey]bool, 8)
	wasResident := func(comp, slot int) bool {
		key := cacheKey{comp, slot}
		if r, ok := perQuery[key]; ok {
			return r
		}
		_, resident := c.lookup(comp, slot)
		perQuery[key] = resident
		return resident
	}
	var qid string
	if m != nil {
		qid = m.Trace.ID()
	}
	opt := &core.EvalOptions{
		Buffered: wasResident,
		Fetch: func(comp, slot int) *bitvec.Vector {
			if c.fetchHook != nil {
				c.fetchHook(comp, slot)
			}
			key := cacheKey{comp, slot}
			resident, seen := perQuery[key]
			if !seen {
				resident = false
				if v, ok := c.lookup(comp, slot); ok {
					perQuery[key] = true
					return v
				}
				perQuery[key] = false
			}
			if resident {
				c.mu.Lock()
				el, ok := c.byKey[key]
				if !ok {
					// Evicted since first touch within this query: the hit
					// recorded at first touch no longer serves this read, so
					// the refetch is a real pool miss. Count it, then fall
					// through to read from the store.
					c.misses++
				}
				c.mu.Unlock()
				if ok {
					return el.Value.(cacheEntry).v
				}
				telemetry.CacheMissesTotal.Inc()
			}
			v := fillPool(qid, func() *bitvec.Vector { return q.fetch(comp, slot) })
			c.insert(comp, slot, v)
			return v
		},
	}
	if m != nil {
		opt.Stats = &m.Stats
		opt.Trace = m.Trace
	}
	return opt
}

// Eval evaluates (A op v) through the pool: resident bitmaps cost nothing
// and are excluded from the scan count, misses read through the
// underlying store (accounted into m) and populate the pool.
func (c *CachedStore) Eval(op core.Op, v uint64, m *Metrics) (res *bitvec.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(storageErr); ok {
				res, err = nil, se.err
				return
			}
			panic(r)
		}
	}()
	telemetry.StorageQueriesTotal.Inc()
	q := &query{s: c.store, m: m}
	opt := c.queryOptions(q, m)
	if m != nil {
		m.Queries++
	}
	return c.store.shell.Eval(op, v, opt), nil
}

// EvalSegmented evaluates (A op v) through the pool like Eval, but with
// intra-query segment parallelism (core.SegmentedEval). The pool's
// per-query callbacks are not concurrency-safe, which is fine here:
// SegmentedEval guarantees all Fetch/Buffered calls happen sequentially on
// the calling goroutine before any parallel work starts, and the fetched
// bitmaps are only read by the workers.
func (c *CachedStore) EvalSegmented(op core.Op, v uint64, m *Metrics, cfg core.SegConfig) (res *bitvec.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(storageErr); ok {
				res, err = nil, se.err
				return
			}
			panic(r)
		}
	}()
	telemetry.StorageQueriesTotal.Inc()
	q := &query{s: c.store, m: m}
	opt := c.queryOptions(q, m)
	if m != nil {
		m.Queries++
	}
	return c.store.shell.SegmentedEval(op, v, opt, cfg), nil
}

// resident reports pool residency without touching recency or the hit/miss
// counters; it backs the batch path's Buffered callback.
func (c *CachedStore) resident(comp, slot int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[cacheKey{comp, slot}]
	return ok
}

// EvalBatch evaluates many predicates through the pool via core.EvalBatch,
// which spends parallelism across queries — or within them, on a large
// index with few queries. Physical costs and evaluator stats accumulate
// into m; results are in input order.
//
// Unlike the per-query wiring of Eval, the batch-scoped Fetch is safe for
// concurrent use: pool lookups take the pool mutex and misses read through
// the store with a per-call fetch context, so concurrent misses never
// share file buffers (at the cost of possibly re-reading a CS/IS file that
// a same-query sibling fetch also reads). Residency for scan accounting is
// probed without counters at Buffered time, which can race benignly with
// eviction.
func (c *CachedStore) EvalBatch(queries []core.Query, parallelism int, m *Metrics) ([]*bitvec.Vector, error) {
	var mu sync.Mutex // guards ferr and the merge of per-fetch metrics into m
	var ferr error
	rows := c.store.shell.Rows()
	var qid string
	if m != nil {
		qid = m.Trace.ID()
	}
	fetch := func(comp, slot int) (res *bitvec.Vector) {
		if c.fetchHook != nil {
			c.fetchHook(comp, slot)
		}
		defer func() {
			if r := recover(); r != nil {
				se, ok := r.(storageErr)
				if !ok {
					panic(r)
				}
				mu.Lock()
				if ferr == nil {
					ferr = se.err
				}
				mu.Unlock()
				// Keep the evaluator running on a worker goroutine; the
				// batch returns the recorded error instead of the results.
				res = bitvec.New(rows)
			}
		}()
		if v, ok := c.lookup(comp, slot); ok {
			return v
		}
		var local Metrics
		q := &query{s: c.store, m: &local}
		v := fillPool(qid, func() *bitvec.Vector { return q.fetch(comp, slot) })
		c.insert(comp, slot, v)
		if m != nil {
			mu.Lock()
			m.FilesRead += local.FilesRead
			m.BytesRead += local.BytesRead
			m.ReadNS += local.ReadNS
			m.DecompressNS += local.DecompressNS
			m.ExtractNS += local.ExtractNS
			mu.Unlock()
		}
		return v
	}
	tmpl := &core.EvalOptions{Fetch: fetch, Buffered: c.resident}
	var stats []core.Stats
	if m != nil {
		stats = make([]core.Stats, len(queries))
		tmpl.Trace = m.Trace
	}
	out := c.store.shell.EvalBatch(queries, parallelism, stats, tmpl)
	telemetry.StorageQueriesTotal.Add(int64(len(queries)))
	if m != nil {
		m.Queries += len(queries)
		for i := range stats {
			m.Stats.Add(stats[i])
		}
	}
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// fillPool runs a pool-miss read under the "cache_fill" pprof label (so CPU
// spent inflating and extracting bitmaps is attributed to the query that
// missed) and charges the elapsed time to bix_cache_fill_ns_total. The
// deferred charge is a named function, not a closure: the fill runs once
// per pool miss on the fetch path, and `defer f(t0)` evaluates its
// argument at registration while keeping panic-path accounting.
func fillPool(queryID string, read func() *bitvec.Vector) *bitvec.Vector {
	defer fillCharge(time.Now())
	var v *bitvec.Vector
	profile.Do(queryID, "cache_fill", func() { v = read() })
	return v
}

// fillCharge adds the time elapsed since t0 to the cache-fill counter.
func fillCharge(t0 time.Time) {
	telemetry.CacheFillNSTotal.Add(int64(time.Since(t0)))
}
