package storage

import (
	"container/list"
	"fmt"
	"sync"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/telemetry"
)

// CachedStore wraps a Store with an LRU buffer pool of decompressed
// bitmaps, turning Section 10's analytic buffering model into a running
// system: bitmap reads that hit the pool cost no I/O and are not counted
// as scans, exactly the paper's accounting. The pool capacity is in
// bitmaps, matching the paper's unit of buffering.
//
// A CachedStore is safe for concurrent use; the pool is guarded by a
// mutex (bitmap vectors themselves are immutable once cached).
type CachedStore struct {
	store    *Store
	capacity int

	mu     sync.Mutex
	lru    *list.List                 // guarded by mu; of cacheEntry, front = most recent
	byKey  map[cacheKey]*list.Element // guarded by mu
	hits   int64                      // guarded by mu
	misses int64                      // guarded by mu
}

type cacheKey struct{ comp, slot int }

type cacheEntry struct {
	key cacheKey
	v   *bitvec.Vector
}

// NewCached wraps the store with an LRU pool holding up to capacity
// bitmaps. Capacity 0 disables caching (every read misses).
func NewCached(s *Store, capacity int) (*CachedStore, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("storage: negative cache capacity %d", capacity)
	}
	return &CachedStore{
		store:    s,
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[cacheKey]*list.Element),
	}, nil
}

// Store returns the underlying store.
func (c *CachedStore) Store() *Store { return c.store }

// Hits returns the number of bitmap reads served from the pool.
func (c *CachedStore) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the number of bitmap reads that missed the pool.
func (c *CachedStore) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// HitRate returns the fraction of bitmap reads served from the pool.
func (c *CachedStore) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Resident returns the number of bitmaps currently in the pool.
func (c *CachedStore) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// lookup returns the cached bitmap and whether it was resident, updating
// recency and counters.
func (c *CachedStore) lookup(comp, slot int) (*bitvec.Vector, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[cacheKey{comp, slot}]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		telemetry.CacheHitsTotal.Inc()
		return el.Value.(cacheEntry).v, true
	}
	c.misses++
	telemetry.CacheMissesTotal.Inc()
	return nil, false
}

// insert adds a bitmap to the pool, evicting the least recently used
// entries beyond capacity.
func (c *CachedStore) insert(comp, slot int, v *bitvec.Vector) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{comp, slot}
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(cacheEntry{key: key, v: v})
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		delete(c.byKey, el.Value.(cacheEntry).key)
		c.lru.Remove(el)
		telemetry.CacheEvictionsTotal.Inc()
	}
	telemetry.CacheResident.Set(int64(c.lru.Len()))
}

// Eval evaluates (A op v) through the pool: resident bitmaps cost nothing
// and are excluded from the scan count, misses read through the
// underlying store (accounted into m) and populate the pool.
func (c *CachedStore) Eval(op core.Op, v uint64, m *Metrics) (res *bitvec.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(storageErr); ok {
				res, err = nil, se.err
				return
			}
			panic(r)
		}
	}()
	telemetry.StorageQueriesTotal.Inc()
	q := &query{s: c.store, m: m}
	// perQuery remembers residency as observed at first touch within this
	// query, so the Buffered callback and Fetch agree even though Fetch
	// also inserts into the pool.
	perQuery := make(map[cacheKey]bool, 8)
	wasResident := func(comp, slot int) bool {
		key := cacheKey{comp, slot}
		if r, ok := perQuery[key]; ok {
			return r
		}
		_, resident := c.lookup(comp, slot)
		perQuery[key] = resident
		return resident
	}
	opt := &core.EvalOptions{
		Buffered: wasResident,
		Fetch: func(comp, slot int) *bitvec.Vector {
			key := cacheKey{comp, slot}
			resident, seen := perQuery[key]
			if !seen {
				resident = false
				if v, ok := c.lookup(comp, slot); ok {
					perQuery[key] = true
					return v
				}
				perQuery[key] = false
			}
			if resident {
				c.mu.Lock()
				el, ok := c.byKey[key]
				c.mu.Unlock()
				if ok {
					return el.Value.(cacheEntry).v
				}
				// Evicted since first touch within this query; fall through.
			}
			v := q.fetch(comp, slot)
			c.insert(comp, slot, v)
			return v
		},
	}
	if m != nil {
		m.Queries++
		opt.Stats = &m.Stats
		opt.Trace = m.Trace
	}
	return c.store.shell.Eval(op, v, opt), nil
}
