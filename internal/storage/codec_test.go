package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
)

func TestParseCodecRoundTrip(t *testing.T) {
	for _, c := range []Codec{CodecRaw, CodecZlib, CodecWAH, CodecRoaring} {
		got, err := ParseCodec(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseCodec("lz4"); err == nil {
		t.Fatal("ParseCodec accepted unknown codec")
	}
	// The empty string (descriptor predating the codec field) is raw.
	if c, err := ParseCodec(""); err != nil || c != CodecRaw {
		t.Fatalf("ParseCodec(\"\") = %v, %v", c, err)
	}
}

func TestOptionsStringCodecPrefixes(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Scheme: BitmapLevel}, "BS"},
		{Options{Scheme: BitmapLevel, Compress: true}, "cBS"},
		{Options{Scheme: ComponentLevel, Codec: CodecZlib}, "cCS"},
		{Options{Scheme: ComponentLevel, Codec: CodecWAH}, "wCS"},
		{Options{Scheme: IndexLevel, Codec: CodecRoaring}, "rIS"},
		// An explicit codec wins over the legacy flag.
		{Options{Scheme: BitmapLevel, Compress: true, Codec: CodecRoaring}, "rBS"},
	}
	for _, tc := range cases {
		if got := tc.opts.String(); got != tc.want {
			t.Fatalf("Options%+v.String() = %q, want %q", tc.opts, got, tc.want)
		}
	}
}

// TestCodecDescribeAndOptions pins the descriptor plumbing for the bitmap
// codecs: reopened stores report the codec in Options and Describe.
func TestCodecDescribeAndOptions(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	for codec, want := range map[Codec]string{
		CodecWAH:     "BS/wah range-encoded base <5,6>",
		CodecRoaring: "BS/roaring range-encoded base <5,6>",
	} {
		dir := filepath.Join(t.TempDir(), codec.String())
		if _, err := Save(ix, dir, Options{Scheme: BitmapLevel, Codec: codec}); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Describe(); got != want {
			t.Fatalf("Describe = %q, want %q", got, want)
		}
		if got := st.Options(); got.Codec != codec || got.Compress {
			t.Fatalf("Options = %+v", got)
		}
	}
}

// TestLegacyDescriptorWithoutCodec simulates a descriptor written before
// the codec field existed: stripping the field from a zlib store must
// still open and decode as zlib.
func TestLegacyDescriptorWithoutCodec(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	if _, err := Save(ix, dir, Options{Scheme: BitmapLevel, Compress: true}); err != nil {
		t.Fatal(err)
	}
	mp := filepath.Join(dir, metaFile)
	raw, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "codec")
	stripped, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open legacy descriptor: %v", err)
	}
	if st.Options().Codec != CodecZlib {
		t.Fatalf("legacy compress store decoded as %v", st.Options().Codec)
	}
	got, err := st.Eval(core.Le, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ix.Eval(core.Le, 10, nil)) {
		t.Fatal("legacy store answers differently")
	}
}

// TestRoaringBeatsWAHOnClusteredSpace is a storage-level echo of the §9
// acceptance claim: on clustered (run-heavy) data the roaring store's
// value bytes are strictly smaller than WAH's.
func TestRoaringBeatsWAHOnClusteredSpace(t *testing.T) {
	col := data.Clustered(1<<16, 8, 4096, 7)
	ix, err := core.Build(col.Values, col.Card, core.Base{8}, core.EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := func(codec Codec) int64 {
		st, err := Save(ix, filepath.Join(t.TempDir(), codec.String()), Options{Scheme: BitmapLevel, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		return st.ValueBytes()
	}
	wahB, roarB := size(CodecWAH), size(CodecRoaring)
	if roarB >= wahB {
		t.Fatalf("roaring %d bytes >= wah %d bytes on clustered data", roarB, wahB)
	}
}
