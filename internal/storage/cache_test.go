package storage

import (
	"math/rand"
	"sync"
	"testing"

	"bitmapindex/internal/buffer"
	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
)

func cachedFixture(t *testing.T, capacity int) (*core.Index, *CachedStore) {
	t.Helper()
	col := data.Uniform(3000, 30, 77)
	ix, err := core.Build(col.Values, col.Card, core.Base{6, 5}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: BitmapLevel, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCached(st, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return ix, cs
}

func TestCachedStoreCorrectness(t *testing.T) {
	for _, capacity := range []int{0, 1, 3, 9, 100} {
		ix, cs := cachedFixture(t, capacity)
		for _, op := range core.AllOps {
			for v := uint64(0); v < 31; v++ {
				got, err := cs.Eval(op, v, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(ix.Eval(op, v, nil)) {
					t.Fatalf("capacity %d: A %s %d differs", capacity, op, v)
				}
			}
		}
		if capacity > 0 && cs.Resident() == 0 {
			t.Fatalf("capacity %d: nothing cached", capacity)
		}
		if cs.Resident() > capacity {
			t.Fatalf("capacity %d: %d resident", capacity, cs.Resident())
		}
	}
}

func TestCachedStoreSteadyStateZeroScans(t *testing.T) {
	_, cs := cachedFixture(t, 1000) // bigger than the whole index
	warm := func() core.Stats {
		var m Metrics
		for _, op := range core.AllOps {
			for v := uint64(0); v < 30; v++ {
				if _, err := cs.Eval(op, v, &m); err != nil {
					t.Fatal(err)
				}
			}
		}
		return m.Stats
	}
	warm()
	second := warm()
	if second.Scans != 0 {
		t.Fatalf("steady state still scanned %d bitmaps", second.Scans)
	}
	if cs.HitRate() < 0.5 {
		t.Fatalf("hit rate %.2f too low after warmup", cs.HitRate())
	}
}

func TestCachedStoreZeroCapacityMatchesUncached(t *testing.T) {
	_, cs := cachedFixture(t, 0)
	var cm, um Metrics
	for v := uint64(0); v < 30; v++ {
		if _, err := cs.Eval(core.Le, v, &cm); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Store().Eval(core.Le, v, &um); err != nil {
			t.Fatal(err)
		}
	}
	if cm.Stats.Scans != um.Stats.Scans {
		t.Fatalf("zero-capacity cache changed scan counts: %d vs %d", cm.Stats.Scans, um.Stats.Scans)
	}
	if cs.HitRate() != 0 {
		t.Fatalf("zero-capacity hit rate %.2f", cs.HitRate())
	}
}

// TestCachedScansTrackBufferModel: with an LRU pool of m bitmaps under the
// uniform query mix, the measured steady-state scans per query should be
// in the ballpark of the paper's eq. (5) with the optimal m-bitmap static
// assignment (LRU approximates it from behind).
func TestCachedScansTrackBufferModel(t *testing.T) {
	base := core.Base{6, 5}
	card, _ := base.Product()
	col := data.Uniform(2000, card, 78)
	ix, err := core.Build(col.Values, card, base, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: BitmapLevel})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 4, 6} {
		cs, err := NewCached(st, m)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(int64(m)))
		run := func(queries int) float64 {
			var met Metrics
			for k := 0; k < queries; k++ {
				op := core.AllOps[r.Intn(6)]
				v := uint64(r.Intn(int(card)))
				if _, err := cs.Eval(op, v, &met); err != nil {
					t.Fatal(err)
				}
			}
			return float64(met.Stats.Scans) / float64(queries)
		}
		run(200) // warm up
		measured := run(2000)
		model := buffer.Time(base, card, buffer.Optimal(base, card, m))
		unbuffered := buffer.Time(base, card, nil)
		if measured > unbuffered+0.05 {
			t.Fatalf("m=%d: cached scans %.3f worse than unbuffered %.3f", m, measured, unbuffered)
		}
		// LRU cannot beat the optimal static assignment by much, nor lag
		// it wildly; allow a generous band.
		if measured < model-0.75 || measured > model+1.0 {
			t.Errorf("m=%d: measured %.3f far from eq.(5) optimal %.3f", m, measured, model)
		}
	}
}

func TestCachedStoreConcurrent(t *testing.T) {
	ix, cs := cachedFixture(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 60; k++ {
				op := core.AllOps[r.Intn(6)]
				v := uint64(r.Intn(31))
				got, err := cs.Eval(op, v, nil)
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(ix.Eval(op, v, nil)) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNewCachedErrors(t *testing.T) {
	_, cs := cachedFixture(t, 1)
	if _, err := NewCached(cs.Store(), -1); err == nil {
		t.Fatal("negative capacity must fail")
	}
}

// TestCachedStoreHitMissCounters: the raw Hits/Misses counters are
// consistent with HitRate, start at zero, and misses bound the resident
// set (every resident bitmap was missed into the cache once).
func TestCachedStoreHitMissCounters(t *testing.T) {
	_, cs := cachedFixture(t, 1000)
	if cs.Hits() != 0 || cs.Misses() != 0 {
		t.Fatalf("fresh cache has hits=%d misses=%d", cs.Hits(), cs.Misses())
	}
	run := func() {
		for _, op := range core.AllOps {
			for v := uint64(0); v < 30; v++ {
				if _, err := cs.Eval(op, v, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run()
	h1, m1 := cs.Hits(), cs.Misses()
	if m1 == 0 {
		t.Fatal("first pass recorded no misses")
	}
	if int(m1) < cs.Resident() {
		t.Fatalf("misses %d < resident %d: every resident bitmap must have missed once", m1, cs.Resident())
	}
	run()
	h2, m2 := cs.Hits(), cs.Misses()
	if m2 != m1 {
		t.Errorf("warm pass added %d misses with an oversized cache", m2-m1)
	}
	if h2 <= h1 {
		t.Errorf("warm pass added no hits (%d -> %d)", h1, h2)
	}
	if want := float64(h2) / float64(h2+m2); cs.HitRate() != want {
		t.Errorf("HitRate = %v, want %v from raw counters", cs.HitRate(), want)
	}
}
