package storage

import (
	"math/rand"
	"sync"
	"testing"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
	"bitmapindex/internal/invariant"
	"bitmapindex/internal/telemetry"
)

// evict removes one bitmap from the pool directly; tests use it (via
// fetchHook) to force evictions between touches of the same query.
func (c *CachedStore) evict(comp, slot int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{comp, slot}
	if el, ok := c.byKey[key]; ok {
		delete(c.byKey, key)
		c.lru.Remove(el)
	}
}

// TestCacheEvictedMidQueryCountsMiss is the regression test for the
// evicted-mid-query undercount: a bitmap seen resident at first touch but
// evicted before a second touch within the same query must count the
// refetch as a miss, since it really goes back to disk.
//
// On the base <2,2> equality index, A < 3 touches E_1^1 twice (once for
// the digit comparison, once for the prefix-equality chain), so evicting
// it between the touches exercises exactly that path.
func TestCacheEvictedMidQueryCountsMiss(t *testing.T) {
	vals := []uint64{0, 1, 2, 3, 1, 2, 0, 3, 2, 1}
	ix, err := core.Build(vals, 4, core.Base{2, 2}, core.EqualityEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: BitmapLevel})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCached(st, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := ix.Eval(core.Lt, 3, nil)

	// Warm pass: both stored bitmaps of the query miss into the pool.
	got, err := cs.Eval(core.Lt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("warm pass result differs from in-memory eval")
	}
	h0, m0 := cs.Hits(), cs.Misses()

	// Second pass: evict (1,0) between its first and second touch.
	calls := 0
	cs.fetchHook = func(comp, slot int) {
		if comp == 1 && slot == 0 {
			calls++
			if calls == 2 {
				cs.evict(1, 0)
			}
		}
	}
	defer func() { cs.fetchHook = nil }()
	got, err = cs.Eval(core.Lt, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("post-eviction result differs from in-memory eval")
	}
	if calls != 2 {
		t.Fatalf("E_1^1 touched %d times, want 2 (query shape changed?)", calls)
	}
	if hits := cs.Hits() - h0; hits != 2 {
		t.Errorf("second pass hits = %d, want 2", hits)
	}
	if misses := cs.Misses() - m0; misses != 1 {
		t.Errorf("second pass misses = %d, want 1 (evicted-mid-query refetch)", misses)
	}
}

// TestCacheResidentGaugeConsistent pins the bix_cache_resident_bitmaps
// gauge to lru.Len() across every insert path: normal inserts with
// evictions, duplicate keys, and capacity 0.
func TestCacheResidentGaugeConsistent(t *testing.T) {
	check := func(t *testing.T, cs *CachedStore) {
		t.Helper()
		if g, r := telemetry.CacheResident.Value(), int64(cs.Resident()); g != r {
			t.Fatalf("gauge %d != resident %d", g, r)
		}
	}
	_, cs := cachedFixture(t, 3)
	for v := uint64(0); v < 30; v++ {
		if _, err := cs.Eval(core.Le, v, nil); err != nil {
			t.Fatal(err)
		}
		check(t, cs)
	}
	// Duplicate-key insert: re-inserting a resident bitmap must leave the
	// gauge at lru.Len() rather than skipping the update.
	var key cacheKey
	cs.mu.Lock()
	key = cs.lru.Front().Value.(cacheEntry).key
	v := cs.lru.Front().Value.(cacheEntry).v
	cs.mu.Unlock()
	telemetry.CacheResident.Set(-1) // poison; insert must restore it
	cs.insert(key.comp, key.slot, v)
	check(t, cs)

	// Capacity 0: nothing is ever resident and the gauge must say so.
	_, cs0 := cachedFixture(t, 0)
	telemetry.CacheResident.Set(-1)
	if _, err := cs0.Eval(core.Le, 3, nil); err != nil {
		t.Fatal(err)
	}
	check(t, cs0)
}

// TestCachedStoreEvalSegmented checks the segmented read path against the
// in-memory index and the serial cached path, including the metrics.
func TestCachedStoreEvalSegmented(t *testing.T) {
	ix, cs := cachedFixture(t, 8)
	cfg := core.SegConfig{SegBits: 10, Workers: 2}
	var m Metrics
	for _, op := range core.AllOps {
		for v := uint64(0); v < 31; v += 3 {
			got, err := cs.EvalSegmented(op, v, &m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ix.Eval(op, v, nil)) {
				t.Fatalf("A %s %d: segmented cached result differs", op, v)
			}
		}
	}
	if m.Queries == 0 || m.Stats.Scans == 0 {
		t.Fatalf("metrics not accumulated: %+v", m)
	}

	// A fresh identical cache evaluated serially must report identical
	// logical stats (scans and op counts) for the same query stream. Under
	// -tags bixdebug the serial path's RangeEval cross-check fetches extra
	// bitmaps through the pool, warming it differently, so the scan
	// comparison only holds in a normal build.
	if invariant.Enabled {
		return
	}
	_, cs2 := cachedFixture(t, 8)
	var m2 Metrics
	for _, op := range core.AllOps {
		for v := uint64(0); v < 31; v += 3 {
			if _, err := cs2.Eval(op, v, &m2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.Stats != m2.Stats {
		t.Fatalf("segmented cached stats %+v differ from serial %+v", m.Stats, m2.Stats)
	}
}

// TestCachedStoreEvalBatch checks the concurrent batch path: results in
// input order matching the in-memory index, metrics accumulated.
func TestCachedStoreEvalBatch(t *testing.T) {
	ix, cs := cachedFixture(t, 6)
	var queries []core.Query
	for _, op := range core.AllOps {
		for v := uint64(0); v < 31; v += 2 {
			queries = append(queries, core.Query{Op: op, V: v})
		}
	}
	for _, par := range []int{1, 3, 8} {
		var m Metrics
		got, err := cs.EvalBatch(queries, par, &m)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(queries) {
			t.Fatalf("par=%d: %d results for %d queries", par, len(got), len(queries))
		}
		for i, q := range queries {
			if !got[i].Equal(ix.Eval(q.Op, q.V, nil)) {
				t.Fatalf("par=%d query %d (A %s %d): result differs", par, i, q.Op, q.V)
			}
		}
		if m.Queries != len(queries) {
			t.Fatalf("par=%d: m.Queries = %d, want %d", par, m.Queries, len(queries))
		}
		if m.Stats.Ands == 0 && m.Stats.Ors == 0 {
			t.Fatalf("par=%d: no op counts accumulated: %+v", par, m.Stats)
		}
	}
}

// TestCachedStoreSegmentedRace hammers one shared CachedStore from three
// kinds of clients at once — serial Eval, segmented Eval and EvalBatch —
// and checks every result against precomputed expectations. Run under
// -race (CI does) this pins the concurrency contract of the pool and of
// SegmentedEval's sequential-prefetch design.
func TestCachedStoreSegmentedRace(t *testing.T) {
	const card = 30
	col := data.Uniform(30000, card, 79)
	ix, err := core.Build(col.Values, col.Card, core.Base{6, 5}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: BitmapLevel, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCached(st, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[core.Query]*bitvec.Vector)
	var queries []core.Query
	for _, op := range core.AllOps {
		for v := uint64(0); v < card; v += 4 {
			q := core.Query{Op: op, V: v}
			queries = append(queries, q)
			want[q] = ix.Eval(op, v, nil)
		}
	}
	cfg := core.SegConfig{SegBits: 12, Workers: 2}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 2; g++ {
		wg.Add(3)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 40; k++ {
				q := queries[r.Intn(len(queries))]
				got, err := cs.EvalSegmented(q.Op, q.V, nil, cfg)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !got.Equal(want[q]) {
					errs <- "segmented result differs under concurrency"
					return
				}
			}
		}(int64(g))
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(100 + seed))
			for k := 0; k < 40; k++ {
				q := queries[r.Intn(len(queries))]
				got, err := cs.Eval(q.Op, q.V, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				if !got.Equal(want[q]) {
					errs <- "serial result differs under concurrency"
					return
				}
			}
		}(int64(g))
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(200 + seed))
			for k := 0; k < 8; k++ {
				batch := make([]core.Query, 6)
				for i := range batch {
					batch[i] = queries[r.Intn(len(queries))]
				}
				got, err := cs.EvalBatch(batch, 3, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				for i, q := range batch {
					if !got[i].Equal(want[q]) {
						errs <- "batch result differs under concurrency"
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
