package storage

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"bitmapindex/internal/core"
	"bitmapindex/internal/data"
)

func allOptions() []Options {
	var out []Options
	for _, sc := range []Scheme{BitmapLevel, ComponentLevel, IndexLevel} {
		for _, comp := range []bool{false, true} {
			out = append(out, Options{Scheme: sc, Compress: comp})
		}
		for _, codec := range []Codec{CodecWAH, CodecRoaring} {
			out = append(out, Options{Scheme: sc, Codec: codec})
		}
	}
	return out
}

func buildTestIndex(t *testing.T, enc core.Encoding, withNulls bool) (*core.Index, []uint64, []bool) {
	t.Helper()
	col := data.Uniform(2000, 30, 42)
	var nulls []bool
	var opts *core.BuildOptions
	if withNulls {
		_, nulls = data.WithNulls(col, 0.05, 43)
		opts = &core.BuildOptions{Nulls: nulls}
	}
	ix, err := core.Build(col.Values, col.Card, core.Base{6, 5}, enc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ix, col.Values, nulls
}

// TestSaveOpenEvalAllLayouts is the keystone test: every layout, compressed
// or not, must answer every query identically to the in-memory index.
func TestSaveOpenEvalAllLayouts(t *testing.T) {
	for _, enc := range []core.Encoding{core.RangeEncoded, core.EqualityEncoded, core.IntervalEncoded} {
		for _, withNulls := range []bool{false, true} {
			ix, _, _ := buildTestIndex(t, enc, withNulls)
			for _, opts := range allOptions() {
				dir := filepath.Join(t.TempDir(), opts.String())
				st, err := Save(ix, dir, opts)
				if err != nil {
					t.Fatalf("%v/%v/%v: Save: %v", enc, withNulls, opts, err)
				}
				if st.Index().Rows() != ix.Rows() || st.Index().Cardinality() != ix.Cardinality() {
					t.Fatalf("%v: shell metadata mismatch", opts)
				}
				var m Metrics
				for _, op := range core.AllOps {
					for v := uint64(0); v < ix.Cardinality()+1; v += 3 {
						got, err := st.Eval(op, v, &m)
						if err != nil {
							t.Fatalf("%v: Eval(A %s %d): %v", opts, op, v, err)
						}
						want := ix.Eval(op, v, nil)
						if !got.Equal(want) {
							t.Fatalf("%v %v nulls=%v: A %s %d: disk result differs", enc, opts, withNulls, op, v)
						}
					}
				}
				if m.Queries == 0 || m.BytesRead == 0 {
					t.Fatalf("%v: metrics not accumulated: %+v", opts, m)
				}
				if opts.codec() != CodecRaw && m.DecompressNS == 0 {
					t.Fatalf("%v: no decompression time recorded", opts)
				}
			}
		}
	}
}

func TestOpenAfterReopen(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	if _, err := Save(ix, dir, Options{Scheme: ComponentLevel, Compress: true}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Eval(core.Le, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ix.Eval(core.Le, 10, nil)) {
		t.Fatal("reopened store answers differently")
	}
	if st.Options() != (Options{Scheme: ComponentLevel, Compress: true, Codec: CodecZlib}) {
		t.Fatalf("Options = %v", st.Options())
	}
	if got := st.Describe(); got != "CS/zlib range-encoded base <5,6>" {
		t.Fatalf("Describe = %q", got)
	}
}

func TestBSReadsOnlyNeededFiles(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	st, err := Save(ix, dir, Options{Scheme: BitmapLevel})
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if _, err := st.Eval(core.Eq, 7, &m); err != nil {
		t.Fatal(err)
	}
	// An equality query on a 2-component index reads at most 4 bitmap files.
	if m.FilesRead > 4 {
		t.Fatalf("BS equality query read %d files, want <= 4", m.FilesRead)
	}
	if m.FilesRead != m.Stats.Scans {
		t.Fatalf("BS files read (%d) != scans (%d)", m.FilesRead, m.Stats.Scans)
	}
}

func TestCSISReadWholeFiles(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	for _, sc := range []Scheme{ComponentLevel, IndexLevel} {
		dir := t.TempDir()
		st, err := Save(ix, dir, Options{Scheme: sc})
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		if _, err := st.Eval(core.Le, 17, &m); err != nil {
			t.Fatal(err)
		}
		// Each touched file is read exactly once per query even though
		// multiple bitmaps are extracted from it.
		maxFiles := ix.Components()
		if sc == IndexLevel {
			maxFiles = 1
		}
		if m.FilesRead > maxFiles {
			t.Fatalf("%v read %d files, want <= %d", sc, m.FilesRead, maxFiles)
		}
		if m.ExtractNS == 0 {
			t.Fatalf("%v: no extraction time recorded", sc)
		}
		// Reading whole files means bytes >= the per-file sizes touched.
		if m.BytesRead < st.ValueBytes()/2 {
			t.Logf("%v: read %d of %d bytes", sc, m.BytesRead, st.ValueBytes())
		}
	}
}

// TestCompressedSmallerOnRegularData: cCS compresses at least as well as
// cBS on uniform data (Table 4's headline), and compression shrinks CS.
func TestCompressionOrdering(t *testing.T) {
	col := data.Uniform(20000, 100, 9)
	ix, err := core.Build(col.Values, col.Card, core.Base{10, 10}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, opts := range allOptions() {
		st, err := Save(ix, filepath.Join(t.TempDir(), "x"), opts)
		if err != nil {
			t.Fatal(err)
		}
		sizes[opts.String()] = st.ValueBytes()
	}
	if sizes["BS"] != sizes["CS"] || sizes["BS"] != sizes["IS"] {
		t.Fatalf("uncompressed sizes must be equal: %v", sizes)
	}
	if sizes["cCS"] >= sizes["BS"] {
		t.Fatalf("cCS (%d) did not compress below raw (%d)", sizes["cCS"], sizes["BS"])
	}
	if sizes["cCS"] > sizes["cBS"] {
		t.Fatalf("cCS (%d) should compress at least as well as cBS (%d)", sizes["cCS"], sizes["cBS"])
	}
}

func TestValueBytesExcludesNN(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	st, err := Save(ix, dir, Options{Scheme: BitmapLevel})
	if err != nil {
		t.Fatal(err)
	}
	perBitmap := int64((ix.Rows() + 7) / 8)
	want := perBitmap * int64(ix.NumBitmaps())
	if st.ValueBytes() != want {
		t.Fatalf("ValueBytes = %d, want %d", st.ValueBytes(), want)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open on empty dir must fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open with corrupt meta must fail")
	}
}

func TestEvalMissingFile(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	st, err := Save(ix, dir, Options{Scheme: BitmapLevel})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, bitmapFile(0, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Eval(core.Eq, 0, nil); err == nil {
		t.Fatal("Eval with missing bitmap file must return an error")
	}
}

func TestExists(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("empty dir must not exist as index")
	}
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	if _, err := Save(ix, dir, Options{Scheme: IndexLevel}); err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("saved index not detected")
	}
}

func TestSchemeParseString(t *testing.T) {
	for _, sc := range []Scheme{BitmapLevel, ComponentLevel, IndexLevel} {
		got, err := ParseScheme(sc.String())
		if err != nil || got != sc {
			t.Fatalf("round trip failed for %v", sc)
		}
	}
	if _, err := ParseScheme("XX"); err == nil {
		t.Fatal("expected error")
	}
	if (Options{Scheme: ComponentLevel, Compress: true}).String() != "cCS" {
		t.Fatal("Options.String wrong")
	}
}

func TestRandomizedDiskVsMemory(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	col := data.Zipf(3000, 60, 1.4, 13)
	ix, err := core.Build(col.Values, col.Card, core.Base{4, 4, 4}, core.RangeEncoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Save(ix, t.TempDir(), Options{Scheme: ComponentLevel, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		op := core.AllOps[r.Intn(6)]
		v := uint64(r.Intn(64))
		got, err := st.Eval(op, v, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ix.Eval(op, v, nil)) {
			t.Fatalf("query %d (A %s %d) differs", i, op, v)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	for _, opts := range []Options{{Scheme: BitmapLevel}, {Scheme: ComponentLevel, Compress: true}} {
		dir := t.TempDir()
		st, err := Save(ix, dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte in one stored value file.
		name := bitmapFile(0, 0)
		if opts.Scheme == ComponentLevel {
			name = componentFile(0)
		}
		path := filepath.Join(dir, name)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		// A <= 0 reads slot 0 of component 1 under any layout.
		_, err = st.Eval(core.Le, 0, nil)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%v: corrupted read returned %v, want ErrCorrupt", opts, err)
		}
	}
}

func TestChecksumNNVerifiedAtOpen(t *testing.T) {
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, true)
	dir := t.TempDir()
	if _, err := Save(ix, dir, Options{Scheme: BitmapLevel}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "nn.bm")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt nn returned %v, want ErrCorrupt", err)
	}
}

func TestOldMetaWithoutChecksumsStillOpens(t *testing.T) {
	// Forward compatibility: descriptors without a checksum map (older
	// writers) are readable; reads are simply unverified.
	ix, _, _ := buildTestIndex(t, core.RangeEncoded, false)
	dir := t.TempDir()
	if _, err := Save(ix, dir, Options{Scheme: BitmapLevel}); err != nil {
		t.Fatal(err)
	}
	mj, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(mj, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "checksums")
	mj, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mj, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Eval(core.Le, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ix.Eval(core.Le, 3, nil)) {
		t.Fatal("result differs")
	}
}
