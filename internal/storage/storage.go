// Package storage implements the paper's Section 9 physical organizations
// of a bitmap index and their compressed variants:
//
//   - BS (bitmap-level storage): each stored bitmap in its own file; a
//     query reads only the bitmaps it scans.
//   - CS (component-level storage): each component's bit-matrix in one file
//     in row-major order; a query touching a component reads the whole
//     component file and extracts the columns it needs.
//   - IS (index-level storage): the entire index bit-matrix in one
//     row-major file; every query reads everything.
//
// Compression (the "c" prefix in the paper: cBS, cCS, cIS) uses the Go
// standard library's DEFLATE zlib, the same algorithm family as the zlib C
// library the paper used. Range- and equality-encoded component rows are
// far more regular in row-major order than value-distribution-dependent
// bitmap files, which is why cCS compresses best (Table 4) while cBS keeps
// the per-query I/O advantage (Figure 16).
package storage

import (
	"bytes"
	"compress/zlib"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"bitmapindex/internal/bitvec"
	"bitmapindex/internal/core"
	"bitmapindex/internal/roaring"
	"bitmapindex/internal/telemetry"
	"bitmapindex/internal/wah"
)

// Scheme selects the physical layout.
type Scheme uint8

const (
	// BitmapLevel stores each bitmap in its own file (BS).
	BitmapLevel Scheme = iota
	// ComponentLevel stores each component row-major in one file (CS).
	ComponentLevel
	// IndexLevel stores the whole index row-major in one file (IS).
	IndexLevel
)

// String returns the paper's abbreviation for the scheme.
func (s Scheme) String() string {
	switch s {
	case BitmapLevel:
		return "BS"
	case ComponentLevel:
		return "CS"
	case IndexLevel:
		return "IS"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// ParseScheme parses "BS", "CS" or "IS" (case-sensitive).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "BS":
		return BitmapLevel, nil
	case "CS":
		return ComponentLevel, nil
	case "IS":
		return IndexLevel, nil
	}
	return 0, fmt.Errorf("storage: unknown scheme %q", s)
}

// Codec selects the compression applied to every stored file. Zlib is
// the paper's byte-level "c" prefix; WAH and Roaring are bitmap-aware
// codecs that encode each file's bit payload in their compressed form
// (for CS/IS the row-major matrix is treated as one long bit string).
type Codec uint8

const (
	// CodecRaw stores payloads uncompressed.
	CodecRaw Codec = iota
	// CodecZlib DEFLATE-compresses file bytes (cBS / cCS / cIS).
	CodecZlib
	// CodecWAH stores each file as a word-aligned-hybrid bitmap.
	CodecWAH
	// CodecRoaring stores each file as a roaring hybrid-container bitmap.
	CodecRoaring
)

// String returns the codec name used in descriptors and flags.
func (c Codec) String() string {
	switch c {
	case CodecRaw:
		return "raw"
	case CodecZlib:
		return "zlib"
	case CodecWAH:
		return "wah"
	case CodecRoaring:
		return "roaring"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// ParseCodec parses "raw", "zlib", "wah" or "roaring".
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "raw", "":
		return CodecRaw, nil
	case "zlib":
		return CodecZlib, nil
	case "wah":
		return CodecWAH, nil
	case "roaring":
		return CodecRoaring, nil
	}
	return 0, fmt.Errorf("storage: unknown codec %q", s)
}

// Options selects the physical organization of a saved index.
type Options struct {
	Scheme   Scheme
	Compress bool // zlib-compress every file (cBS / cCS / cIS); shorthand for Codec: CodecZlib
	Codec    Codec
}

// codec resolves the effective codec: an explicit Codec wins, the legacy
// Compress flag means zlib.
func (o Options) codec() Codec {
	if o.Codec != CodecRaw {
		return o.Codec
	}
	if o.Compress {
		return CodecZlib
	}
	return CodecRaw
}

// String renders the paper's abbreviation, with a codec prefix: "BS",
// "cCS" (zlib), "wBS" (WAH), "rBS" (roaring).
func (o Options) String() string {
	switch o.codec() {
	case CodecZlib:
		return "c" + o.Scheme.String()
	case CodecWAH:
		return "w" + o.Scheme.String()
	case CodecRoaring:
		return "r" + o.Scheme.String()
	default:
		return o.Scheme.String()
	}
}

const metaFile = "meta.json"

// meta is the serialized index descriptor.
type meta struct {
	Version  int    `json:"version"`
	Scheme   string `json:"scheme"`
	Compress bool   `json:"compress"`
	// Codec names the file codec ("raw", "zlib", "wah", "roaring").
	// Absent in descriptors written before the codec knob existed, where
	// Compress alone distinguishes raw from zlib.
	Codec    string   `json:"codec,omitempty"`
	Base     []uint64 `json:"base"` // little-endian: Base[0] is b_1
	Encoding string   `json:"encoding"`
	Card     uint64   `json:"cardinality"`
	Rows     int      `json:"rows"`
	HasNulls bool     `json:"has_nulls"`
	// Checksums maps each stored file to the CRC-32 (IEEE) of its on-disk
	// bytes; reads verify it so silent corruption surfaces as an error
	// instead of wrong query results.
	Checksums map[string]uint32 `json:"checksums"`
}

// Metrics accumulates the physical cost of evaluating queries against a
// Store. A single Metrics may be reused across queries. Every field is
// also mirrored into the process-wide telemetry registry
// (telemetry.Default) as the storage_* metric family.
type Metrics struct {
	Queries      int
	FilesRead    int
	BytesRead    int64 // on-disk bytes read (compressed size when compressed)
	ReadNS       int64 // file read time
	DecompressNS int64 // zlib inflate time
	ExtractNS    int64 // row-major column extraction time
	Stats        core.Stats
	// Trace, when non-nil, receives per-phase durations (fetch,
	// decompress, extract, bool_ops) for each query evaluated with this
	// Metrics.
	Trace *telemetry.Trace
}

// Store is an on-disk bitmap index opened for query evaluation.
type Store struct {
	dir        string
	meta       meta
	codec      Codec
	shell      *core.Index
	valueBytes int64 // on-disk bytes of the value bitmap files
}

type storageErr struct{ err error }

// Save writes the index to dir (created if needed) in the given physical
// organization and returns the opened store.
func Save(ix *core.Index, dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	codec := opts.codec()
	m := meta{
		Version:   1,
		Scheme:    opts.Scheme.String(),
		Compress:  codec == CodecZlib,
		Codec:     codec.String(),
		Base:      ix.Base(),
		Encoding:  ix.Encoding().String(),
		Card:      ix.Cardinality(),
		Rows:      ix.Rows(),
		HasNulls:  ix.HasNulls(),
		Checksums: make(map[string]uint32),
	}
	if _, err := ParseScheme(m.Scheme); err != nil {
		return nil, err
	}
	// write encodes one file's bit payload (nbits logical bits, byte
	// little-endian within each byte as bitvec lays them out) with the
	// store codec, checksums the on-disk bytes, and writes the file.
	write := func(name string, payload []byte, nbits int) error {
		switch codec {
		case CodecZlib:
			var buf bytes.Buffer
			zw := zlib.NewWriter(&buf)
			if _, err := zw.Write(payload); err != nil {
				return fmt.Errorf("storage: compress %s: %w", name, err)
			}
			if err := zw.Close(); err != nil {
				return fmt.Errorf("storage: compress %s: %w", name, err)
			}
			payload = buf.Bytes()
		case CodecWAH, CodecRoaring:
			var v bitvec.Vector
			if err := v.SetPayload(nbits, payload); err != nil {
				return fmt.Errorf("storage: encode %s: %w", name, err)
			}
			var enc []byte
			var err error
			if codec == CodecWAH {
				enc, err = wah.Compress(&v).MarshalBinary()
			} else {
				enc, err = roaring.FromVector(&v).MarshalBinary()
			}
			if err != nil {
				return fmt.Errorf("storage: encode %s: %w", name, err)
			}
			payload = enc
		}
		m.Checksums[name] = crc32.ChecksumIEEE(payload)
		if err := os.WriteFile(filepath.Join(dir, name), payload, 0o644); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		return nil
	}
	rows := ix.Rows()
	if err := write("nn.bm", ix.NonNull().PayloadBytes(), rows); err != nil {
		return nil, err
	}
	switch opts.Scheme {
	case BitmapLevel:
		for i := 0; i < ix.Components(); i++ {
			for j := 0; j < ix.ComponentBitmaps(i); j++ {
				if err := write(bitmapFile(i, j), ix.StoredBitmap(i, j).PayloadBytes(), rows); err != nil {
					return nil, err
				}
			}
		}
	case ComponentLevel:
		for i := 0; i < ix.Components(); i++ {
			ni := ix.ComponentBitmaps(i)
			payload := rowMajor(ix, i, i+1, ni)
			if err := write(componentFile(i), payload, rows*ni); err != nil {
				return nil, err
			}
		}
	case IndexLevel:
		stride := totalBitmaps(ix)
		payload := rowMajor(ix, 0, ix.Components(), stride)
		if err := write("index.is", payload, rows*stride); err != nil {
			return nil, err
		}
	}
	// The descriptor is written last so a crash mid-save never leaves a
	// readable-but-incomplete index behind.
	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mj, 0o644); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return Open(dir)
}

func bitmapFile(i, j int) string { return fmt.Sprintf("c%d_%d.bm", i, j) }
func componentFile(i int) string { return fmt.Sprintf("c%d.cs", i) }
func totalBitmaps(ix *core.Index) int {
	n := 0
	for i := 0; i < ix.Components(); i++ {
		n += ix.ComponentBitmaps(i)
	}
	return n
}

// rowMajor packs components [lo, hi) into a row-major bit matrix with the
// given stride (bits per row): bit (r*stride + col) is bit r of the col-th
// stored bitmap in the range.
func rowMajor(ix *core.Index, lo, hi, stride int) []byte {
	rows := ix.Rows()
	out := make([]byte, (rows*stride+7)/8)
	col := 0
	for i := lo; i < hi; i++ {
		for j := 0; j < ix.ComponentBitmaps(i); j++ {
			c := col
			ix.StoredBitmap(i, j).Ones(func(r int) bool {
				k := r*stride + c
				out[k/8] |= 1 << uint(k%8)
				return true
			})
			col++
		}
	}
	return out
}

// Open loads the descriptor and non-null bitmap of an index saved by Save.
// Value bitmaps are read lazily per query.
func Open(dir string) (*Store, error) {
	mj, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var m meta
	if err := json.Unmarshal(mj, &m); err != nil {
		return nil, fmt.Errorf("storage: bad %s: %w", metaFile, err)
	}
	if _, err := ParseScheme(m.Scheme); err != nil {
		return nil, err
	}
	enc, err := core.ParseEncoding(m.Encoding)
	if err != nil {
		return nil, err
	}
	codec, err := ParseCodec(m.Codec)
	if err != nil {
		return nil, err
	}
	if codec == CodecRaw && m.Compress {
		codec = CodecZlib // descriptor written before the codec field existed
	}
	s := &Store{dir: dir, meta: m, codec: codec}
	nnPayload, _, err := s.readFile("nn.bm", nil)
	if err != nil {
		return nil, err
	}
	var nn bitvec.Vector
	if err := nn.SetPayload(m.Rows, nnPayload); err != nil {
		return nil, fmt.Errorf("storage: nn bitmap: %w", err)
	}
	shell, err := core.NewShell(core.Base(m.Base), enc, m.Card, &nn, m.HasNulls)
	if err != nil {
		return nil, err
	}
	s.shell = shell
	if s.valueBytes, err = s.computeValueBytes(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) computeValueBytes() (int64, error) {
	var names []string
	switch s.meta.Scheme {
	case "BS":
		for i := 0; i < s.shell.Components(); i++ {
			for j := 0; j < s.shell.ComponentBitmaps(i); j++ {
				names = append(names, bitmapFile(i, j))
			}
		}
	case "CS":
		for i := 0; i < s.shell.Components(); i++ {
			names = append(names, componentFile(i))
		}
	case "IS":
		names = append(names, "index.is")
	}
	var total int64
	for _, n := range names {
		fi, err := os.Stat(filepath.Join(s.dir, n))
		if err != nil {
			return 0, fmt.Errorf("storage: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// Index returns the shell descriptor of the stored index (base, encoding,
// cardinality, rows, non-null bitmap). Its bitmaps are not in memory.
func (s *Store) Index() *core.Index { return s.shell }

// Options returns the physical organization of the store.
func (s *Store) Options() Options {
	sc, _ := ParseScheme(s.meta.Scheme)
	return Options{Scheme: sc, Compress: s.codec == CodecZlib, Codec: s.codec}
}

// ValueBytes returns the total on-disk size of the value bitmap files (the
// paper's space metric for Table 4 and Figure 16(b); the non-null bitmap
// and descriptor are excluded).
func (s *Store) ValueBytes() int64 { return s.valueBytes }

// Describe returns a one-line plan summary of the store's physical design
// — scheme, compression, encoding and base — the string slow-log entries
// and flight-recorder records carry so a retained query names the index
// design that served it (e.g. "bitvector/zlib range-encoded base <4,3>").
func (s *Store) Describe() string {
	return fmt.Sprintf("%s/%s %s-encoded base %s",
		s.meta.Scheme, s.codec, s.meta.Encoding, core.Base(s.meta.Base).String())
}

// readFile reads (and if needed inflates) one file, accounting into m.
func (s *Store) readFile(name string, m *Metrics) ([]byte, int64, error) {
	t0 := time.Now()
	raw, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, 0, fmt.Errorf("storage: %w", err)
	}
	readNS := time.Since(t0).Nanoseconds()
	onDisk := int64(len(raw))
	if want, ok := s.meta.Checksums[name]; ok {
		if got := crc32.ChecksumIEEE(raw); got != want {
			return nil, 0, fmt.Errorf("storage: %w: %s (crc %08x, want %08x)", ErrCorrupt, name, got, want)
		}
	}
	var decompNS int64
	switch s.codec {
	case CodecZlib:
		t1 := time.Now()
		zr, err := zlib.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, 0, fmt.Errorf("storage: inflate %s: %w", name, err)
		}
		raw, err = io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, 0, fmt.Errorf("storage: inflate %s: %w", name, err)
		}
		decompNS = time.Since(t1).Nanoseconds()
	case CodecWAH:
		t1 := time.Now()
		var wb wah.Bitmap
		if err := wb.UnmarshalBinary(raw); err != nil {
			return nil, 0, fmt.Errorf("storage: decode %s: %w", name, err)
		}
		raw = wb.Decompress().PayloadBytes()
		decompNS = time.Since(t1).Nanoseconds()
	case CodecRoaring:
		t1 := time.Now()
		var rb roaring.Bitmap
		if err := rb.UnmarshalBinary(raw); err != nil {
			return nil, 0, fmt.Errorf("storage: decode %s: %w", name, err)
		}
		raw = rb.ToVector().PayloadBytes()
		decompNS = time.Since(t1).Nanoseconds()
	}
	telemetry.StorageFilesReadTotal.Inc()
	telemetry.StorageBytesReadTotal.Add(onDisk)
	telemetry.StorageReadNSTotal.Add(readNS)
	telemetry.StorageDecompressNSTotal.Add(decompNS)
	if m != nil {
		m.FilesRead++
		m.BytesRead += onDisk
		m.ReadNS += readNS
		m.DecompressNS += decompNS
		if decompNS > 0 {
			m.Trace.Add(telemetry.PhaseDecompress, time.Duration(decompNS))
		}
	}
	return raw, onDisk, nil
}

// query is the per-query fetch context: every file is read at most once
// per query regardless of how many bitmaps are extracted from it.
type query struct {
	s     *Store
	m     *Metrics
	files map[string][]byte
}

func (q *query) file(name string) []byte {
	if p, ok := q.files[name]; ok {
		return p
	}
	p, _, err := q.s.readFile(name, q.m)
	if err != nil {
		panic(storageErr{err})
	}
	if q.files == nil {
		q.files = make(map[string][]byte, 4)
	}
	q.files[name] = p
	return p
}

// fetch implements core.EvalOptions.Fetch against the store's layout.
func (q *query) fetch(comp, slot int) *bitvec.Vector {
	s := q.s
	rows := s.shell.Rows()
	switch s.meta.Scheme {
	case "BS":
		payload := q.file(bitmapFile(comp, slot))
		var v bitvec.Vector
		if err := v.SetPayload(rows, payload); err != nil {
			panic(storageErr{err})
		}
		return &v
	case "CS":
		payload := q.file(componentFile(comp))
		return q.extract(payload, s.shell.ComponentBitmaps(comp), slot)
	default: // IS
		payload := q.file("index.is")
		off := 0
		for i := 0; i < comp; i++ {
			off += s.shell.ComponentBitmaps(i)
		}
		return q.extract(payload, totalBitmaps(s.shell), off+slot)
	}
}

// extract pulls one column out of a row-major bit matrix.
func (q *query) extract(payload []byte, stride, col int) *bitvec.Vector {
	t0 := time.Now()
	rows := q.s.shell.Rows()
	v := bitvec.New(rows)
	k := col
	for r := 0; r < rows; r++ {
		if payload[k/8]&(1<<uint(k%8)) != 0 {
			v.Set(r)
		}
		k += stride
	}
	extractNS := time.Since(t0).Nanoseconds()
	telemetry.StorageExtractNSTotal.Add(extractNS)
	if q.m != nil {
		q.m.ExtractNS += extractNS
		q.m.Trace.Add(telemetry.PhaseExtract, time.Duration(extractNS))
	}
	return v
}

// Eval evaluates (A op v) against the on-disk index, accounting physical
// costs into m (which may be nil).
func (s *Store) Eval(op core.Op, v uint64, m *Metrics) (res *bitvec.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(storageErr); ok {
				res, err = nil, se.err
				return
			}
			panic(r)
		}
	}()
	telemetry.StorageQueriesTotal.Inc()
	q := &query{s: s, m: m}
	opt := &core.EvalOptions{Fetch: q.fetch}
	if m != nil {
		m.Queries++
		opt.Stats = &m.Stats
		opt.Trace = m.Trace
	}
	return s.shell.Eval(op, v, opt), nil
}

// ErrNotFound reports a missing index directory.
var ErrNotFound = errors.New("storage: index not found")

// ErrCorrupt reports a stored file whose contents no longer match the
// checksum recorded at save time.
var ErrCorrupt = errors.New("storage: checksum mismatch")

// Exists reports whether dir contains a saved index.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, metaFile))
	return err == nil
}
