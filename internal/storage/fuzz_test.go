package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenMeta ensures arbitrary descriptor bytes never panic Open; they
// either load a consistent store or fail with an error.
func FuzzOpenMeta(f *testing.F) {
	f.Add([]byte(`{"version":1,"scheme":"BS","base":[4,3],"encoding":"range","cardinality":12,"rows":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1,"scheme":"XX"}`))
	f.Add([]byte(`{"version":1,"scheme":"IS","base":[1],"encoding":"range","cardinality":5,"rows":3}`))
	f.Fuzz(func(t *testing.T, meta []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, metaFile), meta, 0o644); err != nil {
			t.Fatal(err)
		}
		// An empty nn.bm is present so Open can get past the descriptor
		// when it is well-formed with rows=0.
		if err := os.WriteFile(filepath.Join(dir, "nn.bm"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			return
		}
		// Openable stores must answer queries or return errors, never
		// panic.
		if _, err := st.Eval(0, 0, nil); err != nil {
			return
		}
	})
}
