package telemetry

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestQuantileExport covers the interpolated quantile estimates as they
// surface in Snapshot: interior interpolation, first-bucket lower bound 0,
// +Inf clamping to the highest finite bound, and the empty histogram.
func TestQuantileExport(t *testing.T) {
	r := New()
	h := r.Histogram("bix_t_q_seconds", "help", []float64{1, 2, 4})

	// Empty: quantiles are 0 by definition.
	s := r.Snapshot().Histograms["bix_t_q_seconds"]
	if s.P50 != 0 || s.P90 != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram quantiles = %+v, want zeros", s)
	}

	// 10 observations in (1,2]: P50 interpolates inside [1,2].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	s = r.Snapshot().Histograms["bix_t_q_seconds"]
	if s.P50 < 1 || s.P50 > 2 {
		t.Errorf("P50 = %v, want within (1,2]", s.P50)
	}
	// target = 0.5*10 = 5 of 10 in-bucket: lower + width*5/10 = 1.5.
	if math.Abs(s.P50-1.5) > 1e-9 {
		t.Errorf("P50 = %v, want 1.5 by linear interpolation", s.P50)
	}

	// Overflow observations clamp to the highest finite bound.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	s = r.Snapshot().Histograms["bix_t_q_seconds"]
	if s.P99 != 4 {
		t.Errorf("P99 with +Inf mass = %v, want clamp to 4", s.P99)
	}

	// First-bucket interpolation uses 0 as the implicit lower bound.
	r2 := New()
	h2 := r2.Histogram("bix_t_q2_seconds", "help", []float64{1, 2})
	h2.Observe(0.5)
	h2.Observe(0.5)
	p50 := r2.Snapshot().Histograms["bix_t_q2_seconds"].P50
	if p50 <= 0 || p50 > 1 {
		t.Errorf("first-bucket P50 = %v, want in (0,1]", p50)
	}
}

func TestObserveN(t *testing.T) {
	r := New()
	h := r.Histogram("bix_t_n_seconds", "help", []float64{1, 10})
	h.ObserveN(0.5, 3)
	h.ObserveN(5, 2)
	h.ObserveN(0.25, 0)  // no-op
	h.ObserveN(0.25, -4) // no-op
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if want := 0.5*3 + 5*2; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	cum := h.Cumulative()
	if cum[0] != 3 || cum[1] != 5 || cum[2] != 5 {
		t.Fatalf("cumulative = %v, want [3 5 5]", cum)
	}
}

// TestExemplarExport checks ObserveExemplar lands the trace ID on the
// right bucket, that the most recent write wins, and that the JSON
// snapshot carries exemplars through encoding.
func TestExemplarExport(t *testing.T) {
	r := New()
	h := r.Histogram("bix_t_ex_seconds", "help", []float64{1, 10})
	h.ObserveExemplar(0.5, "q#1")
	h.ObserveExemplar(5, "q#2")
	h.ObserveExemplar(0.7, "q#3") // same bucket as q#1: last write wins
	h.ObserveExemplar(0.9, "")    // counted, but records no exemplar

	if ex := h.BucketExemplar(0); ex == nil || ex.TraceID != "q#3" || ex.Value != 0.7 {
		t.Fatalf("bucket 0 exemplar = %+v, want q#3 @ 0.7", ex)
	}
	if ex := h.BucketExemplar(1); ex == nil || ex.TraceID != "q#2" {
		t.Fatalf("bucket 1 exemplar = %+v, want q#2", ex)
	}
	if ex := h.BucketExemplar(99); ex != nil {
		t.Fatalf("out-of-range bucket exemplar = %+v, want nil", ex)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (empty-ID observation still counts)", h.Count())
	}

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	buckets := snap.Histograms["bix_t_ex_seconds"].Buckets
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].Exemplar == nil || buckets[0].Exemplar.TraceID != "q#3" {
		t.Errorf("bucket 0 JSON exemplar = %+v, want q#3", buckets[0].Exemplar)
	}
	if buckets[1].Exemplar == nil || buckets[1].Exemplar.TraceID != "q#2" {
		t.Errorf("bucket 1 JSON exemplar = %+v, want q#2", buckets[1].Exemplar)
	}
}

func TestTraceIDsAreUnique(t *testing.T) {
	a, b := NewTrace("q"), NewTrace("q")
	if a.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("trace IDs %q and %q, want distinct non-empty", a.ID(), b.ID())
	}
	var nilTrace *Trace
	if nilTrace.ID() != "" {
		t.Fatal("nil trace ID must be empty")
	}
}

// TestProfiledTraceAllocDeltas checks a profiled span attributes the heap
// it allocates to its phase, and that unprofiled traces report zero.
func TestProfiledTraceAllocDeltas(t *testing.T) {
	tr := NewTrace("alloc").Profile()
	if !tr.Profiled() {
		t.Fatal("Profile() did not stick")
	}
	var sink [][]byte
	sp := tr.Start(PhaseBoolOps)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	sp.End()
	_ = sink
	recs := tr.Phases()
	if len(recs) != 1 {
		t.Fatalf("phases = %+v", recs)
	}
	if recs[0].AllocBytes < 64*4096 {
		t.Errorf("alloc bytes = %d, want >= %d", recs[0].AllocBytes, 64*4096)
	}
	if recs[0].AllocObjects < 64 {
		t.Errorf("alloc objects = %d, want >= 64", recs[0].AllocObjects)
	}

	plain := NewTrace("plain")
	sp = plain.Start(PhaseBoolOps)
	sink = append(sink, make([]byte, 4096))
	sp.End()
	if r := plain.Phases()[0]; r.AllocBytes != 0 || r.AllocObjects != 0 {
		t.Errorf("unprofiled trace recorded allocs: %+v", r)
	}
}

// TestPhaseMinMax checks per-call extremes accumulate alongside the sum,
// making skew across calls of one phase (e.g. per-segment durations)
// visible in the record.
func TestPhaseMinMax(t *testing.T) {
	tr := NewTrace("skew")
	tr.Add(PhaseSegments, 5*time.Millisecond)
	tr.Add(PhaseSegments, time.Millisecond)
	tr.Add(PhaseSegments, 20*time.Millisecond)
	r := tr.Phases()[0]
	if r.Calls != 3 || r.Duration != 26*time.Millisecond {
		t.Fatalf("calls/sum = %d/%v", r.Calls, r.Duration)
	}
	if r.Min != time.Millisecond || r.Max != 20*time.Millisecond {
		t.Fatalf("min/max = %v/%v, want 1ms/20ms", r.Min, r.Max)
	}
}

func TestReadAllocsMonotonic(t *testing.T) {
	b1, o1 := ReadAllocs()
	sink := make([]byte, 1<<16)
	_ = sink
	b2, o2 := ReadAllocs()
	if b2 < b1 || o2 < o1 {
		t.Fatalf("alloc counters went backwards: (%d,%d) -> (%d,%d)", b1, o1, b2, o2)
	}
	if b2 == 0 || o2 == 0 {
		t.Fatal("alloc counters are zero; runtime/metrics names may be wrong")
	}
}
