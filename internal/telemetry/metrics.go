package telemetry

import "time"

// The well-known metric set fed by the index layers. Names, labels and
// bucket layouts are documented in DESIGN.md ("Observability"); changing
// anything here is a dashboard-breaking change.
var (
	// QueriesTotal counts evaluator invocations (one per Index.Eval;
	// EvalBetween counts as its two one-sided evaluations).
	QueriesTotal = Default().Counter("bix_queries_total",
		"Selection predicate evaluations.")
	// ScansTotal counts distinct stored bitmaps read, the paper's I/O cost
	// measure. Buffered and pool-resident bitmaps are excluded, matching
	// core.Stats.Scans.
	ScansTotal = Default().Counter("bix_scans_total",
		"Distinct stored bitmaps read (paper I/O cost measure).")

	// Boolean operation counts by kind, the paper's CPU cost measure.
	AndsTotal = Default().Counter("bix_ops_total",
		"Bitmap boolean operations executed, by kind.", Label{"kind", "and"})
	OrsTotal = Default().Counter("bix_ops_total",
		"Bitmap boolean operations executed, by kind.", Label{"kind", "or"})
	XorsTotal = Default().Counter("bix_ops_total",
		"Bitmap boolean operations executed, by kind.", Label{"kind", "xor"})
	NotsTotal = Default().Counter("bix_ops_total",
		"Bitmap boolean operations executed, by kind.", Label{"kind", "not"})

	// QueryLatency observes wall-clock seconds per evaluator invocation.
	QueryLatency = Default().Histogram("bix_query_latency_seconds",
		"Evaluator wall-clock latency in seconds.", LatencyBuckets)
	// QueryScans observes bitmaps scanned per query (the per-query
	// distribution behind ScansTotal).
	QueryScans = Default().Histogram("bix_query_scans",
		"Bitmaps scanned per query.", ScanBuckets)

	// Storage-layer physical costs, fed by Store.readFile / extract.
	StorageQueriesTotal = Default().Counter("bix_storage_queries_total",
		"Queries evaluated against on-disk stores.")
	StorageFilesReadTotal = Default().Counter("bix_storage_files_read_total",
		"Stored files read.")
	StorageBytesReadTotal = Default().Counter("bix_storage_bytes_read_total",
		"On-disk bytes read (compressed size when compressed).")
	StorageReadNSTotal = Default().Counter("bix_storage_read_ns_total",
		"Nanoseconds spent reading stored files.")
	StorageDecompressNSTotal = Default().Counter("bix_storage_decompress_ns_total",
		"Nanoseconds spent inflating compressed files.")
	StorageExtractNSTotal = Default().Counter("bix_storage_extract_ns_total",
		"Nanoseconds spent extracting columns from row-major files.")

	// LRU bitmap pool (storage.CachedStore).
	CacheHitsTotal = Default().Counter("bix_cache_hits_total",
		"Bitmap reads served from the LRU pool.")
	CacheMissesTotal = Default().Counter("bix_cache_misses_total",
		"Bitmap reads that missed the LRU pool.")
	CacheEvictionsTotal = Default().Counter("bix_cache_evictions_total",
		"Bitmaps evicted from the LRU pool.")
	CacheResident = Default().Gauge("bix_cache_resident_bitmaps",
		"Bitmaps currently resident in the LRU pool.")
	CacheFillNSTotal = Default().Counter("bix_cache_fill_ns_total",
		"Nanoseconds spent reading bitmaps into the LRU pool on misses.")

	// Static buffer assignments (internal/buffer).
	BufferHitsTotal = Default().Counter("bix_buffer_hits_total",
		"Bitmap references satisfied by a static buffer assignment.")
	BufferMissesTotal = Default().Counter("bix_buffer_misses_total",
		"Bitmap references not covered by a static buffer assignment.")

	// SlowQueriesTotal counts traces at or over a SlowLog threshold.
	SlowQueriesTotal = Default().Counter("bix_slow_queries_total",
		"Queries at or over the slow-query threshold.")

	// Segmented (intra-query parallel) evaluation.
	SegmentEvalTotal = Default().Counter("bix_segment_eval_total",
		"Segmented (intra-query parallel) evaluator invocations.")
	SegmentWorkers = Default().Gauge("bix_segment_workers",
		"Segment worker pool size (GOMAXPROCS when the pool started).")

	// Cost-model accuracy, fed by engine.ExplainAnalyze: |predicted -
	// measured| / max(measured, 1) per analyzed query, split by the model
	// dimension. Scans should sit in the zero bucket for serial evaluators
	// (the model counts the same fetches the evaluator performs); time drifts
	// with hardware and cache state, hence the wide layout.
	CostModelErrorScans = Default().Histogram("bix_cost_model_error_scans",
		"Relative error of predicted vs measured bitmap scans per analyzed query.",
		ErrorBuckets)
	CostModelErrorTime = Default().Histogram("bix_cost_model_error_time",
		"Relative error of predicted vs measured evaluation time per analyzed query.",
		ErrorBuckets)
)

// LatencyBuckets is the upper-bound layout of bix_query_latency_seconds:
// 10µs to 1s, roughly quarter-decade steps.
var LatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// ErrorBuckets is the upper-bound layout of the bix_cost_model_error_*
// histograms: relative error from exact (0) through 10%/25% drift up to 5x
// off. An accurate model keeps the mass at or below 0.25.
var ErrorBuckets = []float64{0, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

// ScanBuckets is the upper-bound layout of bix_query_scans. 2(n-1)+4/3 scans
// is the paper's expected cost, so real workloads land in the low buckets;
// the tail catches single-component base-C probes.
var ScanBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}

// RecordEval publishes one evaluator invocation to the default registry:
// the per-query scan and operation deltas plus the wall-clock latency.
// When tr is a live trace, its ID is recorded as the latency bucket's
// exemplar, so the JSON export links each bucket to a recent real query.
func RecordEval(scans, ands, ors, xors, nots int, elapsed time.Duration, tr *Trace) {
	QueriesTotal.Inc()
	ScansTotal.Add(int64(scans))
	AndsTotal.Add(int64(ands))
	OrsTotal.Add(int64(ors))
	XorsTotal.Add(int64(xors))
	NotsTotal.Add(int64(nots))
	QueryLatency.ObserveExemplar(elapsed.Seconds(), tr.ID())
	QueryScans.Observe(float64(scans))
}
