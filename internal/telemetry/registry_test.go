package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("get-or-create must return the same counter")
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestLabeledMetricsAreDistinct(t *testing.T) {
	r := New()
	a := r.Counter("ops_total", "help", Label{"kind", "and"})
	o := r.Counter("ops_total", "help", Label{"kind", "or"})
	if a == o {
		t.Fatal("different label values must be different series")
	}
	a.Add(3)
	if o.Value() != 0 {
		t.Fatal("label series must not share state")
	}
	// Label order must not matter for identity.
	x := r.Counter("multi", "help", Label{"a", "1"}, Label{"b", "2"})
	y := r.Counter("multi", "help", Label{"b", "2"}, Label{"a", "1"})
	if x != y {
		t.Fatal("label order must not change identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "help", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 111.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	cum := h.Cumulative()
	want := []int64{1, 3, 4, 5, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	// Quantiles interpolate within the containing bucket and clamp the
	// +Inf bucket to the top finite bound.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1, 2]", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 = %v, want clamp to 8", q)
	}
	if q := New().Histogram("empty", "help", []float64{1}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestObserveOnBucketBoundary(t *testing.T) {
	r := New()
	h := r.Histogram("b", "help", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, like Prometheus
	if cum := h.Cumulative(); cum[0] != 1 {
		t.Fatalf("boundary observation landed in %v", cum)
	}
}

// TestConcurrentWriters hammers one registry from many goroutines under
// -race: counters, gauges, histogram observations, and concurrent
// get-or-create of the same and different series, with exports racing the
// writers.
func TestConcurrentWriters(t *testing.T) {
	r := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits_total", "help").Inc()
				r.Counter("ops_total", "help", Label{"kind", kindFor(w)}).Inc()
				r.Gauge("depth", "help").Set(int64(i))
				r.Histogram("lat", "help", []float64{0.001, 0.01, 0.1, 1}).Observe(float64(i%100) / 100)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("hits_total", "help").Value(); got != workers*perWorker {
		t.Fatalf("hits_total = %d, want %d", got, workers*perWorker)
	}
	var ops int64
	for _, k := range []string{"and", "or"} {
		ops += r.Counter("ops_total", "help", Label{"kind", k}).Value()
	}
	if ops != workers*perWorker {
		t.Fatalf("ops_total sum = %d, want %d", ops, workers*perWorker)
	}
	h := r.Histogram("lat", "help", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	cum := h.Cumulative()
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("+Inf cumulative %d != count %d", cum[len(cum)-1], h.Count())
	}
}

func kindFor(w int) string {
	if w%2 == 0 {
		return "and"
	}
	return "or"
}

func TestRecordEvalFeedsDefaultRegistry(t *testing.T) {
	before := Default().Snapshot()
	RecordEval(3, 2, 1, 0, 1, 1500*time.Microsecond, NewTrace("record-eval-test"))
	after := Default().Snapshot()
	if d := after.Counters["bix_scans_total"] - before.Counters["bix_scans_total"]; d != 3 {
		t.Fatalf("scans delta = %d, want 3", d)
	}
	if d := after.Counters["bix_queries_total"] - before.Counters["bix_queries_total"]; d != 1 {
		t.Fatalf("queries delta = %d, want 1", d)
	}
	if d := after.Counters[`bix_ops_total{kind="and"}`] - before.Counters[`bix_ops_total{kind="and"}`]; d != 2 {
		t.Fatalf("and delta = %d, want 2", d)
	}
	if after.Histograms["bix_query_latency_seconds"].Count <= before.Histograms["bix_query_latency_seconds"].Count {
		t.Fatal("latency histogram did not record")
	}
}
